// Package cnb_test holds the benchmark harness: one testing.B benchmark
// per experiment of EXPERIMENTS.md (regenerating the paper's artifacts)
// plus micro-benchmarks of the individual pipeline phases and of plan
// execution. Run with:
//
//	go test -bench=. -benchmem
package cnb_test

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	"cnb/internal/backchase"
	"cnb/internal/bench"
	"cnb/internal/chase"
	"cnb/internal/core"
	"cnb/internal/cost"
	"cnb/internal/engine"
	"cnb/internal/eval"
	"cnb/internal/instance"
	"cnb/internal/optimizer"
	"cnb/internal/service"
	"cnb/internal/workload"
)

// --- experiment benchmarks (E1..E11) -------------------------------------

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	var run func() (*bench.Table, error)
	for _, e := range bench.All() {
		if e.ID == id {
			run = e.Run
		}
	}
	if run == nil {
		b.Fatalf("unknown experiment %s", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := run(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE1UniversalPlan(b *testing.B) { benchExperiment(b, "E1") }
func BenchmarkE2Chase(b *testing.B)         { benchExperiment(b, "E2") }
func BenchmarkE3Minimize(b *testing.B)      { benchExperiment(b, "E3") }
func BenchmarkE4IndexOnly(b *testing.B)     { benchExperiment(b, "E4") }
func BenchmarkE5ViewIndex(b *testing.B)     { benchExperiment(b, "E5") }
func BenchmarkE6ChaseScaling(b *testing.B)  { benchExperiment(b, "E6") }
func BenchmarkE7Backchase(b *testing.B)     { benchExperiment(b, "E7") }
func BenchmarkE8PlanExecution(b *testing.B) { benchExperiment(b, "E8") }
func BenchmarkE9OptTime(b *testing.B)       { benchExperiment(b, "E9") }
func BenchmarkE10Gmap(b *testing.B)         { benchExperiment(b, "E10") }
func BenchmarkE11Semantic(b *testing.B)     { benchExperiment(b, "E11") }
func BenchmarkE12Parallel(b *testing.B)     { benchExperiment(b, "E12") }
func BenchmarkE13CostBounded(b *testing.B)  { benchExperiment(b, "E13") }
func BenchmarkE15IncChase(b *testing.B)     { benchExperiment(b, "E15") }
func BenchmarkE16ServeLoad(b *testing.B)    { benchExperiment(b, "E16") }

// BenchmarkServiceWarmOptimize measures the serving hot path: an
// Optimize request whose backchase is a plan-cache hit (chase + sharded
// cache lookup + best-plan ranking), the per-request cost every client
// after a shape's first pays.
func BenchmarkServiceWarmOptimize(b *testing.B) {
	pd := projDept(b)
	svc := service.New(service.Options{Parallelism: 1, MinimalOnly: true})
	req := service.Request{Query: pd.Q, Deps: pd.AllDeps(), PhysicalNames: pd.Physical.NameSet()}
	if _, err := svc.Optimize(context.Background(), req); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := svc.Optimize(context.Background(), req)
		if err != nil {
			b.Fatal(err)
		}
		if !resp.CacheHit {
			b.Fatal("warm request missed the plan cache")
		}
	}
}

// --- pipeline phase micro-benchmarks --------------------------------------

func projDept(b *testing.B) *workload.ProjDept {
	b.Helper()
	pd, err := workload.NewProjDept()
	if err != nil {
		b.Fatal(err)
	}
	return pd
}

// BenchmarkChaseProjDept measures phase 1 alone on the running example.
func BenchmarkChaseProjDept(b *testing.B) {
	pd := projDept(b)
	deps := pd.AllDeps()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := chase.Chase(pd.Q, deps, chase.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkChaseNaiveVsIncremental compares the textbook fixpoint with
// the delta-driven engine on the snowflake chase — the inner loop the
// PR 4 refactor targets. Results are byte-identical; only work differs.
func BenchmarkChaseNaiveVsIncremental(b *testing.B) {
	s, err := workload.NewStar(workload.StarConfig{
		Dims: 2, Views: 1, FactIndexes: 1, DimIndex: true,
		Select: true, SelectA: 3, FKConstraints: true, Snowflake: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name  string
		naive bool
	}{{"naive", true}, {"incremental", false}} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := chase.Chase(s.Q, s.Deps, chase.Options{Naive: mode.naive}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBackchaseProjDept measures phase 2 (full enumeration) alone.
func BenchmarkBackchaseProjDept(b *testing.B) {
	pd := projDept(b)
	deps := pd.AllDeps()
	chased, err := chase.Chase(pd.Q, deps, chase.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := backchase.Enumerate(chased.Query, deps, backchase.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOptimizeProjDept measures Algorithm 1 end to end.
func BenchmarkOptimizeProjDept(b *testing.B) {
	pd := projDept(b)
	opts := optimizer.Options{Deps: pd.AllDeps(), PhysicalNames: pd.Physical.NameSet()}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := optimizer.Optimize(pd.Q, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBackchaseParallel measures the worker-pool enumeration against
// the serial engine on a multi-scan workload: a chain query with
// adjacent-pair views, whose universal plan has many redundant scans and
// an exponential subquery lattice. Compare the Parallelism=1 and
// Parallelism=N sub-benchmarks for the speedup on the optimizer's hot
// path.
func BenchmarkBackchaseParallel(b *testing.B) {
	c, err := workload.NewChain(5, 4)
	if err != nil {
		b.Fatal(err)
	}
	chased, err := chase.Chase(c.Q, c.Deps, chase.Options{})
	if err != nil {
		b.Fatal(err)
	}
	pars := []int{1, 2, 4}
	if n := runtime.GOMAXPROCS(0); n > 4 {
		pars = append(pars, n)
	}
	for _, par := range pars {
		b.Run(fmt.Sprintf("workers=%d", par), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := backchase.Enumerate(chased.Query, c.Deps, backchase.Options{Parallelism: par}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBackchasePruned compares exhaustive enumeration against the
// cost-bounded best-first search on the star workload: same cheapest
// plan cost, strictly fewer lattice states chased. The pruned/exhaustive
// state counts are reported as custom metrics.
func BenchmarkBackchasePruned(b *testing.B) {
	s, err := workload.NewStar(workload.StarConfig{
		Dims: 2, Views: 2, FactIndexes: 1, DimIndex: true,
		Select: true, SelectA: 3, FKConstraints: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	chased, err := chase.Chase(s.Q, s.Deps, chase.Options{})
	if err != nil {
		b.Fatal(err)
	}
	stats := cost.FromInstance(s.Generate(workload.StarGenOptions{
		NumFact: 6000, NumDim: 3000, NumSub: 1000, DomA: 1000, Seed: 1,
	}))
	run := func(b *testing.B, opts backchase.Options) {
		b.ReportAllocs()
		var states, pruned int
		for i := 0; i < b.N; i++ {
			res, err := backchase.Enumerate(chased.Query, s.Deps, opts)
			if err != nil {
				b.Fatal(err)
			}
			states, pruned = res.States, res.Pruned
		}
		b.ReportMetric(float64(states), "states")
		b.ReportMetric(float64(pruned), "pruned")
	}
	b.Run("exhaustive", func(b *testing.B) { run(b, backchase.Options{}) })
	b.Run("pruned", func(b *testing.B) { run(b, backchase.Options{Stats: stats}) })
}

// BenchmarkBackchasePrunedTight A/B-tests the PR-3 dictionary-aware
// admissible bound against PR 2's scan-only floor on the star and
// snowflake workloads: identical cheapest cost, strictly fewer lattice
// states chased under the tight bound. States/pruned are reported as
// custom metrics for the nightly perf trajectory.
func BenchmarkBackchasePrunedTight(b *testing.B) {
	workloads := []struct {
		name string
		cfg  workload.StarConfig
	}{
		{"star", workload.StarConfig{
			Dims: 2, Views: 2, FactIndexes: 1, DimIndex: true,
			Select: true, SelectA: 3, FKConstraints: true,
		}},
		{"snowflake", workload.StarConfig{
			Dims: 2, Views: 1, FactIndexes: 1, DimIndex: true, Snowflake: true,
			Select: true, SelectA: 3, FKConstraints: true,
		}},
	}
	for _, wl := range workloads {
		s, err := workload.NewStar(wl.cfg)
		if err != nil {
			b.Fatal(err)
		}
		chased, err := chase.Chase(s.Q, s.Deps, chase.Options{})
		if err != nil {
			b.Fatal(err)
		}
		stats := cost.FromInstance(s.Generate(workload.StarGenOptions{
			NumFact: 6000, NumDim: 3000, NumSub: 1000, DomA: 1000, Seed: 1,
		}))
		run := func(b *testing.B, opts backchase.Options) {
			b.ReportAllocs()
			var states, pruned int
			var best float64
			for i := 0; i < b.N; i++ {
				res, err := backchase.Enumerate(chased.Query, s.Deps, opts)
				if err != nil {
					b.Fatal(err)
				}
				states, pruned, best = res.States, res.Pruned, res.BestCost
			}
			b.ReportMetric(float64(states), "states")
			b.ReportMetric(float64(pruned), "pruned")
			b.ReportMetric(best, "best-cost")
		}
		b.Run(wl.name+"/scanfloor", func(b *testing.B) {
			run(b, backchase.Options{Stats: stats, ScanOnlyBound: true})
		})
		b.Run(wl.name+"/tight", func(b *testing.B) {
			run(b, backchase.Options{Stats: stats})
		})
	}
}

// BenchmarkMinimizeGreedy measures the greedy single-plan backchase.
func BenchmarkMinimizeGreedy(b *testing.B) {
	pd := projDept(b)
	deps := pd.AllDeps()
	chased, err := chase.Chase(pd.Q, deps, chase.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := backchase.MinimizeOne(chased.Query, deps, backchase.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- plan execution benchmarks (the physical premise) ---------------------

func projDeptPlans() (p2, p3, p4 *core.Query) {
	v, n, prj, lk, lknf := core.V, core.Name, core.Prj, core.Lk, core.LkNF
	out := core.Struct(
		core.SF("PN", prj(v("p"), "PName")),
		core.SF("PB", prj(v("p"), "Budg")),
		core.SF("DN", prj(v("p"), "PDept")),
	)
	p2 = &core.Query{
		Out:      out,
		Bindings: []core.Binding{{Var: "p", Range: n("Proj")}},
		Conds:    []core.Cond{{L: prj(v("p"), "CustName"), R: core.C("CitiBank")}},
	}
	p3 = &core.Query{
		Out:      out,
		Bindings: []core.Binding{{Var: "p", Range: lknf(n("SI"), core.C("CitiBank"))}},
	}
	p4 = &core.Query{
		Out: core.Struct(
			core.SF("PN", prj(v("j"), "PN")),
			core.SF("PB", prj(lk(n("I"), prj(v("j"), "PN")), "Budg")),
			core.SF("DN", prj(lk(n("Dept"), prj(v("j"), "DOID")), "DName")),
		),
		Bindings: []core.Binding{{Var: "j", Range: n("JI")}},
		Conds: []core.Cond{
			{L: prj(lk(n("I"), prj(v("j"), "PN")), "CustName"), R: core.C("CitiBank")},
		},
	}
	return p2, p3, p4
}

func benchPlan(b *testing.B, q *core.Query, in *instance.Instance) {
	b.Helper()
	plan, err := engine.Compile(q, in)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := plan.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func genSelective(b *testing.B) *instance.Instance {
	b.Helper()
	pd := projDept(b)
	return pd.Generate(workload.GenOptions{
		NumDepts: 500, ProjsPerDept: 10, CitiBankShare: 0.002, Seed: 3,
	})
}

// At 0.2% selectivity over 5000 projects, the scan (P2) pays for the whole
// relation while the index plans (P3, P4) touch only matches: the paper's
// physical premise, measured.
func BenchmarkExecP2ScanSelective(b *testing.B) {
	p2, _, _ := projDeptPlans()
	benchPlan(b, p2, genSelective(b))
}

func BenchmarkExecP3IndexSelective(b *testing.B) {
	_, p3, _ := projDeptPlans()
	benchPlan(b, p3, genSelective(b))
}

func BenchmarkExecP4JoinIndexSelective(b *testing.B) {
	_, _, p4 := projDeptPlans()
	benchPlan(b, p4, genSelective(b))
}

// --- reference evaluator vs engine ----------------------------------------

func BenchmarkEvalNaiveQ(b *testing.B) {
	pd := projDept(b)
	in := pd.Generate(workload.GenOptions{NumDepts: 20, ProjsPerDept: 5, Seed: 1})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eval.QueryEager(pd.Q, in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineQ(b *testing.B) {
	pd := projDept(b)
	in := pd.Generate(workload.GenOptions{NumDepts: 20, ProjsPerDept: 5, Seed: 1})
	benchPlan(b, pd.Q, in)
}

// --- cost model -----------------------------------------------------------

func BenchmarkCostEstimate(b *testing.B) {
	pd := projDept(b)
	in := pd.Generate(workload.GenOptions{Seed: 1})
	stats := cost.FromInstance(in)
	p2, p3, p4 := projDeptPlans()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats.Estimate(p2)
		stats.Estimate(p3)
		stats.Estimate(p4)
	}
}
