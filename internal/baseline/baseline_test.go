package baseline

import (
	"testing"

	"cnb/internal/chase"
	"cnb/internal/core"
	"cnb/internal/optimizer"
	"cnb/internal/workload"
)

// rsViews builds the §4 scenario pieces as relational views:
// V = π_A(R ⋈ S) plus trivial self-views of R and S.
func rsViews() []RelView {
	vDef := &core.Query{
		Out: core.Struct(core.SF("A", core.Prj(core.V("r"), "A"))),
		Bindings: []core.Binding{
			{Var: "r", Range: core.Name("R")},
			{Var: "s", Range: core.Name("S")},
		},
		Conds: []core.Cond{{L: core.Prj(core.V("r"), "B"), R: core.Prj(core.V("s"), "B")}},
	}
	rSelf := &core.Query{
		Out: core.Struct(
			core.SF("A", core.Prj(core.V("r"), "A")),
			core.SF("B", core.Prj(core.V("r"), "B")),
		),
		Bindings: []core.Binding{{Var: "r", Range: core.Name("R")}},
	}
	sSelf := &core.Query{
		Out: core.Struct(
			core.SF("B", core.Prj(core.V("s"), "B")),
			core.SF("C", core.Prj(core.V("s"), "C")),
		),
		Bindings: []core.Binding{{Var: "s", Range: core.Name("S")}},
	}
	return []RelView{
		{Name: "V", Def: vDef},
		{Name: "RV", Def: rSelf},
		{Name: "SV", Def: sSelf},
	}
}

func rsQuery() *core.Query {
	return &core.Query{
		Out: core.Struct(
			core.SF("A", core.Prj(core.V("r"), "A")),
			core.SF("B", core.Prj(core.V("s"), "B")),
			core.SF("C", core.Prj(core.V("s"), "C")),
		),
		Bindings: []core.Binding{
			{Var: "r", Range: core.Name("R")},
			{Var: "s", Range: core.Name("S")},
		},
		Conds: []core.Cond{{L: core.Prj(core.V("r"), "B"), R: core.Prj(core.V("s"), "B")}},
	}
}

func TestBucketRewriteFindsSelfViewPlan(t *testing.T) {
	plans, err := BucketRewrite(rsQuery(), rsViews(), chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) == 0 {
		t.Fatal("bucket algorithm should find the RV ⋈ SV rewriting")
	}
	// Every plan mentions only view names.
	for _, p := range plans {
		for n := range p.Names() {
			if n != "V" && n != "RV" && n != "SV" {
				t.Errorf("plan mentions non-view name %s:\n%s", n, p)
			}
		}
	}
	// The classic rewriting RV ⋈ SV must be among them.
	found := false
	for _, p := range plans {
		ns := p.Names()
		if ns["RV"] && ns["SV"] && !ns["V"] {
			found = true
		}
	}
	if !found {
		t.Error("RV ⋈ SV rewriting missing")
	}
}

func TestBucketRewriteCannotUseVAlone(t *testing.T) {
	// V projects only A, so no views-only plan through V alone can
	// reconstruct B and C; the bucket algorithm must not emit one.
	plans, err := BucketRewrite(rsQuery(), rsViews(), chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range plans {
		ns := p.Names()
		if ns["V"] && !ns["RV"] && !ns["SV"] {
			t.Errorf("impossible V-only plan emitted:\n%s", p)
		}
	}
}

func TestBucketRewriteNoCoverage(t *testing.T) {
	q := &core.Query{
		Out:      core.Prj(core.V("x"), "A"),
		Bindings: []core.Binding{{Var: "x", Range: core.Name("T")}},
	}
	plans, err := BucketRewrite(q, rsViews(), chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if plans != nil {
		t.Error("uncovered subgoal must produce no rewritings")
	}
}

func TestBucketRewriteRejectsDictionaries(t *testing.T) {
	q := &core.Query{
		Out:      core.V("k"),
		Bindings: []core.Binding{{Var: "k", Range: core.Dom(core.Name("M"))}},
	}
	if _, err := BucketRewrite(q, nil, chase.Options{}); err == nil {
		t.Error("dictionary query must be rejected")
	}
}

// TestCnBStrictlySubsumesBaseline is the E10 claim: on the §4 scenario the
// chase & backchase emits plans the views-only baseline cannot express
// (the V + IR + IS index navigation), while every baseline rewriting shape
// is also reachable by C&B.
func TestCnBStrictlySubsumesBaseline(t *testing.T) {
	sc, err := workload.NewViewIndex()
	if err != nil {
		t.Fatal(err)
	}
	res, err := optimizer.Optimize(sc.Q, optimizer.Options{Deps: sc.Deps})
	if err != nil {
		t.Fatal(err)
	}
	// C&B produces a candidate plan using V together with the indexes —
	// the §4 navigation plan. (It is an explored state, not a minimal
	// plan: V is derivable and therefore always removable.)
	foundViewIndex := false
	for _, c := range res.Candidates {
		ns := c.Query.Names()
		if ns["V"] && (ns["IR"] || ns["IS"]) && !ns["R"] && !ns["S"] {
			foundViewIndex = true
		}
	}
	if !foundViewIndex {
		for _, c := range res.Candidates {
			t.Logf("candidate: %v", c.Query.SortedNames())
		}
		t.Error("C&B should produce the view+index navigation plan of §4")
	}

	// The baseline finds only views-only rewritings; none mention IR/IS.
	views := rsViews()
	plans, err := BucketRewrite(rsQuery(), views, chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range plans {
		ns := p.Names()
		if ns["IR"] || ns["IS"] {
			t.Error("baseline cannot use indexes — test fixture broken")
		}
	}
}

func TestHeuristicIndexer(t *testing.T) {
	h := &HeuristicIndexer{Indexes: map[string]string{"Proj.CustName": "SI"}}
	q := &core.Query{
		Out:      core.Prj(core.V("p"), "PName"),
		Bindings: []core.Binding{{Var: "p", Range: core.Name("Proj")}},
		Conds:    []core.Cond{{L: core.Prj(core.V("p"), "CustName"), R: core.C("CitiBank")}},
	}
	r := h.Rewrite(q)
	if len(r.Bindings) != 1 || !r.Bindings[0].Range.NonFailing {
		t.Errorf("heuristic should produce the index plan:\n%s", r)
	}
	if len(r.Conds) != 0 {
		t.Error("consumed condition should be dropped")
	}

	// No index on the attribute: unchanged.
	q2 := q.Clone()
	q2.Conds = []core.Cond{{L: core.Prj(core.V("p"), "PDept"), R: core.C("D1")}}
	r2 := h.Rewrite(q2)
	if r2.Bindings[0].Range.Kind != core.KName {
		t.Error("no index available: plan must be unchanged")
	}

	// Join query: the heuristic gives up (C&B does not — E10's point).
	j := &core.Query{
		Out: core.C(true),
		Bindings: []core.Binding{
			{Var: "p", Range: core.Name("Proj")},
			{Var: "d", Range: core.Name("depts")},
		},
		Conds: []core.Cond{{L: core.Prj(core.V("p"), "CustName"), R: core.C("CitiBank")}},
	}
	rj := h.Rewrite(j)
	if len(rj.Bindings) != 2 {
		t.Error("heuristic must not touch join queries")
	}
}
