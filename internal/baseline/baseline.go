// Package baseline implements the prior approaches the paper positions
// itself against (§4, §6):
//
//   - BucketRewrite: answering queries using views for conjunctive
//     relational queries (Levy/Mendelzon/Sagiv/Srivastava style): for each
//     query subgoal collect the views that can supply it, combine one
//     view choice per subgoal, and keep the combinations equivalent to
//     the query. Views-only: it cannot express index lookups, which is
//     the limitation §4 discusses (plan P is discarded because Q is a
//     subquery of P).
//
//   - GMapRewrite: the GMAP approach (Tsatalos/Solomon/Ioannidis):
//     physical structures are materialized PSJ views over the logical
//     schema and rewriting replaces logical scans with gmap scans. Its
//     output is again a PSJ query — value-based joins only — so index
//     navigation stays out of reach of the plan language.
//
//   - HeuristicIndexer: the conventional ad-hoc rule ("if a selection
//     column has an index, use it") that relational optimizers used
//     instead of a systematic search; it handles single-table selections
//     and misses index-only and view+index combinations.
//
// The E7/E10 experiments compare the chase & backchase plan space against
// these baselines.
package baseline

import (
	"fmt"

	"cnb/internal/backchase"
	"cnb/internal/chase"
	"cnb/internal/core"
)

// RelView is a named conjunctive view over relations (no dictionaries):
// V = select Out from Bindings where Conds.
type RelView struct {
	Name string
	Def  *core.Query
}

// BucketRewrite enumerates the rewritings of q that use only the given
// views (every binding ranges over a view name). It returns the distinct
// equivalent rewritings found, checked by chase-based equivalence under
// the view dependencies.
//
// The query and views must be relational conjunctive queries: bindings
// over plain names, no dictionary operations.
func BucketRewrite(q *core.Query, views []RelView, opts chase.Options) ([]*core.Query, error) {
	if err := checkRelational(q); err != nil {
		return nil, fmt.Errorf("baseline: query: %w", err)
	}
	for _, v := range views {
		if err := checkRelational(v.Def); err != nil {
			return nil, fmt.Errorf("baseline: view %s: %w", v.Name, err)
		}
	}

	deps := viewDeps(views)

	// Bucket phase: for each query binding, the views whose definition
	// contains a binding over the same relation.
	buckets := make([][]RelView, len(q.Bindings))
	for i, b := range q.Bindings {
		for _, v := range views {
			for _, vb := range v.Def.Bindings {
				if vb.Range.Equal(b.Range) {
					buckets[i] = append(buckets[i], v)
					break
				}
			}
		}
		if len(buckets[i]) == 0 {
			return nil, nil // some subgoal is not covered by any view
		}
	}

	// Combination phase: one view choice per subgoal; deduplicate view
	// multisets (a view used for several subgoals is scanned once per
	// distinct subgoal in candidate construction below, then minimized).
	var out []*core.Query
	seen := map[string]bool{}
	var choose func(i int, chosen []RelView) error
	choose = func(i int, chosen []RelView) error {
		if i == len(buckets) {
			cand := buildCandidate(q, chosen)
			if cand == nil {
				return nil
			}
			eq, err := backchase.Equivalent(cand, q, deps, opts)
			if err != nil {
				if _, budget := err.(*chase.ErrBudget); budget {
					return nil
				}
				return err
			}
			if !eq {
				return nil
			}
			// Minimize: merge redundant view scans.
			min, err := backchase.MinimizeOne(cand, deps, backchase.Options{Chase: opts})
			if err != nil {
				return err
			}
			sig := min.CanonicalSignature()
			if !seen[sig] {
				seen[sig] = true
				out = append(out, min)
			}
			return nil
		}
		for _, v := range buckets[i] {
			if err := choose(i+1, append(chosen, v)); err != nil {
				return err
			}
		}
		return nil
	}
	if err := choose(0, nil); err != nil {
		return nil, err
	}
	return out, nil
}

// buildCandidate constructs the rewriting that scans chosen[i] in place of
// query binding i: variables of the query are re-expressed through the
// view outputs when possible. The construction follows the classical
// bucket-algorithm candidate: join all chosen views and equate their
// output fields with the query's variables via the chase machinery — here
// we build it syntactically and let the equivalence check filter.
func buildCandidate(q *core.Query, chosen []RelView) *core.Query {
	// For each query binding i, scan the chosen view with a fresh
	// variable; the original binding variable is defined as that view
	// row when the view outputs the whole subgoal row, which requires the
	// view output to be a struct whose fields cover the query's use.
	//
	// General field-level reconstruction: replace every use of the query
	// variable x_i by (view row).F when the view's output has a field F
	// equal (in the view's own canonical database) to the corresponding
	// base-row field.
	sub := map[string]*core.Term{}
	cand := &core.Query{}
	for i, b := range q.Bindings {
		v := chosen[i]
		vVar := fmt.Sprintf("v%d", i)
		cand.Bindings = append(cand.Bindings, core.Binding{Var: vVar, Range: core.Name(v.Name)})
		// Map x_i.F -> vVar.G for each view output field G congruent to
		// (base binding).F, where the base binding is the view binding
		// over the same relation.
		cn := chase.NewCanon(v.Def)
		var base *core.Binding
		for j := range v.Def.Bindings {
			if v.Def.Bindings[j].Range.Equal(b.Range) {
				base = &v.Def.Bindings[j]
				break
			}
		}
		if base == nil {
			return nil
		}
		if v.Def.Out.Kind != core.KStruct {
			return nil
		}
		// Build a per-variable field substitution applied lazily below.
		fieldMap := map[string]*core.Term{}
		for _, f := range v.Def.Out.Fields {
			// Which base-row fields does this output field equal?
			for _, rowField := range rowFields(q, b.Var) {
				if cn.CC.Same(f.Term, core.Prj(core.V(base.Var), rowField)) {
					if _, done := fieldMap[rowField]; !done {
						fieldMap[rowField] = core.Prj(core.V(vVar), f.Name)
					}
				}
			}
		}
		sub[b.Var] = nil // mark; substitution handled via substProj
		substProjRegister(b.Var, fieldMap)
	}
	defer substProjClear()

	for _, c := range q.Conds {
		l := substProj(c.L)
		r := substProj(c.R)
		if l == nil || r == nil {
			return nil
		}
		cand.Conds = append(cand.Conds, core.Cond{L: l, R: r})
	}
	cand.Out = substProj(q.Out)
	if cand.Out == nil {
		return nil
	}
	if err := cand.Validate(); err != nil {
		return nil
	}
	return cand
}

// rowFields lists the fields of the query that are projected from the
// given variable.
func rowFields(q *core.Query, v string) []string {
	fields := map[string]bool{}
	var walk func(t *core.Term)
	walk = func(t *core.Term) {
		if t == nil {
			return
		}
		switch t.Kind {
		case core.KProj:
			if t.Base.Kind == core.KVar && t.Base.Name == v {
				fields[t.Name] = true
			}
			walk(t.Base)
		case core.KDom:
			walk(t.Base)
		case core.KLookup:
			walk(t.Base)
			walk(t.Key)
		case core.KStruct:
			for _, f := range t.Fields {
				walk(f.Term)
			}
		}
	}
	for _, c := range q.Conds {
		walk(c.L)
		walk(c.R)
	}
	walk(q.Out)
	out := make([]string, 0, len(fields))
	for f := range fields {
		out = append(out, f)
	}
	return out
}

// substProj rewrites x.F via the registered per-variable field maps. It is
// package-level state because buildCandidate's recursion is single-
// threaded per call; cleared on exit.
var projMaps = map[string]map[string]*core.Term{}

func substProjRegister(v string, m map[string]*core.Term) { projMaps[v] = m }
func substProjClear()                                     { projMaps = map[string]map[string]*core.Term{} }

func substProj(t *core.Term) *core.Term {
	switch t.Kind {
	case core.KVar:
		if _, tracked := projMaps[t.Name]; tracked {
			return nil // bare variable use cannot be re-expressed
		}
		return t
	case core.KConst, core.KName:
		return t
	case core.KProj:
		if t.Base.Kind == core.KVar {
			if m, tracked := projMaps[t.Base.Name]; tracked {
				if r, ok := m[t.Name]; ok {
					return r
				}
				return nil
			}
		}
		b := substProj(t.Base)
		if b == nil {
			return nil
		}
		return core.Prj(b, t.Name)
	case core.KDom:
		b := substProj(t.Base)
		if b == nil {
			return nil
		}
		return core.Dom(b)
	case core.KLookup:
		b := substProj(t.Base)
		k := substProj(t.Key)
		if b == nil || k == nil {
			return nil
		}
		return &core.Term{Kind: core.KLookup, Base: b, Key: k, NonFailing: t.NonFailing}
	case core.KStruct:
		fs := make([]core.StructField, len(t.Fields))
		for i, f := range t.Fields {
			ft := substProj(f.Term)
			if ft == nil {
				return nil
			}
			fs[i] = core.StructField{Name: f.Name, Term: ft}
		}
		return core.Struct(fs...)
	}
	return nil
}

// viewDeps compiles the forward and inverse constraints of each view (the
// same ΦV/ΦV' the chase uses).
func viewDeps(views []RelView) []*core.Dependency {
	var deps []*core.Dependency
	for _, v := range views {
		def := v.Def.RenameVars(func(s string) string { return "vw_" + s })
		vVar := "vw_self"
		deps = append(deps,
			&core.Dependency{
				Name:            "Phi" + v.Name,
				Premise:         def.Bindings,
				PremiseConds:    def.Conds,
				Conclusion:      []core.Binding{{Var: vVar, Range: core.Name(v.Name)}},
				ConclusionConds: []core.Cond{{L: core.V(vVar), R: def.Out}},
			},
			&core.Dependency{
				Name:            "Phi" + v.Name + "Inv",
				Premise:         []core.Binding{{Var: vVar, Range: core.Name(v.Name)}},
				Conclusion:      def.Bindings,
				ConclusionConds: append(append([]core.Cond(nil), def.Conds...), core.Cond{L: core.V(vVar), R: def.Out}),
			})
	}
	return deps
}

func checkRelational(q *core.Query) error {
	for _, b := range q.Bindings {
		if b.Range.Kind != core.KName {
			return fmt.Errorf("binding %s ranges over %s: only relation scans allowed", b.Var, b.Range)
		}
	}
	check := func(t *core.Term) error {
		for _, s := range t.Subterms() {
			if s.Kind == core.KLookup || s.Kind == core.KDom {
				return fmt.Errorf("term %s uses dictionary operations", t)
			}
		}
		return nil
	}
	for _, c := range q.Conds {
		if err := check(c.L); err != nil {
			return err
		}
		if err := check(c.R); err != nil {
			return err
		}
	}
	return check(q.Out)
}

// HeuristicIndexer is the ad-hoc index-introduction rule: for a
// single-relation selection query with an equality on an indexed
// attribute, produce the index plan; otherwise return the query unchanged.
// Indexes maps "Relation.Attribute" to the secondary-index name.
type HeuristicIndexer struct {
	Indexes map[string]string
}

// Rewrite applies the heuristic. Unlike the chase & backchase it never
// combines indexes with views, never produces index-only plans, and never
// uses an index for join navigation.
func (h *HeuristicIndexer) Rewrite(q *core.Query) *core.Query {
	if len(q.Bindings) != 1 || q.Bindings[0].Range.Kind != core.KName {
		return q.Clone()
	}
	rel := q.Bindings[0].Range.Name
	v := q.Bindings[0].Var
	for i, c := range q.Conds {
		var attr string
		var konst *core.Term
		if c.L.Kind == core.KProj && c.L.Base.Equal(core.V(v)) && c.R.Kind == core.KConst {
			attr, konst = c.L.Name, c.R
		} else if c.R.Kind == core.KProj && c.R.Base.Equal(core.V(v)) && c.L.Kind == core.KConst {
			attr, konst = c.R.Name, c.L
		} else {
			continue
		}
		idx, ok := h.Indexes[rel+"."+attr]
		if !ok {
			continue
		}
		out := q.Clone()
		out.Bindings = []core.Binding{{Var: v, Range: core.LkNF(core.Name(idx), konst)}}
		out.Conds = append(out.Conds[:i:i], out.Conds[i+1:]...)
		return out
	}
	return q.Clone()
}
