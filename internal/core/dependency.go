package core

import (
	"fmt"
	"strings"
)

// Dependency is an embedded path-conjunctive dependency (EPCD, §5):
//
//	∀(x1 ∈ P1, ..., xn ∈ Pn)  B1(x̄)  →  ∃(y1 ∈ P1', ..., yk ∈ Pk')  B2(x̄, ȳ)
//
// Each premise range Pi may refer to x1..x_{i-1}; each conclusion range
// Pj' may refer to all premise variables and y1..y_{j-1} (an EPCD is not a
// first-order formula). An EPCD with no existential bindings is an EGD
// (equality-generating dependency); functional dependencies such as the
// paper's KEY constraints are EGDs.
type Dependency struct {
	// Name identifies the dependency in traces and error messages
	// (e.g. "RIC1", "ΦSI", "ΦV'").
	Name string

	Premise      []Binding
	PremiseConds []Cond

	Conclusion      []Binding
	ConclusionConds []Cond
}

// IsEGD reports whether the dependency has no existential bindings, i.e.
// it only asserts equalities among premise paths.
func (d *Dependency) IsEGD() bool { return len(d.Conclusion) == 0 }

// IsFull reports whether the dependency is full in the sense of the
// bounded-chase theorem: every conclusion binding variable is forced equal
// to a premise path by the conclusion conditions. Chasing with full
// dependencies terminates with a polynomial-size result.
func (d *Dependency) IsFull() bool {
	if d.IsEGD() {
		return true
	}
	premVars := make(map[string]bool)
	for _, b := range d.Premise {
		premVars[b.Var] = true
	}
	// A conclusion variable y is "determined" if some conclusion condition
	// equates y with a path over premise variables (or previously
	// determined conclusion variables).
	determined := make(map[string]bool)
	changed := true
	for changed {
		changed = false
		for _, b := range d.Conclusion {
			if determined[b.Var] {
				continue
			}
			for _, c := range d.ConclusionConds {
				var other *Term
				if c.L.Kind == KVar && c.L.Name == b.Var {
					other = c.R
				} else if c.R.Kind == KVar && c.R.Name == b.Var {
					other = c.L
				} else {
					continue
				}
				ok := true
				for v := range other.Vars() {
					if !premVars[v] && !determined[v] {
						ok = false
						break
					}
				}
				if ok {
					determined[b.Var] = true
					changed = true
					break
				}
			}
		}
	}
	for _, b := range d.Conclusion {
		if !determined[b.Var] {
			return false
		}
	}
	return true
}

// String renders the dependency in the assertion syntax of the paper, e.g.
//
//	∀(p ∈ Proj, i ∈ dom(I)) i = p.PName and I[i] = p → ...
func (d *Dependency) String() string {
	var b strings.Builder
	if d.Name != "" {
		b.WriteString(d.Name)
		b.WriteString(": ")
	}
	b.WriteString("forall (")
	for i, bd := range d.Premise {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(bd.Var + " in " + bd.Range.String())
	}
	b.WriteString(")")
	if len(d.PremiseConds) > 0 {
		b.WriteString(" ")
		for i, c := range d.PremiseConds {
			if i > 0 {
				b.WriteString(" and ")
			}
			b.WriteString(c.String())
		}
	}
	b.WriteString(" -> ")
	if len(d.Conclusion) > 0 {
		b.WriteString("exists (")
		for i, bd := range d.Conclusion {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(bd.Var + " in " + bd.Range.String())
		}
		b.WriteString(")")
	}
	if len(d.ConclusionConds) > 0 {
		b.WriteString(" ")
		for i, c := range d.ConclusionConds {
			if i > 0 {
				b.WriteString(" and ")
			}
			b.WriteString(c.String())
		}
	}
	return b.String()
}

// Validate checks well-formedness: premise variables distinct and ranges
// properly scoped; conclusion likewise (conclusion may use premise vars);
// conclusion conditions may use all variables.
func (d *Dependency) Validate() error {
	scope := make(map[string]bool)
	for i, b := range d.Premise {
		if b.Var == "" {
			return fmt.Errorf("core: dependency %s premise binding %d has empty var", d.Name, i)
		}
		if scope[b.Var] {
			return fmt.Errorf("core: dependency %s duplicate premise var %q", d.Name, b.Var)
		}
		for v := range b.Range.Vars() {
			if !scope[v] {
				return fmt.Errorf("core: dependency %s premise range of %q mentions unbound %q", d.Name, b.Var, v)
			}
		}
		scope[b.Var] = true
	}
	for _, c := range d.PremiseConds {
		for v := range c.L.Vars() {
			if !scope[v] {
				return fmt.Errorf("core: dependency %s premise cond %s mentions unbound %q", d.Name, c, v)
			}
		}
		for v := range c.R.Vars() {
			if !scope[v] {
				return fmt.Errorf("core: dependency %s premise cond %s mentions unbound %q", d.Name, c, v)
			}
		}
	}
	for i, b := range d.Conclusion {
		if b.Var == "" {
			return fmt.Errorf("core: dependency %s conclusion binding %d has empty var", d.Name, i)
		}
		if scope[b.Var] {
			return fmt.Errorf("core: dependency %s duplicate var %q", d.Name, b.Var)
		}
		for v := range b.Range.Vars() {
			if !scope[v] {
				return fmt.Errorf("core: dependency %s conclusion range of %q mentions unbound %q", d.Name, b.Var, v)
			}
		}
		scope[b.Var] = true
	}
	for _, c := range d.ConclusionConds {
		for v := range c.L.Vars() {
			if !scope[v] {
				return fmt.Errorf("core: dependency %s conclusion cond %s mentions unbound %q", d.Name, c, v)
			}
		}
		for v := range c.R.Vars() {
			if !scope[v] {
				return fmt.Errorf("core: dependency %s conclusion cond %s mentions unbound %q", d.Name, c, v)
			}
		}
	}
	return nil
}

// PremiseQuery views the premise of the dependency as a boolean-valued
// query (select true from premise where premiseConds). Chasing this query
// and checking that the conclusion holds is how constraint implication is
// decided (§3, "constraints are viewed as boolean-valued queries").
func (d *Dependency) PremiseQuery() *Query {
	return &Query{
		Out:      C(true),
		Bindings: append([]Binding(nil), d.Premise...),
		Conds:    append([]Cond(nil), d.PremiseConds...),
	}
}

// RenameVars returns a copy of the dependency with all bound variables
// renamed by the function.
func (d *Dependency) RenameVars(rename func(string) string) *Dependency {
	sub := make(map[string]*Term)
	for _, b := range d.Premise {
		sub[b.Var] = V(rename(b.Var))
	}
	for _, b := range d.Conclusion {
		sub[b.Var] = V(rename(b.Var))
	}
	nd := &Dependency{Name: d.Name}
	for _, b := range d.Premise {
		nd.Premise = append(nd.Premise, Binding{Var: sub[b.Var].Name, Range: b.Range.Subst(sub)})
	}
	for _, c := range d.PremiseConds {
		nd.PremiseConds = append(nd.PremiseConds, Cond{L: c.L.Subst(sub), R: c.R.Subst(sub)})
	}
	for _, b := range d.Conclusion {
		nd.Conclusion = append(nd.Conclusion, Binding{Var: sub[b.Var].Name, Range: b.Range.Subst(sub)})
	}
	for _, c := range d.ConclusionConds {
		nd.ConclusionConds = append(nd.ConclusionConds, Cond{L: c.L.Subst(sub), R: c.R.Subst(sub)})
	}
	return nd
}

// Names returns all schema names mentioned by the dependency.
func (d *Dependency) Names() map[string]bool {
	ns := make(map[string]bool)
	collect := func(t *Term) {
		for n := range t.Names() {
			ns[n] = true
		}
	}
	for _, b := range d.Premise {
		collect(b.Range)
	}
	for _, c := range d.PremiseConds {
		collect(c.L)
		collect(c.R)
	}
	for _, b := range d.Conclusion {
		collect(b.Range)
	}
	for _, c := range d.ConclusionConds {
		collect(c.L)
		collect(c.R)
	}
	return ns
}
