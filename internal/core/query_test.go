package core

import (
	"strings"
	"testing"
)

// paperQ builds the running-example query Q of §1:
//
//	select struct(PN: s, PB: p.Budg, DN: d.DName)
//	from depts d, d.DProjs s, Proj p
//	where s = p.PName and p.CustName = "CitiBank"
//
// in its logical form (over the class extent "depts").
func paperQ() *Query {
	return &Query{
		Out: Struct(
			SF("PN", V("s")),
			SF("PB", Prj(V("p"), "Budg")),
			SF("DN", Prj(V("d"), "DName")),
		),
		Bindings: []Binding{
			{Var: "d", Range: Name("depts")},
			{Var: "s", Range: Prj(V("d"), "DProjs")},
			{Var: "p", Range: Name("Proj")},
		},
		Conds: []Cond{
			{L: V("s"), R: Prj(V("p"), "PName")},
			{L: Prj(V("p"), "CustName"), R: C("CitiBank")},
		},
	}
}

func TestQueryString(t *testing.T) {
	q := paperQ()
	s := q.String()
	for _, frag := range []string{
		"select struct(PN: s, PB: p.Budg, DN: d.DName)",
		"from depts d, d.DProjs s, Proj p",
		`where s = p.PName and p.CustName = "CitiBank"`,
	} {
		if !strings.Contains(s, frag) {
			t.Errorf("String() missing %q in:\n%s", frag, s)
		}
	}
}

func TestQueryValidate(t *testing.T) {
	if err := paperQ().Validate(); err != nil {
		t.Errorf("paper query should validate: %v", err)
	}

	bad := paperQ()
	bad.Bindings = bad.Bindings[:1] // drop s and p bindings
	if err := bad.Validate(); err == nil {
		t.Error("query with unbound condition variables should fail validation")
	}

	dup := paperQ()
	dup.Bindings = append(dup.Bindings, Binding{Var: "d", Range: Name("Proj")})
	if err := dup.Validate(); err == nil {
		t.Error("duplicate binding variable should fail validation")
	}

	fwd := &Query{
		Out: V("x"),
		Bindings: []Binding{
			{Var: "x", Range: Prj(V("y"), "A")}, // y not yet bound
			{Var: "y", Range: Name("R")},
		},
	}
	if err := fwd.Validate(); err == nil {
		t.Error("forward reference in range should fail validation")
	}
}

func TestQueryValidateNilPieces(t *testing.T) {
	q := &Query{Out: nil}
	if err := q.Validate(); err == nil {
		t.Error("nil output should fail")
	}
	q2 := &Query{Out: C(true), Bindings: []Binding{{Var: "x", Range: nil}}}
	if err := q2.Validate(); err == nil {
		t.Error("nil range should fail")
	}
	q3 := &Query{Out: C(true), Bindings: []Binding{{Var: "", Range: Name("R")}}}
	if err := q3.Validate(); err == nil {
		t.Error("empty var should fail")
	}
}

func TestBoundVarsAndBindingOf(t *testing.T) {
	q := paperQ()
	bv := q.BoundVars()
	if len(bv) != 3 || !bv["d"] || !bv["s"] || !bv["p"] {
		t.Errorf("BoundVars = %v", bv)
	}
	if q.BindingOf("s") != 1 {
		t.Errorf("BindingOf(s) = %d, want 1", q.BindingOf("s"))
	}
	if q.BindingOf("zz") != -1 {
		t.Error("BindingOf(zz) should be -1")
	}
}

func TestQueryNames(t *testing.T) {
	q := paperQ()
	ns := q.Names()
	if !ns["depts"] || !ns["Proj"] || len(ns) != 2 {
		t.Errorf("Names = %v, want {depts, Proj}", ns)
	}
	sorted := q.SortedNames()
	if len(sorted) != 2 || sorted[0] != "Proj" || sorted[1] != "depts" {
		t.Errorf("SortedNames = %v", sorted)
	}
}

func TestCheckPCGuardedLookup(t *testing.T) {
	// P1 of the paper: lookups Dept[d] guarded by "dom(Dept) d".
	p1 := &Query{
		Out: Struct(
			SF("PN", V("s")),
			SF("DN", Prj(Lk(Name("Dept"), V("d")), "DName")),
		),
		Bindings: []Binding{
			{Var: "d", Range: Dom(Name("Dept"))},
			{Var: "s", Range: Prj(Lk(Name("Dept"), V("d")), "DProjs")},
		},
	}
	if err := p1.CheckPC(); err != nil {
		t.Errorf("guarded lookup should pass PC check: %v", err)
	}

	// Unguarded failing lookup.
	bad := &Query{
		Out:      Prj(Lk(Name("I"), Prj(V("j"), "PN")), "Budg"),
		Bindings: []Binding{{Var: "j", Range: Name("JI")}},
	}
	if err := bad.CheckPC(); err == nil {
		t.Error("unguarded lookup should fail PC check")
	}

	// Non-failing lookup needs no guard.
	nf := &Query{
		Out:      C(true),
		Bindings: []Binding{{Var: "s", Range: LkNF(Name("SI"), C("CitiBank"))}},
	}
	if err := nf.CheckPC(); err != nil {
		t.Errorf("non-failing lookup should pass: %v", err)
	}
}

func TestCheckPCLookupGuardedViaWhere(t *testing.T) {
	// Lookup key equated to a dom-binding variable through the where
	// clause (footnote 8 of the paper).
	q := &Query{
		Out: Prj(Lk(Name("I"), V("k")), "Budg"),
		Bindings: []Binding{
			{Var: "i", Range: Dom(Name("I"))},
			{Var: "p", Range: Name("Proj")},
			{Var: "k", Range: Dom(Name("I"))},
		},
		Conds: []Cond{{L: V("k"), R: V("i")}},
	}
	if err := q.CheckPC(); err != nil {
		t.Errorf("where-guarded lookup should pass: %v", err)
	}
}

func TestRenameVars(t *testing.T) {
	q := paperQ()
	r := q.RenameVars(func(v string) string { return v + "_1" })
	if err := r.Validate(); err != nil {
		t.Fatalf("renamed query invalid: %v", err)
	}
	if r.BindingOf("d_1") != 0 {
		t.Error("binding d should be renamed to d_1")
	}
	if !r.Conds[0].L.Equal(V("s_1")) {
		t.Errorf("condition not renamed: %s", r.Conds[0])
	}
	// Original untouched.
	if q.BindingOf("d") != 0 {
		t.Error("original query mutated")
	}
}

func TestFreshRenaming(t *testing.T) {
	avoid := map[string]bool{"f_x_0": true}
	f := FreshRenaming("f_", avoid)
	a := f("x")
	if a == "f_x_0" {
		t.Error("fresh renaming must avoid the avoid-set")
	}
	if f("x") != a {
		t.Error("renaming must be stable per variable")
	}
	b := f("y")
	if a == b {
		t.Error("distinct variables must get distinct names")
	}
}

func TestSignatureInvariantUnderRenaming(t *testing.T) {
	q := paperQ()
	r := q.RenameVars(func(v string) string { return "zz_" + v })
	if q.Signature() != r.Signature() {
		t.Errorf("signatures differ under renaming:\n%s\n%s", q.Signature(), r.Signature())
	}
	// A different query has a different signature.
	q2 := paperQ()
	q2.Conds = q2.Conds[:1]
	if q.Signature() == q2.Signature() {
		t.Error("different queries should have different signatures")
	}
}

func TestNormalizeBindingOrder(t *testing.T) {
	q := &Query{
		Out: C(true),
		Bindings: []Binding{
			{Var: "b", Range: Name("S")},
			{Var: "a", Range: Name("R")},
			{Var: "c", Range: Prj(V("a"), "F")},
		},
	}
	n := q.NormalizeBindingOrder()
	if err := n.Validate(); err != nil {
		t.Fatalf("normalized query invalid: %v", err)
	}
	// R a must come before a.F c; S b sorts before R? "!R" < "!S" so R a first.
	if n.Bindings[0].Var != "a" {
		t.Errorf("first binding = %v, want a", n.Bindings[0])
	}
	// Normalization of two reorderings agree.
	q2 := &Query{
		Out: C(true),
		Bindings: []Binding{
			{Var: "a", Range: Name("R")},
			{Var: "c", Range: Prj(V("a"), "F")},
			{Var: "b", Range: Name("S")},
		},
	}
	if n.Signature() != q2.NormalizeBindingOrder().Signature() {
		t.Error("normalization should canonicalize binding order")
	}
}

func TestCloneIndependence(t *testing.T) {
	q := paperQ()
	c := q.Clone()
	c.Bindings[0] = Binding{Var: "zz", Range: Name("Other")}
	c.Conds = append(c.Conds, Cond{L: V("zz"), R: C(1)})
	if q.Bindings[0].Var != "d" {
		t.Error("Clone must not share binding storage")
	}
	if len(q.Conds) != 2 {
		t.Error("Clone must not share cond storage")
	}
}

func TestCondEqualFlip(t *testing.T) {
	c := Cond{L: V("x"), R: V("y")}
	if !c.Equal(c.Flip()) {
		t.Error("cond equality must be symmetric")
	}
	if c.Equal(Cond{L: V("x"), R: V("z")}) {
		t.Error("different conds must differ")
	}
}

func TestAllTerms(t *testing.T) {
	q := paperQ()
	terms := q.AllTerms()
	// Must include binding vars, ranges, condition sides, output subterms.
	want := []*Term{
		Name("depts"), V("d"), Prj(V("d"), "DProjs"), V("s"),
		Name("Proj"), V("p"), Prj(V("p"), "PName"),
		Prj(V("p"), "CustName"), C("CitiBank"), Prj(V("p"), "Budg"),
		Prj(V("d"), "DName"),
	}
	has := func(x *Term) bool {
		for _, tm := range terms {
			if tm.Equal(x) {
				return true
			}
		}
		return false
	}
	for _, w := range want {
		if !has(w) {
			t.Errorf("AllTerms missing %s", w)
		}
	}
}

func TestDependencyValidateAndString(t *testing.T) {
	// RIC1 of the paper:
	// forall (d in depts, s in d.DProjs) exists (p in Proj) s = p.PName
	ric1 := &Dependency{
		Name: "RIC1",
		Premise: []Binding{
			{Var: "d", Range: Name("depts")},
			{Var: "s", Range: Prj(V("d"), "DProjs")},
		},
		Conclusion:      []Binding{{Var: "p", Range: Name("Proj")}},
		ConclusionConds: []Cond{{L: V("s"), R: Prj(V("p"), "PName")}},
	}
	if err := ric1.Validate(); err != nil {
		t.Fatalf("RIC1 invalid: %v", err)
	}
	s := ric1.String()
	for _, frag := range []string{"RIC1", "forall (d in depts, s in d.DProjs)", "exists (p in Proj)", "s = p.PName"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String missing %q: %s", frag, s)
		}
	}
	if ric1.IsEGD() {
		t.Error("RIC1 is not an EGD")
	}
	if ric1.IsFull() {
		t.Error("RIC1 is not full: p is not determined by equalities")
	}
}

func TestDependencyEGDAndFull(t *testing.T) {
	// KEY1: forall (d in depts, d' in depts) d.DName = d'.DName -> d = d'
	key := &Dependency{
		Name: "KEY1",
		Premise: []Binding{
			{Var: "d", Range: Name("depts")},
			{Var: "d2", Range: Name("depts")},
		},
		PremiseConds:    []Cond{{L: Prj(V("d"), "DName"), R: Prj(V("d2"), "DName")}},
		ConclusionConds: []Cond{{L: V("d"), R: V("d2")}},
	}
	if err := key.Validate(); err != nil {
		t.Fatalf("KEY invalid: %v", err)
	}
	if !key.IsEGD() || !key.IsFull() {
		t.Error("KEY must be an EGD and full")
	}

	// ΦV for a view V = select A:r.A from R r: forall (r in R) exists
	// (v in V) v = struct(A: r.A) — full because v is determined.
	phiV := &Dependency{
		Name:            "PhiV",
		Premise:         []Binding{{Var: "r", Range: Name("R")}},
		Conclusion:      []Binding{{Var: "v", Range: Name("V")}},
		ConclusionConds: []Cond{{L: V("v"), R: Struct(SF("A", Prj(V("r"), "A")))}},
	}
	if !phiV.IsFull() {
		t.Error("view tgd with determined existential must be full")
	}
}

func TestDependencyValidateErrors(t *testing.T) {
	bad := &Dependency{
		Name:    "bad",
		Premise: []Binding{{Var: "x", Range: Prj(V("y"), "A")}},
	}
	if err := bad.Validate(); err == nil {
		t.Error("unbound premise range var should fail")
	}
	bad2 := &Dependency{
		Name:            "bad2",
		Premise:         []Binding{{Var: "x", Range: Name("R")}},
		ConclusionConds: []Cond{{L: V("zz"), R: V("x")}},
	}
	if err := bad2.Validate(); err == nil {
		t.Error("unbound conclusion cond var should fail")
	}
	dup := &Dependency{
		Premise:    []Binding{{Var: "x", Range: Name("R")}},
		Conclusion: []Binding{{Var: "x", Range: Name("S")}},
	}
	if err := dup.Validate(); err == nil {
		t.Error("premise/conclusion var collision should fail")
	}
}

func TestDependencyPremiseQuery(t *testing.T) {
	d := &Dependency{
		Premise:      []Binding{{Var: "r", Range: Name("R")}},
		PremiseConds: []Cond{{L: Prj(V("r"), "A"), R: C(3)}},
		Conclusion:   []Binding{{Var: "s", Range: Name("S")}},
	}
	pq := d.PremiseQuery()
	if err := pq.Validate(); err != nil {
		t.Fatalf("premise query invalid: %v", err)
	}
	if len(pq.Bindings) != 1 || len(pq.Conds) != 1 {
		t.Error("premise query should have the premise bindings and conds")
	}
	if !pq.Out.Equal(C(true)) {
		t.Error("premise query is boolean-valued")
	}
}

func TestDependencyRenameVars(t *testing.T) {
	d := &Dependency{
		Name:            "d",
		Premise:         []Binding{{Var: "x", Range: Name("R")}},
		Conclusion:      []Binding{{Var: "y", Range: Name("S")}},
		ConclusionConds: []Cond{{L: Prj(V("x"), "A"), R: Prj(V("y"), "B")}},
	}
	r := d.RenameVars(func(v string) string { return v + "9" })
	if r.Premise[0].Var != "x9" || r.Conclusion[0].Var != "y9" {
		t.Error("vars not renamed")
	}
	if !r.ConclusionConds[0].L.Equal(Prj(V("x9"), "A")) {
		t.Error("conclusion conds not renamed")
	}
	if err := r.Validate(); err != nil {
		t.Errorf("renamed dependency invalid: %v", err)
	}
}

func TestDependencyNames(t *testing.T) {
	d := &Dependency{
		Premise:         []Binding{{Var: "p", Range: Name("Proj")}},
		Conclusion:      []Binding{{Var: "i", Range: Dom(Name("I"))}},
		ConclusionConds: []Cond{{L: Lk(Name("I"), V("i")), R: V("p")}},
	}
	ns := d.Names()
	if !ns["Proj"] || !ns["I"] || len(ns) != 2 {
		t.Errorf("Names = %v", ns)
	}
}
