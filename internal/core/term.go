// Package core defines the internal representation of the
// path-conjunctive (PC) language of Deutsch, Popa, Tannen (VLDB 1999):
// paths (terms), PC queries, and embedded path-conjunctive dependencies
// (EPCDs). Every other component of the optimizer — the chase, the
// backchase, containment, evaluation and cost estimation — operates on
// these structures.
//
// The grammar (§5 of the paper):
//
//	Paths             P ::= x | c | R | P.A | dom(P) | P[x]
//	Path conjunctions B ::= P1 = P1' and ... and Pk = Pk'
//	PC queries        select struct(A1: P1', ..., An: Pn')
//	                  from P1 x1, ..., Pm xm
//	                  where B
//
// Terms are immutable; all transformation functions return new terms.
package core

import (
	"fmt"
	"sort"
	"strings"
)

// TermKind discriminates the variants of Term.
type TermKind int

// The kinds of terms.
const (
	KVar TermKind = iota
	KConst
	KName   // schema name (relation, dictionary, class extent, view)
	KProj   // P.A — record projection (implicit deref in OQL)
	KDom    // dom(P) — domain of a dictionary
	KLookup // P[k] — dictionary lookup; NonFailing renders as P{k}
	KStruct // struct(A1: P1, ..., An: Pn) — output constructor
)

// Term is a path expression. Terms form a small algebraic datatype; since
// Go has no sum types, Term is a struct with a Kind discriminator and the
// union of all fields. Use the constructors (V, C, Name, Prj, Dom, Lk,
// Struct) rather than composite literals.
type Term struct {
	Kind TermKind

	// Name holds the variable name (KVar), schema name (KName) or
	// projected field name (KProj).
	Name string

	// Val holds the constant value for KConst. Constants are base-typed;
	// the dynamic type is one of int64, float64, string, bool.
	Val any

	// Base is the operand for KProj and KDom, the dictionary for KLookup.
	Base *Term

	// Key is the lookup key for KLookup.
	Key *Term

	// NonFailing marks a lookup with the physical operation M{k} that
	// returns the empty set instead of failing on missing keys (footnote 4
	// of the paper). PC surface queries may only use guarded failing
	// lookups; non-failing lookups appear in optimized plans (§4).
	NonFailing bool

	// Fields holds the components of a KStruct constructor, in order.
	Fields []StructField
}

// StructField is one component of a struct-constructor term.
type StructField struct {
	Name string
	Term *Term
}

// V returns a variable term.
func V(name string) *Term { return &Term{Kind: KVar, Name: name} }

// C returns a constant term. val must be int64, float64, string or bool;
// int is widened to int64 for convenience.
func C(val any) *Term {
	switch v := val.(type) {
	case int:
		return &Term{Kind: KConst, Val: int64(v)}
	case int64, float64, string, bool:
		return &Term{Kind: KConst, Val: v}
	default:
		panic(fmt.Sprintf("core: unsupported constant type %T", val))
	}
}

// Name returns a schema-name term.
func Name(name string) *Term { return &Term{Kind: KName, Name: name} }

// Prj returns the projection base.field.
func Prj(base *Term, field string) *Term {
	return &Term{Kind: KProj, Name: field, Base: base}
}

// PrjPath applies a sequence of projections: PrjPath(t, "a", "b") = t.a.b.
func PrjPath(base *Term, fields ...string) *Term {
	t := base
	for _, f := range fields {
		t = Prj(t, f)
	}
	return t
}

// Dom returns dom(dict).
func Dom(dict *Term) *Term { return &Term{Kind: KDom, Base: dict} }

// Lk returns the failing lookup dict[key].
func Lk(dict, key *Term) *Term {
	return &Term{Kind: KLookup, Base: dict, Key: key}
}

// LkNF returns the non-failing lookup dict{key}.
func LkNF(dict, key *Term) *Term {
	return &Term{Kind: KLookup, Base: dict, Key: key, NonFailing: true}
}

// Struct returns a struct-constructor term with fields in the given order.
func Struct(fields ...StructField) *Term {
	return &Term{Kind: KStruct, Fields: fields}
}

// SF is shorthand for a struct-constructor field.
func SF(name string, t *Term) StructField { return StructField{Name: name, Term: t} }

// Equal reports structural equality of terms. Constants compare by value,
// including across the int64/float64 divide only when identical dynamic
// types; NonFailing is significant.
func (t *Term) Equal(u *Term) bool {
	if t == u {
		return true
	}
	if t == nil || u == nil || t.Kind != u.Kind {
		return false
	}
	switch t.Kind {
	case KVar, KName:
		return t.Name == u.Name
	case KConst:
		return t.Val == u.Val
	case KProj:
		return t.Name == u.Name && t.Base.Equal(u.Base)
	case KDom:
		return t.Base.Equal(u.Base)
	case KLookup:
		return t.NonFailing == u.NonFailing && t.Base.Equal(u.Base) && t.Key.Equal(u.Key)
	case KStruct:
		if len(t.Fields) != len(u.Fields) {
			return false
		}
		for i := range t.Fields {
			if t.Fields[i].Name != u.Fields[i].Name ||
				!t.Fields[i].Term.Equal(u.Fields[i].Term) {
				return false
			}
		}
		return true
	}
	return false
}

// String renders the term in the surface syntax.
func (t *Term) String() string {
	if t == nil {
		return "<nil>"
	}
	switch t.Kind {
	case KVar, KName:
		return t.Name
	case KConst:
		if s, ok := t.Val.(string); ok {
			return fmt.Sprintf("%q", s)
		}
		return fmt.Sprintf("%v", t.Val)
	case KProj:
		return t.Base.String() + "." + t.Name
	case KDom:
		return "dom(" + t.Base.String() + ")"
	case KLookup:
		if t.NonFailing {
			return t.Base.String() + "{" + t.Key.String() + "}"
		}
		return t.Base.String() + "[" + t.Key.String() + "]"
	case KStruct:
		var b strings.Builder
		b.WriteString("struct(")
		for i, f := range t.Fields {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(f.Name)
			b.WriteString(": ")
			b.WriteString(f.Term.String())
		}
		b.WriteString(")")
		return b.String()
	default:
		return fmt.Sprintf("<bad term kind %d>", int(t.Kind))
	}
}

// HashKey returns a canonical string usable as a map key. It is injective
// on terms (two terms have the same key iff Equal); unlike String it
// distinguishes variables from schema names and tags constant types.
func (t *Term) HashKey() string {
	var b strings.Builder
	t.hashKey(&b)
	return b.String()
}

func (t *Term) hashKey(b *strings.Builder) {
	if t == nil {
		b.WriteString("<nil>")
		return
	}
	switch t.Kind {
	case KVar:
		b.WriteString("?")
		b.WriteString(t.Name)
	case KName:
		b.WriteString("!")
		b.WriteString(t.Name)
	case KConst:
		fmt.Fprintf(b, "#%T:%v", t.Val, t.Val)
	case KProj:
		t.Base.hashKey(b)
		b.WriteString(".")
		b.WriteString(t.Name)
	case KDom:
		b.WriteString("dom(")
		t.Base.hashKey(b)
		b.WriteString(")")
	case KLookup:
		t.Base.hashKey(b)
		if t.NonFailing {
			b.WriteString("{")
		} else {
			b.WriteString("[")
		}
		t.Key.hashKey(b)
		if t.NonFailing {
			b.WriteString("}")
		} else {
			b.WriteString("]")
		}
	case KStruct:
		b.WriteString("struct(")
		for i, f := range t.Fields {
			if i > 0 {
				b.WriteString(",")
			}
			b.WriteString(f.Name)
			b.WriteString(":")
			f.Term.hashKey(b)
		}
		b.WriteString(")")
	}
}

// Vars returns the set of variable names occurring in the term.
func (t *Term) Vars() map[string]bool {
	vs := make(map[string]bool)
	t.collectVars(vs)
	return vs
}

func (t *Term) collectVars(vs map[string]bool) {
	if t == nil {
		return
	}
	switch t.Kind {
	case KVar:
		vs[t.Name] = true
	case KProj, KDom:
		t.Base.collectVars(vs)
	case KLookup:
		t.Base.collectVars(vs)
		t.Key.collectVars(vs)
	case KStruct:
		for _, f := range t.Fields {
			f.Term.collectVars(vs)
		}
	}
}

// Names returns the set of schema names occurring in the term.
func (t *Term) Names() map[string]bool {
	ns := make(map[string]bool)
	t.collectNames(ns)
	return ns
}

func (t *Term) collectNames(ns map[string]bool) {
	if t == nil {
		return
	}
	switch t.Kind {
	case KName:
		ns[t.Name] = true
	case KProj, KDom:
		t.Base.collectNames(ns)
	case KLookup:
		t.Base.collectNames(ns)
		t.Key.collectNames(ns)
	case KStruct:
		for _, f := range t.Fields {
			f.Term.collectNames(ns)
		}
	}
}

// MentionsVar reports whether the variable occurs in the term.
func (t *Term) MentionsVar(name string) bool {
	if t == nil {
		return false
	}
	switch t.Kind {
	case KVar:
		return t.Name == name
	case KProj, KDom:
		return t.Base.MentionsVar(name)
	case KLookup:
		return t.Base.MentionsVar(name) || t.Key.MentionsVar(name)
	case KStruct:
		for _, f := range t.Fields {
			if f.Term.MentionsVar(name) {
				return true
			}
		}
	}
	return false
}

// MentionsAnyVar reports whether any of the given variables occurs in t.
func (t *Term) MentionsAnyVar(vars map[string]bool) bool {
	if len(vars) == 0 {
		return false
	}
	for v := range t.Vars() {
		if vars[v] {
			return true
		}
	}
	return false
}

// Subst returns the term with every free occurrence of the variables in
// the substitution replaced. The substitution maps variable names to
// replacement terms.
func (t *Term) Subst(sub map[string]*Term) *Term {
	if t == nil || len(sub) == 0 {
		return t
	}
	switch t.Kind {
	case KVar:
		if r, ok := sub[t.Name]; ok {
			return r
		}
		return t
	case KConst, KName:
		return t
	case KProj:
		return &Term{Kind: KProj, Name: t.Name, Base: t.Base.Subst(sub)}
	case KDom:
		return &Term{Kind: KDom, Base: t.Base.Subst(sub)}
	case KLookup:
		return &Term{Kind: KLookup, Base: t.Base.Subst(sub), Key: t.Key.Subst(sub), NonFailing: t.NonFailing}
	case KStruct:
		fs := make([]StructField, len(t.Fields))
		for i, f := range t.Fields {
			fs[i] = StructField{Name: f.Name, Term: f.Term.Subst(sub)}
		}
		return &Term{Kind: KStruct, Fields: fs}
	default:
		return t
	}
}

// Subterms returns all subterms of t (including t itself) in a
// deterministic order (post-order, deduplicated by HashKey).
func (t *Term) Subterms() []*Term {
	seen := make(map[string]bool)
	var out []*Term
	var walk func(*Term)
	walk = func(u *Term) {
		if u == nil {
			return
		}
		switch u.Kind {
		case KProj, KDom:
			walk(u.Base)
		case KLookup:
			walk(u.Base)
			walk(u.Key)
		case KStruct:
			for _, f := range u.Fields {
				walk(f.Term)
			}
		}
		k := u.HashKey()
		if !seen[k] {
			seen[k] = true
			out = append(out, u)
		}
	}
	walk(t)
	return out
}

// Size returns the number of nodes in the term tree.
func (t *Term) Size() int {
	if t == nil {
		return 0
	}
	switch t.Kind {
	case KVar, KConst, KName:
		return 1
	case KProj, KDom:
		return 1 + t.Base.Size()
	case KLookup:
		return 1 + t.Base.Size() + t.Key.Size()
	case KStruct:
		n := 1
		for _, f := range t.Fields {
			n += f.Term.Size()
		}
		return n
	default:
		return 1
	}
}

// Root descends through projections, lookups and dom to the leftmost leaf
// (a variable, constant, or schema name). For example the root of
// Dept[d].DProjs is Dept.
func (t *Term) Root() *Term {
	for {
		switch t.Kind {
		case KProj, KDom, KLookup:
			t = t.Base
		default:
			return t
		}
	}
}

// IsGround reports whether the term contains no variables.
func (t *Term) IsGround() bool { return len(t.Vars()) == 0 }

// SortedVars returns the variables of t in sorted order.
func (t *Term) SortedVars() []string {
	vs := t.Vars()
	out := make([]string, 0, len(vs))
	for v := range vs {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}
