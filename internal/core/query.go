package core

import (
	"fmt"
	"sort"
	"strings"
)

// Binding is one generator of a from clause: "Range var", e.g.
// "Proj p" or "dom(Dept) d" or "Dept[d].DProjs s". Later bindings may
// depend on variables introduced by earlier ones (dependent join).
type Binding struct {
	Var   string
	Range *Term
}

// String renders the binding in "Range var" source syntax.
func (b Binding) String() string { return b.Range.String() + " " + b.Var }

// Cond is an equality between two paths, the only predicate form of the
// path-conjunctive language.
type Cond struct {
	L, R *Term
}

// String renders the condition in "L = R" source syntax.
func (c Cond) String() string { return c.L.String() + " = " + c.R.String() }

// Flip returns the symmetric condition.
func (c Cond) Flip() Cond { return Cond{L: c.R, R: c.L} }

// Equal reports equality of conditions up to symmetry.
func (c Cond) Equal(d Cond) bool {
	return (c.L.Equal(d.L) && c.R.Equal(d.R)) || (c.L.Equal(d.R) && c.R.Equal(d.L))
}

// Query is a path-conjunctive query:
//
//	select Out from Bindings where Conds
//
// with set (distinct) semantics. Out is typically a struct-constructor
// term but may be any path of base or flat-record type.
type Query struct {
	Out      *Term
	Bindings []Binding
	Conds    []Cond
}

// NewQuery builds a query; it is a convenience for literal construction.
func NewQuery(out *Term, bindings []Binding, conds []Cond) *Query {
	return &Query{Out: out, Bindings: bindings, Conds: conds}
}

// String renders the query in the surface syntax across multiple lines.
func (q *Query) String() string {
	var b strings.Builder
	b.WriteString("select ")
	b.WriteString(q.Out.String())
	b.WriteString("\nfrom ")
	for i, bd := range q.Bindings {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(bd.String())
	}
	if len(q.Conds) > 0 {
		b.WriteString("\nwhere ")
		for i, c := range q.Conds {
			if i > 0 {
				b.WriteString(" and ")
			}
			b.WriteString(c.String())
		}
	}
	return b.String()
}

// Clone returns a deep-enough copy: binding and condition slices are
// copied; terms are immutable and shared.
func (q *Query) Clone() *Query {
	nb := make([]Binding, len(q.Bindings))
	copy(nb, q.Bindings)
	nc := make([]Cond, len(q.Conds))
	copy(nc, q.Conds)
	return &Query{Out: q.Out, Bindings: nb, Conds: nc}
}

// BoundVars returns the set of variables introduced by the from clause.
func (q *Query) BoundVars() map[string]bool {
	vs := make(map[string]bool, len(q.Bindings))
	for _, b := range q.Bindings {
		vs[b.Var] = true
	}
	return vs
}

// BindingOf returns the index of the binding that introduces the variable,
// or -1.
func (q *Query) BindingOf(v string) int {
	for i, b := range q.Bindings {
		if b.Var == v {
			return i
		}
	}
	return -1
}

// Names returns all schema names mentioned anywhere in the query.
func (q *Query) Names() map[string]bool {
	ns := make(map[string]bool)
	for _, b := range q.Bindings {
		for n := range b.Range.Names() {
			ns[n] = true
		}
	}
	for _, c := range q.Conds {
		for n := range c.L.Names() {
			ns[n] = true
		}
		for n := range c.R.Names() {
			ns[n] = true
		}
	}
	for n := range q.Out.Names() {
		ns[n] = true
	}
	return ns
}

// AllTerms returns every term occurring in the query (ranges, condition
// sides, output and all their subterms), deduplicated, in deterministic
// order.
func (q *Query) AllTerms() []*Term {
	seen := make(map[string]bool)
	var out []*Term
	add := func(ts []*Term) {
		for _, t := range ts {
			k := t.HashKey()
			if !seen[k] {
				seen[k] = true
				out = append(out, t)
			}
		}
	}
	for _, b := range q.Bindings {
		add(b.Range.Subterms())
		add(V(b.Var).Subterms())
	}
	for _, c := range q.Conds {
		add(c.L.Subterms())
		add(c.R.Subterms())
	}
	add(q.Out.Subterms())
	return out
}

// Validate checks the structural well-formedness of the query:
// binding variables are distinct, every range mentions only variables
// introduced earlier, and conditions/output mention only bound variables.
func (q *Query) Validate() error {
	if q.Out == nil {
		return fmt.Errorf("core: query with nil output")
	}
	introduced := make(map[string]bool, len(q.Bindings))
	for i, b := range q.Bindings {
		if b.Var == "" {
			return fmt.Errorf("core: binding %d has empty variable", i)
		}
		if introduced[b.Var] {
			return fmt.Errorf("core: duplicate binding variable %q", b.Var)
		}
		if b.Range == nil {
			return fmt.Errorf("core: binding %q has nil range", b.Var)
		}
		for v := range b.Range.Vars() {
			if !introduced[v] {
				return fmt.Errorf("core: range of %q mentions unbound variable %q", b.Var, v)
			}
		}
		introduced[b.Var] = true
	}
	for _, c := range q.Conds {
		for v := range c.L.Vars() {
			if !introduced[v] {
				return fmt.Errorf("core: condition %s mentions unbound variable %q", c, v)
			}
		}
		for v := range c.R.Vars() {
			if !introduced[v] {
				return fmt.Errorf("core: condition %s mentions unbound variable %q", c, v)
			}
		}
	}
	for v := range q.Out.Vars() {
		if !introduced[v] {
			return fmt.Errorf("core: output mentions unbound variable %q", v)
		}
	}
	return nil
}

// CheckPC verifies the PC restrictions of §5 beyond Validate:
// every failing lookup P[x] must be guarded — there must be a binding
// "dom(P) y" in the from clause with x = y implied syntactically (we
// accept x literally equal to a binding var over dom(P), or an explicit
// where condition x = y). Non-failing lookups are always allowed (they
// are plan-level operations).
func (q *Query) CheckPC() error {
	// Collect guards: for each dom-binding "dom(P) y" remember (P, y).
	type guard struct {
		dict *Term
		v    string
	}
	var guards []guard
	for _, b := range q.Bindings {
		if b.Range.Kind == KDom {
			guards = append(guards, guard{dict: b.Range.Base, v: b.Var})
		}
	}
	eq := func(a, b *Term) bool {
		if a.Equal(b) {
			return true
		}
		for _, c := range q.Conds {
			if (c.L.Equal(a) && c.R.Equal(b)) || (c.L.Equal(b) && c.R.Equal(a)) {
				return true
			}
		}
		return false
	}
	var check func(t *Term) error
	check = func(t *Term) error {
		if t == nil {
			return nil
		}
		switch t.Kind {
		case KLookup:
			if !t.NonFailing {
				ok := false
				for _, g := range guards {
					if g.dict.Equal(t.Base) && eq(t.Key, V(g.v)) {
						ok = true
						break
					}
				}
				if !ok {
					return fmt.Errorf("core: unguarded lookup %s (no dom(%s) binding with key equality)", t, t.Base)
				}
			}
			if err := check(t.Base); err != nil {
				return err
			}
			return check(t.Key)
		case KProj, KDom:
			return check(t.Base)
		case KStruct:
			for _, f := range t.Fields {
				if err := check(f.Term); err != nil {
					return err
				}
			}
		}
		return nil
	}
	for _, b := range q.Bindings {
		if err := check(b.Range); err != nil {
			return err
		}
	}
	for _, c := range q.Conds {
		if err := check(c.L); err != nil {
			return err
		}
		if err := check(c.R); err != nil {
			return err
		}
	}
	return check(q.Out)
}

// RenameVars returns a copy of the query with every bound variable renamed
// by the given function. Useful for freshening apart before homomorphism
// search.
func (q *Query) RenameVars(rename func(string) string) *Query {
	sub := make(map[string]*Term, len(q.Bindings))
	for _, b := range q.Bindings {
		sub[b.Var] = V(rename(b.Var))
	}
	nb := make([]Binding, len(q.Bindings))
	for i, b := range q.Bindings {
		nb[i] = Binding{Var: rename(b.Var), Range: b.Range.Subst(sub)}
	}
	nc := make([]Cond, len(q.Conds))
	for i, c := range q.Conds {
		nc[i] = Cond{L: c.L.Subst(sub), R: c.R.Subst(sub)}
	}
	return &Query{Out: q.Out.Subst(sub), Bindings: nb, Conds: nc}
}

// FreshRenaming returns a renaming function producing variables that do
// not collide with any variable in `avoid`, by appending primes or a
// numeric suffix.
func FreshRenaming(prefix string, avoid map[string]bool) func(string) string {
	counter := 0
	assigned := make(map[string]string)
	return func(v string) string {
		if r, ok := assigned[v]; ok {
			return r
		}
		for {
			cand := fmt.Sprintf("%s%s_%d", prefix, v, counter)
			counter++
			if !avoid[cand] {
				assigned[v] = cand
				avoid[cand] = true
				return cand
			}
		}
	}
}

// HasBinding reports whether the query contains a binding var over a range
// equal to r.
func (q *Query) HasBinding(v string, r *Term) bool {
	for _, b := range q.Bindings {
		if b.Var == v && b.Range.Equal(r) {
			return true
		}
	}
	return false
}

// CondsMentioning returns the indices of the conditions that mention any
// of the given variables.
func (q *Query) CondsMentioning(vars map[string]bool) []int {
	var out []int
	for i, c := range q.Conds {
		if c.L.MentionsAnyVar(vars) || c.R.MentionsAnyVar(vars) {
			out = append(out, i)
		}
	}
	return out
}

// SortedNames returns the schema names of the query in sorted order.
func (q *Query) SortedNames() []string {
	ns := q.Names()
	out := make([]string, 0, len(ns))
	for n := range ns {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Signature returns a canonical string for the query at its current
// binding order: variables are renamed to b0, b1, ... by binding
// position and the query is printed with sorted, oriented, deduplicated
// conditions. It is invariant under variable renaming and condition
// reorder/flip but NOT under binding reorder — two orders of the same
// bindings render different positional names. For the fully
// renaming-invariant form that also canonicalizes the order — the
// contract the plan cache and singleflight keys rely on — use
// CanonicalSignature (canon.go).
func (q *Query) Signature() string {
	rename := make(map[string]*Term, len(q.Bindings))
	for i, b := range q.Bindings {
		rename[b.Var] = V(fmt.Sprintf("b%d", i))
	}
	var sb strings.Builder
	for i, b := range q.Bindings {
		fmt.Fprintf(&sb, "from b%d in %s;", i, b.Range.Subst(rename).HashKey())
	}
	conds := make([]string, 0, len(q.Conds))
	for _, c := range q.Conds {
		l := c.L.Subst(rename).HashKey()
		r := c.R.Subst(rename).HashKey()
		if l > r {
			l, r = r, l
		}
		conds = append(conds, l+"="+r)
	}
	sort.Strings(conds)
	// Deduplicate identical conditions.
	prev := ""
	for _, c := range conds {
		if c != prev {
			sb.WriteString("where " + c + ";")
			prev = c
		}
	}
	sb.WriteString("out " + q.Out.Subst(rename).HashKey())
	return sb.String()
}
