package core

// Feature keys summarize which parts of the canonical database a term can
// interact with during homomorphism search. The incremental chase uses
// them in two places that must agree:
//
//   - the dependency index maps each feature of a dependency's premise
//     (ranges and condition sides) to the dependency, and
//   - the congruence closure logs the features of every class touched by a
//     union, and the chase adds the features of newly added binding
//     ranges.
//
// A dependency can become newly applicable only when a homomorphism test
// — "is this target range congruent to the transported premise range",
// "does this transported premise condition hold" — flips from false to
// true. Both flips require a union joining the congruence classes of the
// two tested terms (or a brand-new binding supplying a new target), and
// the transported premise term has exactly the features of the premise
// term it was built from: a homomorphism only substitutes variables for
// variables, so the structural shape is preserved. Hence intersecting the
// delta's features with a dependency's premise features over-approximates
// "this dependency may have gained a premise homomorphism".
//
// The keys:
//
//	"!N"   — the schema name N occurs in the term
//	".F"   — a projection .F whose base chain bottoms out in a variable
//	"dom"  — dom(P) with P rooted in a variable
//	"[]"   — a lookup P[k] / P{k} with P rooted in a variable
//	"?"    — the term is a bare variable
//
// Variables occurring inside compound terms contribute no key of their
// own: only the innermost var-rooted operator can participate in a
// congruence signature, and the "?" key is reserved for tests between
// bare variables (which only arise from bare-variable premise ranges or
// condition sides).
const (
	FeatVar    = "?"
	FeatDom    = "dom"
	FeatLookup = "[]"
)

// FeatureKeys returns the feature keys of the term (see the package-level
// comment above). The result is a freshly allocated set.
func (t *Term) FeatureKeys() map[string]bool {
	out := make(map[string]bool, 2)
	t.collectFeatures(true, out)
	return out
}

// CollectFeatureKeys adds the term's feature keys to out.
func (t *Term) CollectFeatureKeys(out map[string]bool) {
	t.collectFeatures(true, out)
}

func (t *Term) collectFeatures(top bool, out map[string]bool) {
	if t == nil {
		return
	}
	switch t.Kind {
	case KVar:
		if top {
			out[FeatVar] = true
		}
	case KName:
		out["!"+t.Name] = true
	case KProj:
		if t.Base.Root().Kind == KVar {
			out["."+t.Name] = true
		}
		t.Base.collectFeatures(false, out)
	case KDom:
		if t.Base.Root().Kind == KVar {
			out[FeatDom] = true
		}
		t.Base.collectFeatures(false, out)
	case KLookup:
		if t.Base.Root().Kind == KVar {
			out[FeatLookup] = true
		}
		t.Base.collectFeatures(false, out)
		t.Key.collectFeatures(false, out)
	case KStruct:
		for _, f := range t.Fields {
			f.Term.collectFeatures(false, out)
		}
	}
}

// PremiseFeatureKeys returns the feature keys of the dependency's premise:
// the union over its premise ranges and premise condition sides, each
// treated as a top-level term. These are the keys under which the
// incremental chase indexes the dependency.
func (d *Dependency) PremiseFeatureKeys() map[string]bool {
	out := make(map[string]bool, 4)
	for _, b := range d.Premise {
		b.Range.CollectFeatureKeys(out)
	}
	for _, c := range d.PremiseConds {
		c.L.CollectFeatureKeys(out)
		c.R.CollectFeatureKeys(out)
	}
	return out
}
