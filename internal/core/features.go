package core

import "strings"

// Feature keys summarize which parts of the canonical database a term can
// interact with during homomorphism search. The incremental chase uses
// them in two places that must agree:
//
//   - the dependency index maps each feature of a dependency's premise
//     (ranges and condition sides) to the dependency, and
//   - the congruence closure logs the features of every class touched by a
//     union, and the chase adds the features of newly added binding
//     ranges.
//
// A dependency can become newly applicable only when a homomorphism test
// — "is this target range congruent to the transported premise range",
// "does this transported premise condition hold" — flips from false to
// true. Both flips require a union joining the congruence classes of the
// two tested terms (or a brand-new binding supplying a new target), and
// the transported premise term has exactly the features of the premise
// term it was built from: a homomorphism only substitutes variables for
// variables, so the structural shape is preserved. Hence intersecting the
// delta's features with a dependency's premise features over-approximates
// "this dependency may have gained a premise homomorphism".
//
// The keys:
//
//	"!N"          — the schema name N occurs in the term
//	"#T:v"        — the constant v (its HashKey) occurs in the term
//	"struct:F,G"  — a struct constructor with fields F,G occurs in the term
//	".F"          — a projection .F whose base chain bottoms out in a variable
//	"dom"         — dom(P) with P rooted in a variable
//	"[]"          — a lookup P[k] / P{k} with P rooted in a variable
//	"?"           — the term is a bare variable
//
// Constants get a key of their own (unlike variables) because they are
// rigid: a premise atom or condition side mentioning "x" can only be
// matched through a class that contains that very constant, so the
// constant's key connects the premise to exactly the unions and bindings
// whose classes carry it — e.g. a premise atom v in "x" must be woken
// when an EGD merges d.A with "x", a union whose log would otherwise
// show only ".A".
//
// Struct constructors carry their field-name list (the congruence
// signature operator): two structs can only be congruent when their
// field lists match, and without the key a premise atom like
// v in struct(A: w) — whose var fields contribute nothing — would be
// featureless and unreachable from any delta. With names, constants, and
// struct keys, every term has at least one feature key: projection, dom,
// and lookup chains bottom out in a name, a constant, or a variable.
//
// Variables occurring inside compound terms contribute no key of their
// own: only the innermost var-rooted operator can participate in a
// congruence signature, and the "?" key is reserved for tests between
// bare variables (which only arise from bare-variable premise ranges or
// condition sides).
const (
	FeatVar    = "?"
	FeatDom    = "dom"
	FeatLookup = "[]"
)

// FeatureKeys returns the feature keys of the term (see the package-level
// comment above). The result is a freshly allocated set.
func (t *Term) FeatureKeys() map[string]bool {
	out := make(map[string]bool, 2)
	t.collectFeatures(true, out)
	return out
}

// CollectFeatureKeys adds the term's feature keys to out.
func (t *Term) CollectFeatureKeys(out map[string]bool) {
	t.collectFeatures(true, out)
}

func (t *Term) collectFeatures(top bool, out map[string]bool) {
	if t == nil {
		return
	}
	switch t.Kind {
	case KVar:
		if top {
			out[FeatVar] = true
		}
	case KConst:
		out[t.HashKey()] = true
	case KName:
		out["!"+t.Name] = true
	case KProj:
		if t.Base.Root().Kind == KVar {
			out["."+t.Name] = true
		}
		t.Base.collectFeatures(false, out)
	case KDom:
		if t.Base.Root().Kind == KVar {
			out[FeatDom] = true
		}
		t.Base.collectFeatures(false, out)
	case KLookup:
		if t.Base.Root().Kind == KVar {
			out[FeatLookup] = true
		}
		t.Base.collectFeatures(false, out)
		t.Key.collectFeatures(false, out)
	case KStruct:
		var b strings.Builder
		b.WriteString("struct:")
		for i, f := range t.Fields {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(f.Name)
			f.Term.collectFeatures(false, out)
		}
		out[b.String()] = true
	}
}

// PremiseFeatureKeys returns the feature keys of the dependency's premise:
// the union over its premise ranges and premise condition sides, each
// treated as a top-level term. These are the keys under which the
// incremental chase indexes the dependency.
//
// A premise variable bound by more than one premise binding contributes
// FeatVar: the repeat adds a var≡var witness test to homomorphism search
// ("some target binding has a congruent range AND a congruent variable"),
// and that test flips only through a union joining two bare-variable
// classes — a union whose feature log may contain nothing but FeatVar.
// Dependency.Validate rejects that shape ("duplicate premise var"), but
// the chase engines accept unvalidated dependencies and enumerate the
// witness test for them, so the index defends it rather than silently
// diverging from the naive engine.
func (d *Dependency) PremiseFeatureKeys() map[string]bool {
	out := make(map[string]bool, 4)
	seen := make(map[string]bool, len(d.Premise))
	for _, b := range d.Premise {
		if seen[b.Var] {
			out[FeatVar] = true
		}
		seen[b.Var] = true
		b.Range.CollectFeatureKeys(out)
	}
	for _, c := range d.PremiseConds {
		c.L.CollectFeatureKeys(out)
		c.R.CollectFeatureKeys(out)
	}
	return out
}
