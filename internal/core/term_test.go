package core

import (
	"testing"
	"testing/quick"
)

func TestTermString(t *testing.T) {
	cases := []struct {
		t    *Term
		want string
	}{
		{V("p"), "p"},
		{C(42), "42"},
		{C("CitiBank"), `"CitiBank"`},
		{C(true), "true"},
		{Name("Proj"), "Proj"},
		{Prj(V("p"), "Budg"), "p.Budg"},
		{Dom(Name("Dept")), "dom(Dept)"},
		{Lk(Name("Dept"), V("d")), "Dept[d]"},
		{LkNF(Name("SI"), Prj(V("r"), "B")), "SI{r.B}"},
		{Prj(Lk(Name("Dept"), V("d")), "DName"), "Dept[d].DName"},
		{Struct(SF("PN", V("s")), SF("PB", Prj(V("p"), "Budg"))), "struct(PN: s, PB: p.Budg)"},
		{PrjPath(V("x"), "a", "b", "c"), "x.a.b.c"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestTermEqual(t *testing.T) {
	a := Prj(Lk(Name("Dept"), V("d")), "DName")
	b := Prj(Lk(Name("Dept"), V("d")), "DName")
	if !a.Equal(b) {
		t.Error("structurally identical terms must be equal")
	}
	if a.Equal(Prj(Lk(Name("Dept"), V("e")), "DName")) {
		t.Error("different key variable must differ")
	}
	if Lk(Name("SI"), V("k")).Equal(LkNF(Name("SI"), V("k"))) {
		t.Error("failing vs non-failing lookup must differ")
	}
	if C(int64(1)).Equal(C("1")) {
		t.Error("int and string constants must differ")
	}
	if V("x").Equal(Name("x")) {
		t.Error("variable and schema name must differ")
	}
	var nilTerm *Term
	if nilTerm.Equal(V("x")) || V("x").Equal(nilTerm) {
		t.Error("nil term equality")
	}
}

func TestCPanicsOnBadType(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("C with unsupported type should panic")
		}
	}()
	C(3.14159i)
}

func TestVars(t *testing.T) {
	tm := Struct(
		SF("A", Prj(V("p"), "X")),
		SF("B", Lk(Name("M"), V("k"))),
		SF("C", Dom(Name("M"))),
	)
	vs := tm.Vars()
	if len(vs) != 2 || !vs["p"] || !vs["k"] {
		t.Errorf("Vars = %v, want {p, k}", vs)
	}
	if !tm.MentionsVar("p") || tm.MentionsVar("z") {
		t.Error("MentionsVar wrong")
	}
	if !tm.MentionsAnyVar(map[string]bool{"z": true, "k": true}) {
		t.Error("MentionsAnyVar should find k")
	}
	if tm.MentionsAnyVar(map[string]bool{"z": true}) {
		t.Error("MentionsAnyVar should not find z")
	}
	if tm.MentionsAnyVar(nil) {
		t.Error("MentionsAnyVar with empty set")
	}
}

func TestNames(t *testing.T) {
	tm := Lk(Name("Dept"), Prj(V("j"), "DOID"))
	ns := tm.Names()
	if len(ns) != 1 || !ns["Dept"] {
		t.Errorf("Names = %v, want {Dept}", ns)
	}
}

func TestSubst(t *testing.T) {
	tm := Prj(Lk(Name("Dept"), V("d")), "DName")
	got := tm.Subst(map[string]*Term{"d": Prj(V("j"), "DOID")})
	want := Prj(Lk(Name("Dept"), Prj(V("j"), "DOID")), "DName")
	if !got.Equal(want) {
		t.Errorf("Subst = %s, want %s", got, want)
	}
	// Original is unchanged (immutability).
	if !tm.Equal(Prj(Lk(Name("Dept"), V("d")), "DName")) {
		t.Error("Subst must not mutate the receiver")
	}
	// Empty substitution returns the term itself.
	if tm.Subst(nil) != tm {
		t.Error("empty substitution should return the same term")
	}
}

func TestSubstStruct(t *testing.T) {
	tm := Struct(SF("A", V("x")), SF("B", C(1)))
	got := tm.Subst(map[string]*Term{"x": C(7)})
	want := Struct(SF("A", C(7)), SF("B", C(1)))
	if !got.Equal(want) {
		t.Errorf("Subst = %s, want %s", got, want)
	}
}

func TestSubterms(t *testing.T) {
	tm := Prj(Lk(Name("Dept"), V("d")), "DName")
	subs := tm.Subterms()
	// Expected: Dept, d, Dept[d], Dept[d].DName — 4 distinct subterms.
	if len(subs) != 4 {
		t.Errorf("Subterms count = %d, want 4: %v", len(subs), subs)
	}
	// Post-order: the full term must be last.
	if !subs[len(subs)-1].Equal(tm) {
		t.Error("full term should be last in post-order")
	}
}

func TestSubtermsDedup(t *testing.T) {
	tm := Struct(SF("A", V("x")), SF("B", V("x")))
	subs := tm.Subterms()
	// x appears once.
	count := 0
	for _, s := range subs {
		if s.Equal(V("x")) {
			count++
		}
	}
	if count != 1 {
		t.Errorf("x appears %d times, want 1", count)
	}
}

func TestSizeRootGround(t *testing.T) {
	tm := Prj(Lk(Name("Dept"), V("d")), "DName")
	if tm.Size() != 4 {
		t.Errorf("Size = %d, want 4", tm.Size())
	}
	if !tm.Root().Equal(Name("Dept")) {
		t.Errorf("Root = %s, want Dept", tm.Root())
	}
	if tm.IsGround() {
		t.Error("term with variable is not ground")
	}
	if !Prj(Name("R"), "A").IsGround() {
		t.Error("R.A is ground")
	}
	if got := Dom(Name("M")).Root(); !got.Equal(Name("M")) {
		t.Errorf("Root(dom(M)) = %s", got)
	}
}

func TestSortedVars(t *testing.T) {
	tm := Struct(SF("A", V("z")), SF("B", V("a")), SF("C", V("m")))
	got := tm.SortedVars()
	want := []string{"a", "m", "z"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SortedVars = %v, want %v", got, want)
		}
	}
}

// Property: Subst with a fresh-variable renaming is invertible.
func TestSubstRoundTrip(t *testing.T) {
	f := func(n uint8) bool {
		tm := Prj(Lk(Name("M"), V("k")), "F")
		fwd := map[string]*Term{"k": V("k2")}
		bwd := map[string]*Term{"k2": V("k")}
		return tm.Subst(fwd).Subst(bwd).Equal(tm)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHashKeyInjective(t *testing.T) {
	terms := []*Term{
		V("x"), Name("x"), C("x"),
		Prj(V("x"), "A"), Dom(V("x")),
		Lk(V("x"), V("y")), LkNF(V("x"), V("y")),
		Struct(SF("A", V("x"))),
	}
	seen := make(map[string]*Term)
	for _, tm := range terms {
		k := tm.HashKey()
		if prev, ok := seen[k]; ok {
			t.Errorf("HashKey collision: %s vs %s -> %q", prev, tm, k)
		}
		seen[k] = tm
	}
}
