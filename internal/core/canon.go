// Renaming-invariant query canonicalization.
//
// The optimizer's serving story rests on canonical query signatures: they
// key the cross-call plan cache and the singleflight flight group, so two
// alpha-equivalent queries that canonicalize apart cost a full backchase
// instead of a cache hit. NormalizeBindingOrder therefore must pick the
// same binding order for every member of a query's isomorphism class —
// including adversarial renames that reverse the lexicographic order of
// same-range binding ties, the case a raw-variable-name tie-break gets
// wrong.
//
// The canonical form computed here is exact, never a heuristic:
//
//	CanonicalSignature(q) = min over every dependency-valid binding order
//	                        of Signature(q reordered)
//
// Signature renders positional variable names (b0, b1, ...) and sorts and
// orients conditions, so the minimized string mentions no original
// variable name anywhere — the minimum over orders is invariant under any
// alpha-rename, any binding shuffle, and any condition reorder or flip.
//
// The minimum is found by ordered branch-and-bound over the (dependency-
// valid) orders rather than by enumerating all of them:
//
//   - at each step the candidates (unused bindings whose range variables
//     are all placed) are grouped by their rendered chunk
//     "from bK in <range with placed vars positional>;" — a string that
//     is itself renaming-invariant — and groups are explored in chunk
//     order, so the first descent is greedy-minimal and nearly always
//     optimal;
//   - a branch is abandoned as soon as its rendered prefix can no longer
//     beat the best complete signature found (lexicographic pruning);
//   - residual ties — several candidates with byte-identical chunks, i.e.
//     alpha-equivalent ranges — are first partitioned by iterative
//     WL-style color refinement over the query graph (initial colors from
//     each binding's name-erased range shape, refined by the multiset of
//     neighbor colors through shared variables in bindings, conditions
//     and the output); candidates in distinct color classes cannot be
//     automorphic, and candidates in one class are tested pairwise with
//     an exact variable-swap automorphism check, so symmetric ties (self-
//     joins) collapse to a single branch instead of a factorial search.
//
// Queries with a cyclic binding dependency (invalid per Validate — every
// consumer boundary rejects them) have no dependency-valid order; rather
// than silently returning the input order (which canonicalizes two
// isomorphic invalid queries apart), the search falls back to all unused
// bindings, rendering not-yet-placed variables as an erased placeholder.
// The result is still deterministic and renaming-invariant; it is only no
// longer prefix-prunable, which is acceptable off the validated path.
package core

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// CanonicalSignature returns the renaming-invariant canonical signature
// of the query: the minimum of Signature over every dependency-valid
// binding order. Two queries have equal canonical signatures iff they are
// identical up to variable renaming, binding reorder, condition
// reorder/flip/duplication — the equivalence the plan cache and the
// singleflight group key on. Prefer this over
// NormalizeBindingOrder().Signature(), which performs the same search but
// also materializes the reordered query.
//
// The computation is pure — it never mutates the receiver — so any
// number of goroutines may canonicalize the same Query concurrently,
// which is how the serving layer keys racing requests.
func (q *Query) CanonicalSignature() string {
	_, sig := q.canonicalOrder()
	return sig
}

// NormalizeBindingOrder returns a copy of the query with bindings in the
// canonical order: the dependency-valid order minimizing Signature (see
// CanonicalSignature). The returned query keeps its original variable
// names; only the order changes, so it remains valid whenever the input
// was. Unlike the raw-name tie-break this order is invariant under
// variable renaming: alpha-renamed variants of one query normalize to
// orders that are themselves alpha-equivalent, and their Signatures are
// byte-identical.
func (q *Query) NormalizeBindingOrder() *Query {
	order, _ := q.canonicalOrder()
	out := q.Clone()
	for i, idx := range order {
		out.Bindings[i] = q.Bindings[idx]
	}
	return out
}

// canonPlaceholder renders a not-yet-placed variable inside a candidate
// chunk during the cyclic-residue fallback. The control byte cannot occur
// in a surface variable name, so it collides with nothing.
const canonPlaceholder = "\x01"

// canonicalOrder runs the branch-and-bound search, returning the
// canonical binding order (as indices into q.Bindings) and the canonical
// signature it renders.
func (q *Query) canonicalOrder() ([]int, string) {
	n := len(q.Bindings)
	if n <= 1 {
		order := make([]int, n)
		return order, q.Signature()
	}
	s := &canonSearch{q: q, n: n}
	s.rangeVars = make([][]string, n)
	for i, b := range q.Bindings {
		s.rangeVars[i] = b.Range.SortedVars()
	}
	s.rec(make([]int, 0, n), make([]bool, n), make(map[string]*Term, n), "", true)
	return s.bestOrder, s.best
}

// canonSearch carries the branch-and-bound state.
type canonSearch struct {
	q         *Query
	n         int
	rangeVars [][]string // per binding: sorted variables of its range

	bestSet   bool
	best      string
	bestOrder []int

	colors      []int // WL refinement classes, computed lazily on first tie
	colorsReady bool
}

// rec extends the partial order by one position. rename maps placed
// variables to their positional terms; prefix is the rendered binding
// chunk sequence so far; exact reports that prefix equals the binding
// part of the final Signature for every completion (false only below a
// cyclic-residue fallback, where chunks render placeholders).
func (s *canonSearch) rec(order []int, used []bool, rename map[string]*Term, prefix string, exact bool) {
	d := len(order)
	if d == s.n {
		sig := s.reordered(order).Signature()
		if !s.bestSet || sig < s.best {
			s.bestSet = true
			s.best = sig
			s.bestOrder = append(s.bestOrder[:0], order...)
		}
		return
	}

	// Candidates: unused bindings whose range variables are all placed.
	var avail []int
	for i := range s.q.Bindings {
		if used[i] {
			continue
		}
		ok := true
		for _, v := range s.rangeVars[i] {
			if _, placed := rename[v]; !placed {
				ok = false
				break
			}
		}
		if ok {
			avail = append(avail, i)
		}
	}
	relaxed := false
	if len(avail) == 0 {
		// Cyclic dependency among the remaining bindings (invalid query):
		// canonicalize the residue deterministically instead of giving up.
		relaxed = true
		exact = false
		for i := range s.q.Bindings {
			if !used[i] {
				avail = append(avail, i)
			}
		}
	}

	type cand struct {
		idx   int
		chunk string
	}
	cands := make([]cand, 0, len(avail))
	for _, i := range avail {
		sub := rename
		if relaxed {
			sub = make(map[string]*Term, len(rename)+2)
			for v, t := range rename {
				sub[v] = t
			}
			for _, v := range s.rangeVars[i] {
				if _, placed := sub[v]; !placed {
					sub[v] = V(canonPlaceholder)
				}
			}
		}
		chunk := fmt.Sprintf("from b%d in %s;", d, s.q.Bindings[i].Range.Subst(sub).HashKey())
		cands = append(cands, cand{idx: i, chunk: chunk})
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].chunk != cands[b].chunk {
			return cands[a].chunk < cands[b].chunk
		}
		return cands[a].idx < cands[b].idx
	})

	for g := 0; g < len(cands); {
		h := g
		for h < len(cands) && cands[h].chunk == cands[g].chunk {
			h++
		}
		p := prefix + cands[g].chunk
		if exact && s.prunable(p) {
			g = h
			continue
		}
		// Branch over the tie group, skipping candidates interchangeable
		// with an already-explored one (variable-swap automorphism —
		// their subtrees render identical signatures).
		var explored []int
		for _, c := range cands[g:h] {
			skip := false
			for _, e := range explored {
				if s.interchangeable(e, c.idx, used, relaxed) {
					skip = true
					break
				}
			}
			if skip {
				continue
			}
			explored = append(explored, c.idx)
			v := s.q.Bindings[c.idx].Var
			used[c.idx] = true
			rename[v] = V("b" + strconv.Itoa(d))
			s.rec(append(order, c.idx), used, rename, p, exact)
			delete(rename, v)
			used[c.idx] = false
		}
		g = h
	}
}

// prunable reports that no completion of the rendered prefix p can beat
// the best complete signature: either p already exceeds best on their
// common prefix, or p extends past best without differing (a longer
// string with best as prefix compares greater).
func (s *canonSearch) prunable(p string) bool {
	if !s.bestSet {
		return false
	}
	if len(p) <= len(s.best) {
		return p > s.best[:len(p)]
	}
	return p[:len(s.best)] >= s.best
}

// reordered materializes the candidate order without copying conditions.
func (s *canonSearch) reordered(order []int) *Query {
	nb := make([]Binding, len(order))
	for i, idx := range order {
		nb[i] = s.q.Bindings[idx]
	}
	return &Query{Out: s.q.Out, Bindings: nb, Conds: s.q.Conds}
}

// interchangeable reports that exploring candidate j after candidate i is
// redundant: swapping their variables is an automorphism of the whole
// query, so every completion starting with j has a mirror completion
// starting with i rendering the same signature. WL colors gate the exact
// check — distinct colors mean provably no automorphism. In the relaxed
// (cyclic-residue) mode the mirror argument additionally requires the
// already-placed prefix to be fixed by the swap, i.e. no placed binding's
// range may mention either variable; on the dependency-valid path that
// holds by construction (placed ranges mention only placed variables).
func (s *canonSearch) interchangeable(i, j int, used []bool, relaxed bool) bool {
	if !s.colorsReady {
		s.colors = s.q.refineBindingColors()
		s.colorsReady = true
	}
	if s.colors[i] != s.colors[j] {
		return false
	}
	vi, vj := s.q.Bindings[i].Var, s.q.Bindings[j].Var
	if relaxed {
		for k := range s.q.Bindings {
			if used[k] && (s.q.Bindings[k].Range.MentionsVar(vi) || s.q.Bindings[k].Range.MentionsVar(vj)) {
				return false
			}
		}
	}
	return s.q.swapIsAutomorphism(vi, vj)
}

// swapIsAutomorphism reports whether exchanging the two variables maps
// the query onto itself: every binding's range maps to the range of the
// swapped variable's binding, the condition multiset (up to flip) is
// preserved, and the output is fixed.
func (q *Query) swapIsAutomorphism(a, b string) bool {
	sub := map[string]*Term{a: V(b), b: V(a)}
	rangeOf := make(map[string]*Term, len(q.Bindings))
	for _, bd := range q.Bindings {
		rangeOf[bd.Var] = bd.Range
	}
	for _, bd := range q.Bindings {
		tv := bd.Var
		switch tv {
		case a:
			tv = b
		case b:
			tv = a
		}
		r, ok := rangeOf[tv]
		if !ok || !r.Equal(bd.Range.Subst(sub)) {
			return false
		}
	}
	if !q.Out.Subst(sub).Equal(q.Out) {
		return false
	}
	// Condition multisets compared through orientation-normalized keys so
	// duplicated conditions cannot fake a bijection.
	condKey := func(c Cond) string {
		l, r := c.L.HashKey(), c.R.HashKey()
		if l > r {
			l, r = r, l
		}
		return l + "=" + r
	}
	orig := make([]string, len(q.Conds))
	img := make([]string, len(q.Conds))
	for i, c := range q.Conds {
		orig[i] = condKey(c)
		img[i] = condKey(Cond{L: c.L.Subst(sub), R: c.R.Subst(sub)})
	}
	sort.Strings(orig)
	sort.Strings(img)
	for i := range orig {
		if orig[i] != img[i] {
			return false
		}
	}
	return true
}

// refineBindingColors partitions the bindings by iterative WL-style color
// refinement over the query graph and returns one color id per binding.
// Equal colors mean refinement cannot distinguish the bindings; distinct
// colors certify that no automorphism maps one to the other. The
// partition is invariant under variable renaming and binding reorder:
// initial colors come from each binding's name-erased range shape (schema
// names, constants, struct field lists — the same rigid skeleton
// FeatureKeys extracts), and each round refines by the multiset of
// neighbor colors through shared variables in binding ranges, conditions
// and the output, with every rendering erased of variable names.
func (q *Query) refineBindingColors() []int {
	n := len(q.Bindings)
	owner := make(map[string]int, n)
	for i, b := range q.Bindings {
		owner[b.Var] = i
	}
	// colorTerm renders variable v inside a neighbor signature: the
	// binding's own variable becomes a fixed self marker, every other
	// bound variable its owner's current color, free variables (invalid
	// queries only) an erased placeholder.
	colorTerm := func(colors []int, self string, v string) *Term {
		if v == self {
			return V("\x01self")
		}
		if o, ok := owner[v]; ok {
			return V("\x02c" + strconv.Itoa(colors[o]))
		}
		return V(canonPlaceholder)
	}
	subFor := func(colors []int, self string, vars map[string]bool) map[string]*Term {
		sub := make(map[string]*Term, len(vars))
		for v := range vars {
			sub[v] = colorTerm(colors, self, v)
		}
		return sub
	}

	// Initial partition: name-erased range shape (every variable rendered
	// as the same placeholder).
	sigs := make([]string, n)
	for i, b := range q.Bindings {
		sub := make(map[string]*Term)
		for v := range b.Range.Vars() {
			sub[v] = V(canonPlaceholder)
		}
		sigs[i] = b.Range.Subst(sub).HashKey()
	}
	colors, distinct := compactColors(sigs)

	for round := 0; round < n && distinct < n; round++ {
		for i, b := range q.Bindings {
			self := b.Var
			var sb strings.Builder
			fmt.Fprintf(&sb, "c%d", colors[i])
			// Own range with neighbor colors.
			sb.WriteString("|r:")
			sb.WriteString(b.Range.Subst(subFor(colors, self, b.Range.Vars())).HashKey())
			// Bindings whose range mentions this binding's variable.
			var uses []string
			for j, bj := range q.Bindings {
				if j != i && bj.Range.MentionsVar(self) {
					uses = append(uses,
						bj.Range.Subst(subFor(colors, self, bj.Range.Vars())).HashKey()+
							":c"+strconv.Itoa(colors[j]))
				}
			}
			sort.Strings(uses)
			sb.WriteString("|u:")
			sb.WriteString(strings.Join(uses, ";"))
			// Conditions mentioning this binding's variable, orientation-
			// normalized.
			var conds []string
			for _, c := range q.Conds {
				if !c.L.MentionsVar(self) && !c.R.MentionsVar(self) {
					continue
				}
				vars := c.L.Vars()
				for v := range c.R.Vars() {
					vars[v] = true
				}
				sub := subFor(colors, self, vars)
				l := c.L.Subst(sub).HashKey()
				r := c.R.Subst(sub).HashKey()
				if l > r {
					l, r = r, l
				}
				conds = append(conds, l+"="+r)
			}
			sort.Strings(conds)
			sb.WriteString("|k:")
			sb.WriteString(strings.Join(conds, ";"))
			// Output, when it mentions this binding's variable.
			if q.Out.MentionsVar(self) {
				sb.WriteString("|o:")
				sb.WriteString(q.Out.Subst(subFor(colors, self, q.Out.Vars())).HashKey())
			}
			sigs[i] = sb.String()
		}
		next, nd := compactColors(sigs)
		if nd == distinct {
			break
		}
		colors, distinct = next, nd
	}
	return colors
}

// compactColors maps the signature strings to dense color ids ordered by
// signature, returning the ids and the number of distinct colors. Sorting
// the invariant signature strings keeps the ids themselves invariant.
func compactColors(sigs []string) ([]int, int) {
	uniq := append([]string(nil), sigs...)
	sort.Strings(uniq)
	id := make(map[string]int, len(uniq))
	for _, s := range uniq {
		if _, ok := id[s]; !ok {
			id[s] = len(id)
		}
	}
	out := make([]int, len(sigs))
	for i, s := range sigs {
		out[i] = id[s]
	}
	return out, len(id)
}
