package core
