package core

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// --- random query generation -------------------------------------------

// randomQuery builds a random well-formed query in one of three families:
// star (fact binding joined to k dimension bindings, some over the SAME
// dimension name so canonicalization faces alpha-equivalent range ties),
// snowflake (star with dependent-path outriggers), and chain (dependent
// joins x1 -> x1.F -> ...). Shapes are chosen so that same-range ties,
// dependent ranges, constants and struct outputs all occur.
func randomQuery(rng *rand.Rand) *Query {
	switch rng.Intn(3) {
	case 0:
		return randomStar(rng, false)
	case 1:
		return randomStar(rng, true)
	default:
		return randomChain(rng)
	}
}

func randomStar(rng *rand.Rand, snowflake bool) *Query {
	dims := 1 + rng.Intn(3)
	q := &Query{Bindings: []Binding{{Var: "f", Range: Name("Fact")}}}
	outFields := []StructField{SF("K", Prj(V("f"), "K"))}
	for i := 0; i < dims; i++ {
		v := fmt.Sprintf("d%d", i)
		// Half the dimensions share one table name, so several bindings
		// have alpha-equivalent ranges and the tie-break matters.
		table := "Dim"
		if rng.Intn(2) == 0 {
			table = fmt.Sprintf("Dim%d", i)
		}
		q.Bindings = append(q.Bindings, Binding{Var: v, Range: Name(table)})
		q.Conds = append(q.Conds, Cond{
			L: Prj(V("f"), fmt.Sprintf("FK%d", rng.Intn(2))),
			R: Prj(V(v), "ID"),
		})
		if rng.Intn(2) == 0 {
			q.Conds = append(q.Conds, Cond{L: Prj(V(v), "Grp"), R: C(int64(rng.Intn(3)))})
		}
		if snowflake {
			ov := fmt.Sprintf("o%d", i)
			q.Bindings = append(q.Bindings, Binding{Var: ov, Range: Prj(V(v), "Sub")})
			outFields = append(outFields, SF(fmt.Sprintf("O%d", i), Prj(V(ov), "Name")))
		}
		if rng.Intn(2) == 0 {
			outFields = append(outFields, SF(fmt.Sprintf("D%d", i), Prj(V(v), "Name")))
		}
	}
	q.Out = Struct(outFields...)
	return q
}

func randomChain(rng *rand.Rand) *Query {
	n := 2 + rng.Intn(4)
	q := &Query{Bindings: []Binding{{Var: "x0", Range: Name("R")}}}
	for i := 1; i < n; i++ {
		prev := fmt.Sprintf("x%d", i-1)
		v := fmt.Sprintf("x%d", i)
		if rng.Intn(3) == 0 {
			// A parallel scan of the same relation — a same-range tie.
			q.Bindings = append(q.Bindings, Binding{Var: v, Range: Name("R")})
			q.Conds = append(q.Conds, Cond{L: Prj(V(prev), "A"), R: Prj(V(v), "B")})
		} else {
			q.Bindings = append(q.Bindings, Binding{Var: v, Range: Prj(V(prev), "Next")})
		}
	}
	q.Out = Prj(V(fmt.Sprintf("x%d", n-1)), "A")
	return q
}

// scrambled returns an isomorphic variant of q: an arbitrary-order alpha
// rename (fresh names whose lexicographic order is a random permutation
// of the original order), a random dependency-valid binding shuffle, and
// a random condition reorder with random flips.
func scrambled(q *Query, rng *rand.Rand) *Query {
	// Alpha rename with shuffled name order.
	vars := make([]string, 0, len(q.Bindings))
	for _, b := range q.Bindings {
		vars = append(vars, b.Var)
	}
	perm := rng.Perm(len(vars))
	names := make(map[string]string, len(vars))
	for i, v := range vars {
		names[v] = fmt.Sprintf("z%03d", perm[i])
	}
	r := q.RenameVars(func(v string) string { return names[v] })

	// Random valid binding order: repeatedly pick a random binding whose
	// range variables are already introduced.
	var order []Binding
	introduced := map[string]bool{}
	remaining := append([]Binding(nil), r.Bindings...)
	for len(remaining) > 0 {
		var avail []int
		for i, b := range remaining {
			ok := true
			for v := range b.Range.Vars() {
				if !introduced[v] {
					ok = false
					break
				}
			}
			if ok {
				avail = append(avail, i)
			}
		}
		pick := avail[rng.Intn(len(avail))]
		b := remaining[pick]
		order = append(order, b)
		introduced[b.Var] = true
		remaining = append(remaining[:pick], remaining[pick+1:]...)
	}
	r.Bindings = order

	// Condition reorder + random flips.
	rng.Shuffle(len(r.Conds), func(i, j int) { r.Conds[i], r.Conds[j] = r.Conds[j], r.Conds[i] })
	for i := range r.Conds {
		if rng.Intn(2) == 0 {
			r.Conds[i] = r.Conds[i].Flip()
		}
	}
	return r
}

// --- property suite ----------------------------------------------------

func TestCanonicalSignatureInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 300; trial++ {
		q := randomQuery(rng)
		if err := q.Validate(); err != nil {
			t.Fatalf("trial %d: generator produced invalid query: %v\n%s", trial, err, q)
		}
		want := q.CanonicalSignature()
		for variant := 0; variant < 4; variant++ {
			s := scrambled(q, rng)
			if err := s.Validate(); err != nil {
				t.Fatalf("trial %d: scrambler produced invalid query: %v\n%s", trial, err, s)
			}
			if got := s.CanonicalSignature(); got != want {
				t.Fatalf("trial %d variant %d: canonical signature not invariant\noriginal: %s\nsig:      %s\nvariant:  %s\nsig:      %s",
					trial, variant, q, want, s, got)
			}
		}
	}
}

func TestCanonicalSignatureSeparatesDistinctQueries(t *testing.T) {
	// Invariance alone is trivially satisfied by a constant function; the
	// signature must still separate genuinely different queries.
	rng := rand.New(rand.NewSource(43))
	seen := map[string]bool{}
	distinct := 0
	for trial := 0; trial < 100; trial++ {
		sig := randomQuery(rng).CanonicalSignature()
		if !seen[sig] {
			seen[sig] = true
			distinct++
		}
	}
	if distinct < 20 {
		t.Fatalf("only %d distinct signatures over 100 random queries — canonicalization collapsed", distinct)
	}
}

// --- brute-force differential ------------------------------------------

// bruteForceCanonical enumerates every dependency-valid binding order and
// returns the minimum Signature — the specification the search must meet.
func bruteForceCanonical(q *Query) string {
	n := len(q.Bindings)
	best := ""
	var rec func(order []Binding, used []bool, introduced map[string]bool)
	rec = func(order []Binding, used []bool, introduced map[string]bool) {
		if len(order) == n {
			sig := (&Query{Out: q.Out, Bindings: append([]Binding(nil), order...), Conds: q.Conds}).Signature()
			if best == "" || sig < best {
				best = sig
			}
			return
		}
		for i, b := range q.Bindings {
			if used[i] {
				continue
			}
			ok := true
			for v := range b.Range.Vars() {
				if !introduced[v] {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			used[i] = true
			introduced[b.Var] = true
			rec(append(order, b), used, introduced)
			used[i] = false
			delete(introduced, b.Var)
		}
	}
	rec(nil, make([]bool, n), map[string]bool{})
	return best
}

func TestCanonicalSignatureMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 150; trial++ {
		q := randomQuery(rng)
		if len(q.Bindings) > 6 {
			continue
		}
		want := bruteForceCanonical(q)
		if got := q.CanonicalSignature(); got != want {
			t.Fatalf("trial %d: refinement canonicalizer diverges from brute-force minimum\nquery: %s\nwant:  %s\ngot:   %s",
				trial, q, want, got)
		}
	}
}

// --- targeted regressions ----------------------------------------------

// TestCanonicalSignatureOrderReversingRename pins the PR 5 defect: an
// asymmetric self-join whose two bindings range over the same relation.
// The seed tie-break ordered them by raw variable name, so renaming r/s
// to names sorting the other way produced a different signature — a
// missed plan-cache hit and a missed singleflight coalesce for a query
// that is equivalent by construction.
func TestCanonicalSignatureOrderReversingRename(t *testing.T) {
	q := &Query{
		Out: Struct(SF("C1", Prj(V("r"), "C")), SF("C2", Prj(V("s"), "C"))),
		Bindings: []Binding{
			{Var: "r", Range: Name("R")},
			{Var: "s", Range: Name("R")},
		},
		Conds: []Cond{{L: Prj(V("r"), "A"), R: Prj(V("s"), "B")}},
	}
	// Order-reversing rename: r -> z (now largest), s -> a (now smallest).
	rev := q.RenameVars(func(v string) string {
		return map[string]string{"r": "z", "s": "a"}[v]
	})
	if q.CanonicalSignature() != rev.CanonicalSignature() {
		t.Fatalf("order-reversing alpha-rename changed the canonical signature:\n%s\nvs\n%s",
			q.CanonicalSignature(), rev.CanonicalSignature())
	}
	// The normalized queries must be isomorphic orderings of each other,
	// and normalization must be idempotent on the order.
	n := q.NormalizeBindingOrder()
	if err := n.Validate(); err != nil {
		t.Fatalf("normalized query invalid: %v", err)
	}
	if n.NormalizeBindingOrder().Signature() != n.Signature() {
		t.Fatal("NormalizeBindingOrder is not idempotent")
	}
}

// TestCanonicalSignatureCyclicResidue pins the silent-fallback fix: a
// query with a cyclic binding dependency (invalid — Validate rejects it)
// used to be returned in input order with no canonicalization at all, so
// two isomorphic cyclic queries could silently get distinct signatures.
// The residue is now canonicalized deterministically.
func TestCanonicalSignatureCyclicResidue(t *testing.T) {
	cyclic := func(a, b string) *Query {
		return &Query{
			Out: C(true),
			Bindings: []Binding{
				{Var: a, Range: Prj(V(b), "F")},
				{Var: b, Range: Prj(V(a), "G")},
			},
		}
	}
	q1 := cyclic("x", "y")
	q2 := cyclic("q", "p") // reversed name order
	if q1.Validate() == nil {
		t.Fatal("cyclic query unexpectedly validates — test premise broken")
	}
	if q1.CanonicalSignature() != q2.CanonicalSignature() {
		t.Fatalf("isomorphic cyclic queries canonicalize apart:\n%s\nvs\n%s",
			q1.CanonicalSignature(), q2.CanonicalSignature())
	}
	// Still invariant when the cycle is entered from a valid prefix.
	q3 := cyclic("x", "y")
	q3.Bindings = append([]Binding{{Var: "w", Range: Name("R")}}, q3.Bindings...)
	q4 := cyclic("b", "a")
	q4.Bindings = append(q4.Bindings, Binding{Var: "m", Range: Name("R")})
	if q3.CanonicalSignature() != q4.CanonicalSignature() {
		t.Fatalf("cyclic residue after valid prefix canonicalizes apart:\n%s\nvs\n%s",
			q3.CanonicalSignature(), q4.CanonicalSignature())
	}
	// And a structurally different cycle still separates.
	q5 := cyclic("x", "y")
	q5.Bindings[1].Range = Prj(V("x"), "H")
	if q1.CanonicalSignature() == q5.CanonicalSignature() {
		t.Fatal("different cyclic queries share a signature")
	}
}

// TestCanonicalSignatureSymmetricSelfJoinFast guards the automorphism
// pruning: many interchangeable bindings must not trigger a factorial
// search. Six identical scans plus a symmetric condition ring completes
// instantly when same-orbit candidates collapse to one branch.
func TestCanonicalSignatureSymmetricSelfJoinFast(t *testing.T) {
	const k = 6
	q := &Query{Out: C(true)}
	for i := 0; i < k; i++ {
		q.Bindings = append(q.Bindings, Binding{Var: fmt.Sprintf("v%d", i), Range: Name("R")})
	}
	for i := 0; i < k; i++ {
		q.Conds = append(q.Conds, Cond{
			L: Prj(V(fmt.Sprintf("v%d", i)), "K"),
			R: Prj(V(fmt.Sprintf("v%d", (i+1)%k)), "K"),
		})
	}
	rng := rand.New(rand.NewSource(53))
	want := q.CanonicalSignature()
	for i := 0; i < 5; i++ {
		s := scrambled(q, rng)
		if got := s.CanonicalSignature(); got != want {
			t.Fatalf("ring self-join variant %d canonicalizes apart:\n%s\nvs\n%s", i, want, got)
		}
	}
}

// TestRefineBindingColors sanity-checks the WL partition: structurally
// distinguishable bindings get distinct colors, interchangeable ones
// share a color, and the partition is renaming-invariant.
func TestRefineBindingColors(t *testing.T) {
	q := &Query{
		Out: Prj(V("r"), "C"),
		Bindings: []Binding{
			{Var: "r", Range: Name("R")},
			{Var: "s", Range: Name("R")},
			{Var: "t", Range: Name("T")},
		},
		Conds: []Cond{{L: Prj(V("r"), "A"), R: Prj(V("s"), "B")}},
	}
	colors := q.refineBindingColors()
	if colors[0] == colors[1] {
		t.Fatal("r and s are distinguishable (output mentions only r) but share a color")
	}
	if colors[0] == colors[2] || colors[1] == colors[2] {
		t.Fatal("T-binding must not share a color with R-bindings")
	}
	sym := &Query{
		Out: C(true),
		Bindings: []Binding{
			{Var: "a", Range: Name("R")},
			{Var: "b", Range: Name("R")},
		},
		Conds: []Cond{{L: Prj(V("a"), "K"), R: Prj(V("b"), "K")}},
	}
	sc := sym.refineBindingColors()
	if sc[0] != sc[1] {
		t.Fatal("interchangeable symmetric bindings must share a color")
	}
}

func TestSwapIsAutomorphism(t *testing.T) {
	sym := &Query{
		Out: C(true),
		Bindings: []Binding{
			{Var: "a", Range: Name("R")},
			{Var: "b", Range: Name("R")},
		},
		Conds: []Cond{{L: Prj(V("a"), "K"), R: Prj(V("b"), "K")}},
	}
	if !sym.swapIsAutomorphism("a", "b") {
		t.Fatal("symmetric self-join swap must be an automorphism")
	}
	asym := sym.Clone()
	asym.Out = Prj(V("a"), "C")
	if asym.swapIsAutomorphism("a", "b") {
		t.Fatal("output breaks the symmetry — swap must not be an automorphism")
	}
	asym2 := sym.Clone()
	asym2.Conds = []Cond{{L: Prj(V("a"), "K"), R: Prj(V("b"), "L")}}
	if asym2.swapIsAutomorphism("a", "b") {
		t.Fatal("asymmetric condition — swap must not be an automorphism")
	}
}

// TestCanonicalSignatureNoRawNames ensures the canonical signature never
// leaks an original variable name: every variable occurrence must be a
// positional b<k> name.
func TestCanonicalSignatureNoRawNames(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	for trial := 0; trial < 50; trial++ {
		q := randomQuery(rng)
		sig := q.CanonicalSignature()
		for _, b := range q.Bindings {
			if strings.Contains(sig, "?"+b.Var+".") || strings.HasSuffix(sig, "?"+b.Var) {
				t.Fatalf("canonical signature leaks raw variable %q: %s", b.Var, sig)
			}
		}
	}
}
