// Package greedy is the instant tier of the two-tier optimizer: a
// statistics-free planner that orders a path-conjunctive query's joins
// directly off its own query graph — no chase, no backchase, no cost
// statistics — and answers in microseconds with a correct, executable
// plan.
//
// The full optimizer (chase to the universal plan, cost-bounded
// backchase over the rewrite lattice) finds the cheapest plan the
// physical schema admits, but a cold query shape pays tens to hundreds
// of milliseconds before the first candidate exists. At serving scale
// the cold and long-tail shapes dominate p99, and the paper's
// completeness guarantee says nothing about *when* the cheapest plan
// arrives. This package supplies the other end of the latency/quality
// trade: the query as written IS already a plan (set semantics make any
// scope-valid binding order equivalent), so all that is left for a
// microsecond budget is to pick a good join order from signals visible
// in the pattern itself — which bindings are dependent accesses, which
// conditions compare against constants, how the equality graph connects
// the bindings — and to apply the non-failing-lookup simplification.
// That is the "statistics are unnecessary" observation for
// pattern-shaped queries: connectivity and visible selectivity alone
// recover production-quality join orders without any table statistics
// to go stale.
//
// Ordering discipline (deterministic; ties broken by original binding
// position): repeatedly pick, among the scope-valid remaining bindings,
// the best of
//
//  1. dependent accesses — ranges mentioning an already-bound variable
//     (dictionary lookups, dependent field scans): bounded fanout, never
//     a fresh full scan;
//  2. connected scans — bindings with at least one equality becoming
//     fully bound when they are added (hash-joinable against the bound
//     prefix; a constant equality counts double as visible selectivity);
//  3. anything else (a cross product, deferred as long as possible).
//
// Within a class, more constant equalities win, then more newly
// checkable equalities, then higher static degree in the query graph
// (hub bindings unlock more joins for the remaining steps).
//
// The service layer (internal/service) serves this tier whenever the
// backchase flight has not landed within Options.MaxPlanLatency, and
// upgrades to the backchase plan when the detached flight completes.
package greedy

import (
	"cnb/internal/core"
	"cnb/internal/planrewrite"
)

// Plan returns an executable plan for q in microseconds: q's own
// bindings reordered by Order and the guarded dictionary-domain loops
// rewritten into non-failing lookups (planrewrite.SimplifyLookups). The
// result is semantically identical to q — it is q, modulo binding order
// and the lookup rewrite — so it can be executed directly and checked
// row-identical against any engine's evaluation of q. q itself is not
// mutated.
func Plan(q *core.Query) *core.Query {
	out := q.Clone()
	if ord := Order(q); ord != nil {
		bs := make([]core.Binding, len(ord))
		for k, i := range ord {
			bs[k] = q.Bindings[i]
		}
		out.Bindings = bs
	}
	return planrewrite.SimplifyLookups(out)
}

// Order returns the greedy join order as a permutation of q's binding
// indices: position k of the result names the original binding placed
// k-th. The order is always scope-valid (a range's variables are bound
// before the range runs). It returns nil when no scope-valid order
// exists (cyclic range scoping — impossible for validated queries);
// callers should then keep the original order.
func Order(q *core.Query) []int {
	n := len(q.Bindings)
	if n <= 1 {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}

	// Static degree: equalities mentioning the binding's variable plus
	// dependency edges (other ranges mentioning it). A high-degree
	// binding is a hub of the query graph — scheduling it early makes
	// more joins checkable for every later step.
	degree := make([]int, n)
	for i, b := range q.Bindings {
		for _, c := range q.Conds {
			if c.L.Vars()[b.Var] || c.R.Vars()[b.Var] {
				degree[i]++
			}
		}
		for j, other := range q.Bindings {
			if j != i && other.Range.Vars()[b.Var] {
				degree[i]++
			}
		}
	}

	bound := make(map[string]bool, n)
	used := make([]bool, n)
	condUsed := make([]bool, len(q.Conds))
	// Degenerate variable-free conditions (constant = constant) are
	// never "newly checkable" for any binding.
	for ci, c := range q.Conds {
		if len(c.L.Vars()) == 0 && len(c.R.Vars()) == 0 {
			condUsed[ci] = true
		}
	}

	order := make([]int, 0, n)
	for len(order) < n {
		best := -1
		var bestKey [4]int
		for i, b := range q.Bindings {
			if used[i] {
				continue
			}
			ready := true
			dependent := false
			for v := range b.Range.Vars() {
				if !bound[v] {
					ready = false
					break
				}
				dependent = true
			}
			if !ready {
				continue
			}
			newConds, constConds := 0, 0
			for ci, c := range q.Conds {
				if condUsed[ci] || !condMentions(c, b.Var) {
					continue
				}
				if condBound(c, bound, b.Var) {
					newConds++
					if c.L.Kind == core.KConst || c.R.Kind == core.KConst {
						constConds++
					}
				}
			}
			class := 2
			switch {
			case dependent:
				class = 0
			case newConds > 0:
				class = 1
			}
			key := [4]int{class, -constConds, -newConds, -degree[i]}
			if best == -1 || less(key, bestKey) {
				best, bestKey = i, key
			}
		}
		if best == -1 {
			return nil // cyclic scoping; caller keeps the original order
		}
		used[best] = true
		bound[q.Bindings[best].Var] = true
		order = append(order, best)
		// Consume every equality that just became fully bound, so it is
		// not counted as fresh connectivity again.
		for ci, c := range q.Conds {
			if !condUsed[ci] && condBound(c, bound, "") {
				condUsed[ci] = true
			}
		}
	}
	return order
}

// condMentions reports whether either side of the condition mentions the
// variable.
func condMentions(c core.Cond, v string) bool {
	return c.L.Vars()[v] || c.R.Vars()[v]
}

// condBound reports whether every variable of the condition is in bound,
// with extra (when non-empty) treated as bound too.
func condBound(c core.Cond, bound map[string]bool, extra string) bool {
	for v := range c.L.Vars() {
		if !bound[v] && v != extra {
			return false
		}
	}
	for v := range c.R.Vars() {
		if !bound[v] && v != extra {
			return false
		}
	}
	return true
}

// less is lexicographic comparison of score keys; strictly-less keeps
// the ascending-index iteration a stable tie-break.
func less(a, b [4]int) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}
