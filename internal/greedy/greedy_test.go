package greedy

import (
	"reflect"
	"testing"

	"cnb/internal/core"
	"cnb/internal/engine"
	"cnb/internal/workload"
)

// TestOrderIsScopeValidPermutation: on every star/snowflake workload
// shape the order is a permutation of the binding indices and every
// range's variables are bound before the range runs.
func TestOrderIsScopeValidPermutation(t *testing.T) {
	for _, cfg := range []workload.StarConfig{
		{Dims: 2, Views: 1, FactIndexes: 1, DimIndex: true, Select: true, SelectA: 3, FKConstraints: true},
		{Dims: 3, Views: 2, FactIndexes: 1, DimKeyIndexes: 1, DimIndex: true, Select: true, SelectA: 5, FKConstraints: true},
		{Dims: 2, Snowflake: true, Views: 1, FactIndexes: 1, DimIndex: true, Select: true, SelectA: 3, FKConstraints: true},
	} {
		st, err := workload.NewStar(cfg)
		if err != nil {
			t.Fatal(err)
		}
		q := st.Q
		ord := Order(q)
		if len(ord) != len(q.Bindings) {
			t.Fatalf("order length %d, want %d", len(ord), len(q.Bindings))
		}
		seen := make(map[int]bool)
		bound := make(map[string]bool)
		for _, i := range ord {
			if i < 0 || i >= len(q.Bindings) || seen[i] {
				t.Fatalf("not a permutation: %v", ord)
			}
			seen[i] = true
			for v := range q.Bindings[i].Range.Vars() {
				if !bound[v] {
					t.Fatalf("binding %d (%s) scheduled before its range var %q", i, q.Bindings[i].Var, v)
				}
			}
			bound[q.Bindings[i].Var] = true
		}
		if got := Order(q); !reflect.DeepEqual(got, ord) {
			t.Fatalf("order not deterministic: %v then %v", ord, got)
		}
	}
}

// TestOrderConstantSelectionFirst: with two disconnected scans where only
// the second carries a constant equality, the greedy order starts with
// the selective one.
func TestOrderConstantSelectionFirst(t *testing.T) {
	q := &core.Query{
		Out: core.V("y"),
		Bindings: []core.Binding{
			{Var: "x", Range: core.Name("R")},
			{Var: "y", Range: core.Name("S")},
		},
		Conds: []core.Cond{
			{L: core.Prj(core.V("y"), "A"), R: core.C(int64(7))},
			{L: core.Prj(core.V("x"), "K"), R: core.Prj(core.V("y"), "K")},
		},
	}
	ord := Order(q)
	if len(ord) != 2 || ord[0] != 1 {
		t.Fatalf("order = %v, want the constant-selected binding (1) first", ord)
	}
}

// TestOrderDelaysCrossProduct: a binding with no conditions at all must
// come after the connected join pair, even though it is listed first.
func TestOrderDelaysCrossProduct(t *testing.T) {
	q := &core.Query{
		Out: core.V("z"),
		Bindings: []core.Binding{
			{Var: "z", Range: core.Name("Lonely")},
			{Var: "x", Range: core.Name("R")},
			{Var: "y", Range: core.Name("S")},
		},
		Conds: []core.Cond{
			{L: core.Prj(core.V("x"), "A"), R: core.C(int64(1))},
			{L: core.Prj(core.V("x"), "K"), R: core.Prj(core.V("y"), "K")},
		},
	}
	ord := Order(q)
	if len(ord) != 3 || ord[2] != 0 {
		t.Fatalf("order = %v, want the cross-product binding (0) last", ord)
	}
}

// TestOrderDependentAccessEager: a dependent range (lookup keyed on a
// bound variable) outranks a fresh connected scan once its key is bound.
func TestOrderDependentAccessEager(t *testing.T) {
	q := &core.Query{
		Out: core.V("d"),
		Bindings: []core.Binding{
			{Var: "x", Range: core.Name("R")},
			{Var: "y", Range: core.Name("S")},
			{Var: "d", Range: core.Lk(core.Name("Idx"), core.Prj(core.V("x"), "K"))},
		},
		Conds: []core.Cond{
			{L: core.Prj(core.V("x"), "A"), R: core.C(int64(1))},
			{L: core.Prj(core.V("x"), "B"), R: core.Prj(core.V("y"), "B")},
		},
	}
	ord := Order(q)
	if len(ord) != 3 || ord[0] != 0 || ord[1] != 2 {
		t.Fatalf("order = %v, want [0 2 1] (dependent lookup before fresh scan)", ord)
	}
}

// TestOrderCyclicScopingNil: mutually dependent ranges admit no
// scope-valid order; Order must report that instead of looping.
func TestOrderCyclicScopingNil(t *testing.T) {
	q := &core.Query{
		Out: core.V("x"),
		Bindings: []core.Binding{
			{Var: "x", Range: core.Lk(core.Name("M"), core.V("y"))},
			{Var: "y", Range: core.Lk(core.Name("M"), core.V("x"))},
		},
	}
	if ord := Order(q); ord != nil {
		t.Fatalf("order = %v, want nil for cyclic scoping", ord)
	}
}

// TestPlanDoesNotMutateInput: Plan must clone; the caller's query is part
// of cache keys elsewhere and must stay bit-identical.
func TestPlanDoesNotMutateInput(t *testing.T) {
	st, err := workload.NewStar(workload.StarConfig{
		Dims: 2, Views: 1, FactIndexes: 1, DimIndex: true,
		Select: true, SelectA: 3, FKConstraints: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	before := st.Q.String()
	_ = Plan(st.Q)
	if after := st.Q.String(); after != before {
		t.Fatalf("Plan mutated its input:\nbefore %s\nafter  %s", before, after)
	}
}

// TestPlanRowIdentical: the greedy plan, run on the row engine, returns
// exactly the rows of the original query on seeded star and snowflake
// instances — the correctness contract the serving tier relies on.
func TestPlanRowIdentical(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  workload.StarConfig
	}{
		{"star", workload.StarConfig{Dims: 2, Views: 1, FactIndexes: 1, DimIndex: true, Select: true, SelectA: 3, FKConstraints: true}},
		{"snowflake", workload.StarConfig{Dims: 2, Snowflake: true, Views: 1, FactIndexes: 1, DimIndex: true, Select: true, SelectA: 3, FKConstraints: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			st, err := workload.NewStar(tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			in := st.Generate(workload.StarGenOptions{
				NumFact: 2000, NumDim: 300, NumSub: 150, DomA: 40, Seed: 2025,
			})
			plan := Plan(st.Q)
			if err := plan.Validate(); err != nil {
				t.Fatalf("greedy plan invalid: %v\n%s", err, plan)
			}
			got, err := engine.Execute(plan, in)
			if err != nil {
				t.Fatalf("greedy plan: %v", err)
			}
			want, err := engine.Execute(st.Q, in)
			if err != nil {
				t.Fatalf("original query: %v", err)
			}
			if !got.Equal(want) {
				t.Fatalf("greedy plan result differs: %d rows vs %d", got.Len(), want.Len())
			}
		})
	}
}

// BenchmarkGreedyPlan pins the headline claim: planning a star shape is
// a microsecond-scale operation.
func BenchmarkGreedyPlan(b *testing.B) {
	st, err := workload.NewStar(workload.StarConfig{
		Dims: 3, Views: 2, FactIndexes: 1, DimKeyIndexes: 1, DimIndex: true,
		Select: true, SelectA: 5, FKConstraints: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Plan(st.Q)
	}
}
