package bench

import "testing"

// TestE21Adaptive is the serve-adaptive gate: the experiment hard-fails
// on any broken routing invariant — a train-pass request not taking the
// budgeted wait, a serve-pass fast shape not served synchronously or a
// slow shape not served greedy, any budgeted wait or prediction miss on
// the trained service, a convergence response missing the cache or the
// synchronous cheapest cost, or histogram totals that do not sum to the
// request count — so the test runs it and sanity-checks the exact
// counters the baseline gates.
func TestE21Adaptive(t *testing.T) {
	if testing.Short() {
		t.Skip("adaptive replay pays two full cold backchase passes; skipped in -short")
	}
	tb, err := E21()
	if err != nil {
		t.Fatal(err)
	}
	if got := tb.Metrics["budgeted_waits"]; got != 0 {
		t.Errorf("serve-pass budgeted_waits = %v, want 0 (the tentpole gate)", got)
	}
	if got := tb.Metrics["prediction_miss"]; got != 0 {
		t.Errorf("prediction_miss = %v, want 0", got)
	}
	if got, want := tb.Metrics["predicted_fast"], tb.Metrics["fast_shapes"]*2+tb.Metrics["slow_shapes"]; got != want {
		t.Errorf("predicted_fast = %v, want %v (fast shapes twice, slow shapes once upgraded)", got, want)
	}
	if got, want := tb.Metrics["predicted_slow"], tb.Metrics["slow_shapes"]; got != want {
		t.Errorf("predicted_slow = %v, want %v", got, want)
	}
	sum := tb.Metrics["hist_greedy_total"] + tb.Metrics["hist_backchase_sync_total"] + tb.Metrics["hist_backchase_upgraded_total"]
	if want := tb.Metrics["shapes"] * 2; sum != want {
		t.Errorf("histogram totals sum to %v, want %v (every serve-pass request recorded once)", sum, want)
	}
	if s, a := tb.Metrics["cheapest_cost_sync_total"], tb.Metrics["cheapest_cost_adaptive_total"]; s != a {
		t.Errorf("adaptive cost total %v != synchronous cost total %v", a, s)
	}
	t.Logf("\n%s", tb)
}
