// Package bench is the experiment harness: each Experiment regenerates
// one artifact of the paper (worked example, theorem validation or
// scaling/cost measurement) and renders a table. EXPERIMENTS.md records
// the expected shapes; cmd/chasebench prints them; bench_test.go wraps
// them in testing.B benchmarks.
package bench

import (
	"fmt"
	"math"
	"runtime"
	"strings"
	"time"

	"cnb/internal/backchase"
	"cnb/internal/baseline"
	"cnb/internal/chase"
	"cnb/internal/core"
	"cnb/internal/cost"
	"cnb/internal/engine"
	"cnb/internal/instance"
	"cnb/internal/optimizer"
	"cnb/internal/workload"
)

// Parallelism is the backchase worker count used by the experiments
// (0 = all cores, 1 = serial). cmd/chasebench sets it from the
// -parallelism flag; the results are identical for every value, only the
// wall-clock changes.
var Parallelism int

// Table is a rendered experiment result.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
	// Metrics holds machine-readable headline numbers of the experiment
	// (states explored, speedups, ...), exported by chasebench -json so
	// CI can archive a perf trajectory. Optional.
	Metrics map[string]float64
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(t.Columns)
	for _, r := range t.Rows {
		writeRow(r)
	}
	for _, n := range t.Notes {
		b.WriteString("note: " + n + "\n")
	}
	return b.String()
}

// Experiment is a named, runnable experiment.
type Experiment struct {
	ID    string
	Title string
	Run   func() (*Table, error)
}

// All returns every experiment in order.
func All() []Experiment {
	return []Experiment{
		{"E1", "ProjDept plans P1-P4 from the universal plan (§1, Figures 2-3)", E1},
		{"E2", "Chase trace to the universal plan (§3)", E2},
		{"E3", "Tableau minimization as backchase with trivial constraints (§3)", E3},
		{"E4", "Index-only access path (§4, R(A,B,C) with SA, SB)", E4},
		{"E5", "View + index navigation join (§4, R⋈S with V, IR, IS)", E5},
		{"E6", "Universal plan size scaling (Theorem 1)", E6},
		{"E7", "Backchase completeness vs brute force (Theorem 2)", E7},
		{"E8", "Plan execution cost crossover (P2 vs P3 vs P4)", E8},
		{"E9", "Optimization time: chase polynomial, backchase exponential (§5)", E9},
		{"E10", "Plan-space comparison vs views-only baseline (§4, §6)", E10},
		{"E11", "Semantic optimization: constraints enable plans (§2)", E11},
		{"E12", "Parallel backchase: serial vs worker-pool wall clock", E12},
		{"E13", "Cost-bounded best-first backchase vs exhaustive (star/snowflake)", E13},
		{"E14", "Dictionary-aware bound vs scan-only bound + measured-cost calibration", E14},
		{"E15", "Incremental chase: hom tests naive vs delta-indexed (star/snowflake)", E15},
		{"E16", "Optimizer-as-a-service: load replay at 1/4/16 workers", E16},
		{"E17", "Serving under order-shuffling alpha-renames (canonicalization gate)", E17},
		{"E18", "Measured execution at data scale: optimized vs baseline plan", E18},
		{"E19", "End-to-end query serving: /query replay against a star instance", E19},
		{"E20", "Two-tier cold serving: greedy instant tier + detached backchase upgrade", E20},
		{"E21", "Adaptive tier promotion: learned per-shape budgets route without waits", E21},
	}
}

// classify buckets a ProjDept plan into the paper's P1..P4 shapes. P1 is
// recognized by its from clause alone (dom(Dept) + dependent DProjs scan +
// Proj scan): intermediate backchase states carry implied conditions that
// mention other structures.
func classify(p *core.Query) string {
	if len(p.Bindings) == 3 {
		var domDept, dprojs, proj bool
		for _, b := range p.Bindings {
			switch {
			case b.Range.Equal(core.Dom(core.Name("Dept"))):
				domDept = true
			case b.Range.Kind == core.KProj && b.Range.Name == "DProjs" &&
				b.Range.Base.Kind == core.KLookup && b.Range.Base.Base.Equal(core.Name("Dept")):
				dprojs = true
			case b.Range.Equal(core.Name("Proj")):
				proj = true
			}
		}
		if domDept && dprojs && proj {
			return "P1"
		}
	}
	ns := p.Names()
	switch {
	case ns["Proj"] && len(ns) == 1:
		return "P2"
	case ns["SI"] && !ns["Proj"] && !ns["JI"] && !ns["I"] && !ns["Dept"]:
		return "P3"
	case ns["JI"] && ns["I"] && ns["Dept"] && !ns["Proj"] && !ns["SI"]:
		return "P4"
	default:
		return "other"
	}
}

// E1 runs the full pipeline on the running example and reports which of
// the paper's plans appear.
func E1() (*Table, error) {
	pd, err := workload.NewProjDept()
	if err != nil {
		return nil, err
	}
	in := pd.Generate(workload.GenOptions{NumDepts: 50, ProjsPerDept: 10, CitiBankShare: 0.05, Seed: 1})
	stats := cost.FromInstance(in)
	res, err := optimizer.Optimize(pd.Q, optimizer.Options{
		Deps:          pd.AllDeps(),
		PhysicalNames: pd.Physical.NameSet(),
		Stats:         stats,
		Parallelism:   Parallelism,
	})
	if err != nil {
		return nil, err
	}
	tb := &Table{
		ID:      "E1",
		Title:   "ProjDept: universal plan and the paper's plans",
		Columns: []string{"plan", "found as", "bindings", "est. cost", "names"},
	}
	found := map[string]string{}
	costs := map[string]float64{}
	binds := map[string]int{}
	names := map[string]string{}
	for _, c := range res.Candidates {
		cl := classify(c.Query)
		if _, ok := found[cl]; !ok && cl != "other" {
			found[cl] = "candidate"
			costs[cl] = c.Cost
			binds[cl] = len(c.Query.Bindings)
			names[cl] = strings.Join(c.Query.SortedNames(), ",")
		}
	}
	for _, p := range res.Minimal {
		cl := classify(p)
		if cl != "other" && found[cl] == "candidate" {
			found[cl] = "minimal plan"
		}
	}
	for _, p := range res.Explored {
		cl := classify(p)
		if _, ok := found[cl]; !ok && cl != "other" {
			found[cl] = "backchase state"
			binds[cl] = len(p.Bindings)
			names[cl] = strings.Join(p.SortedNames(), ",")
		}
	}
	for _, cl := range []string{"P1", "P2", "P3", "P4"} {
		status := found[cl]
		if status == "" {
			status = "NOT FOUND"
		}
		costStr := "-"
		if c, ok := costs[cl]; ok {
			costStr = fmt.Sprintf("%.0f", c)
		}
		tb.Rows = append(tb.Rows, []string{cl, status, fmt.Sprintf("%d", binds[cl]), costStr, names[cl]})
	}
	tb.Notes = append(tb.Notes,
		fmt.Sprintf("universal plan: %d bindings after %d chase steps; %d minimal plans; %d backchase states; best plan: %s (cost %.0f)",
			len(res.Universal.Bindings), len(res.ChaseSteps), len(res.Minimal), res.States,
			classify(res.Best.Query), res.Best.Cost))
	return tb, nil
}

// E2 reports the chase trace of the running example.
func E2() (*Table, error) {
	pd, err := workload.NewProjDept()
	if err != nil {
		return nil, err
	}
	chased, err := chase.Chase(pd.Q, pd.AllDeps(), chase.Options{})
	if err != nil {
		return nil, err
	}
	tb := &Table{
		ID:      "E2",
		Title:   "Chase steps from Q to the universal plan",
		Columns: []string{"step", "constraint"},
	}
	for i, s := range chased.Steps {
		tb.Rows = append(tb.Rows, []string{fmt.Sprintf("%d", i+1), s.Dep})
	}
	tb.Notes = append(tb.Notes, fmt.Sprintf("universal plan: %d bindings, %d conditions",
		len(chased.Query.Bindings), len(chased.Query.Conds)))
	return tb, nil
}

// E3 validates tableau minimization on redundant self-join chains of
// growing length: a chain of n R-bindings linked head-to-tail always
// minimizes to 2.
func E3() (*Table, error) {
	tb := &Table{
		ID:      "E3",
		Title:   "Tableau minimization (backchase with no constraints)",
		Columns: []string{"chain length", "minimized bindings", "time"},
	}
	for n := 3; n <= 7; n++ {
		q := redundantChain(n)
		start := time.Now()
		min, err := backchase.MinimizeOne(q, nil, backchase.Options{Parallelism: Parallelism})
		if err != nil {
			return nil, err
		}
		tb.Rows = append(tb.Rows, []string{
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%d", len(min.Bindings)),
			time.Since(start).Round(time.Microsecond).String(),
		})
	}
	return tb, nil
}

// redundantChain generalizes the paper's §3 example
// (select struct(A: p.A, B: r.B) from R p, R q, R r
// where p.B = q.A and q.B = r.B): one genuine join link x1.B = x2.A
// followed by a tail x2.B = x3.B = ... = xn.B. Every tail binding maps to
// x2, so the minimal form always has exactly 2 bindings.
func redundantChain(n int) *core.Query {
	q := &core.Query{
		Out: core.Struct(
			core.SF("A", core.Prj(core.V("x1"), "A")),
			core.SF("B", core.Prj(core.V(fmt.Sprintf("x%d", n)), "B")),
		),
	}
	for i := 1; i <= n; i++ {
		q.Bindings = append(q.Bindings, core.Binding{Var: fmt.Sprintf("x%d", i), Range: core.Name("R")})
	}
	q.Conds = append(q.Conds, core.Cond{
		L: core.Prj(core.V("x1"), "B"),
		R: core.Prj(core.V("x2"), "A"),
	})
	for i := 2; i < n; i++ {
		q.Conds = append(q.Conds, core.Cond{
			L: core.Prj(core.V(fmt.Sprintf("x%d", i)), "B"),
			R: core.Prj(core.V(fmt.Sprintf("x%d", i+1)), "B"),
		})
	}
	return q
}

// E4 reproduces the §4 index-only plan.
func E4() (*Table, error) {
	sc, err := workload.NewIndexOnly(5, 9)
	if err != nil {
		return nil, err
	}
	res, err := optimizer.Optimize(sc.Q, optimizer.Options{Deps: sc.Deps, Parallelism: Parallelism})
	if err != nil {
		return nil, err
	}
	tb := &Table{
		ID:      "E4",
		Title:   "Index-only access path for σ_{A=5,B=9}(R)",
		Columns: []string{"candidate", "uses", "bindings"},
	}
	indexOnly := false
	for i, c := range res.Candidates {
		ns := c.Query.SortedNames()
		uses := strings.Join(ns, ",")
		if !c.Query.Names()["R"] && c.Query.Names()["SA"] && c.Query.Names()["SB"] {
			indexOnly = true
		}
		if i < 6 {
			tb.Rows = append(tb.Rows, []string{fmt.Sprintf("%d", i+1), uses, fmt.Sprintf("%d", len(c.Query.Bindings))})
		}
	}
	tb.Notes = append(tb.Notes, fmt.Sprintf("index-only plan (no R scan) found: %v", indexOnly))
	return tb, nil
}

// E5 reproduces the §4 view + index navigation plan.
func E5() (*Table, error) {
	sc, err := workload.NewViewIndex()
	if err != nil {
		return nil, err
	}
	in := sc.Generate(2000, 2000, 4000, 3) // selective join: V is small
	stats := cost.FromInstance(in)
	res, err := optimizer.Optimize(sc.Q, optimizer.Options{Deps: sc.Deps, Stats: stats, Parallelism: Parallelism})
	if err != nil {
		return nil, err
	}
	tb := &Table{
		ID:      "E5",
		Title:   "R⋈S with materialized V=π_A(R⋈S), indexes IR, IS",
		Columns: []string{"rank", "uses", "est. cost"},
	}
	for i, c := range res.Candidates {
		if i >= 6 {
			break
		}
		tb.Rows = append(tb.Rows, []string{
			fmt.Sprintf("%d", i+1),
			strings.Join(c.Query.SortedNames(), ","),
			fmt.Sprintf("%.0f", c.Cost),
		})
	}
	bestNames := res.Best.Query.Names()
	tb.Notes = append(tb.Notes, fmt.Sprintf(
		"best plan scans V and navigates indexes: %v (V=%v IR=%v IS=%v R=%v S=%v)",
		bestNames["V"] && (bestNames["IR"] || bestNames["IS"]),
		bestNames["V"], bestNames["IR"], bestNames["IS"], bestNames["R"], bestNames["S"]))
	return tb, nil
}

// E6 measures universal-plan size against chain-query length (Theorem 1:
// polynomial).
func E6() (*Table, error) {
	tb := &Table{
		ID:      "E6",
		Title:   "Universal plan size vs query size (chain joins, adjacent-pair views)",
		Columns: []string{"chain n", "views", "Q bindings", "U bindings", "chase steps", "time"},
	}
	for _, n := range []int{2, 4, 6, 8, 10, 12} {
		c, err := workload.NewChain(n, n-1)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		chased, err := chase.Chase(c.Q, c.Deps, chase.Options{MaxSteps: 2048, MaxBindings: 2048})
		if err != nil {
			return nil, err
		}
		tb.Rows = append(tb.Rows, []string{
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%d", n-1),
			fmt.Sprintf("%d", len(c.Q.Bindings)),
			fmt.Sprintf("%d", len(chased.Query.Bindings)),
			fmt.Sprintf("%d", len(chased.Steps)),
			time.Since(start).Round(time.Microsecond).String(),
		})
	}
	tb.Notes = append(tb.Notes, "U bindings grow linearly (n + views fired once each): polynomial, per Theorem 1")
	return tb, nil
}

// E7 cross-checks the backchase normal forms against brute-force minimal
// subquery enumeration on chain queries with views.
func E7() (*Table, error) {
	tb := &Table{
		ID:      "E7",
		Title:   "Backchase completeness: normal forms vs brute force",
		Columns: []string{"chain n", "views", "backchase plans", "brute-force plans", "agree"},
	}
	for _, n := range []int{2, 3, 4} {
		c, err := workload.NewChain(n, n-1)
		if err != nil {
			return nil, err
		}
		chased, err := chase.Chase(c.Q, c.Deps, chase.Options{})
		if err != nil {
			return nil, err
		}
		enum, err := backchase.Enumerate(chased.Query, c.Deps, backchase.Options{Parallelism: Parallelism})
		if err != nil {
			return nil, err
		}
		bf, err := backchase.BruteForceMinimal(chased.Query, c.Deps, backchase.Options{Parallelism: Parallelism})
		if err != nil {
			return nil, err
		}
		agree := sameSigSets(enum.Plans, normalizeAll(bf, c.Deps))
		tb.Rows = append(tb.Rows, []string{
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%d", n-1),
			fmt.Sprintf("%d", len(enum.Plans)),
			fmt.Sprintf("%d", len(bf)),
			fmt.Sprintf("%v", agree),
		})
	}
	return tb, nil
}

func normalizeAll(qs []*core.Query, deps []*core.Dependency) []*core.Query {
	out := make([]*core.Query, 0, len(qs))
	seen := map[string]bool{}
	for _, q := range qs {
		n := backchase.Normalize(q, deps, chase.Options{})
		sig := n.CanonicalSignature()
		if !seen[sig] {
			seen[sig] = true
			out = append(out, n)
		}
	}
	return out
}

func sameSigSets(a, b []*core.Query) bool {
	sa := map[string]bool{}
	for _, q := range a {
		sa[q.CanonicalSignature()] = true
	}
	sb := map[string]bool{}
	for _, q := range b {
		sb[q.CanonicalSignature()] = true
	}
	if len(sa) != len(sb) {
		return false
	}
	for s := range sa {
		if !sb[s] {
			return false
		}
	}
	return true
}

// E8 executes the P2/P3/P4 plan shapes on instances of growing size and
// selectivity and reports measured times: the cost crossover that makes
// physical data independence worthwhile.
func E8() (*Table, error) {
	pd, err := workload.NewProjDept()
	if err != nil {
		return nil, err
	}
	v, n, prj, lk, lknf := core.V, core.Name, core.Prj, core.Lk, core.LkNF
	p2 := &core.Query{
		Out: core.Struct(
			core.SF("PN", prj(v("p"), "PName")),
			core.SF("PB", prj(v("p"), "Budg")),
			core.SF("DN", prj(v("p"), "PDept")),
		),
		Bindings: []core.Binding{{Var: "p", Range: n("Proj")}},
		Conds:    []core.Cond{{L: prj(v("p"), "CustName"), R: core.C("CitiBank")}},
	}
	p3 := &core.Query{
		Out:      p2.Out,
		Bindings: []core.Binding{{Var: "p", Range: lknf(n("SI"), core.C("CitiBank"))}},
	}
	p4 := &core.Query{
		Out: core.Struct(
			core.SF("PN", prj(v("j"), "PN")),
			core.SF("PB", prj(lk(n("I"), prj(v("j"), "PN")), "Budg")),
			core.SF("DN", prj(lk(n("Dept"), prj(v("j"), "DOID")), "DName")),
		),
		Bindings: []core.Binding{{Var: "j", Range: n("JI")}},
		Conds: []core.Cond{
			{L: prj(lk(n("I"), prj(v("j"), "PN")), "CustName"), R: core.C("CitiBank")},
		},
	}
	tb := &Table{
		ID:      "E8",
		Title:   "Measured plan execution (engine), |Proj| sweep at two selectivities",
		Columns: []string{"|Proj|", "CitiBank share", "P2 scan", "P3 sec-index", "P4 join-index", "winner"},
	}
	for _, sz := range []int{100, 1000, 5000} {
		for _, share := range []float64{0.001, 0.3} {
			in := pd.Generate(workload.GenOptions{
				NumDepts: sz / 10, ProjsPerDept: 10, CitiBankShare: share, Seed: 7,
			})
			t2 := timePlan(p2, in)
			t3 := timePlan(p3, in)
			t4 := timePlan(p4, in)
			winner := "P2"
			best := t2
			if t3 < best {
				winner, best = "P3", t3
			}
			if t4 < best {
				winner = "P4"
			}
			tb.Rows = append(tb.Rows, []string{
				fmt.Sprintf("%d", sz),
				fmt.Sprintf("%.3f", share),
				t2.Round(time.Microsecond).String(),
				t3.Round(time.Microsecond).String(),
				t4.Round(time.Microsecond).String(),
				winner,
			})
		}
	}
	tb.Notes = append(tb.Notes, "shape: P3 wins at low share (selective), scan competitive at high share; lookups immune to |Proj| growth")
	return tb, nil
}

// timePlan compiles and runs a plan via the engine, returning the
// elapsed wall-clock time (panics on execution errors: E8's plans are
// hand-validated elsewhere in the suite).
func timePlan(q *core.Query, in *instance.Instance) time.Duration {
	start := time.Now()
	if _, err := engine.Execute(q, in); err != nil {
		panic(err)
	}
	return time.Since(start)
}

// E9 measures chase and full-enumeration backchase time against the
// number of redundant bindings.
func E9() (*Table, error) {
	tb := &Table{
		ID:      "E9",
		Title:   "Optimization time scaling (§5 complexity)",
		Columns: []string{"chain n", "chase time", "backchase time", "states"},
	}
	for _, n := range []int{2, 3, 4, 5} {
		c, err := workload.NewChain(n, n-1)
		if err != nil {
			return nil, err
		}
		t0 := time.Now()
		chased, err := chase.Chase(c.Q, c.Deps, chase.Options{})
		if err != nil {
			return nil, err
		}
		chaseTime := time.Since(t0)
		t1 := time.Now()
		enum, err := backchase.Enumerate(chased.Query, c.Deps, backchase.Options{Parallelism: Parallelism})
		if err != nil {
			return nil, err
		}
		tb.Rows = append(tb.Rows, []string{
			fmt.Sprintf("%d", n),
			chaseTime.Round(time.Microsecond).String(),
			time.Since(t1).Round(time.Microsecond).String(),
			fmt.Sprintf("%d", enum.States),
		})
	}
	tb.Notes = append(tb.Notes, "chase grows polynomially; backchase states grow exponentially with redundancy")
	return tb, nil
}

// E10 compares the C&B plan space against the views-only bucket baseline
// and the heuristic indexer on the §4 scenario.
func E10() (*Table, error) {
	sc, err := workload.NewViewIndex()
	if err != nil {
		return nil, err
	}
	res, err := optimizer.Optimize(sc.Q, optimizer.Options{Deps: sc.Deps, Parallelism: Parallelism})
	if err != nil {
		return nil, err
	}
	cnbIndexPlans := 0
	cnbTotal := len(res.Candidates)
	for _, c := range res.Candidates {
		ns := c.Query.Names()
		if ns["IR"] || ns["IS"] {
			cnbIndexPlans++
		}
	}
	// The baseline: views only.
	views := []baseline.RelView{
		{Name: "V", Def: &core.Query{
			Out: core.Struct(core.SF("A", core.Prj(core.V("r"), "A"))),
			Bindings: []core.Binding{
				{Var: "r", Range: core.Name("R")},
				{Var: "s", Range: core.Name("S")},
			},
			Conds: []core.Cond{{L: core.Prj(core.V("r"), "B"), R: core.Prj(core.V("s"), "B")}},
		}},
		{Name: "RV", Def: &core.Query{
			Out: core.Struct(
				core.SF("A", core.Prj(core.V("r"), "A")),
				core.SF("B", core.Prj(core.V("r"), "B")),
			),
			Bindings: []core.Binding{{Var: "r", Range: core.Name("R")}},
		}},
		{Name: "SV", Def: &core.Query{
			Out: core.Struct(
				core.SF("B", core.Prj(core.V("s"), "B")),
				core.SF("C", core.Prj(core.V("s"), "C")),
			),
			Bindings: []core.Binding{{Var: "s", Range: core.Name("S")}},
		}},
	}
	q := &core.Query{
		Out: core.Struct(
			core.SF("A", core.Prj(core.V("r"), "A")),
			core.SF("B", core.Prj(core.V("s"), "B")),
			core.SF("C", core.Prj(core.V("s"), "C")),
		),
		Bindings: []core.Binding{
			{Var: "r", Range: core.Name("R")},
			{Var: "s", Range: core.Name("S")},
		},
		Conds: []core.Cond{{L: core.Prj(core.V("r"), "B"), R: core.Prj(core.V("s"), "B")}},
	}
	bucket, err := baseline.BucketRewrite(q, views, chase.Options{})
	if err != nil {
		return nil, err
	}
	tb := &Table{
		ID:      "E10",
		Title:   "Plan space: C&B vs views-only bucket baseline (R⋈S scenario)",
		Columns: []string{"approach", "total plans", "index-using plans"},
		Rows: [][]string{
			{"chase & backchase", fmt.Sprintf("%d", cnbTotal), fmt.Sprintf("%d", cnbIndexPlans)},
			{"bucket (views only)", fmt.Sprintf("%d", len(bucket)), "0"},
		},
	}
	tb.Notes = append(tb.Notes, "C&B strictly subsumes the views-only baseline: index plans are inexpressible there")
	return tb, nil
}

// E11 shows semantic optimization: with the inverse-relationship and RIC
// constraints the dependent join is eliminated; without them it is kept.
func E11() (*Table, error) {
	pd, err := workload.NewProjDept()
	if err != nil {
		return nil, err
	}
	q := &core.Query{
		Out: core.Prj(core.V("p"), "PName"),
		Bindings: []core.Binding{
			{Var: "p", Range: core.Name("Proj")},
			{Var: "d", Range: core.Name("depts")},
		},
		Conds: []core.Cond{{L: core.Prj(core.V("p"), "PDept"), R: core.Prj(core.V("d"), "DName")}},
	}
	withC, err := backchase.MinimizeOne(q, pd.LogicalDeps, backchase.Options{Parallelism: Parallelism})
	if err != nil {
		return nil, err
	}
	withoutC, err := backchase.MinimizeOne(q, nil, backchase.Options{Parallelism: Parallelism})
	if err != nil {
		return nil, err
	}
	tb := &Table{
		ID:      "E11",
		Title:   "Semantic optimization: RIC eliminates the dependent join",
		Columns: []string{"constraints", "bindings in minimal plan"},
		Rows: [][]string{
			{"Figure-2 constraints", fmt.Sprintf("%d", len(withC.Bindings))},
			{"none", fmt.Sprintf("%d", len(withoutC.Bindings))},
		},
	}
	return tb, nil
}

// E12 measures the parallel backchase against the serial engine on the
// hottest workloads: chain queries with adjacent-pair views (many
// redundant scans, exponential lattice) and the ProjDept running example.
// The plan sets must agree exactly — the parallel engine is the same
// search, just scheduled across workers.
func E12() (*Table, error) {
	tb := &Table{
		ID:      "E12",
		Title:   fmt.Sprintf("Parallel backchase (workers=%d) vs serial, same plan sets", runtime.GOMAXPROCS(0)),
		Columns: []string{"workload", "states", "plans", "serial", "parallel", "speedup", "agree"},
	}
	addRow := func(name string, u *core.Query, deps []*core.Dependency) error {
		t0 := time.Now()
		serial, err := backchase.Enumerate(u, deps, backchase.Options{Parallelism: 1})
		if err != nil {
			return err
		}
		serialT := time.Since(t0)
		t1 := time.Now()
		par, err := backchase.Enumerate(u, deps, backchase.Options{})
		if err != nil {
			return err
		}
		parT := time.Since(t1)
		agree := sameSigSets(serial.Plans, par.Plans) && serial.States == par.States
		tb.Rows = append(tb.Rows, []string{
			name,
			fmt.Sprintf("%d", par.States),
			fmt.Sprintf("%d", len(par.Plans)),
			serialT.Round(time.Microsecond).String(),
			parT.Round(time.Microsecond).String(),
			fmt.Sprintf("%.2fx", float64(serialT)/float64(parT)),
			fmt.Sprintf("%v", agree),
		})
		return nil
	}
	for _, n := range []int{4, 5} {
		c, err := workload.NewChain(n, n-1)
		if err != nil {
			return nil, err
		}
		chased, err := chase.Chase(c.Q, c.Deps, chase.Options{})
		if err != nil {
			return nil, err
		}
		if err := addRow(fmt.Sprintf("chain n=%d", n), chased.Query, c.Deps); err != nil {
			return nil, err
		}
	}
	pd, err := workload.NewProjDept()
	if err != nil {
		return nil, err
	}
	chased, err := chase.Chase(pd.Q, pd.AllDeps(), chase.Options{})
	if err != nil {
		return nil, err
	}
	if err := addRow("ProjDept", chased.Query, pd.AllDeps()); err != nil {
		return nil, err
	}
	tb.Notes = append(tb.Notes, "equivalence checks dominate; the worker pool hides their latency while the single-flight cache keeps total chase work identical")
	return tb, nil
}

// e13Workloads returns the star/snowflake scenarios E13 measures,
// paired with instance sizes whose statistics make the scan floors
// (fact, dimensions, views) dwarf the index-navigation plan that the
// FK constraints enable — the regime where the admissible bound prunes.
func e13Workloads() []struct {
	Name string
	Cfg  workload.StarConfig
	Gen  workload.StarGenOptions
} {
	gen := workload.StarGenOptions{NumFact: 6000, NumDim: 3000, NumSub: 1000, DomA: 1000, Seed: 1}
	base := workload.StarConfig{
		Dims: 2, Views: 1, FactIndexes: 1, DimIndex: true,
		Select: true, SelectA: 3, FKConstraints: true,
	}
	twoViews := base
	twoViews.Views = 2
	snow := base
	snow.Snowflake = true
	return []struct {
		Name string
		Cfg  workload.StarConfig
		Gen  workload.StarGenOptions
	}{
		{"star d=2 v=1", base, gen},
		{"star d=2 v=2", twoViews, gen},
		{"snowflake d=2 v=1", snow, gen},
	}
}

// e13Cheapest recomputes the engine's BestCost metric from the outside:
// cheapest quick-estimated executable cost over every explored state and
// plan of the result.
func e13Cheapest(stats *cost.Stats, res *backchase.Result) float64 {
	best := math.Inf(1)
	for _, qs := range [][]*core.Query{res.Plans, res.Explored} {
		for _, p := range qs {
			if c := stats.EstimateQuick(optimizer.SimplifyLookups(p)); c < best {
				best = c
			}
		}
	}
	return best
}

// E13 compares the cost-bounded best-first backchase against exhaustive
// enumeration on the star/snowflake family: the pruned search must
// explore strictly fewer states while reaching a plan of identical
// estimated cost.
func E13() (*Table, error) {
	tb := &Table{
		ID:      "E13",
		Title:   "Cost-bounded best-first backchase vs exhaustive (star/snowflake)",
		Columns: []string{"workload", "U bindings", "mode", "states", "pruned", "plans", "time", "best cost", "agree"},
		Metrics: map[string]float64{},
	}
	var totalEx, totalPr, totalPruned, totalBest float64
	var totalExT, totalPrT time.Duration
	for _, wl := range e13Workloads() {
		s, err := workload.NewStar(wl.Cfg)
		if err != nil {
			return nil, err
		}
		chased, err := chase.Chase(s.Q, s.Deps, chase.Options{})
		if err != nil {
			return nil, err
		}
		stats := cost.FromInstance(s.Generate(wl.Gen))

		t0 := time.Now()
		ex, err := backchase.Enumerate(chased.Query, s.Deps, backchase.Options{Parallelism: Parallelism})
		if err != nil {
			return nil, err
		}
		exT := time.Since(t0)
		exBest := e13Cheapest(stats, ex)

		t1 := time.Now()
		pr, err := backchase.Enumerate(chased.Query, s.Deps, backchase.Options{Parallelism: Parallelism, Stats: stats})
		if err != nil {
			return nil, err
		}
		prT := time.Since(t1)

		agree := pr.States < ex.States && costsAgree(pr.BestCost, exBest)
		tb.Rows = append(tb.Rows,
			[]string{wl.Name, fmt.Sprintf("%d", len(chased.Query.Bindings)), "exhaustive",
				fmt.Sprintf("%d", ex.States), "-", fmt.Sprintf("%d", len(ex.Plans)),
				exT.Round(time.Millisecond).String(), fmt.Sprintf("%.1f", exBest), ""},
			[]string{wl.Name, fmt.Sprintf("%d", len(chased.Query.Bindings)), "cost-bounded",
				fmt.Sprintf("%d", pr.States), fmt.Sprintf("%d", pr.Pruned), fmt.Sprintf("%d", len(pr.Plans)),
				prT.Round(time.Millisecond).String(), fmt.Sprintf("%.1f", pr.BestCost),
				fmt.Sprintf("%v", agree)})
		totalEx += float64(ex.States)
		totalPr += float64(pr.States)
		totalPruned += float64(pr.Pruned)
		totalBest += pr.BestCost
		totalExT += exT
		totalPrT += prT
	}
	tb.Metrics["exhaustive_states"] = totalEx
	tb.Metrics["cost_bounded_states"] = totalPr
	tb.Metrics["pruned_states"] = totalPruned
	tb.Metrics["cheapest_cost_total"] = totalBest
	tb.Metrics["exhaustive_ms"] = float64(totalExT.Milliseconds())
	tb.Metrics["cost_bounded_ms"] = float64(totalPrT.Milliseconds())
	tb.Notes = append(tb.Notes,
		"agree = fewer states explored AND identical best cost (engine metric, 1e-9 relative tolerance)",
		fmt.Sprintf("totals: exhaustive %v over %.0f states, cost-bounded %v over %.0f (+%.0f pruned without a chase)",
			totalExT.Round(time.Millisecond), totalEx, totalPrT.Round(time.Millisecond), totalPr, totalPruned))
	return tb, nil
}

// e14ExecGen sizes the instance E14 executes plans on: small enough that
// scan-join plans finish in milliseconds, large enough that scan and
// index access paths measure apart.
func e14ExecGen() workload.StarGenOptions {
	return workload.StarGenOptions{NumFact: 400, NumDim: 160, NumSub: 60, DomA: 40, Seed: 2}
}

// E14 closes the loop PR 3 opened: it A/B-tests the dictionary-aware
// admissible bound (cost.Stats.LowerBound) against PR 2's scan-only floor
// (cost.Stats.ScanFloor) on the E13 workloads, and calibrates the cost
// model against measured executions — every exhaustive minimal plan is
// compiled and run through the pull-based engine on a generated instance,
// recording measured work (probes + rows) and wall time next to the
// estimate.
//
// Headline expectations (gated by TestE14TightBoundAndCalibration):
//
//   - the tight bound explores strictly fewer states than the scan-only
//     bound, which explores strictly fewer than exhaustive, at identical
//     cheapest estimated cost;
//   - a pruned search driven by the execution instance's own statistics
//     never worsens the delivered plan: the minimum-estimate candidate of
//     the pruned pool (normal forms + explored states) measures no worse
//     than the exhaustive pool's;
//   - estimated-cost ordering correlates positively with measured cost
//     (Spearman rank correlation) on every workload.
func E14() (*Table, error) {
	tb := &Table{
		ID:      "E14",
		Title:   "Dictionary-aware bound vs scan-only bound + measured-cost calibration",
		Columns: []string{"workload", "bound", "states", "pruned", "plans", "best cost", "agree"},
		Metrics: map[string]float64{},
	}
	var totals struct {
		ex, scan, tight, pruned, best float64
	}
	spearmanMin := math.Inf(1)
	measuredKept := 1.0
	estAgree := 1.0
	totalSkipped := 0.0
	for _, wl := range e13Workloads() {
		s, err := workload.NewStar(wl.Cfg)
		if err != nil {
			return nil, err
		}
		chased, err := chase.Chase(s.Q, s.Deps, chase.Options{})
		if err != nil {
			return nil, err
		}
		stats := cost.FromInstance(s.Generate(wl.Gen))

		// Exhaustive enumeration is deterministic at any worker count, but
		// which states a cost-bounded run explores is schedule-dependent:
		// the scan-only and dictionary-aware runs are pinned to a serial
		// search so E14's strict three-way state comparison (and the
		// bench-check gate built on its metrics) cannot flake under a
		// lucky parallel schedule.
		ex, err := backchase.Enumerate(chased.Query, s.Deps, backchase.Options{Parallelism: Parallelism})
		if err != nil {
			return nil, err
		}
		exBest := e13Cheapest(stats, ex)
		scan, err := backchase.Enumerate(chased.Query, s.Deps,
			backchase.Options{Parallelism: 1, Stats: stats, ScanOnlyBound: true})
		if err != nil {
			return nil, err
		}
		tight, err := backchase.Enumerate(chased.Query, s.Deps,
			backchase.Options{Parallelism: 1, Stats: stats})
		if err != nil {
			return nil, err
		}
		agree := tight.States < scan.States && scan.States < ex.States &&
			costsAgree(tight.BestCost, exBest) && costsAgree(scan.BestCost, exBest)
		if !costsAgree(tight.BestCost, exBest) || !costsAgree(scan.BestCost, exBest) {
			estAgree = 0
		}

		// Calibration: execute the exhaustive minimal plans on an
		// execution-sized instance, then check a pruned search driven by
		// that instance's own statistics keeps the measured-cheapest plan.
		execIn := s.Generate(e14ExecGen())
		execStats := cost.FromInstance(execIn)
		pts, skipped, err := CalibratePlans(execStats, ex.Plans, execIn)
		if err != nil {
			return nil, err
		}
		totalSkipped += float64(skipped)
		rho := SpearmanEstVsMeasured(pts)
		if rho < spearmanMin {
			spearmanMin = rho
		}
		prExec, err := backchase.Enumerate(chased.Query, s.Deps,
			backchase.Options{Parallelism: 1, Stats: execStats})
		if err != nil {
			return nil, err
		}
		// Delivered-plan comparison over the full candidate pools (normal
		// forms plus explored states — what the optimizer actually ranks):
		// pruning must not worsen the plan the optimizer picks.
		exMeas, err := DeliveredMeasured(execStats, CandidatePool(ex), execIn)
		if err != nil {
			return nil, err
		}
		prMeas, err := DeliveredMeasured(execStats, CandidatePool(prExec), execIn)
		if err != nil {
			return nil, err
		}
		if prMeas > exMeas && !costsAgree(prMeas, exMeas) {
			measuredKept = 0
		}
		var execWall time.Duration
		for _, p := range pts {
			execWall += p.Wall
		}

		tb.Rows = append(tb.Rows,
			[]string{wl.Name, "none (exhaustive)", fmt.Sprintf("%d", ex.States), "-",
				fmt.Sprintf("%d", len(ex.Plans)), fmt.Sprintf("%.1f", exBest), ""},
			[]string{wl.Name, "scan-only (PR2)", fmt.Sprintf("%d", scan.States), fmt.Sprintf("%d", scan.Pruned),
				fmt.Sprintf("%d", len(scan.Plans)), fmt.Sprintf("%.1f", scan.BestCost), ""},
			[]string{wl.Name, "dictionary-aware", fmt.Sprintf("%d", tight.States), fmt.Sprintf("%d", tight.Pruned),
				fmt.Sprintf("%d", len(tight.Plans)), fmt.Sprintf("%.1f", tight.BestCost),
				fmt.Sprintf("%v", agree)})
		tb.Notes = append(tb.Notes, fmt.Sprintf(
			"%s calibration: %d plans executed in %v (%d non-executable candidates skipped), spearman(est, measured)=%.2f, delivered plan measured %.0f (exhaustive pool) vs %.0f (pruned pool)",
			wl.Name, len(pts), execWall.Round(time.Millisecond), skipped, rho, exMeas, prMeas))

		totals.ex += float64(ex.States)
		totals.scan += float64(scan.States)
		totals.tight += float64(tight.States)
		totals.pruned += float64(tight.Pruned)
		totals.best += tight.BestCost
	}
	tb.Metrics["exhaustive_states"] = totals.ex
	tb.Metrics["scanfloor_states"] = totals.scan
	tb.Metrics["tight_states"] = totals.tight
	tb.Metrics["tight_pruned"] = totals.pruned
	tb.Metrics["cheapest_cost_total"] = totals.best
	tb.Metrics["spearman_min"] = spearmanMin
	tb.Metrics["measured_cheapest_kept"] = measuredKept
	tb.Metrics["est_cost_agree"] = estAgree
	// Candidates CalibratePlans refused to execute (unguarded failing
	// lookups). Gated exactly in benchcheck: executor coverage loss would
	// silently shrink the calibration profile otherwise.
	tb.Metrics["calibration_skipped"] = totalSkipped
	tb.Notes = append(tb.Notes,
		"agree = dictionary-aware states < scan-only states < exhaustive states AND identical best cost across all three",
		fmt.Sprintf("totals: exhaustive %.0f states, scan-only bound %.0f, dictionary-aware %.0f (+%.0f pruned)",
			totals.ex, totals.scan, totals.tight, totals.pruned))
	return tb, nil
}

// E15 measures the delta-driven incremental chase (PR 4) against the
// naive fixpoint on the E13 star/snowflake workloads: the full pipeline —
// root chase to the universal plan plus every per-state equivalence chase
// of an exhaustive backchase — runs once with each engine, and the chase
// work counters (chase.Metrics) are compared. The two engines produce
// byte-identical chase steps, so states, plans and chase_steps must
// agree exactly; hom_tests is where the dependency index, the per-step
// delta discipline and the rep-seeded homomorphism search pay off
// (>= 2x fewer on every workload, gated by TestE15IncrementalChase and
// the bench-check pipeline via the naive_hom_tests / indexed_hom_tests /
// chase_steps metrics).
func E15() (*Table, error) {
	tb := &Table{
		ID:      "E15",
		Title:   "Incremental chase: hom tests naive vs delta-indexed (star/snowflake)",
		Columns: []string{"workload", "engine", "chase steps", "hom tests", "dep searches", "states", "plans", "time", "ratio"},
		Metrics: map[string]float64{},
	}
	var totalNaive, totalIndexed, totalSteps float64
	minRatio := math.Inf(1)
	for _, wl := range e13Workloads() {
		s, err := workload.NewStar(wl.Cfg)
		if err != nil {
			return nil, err
		}
		type outcome struct {
			m             *chase.Metrics
			states, plans int
			wall          time.Duration
		}
		runEngine := func(naive bool) (*outcome, error) {
			o := &outcome{m: &chase.Metrics{}}
			copts := chase.Options{Naive: naive, Metrics: o.m}
			start := time.Now()
			chased, err := chase.Chase(s.Q, s.Deps, copts)
			if err != nil {
				return nil, err
			}
			enum, err := backchase.Enumerate(chased.Query, s.Deps,
				backchase.Options{Parallelism: Parallelism, Chase: copts})
			if err != nil {
				return nil, err
			}
			o.states, o.plans, o.wall = enum.States, len(enum.Plans), time.Since(start)
			return o, nil
		}
		naive, err := runEngine(true)
		if err != nil {
			return nil, err
		}
		indexed, err := runEngine(false)
		if err != nil {
			return nil, err
		}
		if naive.states != indexed.states || naive.plans != indexed.plans ||
			naive.m.ChaseSteps.Load() != indexed.m.ChaseSteps.Load() {
			return nil, fmt.Errorf("E15 %s: engines disagree: states %d/%d plans %d/%d steps %d/%d",
				wl.Name, naive.states, indexed.states, naive.plans, indexed.plans,
				naive.m.ChaseSteps.Load(), indexed.m.ChaseSteps.Load())
		}
		ratio := float64(naive.m.HomTests.Load()) / float64(indexed.m.HomTests.Load())
		if ratio < minRatio {
			minRatio = ratio
		}
		row := func(label string, o *outcome, ratioCell string) []string {
			return []string{wl.Name, label,
				fmt.Sprintf("%d", o.m.ChaseSteps.Load()),
				fmt.Sprintf("%d", o.m.HomTests.Load()),
				fmt.Sprintf("%d", o.m.DepSearches.Load()),
				fmt.Sprintf("%d", o.states), fmt.Sprintf("%d", o.plans),
				o.wall.Round(time.Millisecond).String(), ratioCell}
		}
		tb.Rows = append(tb.Rows,
			row("naive", naive, ""),
			row("delta-indexed", indexed, fmt.Sprintf("%.2fx", ratio)))
		totalNaive += float64(naive.m.HomTests.Load())
		totalIndexed += float64(indexed.m.HomTests.Load())
		totalSteps += float64(indexed.m.ChaseSteps.Load())
	}
	tb.Metrics["naive_hom_tests"] = totalNaive
	tb.Metrics["indexed_hom_tests"] = totalIndexed
	tb.Metrics["chase_steps"] = totalSteps
	tb.Metrics["hom_test_ratio"] = totalNaive / totalIndexed
	tb.Notes = append(tb.Notes,
		"both engines produce byte-identical chase steps; only the search work differs",
		fmt.Sprintf("totals: %0.f naive vs %0.f indexed hom tests (%.2fx; min per-workload %.2fx) over %.0f chase steps",
			totalNaive, totalIndexed, totalNaive/totalIndexed, minRatio, totalSteps))
	return tb, nil
}

// RunAll runs every experiment and returns the rendered tables; the first
// error aborts. Used by cmd/chasebench and the final EXPERIMENTS capture.
func RunAll() ([]*Table, error) {
	var out []*Table
	for _, e := range All() {
		t, err := e.Run()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", e.ID, err)
		}
		out = append(out, t)
	}
	return out, nil
}
