package bench

import "testing"

// TestE20ColdTiered is the serve-cold gate: the experiment itself
// hard-fails on any broken tiering invariant — a cold tiered response
// not served by the greedy tier, a greedy plan that is not row-identical
// to the row engine, detached flights failing to upgrade, an upgraded
// entry serving anything but the synchronous cheapest cost, or a
// cold-shape p99 improvement under 10x — so the test only needs to run
// it and sanity-check the exact counters the baseline gates.
func TestE20ColdTiered(t *testing.T) {
	if testing.Short() {
		t.Skip("cold-shape replay pays three full cold backchases; skipped in -short")
	}
	tb, err := E20()
	if err != nil {
		t.Fatal(err)
	}
	shapes := tb.Metrics["shapes"]
	if shapes == 0 {
		t.Fatal("no shapes replayed")
	}
	if got := tb.Metrics["greedy_served"]; got != shapes {
		t.Errorf("greedy_served = %v, want %v (one per cold shape)", got, shapes)
	}
	if got := tb.Metrics["upgraded_flights"]; got != shapes {
		t.Errorf("upgraded_flights = %v, want %v (every detached flight upgrades)", got, shapes)
	}
	if tb.Metrics["greedy_check_rows"] <= 0 {
		t.Error("differential check matched zero rows — the check is vacuous")
	}
	if s, u := tb.Metrics["cheapest_cost_sync_total"], tb.Metrics["cheapest_cost_upgraded_total"]; s != u {
		t.Errorf("upgraded cost total %v != synchronous cost total %v", u, s)
	}
	if sp := tb.Metrics["cold_speedup"]; sp < 10 {
		t.Errorf("cold speedup %.1fx below 10x", sp)
	}
	t.Logf("\n%s", tb)
}
