package bench

import (
	"fmt"
	"math"
	"strings"
	"testing"
)

func TestAllExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tb, err := e.Run()
			if err != nil {
				t.Fatalf("%s failed: %v", e.ID, err)
			}
			if tb.ID != e.ID {
				t.Errorf("table id = %s, want %s", tb.ID, e.ID)
			}
			if len(tb.Rows) == 0 {
				t.Errorf("%s produced no rows", e.ID)
			}
			s := tb.String()
			if !strings.Contains(s, e.ID) {
				t.Errorf("%s render missing id:\n%s", e.ID, s)
			}
			t.Logf("\n%s", s)
		})
	}
}

func TestE1FindsAllPaperPlans(t *testing.T) {
	tb, err := E1()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tb.Rows {
		if row[1] == "NOT FOUND" {
			t.Errorf("plan %s not found", row[0])
		}
	}
}

func TestE7AllAgree(t *testing.T) {
	tb, err := E7()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tb.Rows {
		if row[4] != "true" {
			t.Errorf("completeness mismatch at chain %s", row[0])
		}
	}
}

// TestE13PrunesWithIdenticalCost pins the headline claim of the
// cost-bounded backchase: on every star/snowflake workload the pruned
// search explores strictly fewer states than exhaustive enumeration and
// reaches a cheapest plan of identical estimated cost.
func TestE13PrunesWithIdenticalCost(t *testing.T) {
	if testing.Short() {
		t.Skip("E13 runs full lattice enumerations")
	}
	tb, err := E13()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tb.Rows {
		if row[2] == "cost-bounded" && row[len(row)-1] != "true" {
			t.Errorf("workload %q: pruned search did not agree with exhaustive: %v", row[0], row)
		}
	}
	if tb.Metrics["cost_bounded_states"] >= tb.Metrics["exhaustive_states"] {
		t.Errorf("cost-bounded explored %v states, exhaustive %v — expected strictly fewer",
			tb.Metrics["cost_bounded_states"], tb.Metrics["exhaustive_states"])
	}
	if tb.Metrics["pruned_states"] == 0 {
		t.Error("no states were pruned on the star/snowflake family")
	}
}

// TestE14TightBoundAndCalibration pins the headline claims of the
// dictionary-aware bound: on every star/snowflake workload it explores
// strictly fewer states than PR 2's scan-only bound (which in turn beats
// exhaustive) at identical cheapest estimated cost, the pruned search
// driven by the execution instance's statistics keeps the
// measured-cheapest plan, and estimated cost ordering correlates
// positively with measured cost.
func TestE14TightBoundAndCalibration(t *testing.T) {
	if testing.Short() {
		t.Skip("E14 runs full lattice enumerations and plan executions")
	}
	tb, err := E14()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tb.Rows {
		if row[1] == "dictionary-aware" && row[len(row)-1] != "true" {
			t.Errorf("workload %q: tight bound did not agree: %v", row[0], row)
		}
	}
	if tb.Metrics["tight_states"] >= tb.Metrics["scanfloor_states"] {
		t.Errorf("tight bound explored %v states, scan-only %v — expected strictly fewer",
			tb.Metrics["tight_states"], tb.Metrics["scanfloor_states"])
	}
	if tb.Metrics["scanfloor_states"] >= tb.Metrics["exhaustive_states"] {
		t.Errorf("scan-only bound explored %v states, exhaustive %v — expected strictly fewer",
			tb.Metrics["scanfloor_states"], tb.Metrics["exhaustive_states"])
	}
	if tb.Metrics["est_cost_agree"] != 1 {
		t.Error("cheapest estimated cost differed across bounds")
	}
	if tb.Metrics["measured_cheapest_kept"] != 1 {
		t.Error("a measured-cheapest plan was pruned on a star/snowflake workload")
	}
	if tb.Metrics["spearman_min"] <= 0 {
		t.Errorf("spearman_min = %v, want > 0 (estimates must correlate with measurement)",
			tb.Metrics["spearman_min"])
	}
	// The skip counter must be reported (and therefore gated in
	// benchcheck): a silent growth here would mean calibration quietly
	// profiles fewer candidates than the search produced.
	skipped, ok := tb.Metrics["calibration_skipped"]
	if !ok {
		t.Fatal("calibration_skipped metric missing from E14")
	}
	if skipped < 0 || skipped != math.Trunc(skipped) {
		t.Errorf("calibration_skipped = %v, want a non-negative integer count", skipped)
	}
}

// TestE15IncrementalChase pins the headline claim of the delta-driven
// chase: on every star/snowflake workload the incremental engine does at
// least 2x fewer homomorphism tests than the naive fixpoint while the
// experiment itself asserts identical states, plans and chase steps (it
// errors out on any disagreement).
func TestE15IncrementalChase(t *testing.T) {
	if testing.Short() {
		t.Skip("E15 runs full lattice enumerations twice")
	}
	tb, err := E15()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tb.Rows {
		if row[1] != "delta-indexed" {
			continue
		}
		ratio := row[len(row)-1]
		var r float64
		if _, err := fmt.Sscanf(ratio, "%fx", &r); err != nil {
			t.Fatalf("workload %q: unparsable ratio %q", row[0], ratio)
		}
		if r < 2 {
			t.Errorf("workload %q: hom-test reduction %.2fx below the promised 2x", row[0], r)
		}
	}
	if tb.Metrics["indexed_hom_tests"] >= tb.Metrics["naive_hom_tests"] {
		t.Errorf("indexed hom tests %v not below naive %v",
			tb.Metrics["indexed_hom_tests"], tb.Metrics["naive_hom_tests"])
	}
	if tb.Metrics["chase_steps"] <= 0 {
		t.Error("chase_steps metric missing")
	}
}

func TestE3AlwaysMinimizesToTwo(t *testing.T) {
	tb, err := E3()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tb.Rows {
		if row[1] != "2" {
			t.Errorf("chain %s minimized to %s bindings, want 2", row[0], row[1])
		}
	}
}

func TestE11JoinElimination(t *testing.T) {
	tb, err := E11()
	if err != nil {
		t.Fatal(err)
	}
	if tb.Rows[0][1] != "1" {
		t.Errorf("with constraints: %s bindings, want 1", tb.Rows[0][1])
	}
	if tb.Rows[1][1] != "2" {
		t.Errorf("without constraints: %s bindings, want 2", tb.Rows[1][1])
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{
		ID:      "X",
		Title:   "test",
		Columns: []string{"a", "long-column"},
		Rows:    [][]string{{"1", "2"}, {"333", "4"}},
		Notes:   []string{"note text"},
	}
	s := tb.String()
	for _, frag := range []string{"== X: test ==", "long-column", "333", "note: note text"} {
		if !strings.Contains(s, frag) {
			t.Errorf("render missing %q:\n%s", frag, s)
		}
	}
}

func TestRedundantChainShape(t *testing.T) {
	q := redundantChain(4)
	if len(q.Bindings) != 4 || len(q.Conds) != 3 {
		t.Errorf("chain shape wrong: %s", q)
	}
	if err := q.Validate(); err != nil {
		t.Error(err)
	}
}
