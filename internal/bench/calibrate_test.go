package bench

import (
	"math"
	"math/rand"
	"testing"

	"cnb/internal/backchase"
	"cnb/internal/chase"
	"cnb/internal/cost"
	"cnb/internal/workload"
)

// TestCalibrationSoundnessRandomized is the measured-cost counterpart of
// the backchase package's estimate-level differential suite: on >= 60
// randomized star/snowflake scenarios with consistent generated
// instances, the cost-bounded search driven by the instance's own
// statistics must — across Parallelism 1, 2 and 8 —
//
//	(a) never discard the plan the optimizer delivers: the measured cost
//	    of the minimum-estimate candidate in the pruned pool (worst tie)
//	    is no worse than the exhaustive pool's (best tie) — pruning can
//	    drop candidates the cost model ranks above the winner, but never
//	    the measured-cheapest plan the search would actually pick,
//	(b) reach the same cheapest estimated cost as exhaustive search, and
//	(c) explore no more states than the exhaustive search.
//
// Every executed candidate must also return the same result set — they
// are equivalent rewrites on a dependency-satisfying instance.
func TestCalibrationSoundnessRandomized(t *testing.T) {
	if testing.Short() {
		t.Skip("runs many enumerations and plan executions")
	}
	const cases = 60
	r := rand.New(rand.NewSource(99))
	for i := 0; i < cases; i++ {
		cfg, gen := workload.RandomStar(r)
		s, err := workload.NewStar(cfg)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		chased, err := chase.Chase(s.Q, s.Deps, chase.Options{})
		if err != nil {
			t.Fatalf("case %d: chase: %v", i, err)
		}
		in := s.Generate(gen)
		stats := cost.FromInstance(in)

		ex, err := backchase.Enumerate(chased.Query, s.Deps, backchase.Options{Parallelism: 2})
		if err != nil {
			t.Fatalf("case %d: exhaustive: %v", i, err)
		}
		if ex.Truncated {
			t.Fatalf("case %d: unexpected truncation", i)
		}
		exPts, _, err := CalibratePlans(stats, CandidatePool(ex), in)
		if err != nil {
			t.Fatalf("case %d: calibrate exhaustive plans: %v\ncfg %+v", i, err, cfg)
		}
		if len(exPts) == 0 {
			t.Fatalf("case %d: no executable exhaustive candidate\ncfg %+v", i, cfg)
		}
		for j, p := range exPts {
			if p.Rows != exPts[0].Rows {
				t.Fatalf("case %d: candidate %d returned %d rows, candidate 0 returned %d — equivalent plans must agree\ncfg %+v",
					i, j, p.Rows, exPts[0].Rows, cfg)
			}
		}
		exBestEst := e13Cheapest(stats, ex)
		exPicked := PickedMeasured(exPts, false)

		for _, par := range []int{1, 2, 8} {
			pr, err := backchase.Enumerate(chased.Query, s.Deps,
				backchase.Options{Parallelism: par, Stats: stats})
			if err != nil {
				t.Fatalf("case %d par %d: pruned: %v", i, par, err)
			}
			if pr.States > ex.States {
				t.Errorf("case %d par %d: pruned explored %d states, exhaustive %d\ncfg %+v",
					i, par, pr.States, ex.States, cfg)
			}
			const eps = 1e-6
			if pr.BestCost > exBestEst*(1+eps)+eps {
				t.Errorf("case %d par %d: pruned cheapest estimate %.6f worse than exhaustive %.6f\ncfg %+v",
					i, par, pr.BestCost, exBestEst, cfg)
			}
			prPts, _, err := CalibratePlans(stats, CandidatePool(pr), in)
			if err != nil {
				t.Fatalf("case %d par %d: calibrate pruned plans: %v", i, par, err)
			}
			prPicked := PickedMeasured(prPts, true)
			if prPicked > exPicked*(1+eps) {
				t.Errorf("case %d par %d: pruning worsened the delivered plan: measured %.0f vs %.0f\ncfg %+v",
					i, par, prPicked, exPicked, cfg)
			}
		}
	}
}

// TestSpearmanRankCorrelation pins the statistic itself on hand-built
// profiles: perfect agreement, perfect inversion, and degenerate inputs.
func TestSpearmanRankCorrelation(t *testing.T) {
	mk := func(est []float64, meas []int64) []CalibrationPoint {
		pts := make([]CalibrationPoint, len(est))
		for i := range est {
			pts[i].Est = est[i]
			pts[i].Measured.Rows = meas[i]
		}
		return pts
	}
	if rho := SpearmanEstVsMeasured(mk([]float64{1, 2, 3, 4}, []int64{10, 20, 30, 40})); rho != 1 {
		t.Errorf("concordant spearman = %v, want 1", rho)
	}
	if rho := SpearmanEstVsMeasured(mk([]float64{1, 2, 3, 4}, []int64{40, 30, 20, 10})); rho != -1 {
		t.Errorf("inverted spearman = %v, want -1", rho)
	}
	if rho := SpearmanEstVsMeasured(mk([]float64{5, 5, 5}, []int64{1, 2, 3})); rho != 0 {
		t.Errorf("constant-side spearman = %v, want 0", rho)
	}
	if rho := SpearmanEstVsMeasured(nil); rho != 0 {
		t.Errorf("empty spearman = %v, want 0", rho)
	}
	// Ties get average ranks: a single swap among four keeps rho strictly
	// between 0 and 1.
	rho := SpearmanEstVsMeasured(mk([]float64{1, 2, 3, 4}, []int64{10, 30, 20, 40}))
	if !(rho > 0 && rho < 1) {
		t.Errorf("partially concordant spearman = %v, want in (0, 1)", rho)
	}
}

// TestPickedMeasuredEmpty: the empty point set claims +Inf, so any
// comparison against it fails loudly instead of silently passing.
func TestPickedMeasuredEmpty(t *testing.T) {
	if c := PickedMeasured(nil, true); !math.IsInf(c, 1) {
		t.Errorf("PickedMeasured(nil) = %v, want +Inf", c)
	}
}
