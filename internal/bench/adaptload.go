// E21: adaptive tier promotion — the latency predictor learns per-shape
// flight budgets from a cold training pass, and a second pass must route
// every shape without a single budgeted wait: predicted-fast shapes
// synchronously, predicted-slow shapes straight to the greedy tier.
package bench

import (
	"context"
	"fmt"
	"time"

	"cnb/internal/core"
	"cnb/internal/service"
)

// e21Shape is one shape family of the replay: fast families are trivial
// one/two-binding queries with no dependencies (a one-state backchase,
// cold in well under a millisecond), slow families are the E13/E20
// star/snowflake shapes whose cold backchase takes hundreds of
// milliseconds — the two latency regimes the predictor must separate.
type e21Shape struct {
	Name string
	Req  service.Request
	Fast bool

	syncLatency time.Duration
	syncCost    float64
	servedIn    time.Duration
}

// e21Budget clamps the adaptive plan-latency budget exactly like E20.
const (
	e21MinBudget = 2 * time.Millisecond
	e21MaxBudget = 200 * time.Millisecond
)

// e21FastShapes builds the predicted-fast families: dependency-free
// queries whose universal plan is the query itself, so the whole flight
// is a chase no-op plus a one-or-two-state backchase.
func e21FastShapes() []*e21Shape {
	scan := &core.Query{
		Out:      core.Prj(core.V("r"), "A"),
		Bindings: []core.Binding{{Var: "r", Range: core.Name("E21FastR")}},
		Conds:    []core.Cond{{L: core.Prj(core.V("r"), "Tag"), R: core.C("hot")}},
	}
	join := &core.Query{
		Out: core.Prj(core.V("s"), "B"),
		Bindings: []core.Binding{
			{Var: "r", Range: core.Name("E21FastR")},
			{Var: "s", Range: core.Name("E21FastS")},
		},
		Conds: []core.Cond{{L: core.Prj(core.V("r"), "A"), R: core.Prj(core.V("s"), "A")}},
	}
	return []*e21Shape{
		{Name: "trivial scan", Req: service.Request{Query: scan}, Fast: true},
		{Name: "trivial join", Req: service.Request{Query: join}, Fast: true},
	}
}

// e21Shapes builds the full replay family: the three E13/E20
// star/snowflake shapes (slow) plus the two trivial shapes (fast).
func e21Shapes() ([]*e21Shape, error) {
	slow, err := e20Shapes()
	if err != nil {
		return nil, err
	}
	var shapes []*e21Shape
	for _, sh := range slow {
		shapes = append(shapes, &e21Shape{Name: sh.Name, Req: sh.Req})
	}
	return append(shapes, e21FastShapes()...), nil
}

// e21Service builds a fresh adaptive service in the E20 configuration
// sharing the given predictor (nil = private).
func e21Service(budget time.Duration, pred *service.LatencyPredictor) *service.Service {
	return service.New(service.Options{
		Parallelism:    Parallelism,
		MinimalOnly:    true,
		MaxPlanLatency: budget,
		Predictor:      pred,
	})
}

// E21 replays the mixed fast/slow shape family through adaptive tier
// promotion in three phases (plus a synchronous sizing pass) and holds
// the routing to exact counters:
//
//  0. sizing — every shape cold on a synchronous service; per-shape
//     latency and cheapest cost are the reference. The budget is
//     slow_min/20 clamped to [2ms, 200ms] and at least 8x the slowest
//     fast shape; the families must be separated by >= 32x or the
//     experiment refuses to run (no flaky thresholds).
//  1. train — every shape cold on a fresh adaptive service with a fresh
//     shared predictor: all five are unknown, so all five take the
//     budgeted wait (train_budgeted_waits, exact). Fast shapes land
//     within the budget (backchase tier), slow shapes are served greedy
//     (train_greedy_served) and their detached flights land and upgrade
//     (train_upgraded_flights).
//  2. serve — a FRESH service (cold plan cache, no upgrade marks)
//     shares the trained predictor, modeling learned budgets surviving
//     a restart: fast shapes must route predicted-fast and serve the
//     backchase tier synchronously, slow shapes must route
//     predicted-slow and serve the greedy tier immediately — with zero
//     budgeted waits (the tentpole gate) and zero prediction misses.
//  3. converge — after the serve-pass detached flights upgrade, every
//     shape routes predicted-fast (fast by EWMA, slow by their upgraded
//     cache entry) and serves the backchase tier from cache, slow
//     shapes marked Upgraded at exactly the synchronous cheapest cost.
//
// Per-tier histograms of the serve service are gated exactly:
// hist_greedy_total = 3 (phase-2 slow), hist_backchase_sync_total = 4
// (phase-2 + phase-3 fast), hist_backchase_upgraded_total = 3 (phase-3
// slow), and their sum must equal the service's request count — the
// bucket counts (exported as hist_*_le_*us, informational) sum to the
// totals by construction.
func E21() (*Table, error) {
	shapes, err := e21Shapes()
	if err != nil {
		return nil, err
	}
	ctx := context.Background()

	// Phase 0: synchronous sizing pass.
	syncSvc := e21Service(0, nil)
	var fastMax, slowMin time.Duration
	slowMin = time.Duration(1<<63 - 1)
	var syncCostTotal float64
	for _, sh := range shapes {
		t0 := time.Now()
		resp, err := syncSvc.Optimize(ctx, sh.Req)
		sh.syncLatency = time.Since(t0)
		if err != nil {
			return nil, fmt.Errorf("E21 %s: sync: %w", sh.Name, err)
		}
		if resp.Tier != service.TierBackchase || resp.TierReason != service.ReasonSynchronous || resp.Result.Best == nil {
			return nil, fmt.Errorf("E21 %s: sync response tier=%q reason=%q", sh.Name, resp.Tier, resp.TierReason)
		}
		sh.syncCost = resp.Result.Best.Cost
		syncCostTotal += sh.syncCost
		if sh.Fast {
			if sh.syncLatency > fastMax {
				fastMax = sh.syncLatency
			}
		} else if sh.syncLatency < slowMin {
			slowMin = sh.syncLatency
		}
	}
	if fastMax*32 > slowMin {
		return nil, fmt.Errorf("E21: fast/slow families not separated: fast max %v, slow min %v (need 32x)", fastMax, slowMin)
	}
	budget := slowMin / 20
	if budget < e21MinBudget {
		budget = e21MinBudget
	}
	if budget > e21MaxBudget {
		budget = e21MaxBudget
	}
	if fastMax*8 > budget {
		budget = fastMax * 8
	}
	if budget*4 > slowMin {
		return nil, fmt.Errorf("E21: budget %v too close to slow min %v for deterministic routing", budget, slowMin)
	}

	// Phases 1 and 2 request the fast families first: the slow families
	// start detached backchase flights that keep burning CPU in the
	// background, and a fast shape's budgeted or synchronous wait must
	// be measured on an idle service — not starved by three concurrent
	// cold backchases — or the 8x budget margin is not a margin at all
	// (the race-instrumented CI run is an order of magnitude slower).
	ordered := make([]*e21Shape, 0, len(shapes))
	for _, sh := range shapes {
		if sh.Fast {
			ordered = append(ordered, sh)
		}
	}
	for _, sh := range shapes {
		if !sh.Fast {
			ordered = append(ordered, sh)
		}
	}

	// Phase 1: train a fresh predictor on a cold adaptive service. Every
	// shape is unknown, so every request must take the budgeted wait.
	pred := service.NewLatencyPredictor(0)
	train := e21Service(budget, pred)
	for _, sh := range ordered {
		resp, err := train.Optimize(ctx, sh.Req)
		if err != nil {
			return nil, fmt.Errorf("E21 %s: train: %w", sh.Name, err)
		}
		if resp.TierReason != service.ReasonBudgeted {
			return nil, fmt.Errorf("E21 %s: train reason=%q, want budgeted", sh.Name, resp.TierReason)
		}
		wantTier := service.TierGreedy
		if sh.Fast {
			wantTier = service.TierBackchase
		}
		if resp.Tier != wantTier {
			return nil, fmt.Errorf("E21 %s: train tier=%q, want %q (budget %v, sync latency %v)",
				sh.Name, resp.Tier, wantTier, budget, sh.syncLatency)
		}
	}
	if err := e21WaitUpgrades(train, 3); err != nil {
		return nil, fmt.Errorf("E21 train: %w", err)
	}
	tc := train.Counters()
	if tc.BudgetedWaits != 5 || tc.GreedyServed != 3 || tc.PredictedFast != 0 || tc.PredictedSlow != 0 {
		return nil, fmt.Errorf("E21 train counters off: %+v", tc)
	}

	// Phase 2: a fresh service — cold plan cache, empty upgraded set —
	// adopts the trained predictor. Routing must be decided entirely by
	// the learned latencies: no budgeted wait anywhere.
	serve := e21Service(budget, pred)
	var tieredLat []time.Duration
	for _, sh := range ordered {
		t0 := time.Now()
		resp, err := serve.Optimize(ctx, sh.Req)
		sh.servedIn = time.Since(t0)
		if err != nil {
			return nil, fmt.Errorf("E21 %s: serve: %w", sh.Name, err)
		}
		if sh.Fast {
			if resp.TierReason != service.ReasonPredictedFast || resp.Tier != service.TierBackchase {
				return nil, fmt.Errorf("E21 %s: serve reason=%q tier=%q, want predicted-fast/backchase", sh.Name, resp.TierReason, resp.Tier)
			}
		} else {
			if resp.TierReason != service.ReasonPredictedSlow || resp.Tier != service.TierGreedy {
				return nil, fmt.Errorf("E21 %s: serve reason=%q tier=%q, want predicted-slow/greedy", sh.Name, resp.TierReason, resp.Tier)
			}
			tieredLat = append(tieredLat, sh.servedIn)
		}
	}
	if err := e21WaitUpgrades(serve, 3); err != nil {
		return nil, fmt.Errorf("E21 serve: %w", err)
	}

	// Phase 3: convergence — every shape now routes predicted-fast (fast
	// families by EWMA, slow families by their upgraded cache entry) and
	// serves the backchase tier from the plan cache.
	var adaptiveCostTotal float64
	for _, sh := range shapes {
		resp, err := serve.Optimize(ctx, sh.Req)
		if err != nil {
			return nil, fmt.Errorf("E21 %s: converge: %w", sh.Name, err)
		}
		if resp.TierReason != service.ReasonPredictedFast || resp.Tier != service.TierBackchase || !resp.CacheHit {
			return nil, fmt.Errorf("E21 %s: converge reason=%q tier=%q cacheHit=%v, want predicted-fast/backchase/true",
				sh.Name, resp.TierReason, resp.Tier, resp.CacheHit)
		}
		if !sh.Fast && !resp.Upgraded {
			return nil, fmt.Errorf("E21 %s: converge response not marked Upgraded", sh.Name)
		}
		if resp.Result.Best == nil || resp.Result.Best.Cost != sh.syncCost {
			return nil, fmt.Errorf("E21 %s: converge cost %v != synchronous cheapest %v", sh.Name, resp.Result.Best, sh.syncCost)
		}
		adaptiveCostTotal += resp.Result.Best.Cost
	}

	// The serve-pass counters and histograms are fully determined by the
	// routing assertions above; hold them to their exact values.
	sc := serve.Counters()
	if sc.BudgetedWaits != 0 || sc.PredictionMiss != 0 || sc.PredictedFast != 7 || sc.PredictedSlow != 3 || sc.GreedyServed != 3 {
		return nil, fmt.Errorf("E21 serve counters off: %+v", sc)
	}
	h := serve.Histograms()
	if h.Greedy.Total != 3 || h.BackchaseSync.Total != 4 || h.BackchaseUpgraded.Total != 3 {
		return nil, fmt.Errorf("E21 histogram totals off: greedy=%d sync=%d upgraded=%d",
			h.Greedy.Total, h.BackchaseSync.Total, h.BackchaseUpgraded.Total)
	}
	if sum := h.Greedy.Total + h.BackchaseSync.Total + h.BackchaseUpgraded.Total; sum != sc.Requests {
		return nil, fmt.Errorf("E21: histogram bucket sum %d != %d served requests", sum, sc.Requests)
	}

	sortDurations(tieredLat)
	tb := &Table{
		ID:      "E21",
		Title:   "Adaptive tier promotion: learned per-shape budgets route without waits",
		Columns: []string{"shape", "family", "sync cold", "served in", "reason path", "sync cost"},
		Metrics: map[string]float64{
			"shapes":                        5,
			"fast_shapes":                   2,
			"slow_shapes":                   3,
			"train_budgeted_waits":          float64(tc.BudgetedWaits),
			"train_greedy_served":           float64(tc.GreedyServed),
			"train_upgraded_flights":        float64(tc.Upgraded),
			"budgeted_waits":                float64(sc.BudgetedWaits),
			"predicted_fast":                float64(sc.PredictedFast),
			"predicted_slow":                float64(sc.PredictedSlow),
			"prediction_miss":               float64(sc.PredictionMiss),
			"greedy_served":                 float64(sc.GreedyServed),
			"upgraded_flights":              float64(sc.Upgraded),
			"hist_greedy_total":             float64(h.Greedy.Total),
			"hist_backchase_sync_total":     float64(h.BackchaseSync.Total),
			"hist_backchase_upgraded_total": float64(h.BackchaseUpgraded.Total),
			"cheapest_cost_sync_total":      syncCostTotal,
			"cheapest_cost_adaptive_total":  adaptiveCostTotal,
			"budget_ms":                     float64(budget) / float64(time.Millisecond),
			"sync_fast_max_ms":              float64(fastMax) / float64(time.Millisecond),
			"sync_slow_min_ms":              float64(slowMin) / float64(time.Millisecond),
			"served_slow_max_ms":            float64(percentile(tieredLat, 1.0)) / float64(time.Millisecond),
		},
		Notes: []string{
			fmt.Sprintf("adaptive budget %v (slow min / 20 clamped to [%v, %v], >= 8x fast max %v)",
				budget.Round(time.Microsecond), e21MinBudget, e21MaxBudget, fastMax.Round(time.Microsecond)),
			"serve pass: zero budgeted waits — fast shapes synchronous, slow shapes greedy with no timer",
		},
	}
	e21Buckets(tb.Metrics, "hist_greedy", h.Greedy)
	e21Buckets(tb.Metrics, "hist_backchase_sync", h.BackchaseSync)
	e21Buckets(tb.Metrics, "hist_backchase_upgraded", h.BackchaseUpgraded)
	for _, sh := range shapes {
		family, path := "slow", "budgeted -> predicted-slow -> predicted-fast"
		if sh.Fast {
			family, path = "fast", "budgeted -> predicted-fast -> predicted-fast"
		}
		tb.Rows = append(tb.Rows, []string{
			sh.Name,
			family,
			sh.syncLatency.Round(time.Microsecond).String(),
			sh.servedIn.Round(time.Microsecond).String(),
			path,
			fmt.Sprintf("%.1f", sh.syncCost),
		})
	}
	return tb, nil
}

// e21WaitUpgrades blocks until the service has counted want detached
// upgrades (the nightly-sized slow shapes can take a while to land).
func e21WaitUpgrades(svc *service.Service, want int64) error {
	deadline := time.Now().Add(2 * time.Minute)
	for svc.Counters().Upgraded < want && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := svc.Counters().Upgraded; got < want {
		return fmt.Errorf("only %d/%d detached flights upgraded within deadline", got, want)
	}
	return nil
}

// e21Buckets exports a histogram's non-empty buckets as informational
// metrics ("<prefix>_le_<bound>us"; the overflow bucket is "_overflow").
// The per-run bucket keys are machine-dependent and never gated — the
// gated totals are their exact sums by construction.
func e21Buckets(m map[string]float64, prefix string, h service.HistogramSnapshot) {
	bounds := h.UpperBoundsMicros()
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		if bounds[i] < 0 {
			m[prefix+"_overflow"] = float64(c)
			continue
		}
		m[fmt.Sprintf("%s_le_%dus", prefix, bounds[i])] = float64(c)
	}
}
