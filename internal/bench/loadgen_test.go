package bench

import (
	"context"
	"fmt"
	"math"
	"testing"
	"time"

	"cnb/internal/service"
)

// TestServiceLoadHarness is the CI service-load gate: 16 closed-loop
// workers hammer one Service with the small star/snowflake/ProjDept mix
// (half the requests alpha-renamed) and every response must succeed. Run
// under -race this doubles as the serving layer's concurrency gate. In
// -short mode (the CI configuration) the request count shrinks so the
// race-instrumented run stays fast.
func TestServiceLoadHarness(t *testing.T) {
	mix, err := SmallServeMix()
	if err != nil {
		t.Fatal(err)
	}
	requests := 300
	if testing.Short() {
		requests = 160
	}
	svc := service.New(service.Options{Parallelism: 1})
	res, err := RunLoad(context.Background(), svc, mix, LoadConfig{
		Workers:   16,
		Requests:  requests,
		AlphaRate: 0.5,
		Seed:      7,
	})
	if err != nil {
		t.Fatalf("load run returned an error response: %v", err)
	}
	if res.Errors != 0 {
		t.Fatalf("%d error responses out of %d requests", res.Errors, res.Requests)
	}
	if res.Requests != requests || res.Service.Requests != int64(requests) {
		t.Errorf("request accounting off: result %d, service %d, want %d",
			res.Requests, res.Service.Requests, requests)
	}
	// Singleflight + plan cache: each distinct shape backchases exactly
	// once no matter how the 16 workers interleave — every other request
	// is a cache hit or a coalesced waiter.
	if got, want := res.Service.BackchaseRuns, int64(len(mix)); got != want {
		t.Errorf("backchase runs = %d, want exactly %d (one per shape)", got, want)
	}
	if res.HitRate < 0.5 {
		t.Errorf("cache hit rate %.2f below 0.5 on the replay mix", res.HitRate)
	}
	// Every request is accounted for as a hit, a miss, or a coalesced
	// waiter (waiters never reach the cache).
	total := res.Cache.Hits + res.Cache.Misses + res.Service.Coalesced
	if total != int64(requests) {
		t.Errorf("hits(%d) + misses(%d) + coalesced(%d) = %d, want %d",
			res.Cache.Hits, res.Cache.Misses, res.Service.Coalesced, total, requests)
	}
}

// TestRunLoadDeterministicAtOneWorker: two single-worker runs over fresh
// services produce identical counter outcomes — the property that lets
// benchcheck gate E16's workers=1 counters exactly.
func TestRunLoadDeterministicAtOneWorker(t *testing.T) {
	mix, err := SmallServeMix()
	if err != nil {
		t.Fatal(err)
	}
	cfg := LoadConfig{Workers: 1, Requests: 60, AlphaRate: 0.5, Seed: 11}
	run := func() *LoadResult {
		t.Helper()
		svc := service.New(service.Options{Parallelism: 1})
		res, err := RunLoad(context.Background(), svc, mix, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Cache.Hits != b.Cache.Hits || a.Cache.Misses != b.Cache.Misses ||
		a.Service.BackchaseRuns != b.Service.BackchaseRuns {
		t.Errorf("single-worker runs diverged: %+v vs %+v", a.Cache, b.Cache)
	}
	if a.Service.Coalesced != 0 {
		t.Errorf("a single worker cannot coalesce, got %d", a.Service.Coalesced)
	}
	if a.Cache.Misses != int64(len(mix)) {
		t.Errorf("misses = %d, want one per shape (%d)", a.Cache.Misses, len(mix))
	}
}

// TestRunLoadRespectsContext: cancelling the run's context fails pending
// requests instead of hanging the workers.
func TestRunLoadRespectsContext(t *testing.T) {
	mix, err := SmallServeMix()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	done := make(chan struct{})
	var res *LoadResult
	go func() {
		defer close(done)
		res, _ = RunLoad(ctx, service.New(service.Options{}), mix, LoadConfig{
			Workers: 4, Requests: 40, AlphaRate: 0.5, Seed: 3,
		})
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled load run did not finish")
	}
	if res.Errors != res.Requests {
		t.Errorf("cancelled run: %d errors out of %d requests, want all", res.Errors, res.Requests)
	}
}

// TestE16ServeLoad pins the headline serving claims: >= 50% cache hit
// rate on the replay mix, backchase runs sublinear in (and exactly the
// shape count of) the request stream, and zero error responses at every
// worker count.
func TestE16ServeLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("E16 replays hundreds of requests")
	}
	tb, err := E16()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tb.Rows {
		if row[2] != "0" {
			t.Errorf("workers=%s: %s error responses", row[0], row[2])
		}
		if row[len(row)-1] != "3" {
			t.Errorf("workers=%s: backchase runs = %s, want 3 (one per shape)", row[0], row[len(row)-1])
		}
	}
	if tb.Metrics["hit_rate"] < 0.5 {
		t.Errorf("workers=1 hit rate %.2f below the promised 0.5", tb.Metrics["hit_rate"])
	}
	if tb.Metrics["backchase_runs"] >= tb.Metrics["cache_hits"] {
		t.Errorf("backchase runs %v not sublinear vs cache hits %v",
			tb.Metrics["backchase_runs"], tb.Metrics["cache_hits"])
	}
}

// TestE17ServeLoad pins the canonicalization claim end to end: under
// order-SHUFFLING alpha-renames, over a mix that includes an asymmetric
// self-join (the raw-name tie-break's failure shape), renamed repeats
// must behave exactly like verbatim repeats — backchase runs equal to
// the distinct-shape count at every worker count and a hit rate
// matching the order-preserving replay.
func TestE17ServeLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("E17 replays hundreds of requests")
	}
	tb, err := E17()
	if err != nil {
		t.Fatal(err)
	}
	mix, err := E17Mix()
	if err != nil {
		t.Fatal(err)
	}
	shapes := len(mix)
	for _, row := range tb.Rows {
		if row[2] != "0" {
			t.Errorf("workers=%s: %s error responses", row[0], row[2])
		}
		if want := fmt.Sprintf("%d", shapes); row[len(row)-1] != want {
			t.Errorf("workers=%s: backchase runs = %s, want %s (one per shape — shuffled renames must coalesce)",
				row[0], row[len(row)-1], want)
		}
	}
	if tb.Metrics["hit_rate"] < 0.95 {
		t.Errorf("workers=1 hit rate %.3f below 0.95: shuffled renames are splitting cache classes", tb.Metrics["hit_rate"])
	}
	if got, want := tb.Metrics["cache_misses"], float64(shapes); got != want {
		t.Errorf("workers=1 misses = %v, want exactly %v (one per shape)", got, want)
	}
}

// TestPercentileDegenerateWindows: the nearest-rank helper must answer —
// not panic or report garbage — on empty windows, single samples and
// out-of-range or NaN quantiles, because a zero-request replay bucket
// (e.g. a mix entry a schedule never drew) produces exactly these
// inputs.
func TestPercentileDegenerateWindows(t *testing.T) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	window := []time.Duration{ms(1), ms(2), ms(3), ms(4)}
	for _, tc := range []struct {
		name   string
		sorted []time.Duration
		p      float64
		want   time.Duration
	}{
		{"empty p50", nil, 0.50, 0},
		{"empty p99", []time.Duration{}, 0.99, 0},
		{"empty NaN", nil, math.NaN(), 0},
		{"single p0", []time.Duration{ms(7)}, 0, ms(7)},
		{"single p50", []time.Duration{ms(7)}, 0.50, ms(7)},
		{"single p99", []time.Duration{ms(7)}, 0.99, ms(7)},
		{"single p1", []time.Duration{ms(7)}, 1, ms(7)},
		{"NaN clamps to min", window, math.NaN(), ms(1)},
		{"negative clamps to min", window, -0.5, ms(1)},
		{"above one clamps to max", window, 1.5, ms(4)},
		{"p25 nearest rank", window, 0.25, ms(1)},
		{"p50 nearest rank", window, 0.50, ms(2)},
		{"p75 nearest rank", window, 0.75, ms(3)},
		{"p99 nearest rank", window, 0.99, ms(4)},
		{"p1 is max", window, 1, ms(4)},
	} {
		if got := percentile(tc.sorted, tc.p); got != tc.want {
			t.Errorf("%s: percentile(%v, %v) = %v, want %v", tc.name, tc.sorted, tc.p, got, tc.want)
		}
	}
}
