package bench

import (
	"context"
	"testing"

	"cnb/internal/service"
)

// TestQueryLoadHarness is the CI query-serving gate: 16 closed-loop
// workers drive the full /query path — plan through the shared cache,
// execute on the streaming engine — against one registered star
// instance, and every response must succeed with consistent execution
// accounting. Run under -race (make serve-load) this doubles as the
// concurrency gate for the instance registry and the per-instance
// counters.
func TestQueryLoadHarness(t *testing.T) {
	sc, err := e19Setup()
	if err != nil {
		t.Fatal(err)
	}
	svc, err := sc.service()
	if err != nil {
		t.Fatal(err)
	}
	requests := 120
	if testing.Short() {
		requests = 48
	}
	res, err := RunQueryLoad(context.Background(), svc, sc.Mix, LoadConfig{
		Workers: 16, Requests: requests, AlphaRate: 0.5, Seed: 23,
	}, "star")
	if err != nil {
		t.Fatalf("query load returned an error response: %v", err)
	}
	if res.Errors != 0 {
		t.Fatalf("%d error responses out of %d requests", res.Errors, res.Requests)
	}
	if res.Evals == 0 || res.Rows == 0 || res.ResultRows == 0 {
		t.Fatalf("empty execution accounting: %+v", res)
	}
	if res.Skipped != 0 {
		t.Errorf("delivery skipped %d candidates on a fully-populated instance", res.Skipped)
	}
	// Every request executed: the per-instance cumulative counters must
	// agree with the harness's own aggregation.
	qc, ok := svc.InstanceCountersFor("star")
	if !ok || qc.Queries != int64(requests) || qc.ExecErrors != 0 {
		t.Fatalf("instance counters: %+v ok=%v, want %d queries", qc, ok, requests)
	}
	if qc.Evals != res.Evals || qc.Rows != res.Rows {
		t.Errorf("instance counters (evals %d, rows %d) disagree with harness (%d, %d)",
			qc.Evals, qc.Rows, res.Evals, res.Rows)
	}
	if got, want := res.Service.BackchaseRuns, int64(len(sc.Mix)); got != want {
		t.Errorf("backchase runs = %d, want exactly %d (one per shape)", got, want)
	}
}

// TestRunQueryLoadDeterministicAtOneWorker: two single-worker replays
// over fresh services and instances produce identical planning AND
// execution counters — the property that lets benchcheck gate E19's
// query_evals/query_rows exactly.
func TestRunQueryLoadDeterministicAtOneWorker(t *testing.T) {
	sc, err := e19Setup()
	if err != nil {
		t.Fatal(err)
	}
	cfg := LoadConfig{Workers: 1, Requests: 40, AlphaRate: 0.5, Seed: 29}
	run := func() *QueryLoadResult {
		t.Helper()
		svc, err := sc.service()
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunQueryLoad(context.Background(), svc, sc.Mix, cfg, "star")
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Evals != b.Evals || a.Rows != b.Rows || a.OutRows != b.OutRows || a.ResultRows != b.ResultRows {
		t.Errorf("single-worker execution diverged: %d/%d/%d/%d vs %d/%d/%d/%d",
			a.Evals, a.Rows, a.OutRows, a.ResultRows, b.Evals, b.Rows, b.OutRows, b.ResultRows)
	}
	if a.Cache.Hits != b.Cache.Hits || a.Service.BackchaseRuns != b.Service.BackchaseRuns {
		t.Errorf("single-worker planning diverged: %+v vs %+v", a.Cache, b.Cache)
	}
}

// TestRunQueryLoadUnknownInstance: a replay against an unregistered name
// fails every request cleanly instead of hanging or panicking.
func TestRunQueryLoadUnknownInstance(t *testing.T) {
	sc, err := e19Setup()
	if err != nil {
		t.Fatal(err)
	}
	svc := service.New(service.Options{Parallelism: 1})
	res, err := RunQueryLoad(context.Background(), svc, sc.Mix, LoadConfig{
		Workers: 4, Requests: 16, Seed: 1,
	}, "nope")
	if err == nil {
		t.Fatal("expected an error for an unregistered instance")
	}
	if res.Errors != res.Requests {
		t.Errorf("errors = %d, want all %d requests", res.Errors, res.Requests)
	}
}

// TestE19QueryLoad pins the end-to-end serving claims: zero error
// responses at every worker count, backchase runs equal to the
// distinct-shape count (execution does not disturb the serving-layer
// invariants), a warm hit rate matching E16's, no skipped candidates on
// the seeded instance, and executed-work totals identical across worker
// counts — per-request work is a pure function of (request, instance),
// so concurrency must not change what gets executed.
func TestE19QueryLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("E19 executes hundreds of requests against a 20k-row instance")
	}
	tb, err := E19()
	if err != nil {
		t.Fatal(err)
	}
	evalsCol := len(tb.Columns) - 3
	var evals string
	for _, row := range tb.Rows {
		if row[2] != "0" {
			t.Errorf("workers=%s: %s error responses", row[0], row[2])
		}
		if row[8] != "2" {
			t.Errorf("workers=%s: backchase runs = %s, want 2 (one per shape)", row[0], row[8])
		}
		if evals == "" {
			evals = row[evalsCol]
		} else if row[evalsCol] != evals {
			t.Errorf("workers=%s: evals %s differ from workers=1's %s — executed plans depend on concurrency",
				row[0], row[evalsCol], evals)
		}
	}
	if tb.Metrics["hit_rate"] < 0.95 {
		t.Errorf("workers=1 hit rate %.3f below 0.95", tb.Metrics["hit_rate"])
	}
	if tb.Metrics["query_exec_skipped"] != 0 {
		t.Errorf("workers=1 skipped %v candidates, want 0", tb.Metrics["query_exec_skipped"])
	}
	if tb.Metrics["query_evals"] <= 0 || tb.Metrics["query_rows"] <= 0 || tb.Metrics["result_rows"] <= 0 {
		t.Errorf("execution totals empty: evals=%v rows=%v result=%v",
			tb.Metrics["query_evals"], tb.Metrics["query_rows"], tb.Metrics["result_rows"])
	}
}
