// Load harness for the serving layer: closed-loop workers replay a mix
// of query shapes against one internal/service.Service, measuring
// throughput, latency percentiles and cache effectiveness. E16 runs it at
// 1/4/16 workers; the CI service-load job runs it under the race
// detector.
package bench

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"cnb/internal/backchase"
	"cnb/internal/core"
	"cnb/internal/service"
	"cnb/internal/workload"
)

// LoadQuery is one shape of the replay mix.
type LoadQuery struct {
	Name string
	Req  service.Request
}

// LoadConfig sizes a load run.
type LoadConfig struct {
	// Workers is the closed-loop client count: each worker issues its
	// next request as soon as the previous one returns.
	Workers int
	// Requests is the total request count across all workers.
	Requests int
	// AlphaRate is the fraction of requests issued as alpha-renamed
	// variants of their shape (a fresh uniform variable-name prefix per
	// request — an order-preserving rename, the kind client-side query
	// generators emit). The serving layer keys flights and cache entries
	// by the canonical signature, which renames normalize away, so these
	// must coalesce and hit exactly like verbatim repeats.
	AlphaRate float64
	// AlphaShuffle hardens the alpha renames: instead of an
	// order-preserving prefix rename, each renamed request draws a random
	// permutation of the variable-name order (reversals included), the
	// adversarial case for canonicalization — a tie-break on raw variable
	// names canonicalizes such variants apart. With a truly
	// renaming-invariant canonical form (core.Query.CanonicalSignature)
	// shuffled renames must coalesce and hit exactly like verbatim
	// repeats; E17 gates exactly that.
	AlphaShuffle bool
	// Seed makes the request schedule (shape choice and renames)
	// deterministic; at Workers=1 the service counters are then exact,
	// which is what lets cmd/benchcheck gate them.
	Seed int64
}

// LoadResult is the outcome of one load run.
type LoadResult struct {
	Requests   int
	Errors     int
	Wall       time.Duration
	Throughput float64 // requests per second
	P50, P99   time.Duration
	// Service and Cache snapshot the service's counters after the run
	// (the service must be fresh for them to describe this run alone).
	Service service.Counters
	Cache   backchase.CacheCounters
	// HitRate is Cache.Hits / (Cache.Hits + Cache.Misses).
	HitRate float64
}

// ServeMix returns the E16 replay mix: the three E13 star/snowflake
// scenarios, optimized against their own dependency sets. No statistics
// are installed — the exhaustive backchase is deterministic and its cache
// entries are statistics-independent, so the measured hit rates isolate
// the serving layer from cost-model variance.
func ServeMix() ([]LoadQuery, error) {
	var mix []LoadQuery
	for _, wl := range e13Workloads() {
		s, err := workload.NewStar(wl.Cfg)
		if err != nil {
			return nil, err
		}
		mix = append(mix, LoadQuery{Name: wl.Name, Req: service.Request{Query: s.Q, Deps: s.Deps}})
	}
	return mix, nil
}

// SmallServeMix returns a cheaper mix (single-dimension star and
// snowflake plus the ProjDept running example) for race-detector and
// -short runs, where the full E13 lattices would dominate the budget.
func SmallServeMix() ([]LoadQuery, error) {
	var mix []LoadQuery
	small := workload.StarConfig{
		Dims: 1, Views: 1, FactIndexes: 1, DimIndex: true,
		Select: true, SelectA: 3, FKConstraints: true,
	}
	snow := small
	snow.Snowflake = true
	for _, c := range []struct {
		name string
		cfg  workload.StarConfig
	}{{"star d=1 v=1", small}, {"snowflake d=1 v=1", snow}} {
		s, err := workload.NewStar(c.cfg)
		if err != nil {
			return nil, err
		}
		mix = append(mix, LoadQuery{Name: c.name, Req: service.Request{Query: s.Q, Deps: s.Deps}})
	}
	pd, err := workload.NewProjDept()
	if err != nil {
		return nil, err
	}
	mix = append(mix, LoadQuery{Name: "projdept", Req: service.Request{
		Query:         pd.Q,
		Deps:          pd.AllDeps(),
		PhysicalNames: pd.Physical.NameSet(),
	}})
	return mix, nil
}

// buildSchedule renders the deterministic request sequence: request i
// picks a shape and, at the alpha rate, an alpha-renamed copy with
// request-unique variable names (order-preserving by default,
// order-shuffling when cfg.AlphaShuffle is set).
func buildSchedule(mix []LoadQuery, cfg LoadConfig) []service.Request {
	rng := rand.New(rand.NewSource(cfg.Seed))
	schedule := make([]service.Request, cfg.Requests)
	for i := range schedule {
		shape := mix[rng.Intn(len(mix))]
		req := shape.Req
		if rng.Float64() < cfg.AlphaRate {
			prefix := fmt.Sprintf("ld%d_", i)
			if cfg.AlphaShuffle {
				req.Query = shuffleRename(req.Query, prefix, rng)
			} else {
				req.Query = req.Query.RenameVars(func(v string) string { return prefix + v })
			}
		}
		schedule[i] = req
	}
	return schedule
}

// shuffleRename alpha-renames the query so that the lexicographic order
// of its variable names is a random permutation of the original order:
// sorted original variables v_0 < v_1 < ... map to zero-padded fresh
// names whose sorted order realizes perm. The identity permutation is
// explicitly skipped (when more than one variable exists), so every
// shuffled rename genuinely reorders at least one name pair — the case a
// raw-name canonicalization tie-break gets wrong.
func shuffleRename(q *core.Query, prefix string, rng *rand.Rand) *core.Query {
	vars := make([]string, 0, len(q.Bindings))
	for _, b := range q.Bindings {
		vars = append(vars, b.Var)
	}
	sort.Strings(vars)
	perm := rng.Perm(len(vars))
	if len(vars) > 1 {
		for identity(perm) {
			perm = rng.Perm(len(vars))
		}
	}
	names := make(map[string]string, len(vars))
	for j, v := range vars {
		names[v] = fmt.Sprintf("%s%04d", prefix, perm[j])
	}
	return q.RenameVars(func(v string) string { return names[v] })
}

func identity(perm []int) bool {
	for i, p := range perm {
		if i != p {
			return false
		}
	}
	return true
}

// RunLoad replays the mix against the service with cfg.Workers closed-loop
// clients and returns the measured result. Any request error aborts
// nothing — the remaining requests still run, so one failure cannot mask
// others — but the first error is returned alongside the result, and
// LoadResult.Errors counts them all.
func RunLoad(ctx context.Context, svc *service.Service, mix []LoadQuery, cfg LoadConfig) (*LoadResult, error) {
	if len(mix) == 0 {
		return nil, fmt.Errorf("loadgen: empty mix")
	}
	if cfg.Workers < 1 || cfg.Requests < 1 {
		return nil, fmt.Errorf("loadgen: need at least 1 worker and 1 request")
	}
	schedule := buildSchedule(mix, cfg)
	latencies := make([]time.Duration, len(schedule))
	var (
		next     atomic.Int64
		errCount atomic.Int64
		errMu    sync.Mutex
		firstErr error
		wg       sync.WaitGroup
	)
	start := time.Now()
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(schedule) {
					return
				}
				t0 := time.Now()
				_, err := svc.Optimize(ctx, schedule[i])
				latencies[i] = time.Since(t0)
				if err != nil {
					errCount.Add(1)
					errMu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("request %d: %w", i, err)
					}
					errMu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)

	sorted := append([]time.Duration(nil), latencies...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
	res := &LoadResult{
		Requests:   len(schedule),
		Errors:     int(errCount.Load()),
		Wall:       wall,
		Throughput: float64(len(schedule)) / wall.Seconds(),
		P50:        percentile(sorted, 0.50),
		P99:        percentile(sorted, 0.99),
		Service:    svc.Counters(),
		Cache:      svc.CacheCounters(),
	}
	if total := res.Cache.Hits + res.Cache.Misses; total > 0 {
		res.HitRate = float64(res.Cache.Hits) / float64(total)
	}
	return res, firstErr
}

// percentile reads the p-quantile (0..1) of an ascending-sorted slice
// using the nearest-rank method: rank = ceil(p * n). Degenerate windows
// are answered, never panicked on: an empty window reports 0 (a
// zero-request replay bucket has no latency, not a garbage one), a
// single-sample window reports its sample for every p, and p outside
// [0, 1] — including NaN, whose int conversion is platform-defined —
// clamps to the window's min/max rather than indexing out of range.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	if math.IsNaN(p) || p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	idx := int(math.Ceil(p*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// E16 measures the serving layer under concurrent load: closed-loop
// workers replay the star/snowflake mix (half the requests alpha-renamed)
// against a fresh Service per worker count. Headline expectations (gated
// by TestE16ServeLoad and, for the exact counters, cmd/benchcheck):
//
//   - cache hit rate >= 50% on every worker count (repeated and
//     alpha-renamed shapes are served from the sharded plan cache);
//   - total backchase runs stay at the number of distinct shapes —
//     sublinear in the request count — because singleflight coalescing
//     and the cache make every later request O(chase + lookup);
//   - zero error responses.
//
// The workers=1 pass is fully deterministic (seeded schedule, serial
// service), so its cache_hits / cache_misses / backchase_runs metrics are
// gated exactly by the bench-regression pipeline; wall-clock derived
// numbers (throughput, p50/p99) are informational — CI runners are noisy.
func E16() (*Table, error) {
	mix, err := ServeMix()
	if err != nil {
		return nil, err
	}
	return serveLoadTable("E16", "Optimizer-as-a-service: load replay at 1/4/16 workers",
		mix, LoadConfig{AlphaRate: 0.5, Seed: 16})
}

// E17Mix extends the E16 mix with an asymmetric self-join over the
// IndexOnly relational scenario:
//
//	select struct(C1: r.C, C2: s.C) from R r, R s where r.A = s.B
//
// Two bindings range over the same relation R, so canonicalizing the
// binding order must break a tie between alpha-equivalent ranges — the
// exact spot where a raw-variable-name tie-break canonicalizes
// order-shuffled renames apart (and where swapping the bindings is NOT an
// automorphism: the condition and output tell r and s apart). The E16
// star/snowflake shapes never reach that tie-break (every binding ranges
// over a distinct schema name or a distinct dependent path), which is why
// the seed defect was invisible to E16 even under shuffled renames.
func E17Mix() ([]LoadQuery, error) {
	mix, err := ServeMix()
	if err != nil {
		return nil, err
	}
	io, err := workload.NewIndexOnly(5, 9)
	if err != nil {
		return nil, err
	}
	q := &core.Query{
		Out: core.Struct(
			core.SF("C1", core.Prj(core.V("r"), "C")),
			core.SF("C2", core.Prj(core.V("s"), "C")),
		),
		Bindings: []core.Binding{
			{Var: "r", Range: core.Name("R")},
			{Var: "s", Range: core.Name("R")},
		},
		Conds: []core.Cond{{L: core.Prj(core.V("r"), "A"), R: core.Prj(core.V("s"), "B")}},
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	mix = append(mix, LoadQuery{Name: "selfjoin R", Req: service.Request{Query: q, Deps: io.Deps}})
	return mix, nil
}

// E17 is E16's adversarial twin: every request is an order-shuffling
// alpha-rename of its shape (LoadConfig.AlphaShuffle), the rename class
// the seed code's raw-name canonicalization tie-break split apart. With
// the renaming-invariant canonical form the shuffled replay must behave
// exactly like the order-preserving one: hit rate equal to a verbatim
// repeat of the mix, backchase runs equal to the distinct-shape count.
// The workers=1 counters are gated exactly by cmd/benchcheck, so any
// future canonicalization regression that is invisible to
// order-preserving renames fails CI here.
func E17() (*Table, error) {
	mix, err := E17Mix()
	if err != nil {
		return nil, err
	}
	// AlphaRate 0.5 mirrors E16: the verbatim half of the replay anchors
	// the original binding/name order, so a canonicalization that depends
	// on raw names must split the renamed half of the self-join shape
	// into a second class (a measured extra backchase run + misses),
	// while a renaming-invariant form keeps hit rate identical to E16's
	// order-preserving replay. At rate 1.0 the two-variable self-join
	// would only ever be seen reversed — one class, no split, no gate.
	return serveLoadTable("E17", "Serving under order-shuffling alpha-renames (canonicalization gate)",
		mix, LoadConfig{AlphaRate: 0.5, AlphaShuffle: true, Seed: 17})
}

// serveLoadTable runs the shared E16/E17 load replay: the mix against a
// fresh Service per worker count, with the alpha-rename policy taken from
// cfg (AlphaRate, AlphaShuffle, Seed).
func serveLoadTable(id, title string, mix []LoadQuery, cfg LoadConfig) (*Table, error) {
	tb := &Table{
		ID:      id,
		Title:   title,
		Columns: []string{"workers", "requests", "errors", "wall", "req/s", "p50", "p99", "hits", "misses", "hit rate", "coalesced", "backchase runs"},
		Metrics: map[string]float64{},
	}
	const requests = 160
	cfg.Requests = requests
	for _, workers := range []int{1, 4, 16} {
		// MinimalOnly is the serving configuration: the backchase (and
		// hence the cache entry and every gated counter) is identical,
		// but a cache-hit request skips re-ranking hundreds of explored
		// lattice states it will never execute — the difference between
		// ~50ms and ~1ms warm latency on this mix.
		svc := service.New(service.Options{Parallelism: Parallelism, MinimalOnly: true})
		cfg.Workers = workers
		res, err := RunLoad(context.Background(), svc, mix, cfg)
		if err != nil {
			return nil, fmt.Errorf("%s workers=%d: %w", id, workers, err)
		}
		tb.Rows = append(tb.Rows, []string{
			fmt.Sprintf("%d", workers),
			fmt.Sprintf("%d", res.Requests),
			fmt.Sprintf("%d", res.Errors),
			res.Wall.Round(time.Millisecond).String(),
			fmt.Sprintf("%.1f", res.Throughput),
			res.P50.Round(time.Microsecond).String(),
			res.P99.Round(time.Millisecond).String(),
			fmt.Sprintf("%d", res.Cache.Hits),
			fmt.Sprintf("%d", res.Cache.Misses),
			fmt.Sprintf("%.2f", res.HitRate),
			fmt.Sprintf("%d", res.Service.Coalesced),
			fmt.Sprintf("%d", res.Service.BackchaseRuns),
		})
		if workers == 1 {
			// Deterministic pass: gated exactly by cmd/benchcheck.
			tb.Metrics["cache_hits"] = float64(res.Cache.Hits)
			tb.Metrics["cache_misses"] = float64(res.Cache.Misses)
			tb.Metrics["backchase_runs"] = float64(res.Service.BackchaseRuns)
			tb.Metrics["hit_rate"] = res.HitRate
		}
		tb.Metrics[fmt.Sprintf("throughput_w%d", workers)] = res.Throughput
		tb.Metrics[fmt.Sprintf("p99_w%d_ms", workers)] = float64(res.P99.Milliseconds())
	}
	renames := "order-preserving"
	if cfg.AlphaShuffle {
		renames = "order-shuffling"
	}
	tb.Notes = append(tb.Notes,
		fmt.Sprintf("mix: %d star/snowflake shapes, %d requests per worker count, %s alpha-rename rate %g, seed %d, MinimalOnly serving", len(mix), requests, renames, cfg.AlphaRate, cfg.Seed),
		"workers=1 counters are deterministic and gated exactly (cache_hits, cache_misses, backchase_runs); wall-clock numbers are informational",
		"backchase runs == distinct shapes: every other request is served by the plan cache or coalesced onto an in-progress flight")
	return tb, nil
}
