// Load harness for the serving layer: closed-loop workers replay a mix
// of query shapes against one internal/service.Service, measuring
// throughput, latency percentiles and cache effectiveness. E16 runs it at
// 1/4/16 workers; the CI service-load job runs it under the race
// detector.
package bench

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"cnb/internal/backchase"
	"cnb/internal/service"
	"cnb/internal/workload"
)

// LoadQuery is one shape of the replay mix.
type LoadQuery struct {
	Name string
	Req  service.Request
}

// LoadConfig sizes a load run.
type LoadConfig struct {
	// Workers is the closed-loop client count: each worker issues its
	// next request as soon as the previous one returns.
	Workers int
	// Requests is the total request count across all workers.
	Requests int
	// AlphaRate is the fraction of requests issued as alpha-renamed
	// variants of their shape (a fresh uniform variable-name prefix per
	// request — an order-preserving rename, the kind client-side query
	// generators emit). The serving layer keys flights and cache entries
	// by the canonical signature, which such renames normalize away, so
	// these must coalesce and hit exactly like verbatim repeats.
	AlphaRate float64
	// Seed makes the request schedule (shape choice and renames)
	// deterministic; at Workers=1 the service counters are then exact,
	// which is what lets cmd/benchcheck gate them.
	Seed int64
}

// LoadResult is the outcome of one load run.
type LoadResult struct {
	Requests   int
	Errors     int
	Wall       time.Duration
	Throughput float64 // requests per second
	P50, P99   time.Duration
	// Service and Cache snapshot the service's counters after the run
	// (the service must be fresh for them to describe this run alone).
	Service service.Counters
	Cache   backchase.CacheCounters
	// HitRate is Cache.Hits / (Cache.Hits + Cache.Misses).
	HitRate float64
}

// ServeMix returns the E16 replay mix: the three E13 star/snowflake
// scenarios, optimized against their own dependency sets. No statistics
// are installed — the exhaustive backchase is deterministic and its cache
// entries are statistics-independent, so the measured hit rates isolate
// the serving layer from cost-model variance.
func ServeMix() ([]LoadQuery, error) {
	var mix []LoadQuery
	for _, wl := range e13Workloads() {
		s, err := workload.NewStar(wl.Cfg)
		if err != nil {
			return nil, err
		}
		mix = append(mix, LoadQuery{Name: wl.Name, Req: service.Request{Query: s.Q, Deps: s.Deps}})
	}
	return mix, nil
}

// SmallServeMix returns a cheaper mix (single-dimension star and
// snowflake plus the ProjDept running example) for race-detector and
// -short runs, where the full E13 lattices would dominate the budget.
func SmallServeMix() ([]LoadQuery, error) {
	var mix []LoadQuery
	small := workload.StarConfig{
		Dims: 1, Views: 1, FactIndexes: 1, DimIndex: true,
		Select: true, SelectA: 3, FKConstraints: true,
	}
	snow := small
	snow.Snowflake = true
	for _, c := range []struct {
		name string
		cfg  workload.StarConfig
	}{{"star d=1 v=1", small}, {"snowflake d=1 v=1", snow}} {
		s, err := workload.NewStar(c.cfg)
		if err != nil {
			return nil, err
		}
		mix = append(mix, LoadQuery{Name: c.name, Req: service.Request{Query: s.Q, Deps: s.Deps}})
	}
	pd, err := workload.NewProjDept()
	if err != nil {
		return nil, err
	}
	mix = append(mix, LoadQuery{Name: "projdept", Req: service.Request{
		Query:         pd.Q,
		Deps:          pd.AllDeps(),
		PhysicalNames: pd.Physical.NameSet(),
	}})
	return mix, nil
}

// buildSchedule renders the deterministic request sequence: request i
// picks a shape and, at the alpha rate, an alpha-renamed copy with
// request-unique variable names.
func buildSchedule(mix []LoadQuery, cfg LoadConfig) []service.Request {
	rng := rand.New(rand.NewSource(cfg.Seed))
	schedule := make([]service.Request, cfg.Requests)
	for i := range schedule {
		shape := mix[rng.Intn(len(mix))]
		req := shape.Req
		if rng.Float64() < cfg.AlphaRate {
			prefix := fmt.Sprintf("ld%d_", i)
			req.Query = req.Query.RenameVars(func(v string) string { return prefix + v })
		}
		schedule[i] = req
	}
	return schedule
}

// RunLoad replays the mix against the service with cfg.Workers closed-loop
// clients and returns the measured result. Any request error aborts
// nothing — the remaining requests still run, so one failure cannot mask
// others — but the first error is returned alongside the result, and
// LoadResult.Errors counts them all.
func RunLoad(ctx context.Context, svc *service.Service, mix []LoadQuery, cfg LoadConfig) (*LoadResult, error) {
	if len(mix) == 0 {
		return nil, fmt.Errorf("loadgen: empty mix")
	}
	if cfg.Workers < 1 || cfg.Requests < 1 {
		return nil, fmt.Errorf("loadgen: need at least 1 worker and 1 request")
	}
	schedule := buildSchedule(mix, cfg)
	latencies := make([]time.Duration, len(schedule))
	var (
		next     atomic.Int64
		errCount atomic.Int64
		errMu    sync.Mutex
		firstErr error
		wg       sync.WaitGroup
	)
	start := time.Now()
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(schedule) {
					return
				}
				t0 := time.Now()
				_, err := svc.Optimize(ctx, schedule[i])
				latencies[i] = time.Since(t0)
				if err != nil {
					errCount.Add(1)
					errMu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("request %d: %w", i, err)
					}
					errMu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)

	sorted := append([]time.Duration(nil), latencies...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
	res := &LoadResult{
		Requests:   len(schedule),
		Errors:     int(errCount.Load()),
		Wall:       wall,
		Throughput: float64(len(schedule)) / wall.Seconds(),
		P50:        percentile(sorted, 0.50),
		P99:        percentile(sorted, 0.99),
		Service:    svc.Counters(),
		Cache:      svc.CacheCounters(),
	}
	if total := res.Cache.Hits + res.Cache.Misses; total > 0 {
		res.HitRate = float64(res.Cache.Hits) / float64(total)
	}
	return res, firstErr
}

// percentile reads the p-quantile (0..1) of an ascending-sorted slice
// using the nearest-rank method: rank = ceil(p * n).
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(p*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// E16 measures the serving layer under concurrent load: closed-loop
// workers replay the star/snowflake mix (half the requests alpha-renamed)
// against a fresh Service per worker count. Headline expectations (gated
// by TestE16ServeLoad and, for the exact counters, cmd/benchcheck):
//
//   - cache hit rate >= 50% on every worker count (repeated and
//     alpha-renamed shapes are served from the sharded plan cache);
//   - total backchase runs stay at the number of distinct shapes —
//     sublinear in the request count — because singleflight coalescing
//     and the cache make every later request O(chase + lookup);
//   - zero error responses.
//
// The workers=1 pass is fully deterministic (seeded schedule, serial
// service), so its cache_hits / cache_misses / backchase_runs metrics are
// gated exactly by the bench-regression pipeline; wall-clock derived
// numbers (throughput, p50/p99) are informational — CI runners are noisy.
func E16() (*Table, error) {
	mix, err := ServeMix()
	if err != nil {
		return nil, err
	}
	tb := &Table{
		ID:      "E16",
		Title:   "Optimizer-as-a-service: load replay at 1/4/16 workers",
		Columns: []string{"workers", "requests", "errors", "wall", "req/s", "p50", "p99", "hits", "misses", "hit rate", "coalesced", "backchase runs"},
		Metrics: map[string]float64{},
	}
	const requests = 160
	for _, workers := range []int{1, 4, 16} {
		// MinimalOnly is the serving configuration: the backchase (and
		// hence the cache entry and every gated counter) is identical,
		// but a cache-hit request skips re-ranking hundreds of explored
		// lattice states it will never execute — the difference between
		// ~50ms and ~1ms warm latency on this mix.
		svc := service.New(service.Options{Parallelism: Parallelism, MinimalOnly: true})
		res, err := RunLoad(context.Background(), svc, mix, LoadConfig{
			Workers:   workers,
			Requests:  requests,
			AlphaRate: 0.5,
			Seed:      16,
		})
		if err != nil {
			return nil, fmt.Errorf("E16 workers=%d: %w", workers, err)
		}
		tb.Rows = append(tb.Rows, []string{
			fmt.Sprintf("%d", workers),
			fmt.Sprintf("%d", res.Requests),
			fmt.Sprintf("%d", res.Errors),
			res.Wall.Round(time.Millisecond).String(),
			fmt.Sprintf("%.1f", res.Throughput),
			res.P50.Round(time.Microsecond).String(),
			res.P99.Round(time.Millisecond).String(),
			fmt.Sprintf("%d", res.Cache.Hits),
			fmt.Sprintf("%d", res.Cache.Misses),
			fmt.Sprintf("%.2f", res.HitRate),
			fmt.Sprintf("%d", res.Service.Coalesced),
			fmt.Sprintf("%d", res.Service.BackchaseRuns),
		})
		if workers == 1 {
			// Deterministic pass: gated exactly by cmd/benchcheck.
			tb.Metrics["cache_hits"] = float64(res.Cache.Hits)
			tb.Metrics["cache_misses"] = float64(res.Cache.Misses)
			tb.Metrics["backchase_runs"] = float64(res.Service.BackchaseRuns)
			tb.Metrics["hit_rate"] = res.HitRate
		}
		tb.Metrics[fmt.Sprintf("throughput_w%d", workers)] = res.Throughput
		tb.Metrics[fmt.Sprintf("p99_w%d_ms", workers)] = float64(res.P99.Milliseconds())
	}
	tb.Notes = append(tb.Notes,
		fmt.Sprintf("mix: %d star/snowflake shapes, %d requests per worker count, alpha-rename rate 0.5, seed 16, MinimalOnly serving", len(mix), requests),
		"workers=1 counters are deterministic and gated exactly (cache_hits, cache_misses, backchase_runs); wall-clock numbers are informational",
		"backchase runs == distinct shapes: every other request is served by the plan cache or coalesced onto an in-progress flight")
	return tb, nil
}
