// E20: two-tier cold serving — the greedy instant tier under a plan
// latency budget, the detached backchase upgrade, and the proof that
// both tiers answer correctly.
package bench

import (
	"context"
	"fmt"
	"time"

	"cnb/internal/engine"
	"cnb/internal/service"
	"cnb/internal/workload"
)

// e20Shape is one cold workload shape of the replay: the star (its query
// is the request), a small seeded instance for the differential check,
// and the per-shape outcomes filled in as the phases run.
type e20Shape struct {
	Name string
	Star *workload.Star
	Req  service.Request

	syncLatency   time.Duration
	syncCost      float64
	tieredLatency time.Duration
	upgradedCost  float64
	checkRows     int
}

// e20Budget bounds the adaptive plan-latency budget: never below the
// warm-path latency (a cache-hit flight is ~1ms — a budget under it
// would push even warm shapes to the greedy tier), never above 200ms
// (past that the "instant" tier isn't).
const (
	e20MinBudget = 2 * time.Millisecond
	e20MaxBudget = 200 * time.Millisecond
)

// e20Gen is the differential-check instance size: small enough that the
// row engine evaluates the ORIGINAL query (no helpful access paths, so
// nested scans) in well under a second per shape, fixed seed so the
// greedy_check_rows gate is exact.
var e20Gen = workload.StarGenOptions{NumFact: 1500, NumDim: 300, NumSub: 200, DomA: 50, Seed: 2025}

// e20Shapes builds the E13 star/snowflake family as cold request shapes
// — the same shapes whose synchronous cold backchase E13 times at
// hundreds of milliseconds, i.e. exactly the cold-shape p99 problem the
// two-tier path exists for.
func e20Shapes() ([]*e20Shape, error) {
	var shapes []*e20Shape
	for _, wl := range e13Workloads() {
		s, err := workload.NewStar(wl.Cfg)
		if err != nil {
			return nil, err
		}
		shapes = append(shapes, &e20Shape{
			Name: wl.Name,
			Star: s,
			Req:  service.Request{Query: s.Q, Deps: s.Deps},
		})
	}
	return shapes, nil
}

// e20Service builds a fresh E16-configuration service (MinimalOnly,
// exhaustive backchase, experiment parallelism) with the given latency
// budget (0 = synchronous).
func e20Service(budget time.Duration) *service.Service {
	return service.New(service.Options{
		Parallelism:    Parallelism,
		MinimalOnly:    true,
		MaxPlanLatency: budget,
	})
}

// E20 measures cold-shape serving with and without the two-tier path and
// proves the tiering contract end to end:
//
//  1. synchronous pass — every shape cold on a fresh synchronous
//     service; per-shape plan latency and cheapest cost are the
//     baseline. The plan-latency budget is then set adaptively to
//     sync_p99/20 (clamped to [2ms, 200ms]): far under the cold flight,
//     far over the warm path, and machine-speed independent.
//  2. tiered pass — every shape cold on a fresh service with the budget:
//     each response MUST come from the greedy tier, and each greedy plan
//     is differentially checked through the full /query execution path
//     (streaming engine) against the row engine's evaluation of the
//     original query on a seeded instance — row-identical or the
//     experiment fails.
//  3. upgrade pass — after the detached flights land (counted by the
//     exact-gated upgraded_flights), every shape is re-requested: the
//     response must be a backchase-tier cache hit marked Upgraded with
//     exactly the synchronous pass's cheapest cost.
//
// Hard failure conditions: any phase-2 response not served by the greedy
// tier, any differential mismatch, upgrades not landing, any phase-3
// response missing the cache or the synchronous cost, or cold-shape p99
// improving by less than 10x (the adaptive budget makes the expected
// ratio ~20x by construction, so 10x is a robust floor, not a wall-clock
// flake gate).
//
// Gated metrics: greedy_served / upgraded_flights (exact counters),
// greedy_check_rows (exact — the differential result cardinality),
// cheapest_cost_sync_total / cheapest_cost_upgraded_total (exact — and
// equal to each other by the phase-3 assertion). cold_sync_p99_ms,
// cold_tiered_p99_ms and cold_speedup are informational wall clocks.
func E20() (*Table, error) {
	shapes, err := e20Shapes()
	if err != nil {
		return nil, err
	}
	ctx := context.Background()

	// Phase 1: synchronous cold pass.
	syncSvc := e20Service(0)
	syncLat := make([]time.Duration, 0, len(shapes))
	var syncCostTotal float64
	for _, sh := range shapes {
		t0 := time.Now()
		resp, err := syncSvc.Optimize(ctx, sh.Req)
		sh.syncLatency = time.Since(t0)
		if err != nil {
			return nil, fmt.Errorf("E20 %s: sync: %w", sh.Name, err)
		}
		if resp.Tier != service.TierBackchase || resp.Result.Best == nil {
			return nil, fmt.Errorf("E20 %s: sync response tier=%q", sh.Name, resp.Tier)
		}
		sh.syncCost = resp.Result.Best.Cost
		syncCostTotal += sh.syncCost
		syncLat = append(syncLat, sh.syncLatency)
	}
	sortDurations(syncLat)
	syncP99 := percentile(syncLat, 0.99)

	budget := syncP99 / 20
	if budget < e20MinBudget {
		budget = e20MinBudget
	}
	if budget > e20MaxBudget {
		budget = e20MaxBudget
	}

	// Phase 2: tiered cold pass on a fresh service.
	svc := e20Service(budget)
	tierLat := make([]time.Duration, 0, len(shapes))
	for _, sh := range shapes {
		t0 := time.Now()
		resp, err := svc.Optimize(ctx, sh.Req)
		sh.tieredLatency = time.Since(t0)
		if err != nil {
			return nil, fmt.Errorf("E20 %s: tiered: %w", sh.Name, err)
		}
		if resp.Tier != service.TierGreedy {
			return nil, fmt.Errorf("E20 %s: cold tiered response tier=%q, want greedy (budget %v, flight landed in %v?)",
				sh.Name, resp.Tier, budget, sh.tieredLatency)
		}
		tierLat = append(tierLat, sh.tieredLatency)
	}
	sortDurations(tierLat)
	tieredP99 := percentile(tierLat, 0.99)

	// Differential check, on a scratch tiered service where every request
	// is cold and therefore guaranteed greedy-tier: serve each shape
	// through the full /query path (greedy plan on the streaming engine)
	// and compare against the row engine's evaluation of the original
	// query on the same seeded instance.
	scratch := e20Service(budget)
	var checkRows int
	for i, sh := range shapes {
		inst := fmt.Sprintf("star%d", i)
		if _, err := scratch.InstallInstance(inst, sh.Star.Generate(e20Gen)); err != nil {
			return nil, fmt.Errorf("E20 %s: install: %w", sh.Name, err)
		}
		got, err := scratch.Query(ctx, service.QueryRequest{Request: sh.Req, Instance: inst, MaxRows: -1})
		if err != nil {
			return nil, fmt.Errorf("E20 %s: query: %w", sh.Name, err)
		}
		if got.Optimize == nil || got.Optimize.Tier != service.TierGreedy {
			return nil, fmt.Errorf("E20 %s: differential request was not served by the greedy tier", sh.Name)
		}
		want, err := engine.Execute(sh.Req.Query, sh.Star.Generate(e20Gen))
		if err != nil {
			return nil, fmt.Errorf("E20 %s: row engine: %w", sh.Name, err)
		}
		if got.ResultRows != want.Len() || len(got.Rows) != want.Len() {
			return nil, fmt.Errorf("E20 %s: served %d rows, row engine %d", sh.Name, got.ResultRows, want.Len())
		}
		for _, v := range got.Rows {
			if !want.Contains(v) {
				return nil, fmt.Errorf("E20 %s: served row %s not in row-engine result", sh.Name, v)
			}
		}
		sh.checkRows = want.Len()
		checkRows += sh.checkRows
	}

	// Wait for every detached flight to land and upgrade its entry, then
	// snapshot the gated counters BEFORE phase 3: phase-3 retries (a warm
	// flight exceeding the budget under heavy instrumentation) may serve
	// extra greedy responses, which must not perturb the exact gates.
	deadline := time.Now().Add(2 * time.Minute)
	for svc.Counters().Upgraded < int64(len(shapes)) && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	counters := svc.Counters()
	if counters.Upgraded < int64(len(shapes)) {
		return nil, fmt.Errorf("E20: only %d/%d detached flights upgraded within deadline", counters.Upgraded, len(shapes))
	}

	// Phase 3: upgraded entries serve the synchronous cheapest cost.
	var upgradedCostTotal float64
	for _, sh := range shapes {
		var resp *service.Response
		for attempt := 0; ; attempt++ {
			resp, err = svc.Optimize(ctx, sh.Req)
			if err != nil {
				return nil, fmt.Errorf("E20 %s: upgraded: %w", sh.Name, err)
			}
			if resp.Tier == service.TierBackchase {
				break
			}
			if attempt >= 10 {
				return nil, fmt.Errorf("E20 %s: warm request still greedy-tier after %d attempts", sh.Name, attempt+1)
			}
		}
		if !resp.CacheHit || !resp.Upgraded {
			return nil, fmt.Errorf("E20 %s: upgraded response cacheHit=%v upgraded=%v, want true/true", sh.Name, resp.CacheHit, resp.Upgraded)
		}
		if resp.Result.Best == nil || resp.Result.Best.Cost != sh.syncCost {
			return nil, fmt.Errorf("E20 %s: upgraded cost %v != synchronous cheapest %v", sh.Name, resp.Result.Best, sh.syncCost)
		}
		sh.upgradedCost = resp.Result.Best.Cost
		upgradedCostTotal += sh.upgradedCost
	}

	speedup := float64(syncP99) / float64(tieredP99)
	if speedup < 10 {
		return nil, fmt.Errorf("E20: cold-shape p99 speedup %.1fx below the 10x floor (sync %v, tiered %v, budget %v)",
			speedup, syncP99, tieredP99, budget)
	}

	tb := &Table{
		ID:      "E20",
		Title:   "Two-tier cold serving: greedy instant tier + detached backchase upgrade",
		Columns: []string{"shape", "sync cold", "tiered cold", "check rows", "sync cost", "upgraded cost"},
		Metrics: map[string]float64{
			"shapes":                       float64(len(shapes)),
			"greedy_served":                float64(counters.GreedyServed),
			"upgraded_flights":             float64(counters.Upgraded),
			"greedy_check_rows":            float64(checkRows),
			"cheapest_cost_sync_total":     syncCostTotal,
			"cheapest_cost_upgraded_total": upgradedCostTotal,
			"cold_sync_p99_ms":             float64(syncP99) / float64(time.Millisecond),
			"cold_tiered_p99_ms":           float64(tieredP99) / float64(time.Millisecond),
			"cold_speedup":                 speedup,
		},
		Notes: []string{
			fmt.Sprintf("adaptive budget %v (sync p99 / 20, clamped to [%v, %v])", budget.Round(time.Millisecond), e20MinBudget, e20MaxBudget),
			fmt.Sprintf("cold p99 %v -> %v (%.0fx) with every greedy plan row-identical to the row engine", syncP99.Round(time.Millisecond), tieredP99.Round(time.Millisecond), speedup),
		},
	}
	for _, sh := range shapes {
		tb.Rows = append(tb.Rows, []string{
			sh.Name,
			sh.syncLatency.Round(time.Millisecond).String(),
			sh.tieredLatency.Round(time.Millisecond).String(),
			fmt.Sprintf("%d", sh.checkRows),
			fmt.Sprintf("%.1f", sh.syncCost),
			fmt.Sprintf("%.1f", sh.upgradedCost),
		})
	}
	return tb, nil
}

// sortDurations sorts in place ascending (the shape percentile expects).
func sortDurations(d []time.Duration) {
	for i := 1; i < len(d); i++ {
		for j := i; j > 0 && d[j] < d[j-1]; j-- {
			d[j], d[j-1] = d[j-1], d[j]
		}
	}
}
