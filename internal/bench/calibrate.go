// Measured-cost calibration: execute candidate plans through the
// pull-based engine operators and put the measured work profile next to
// the cost model's estimate. This closes the loop the cost-bounded
// backchase depends on — pruning is only as trustworthy as the estimates
// backing the bound, so E14 and the randomized calibration suite check
// that (a) pruning never discards the measured-cheapest plan and (b) the
// estimated-cost ordering correlates with measured execution.
package bench

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"cnb/internal/backchase"
	"cnb/internal/core"
	"cnb/internal/cost"
	"cnb/internal/engine"
	"cnb/internal/eval"
	"cnb/internal/instance"
	"cnb/internal/planrewrite"
)

// costsAgree compares two plan costs under the single 1e-9 relative
// tolerance used by every E13/E14 gate and tie test, so a future
// tolerance change cannot drift between gates.
func costsAgree(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*math.Max(1, math.Max(a, b))
}

// CandidatePool returns the deduplicated candidate plans of a backchase
// result: the normal forms plus every explored state. This is the pool
// the optimizer ranks (optimizer.Options.MinimalOnly unset) — under
// cost-bound pruning the cheapest candidate can be an explored
// intermediate state whose only successors were pruned as more expensive,
// so calibration must measure the whole pool, not Plans alone.
func CandidatePool(res *backchase.Result) []*core.Query {
	seen := map[string]bool{}
	var pool []*core.Query
	for _, qs := range [][]*core.Query{res.Plans, res.Explored} {
		for _, q := range qs {
			sig := q.CanonicalSignature()
			if !seen[sig] {
				seen[sig] = true
				pool = append(pool, q)
			}
		}
	}
	return pool
}

// CalibrationPoint pairs one plan with its estimate and its measured
// execution profile.
type CalibrationPoint struct {
	// Plan is the executable form that was run: lookup-simplified and
	// reordered to the cost model's preferred binding order, exactly as
	// the optimizer's conventional phase would emit it.
	Plan *core.Query
	// Est is the cost model's estimate of that executable form.
	Est float64
	// Measured is the engine's work profile of the run (probes, rows,
	// output rows); Measured.Cost() is the machine-independent scalar.
	Measured engine.Measure
	// Wall is the wall-clock time of the run (machine-dependent; reported
	// in E14 tables, never asserted on).
	Wall time.Duration
	// Rows is the plan's deduplicated result cardinality.
	Rows int
}

// CalibratePlans executes every plan in its executable form against the
// instance and returns one calibration point per executable plan, in
// input order, plus the number of candidates skipped because they are not
// executable on this instance: an intermediate backchase state can carry
// an unguarded failing lookup (M[k] with k drawn from another structure's
// domain), which errors at run time exactly as the reference evaluator
// would — such a candidate can never be the delivered plan, so it is
// excluded from the profile rather than failing the calibration. All
// executed plans must be equivalent rewrites of one query over a
// dependency-satisfying instance; callers can therefore also use the
// result rows to cross-check plan agreement.
func CalibratePlans(stats *cost.Stats, plans []*core.Query, in *instance.Instance) (pts []CalibrationPoint, skipped int, err error) {
	for i, p := range plans {
		exec := stats.Reorder(planrewrite.SimplifyLookups(p))
		est, _ := stats.Estimate(exec)
		plan, err := engine.Compile(exec, in)
		if err != nil {
			return nil, 0, fmt.Errorf("calibrate plan %d: %w", i, err)
		}
		start := time.Now()
		res, err := plan.Run()
		if err != nil {
			var lookupErr *eval.ErrLookupFailed
			if errors.As(err, &lookupErr) {
				skipped++
				continue
			}
			return nil, 0, fmt.Errorf("calibrate plan %d: %w", i, err)
		}
		pts = append(pts, CalibrationPoint{
			Plan:     exec,
			Est:      est,
			Measured: plan.Measure(),
			Wall:     time.Since(start),
			Rows:     res.Len(),
		})
	}
	return pts, skipped, nil
}

// DeliveredMeasured returns the measured cost of the plan the optimizer
// would deliver from the pool: candidates are ranked by estimated cost
// (ties broken by canonical rendering, so the pick is deterministic) and
// the first executable one is run — a candidate carrying an unguarded
// failing lookup is passed over exactly as a real deployment would be
// forced to. Only the picked candidates are executed, so the pool can be
// the full explored-state set without paying for executing all of it.
// Returns +Inf when nothing in the pool executes.
func DeliveredMeasured(stats *cost.Stats, pool []*core.Query, in *instance.Instance) (float64, error) {
	type cand struct {
		exec *core.Query
		est  float64
		sig  string
	}
	cands := make([]cand, 0, len(pool))
	for _, q := range pool {
		exec := stats.Reorder(planrewrite.SimplifyLookups(q))
		est, _ := stats.Estimate(exec)
		cands = append(cands, cand{exec: exec, est: est, sig: exec.CanonicalSignature()})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].est != cands[j].est {
			return cands[i].est < cands[j].est
		}
		return cands[i].sig < cands[j].sig
	})
	for _, c := range cands {
		plan, err := engine.Compile(c.exec, in)
		if err != nil {
			return 0, fmt.Errorf("delivered plan: %w", err)
		}
		if _, err := plan.Run(); err != nil {
			var lookupErr *eval.ErrLookupFailed
			if errors.As(err, &lookupErr) {
				continue
			}
			return 0, fmt.Errorf("delivered plan: %w", err)
		}
		return plan.Measure().Cost(), nil
	}
	return math.Inf(1), nil
}

// PickedMeasured returns the measured cost of the plan the optimizer
// would deliver from these points — the one with the minimum estimate.
// Estimate ties within 1e-9 relative are resolved pessimistically
// (largest measured cost) or optimistically per worstTie, so a pruned
// pool's worst defensible pick can be compared against an exhaustive
// pool's best one. Returns +Inf for an empty slice.
func PickedMeasured(pts []CalibrationPoint, worstTie bool) float64 {
	estMin := math.Inf(1)
	for _, p := range pts {
		if p.Est < estMin {
			estMin = p.Est
		}
	}
	picked := math.Inf(1)
	first := true
	for _, p := range pts {
		if p.Est > estMin && !costsAgree(p.Est, estMin) {
			continue
		}
		c := p.Measured.Cost()
		switch {
		case first:
			picked = c
			first = false
		case worstTie && c > picked:
			picked = c
		case !worstTie && c < picked:
			picked = c
		}
	}
	return picked
}

// SpearmanEstVsMeasured is the Spearman rank correlation between the
// estimated costs and the measured costs of the points — the headline
// calibration number of E14: +1 means the cost model orders plans exactly
// as the hardware does. Ties receive average ranks. Returns 0 when fewer
// than two points or when either side is constant.
func SpearmanEstVsMeasured(pts []CalibrationPoint) float64 {
	if len(pts) < 2 {
		return 0
	}
	est := make([]float64, len(pts))
	mea := make([]float64, len(pts))
	for i, p := range pts {
		est[i] = p.Est
		mea[i] = p.Measured.Cost()
	}
	re, oke := ranks(est)
	rm, okm := ranks(mea)
	if !oke || !okm {
		return 0
	}
	return pearson(re, rm)
}

// ranks assigns average ranks (1-based) to the values; ok is false when
// all values are equal (rank correlation undefined).
func ranks(vals []float64) ([]float64, bool) {
	n := len(vals)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return vals[idx[a]] < vals[idx[b]] })
	out := make([]float64, n)
	distinct := false
	for i := 0; i < n; {
		j := i
		for j < n && vals[idx[j]] == vals[idx[i]] {
			j++
		}
		avg := float64(i+j+1) / 2 // average of 1-based ranks i+1..j
		for k := i; k < j; k++ {
			out[idx[k]] = avg
		}
		if j < n {
			distinct = true
		}
		i = j
	}
	return out, distinct
}

func pearson(x, y []float64) float64 {
	n := float64(len(x))
	var sx, sy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/n, sy/n
	var num, dx, dy float64
	for i := range x {
		num += (x[i] - mx) * (y[i] - my)
		dx += (x[i] - mx) * (x[i] - mx)
		dy += (y[i] - my) * (y[i] - my)
	}
	if dx == 0 || dy == 0 {
		return 0
	}
	return num / math.Sqrt(dx*dy)
}
