// E19: end-to-end query serving — the loadgen harness driven through
// Service.Query (the /query path) against a seeded star instance, so the
// replay measures planning AND measured execution per request.
package bench

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"cnb/internal/engine"
	"cnb/internal/service"
	"cnb/internal/workload"
)

// QueryLoadResult extends LoadResult with the execution-side aggregates
// of a Service.Query replay.
type QueryLoadResult struct {
	LoadResult
	// Evals / Rows / OutRows sum StreamPlan.Measure over every
	// successful request; ResultRows sums the (pre-cap) result
	// cardinalities. At Workers=1 all four are deterministic.
	Evals      int64
	Rows       int64
	OutRows    int64
	ResultRows int64
	// Skipped sums the non-executable candidates passed over by the
	// delivery rule across all requests.
	Skipped int64
}

// RunQueryLoad replays the mix through svc.Query against the named
// registered instance, with the same closed-loop workers, deterministic
// seeded schedule and error accounting as RunLoad.
func RunQueryLoad(ctx context.Context, svc *service.Service, mix []LoadQuery, cfg LoadConfig, instName string) (*QueryLoadResult, error) {
	if len(mix) == 0 {
		return nil, fmt.Errorf("loadgen: empty mix")
	}
	if cfg.Workers < 1 || cfg.Requests < 1 {
		return nil, fmt.Errorf("loadgen: need at least 1 worker and 1 request")
	}
	schedule := buildSchedule(mix, cfg)
	latencies := make([]time.Duration, len(schedule))
	var (
		next       atomic.Int64
		errCount   atomic.Int64
		evals      atomic.Int64
		rows       atomic.Int64
		outRows    atomic.Int64
		resultRows atomic.Int64
		skipped    atomic.Int64
		errMu      sync.Mutex
		firstErr   error
		wg         sync.WaitGroup
	)
	start := time.Now()
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(schedule) {
					return
				}
				t0 := time.Now()
				res, err := svc.Query(ctx, service.QueryRequest{
					Request:  schedule[i],
					Instance: instName,
				})
				latencies[i] = time.Since(t0)
				if err != nil {
					errCount.Add(1)
					errMu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("request %d: %w", i, err)
					}
					errMu.Unlock()
					continue
				}
				evals.Add(res.Measure.Evals)
				rows.Add(res.Measure.Rows)
				outRows.Add(res.Measure.OutRows)
				resultRows.Add(int64(res.ResultRows))
				skipped.Add(int64(res.Skipped))
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)

	sorted := append([]time.Duration(nil), latencies...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
	res := &QueryLoadResult{
		LoadResult: LoadResult{
			Requests:   len(schedule),
			Errors:     int(errCount.Load()),
			Wall:       wall,
			Throughput: float64(len(schedule)) / wall.Seconds(),
			P50:        percentile(sorted, 0.50),
			P99:        percentile(sorted, 0.99),
			Service:    svc.Counters(),
			Cache:      svc.CacheCounters(),
		},
		Evals:      evals.Load(),
		Rows:       rows.Load(),
		OutRows:    outRows.Load(),
		ResultRows: resultRows.Load(),
		Skipped:    skipped.Load(),
	}
	if total := res.Cache.Hits + res.Cache.Misses; total > 0 {
		res.HitRate = float64(res.Cache.Hits) / float64(total)
	}
	return res, firstErr
}

// e19Scenario is the E19 setup: one seeded star instance plus a
// two-shape query mix over its schema (narrow projection and
// ProjectAll), so the replay exercises distinct plans against the same
// data.
type e19Scenario struct {
	Star *workload.Star // narrow-projection shape (owns the instance)
	Mix  []LoadQuery
	Gen  workload.StarGenOptions
}

// e19Setup builds the scenario at a CI-friendly tier: 20k fact rows with
// indexed access paths, so the delivered plans are index navigations and
// 160 executed requests stay cheap.
func e19Setup() (*e19Scenario, error) {
	cfg := workload.StarConfig{
		Dims: 2, FactIndexes: 1, DimKeyIndexes: 1, DimIndex: true,
		Select: true, SelectA: 3, FKConstraints: true,
	}
	narrow, err := workload.NewStar(cfg)
	if err != nil {
		return nil, err
	}
	cfgAll := cfg
	cfgAll.ProjectAll = true
	wide, err := workload.NewStar(cfgAll)
	if err != nil {
		return nil, err
	}
	mix := []LoadQuery{
		{Name: "star narrow", Req: service.Request{Query: narrow.Q, Deps: narrow.Deps, PhysicalNames: narrow.Physical.NameSet()}},
		{Name: "star project-all", Req: service.Request{Query: wide.Q, Deps: wide.Deps, PhysicalNames: wide.Physical.NameSet()}},
	}
	return &e19Scenario{
		Star: narrow,
		Mix:  mix,
		Gen:  workload.StarGenOptions{NumFact: 20_000, NumDim: 200, DomA: 20, Seed: 1901},
	}, nil
}

// e19Service builds a fresh serving-configuration Service with the
// scenario's instance installed and its synthetic statistics ranking
// candidates. Parallelism 1 keeps the candidate ranking — and hence the
// executed plan and its work counters — deterministic for the exact
// gates, mirroring E18.
func (sc *e19Scenario) service() (*service.Service, error) {
	svc := service.New(service.Options{
		Parallelism: 1,
		MinimalOnly: true,
		Stats:       sc.Star.SyntheticStats(sc.Gen),
	})
	if _, err := svc.InstallInstance("star", sc.Star.Generate(sc.Gen)); err != nil {
		return nil, err
	}
	return svc, nil
}

// E19 replays the E16-style load mix through the full query path:
// Optimize (plan cache + singleflight) followed by streaming execution
// of the delivered plan against a registered 20k-row star instance.
// Before the replay, both query shapes are differentially checked — the
// served result set must equal the row engine's evaluation of the
// original logical query — and the experiment hard-fails on any
// mismatch, so the correctness claim travels with the experiment.
//
// Headline expectations (gated by TestE19QueryLoad and, for the exact
// counters, cmd/benchcheck):
//
//   - hit rate and backchase runs behave exactly as in E16: two shapes,
//     two backchase runs, everything else served warm — execution does
//     not disturb the serving-layer invariants;
//   - the workers=1 pass is fully deterministic, so its total executed
//     work (query_evals / query_rows / query_out_rows / result_rows)
//     is exact-gated: any drift means the optimizer delivered a
//     different plan or the engine's accounting changed;
//   - zero error responses, zero skipped candidates on this instance.
func E19() (*Table, error) {
	sc, err := e19Setup()
	if err != nil {
		return nil, err
	}

	// Differential anchor: serve each shape once on a scratch service
	// and compare against the row engine's evaluation of the original
	// logical query on the same instance.
	scratch, err := sc.service()
	if err != nil {
		return nil, err
	}
	in := sc.Star.Generate(sc.Gen)
	for _, lq := range sc.Mix {
		got, err := scratch.Query(context.Background(), service.QueryRequest{
			Request: lq.Req, Instance: "star", MaxRows: -1,
		})
		if err != nil {
			return nil, fmt.Errorf("E19 %s: query: %w", lq.Name, err)
		}
		want, err := engine.Execute(lq.Req.Query, in)
		if err != nil {
			return nil, fmt.Errorf("E19 %s: row engine: %w", lq.Name, err)
		}
		if got.ResultRows != want.Len() || len(got.Rows) != want.Len() {
			return nil, fmt.Errorf("E19 %s: served %d rows, row engine %d", lq.Name, got.ResultRows, want.Len())
		}
		for _, v := range got.Rows {
			if !want.Contains(v) {
				return nil, fmt.Errorf("E19 %s: served row %s not in row-engine result", lq.Name, v)
			}
		}
	}

	tb := &Table{
		ID:      "E19",
		Title:   "End-to-end query serving: /query replay against a 20k-row star instance",
		Columns: []string{"workers", "requests", "errors", "wall", "req/s", "p50", "p99", "hit rate", "backchase runs", "evals", "rows", "out rows"},
		Metrics: map[string]float64{},
	}
	const requests = 160
	cfg := LoadConfig{AlphaRate: 0.5, Seed: 19, Requests: requests}
	for _, workers := range []int{1, 4, 16} {
		svc, err := sc.service()
		if err != nil {
			return nil, err
		}
		cfg.Workers = workers
		res, err := RunQueryLoad(context.Background(), svc, sc.Mix, cfg, "star")
		if err != nil {
			return nil, fmt.Errorf("E19 workers=%d: %w", workers, err)
		}
		tb.Rows = append(tb.Rows, []string{
			fmt.Sprintf("%d", workers),
			fmt.Sprintf("%d", res.Requests),
			fmt.Sprintf("%d", res.Errors),
			res.Wall.Round(time.Millisecond).String(),
			fmt.Sprintf("%.1f", res.Throughput),
			res.P50.Round(time.Microsecond).String(),
			res.P99.Round(time.Millisecond).String(),
			fmt.Sprintf("%.2f", res.HitRate),
			fmt.Sprintf("%d", res.Service.BackchaseRuns),
			fmt.Sprintf("%d", res.Evals),
			fmt.Sprintf("%d", res.Rows),
			fmt.Sprintf("%d", res.OutRows),
		})
		if workers == 1 {
			// Deterministic pass: gated exactly by cmd/benchcheck
			// (exactCounters for the serving counters and hit rate, the
			// _evals/_rows suffixes for the executed work totals).
			tb.Metrics["cache_hits"] = float64(res.Cache.Hits)
			tb.Metrics["cache_misses"] = float64(res.Cache.Misses)
			tb.Metrics["backchase_runs"] = float64(res.Service.BackchaseRuns)
			tb.Metrics["hit_rate"] = res.HitRate
			tb.Metrics["query_evals"] = float64(res.Evals)
			tb.Metrics["query_rows"] = float64(res.Rows)
			tb.Metrics["query_out_rows"] = float64(res.OutRows)
			tb.Metrics["result_rows"] = float64(res.ResultRows)
			tb.Metrics["query_exec_skipped"] = float64(res.Skipped)
		}
		tb.Metrics[fmt.Sprintf("throughput_w%d", workers)] = res.Throughput
		tb.Metrics[fmt.Sprintf("p99_w%d_ms", workers)] = float64(res.P99.Milliseconds())
	}
	tb.Notes = append(tb.Notes,
		fmt.Sprintf("mix: 2 star shapes (narrow + project-all) over one 20k-row instance, %d requests per worker count, alpha-rename rate 0.5, seed 19, MinimalOnly serving with synthetic stats", requests),
		"each request optimizes through the plan cache/singleflight, then executes the delivered plan on the streaming engine against the registered instance",
		"served result sets are differentially checked against the row engine before the replay; the experiment hard-fails on any mismatch",
		"workers=1 counters are deterministic and gated exactly (cache_hits, cache_misses, backchase_runs, hit_rate, query_evals, query_rows, query_out_rows, result_rows); wall-clock numbers are informational")
	return tb, nil
}
