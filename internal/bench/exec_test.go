package bench

import (
	"testing"
)

// TestE18OptimizedBeatsBaseline runs the measured-execution experiment
// at a reduced row count (E18 itself hard-fails on result mismatch or a
// missing speedup, so the test mostly pins the metric contract the
// benchcheck gates rely on).
func TestE18OptimizedBeatsBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("E18 generates and executes data-scale instances")
	}
	old := ExecRows
	ExecRows = 20_000
	defer func() { ExecRows = old }()

	tb, err := E18()
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"star", "snow"} {
		be, bok := tb.Metrics[key+"_baseline_evals"]
		oe, ook := tb.Metrics[key+"_optimized_evals"]
		if !bok || !ook {
			t.Fatalf("%s: missing eval counters in %v", key, tb.Metrics)
		}
		br := tb.Metrics[key+"_baseline_rows"]
		or := tb.Metrics[key+"_optimized_rows"]
		if oe+or >= be+br {
			t.Errorf("%s: optimized work %v not below baseline %v", key, oe+or, be+br)
		}
		if sp := tb.Metrics[key+"_speedup"]; sp <= 1 {
			t.Errorf("%s: speedup %v <= 1", key, sp)
		}
		if sk := tb.Metrics[key+"_exec_skipped"]; sk < 0 {
			t.Errorf("%s: negative skip count %v", key, sk)
		}
	}

	// Determinism of the gated counters: a second run at the same tier
	// must reproduce them bit-for-bit.
	tb2, err := E18()
	if err != nil {
		t.Fatal(err)
	}
	for name, v := range tb.Metrics {
		if name == "star_baseline_wall_ms" || name == "snow_baseline_wall_ms" ||
			name == "star_optimized_wall_ms" || name == "snow_optimized_wall_ms" {
			continue
		}
		if tb2.Metrics[name] != v {
			t.Errorf("metric %s not deterministic: %v vs %v", name, v, tb2.Metrics[name])
		}
	}
}
