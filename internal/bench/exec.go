package bench

import (
	"context"
	"errors"
	"fmt"
	"time"

	"cnb/internal/core"
	"cnb/internal/cost"
	"cnb/internal/engine"
	"cnb/internal/eval"
	"cnb/internal/instance"
	"cnb/internal/optimizer"
	"cnb/internal/workload"
)

// ExecRows is the fact-table row count E18 generates and executes
// against. The default is the CI tier (10^5); chasebench -exec-rows
// raises it to the 10^6–10^7 nightly tiers. Metric names do not encode
// the tier, so baselines are only comparable at equal ExecRows — the
// bench gate always runs the default.
var ExecRows = 100_000

// execWorkload is one E18 scenario: a star/snowflake configuration plus
// deterministic generation options at data scale.
type execWorkload struct {
	Name string
	Key  string // metric prefix: Key_baseline_evals, ...
	Cfg  workload.StarConfig
	Gen  workload.StarGenOptions
}

// e18Workloads sizes the two E18 scenarios from ExecRows: a uniform star
// and a zipf-skewed snowflake. Dimensions scale as NumFact/100 so the
// selection bucket and index fanouts keep their shape across tiers, and
// no views are materialized — E18 measures navigation against base data
// and indexes, and views would double the instance footprint at 10^7.
func e18Workloads() []execWorkload {
	n := ExecRows
	if n < 1_000 {
		n = 1_000
	}
	numDim := n / 100
	if numDim < 50 {
		numDim = 50
	}
	domA := numDim / 10
	if domA < 5 {
		domA = 5
	}
	return []execWorkload{
		{
			Name: fmt.Sprintf("star d=2 uniform %d rows", n),
			Key:  "star",
			Cfg: workload.StarConfig{
				Dims: 2, FactIndexes: 2, DimKeyIndexes: 2, DimIndex: true,
				Select: true, SelectA: 3, FKConstraints: true,
			},
			Gen: workload.StarGenOptions{NumFact: n, NumDim: numDim, DomA: domA, Seed: 1801},
		},
		{
			Name: fmt.Sprintf("snowflake d=2 zipf %d rows", n),
			Key:  "snow",
			Cfg: workload.StarConfig{
				Dims: 2, Snowflake: true, FactIndexes: 1, DimKeyIndexes: 1, DimIndex: true,
				Select: true, SelectA: 2, FKConstraints: true,
			},
			Gen: workload.StarGenOptions{
				NumFact: n, NumDim: numDim, NumSub: domA, DomA: domA,
				Seed: 1802, ZipfS: 1.3,
			},
		},
	}
}

// e18Run executes one plan on the instance through the streaming engine
// and returns its result, work profile, and wall time.
func e18Run(q *core.Query, in *instance.Instance, stats *cost.Stats) (*instance.Set, engine.Measure, time.Duration, error) {
	p, err := engine.CompileStream(q, in, engine.StreamOptions{Stats: stats, Buffer: 2})
	if err != nil {
		return nil, engine.Measure{}, 0, err
	}
	t0 := time.Now()
	out, err := p.Run(context.Background())
	if err != nil {
		return nil, engine.Measure{}, 0, err
	}
	return out, p.Measure(), time.Since(t0), nil
}

// E18 is the measured-execution experiment: generate a star and a
// snowflake instance at ExecRows scale, optimize the logical query with
// synthetic (closed-form) statistics, and execute both the unoptimized
// baseline plan and the optimizer's cheapest executable candidate on the
// streaming engine. The experiment hard-fails — rather than reporting a
// row — when the two plans disagree on the result set or when the
// optimized plan does not beat the baseline on measured work, so the
// speedup claim is enforced wherever E18 runs, not only where benchcheck
// compares metrics. Row and eval counters are pure functions of (seed,
// plan), hence gated exactly.
func E18() (*Table, error) {
	tb := &Table{
		ID:      "E18",
		Title:   fmt.Sprintf("Measured execution at data scale (%d rows): optimized vs baseline plan", ExecRows),
		Columns: []string{"workload", "plan", "evals", "rows", "out", "measured cost", "wall"},
		Metrics: map[string]float64{},
	}
	for _, wl := range e18Workloads() {
		s, err := workload.NewStar(wl.Cfg)
		if err != nil {
			return nil, err
		}
		genStart := time.Now()
		in := s.Generate(wl.Gen)
		genWall := time.Since(genStart)
		stats := s.SyntheticStats(wl.Gen)

		optStart := time.Now()
		res, err := optimizer.Optimize(s.Q, optimizer.Options{
			Deps:          s.Deps,
			PhysicalNames: s.Physical.NameSet(),
			Stats:         stats,
			CostBounded:   true,
			Parallelism:   1, // deterministic candidate ranking for exact gates
		})
		if err != nil {
			return nil, fmt.Errorf("E18 %s: optimize: %w", wl.Name, err)
		}
		optWall := time.Since(optStart)
		if res.Best == nil {
			return nil, fmt.Errorf("E18 %s: optimizer returned no plan", wl.Name)
		}

		baseSet, baseM, baseWall, err := e18Run(s.Q, in, stats)
		if err != nil {
			return nil, fmt.Errorf("E18 %s: baseline plan: %w", wl.Name, err)
		}

		// Deliver the cheapest executable candidate: an intermediate
		// backchase state can carry an unguarded failing lookup that
		// errors on keys the data never populated (the zipf tail), the
		// same class E14's calibration skips. Walking the ranked pool is
		// the serving layer's delivery rule; the skip count is gated so
		// executor coverage can't silently regress.
		var (
			optSet   *instance.Set
			optM     engine.Measure
			optWallT time.Duration
			planStr  string
			skipped  int
		)
		for _, cand := range res.Candidates {
			set, m, w, err := e18Run(cand.Query, in, stats)
			if err != nil {
				var lf *eval.ErrLookupFailed
				if errors.As(err, &lf) {
					skipped++
					continue
				}
				return nil, fmt.Errorf("E18 %s: candidate plan: %w", wl.Name, err)
			}
			optSet, optM, optWallT, planStr = set, m, w, cand.Query.String()
			break
		}
		if optSet == nil {
			return nil, fmt.Errorf("E18 %s: no executable candidate among %d", wl.Name, len(res.Candidates))
		}

		if !optSet.Equal(baseSet) {
			return nil, fmt.Errorf("E18 %s: optimized plan result (%d rows) != baseline (%d rows)",
				wl.Name, optSet.Len(), baseSet.Len())
		}
		if optM.Cost() >= baseM.Cost() {
			return nil, fmt.Errorf("E18 %s: optimized plan measured cost %.0f not below baseline %.0f",
				wl.Name, optM.Cost(), baseM.Cost())
		}
		speedup := baseM.Cost() / optM.Cost()

		tb.Rows = append(tb.Rows,
			[]string{wl.Name, "baseline (as written)", fmt.Sprintf("%d", baseM.Evals),
				fmt.Sprintf("%d", baseM.Rows), fmt.Sprintf("%d", baseSet.Len()),
				fmt.Sprintf("%.0f", baseM.Cost()), baseWall.Round(time.Millisecond).String()},
			[]string{wl.Name, "optimized (cheapest candidate)", fmt.Sprintf("%d", optM.Evals),
				fmt.Sprintf("%d", optM.Rows), fmt.Sprintf("%d", optSet.Len()),
				fmt.Sprintf("%.0f", optM.Cost()), optWallT.Round(time.Millisecond).String()},
		)
		tb.Notes = append(tb.Notes,
			fmt.Sprintf("%s: generate %v, optimize %v (%d states, %d pruned), %d non-executable candidates skipped, measured speedup %.1fx",
				wl.Name, genWall.Round(time.Millisecond), optWall.Round(time.Millisecond),
				res.States, res.Pruned, skipped, speedup),
			fmt.Sprintf("%s delivered plan: %s", wl.Name, planStr))

		// Exact-gated work counters (suffix rules in benchcheck), plus
		// informational wall/speedup numbers that vary across machines.
		tb.Metrics[wl.Key+"_baseline_evals"] = float64(baseM.Evals)
		tb.Metrics[wl.Key+"_baseline_rows"] = float64(baseM.Rows)
		tb.Metrics[wl.Key+"_optimized_evals"] = float64(optM.Evals)
		tb.Metrics[wl.Key+"_optimized_rows"] = float64(optM.Rows)
		tb.Metrics[wl.Key+"_exec_skipped"] = float64(skipped)
		tb.Metrics[wl.Key+"_speedup"] = speedup
		tb.Metrics[wl.Key+"_baseline_wall_ms"] = float64(baseWall.Milliseconds())
		tb.Metrics[wl.Key+"_optimized_wall_ms"] = float64(optWallT.Milliseconds())
	}
	return tb, nil
}
