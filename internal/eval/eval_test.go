package eval

import (
	"errors"
	"testing"

	"cnb/internal/core"
	"cnb/internal/instance"
)

// tinyInstance builds a small hand-made instance:
//
//	R = {(A:1,B:10), (A:2,B:20)}
//	M = {"x" -> 1, "y" -> 2}
//	SI = {"c" -> {(A:1,B:10)}}
func tinyInstance() *instance.Instance {
	r1 := instance.StructOf("A", instance.Int(1), "B", instance.Int(10))
	r2 := instance.StructOf("A", instance.Int(2), "B", instance.Int(20))
	in := instance.NewInstance()
	in.Bind("R", instance.NewSet(r1, r2))
	m := instance.NewDict()
	m.Put(instance.Str("x"), instance.Int(1))
	m.Put(instance.Str("y"), instance.Int(2))
	in.Bind("M", m)
	si := instance.NewDict()
	si.Put(instance.Str("c"), instance.NewSet(r1))
	in.Bind("SI", si)
	return in
}

func TestTermBasics(t *testing.T) {
	in := tinyInstance()
	cases := []struct {
		term *core.Term
		want instance.Value
	}{
		{core.C(42), instance.Int(42)},
		{core.C("hi"), instance.Str("hi")},
		{core.C(true), instance.Bool(true)},
		{core.C(2.5), instance.Float(2.5)},
		{core.Lk(core.Name("M"), core.C("x")), instance.Int(1)},
	}
	for _, c := range cases {
		got, err := Term(c.term, Env{}, in)
		if err != nil {
			t.Errorf("Term(%s): %v", c.term, err)
			continue
		}
		if got.Key() != c.want.Key() {
			t.Errorf("Term(%s) = %s, want %s", c.term, got, c.want)
		}
	}
}

func TestTermDom(t *testing.T) {
	in := tinyInstance()
	got, err := Term(core.Dom(core.Name("M")), Env{}, in)
	if err != nil {
		t.Fatal(err)
	}
	set := got.(*instance.Set)
	if set.Len() != 2 || !set.Contains(instance.Str("x")) || !set.Contains(instance.Str("y")) {
		t.Errorf("dom(M) = %s", set)
	}
}

func TestTermLookupFailing(t *testing.T) {
	in := tinyInstance()
	_, err := Term(core.Lk(core.Name("M"), core.C("zz")), Env{}, in)
	var lf *ErrLookupFailed
	if !errors.As(err, &lf) {
		t.Errorf("failing lookup must return ErrLookupFailed, got %v", err)
	}
}

func TestTermLookupNonFailing(t *testing.T) {
	in := tinyInstance()
	got, err := Term(core.LkNF(core.Name("SI"), core.C("zz")), Env{}, in)
	if err != nil {
		t.Fatalf("non-failing lookup must not error: %v", err)
	}
	if set, ok := got.(*instance.Set); !ok || set.Len() != 0 {
		t.Errorf("SI{zz} = %s, want empty set", got)
	}
	got, err = Term(core.LkNF(core.Name("SI"), core.C("c")), Env{}, in)
	if err != nil {
		t.Fatal(err)
	}
	if set := got.(*instance.Set); set.Len() != 1 {
		t.Errorf("SI{c} = %s, want singleton", set)
	}
}

func TestTermErrors(t *testing.T) {
	in := tinyInstance()
	bad := []*core.Term{
		core.V("unbound"),
		core.Name("NoSuch"),
		core.Prj(core.C(1), "A"),
		core.Dom(core.Name("R")),
		core.Lk(core.Name("R"), core.C(1)),
		core.Prj(core.Lk(core.Name("M"), core.C("x")), "F"),
	}
	for _, b := range bad {
		if _, err := Term(b, Env{}, in); err == nil {
			t.Errorf("Term(%s) should fail", b)
		}
	}
}

func TestQuerySelection(t *testing.T) {
	in := tinyInstance()
	q := &core.Query{
		Out:      core.Prj(core.V("r"), "B"),
		Bindings: []core.Binding{{Var: "r", Range: core.Name("R")}},
		Conds:    []core.Cond{{L: core.Prj(core.V("r"), "A"), R: core.C(1)}},
	}
	got, err := Query(q, in)
	if err != nil {
		t.Fatal(err)
	}
	want := instance.NewSet(instance.Int(10))
	if !got.Equal(want) {
		t.Errorf("selection = %s, want %s", got, want)
	}
}

func TestQueryJoinAndStructOutput(t *testing.T) {
	in := tinyInstance()
	// Self join on A = A (trivially matches each row with itself).
	q := &core.Query{
		Out: core.Struct(
			core.SF("X", core.Prj(core.V("p"), "A")),
			core.SF("Y", core.Prj(core.V("q"), "B")),
		),
		Bindings: []core.Binding{
			{Var: "p", Range: core.Name("R")},
			{Var: "q", Range: core.Name("R")},
		},
		Conds: []core.Cond{{L: core.Prj(core.V("p"), "A"), R: core.Prj(core.V("q"), "A")}},
	}
	got, err := Query(q, in)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 {
		t.Errorf("join result = %s, want 2 rows", got)
	}
}

func TestQuerySetSemantics(t *testing.T) {
	in := tinyInstance()
	// Constant output over 2 rows collapses to one.
	q := &core.Query{
		Out:      core.C(1),
		Bindings: []core.Binding{{Var: "r", Range: core.Name("R")}},
	}
	got, err := Query(q, in)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 {
		t.Errorf("distinct semantics violated: %s", got)
	}
}

func TestQueryDependentRange(t *testing.T) {
	// Iterate a dictionary through dom + lookup.
	in := tinyInstance()
	q := &core.Query{
		Out: core.Lk(core.Name("M"), core.V("k")),
		Bindings: []core.Binding{
			{Var: "k", Range: core.Dom(core.Name("M"))},
		},
	}
	got, err := Query(q, in)
	if err != nil {
		t.Fatal(err)
	}
	want := instance.NewSet(instance.Int(1), instance.Int(2))
	if !got.Equal(want) {
		t.Errorf("dict iteration = %s, want %s", got, want)
	}
}

func TestQueryEagerAgrees(t *testing.T) {
	in := tinyInstance()
	queries := []*core.Query{
		{
			Out:      core.Prj(core.V("r"), "B"),
			Bindings: []core.Binding{{Var: "r", Range: core.Name("R")}},
			Conds:    []core.Cond{{L: core.Prj(core.V("r"), "A"), R: core.C(1)}},
		},
		{
			Out: core.Struct(core.SF("X", core.Prj(core.V("p"), "A"))),
			Bindings: []core.Binding{
				{Var: "p", Range: core.Name("R")},
				{Var: "q", Range: core.Name("R")},
			},
			Conds: []core.Cond{{L: core.Prj(core.V("p"), "B"), R: core.Prj(core.V("q"), "B")}},
		},
	}
	for _, q := range queries {
		a, err := Query(q, in)
		if err != nil {
			t.Fatal(err)
		}
		b, err := QueryEager(q, in)
		if err != nil {
			t.Fatal(err)
		}
		if !a.Equal(b) {
			t.Errorf("eager evaluation differs:\n%s\nvs\n%s", a, b)
		}
	}
}

func TestQueryEagerConstantCondition(t *testing.T) {
	in := tinyInstance()
	q := &core.Query{
		Out:      core.Prj(core.V("r"), "A"),
		Bindings: []core.Binding{{Var: "r", Range: core.Name("R")}},
		Conds:    []core.Cond{{L: core.C(1), R: core.C(2)}},
	}
	got, err := QueryEager(q, in)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 {
		t.Error("false constant condition must yield empty result")
	}
}

func TestSatisfies(t *testing.T) {
	in := tinyInstance()
	// forall (r in R) exists (k in dom(M)) true — holds (M nonempty).
	d := &core.Dependency{
		Premise:    []core.Binding{{Var: "r", Range: core.Name("R")}},
		Conclusion: []core.Binding{{Var: "k", Range: core.Dom(core.Name("M"))}},
	}
	ok, err := Satisfies(d, in)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("existence dependency should hold")
	}

	// forall (r in R) r.A = 1 — fails (row with A=2).
	egd := &core.Dependency{
		Premise:         []core.Binding{{Var: "r", Range: core.Name("R")}},
		ConclusionConds: []core.Cond{{L: core.Prj(core.V("r"), "A"), R: core.C(1)}},
	}
	ok, err = Satisfies(egd, in)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("EGD should be violated")
	}
}

func TestSatisfiesWithPremiseConds(t *testing.T) {
	in := tinyInstance()
	// forall (r in R) r.A = 1 -> r.B = 10 — holds.
	d := &core.Dependency{
		Premise:         []core.Binding{{Var: "r", Range: core.Name("R")}},
		PremiseConds:    []core.Cond{{L: core.Prj(core.V("r"), "A"), R: core.C(1)}},
		ConclusionConds: []core.Cond{{L: core.Prj(core.V("r"), "B"), R: core.C(10)}},
	}
	ok, err := Satisfies(d, in)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("guarded EGD should hold")
	}
}

func TestSatisfiesAll(t *testing.T) {
	in := tinyInstance()
	good := &core.Dependency{
		Name:    "good",
		Premise: []core.Binding{{Var: "r", Range: core.Name("R")}},
	}
	bad := &core.Dependency{
		Name:            "bad",
		Premise:         []core.Binding{{Var: "r", Range: core.Name("R")}},
		ConclusionConds: []core.Cond{{L: core.Prj(core.V("r"), "A"), R: core.C(99)}},
	}
	name, err := SatisfiesAll([]*core.Dependency{good, bad}, in)
	if err != nil {
		t.Fatal(err)
	}
	if name != "bad" {
		t.Errorf("violated = %q, want bad", name)
	}
	name, err = SatisfiesAll([]*core.Dependency{good}, in)
	if err != nil {
		t.Fatal(err)
	}
	if name != "" {
		t.Errorf("violated = %q, want none", name)
	}
}
