// Package eval is the reference evaluator for path-conjunctive queries
// over in-memory instances: straightforward nested-loop semantics with
// set (distinct) output, exactly following the denotational reading of the
// language in Deutsch, Popa, Tannen (VLDB 1999). It also checks whether an
// instance satisfies an EPCD, which the workload generators and the
// soundness tests use to certify that generated data respects the
// constraint sets.
//
// The engine package provides the optimized executor; eval is the simple,
// obviously-correct baseline both are tested against.
package eval

import (
	"fmt"

	"cnb/internal/core"
	"cnb/internal/instance"
)

// Env is an evaluation environment binding query variables to values.
type Env map[string]instance.Value

// Clone returns a copy of the environment with room for one more binding.
func (e Env) Clone() Env {
	n := make(Env, len(e)+1)
	for k, v := range e {
		n[k] = v
	}
	return n
}

// ErrLookupFailed is returned when a failing lookup M[k] is applied to a
// key outside dom(M).
type ErrLookupFailed struct {
	Term *core.Term
	Key  instance.Value
}

func (e *ErrLookupFailed) Error() string {
	return fmt.Sprintf("eval: lookup %s failed: key %s not in domain", e.Term, e.Key)
}

// Term evaluates a path term under an environment and instance.
func Term(t *core.Term, env Env, in *instance.Instance) (instance.Value, error) {
	switch t.Kind {
	case core.KVar:
		v, ok := env[t.Name]
		if !ok {
			return nil, fmt.Errorf("eval: unbound variable %q", t.Name)
		}
		return v, nil
	case core.KConst:
		switch c := t.Val.(type) {
		case int64:
			return instance.Int(c), nil
		case float64:
			return instance.Float(c), nil
		case string:
			return instance.Str(c), nil
		case bool:
			return instance.Bool(c), nil
		}
		return nil, fmt.Errorf("eval: bad constant %v", t.Val)
	case core.KName:
		v, ok := in.Lookup(t.Name)
		if !ok {
			return nil, fmt.Errorf("eval: schema name %q unbound in instance", t.Name)
		}
		return v, nil
	case core.KProj:
		base, err := Term(t.Base, env, in)
		if err != nil {
			return nil, err
		}
		st, ok := base.(*instance.Struct)
		if !ok {
			return nil, fmt.Errorf("eval: projection %s on non-record %s", t, base)
		}
		f, ok := st.Field(t.Name)
		if !ok {
			return nil, fmt.Errorf("eval: record %s has no field %q", st, t.Name)
		}
		return f, nil
	case core.KDom:
		base, err := Term(t.Base, env, in)
		if err != nil {
			return nil, err
		}
		d, ok := base.(*instance.Dict)
		if !ok {
			return nil, fmt.Errorf("eval: dom of non-dictionary %s", base)
		}
		return d.Domain(), nil
	case core.KLookup:
		base, err := Term(t.Base, env, in)
		if err != nil {
			return nil, err
		}
		d, ok := base.(*instance.Dict)
		if !ok {
			return nil, fmt.Errorf("eval: lookup into non-dictionary %s", base)
		}
		key, err := Term(t.Key, env, in)
		if err != nil {
			return nil, err
		}
		v, ok := d.Get(key)
		if !ok {
			if t.NonFailing {
				// M{k}: empty set instead of failure (footnote 4).
				return instance.NewSet(), nil
			}
			return nil, &ErrLookupFailed{Term: t, Key: key}
		}
		return v, nil
	case core.KStruct:
		names := make([]string, len(t.Fields))
		vals := make([]instance.Value, len(t.Fields))
		for i, f := range t.Fields {
			v, err := Term(f.Term, env, in)
			if err != nil {
				return nil, err
			}
			names[i] = f.Name
			vals[i] = v
		}
		return instance.NewStruct(names, vals), nil
	}
	return nil, fmt.Errorf("eval: cannot evaluate term %s", t)
}

// Query evaluates a PC query over the instance, returning the result set
// (set semantics: duplicates are collapsed).
func Query(q *core.Query, in *instance.Instance) (*instance.Set, error) {
	out := instance.NewSet()
	var rec func(i int, env Env) error
	rec = func(i int, env Env) error {
		if i == len(q.Bindings) {
			for _, c := range q.Conds {
				l, err := Term(c.L, env, in)
				if err != nil {
					return err
				}
				r, err := Term(c.R, env, in)
				if err != nil {
					return err
				}
				if l.Key() != r.Key() {
					return nil
				}
			}
			v, err := Term(q.Out, env, in)
			if err != nil {
				return err
			}
			out.Add(v)
			return nil
		}
		b := q.Bindings[i]
		rng, err := Term(b.Range, env, in)
		if err != nil {
			return err
		}
		set, ok := rng.(*instance.Set)
		if !ok {
			return fmt.Errorf("eval: range %s of %q is not a set: %s", b.Range, b.Var, rng)
		}
		for _, elem := range set.Elems() {
			env[b.Var] = elem
			if err := rec(i+1, env); err != nil {
				return err
			}
		}
		delete(env, b.Var)
		return nil
	}
	if err := rec(0, Env{}); err != nil {
		return nil, err
	}
	return out, nil
}

// QueryEager is Query with eager condition filtering: conditions are
// checked as soon as all their variables are bound, pruning the nested
// loops early. Semantically identical to Query; used by tests to validate
// the pushdown reasoning the engine package relies on.
func QueryEager(q *core.Query, in *instance.Instance) (*instance.Set, error) {
	out := instance.NewSet()
	// For each condition, the binding index after which it can be checked.
	readyAt := make([]int, len(q.Conds))
	pos := map[string]int{}
	for i, b := range q.Bindings {
		pos[b.Var] = i
	}
	for ci, c := range q.Conds {
		last := -1
		for v := range c.L.Vars() {
			if p, ok := pos[v]; ok && p > last {
				last = p
			}
		}
		for v := range c.R.Vars() {
			if p, ok := pos[v]; ok && p > last {
				last = p
			}
		}
		readyAt[ci] = last
	}
	check := func(level int, env Env) (bool, error) {
		for ci, c := range q.Conds {
			if readyAt[ci] != level {
				continue
			}
			l, err := Term(c.L, env, in)
			if err != nil {
				return false, err
			}
			r, err := Term(c.R, env, in)
			if err != nil {
				return false, err
			}
			if l.Key() != r.Key() {
				return false, nil
			}
		}
		return true, nil
	}
	var rec func(i int, env Env) error
	rec = func(i int, env Env) error {
		if i == len(q.Bindings) {
			v, err := Term(q.Out, env, in)
			if err != nil {
				return err
			}
			out.Add(v)
			return nil
		}
		b := q.Bindings[i]
		rng, err := Term(b.Range, env, in)
		if err != nil {
			return err
		}
		set, ok := rng.(*instance.Set)
		if !ok {
			return fmt.Errorf("eval: range %s of %q is not a set: %s", b.Range, b.Var, rng)
		}
		for _, elem := range set.Elems() {
			env[b.Var] = elem
			ok, err := check(i, env)
			if err != nil {
				return err
			}
			if ok {
				if err := rec(i+1, env); err != nil {
					return err
				}
			}
		}
		delete(env, b.Var)
		return nil
	}
	// Conditions with no variables (constant comparisons) check at -1.
	ok, err := check(-1, Env{})
	if err != nil {
		return nil, err
	}
	if !ok {
		return out, nil
	}
	if err := rec(0, Env{}); err != nil {
		return nil, err
	}
	return out, nil
}

// Satisfies reports whether the instance satisfies the dependency: for
// every premise assignment with the premise conditions true, some
// conclusion assignment makes the conclusion conditions true.
func Satisfies(d *core.Dependency, in *instance.Instance) (bool, error) {
	holds := true
	var premise func(i int, env Env) error
	var conclusion func(i int, env Env) (bool, error)

	checkConds := func(conds []core.Cond, env Env) (bool, error) {
		for _, c := range conds {
			l, err := Term(c.L, env, in)
			if err != nil {
				return false, err
			}
			r, err := Term(c.R, env, in)
			if err != nil {
				return false, err
			}
			if l.Key() != r.Key() {
				return false, nil
			}
		}
		return true, nil
	}

	conclusion = func(i int, env Env) (bool, error) {
		if i == len(d.Conclusion) {
			return checkConds(d.ConclusionConds, env)
		}
		b := d.Conclusion[i]
		rng, err := Term(b.Range, env, in)
		if err != nil {
			return false, err
		}
		set, ok := rng.(*instance.Set)
		if !ok {
			return false, fmt.Errorf("eval: dependency range %s is not a set", b.Range)
		}
		for _, elem := range set.Elems() {
			env[b.Var] = elem
			found, err := conclusion(i+1, env)
			if err != nil {
				return false, err
			}
			if found {
				delete(env, b.Var)
				return true, nil
			}
		}
		delete(env, b.Var)
		return false, nil
	}

	premise = func(i int, env Env) error {
		if !holds {
			return nil
		}
		if i == len(d.Premise) {
			ok, err := checkConds(d.PremiseConds, env)
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
			found, err := conclusion(0, env.Clone())
			if err != nil {
				return err
			}
			if !found {
				holds = false
			}
			return nil
		}
		b := d.Premise[i]
		rng, err := Term(b.Range, env, in)
		if err != nil {
			return err
		}
		set, ok := rng.(*instance.Set)
		if !ok {
			return fmt.Errorf("eval: dependency range %s is not a set", b.Range)
		}
		for _, elem := range set.Elems() {
			env[b.Var] = elem
			if err := premise(i+1, env); err != nil {
				return err
			}
			if !holds {
				break
			}
		}
		delete(env, b.Var)
		return nil
	}

	if err := premise(0, Env{}); err != nil {
		return false, err
	}
	return holds, nil
}

// SatisfiesAll checks a whole dependency set, returning the first violated
// dependency's name (empty when all hold).
func SatisfiesAll(deps []*core.Dependency, in *instance.Instance) (string, error) {
	for _, d := range deps {
		ok, err := Satisfies(d, in)
		if err != nil {
			return d.Name, err
		}
		if !ok {
			return d.Name, nil
		}
	}
	return "", nil
}
