package service

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"cnb/internal/workload"
)

// coldStarRequest builds a cold star shape whose exhaustive backchase
// takes ~100ms+ — far above the tiny tier budgets used here, so a
// budgeted request deterministically misses the flight.
func coldStarRequest(t *testing.T) Request {
	t.Helper()
	st, err := workload.NewStar(workload.StarConfig{
		Dims: 2, Views: 1, FactIndexes: 1, DimIndex: true,
		Select: true, SelectA: 3, FKConstraints: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return Request{Query: st.Q, Deps: st.Deps, PhysicalNames: st.Physical.NameSet()}
}

// waitCounter polls the counter selector until it reaches want or the
// deadline passes.
func waitCounter(t *testing.T, svc *Service, want int64, sel func(Counters) int64) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for sel(svc.Counters()) < want && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := sel(svc.Counters()); got < want {
		t.Fatalf("counter stuck at %d, want %d", got, want)
	}
}

// waitGoroutines polls until the goroutine count returns to the
// baseline, the leak-check idiom of engine/stream_test.go extended to
// detached flights.
func waitGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > before {
		t.Fatalf("goroutines leaked: %d before, %d after", before, now)
	}
}

// TestTieredColdServesGreedyThenUpgrades: the tentpole contract end to
// end. A cold request under a 2ms budget is answered by the greedy tier;
// the detached flight lands, upgrades the cache, and the next request
// serves the backchase plan — at exactly the cost a fully synchronous
// service computes for the same request.
func TestTieredColdServesGreedyThenUpgrades(t *testing.T) {
	req := coldStarRequest(t)
	before := runtime.NumGoroutine()

	svc := New(Options{MinimalOnly: true, MaxPlanLatency: 2 * time.Millisecond})
	resp, err := svc.Optimize(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Tier != TierGreedy {
		t.Fatalf("cold tier = %q, want %q", resp.Tier, TierGreedy)
	}
	if resp.Upgraded {
		t.Fatal("greedy response claims Upgraded")
	}
	if resp.Result.Best == nil || resp.Result.Best.Query == nil {
		t.Fatal("greedy response has no plan")
	}
	if err := resp.Result.Best.Query.Validate(); err != nil {
		t.Fatalf("greedy plan invalid: %v", err)
	}
	if c := svc.Counters(); c.GreedyServed != 1 {
		t.Fatalf("GreedyServed = %d, want 1", c.GreedyServed)
	}

	waitCounter(t, svc, 1, func(c Counters) int64 { return c.Upgraded })

	up, err := svc.Optimize(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if up.Tier != TierBackchase || !up.CacheHit || !up.Upgraded {
		t.Fatalf("post-upgrade response: tier=%q cacheHit=%v upgraded=%v, want backchase/true/true",
			up.Tier, up.CacheHit, up.Upgraded)
	}

	sync := New(Options{MinimalOnly: true})
	want, err := sync.Optimize(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if up.Result.Best.Cost != want.Result.Best.Cost {
		t.Fatalf("upgraded cost %.6f != synchronous cost %.6f", up.Result.Best.Cost, want.Result.Best.Cost)
	}
	waitGoroutines(t, before)
}

// TestDetachedFlightSurvivesCallerCancellation: under tiered serving,
// cancelling the only caller mid-flight must not cancel the flight — it
// lands detached and populates the plan cache — and must not leak its
// goroutine once landed.
func TestDetachedFlightSurvivesCallerCancellation(t *testing.T) {
	req := coldStarRequest(t)
	before := runtime.NumGoroutine()

	svc := New(Options{MinimalOnly: true, MaxPlanLatency: 10 * time.Second})
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	_, err := svc.Optimize(ctx, req)
	cancel()
	if err == nil {
		t.Log("flight landed before the cancel (fast machine); survival check still applies")
	} else if !errors.Is(err, context.Canceled) {
		t.Fatalf("unexpected error class: %v", err)
	}

	// The detached flight must land on its own and leave a warm cache
	// entry; no greedy response was served, so no upgrade is recorded.
	resp, err := svc.Optimize(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Tier != TierBackchase || resp.Result.Best == nil {
		t.Fatalf("post-cancel response: tier=%q, want a backchase plan", resp.Tier)
	}
	if c := svc.Counters(); c.Upgraded != 0 || c.GreedyServed != 0 {
		t.Fatalf("counters after cancel-only run: %+v, want no greedy/upgrades", c)
	}
	if c := svc.Counters(); c.Flights != 1 {
		t.Fatalf("Flights = %d, want 1 (second request must reuse the detached flight or its cache entry)", c.Flights)
	}
	waitGoroutines(t, before)
}

// TestTieredStormCoalescesOntoOneFlight: 8 concurrent cold requests
// under a tiny budget all get the greedy tier, yet start exactly one
// detached flight — and that single flight records exactly one upgrade.
func TestTieredStormCoalescesOntoOneFlight(t *testing.T) {
	req := coldStarRequest(t)
	before := runtime.NumGoroutine()

	const storm = 8
	svc := New(Options{MinimalOnly: true, MaxPlanLatency: 2 * time.Millisecond})
	var (
		start sync.WaitGroup
		done  sync.WaitGroup
	)
	start.Add(1)
	tiers := make([]Tier, storm)
	errs := make([]error, storm)
	for i := 0; i < storm; i++ {
		done.Add(1)
		go func(i int) {
			defer done.Done()
			start.Wait()
			resp, err := svc.Optimize(context.Background(), req)
			if err != nil {
				errs[i] = err
				return
			}
			tiers[i] = resp.Tier
		}(i)
	}
	start.Done()
	done.Wait()
	for i := 0; i < storm; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		if tiers[i] != TierGreedy {
			t.Fatalf("request %d tier = %q, want greedy", i, tiers[i])
		}
	}
	c := svc.Counters()
	if c.Flights != 1 {
		t.Fatalf("Flights = %d, want 1", c.Flights)
	}
	if c.GreedyServed != storm {
		t.Fatalf("GreedyServed = %d, want %d", c.GreedyServed, storm)
	}
	waitCounter(t, svc, 1, func(c Counters) int64 { return c.Upgraded })
	if c := svc.Counters(); c.Upgraded != 1 {
		t.Fatalf("Upgraded = %d, want exactly 1", c.Upgraded)
	}
	waitGoroutines(t, before)
}

// TestWarmShapeUnaffectedByBudget: a budget above the warm-path latency
// never triggers the greedy tier — the cold request lands inside the
// generous budget and the warm hit is served from the cache as before.
func TestWarmShapeUnaffectedByBudget(t *testing.T) {
	req, _ := projDeptRequest(t)
	svc := New(Options{MinimalOnly: true, MaxPlanLatency: 30 * time.Second})
	first, err := svc.Optimize(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if first.Tier != TierBackchase {
		t.Fatalf("cold tier under generous budget = %q, want backchase", first.Tier)
	}
	warm, err := svc.Optimize(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Tier != TierBackchase || !warm.CacheHit || warm.Upgraded {
		t.Fatalf("warm response: tier=%q cacheHit=%v upgraded=%v, want backchase/true/false",
			warm.Tier, warm.CacheHit, warm.Upgraded)
	}
	if c := svc.Counters(); c.GreedyServed != 0 || c.Upgraded != 0 {
		t.Fatalf("tier counters moved on warm path: %+v", c)
	}
}
