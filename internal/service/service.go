// Package service is the concurrent serving layer over the chase &
// backchase optimizer: one long-lived Service handles Optimize requests
// from many goroutines at once, the shape the paper's universal-plan
// optimizer takes when it runs as persistent infrastructure between
// logical queries and physical access paths rather than as a one-shot
// library call.
//
// Three mechanisms make it serve rather than serialize:
//
//   - the backchase plan cache (backchase.PlanCache) is a sharded true-LRU
//     keyed by the canonical, renaming-invariant root signature, so
//     repeated — even alpha-renamed — query shapes skip the exponential
//     backchase entirely and concurrent shapes do not contend on one lock;
//   - singleflight coalescing: K concurrent requests for alpha-equivalent
//     queries trigger exactly one optimizer run and K-1 waiters, each
//     cancellable without cancelling the flight or poisoning the cache;
//   - atomic statistics hot-swap: SetStats installs a new cost.Stats
//     snapshot with one pointer store and invalidates only the cache
//     entries whose statistics fingerprint differs, so serving continues
//     uninterrupted through a stats refresh.
//
// With Options.MaxPlanLatency set, serving is additionally two-tiered:
// a request whose backchase flight has not landed within the budget is
// answered immediately from the instant tier (internal/greedy — a
// statistics-free, always-correct join order built in microseconds),
// while the flight continues detached and upgrades the plan cache when
// it lands, so the shape's later requests serve the backchase-cheapest
// plan. Response.Tier says which tier answered. Tiering is adaptive: a
// bounded latency predictor (LatencyPredictor) learns each shape
// family's flight latency as flights land, and Optimize uses it to skip
// the budgeted machinery in both directions — predicted-fast shapes
// wait synchronously with no timer, predicted-slow shapes serve the
// greedy tier immediately with no wait; only unknown shapes pay the
// budgeted wait. Response.TierReason names the branch taken, and
// per-tier latency histograms (Histograms) expose the resulting
// distributions.
//
// Beyond planning, the Service also answers queries: InstallInstance
// registers named data instances (hot-swappable exactly like SetStats),
// and Query runs Optimize and then executes the delivered plan against
// the named instance through the streaming batch engine, with
// per-request cancellation, a result row cap, and Measure-based work
// accounting (query.go, instance.go).
package service

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cnb/internal/backchase"
	"cnb/internal/chase"
	"cnb/internal/core"
	"cnb/internal/cost"
	"cnb/internal/greedy"
	"cnb/internal/optimizer"
)

// Options configures a Service. The zero value is usable: uniform cost
// defaults, exhaustive backchase, a DefaultPlanCacheSize cache across
// DefaultPlanCacheShards shards, all cores.
type Options struct {
	// Parallelism is the backchase worker count per flight
	// (0 = all cores, 1 = serial).
	Parallelism int
	// CacheSize bounds the plan cache (0 = backchase.DefaultPlanCacheSize,
	// < 0 = unbounded).
	CacheSize int
	// CacheShards is the plan cache stripe count
	// (0 = backchase.DefaultPlanCacheShards).
	CacheShards int
	// CostBounded switches the backchase to cost-bounded best-first search
	// whenever a statistics snapshot is installed. Note that cost-bounded
	// results are schedule-dependent subsets, so the plan cache keys them
	// by worker count as well (see backchase cacheKey).
	CostBounded bool
	// Stats is the initial statistics snapshot (nil = uniform defaults).
	// Replace it at runtime with SetStats.
	Stats *cost.Stats
	// MinimalOnly restricts the per-request candidate pool to backchase
	// normal forms (optimizer.Options.MinimalOnly). The backchase itself
	// — and therefore the cache entry — is unchanged; what it saves is
	// the per-request phase-3 re-ranking of every explored lattice state,
	// the dominant cost of a cache-hit request on large workloads.
	// Serving deployments that only ever execute the chosen plan
	// typically want this on.
	MinimalOnly bool
	// Chase tunes the chase budgets of every flight. Chase.Metrics, when
	// nil, is replaced by the service's own Metrics instance so /metrics
	// style consumers always see the chase counters.
	Chase chase.Options
	// MaxPlanLatency, when positive, is the plan-latency SLO that turns
	// on two-tier serving: Optimize waits at most this long for the
	// backchase flight to land and otherwise answers immediately with the
	// greedy tier (internal/greedy — a statistics-free join order, built
	// in microseconds, always correct). The flight continues detached —
	// surviving every caller's cancellation — and upgrades the plan-cache
	// entry when it lands, so subsequent requests for the shape serve the
	// backchase-cheapest plan. Zero (the default) keeps serving fully
	// synchronous. Warm shapes are unaffected as long as the budget
	// exceeds the cache-hit flight latency (~1ms; budgets of a few ms up
	// are safe).
	//
	// With the budget set, serving is additionally adaptive: the latency
	// predictor (see Predictor) learns each shape family's flight latency,
	// and Optimize consults it per request. A shape predicted to land
	// within FastPlanThreshold skips the budgeted machinery entirely — no
	// greedy detour, no timer, a plain synchronous wait. A shape predicted
	// to miss is served the greedy tier immediately with no timed wait at
	// all, while its flight proceeds detached exactly as on a budget
	// expiry. Only unknown shapes pay the budgeted wait.
	MaxPlanLatency time.Duration
	// FastPlanThreshold is the predicted flight latency at or below which
	// a shape family is served synchronously instead of through the
	// budgeted machinery (only meaningful with MaxPlanLatency > 0).
	// Zero defaults it to MaxPlanLatency itself: "predicted to land
	// within the budget" then means "the timer would not have fired".
	FastPlanThreshold time.Duration
	// Predictor, when non-nil, is the latency side table the adaptive
	// tier decisions consult and train; nil gives the Service its own
	// private table (capacity DefaultPredictorCapacity). Supplying one
	// lets learned budgets outlive a Service — e.g. across a plan-cache
	// rebuild or a restart that re-news the Service — and lets tests
	// train on one Service and serve on another.
	Predictor *LatencyPredictor
}

// Tier identifies which optimizer tier produced a Response's plan.
type Tier string

// The two serving tiers: the full chase & backchase path, and the
// instant statistics-free greedy planner served when the backchase
// flight exceeds Options.MaxPlanLatency.
const (
	TierBackchase Tier = "backchase"
	TierGreedy    Tier = "greedy"
)

// TierReason explains why a Response was routed to its tier — which
// branch of the adaptive dispatch the request took, independent of how
// that branch turned out (a budgeted wait can still land in time and
// serve the backchase tier).
type TierReason string

// The four dispatch branches of Service.Optimize.
const (
	// ReasonSynchronous: two-tier serving is off (MaxPlanLatency == 0);
	// the request waited for the flight unconditionally.
	ReasonSynchronous TierReason = "synchronous"
	// ReasonBudgeted: the shape family was unknown to the predictor, so
	// the request took the classic budgeted wait (greedy tier on expiry).
	ReasonBudgeted TierReason = "budgeted"
	// ReasonPredictedFast: the predictor expected the flight to land
	// within FastPlanThreshold (or the shape's plan was already upgraded
	// by a detached flight), so the request waited synchronously with no
	// timer and no greedy detour.
	ReasonPredictedFast TierReason = "predicted-fast"
	// ReasonPredictedSlow: the predictor expected the flight to miss the
	// budget, so the request was served the greedy tier immediately with
	// no timed wait, its flight proceeding detached.
	ReasonPredictedSlow TierReason = "predicted-slow"
)

// Request is one optimization request. Deps and PhysicalNames play the
// roles of optimizer.Options.Deps / PhysicalNames; they are part of the
// coalescing key, so requests only coalesce when they agree on the
// dependency set and the physical restriction, not merely on the query.
type Request struct {
	Query         *core.Query
	Deps          []*core.Dependency
	PhysicalNames map[string]bool
}

// Response is the outcome of one request.
type Response struct {
	// Result is the full optimizer result. Coalesced responses share the
	// flight owner's Result — treat it as read-only (the package-wide
	// convention for plans anyway).
	Result *optimizer.Result
	// Coalesced reports that this request was served as a singleflight
	// waiter on another request's optimizer run.
	Coalesced bool
	// CacheHit reports that the backchase phase was served from the plan
	// cache (chase phase still ran — it is polynomial and cheap).
	CacheHit bool
	// Tier reports which planner answered: TierBackchase for the full
	// path (synchronous or landed within MaxPlanLatency), TierGreedy when
	// the latency budget expired and the instant tier served instead.
	// Empty only on errors.
	Tier Tier
	// Upgraded reports that this shape's plan was (at some point) put in
	// place by a detached flight landing after its first callers were
	// served the greedy tier — i.e. the response carries a plan that
	// earlier requests saw only in greedy form. Always false on
	// TierGreedy responses.
	Upgraded bool
	// TierReason records which adaptive-dispatch branch routed the
	// request (see TierReason). Empty only on errors.
	TierReason TierReason
}

// Counters is a point-in-time snapshot of the service's request
// accounting. All fields are maintained with atomics.
type Counters struct {
	// Requests counts Optimize calls accepted (valid query).
	Requests int64
	// Errors counts Optimize calls that returned an error, including
	// waiter cancellations.
	Errors int64
	// Coalesced counts requests served as singleflight waiters.
	Coalesced int64
	// Flights counts optimizer executions started (requests minus
	// coalesced waiters, minus requests rejected before flying).
	Flights int64
	// BackchaseRuns counts flights whose backchase actually enumerated
	// the lattice rather than being served from the plan cache — the
	// number E16 proves sublinear in the request count.
	BackchaseRuns int64
	// StatsSwaps counts SetStats calls.
	StatsSwaps int64
	// GreedyServed counts responses answered by the greedy tier because
	// the backchase flight exceeded Options.MaxPlanLatency.
	GreedyServed int64
	// Upgraded counts detached flights that landed after serving at
	// least one greedy-tier response — each is one plan-cache entry
	// upgraded from the greedy plan to the backchase-cheapest one.
	Upgraded int64
	// PredictedFast counts requests routed ReasonPredictedFast: the
	// predictor (or an upgraded plan-cache entry) promised a fast flight,
	// so they waited synchronously with no timer.
	PredictedFast int64
	// PredictedSlow counts requests routed ReasonPredictedSlow: served
	// the greedy tier immediately, no timed wait at all.
	PredictedSlow int64
	// PredictionMiss counts ReasonPredictedFast requests whose
	// synchronous wait then exceeded MaxPlanLatency anyway — the
	// predictor's broken promises, the adaptive path's error signal.
	PredictionMiss int64
	// BudgetedWaits counts requests routed ReasonBudgeted — unknown
	// shape families that paid the classic timed wait. Under a trained
	// predictor this is the number E21 gates to zero.
	BudgetedWaits int64
}

// statsSnapshot pairs a statistics pointer with its precomputed
// fingerprint so a hot path never re-renders it.
type statsSnapshot struct {
	stats *cost.Stats
	fp    string
}

// Service is the concurrent optimizer server. Safe for use by any number
// of goroutines; construct with New.
type Service struct {
	opts    Options
	cache   *backchase.PlanCache
	metrics *chase.Metrics
	stats   atomic.Pointer[statsSnapshot]
	group   flightGroup

	// swapMu serializes cache invalidation sweeps (SetStats and the
	// post-flight re-sweep) against snapshot installation, so a sweep
	// always runs with the truly current fingerprint — without it a
	// delayed sweep could carry a fingerprint already obsoleted by a
	// later swap and drop entries that are valid under the newest
	// snapshot. Optimize's hot path never touches it.
	swapMu sync.Mutex

	// instanceRegistry holds the named data instances Query executes
	// against (instance.go).
	instanceRegistry

	// upgradeMu guards upgradedKeys, the set of flight keys whose
	// detached flight landed after greedy-tier responses were served —
	// the source of Response.Upgraded on later hits. Bounded by
	// maxUpgradedKeys (a cold-shape working set far larger than any plan
	// cache); on overflow the set resets, which only downgrades the
	// informational Upgraded flag, never a plan.
	upgradeMu    sync.Mutex
	upgradedKeys map[string]struct{}

	// predictor is the per-shape flight-latency side table behind the
	// adaptive tier decisions (predictor.go); hists are the per-tier
	// latency distributions /metrics exports (histogram.go).
	predictor *LatencyPredictor
	hists     tierHistograms

	requests       atomic.Int64
	errors         atomic.Int64
	coalesced      atomic.Int64
	flights        atomic.Int64
	backchaseRuns  atomic.Int64
	statsSwaps     atomic.Int64
	greedyServed   atomic.Int64
	upgraded       atomic.Int64
	predictedFast  atomic.Int64
	predictedSlow  atomic.Int64
	predictionMiss atomic.Int64
	budgetedWaits  atomic.Int64
}

// maxUpgradedKeys bounds the upgraded-shapes set so an adversarial
// stream of unique cold shapes cannot grow service memory without bound.
const maxUpgradedKeys = 1 << 16

// New builds a Service.
func New(opts Options) *Service {
	size := opts.CacheSize
	if size == 0 {
		size = backchase.DefaultPlanCacheSize
	}
	shards := opts.CacheShards
	if shards == 0 {
		shards = backchase.DefaultPlanCacheShards
	}
	m := opts.Chase.Metrics
	if m == nil {
		m = &chase.Metrics{}
	}
	opts.Chase.Metrics = m
	pred := opts.Predictor
	if pred == nil {
		pred = NewLatencyPredictor(0)
	}
	s := &Service{
		opts:      opts,
		cache:     backchase.NewPlanCacheSharded(size, shards),
		metrics:   m,
		predictor: pred,
	}
	s.group.onUpgrade = s.noteUpgrade
	s.stats.Store(newSnapshot(opts.Stats))
	return s
}

// noteUpgrade records a detached flight's landing: counts it and marks
// the flight key so later responses for the shape report Upgraded.
func (s *Service) noteUpgrade(key string) {
	s.upgraded.Add(1)
	s.upgradeMu.Lock()
	if len(s.upgradedKeys) >= maxUpgradedKeys {
		s.upgradedKeys = nil
	}
	if s.upgradedKeys == nil {
		s.upgradedKeys = make(map[string]struct{})
	}
	s.upgradedKeys[key] = struct{}{}
	s.upgradeMu.Unlock()
}

// wasUpgraded reports whether the shape's plan was installed by a
// detached-flight upgrade.
func (s *Service) wasUpgraded(key string) bool {
	s.upgradeMu.Lock()
	_, ok := s.upgradedKeys[key]
	s.upgradeMu.Unlock()
	return ok
}

func newSnapshot(st *cost.Stats) *statsSnapshot {
	snap := &statsSnapshot{stats: st}
	if st != nil {
		snap.fp = st.Fingerprint()
	}
	return snap
}

// Optimize runs Algorithm 1 on the request, coalescing with concurrent
// alpha-equivalent requests and serving repeated shapes from the plan
// cache. ctx cancels only this caller's wait: if other requests share the
// flight it keeps running for them. With Options.MaxPlanLatency set, a
// flight that misses the budget yields an immediate greedy-tier response
// (Response.Tier == TierGreedy) and continues detached until it lands
// and upgrades the plan cache.
func (s *Service) Optimize(ctx context.Context, req Request) (*Response, error) {
	if req.Query == nil {
		s.errors.Add(1)
		return nil, fmt.Errorf("service: nil query")
	}
	if err := req.Query.Validate(); err != nil {
		s.errors.Add(1)
		return nil, fmt.Errorf("service: %w", err)
	}
	s.requests.Add(1)
	snap := s.stats.Load()
	key := flightKey(req, snap.fp, s.opts.CostBounded)
	fly := func(fctx context.Context) (*optimizer.Result, error) {
		s.flights.Add(1)
		flyStart := time.Now()
		r, err := optimizer.OptimizeContext(fctx, req.Query, optimizer.Options{
			Deps:          req.Deps,
			PhysicalNames: req.PhysicalNames,
			Stats:         snap.stats,
			CostBounded:   s.opts.CostBounded && snap.stats != nil,
			Parallelism:   s.opts.Parallelism,
			MinimalOnly:   s.opts.MinimalOnly,
			Chase:         s.opts.Chase,
			Backchase:     backchase.Options{Cache: s.cache},
		})
		if err == nil {
			// Train the predictor on every landing — the runner executes
			// this closure even for a detached flight all callers
			// abandoned, so shape families learn from exactly the flights
			// that happened, not just the ones somebody waited for. Runs
			// before the flight's done channel closes, so by the time any
			// response for this flight is visible the prediction is too.
			s.predictor.observe(key, time.Since(flyStart), r.BackchaseCached)
			if !r.BackchaseCached {
				s.backchaseRuns.Add(1)
			}
		}
		// A SetStats landing mid-flight sweeps the cache before this
		// flight's own put (tagged with the snapshot it started under)
		// arrives, which would leave an unreachable stale-fingerprint
		// entry alive until the next swap. Re-sweep when the snapshot
		// moved under us: every interleaving of put and swap is covered,
		// because whichever happens last performs an invalidation that
		// sees the other's work. The sweep itself runs under swapMu with
		// a re-loaded snapshot, so it always uses the current fingerprint
		// and cannot drop entries a newer swap made valid. Only
		// cost-bounded flights tag entries with a fingerprint, so
		// stats-free serving never pays any of this.
		if s.opts.CostBounded && snap.fp != "" && s.stats.Load() != snap {
			s.swapMu.Lock()
			if cur := s.stats.Load(); cur != snap && cur.fp != snap.fp {
				s.cache.InvalidateStats(cur.fp)
			}
			s.swapMu.Unlock()
		}
		return r, err
	}

	var (
		res       *optimizer.Result
		coalesced bool
		err       error
	)
	start := time.Now()
	landed := true
	reason := ReasonSynchronous
	if s.opts.MaxPlanLatency > 0 {
		reason = s.classify(key)
		switch reason {
		case ReasonPredictedFast:
			// Promised fast: plain synchronous wait, no timer, no greedy
			// detour. A promise the flight breaks is counted as a miss.
			s.predictedFast.Add(1)
			res, coalesced, err = s.group.do(ctx, key, fly)
			if err == nil && time.Since(start) > s.opts.MaxPlanLatency {
				s.predictionMiss.Add(1)
			}
		case ReasonPredictedSlow:
			// Promised slow: the timed wait cannot pay off, so skip it and
			// serve the greedy tier now; the flight proceeds detached and
			// upgrades the cache when it lands.
			s.predictedSlow.Add(1)
			res, coalesced, landed, err = s.group.doImmediate(ctx, key, fly)
		default:
			// Unknown shape: the classic PR 9 budgeted wait.
			s.budgetedWaits.Add(1)
			res, coalesced, landed, err = s.group.doDetached(ctx, key, s.opts.MaxPlanLatency, fly)
		}
	} else {
		res, coalesced, err = s.group.do(ctx, key, fly)
	}
	if coalesced {
		s.coalesced.Add(1)
	}
	if err != nil {
		s.errors.Add(1)
		return nil, err
	}
	if !landed {
		s.greedyServed.Add(1)
		s.hists.greedy.Record(time.Since(start))
		return &Response{
			Result:     s.greedyResult(req, snap.stats),
			Coalesced:  coalesced,
			Tier:       TierGreedy,
			TierReason: reason,
		}, nil
	}
	upgraded := s.wasUpgraded(key)
	if upgraded {
		s.hists.backchaseUpgraded.Record(time.Since(start))
	} else {
		s.hists.backchaseSync.Record(time.Since(start))
	}
	return &Response{
		Result:     res,
		Coalesced:  coalesced,
		CacheHit:   res.BackchaseCached,
		Tier:       TierBackchase,
		Upgraded:   upgraded,
		TierReason: reason,
	}, nil
}

// classify picks the adaptive-dispatch branch for a shape family under
// two-tier serving. An upgraded plan-cache entry overrides a slow
// prediction: the upgrade means the backchase-cheapest plan is sitting
// in the cache, so the next flight is a ~ms cache hit regardless of how
// long the enumeration that produced it took (the EWMA still remembers
// the enumeration until a cache-hit landing overwrites it).
func (s *Service) classify(key string) TierReason {
	if s.wasUpgraded(key) {
		return ReasonPredictedFast
	}
	ewma, known := s.predictor.predict(key)
	if !known {
		return ReasonBudgeted
	}
	if ewma <= s.fastThreshold() {
		return ReasonPredictedFast
	}
	return ReasonPredictedSlow
}

// fastThreshold resolves Options.FastPlanThreshold's zero default.
func (s *Service) fastThreshold() time.Duration {
	if s.opts.FastPlanThreshold > 0 {
		return s.opts.FastPlanThreshold
	}
	return s.opts.MaxPlanLatency
}

// PredictorLen reports the number of shape families the latency
// predictor currently tracks (exported on /metrics as
// predictor_entries).
func (s *Service) PredictorLen() int {
	return s.predictor.Len()
}

// greedyResult builds the instant-tier response body: the greedy plan as
// the sole candidate, costed under the current statistics snapshot (or
// uniform defaults) so EstCost-style consumers still see a number. No
// chase ran, so Universal is the request query itself; States/Pruned
// stay zero — greedy planning explores nothing.
func (s *Service) greedyResult(req Request, st *cost.Stats) *optimizer.Result {
	plan := greedy.Plan(req.Query)
	if st == nil {
		st = cost.NewStats()
	}
	c, card := st.Estimate(plan)
	r := &optimizer.Result{
		Universal:  req.Query,
		Minimal:    []*core.Query{plan},
		Candidates: []cost.RankedPlan{{Query: plan, Cost: c, Card: card}},
	}
	r.Best = &r.Candidates[0]
	return r
}

// SetStats atomically installs a new statistics snapshot (nil reverts to
// uniform defaults) and invalidates the plan-cache entries whose
// statistics fingerprint differs from the new snapshot's; it returns the
// number invalidated. In-flight requests finish under the snapshot they
// started with; requests arriving after the store see the new one.
// Statistics-independent cache entries (exhaustive backchase runs)
// survive every swap — their Results do not depend on stats, which only
// rank the candidates per request.
func (s *Service) SetStats(st *cost.Stats) int {
	snap := newSnapshot(st)
	s.swapMu.Lock()
	defer s.swapMu.Unlock()
	s.stats.Store(snap)
	s.statsSwaps.Add(1)
	return s.cache.InvalidateStats(snap.fp)
}

// Stats returns the current statistics snapshot (nil when serving with
// uniform defaults).
func (s *Service) Stats() *cost.Stats {
	return s.stats.Load().stats
}

// Counters returns a snapshot of the request accounting.
func (s *Service) Counters() Counters {
	return Counters{
		Requests:       s.requests.Load(),
		Errors:         s.errors.Load(),
		Coalesced:      s.coalesced.Load(),
		Flights:        s.flights.Load(),
		BackchaseRuns:  s.backchaseRuns.Load(),
		StatsSwaps:     s.statsSwaps.Load(),
		GreedyServed:   s.greedyServed.Load(),
		Upgraded:       s.upgraded.Load(),
		PredictedFast:  s.predictedFast.Load(),
		PredictedSlow:  s.predictedSlow.Load(),
		PredictionMiss: s.predictionMiss.Load(),
		BudgetedWaits:  s.budgetedWaits.Load(),
	}
}

// CacheCounters returns the plan cache's aggregated counters.
func (s *Service) CacheCounters() backchase.CacheCounters {
	return s.cache.Counters()
}

// CacheLen returns the number of plan-cache entries.
func (s *Service) CacheLen() int {
	return s.cache.Len()
}

// ChaseMetrics returns the chase work counters shared by every flight.
func (s *Service) ChaseMetrics() *chase.Metrics {
	return s.metrics
}

// flightKey renders everything that decides a response — the canonical
// query signature, the dependency set, the physical restriction, the
// statistics fingerprint and the search mode — so two requests coalesce
// exactly when an owner's result can serve both.
//
// The signature comes from CanonicalSignature, which is invariant under
// arbitrary variable renaming, binding reorder and condition
// reorder/flip: it is the minimum positional signature over all
// dependency-valid binding orders, computed by an ordered search with
// color-refinement and automorphism pruning (core/canon.go). Any two
// alpha-equivalent requests — including adversarial tie-reordering
// renames of same-range self-joins — therefore coalesce onto one flight
// and share one cache entry. This matches the backchase plan-cache key,
// which uses the same canonical form.
//
// This intentionally parallels (not shares) the backchase cacheKey: the
// flight keys the *original* query before the chase while the plan cache
// keys the universal plan after it, so the two signatures are computed
// over different queries; only the deps rendering is repeated, and the
// whole key build is a small slice of the ~300µs warm request
// (BenchmarkServiceWarmOptimize).
func flightKey(req Request, statsFP string, costBounded bool) string {
	var b strings.Builder
	b.WriteString(req.Query.CanonicalSignature())
	b.WriteString("\x00deps\x00")
	for _, d := range req.Deps {
		b.WriteString(d.String())
		b.WriteByte('\x00')
	}
	b.WriteString("\x00phys\x00")
	if req.PhysicalNames != nil {
		names := make([]string, 0, len(req.PhysicalNames))
		for n, ok := range req.PhysicalNames {
			if ok {
				names = append(names, n)
			}
		}
		sort.Strings(names)
		for _, n := range names {
			b.WriteString(n)
			b.WriteByte(';')
		}
	} else {
		b.WriteString("<nil>")
	}
	fmt.Fprintf(&b, "\x00stats\x00%s\x00cb=%v", statsFP, costBounded)
	return b.String()
}
