package service

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cnb/internal/core"
	"cnb/internal/engine"
	"cnb/internal/instance"
	"cnb/internal/workload"
)

// projDeptQuerySetup installs a generated ProjDept instance under the
// given name and returns the service, the request, and the instance.
func projDeptQuerySetup(t *testing.T, name string, gen workload.GenOptions) (*Service, Request, *instance.Instance) {
	t.Helper()
	pd, err := workload.NewProjDept()
	if err != nil {
		t.Fatal(err)
	}
	in := pd.Generate(gen)
	svc := New(Options{})
	if _, err := svc.InstallInstance(name, in); err != nil {
		t.Fatal(err)
	}
	return svc, Request{
		Query:         pd.Q,
		Deps:          pd.AllDeps(),
		PhysicalNames: pd.Physical.NameSet(),
	}, in
}

// rowsAsSet rebuilds a result set from a QueryResponse's row slice.
func rowsAsSet(rows []instance.Value) *instance.Set {
	s := instance.NewSet()
	for _, v := range rows {
		s.Add(v)
	}
	return s
}

// TestQueryMatchesRowEngine is the differential check behind the /query
// contract: the served result — optimizer-delivered plan, streaming
// execution — must equal the row engine's evaluation of the original
// logical query on the same instance, for both the relational running
// example and a star workload.
func TestQueryMatchesRowEngine(t *testing.T) {
	t.Run("projdept", func(t *testing.T) {
		svc, req, in := projDeptQuerySetup(t, "pd",
			workload.GenOptions{NumDepts: 30, ProjsPerDept: 8, CitiBankShare: 0.2, Seed: 7})
		resp, err := svc.Query(context.Background(), QueryRequest{Request: req, Instance: "pd", MaxRows: -1})
		if err != nil {
			t.Fatal(err)
		}
		want, err := engine.Execute(req.Query, in)
		if err != nil {
			t.Fatal(err)
		}
		if got := rowsAsSet(resp.Rows); !got.Equal(want) {
			t.Fatalf("served %d rows != row engine %d rows", got.Len(), want.Len())
		}
		if resp.ResultRows != want.Len() {
			t.Fatalf("ResultRows = %d, want %d", resp.ResultRows, want.Len())
		}
		if resp.Measure.Evals == 0 || resp.Measure.OutRows == 0 {
			t.Fatalf("executed plan reported empty measure: %+v", resp.Measure)
		}
	})
	t.Run("star", func(t *testing.T) {
		s, err := workload.NewStar(workload.StarConfig{
			Dims: 1, FactIndexes: 1, DimIndex: true,
			Select: true, SelectA: 2, FKConstraints: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		in := s.Generate(workload.StarGenOptions{NumFact: 2000, NumDim: 40, DomA: 8, Seed: 42})
		svc := New(Options{Stats: s.SyntheticStats(workload.StarGenOptions{NumFact: 2000, NumDim: 40, DomA: 8, Seed: 42})})
		if _, err := svc.InstallInstance("star", in); err != nil {
			t.Fatal(err)
		}
		req := Request{Query: s.Q, Deps: s.Deps, PhysicalNames: s.Physical.NameSet()}
		resp, err := svc.Query(context.Background(), QueryRequest{Request: req, Instance: "star", MaxRows: -1})
		if err != nil {
			t.Fatal(err)
		}
		want, err := engine.Execute(s.Q, in)
		if err != nil {
			t.Fatal(err)
		}
		if got := rowsAsSet(resp.Rows); !got.Equal(want) {
			t.Fatalf("served %d rows != row engine %d rows", got.Len(), want.Len())
		}
	})
}

// TestQueryRowCapTruncation: MaxRows caps the encoded rows and sets the
// truncation flag while ResultRows keeps the full cardinality; negative
// MaxRows disables the cap; the retained prefix is deterministic.
func TestQueryRowCapTruncation(t *testing.T) {
	svc, req, in := projDeptQuerySetup(t, "pd",
		workload.GenOptions{NumDepts: 40, ProjsPerDept: 10, CitiBankShare: 0.5, Seed: 3})
	want, err := engine.Execute(req.Query, in)
	if err != nil {
		t.Fatal(err)
	}
	if want.Len() < 5 {
		t.Fatalf("workload too small for a truncation test: %d rows", want.Len())
	}

	capped, err := svc.Query(context.Background(), QueryRequest{Request: req, Instance: "pd", MaxRows: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(capped.Rows) != 3 || !capped.Truncated {
		t.Fatalf("MaxRows=3: got %d rows, truncated=%v", len(capped.Rows), capped.Truncated)
	}
	if capped.ResultRows != want.Len() {
		t.Fatalf("ResultRows = %d, want full cardinality %d", capped.ResultRows, want.Len())
	}

	full, err := svc.Query(context.Background(), QueryRequest{Request: req, Instance: "pd", MaxRows: -1})
	if err != nil {
		t.Fatal(err)
	}
	if full.Truncated || len(full.Rows) != want.Len() {
		t.Fatalf("MaxRows=-1: got %d rows, truncated=%v, want %d", len(full.Rows), full.Truncated, want.Len())
	}
	// The cap keeps the sorted-key prefix, so capped rows are a prefix of
	// the full encoding.
	for i, v := range capped.Rows {
		if full.Rows[i].Key() != v.Key() {
			t.Fatalf("capped row %d is not the deterministic prefix", i)
		}
	}
}

// TestQueryExplain: explain mode must plan (hitting the cache like any
// request) but not execute — operator tree and estimated cost instead of
// rows, no Measure counters, and the instance's cumulative Rows/Evals
// unchanged.
func TestQueryExplain(t *testing.T) {
	svc, req, _ := projDeptQuerySetup(t, "pd", workload.GenOptions{Seed: 1})
	resp, err := svc.Query(context.Background(), QueryRequest{Request: req, Instance: "pd", Explain: true})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Explain == "" || resp.Rows != nil || resp.Measure.Evals != 0 {
		t.Fatalf("explain mode: explain=%q rows=%v measure=%+v", resp.Explain, resp.Rows, resp.Measure)
	}
	if resp.EstCost != resp.Optimize.Result.Best.Cost {
		t.Fatalf("EstCost = %g, want best cost %g", resp.EstCost, resp.Optimize.Result.Best.Cost)
	}
	qc, ok := svc.InstanceCountersFor("pd")
	if !ok || qc.Queries != 1 || qc.Evals != 0 || qc.ExecErrors != 0 {
		t.Fatalf("explain counters: %+v ok=%v", qc, ok)
	}

	// A second, executing request over the same shape must be a cache hit.
	resp2, err := svc.Query(context.Background(), QueryRequest{Request: req, Instance: "pd"})
	if err != nil {
		t.Fatal(err)
	}
	if !resp2.Optimize.CacheHit {
		t.Fatal("second request over the same shape was not a cache hit")
	}
}

// TestQueryUnknownInstance: the typed error HTTP frontends map to 404.
func TestQueryUnknownInstance(t *testing.T) {
	svc, req, _ := projDeptQuerySetup(t, "pd", workload.GenOptions{Seed: 1})
	_, err := svc.Query(context.Background(), QueryRequest{Request: req, Instance: "nope"})
	if !errors.Is(err, ErrUnknownInstance) {
		t.Fatalf("err = %v, want ErrUnknownInstance", err)
	}
}

// failingLookupSetup returns a service with an instance where the only
// candidate plan dereferences a dictionary key the data never populated.
func failingLookupSetup(t *testing.T) (*Service, Request) {
	t.Helper()
	q := &core.Query{
		Out:      core.Lk(core.Name("M"), core.Prj(core.V("x"), "A")),
		Bindings: []core.Binding{{Var: "x", Range: core.Name("R")}},
	}
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	in := instance.NewInstance().
		Bind("R", instance.NewSet(instance.StructOf("A", instance.Int(1)))).
		Bind("M", instance.NewDict().Put(instance.Int(2), instance.Int(20)))
	svc := New(Options{})
	if _, err := svc.InstallInstance("db", in); err != nil {
		t.Fatal(err)
	}
	return svc, Request{Query: q}
}

// TestQueryExecErrorSurfacing: when every ranked candidate fails with a
// failing lookup, Query returns ErrNoExecutablePlan (the HTTP 4xx), the
// instance's ExecErrors counter moves while Queries does not, and a
// hot-swap that repairs the data makes the same cached plan execute.
func TestQueryExecErrorSurfacing(t *testing.T) {
	svc, req := failingLookupSetup(t)
	_, err := svc.Query(context.Background(), QueryRequest{Request: req, Instance: "db"})
	if !errors.Is(err, ErrNoExecutablePlan) {
		t.Fatalf("err = %v, want ErrNoExecutablePlan", err)
	}
	qc, _ := svc.InstanceCountersFor("db")
	if qc.Queries != 0 || qc.ExecErrors != 1 {
		t.Fatalf("after exec error: %+v, want Queries=0 ExecErrors=1", qc)
	}

	// Repair the data under the same name: the plan cache still holds the
	// shape, so the retry is a warm hit that now executes.
	repaired := instance.NewInstance().
		Bind("R", instance.NewSet(instance.StructOf("A", instance.Int(1)))).
		Bind("M", instance.NewDict().Put(instance.Int(1), instance.Int(10)))
	if _, err := svc.InstallInstance("db", repaired); err != nil {
		t.Fatal(err)
	}
	resp, err := svc.Query(context.Background(), QueryRequest{Request: req, Instance: "db"})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Optimize.CacheHit {
		t.Fatal("retry after hot-swap was not a plan-cache hit")
	}
	if resp.ResultRows != 1 || resp.Rows[0].Key() != instance.Int(10).Key() {
		t.Fatalf("repaired result = %v", resp.Rows)
	}
	qc, _ = svc.InstanceCountersFor("db")
	if qc.Queries != 1 || qc.ExecErrors != 1 {
		t.Fatalf("after repair: %+v, want Queries=1 ExecErrors=1", qc)
	}
}

// TestQueryInstanceHotSwapRace hammers Query concurrently with
// InstallInstance hot-swaps between two differently-sized instances.
// Every response must be internally consistent — a result cardinality
// belonging entirely to one snapshot, never a mix — and error-free;
// the -race run (make serve-load) checks the registry's synchronization.
func TestQueryInstanceHotSwapRace(t *testing.T) {
	pd, err := workload.NewProjDept()
	if err != nil {
		t.Fatal(err)
	}
	genA := workload.GenOptions{NumDepts: 10, ProjsPerDept: 4, CitiBankShare: 0.5, Seed: 11}
	genB := workload.GenOptions{NumDepts: 25, ProjsPerDept: 6, CitiBankShare: 0.5, Seed: 12}
	inA, inB := pd.Generate(genA), pd.Generate(genB)
	req := Request{Query: pd.Q, Deps: pd.AllDeps(), PhysicalNames: pd.Physical.NameSet()}

	wantA, err := engine.Execute(pd.Q, inA)
	if err != nil {
		t.Fatal(err)
	}
	wantB, err := engine.Execute(pd.Q, inB)
	if err != nil {
		t.Fatal(err)
	}
	if wantA.Len() == wantB.Len() {
		t.Fatalf("instances must differ in cardinality to detect snapshot mixing (both %d)", wantA.Len())
	}

	svc := New(Options{})
	if _, err := svc.InstallInstance("pd", inA); err != nil {
		t.Fatal(err)
	}
	// Warm the plan cache so the race focuses on the execution path.
	if _, err := svc.Query(context.Background(), QueryRequest{Request: req, Instance: "pd"}); err != nil {
		t.Fatal(err)
	}

	const (
		readers          = 4
		queriesPerReader = 20
		swaps            = 40
	)
	var (
		stop atomic.Bool
		wg   sync.WaitGroup
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer stop.Store(true)
		for i := 0; i < swaps; i++ {
			in := inA
			if i%2 == 0 {
				in = inB
			}
			if _, err := svc.InstallInstance("pd", in); err != nil {
				t.Errorf("swap %d: %v", i, err)
				return
			}
		}
	}()
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < queriesPerReader || !stop.Load(); i++ {
				resp, err := svc.Query(context.Background(), QueryRequest{Request: req, Instance: "pd", MaxRows: -1})
				if err != nil {
					t.Errorf("query: %v", err)
					return
				}
				if resp.ResultRows != wantA.Len() && resp.ResultRows != wantB.Len() {
					t.Errorf("result cardinality %d matches neither snapshot (%d / %d)",
						resp.ResultRows, wantA.Len(), wantB.Len())
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestQueryCancellationNoGoroutineLeak cancels queries mid-stream — the
// delivered plan is an unoptimized full-scan join, so execution runs
// long enough for a few-millisecond deadline to land inside Run — and
// then requires the goroutine count to settle back to the baseline: the
// buffered pipeline stage's background prefetch goroutine must be
// joined on every exit path.
func TestQueryCancellationNoGoroutineLeak(t *testing.T) {
	s, err := workload.NewStar(workload.StarConfig{Dims: 1, Select: true, SelectA: 1})
	if err != nil {
		t.Fatal(err)
	}
	in := s.Generate(workload.StarGenOptions{NumFact: 20_000, NumDim: 200, DomA: 4, Seed: 9})
	svc := New(Options{})
	if _, err := svc.InstallInstance("star", in); err != nil {
		t.Fatal(err)
	}
	// No deps: the only candidate is the query as written (nested scans).
	req := Request{Query: s.Q}

	// Warm the plan cache so cancelled requests spend their budget in
	// execution, not planning.
	warmCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := svc.Query(warmCtx, QueryRequest{Request: req, Instance: "star"}); err != nil {
		t.Fatal(err)
	}

	before := runtime.NumGoroutine()
	cancelled := 0
	for i := 0; i < 5; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Millisecond)
		_, err := svc.Query(ctx, QueryRequest{Request: req, Instance: "star"})
		cancel()
		if err != nil {
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("unexpected error class: %v", err)
			}
			cancelled++
		}
	}
	if cancelled == 0 {
		t.Log("no request was cancelled mid-stream (fast machine); leak check still applies")
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > before {
		t.Fatalf("goroutines leaked: %d before, %d after cancelled queries", before, now)
	}
	qc, _ := svc.InstanceCountersFor("star")
	if got := qc.Queries + qc.ExecErrors; got != int64(1+5) {
		t.Fatalf("counter consistency: Queries+ExecErrors = %d, want 6 (%+v)", got, qc)
	}
}

// TestInstallInstanceSummary: the registry's rows/cardinality summaries
// and its input validation.
func TestInstallInstanceSummary(t *testing.T) {
	pd, err := workload.NewProjDept()
	if err != nil {
		t.Fatal(err)
	}
	in := pd.Generate(workload.GenOptions{NumDepts: 10, ProjsPerDept: 4, Seed: 5})
	svc := New(Options{})
	sum, err := svc.InstallInstance("pd", in)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Name != "pd" || sum.Collections != len(in.Names()) {
		t.Fatalf("summary = %+v, want name pd with %d collections", sum, len(in.Names()))
	}
	projSet, _ := in.Lookup("Proj")
	if got := sum.Cards["Proj"]; got != int64(projSet.(*instance.Set).Len()) {
		t.Fatalf("Proj cardinality = %d, want %d", got, projSet.(*instance.Set).Len())
	}
	if sum.Rows <= 0 {
		t.Fatalf("total rows = %d", sum.Rows)
	}
	if got := svc.Instances(); len(got) != 1 || got[0].Name != "pd" {
		t.Fatalf("Instances() = %+v", got)
	}
	if _, err := svc.InstallInstance("", in); err == nil {
		t.Fatal("empty name accepted")
	}
	if _, err := svc.InstallInstance("x", nil); err == nil {
		t.Fatal("nil instance accepted")
	}
}
