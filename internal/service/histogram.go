package service

import (
	"sync/atomic"
	"time"
)

// histogramBuckets is the fixed bucket count of a LatencyHistogram.
// Bucket 0 holds sub-microsecond samples; bucket i (1 <= i < 31) holds
// latencies in [2^(i-1), 2^i) microseconds; the last bucket absorbs
// everything from ~2^30 µs (~18 minutes) up, so no sample is ever
// dropped and bucket sums always equal the number of recorded requests.
const histogramBuckets = 32

// LatencyHistogram is a lock-free latency histogram with fixed
// logarithmic (powers-of-two microseconds) buckets. Recording is a
// single atomic increment on the owning bucket — cheap enough to sit on
// every served request — and Snapshot derives the total as the sum of
// the bucket counts, so "bucket counts sum to recorded requests" holds
// by construction rather than by a second counter that could drift.
type LatencyHistogram struct {
	buckets [histogramBuckets]atomic.Int64
}

// histogramBucketFor maps a latency to its bucket index.
func histogramBucketFor(d time.Duration) int {
	us := d.Microseconds()
	if us <= 0 {
		return 0
	}
	// bits.Len-style: bucket i covers [2^(i-1), 2^i) µs.
	i := 0
	for us > 0 {
		us >>= 1
		i++
	}
	if i >= histogramBuckets {
		i = histogramBuckets - 1
	}
	return i
}

// Record folds one latency sample into the histogram.
func (h *LatencyHistogram) Record(d time.Duration) {
	h.buckets[histogramBucketFor(d)].Add(1)
}

// Reset zeroes every bucket. Concurrent Record calls are not lost — they
// land either before or after the sweep — but a Snapshot raced with a
// Reset may observe a partially cleared histogram, which is the accepted
// contract for a scrape-side reset.
func (h *LatencyHistogram) Reset() {
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
}

// Snapshot returns the current bucket counts and their sum.
func (h *LatencyHistogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Counts: make([]int64, histogramBuckets)}
	for i := range h.buckets {
		c := h.buckets[i].Load()
		s.Counts[i] = c
		s.Total += c
	}
	return s
}

// HistogramSnapshot is a point-in-time copy of a LatencyHistogram.
// Counts[0] is the sub-microsecond bucket; Counts[i] for i >= 1 counts
// samples in [2^(i-1), 2^i) microseconds, with the last bucket clamping
// all larger latencies. Total is the sum of Counts.
type HistogramSnapshot struct {
	// Counts holds one entry per bucket, least-latency first.
	Counts []int64
	// Total is the sum of Counts — exactly the number of recorded samples.
	Total int64
}

// UpperBoundsMicros lists, for each non-overflow bucket, the exclusive
// upper bound in microseconds (the overflow bucket has no bound and is
// reported as -1). Useful for rendering a snapshot without hard-coding
// the bucket layout.
func (s HistogramSnapshot) UpperBoundsMicros() []int64 {
	b := make([]int64, len(s.Counts))
	for i := range b {
		if i == len(s.Counts)-1 {
			b[i] = -1
			continue
		}
		b[i] = int64(1) << i
	}
	return b
}

// tierHistograms groups the Service's per-tier latency distributions.
type tierHistograms struct {
	greedy            LatencyHistogram
	backchaseSync     LatencyHistogram
	backchaseUpgraded LatencyHistogram
	queryPlan         LatencyHistogram
	queryExec         LatencyHistogram
}

// ServiceHistograms is a point-in-time copy of every per-tier latency
// distribution the Service maintains. Greedy, BackchaseSync and
// BackchaseUpgraded partition successful Optimize calls by served tier:
// greedy-tier responses, backchase responses from a not-upgraded shape
// (synchronous or budgeted wait that landed), and backchase responses
// served after a detached upgrade. QueryPlan and QueryExec split
// successful Query calls into planning and execution time.
type ServiceHistograms struct {
	// Greedy holds end-to-end latencies of Optimize calls answered by the
	// greedy instant tier.
	Greedy HistogramSnapshot
	// BackchaseSync holds latencies of backchase-tier Optimize responses
	// whose shape had not been upgraded from a detached flight.
	BackchaseSync HistogramSnapshot
	// BackchaseUpgraded holds latencies of backchase-tier Optimize
	// responses served from a plan-cache entry a detached flight upgraded.
	BackchaseUpgraded HistogramSnapshot
	// QueryPlan holds the planning component of successful Query calls.
	QueryPlan HistogramSnapshot
	// QueryExec holds the execution component of successful Query calls.
	QueryExec HistogramSnapshot
}

// Histograms snapshots the per-tier latency distributions.
func (s *Service) Histograms() ServiceHistograms {
	return ServiceHistograms{
		Greedy:            s.hists.greedy.Snapshot(),
		BackchaseSync:     s.hists.backchaseSync.Snapshot(),
		BackchaseUpgraded: s.hists.backchaseUpgraded.Snapshot(),
		QueryPlan:         s.hists.queryPlan.Snapshot(),
		QueryExec:         s.hists.queryExec.Snapshot(),
	}
}

// ResetHistograms zeroes every per-tier latency distribution (counters
// and the predictor are untouched). Exposed to cnbd's
// -hist-reset-on-scrape mode so each scrape reports the interval since
// the previous one.
func (s *Service) ResetHistograms() {
	s.hists.greedy.Reset()
	s.hists.backchaseSync.Reset()
	s.hists.backchaseUpgraded.Reset()
	s.hists.queryPlan.Reset()
	s.hists.queryExec.Reset()
}
