package service

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"cnb/internal/chase"
	"cnb/internal/core"
	"cnb/internal/cost"
	"cnb/internal/workload"
)

// projDeptRequest builds the running example's request and an instance
// statistics snapshot.
func projDeptRequest(t *testing.T) (Request, *cost.Stats) {
	t.Helper()
	pd, err := workload.NewProjDept()
	if err != nil {
		t.Fatal(err)
	}
	in := pd.Generate(workload.GenOptions{NumDepts: 30, ProjsPerDept: 8, CitiBankShare: 0.1, Seed: 1})
	return Request{
		Query:         pd.Q,
		Deps:          pd.AllDeps(),
		PhysicalNames: pd.Physical.NameSet(),
	}, cost.FromInstance(in)
}

// TestSingleflightStorm: 8 concurrent requests for the identical query
// must trigger exactly one optimizer flight — and exactly one backchase —
// with the other 7 served as waiters sharing the owner's result. The
// chase work counter proves no hidden duplicate work: the storm performs
// exactly as many chase runs as one solo optimization.
func TestSingleflightStorm(t *testing.T) {
	req, _ := projDeptRequest(t)

	// Solo baseline: chase runs of exactly one optimization.
	solo := New(Options{})
	if _, err := solo.Optimize(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	baselineRuns := solo.ChaseMetrics().Runs.Load()
	if baselineRuns == 0 {
		t.Fatal("solo optimization recorded no chase runs — metrics not threaded")
	}

	const storm = 8
	svc := New(Options{})
	var (
		start sync.WaitGroup
		done  sync.WaitGroup
		mu    sync.Mutex
		costs []float64
	)
	start.Add(1)
	errs := make([]error, storm)
	for i := 0; i < storm; i++ {
		done.Add(1)
		go func(i int) {
			defer done.Done()
			start.Wait()
			resp, err := svc.Optimize(context.Background(), req)
			if err != nil {
				errs[i] = err
				return
			}
			mu.Lock()
			costs = append(costs, resp.Result.Best.Cost)
			mu.Unlock()
		}(i)
	}
	start.Done()
	done.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}

	c := svc.Counters()
	if c.Flights != 1 {
		t.Errorf("flights = %d, want exactly 1 for an %d-way identical storm", c.Flights, storm)
	}
	if c.BackchaseRuns != 1 {
		t.Errorf("backchase runs = %d, want exactly 1", c.BackchaseRuns)
	}
	if c.Coalesced != storm-1 {
		t.Errorf("coalesced = %d, want %d", c.Coalesced, storm-1)
	}
	if c.Requests != storm || c.Errors != 0 {
		t.Errorf("requests = %d errors = %d, want %d and 0", c.Requests, c.Errors, storm)
	}
	if got := svc.ChaseMetrics().Runs.Load(); got != baselineRuns {
		t.Errorf("storm performed %d chase runs, want the solo baseline %d", got, baselineRuns)
	}
	for _, cst := range costs {
		if cst != costs[0] {
			t.Errorf("waiters saw different best costs: %v", costs)
			break
		}
	}
}

// TestAlphaRenamedRequestsCoalesce: the flight key is the canonical
// renaming-invariant signature, so concurrent alpha-renamed variants of
// one query share a single flight.
func TestAlphaRenamedRequestsCoalesce(t *testing.T) {
	req, _ := projDeptRequest(t)
	renamed := req
	renamed.Query = req.Query.RenameVars(func(v string) string { return "zz_" + v })

	svc := New(Options{})
	var start, done sync.WaitGroup
	start.Add(1)
	errs := make([]error, 2)
	for i, r := range []Request{req, renamed} {
		done.Add(1)
		go func(i int, r Request) {
			defer done.Done()
			start.Wait()
			_, errs[i] = svc.Optimize(context.Background(), r)
		}(i, r)
	}
	start.Done()
	done.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	if c := svc.Counters(); c.Flights != 1 || c.Coalesced != 1 {
		t.Errorf("flights = %d coalesced = %d, want 1 and 1: alpha-renamed variants must share a flight", c.Flights, c.Coalesced)
	}
}

// TestAlphaRenamedShuffledRequestsCoalesce pins the canonicalization fix
// on the exact shape the old raw-name tie-break got wrong: an asymmetric
// self-join (two bindings over one relation, not interchangeable) under
// an order-REVERSING rename. Concurrent variants must share one flight,
// and a later renamed repeat must hit the plan cache instead of paying a
// second backchase.
func TestAlphaRenamedShuffledRequestsCoalesce(t *testing.T) {
	w, err := workload.NewIndexOnly(5, 9)
	if err != nil {
		t.Fatal(err)
	}
	q := &core.Query{
		Out: core.Struct(
			core.SF("C1", core.Prj(core.V("r"), "C")),
			core.SF("C2", core.Prj(core.V("s"), "C")),
		),
		Bindings: []core.Binding{
			{Var: "r", Range: core.Name("R")},
			{Var: "s", Range: core.Name("R")},
		},
		Conds: []core.Cond{{L: core.Prj(core.V("r"), "A"), R: core.Prj(core.V("s"), "B")}},
	}
	req := Request{Query: q, Deps: w.Deps}
	renamed := req
	// r -> z, s -> a: the new names sort in the opposite order, so a
	// binding-position tie-break keyed on raw names splits the pair.
	renamed.Query = q.RenameVars(func(v string) string {
		return map[string]string{"r": "z", "s": "a"}[v]
	})

	svc := New(Options{})
	var start, done sync.WaitGroup
	start.Add(1)
	errs := make([]error, 2)
	for i, r := range []Request{req, renamed} {
		done.Add(1)
		go func(i int, r Request) {
			defer done.Done()
			start.Wait()
			_, errs[i] = svc.Optimize(context.Background(), r)
		}(i, r)
	}
	start.Done()
	done.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	if c := svc.Counters(); c.Flights != 1 || c.Coalesced != 1 {
		t.Errorf("flights = %d coalesced = %d, want 1 and 1: order-reversed renames must share a flight", c.Flights, c.Coalesced)
	}

	// A sequential renamed repeat must be a plan-cache hit: still one
	// backchase run for the whole test.
	if _, err := svc.Optimize(context.Background(), renamed); err != nil {
		t.Fatal(err)
	}
	if c := svc.Counters(); c.BackchaseRuns != 1 {
		t.Errorf("backchase runs = %d after renamed repeat, want 1 (plan-cache hit)", c.BackchaseRuns)
	}
}

// waitUntil polls cond for up to 10s (generous: the race detector slows
// everything down).
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// flightRefs reads the current waiter count of the (single) in-progress
// flight, 0 when none.
func flightRefs(s *Service) int {
	s.group.mu.Lock()
	defer s.group.mu.Unlock()
	for _, f := range s.group.flights {
		return f.refs
	}
	return 0
}

// TestWaiterCancellationMidFlight: cancelling a waiter returns that
// waiter promptly with ctx.Err() while the flight owner keeps running to
// completion and stores a healthy cache entry.
func TestWaiterCancellationMidFlight(t *testing.T) {
	req, _ := projDeptRequest(t)
	svc := New(Options{})

	type outcome struct {
		resp *Response
		err  error
	}
	ownerCh := make(chan outcome, 1)
	go func() {
		resp, err := svc.Optimize(context.Background(), req)
		ownerCh <- outcome{resp, err}
	}()
	waitUntil(t, "owner flight to start", func() bool { return flightRefs(svc) >= 1 })

	wctx, wcancel := context.WithCancel(context.Background())
	waiterCh := make(chan outcome, 1)
	go func() {
		resp, err := svc.Optimize(wctx, req)
		waiterCh <- outcome{resp, err}
	}()
	waitUntil(t, "waiter to join the flight", func() bool { return flightRefs(svc) >= 2 })

	wcancel()
	select {
	case w := <-waiterCh:
		if !errors.Is(w.err, context.Canceled) {
			t.Errorf("cancelled waiter returned %v, want context.Canceled", w.err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled waiter did not return promptly")
	}

	o := <-ownerCh
	if o.err != nil {
		t.Fatalf("owner was cancelled along with the waiter: %v", o.err)
	}
	if o.resp.Result.Best == nil {
		t.Fatal("owner result has no best plan")
	}

	// The cache entry is healthy: the next request is a pure hit.
	resp, err := svc.Optimize(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.CacheHit {
		t.Error("post-cancellation request must be served from the plan cache")
	}
	if c := svc.Counters(); c.BackchaseRuns != 1 {
		t.Errorf("backchase runs = %d, want 1 (owner's only)", c.BackchaseRuns)
	}
}

// TestLastCallerCancellationAbortsFlight: when the only interested caller
// cancels, the flight itself is cancelled (no orphaned work) and nothing
// poisonous is cached — a retry recomputes cleanly.
func TestLastCallerCancellationAbortsFlight(t *testing.T) {
	req, _ := projDeptRequest(t)
	svc := New(Options{})

	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := svc.Optimize(ctx, req)
		errCh <- err
	}()
	waitUntil(t, "flight to start", func() bool { return flightRefs(svc) >= 1 })
	cancel()
	if err := <-errCh; !errors.Is(err, context.Canceled) {
		t.Fatalf("sole caller returned %v, want context.Canceled", err)
	}
	waitUntil(t, "aborted flight to drain", func() bool {
		svc.group.mu.Lock()
		defer svc.group.mu.Unlock()
		return len(svc.group.flights) == 0
	})

	resp, err := svc.Optimize(context.Background(), req)
	if err != nil {
		t.Fatalf("retry after aborted flight: %v", err)
	}
	if resp.Result.Best == nil {
		t.Fatal("retry produced no best plan")
	}
	if resp.CacheHit {
		t.Error("aborted flight must not have cached anything")
	}
}

// TestSetStatsHotSwap: swapping the statistics snapshot keeps serving,
// invalidates exactly the cost-bounded entries fingerprinted under the
// old snapshot, and leaves statistics-independent entries untouched.
func TestSetStatsHotSwap(t *testing.T) {
	pd, err := workload.NewProjDept()
	if err != nil {
		t.Fatal(err)
	}
	req := Request{Query: pd.Q, Deps: pd.AllDeps(), PhysicalNames: pd.Physical.NameSet()}
	statsA := cost.FromInstance(pd.Generate(workload.GenOptions{NumDepts: 30, ProjsPerDept: 8, CitiBankShare: 0.1, Seed: 1}))
	statsB := cost.FromInstance(pd.Generate(workload.GenOptions{NumDepts: 60, ProjsPerDept: 5, CitiBankShare: 0.2, Seed: 2}))
	if statsA.Fingerprint() == statsB.Fingerprint() {
		t.Fatal("test needs two distinct statistics snapshots")
	}

	svc := New(Options{CostBounded: true, Stats: statsA, Parallelism: 1})
	ctx := context.Background()
	if _, err := svc.Optimize(ctx, req); err != nil {
		t.Fatal(err)
	}
	resp, err := svc.Optimize(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.CacheHit {
		t.Fatal("repeat under stable stats must hit the plan cache")
	}

	if n := svc.SetStats(statsB); n != 1 {
		t.Errorf("swap invalidated %d entries, want 1 (the statsA entry)", n)
	}
	resp, err = svc.Optimize(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.CacheHit {
		t.Error("first request after the swap must recompute under the new stats")
	}
	resp, err = svc.Optimize(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.CacheHit {
		t.Error("second request after the swap must hit the refreshed entry")
	}

	// Swapping to an equal-fingerprint snapshot invalidates nothing and
	// keeps serving from the same entries.
	statsB2 := cost.FromInstance(pd.Generate(workload.GenOptions{NumDepts: 60, ProjsPerDept: 5, CitiBankShare: 0.2, Seed: 2}))
	if n := svc.SetStats(statsB2); n != 0 {
		t.Errorf("equal-fingerprint swap invalidated %d entries, want 0", n)
	}
	resp, err = svc.Optimize(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.CacheHit {
		t.Error("equal-fingerprint swap must not drop the cache entry")
	}

	if c := svc.Counters(); c.StatsSwaps != 2 {
		t.Errorf("stats swaps = %d, want 2", c.StatsSwaps)
	}
}

// TestStatsSwapMidFlightLeavesNoStaleEntry: a SetStats landing while a
// cost-bounded flight is still running must not leave that flight's
// cache entry (tagged with the old fingerprint, hence unreachable)
// behind. Both interleavings — entry stored before or after the swap's
// sweep — must end with zero stale entries, so the assertion is
// timing-independent.
func TestStatsSwapMidFlightLeavesNoStaleEntry(t *testing.T) {
	pd, err := workload.NewProjDept()
	if err != nil {
		t.Fatal(err)
	}
	req := Request{Query: pd.Q, Deps: pd.AllDeps(), PhysicalNames: pd.Physical.NameSet()}
	statsA := cost.FromInstance(pd.Generate(workload.GenOptions{NumDepts: 30, ProjsPerDept: 8, CitiBankShare: 0.1, Seed: 1}))
	statsB := cost.FromInstance(pd.Generate(workload.GenOptions{NumDepts: 60, ProjsPerDept: 5, CitiBankShare: 0.2, Seed: 2}))

	svc := New(Options{CostBounded: true, Stats: statsA, Parallelism: 1})
	done := make(chan error, 1)
	go func() {
		_, err := svc.Optimize(context.Background(), req)
		done <- err
	}()
	waitUntil(t, "flight to start", func() bool { return flightRefs(svc) >= 1 })
	svc.SetStats(statsB)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if n := svc.CacheLen(); n != 0 {
		t.Errorf("cache holds %d entries after a mid-flight swap, want 0 (stale fingerprint)", n)
	}
	// The next request recomputes under statsB and caches normally.
	resp, err := svc.Optimize(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.CacheHit {
		t.Error("request after a mid-flight swap must recompute under the new stats")
	}
	resp, err = svc.Optimize(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.CacheHit {
		t.Error("refreshed entry must serve subsequent requests")
	}
}

// TestStatsSwapKeepsStatsFreeEntries: without cost-bounded search the
// backchase result does not depend on statistics (they only rank
// candidates per request), so its cache entry is stored stats-free and
// survives every swap.
func TestStatsSwapKeepsStatsFreeEntries(t *testing.T) {
	req, statsA := projDeptRequest(t)
	svc := New(Options{Stats: statsA}) // CostBounded off: exhaustive backchase
	ctx := context.Background()
	if _, err := svc.Optimize(ctx, req); err != nil {
		t.Fatal(err)
	}
	if n := svc.SetStats(nil); n != 0 {
		t.Errorf("swap invalidated %d stats-free entries, want 0", n)
	}
	resp, err := svc.Optimize(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.CacheHit {
		t.Error("stats-free entry must serve across the swap")
	}
}

// TestChaseBudgetsThreadThrough: a service constructed with tight chase
// budgets propagates them into flights (ErrBudget surfaces as a request
// error, counted, not cached).
func TestChaseBudgetsThreadThrough(t *testing.T) {
	req, _ := projDeptRequest(t)
	svc := New(Options{Chase: chase.Options{MaxSteps: 1}})
	_, err := svc.Optimize(context.Background(), req)
	var budget *chase.ErrBudget
	if !errors.As(err, &budget) {
		t.Fatalf("want ErrBudget through the service, got %v", err)
	}
	if c := svc.Counters(); c.Errors != 1 {
		t.Errorf("errors = %d, want 1", c.Errors)
	}
	if svc.CacheLen() != 0 {
		t.Error("failed flight must not populate the plan cache")
	}
}
