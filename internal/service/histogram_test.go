package service

import (
	"context"
	"sync"
	"testing"
	"time"

	"cnb/internal/workload"
)

// TestHistogramBuckets pins the log2-µs bucket layout: sub-µs samples in
// bucket 0, [2^(i-1), 2^i) µs in bucket i, overflow clamped to the last.
func TestHistogramBuckets(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{500 * time.Nanosecond, 0},
		{time.Microsecond, 1},
		{1500 * time.Nanosecond, 1},
		{2 * time.Microsecond, 2},
		{3 * time.Microsecond, 2},
		{4 * time.Microsecond, 3},
		{512 * time.Microsecond, 10},
		{time.Millisecond, 10}, // 1000µs ∈ [512, 1024)
		{1024 * time.Microsecond, 11},
		{time.Second, 20}, // 10^6µs ∈ [2^19, 2^20)
		{time.Hour, histogramBuckets - 1},
		{1000 * time.Hour, histogramBuckets - 1},
	}
	for _, c := range cases {
		if got := histogramBucketFor(c.d); got != c.want {
			t.Errorf("bucket(%v) = %d, want %d", c.d, got, c.want)
		}
	}
}

// TestHistogramTotalIsBucketSum: the snapshot total is derived from the
// buckets, so it equals the recorded sample count by construction, even
// under concurrent recording; Reset zeroes everything.
func TestHistogramTotalIsBucketSum(t *testing.T) {
	var h LatencyHistogram
	const workers, perWorker = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				h.Record(time.Duration(w*i) * time.Microsecond)
			}
		}(w)
	}
	wg.Wait()
	snap := h.Snapshot()
	if snap.Total != workers*perWorker {
		t.Fatalf("Total = %d, want %d", snap.Total, workers*perWorker)
	}
	var sum int64
	for _, c := range snap.Counts {
		sum += c
	}
	if sum != snap.Total {
		t.Fatalf("bucket sum %d != Total %d", sum, snap.Total)
	}
	h.Reset()
	if after := h.Snapshot(); after.Total != 0 {
		t.Fatalf("Total after Reset = %d, want 0", after.Total)
	}
}

// TestHistogramUpperBounds: one bound per bucket, powers of two, the
// overflow bucket marked -1.
func TestHistogramUpperBounds(t *testing.T) {
	snap := (&LatencyHistogram{}).Snapshot()
	bounds := snap.UpperBoundsMicros()
	if len(bounds) != histogramBuckets {
		t.Fatalf("len(bounds) = %d, want %d", len(bounds), histogramBuckets)
	}
	if bounds[0] != 1 || bounds[1] != 2 || bounds[11] != 2048 {
		t.Fatalf("bounds prefix %v wrong", bounds[:12])
	}
	if bounds[len(bounds)-1] != -1 {
		t.Fatalf("overflow bound = %d, want -1", bounds[len(bounds)-1])
	}
}

// TestServiceHistogramsPerTier: each served request lands in exactly one
// tier histogram — greedy for a budget-expired cold shape, sync for an
// ordinary backchase response, upgraded for a post-upgrade hit — and the
// totals sum to the request count. ResetHistograms zeroes them without
// touching the counters.
func TestServiceHistogramsPerTier(t *testing.T) {
	req := coldStarRequest(t)
	svc := New(Options{MinimalOnly: true, MaxPlanLatency: 2 * time.Millisecond})
	ctx := context.Background()

	if _, err := svc.Optimize(ctx, req); err != nil { // cold: greedy tier
		t.Fatal(err)
	}
	waitCounter(t, svc, 1, func(c Counters) int64 { return c.Upgraded })
	if _, err := svc.Optimize(ctx, req); err != nil { // upgraded hit
		t.Fatal(err)
	}

	warmReq, _ := projDeptRequest(t)
	sync := New(Options{MinimalOnly: true})
	if _, err := sync.Optimize(ctx, warmReq); err != nil { // plain backchase
		t.Fatal(err)
	}

	h := svc.Histograms()
	if h.Greedy.Total != 1 || h.BackchaseUpgraded.Total != 1 || h.BackchaseSync.Total != 0 {
		t.Fatalf("tiered histograms: greedy=%d upgraded=%d sync=%d, want 1/1/0",
			h.Greedy.Total, h.BackchaseUpgraded.Total, h.BackchaseSync.Total)
	}
	if sum := h.Greedy.Total + h.BackchaseSync.Total + h.BackchaseUpgraded.Total; sum != svc.Counters().Requests {
		t.Fatalf("histogram sum %d != %d requests", sum, svc.Counters().Requests)
	}
	if hs := sync.Histograms(); hs.BackchaseSync.Total != 1 || hs.Greedy.Total != 0 {
		t.Fatalf("synchronous service histograms: sync=%d greedy=%d, want 1/0", hs.BackchaseSync.Total, hs.Greedy.Total)
	}

	before := svc.Counters()
	svc.ResetHistograms()
	if after := svc.Histograms(); after.Greedy.Total != 0 || after.BackchaseUpgraded.Total != 0 {
		t.Fatal("ResetHistograms left samples behind")
	}
	if svc.Counters() != before {
		t.Fatal("ResetHistograms touched the counters")
	}
}

// TestQueryHistogramsSplitPlanExec: a successful Query records one
// sample in the plan histogram and one in the exec histogram.
func TestQueryHistogramsSplitPlanExec(t *testing.T) {
	svc, req, _ := projDeptQuerySetup(t, "pd", workload.GenOptions{Seed: 1})
	if _, err := svc.Query(context.Background(), QueryRequest{Request: req, Instance: "pd"}); err != nil {
		t.Fatal(err)
	}
	h := svc.Histograms()
	if h.QueryPlan.Total != 1 || h.QueryExec.Total != 1 {
		t.Fatalf("query histograms: plan=%d exec=%d, want 1/1", h.QueryPlan.Total, h.QueryExec.Total)
	}
}
