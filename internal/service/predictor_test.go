package service

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// TestPredictorColdStart: an unknown shape family predicts nothing, and
// a service routes it to the classic budgeted wait.
func TestPredictorColdStart(t *testing.T) {
	p := NewLatencyPredictor(0)
	if _, ok := p.predict("never-seen"); ok {
		t.Fatal("cold predictor claims to know an unseen key")
	}
	if p.Len() != 0 {
		t.Fatalf("cold predictor Len = %d, want 0", p.Len())
	}

	svc := New(Options{MinimalOnly: true, MaxPlanLatency: 30 * time.Second})
	req, _ := projDeptRequest(t)
	resp, err := svc.Optimize(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.TierReason != ReasonBudgeted {
		t.Fatalf("cold request reason = %q, want %q", resp.TierReason, ReasonBudgeted)
	}
	if c := svc.Counters(); c.BudgetedWaits != 1 || c.PredictedFast != 0 || c.PredictedSlow != 0 {
		t.Fatalf("cold-start counters: %+v", c)
	}
}

// TestPredictorEWMARules pins the update discipline: a first observation
// seeds the EWMA, fresh enumerations average in with weight 1/2, and a
// cache-hit landing overwrites outright — after any landing the plan
// cache holds the entry, so the cache-hit latency is the best predictor
// of the family's next flight. Max tracks the worst case either way.
func TestPredictorEWMARules(t *testing.T) {
	p := NewLatencyPredictor(0)
	p.observe("k", 100*time.Millisecond, false)
	if got, ok := p.predict("k"); !ok || got != 100*time.Millisecond {
		t.Fatalf("after seed: ewma=%v ok=%v, want 100ms", got, ok)
	}
	p.observe("k", 200*time.Millisecond, false)
	if got, _ := p.predict("k"); got != 150*time.Millisecond {
		t.Fatalf("after averaging: ewma=%v, want 150ms", got)
	}
	p.observe("k", time.Millisecond, true)
	if got, _ := p.predict("k"); got != time.Millisecond {
		t.Fatalf("after cache-hit overwrite: ewma=%v, want 1ms", got)
	}
	e := p.shard("k").entries["k"]
	if e.max != 200*time.Millisecond {
		t.Fatalf("max=%v, want 200ms", e.max)
	}
	if e.samples != 3 {
		t.Fatalf("samples=%d, want 3", e.samples)
	}
}

// TestPredictorAbandonedFlightTrains: a detached flight whose only
// caller cancelled mid-wait still trains the predictor when it lands —
// the observation happens inside the flight, not on any caller's path.
func TestPredictorAbandonedFlightTrains(t *testing.T) {
	req := coldStarRequest(t)
	svc := New(Options{MinimalOnly: true, MaxPlanLatency: 10 * time.Second})
	key := flightKey(req, "", false)

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	_, err := svc.Optimize(ctx, req)
	cancel()
	if err == nil {
		t.Log("flight landed before the cancel (fast machine); training check still applies")
	} else if !errors.Is(err, context.Canceled) {
		t.Fatalf("unexpected error class: %v", err)
	}

	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if _, ok := svc.predictor.predict(key); ok {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	ewma, ok := svc.predictor.predict(key)
	if !ok {
		t.Fatal("abandoned detached flight landed without training the predictor")
	}
	if ewma <= 0 {
		t.Fatalf("trained ewma = %v, want > 0", ewma)
	}
	if c := svc.Counters(); c.GreedyServed != 0 {
		t.Fatalf("GreedyServed = %d, want 0 (the caller cancelled, it was not served)", c.GreedyServed)
	}
}

// TestPredictorEvictionAtCapacity: a full shard evicts its oldest
// family FIFO; the evicted key reverts to unknown, the newest survives.
func TestPredictorEvictionAtCapacity(t *testing.T) {
	// Capacity 16 across 16 shards = one entry per shard, so two keys on
	// the same shard force an eviction. Find such a pair by probing.
	p := NewLatencyPredictor(16)
	var first, second string
	seen := map[*predShard]string{}
	for i := 0; ; i++ {
		k := fmt.Sprintf("key-%d", i)
		s := p.shard(k)
		if prev, ok := seen[s]; ok {
			first, second = prev, k
			break
		}
		seen[s] = k
	}
	p.observe(first, time.Millisecond, false)
	p.observe(second, 2*time.Millisecond, false)
	if _, ok := p.predict(first); ok {
		t.Fatalf("oldest key %q not evicted at capacity", first)
	}
	if got, ok := p.predict(second); !ok || got != 2*time.Millisecond {
		t.Fatalf("newest key %q: ewma=%v ok=%v, want 2ms", second, got, ok)
	}
	if got := p.shard(second).entries; len(got) != 1 {
		t.Fatalf("shard holds %d entries, want 1", len(got))
	}
}

// TestPredictorStatsSwapInvalidates: the stats fingerprint is part of
// the shape-family key, so a stats hot-swap makes every trained family
// unknown — requests under the new snapshot take the budgeted wait and
// re-learn, instead of trusting latencies measured under old statistics.
func TestPredictorStatsSwapInvalidates(t *testing.T) {
	req, st := projDeptRequest(t)
	svc := New(Options{
		MinimalOnly:    true,
		CostBounded:    true,
		Stats:          st,
		MaxPlanLatency: 30 * time.Second,
	})
	ctx := context.Background()

	cold, err := svc.Optimize(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if cold.TierReason != ReasonBudgeted {
		t.Fatalf("cold reason = %q, want budgeted", cold.TierReason)
	}
	warm, err := svc.Optimize(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if warm.TierReason != ReasonPredictedFast || !warm.CacheHit {
		t.Fatalf("warm response: reason=%q cacheHit=%v, want predicted-fast/true", warm.TierReason, warm.CacheHit)
	}

	svc.SetStats(nil)
	swapped, err := svc.Optimize(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if swapped.TierReason != ReasonBudgeted {
		t.Fatalf("post-swap reason = %q, want budgeted (new fingerprint = new family)", swapped.TierReason)
	}
	if c := svc.Counters(); c.BudgetedWaits != 2 || c.PredictedFast != 1 {
		t.Fatalf("post-swap counters: %+v", c)
	}
}

// TestClassifyUpgradedOverridesSlowEWMA: an upgraded plan-cache entry
// routes predicted-fast even while the EWMA still remembers the slow
// enumeration — the upgrade means the next flight is a cache hit.
func TestClassifyUpgradedOverridesSlowEWMA(t *testing.T) {
	svc := New(Options{MinimalOnly: true, MaxPlanLatency: 2 * time.Millisecond})
	const key = "some-shape"
	svc.predictor.observe(key, time.Minute, false)
	if got := svc.classify(key); got != ReasonPredictedSlow {
		t.Fatalf("slow EWMA classifies %q, want predicted-slow", got)
	}
	svc.noteUpgrade(key)
	if got := svc.classify(key); got != ReasonPredictedFast {
		t.Fatalf("upgraded shape classifies %q, want predicted-fast", got)
	}
}

// TestFastPlanThresholdSplitsBudget: with FastPlanThreshold below
// MaxPlanLatency, a shape whose EWMA lands between the two routes
// predicted-slow — the budget alone no longer decides.
func TestFastPlanThresholdSplitsBudget(t *testing.T) {
	svc := New(Options{
		MinimalOnly:       true,
		MaxPlanLatency:    100 * time.Millisecond,
		FastPlanThreshold: 10 * time.Millisecond,
	})
	svc.predictor.observe("between", 50*time.Millisecond, false)
	if got := svc.classify("between"); got != ReasonPredictedSlow {
		t.Fatalf("EWMA between threshold and budget classifies %q, want predicted-slow", got)
	}
	svc.predictor.observe("under", 5*time.Millisecond, true)
	if got := svc.classify("under"); got != ReasonPredictedFast {
		t.Fatalf("EWMA under threshold classifies %q, want predicted-fast", got)
	}
}

// TestPredictedSlowServesGreedyInstantly: a trained-slow shape on a
// fresh service is served the greedy tier with no timed wait, and the
// detached flight still lands and upgrades for the next request.
func TestPredictedSlowServesGreedyInstantly(t *testing.T) {
	req := coldStarRequest(t)
	pred := NewLatencyPredictor(0)
	key := flightKey(req, "", false)
	pred.observe(key, time.Minute, false)

	svc := New(Options{MinimalOnly: true, MaxPlanLatency: 10 * time.Second, Predictor: pred})
	resp, err := svc.Optimize(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.TierReason != ReasonPredictedSlow || resp.Tier != TierGreedy {
		t.Fatalf("trained-slow response: reason=%q tier=%q, want predicted-slow/greedy", resp.TierReason, resp.Tier)
	}
	if c := svc.Counters(); c.PredictedSlow != 1 || c.GreedyServed != 1 || c.BudgetedWaits != 0 {
		t.Fatalf("predicted-slow counters: %+v", c)
	}

	waitCounter(t, svc, 1, func(c Counters) int64 { return c.Upgraded })
	up, err := svc.Optimize(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if up.TierReason != ReasonPredictedFast || up.Tier != TierBackchase || !up.Upgraded {
		t.Fatalf("post-upgrade response: reason=%q tier=%q upgraded=%v, want predicted-fast/backchase/true",
			up.TierReason, up.Tier, up.Upgraded)
	}
}

// TestSynchronousReasonWithoutBudget: with two-tier serving off, every
// response reports the synchronous reason and the predictor still
// trains (so enabling a budget later starts warm).
func TestSynchronousReasonWithoutBudget(t *testing.T) {
	svc := New(Options{MinimalOnly: true})
	req, _ := projDeptRequest(t)
	resp, err := svc.Optimize(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.TierReason != ReasonSynchronous {
		t.Fatalf("reason = %q, want %q", resp.TierReason, ReasonSynchronous)
	}
	if svc.PredictorLen() != 1 {
		t.Fatalf("PredictorLen = %d, want 1 (synchronous flights still train)", svc.PredictorLen())
	}
	if c := svc.Counters(); c.BudgetedWaits != 0 || c.PredictedFast != 0 || c.PredictedSlow != 0 {
		t.Fatalf("adaptive counters moved without a budget: %+v", c)
	}
}
