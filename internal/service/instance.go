package service

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"cnb/internal/instance"
)

// InstanceSummary describes one registered instance for /metrics-style
// consumers: which names it binds and how many rows each holds.
type InstanceSummary struct {
	// Name is the registry key the instance was installed under.
	Name string
	// Collections is the number of schema names the instance binds.
	Collections int
	// Rows is the total cardinality across all bound names (set elements
	// plus dictionary entries; scalar bindings count 1).
	Rows int64
	// Cards maps each bound name to its cardinality.
	Cards map[string]int64
}

// InstanceCounters is the cumulative executed-query accounting of one
// registry entry. Counters survive hot-swaps of the instance data: they
// describe the name, not one particular snapshot.
type InstanceCounters struct {
	// Queries counts Query calls that reached execution (instance found,
	// optimizer delivered a plan pool).
	Queries int64
	// Rows accumulates StreamPlan.Measure().Rows — operator rows emitted
	// while executing — across successful queries.
	Rows int64
	// Evals accumulates StreamPlan.Measure().Evals across successful
	// queries.
	Evals int64
	// ExecErrors counts Query calls that failed during execution,
	// including per-request context cancellations and plans with no
	// executable candidate.
	ExecErrors int64
}

// instanceEntry is one registry slot: the swappable data snapshot plus
// the cumulative counters that outlive swaps.
type instanceEntry struct {
	data atomic.Pointer[instanceSnapshot]

	queries    atomic.Int64
	rows       atomic.Int64
	evals      atomic.Int64
	execErrors atomic.Int64
}

// instanceSnapshot pairs an instance with its precomputed summary so the
// hot path and /metrics never re-walk the data.
type instanceSnapshot struct {
	in      *instance.Instance
	summary InstanceSummary
}

func (e *instanceEntry) counters() InstanceCounters {
	return InstanceCounters{
		Queries:    e.queries.Load(),
		Rows:       e.rows.Load(),
		Evals:      e.evals.Load(),
		ExecErrors: e.execErrors.Load(),
	}
}

// summarize walks the instance once and renders its summary.
func summarize(name string, in *instance.Instance) InstanceSummary {
	s := InstanceSummary{Name: name, Cards: map[string]int64{}}
	for _, n := range in.Names() {
		v, _ := in.Lookup(n)
		var card int64 = 1
		switch t := v.(type) {
		case *instance.Set:
			card = int64(t.Len())
		case *instance.Dict:
			card = int64(t.Len())
		}
		s.Cards[n] = card
		s.Rows += card
		s.Collections++
	}
	return s
}

// InstallInstance registers (or atomically replaces) the named instance
// and returns its summary. Queries already executing against a previous
// snapshot finish against it; queries arriving after the store see the
// new one — the same hot-swap contract as SetStats. The cumulative
// executed-query counters for the name are preserved across swaps.
func (s *Service) InstallInstance(name string, in *instance.Instance) (InstanceSummary, error) {
	if name == "" {
		return InstanceSummary{}, fmt.Errorf("service: instance name must be non-empty")
	}
	if in == nil {
		return InstanceSummary{}, fmt.Errorf("service: nil instance")
	}
	snap := &instanceSnapshot{in: in, summary: summarize(name, in)}
	s.instMu.Lock()
	e := s.instances[name]
	if e == nil {
		e = &instanceEntry{}
		if s.instances == nil {
			s.instances = map[string]*instanceEntry{}
		}
		s.instances[name] = e
	}
	s.instMu.Unlock()
	e.data.Store(snap)
	return snap.summary, nil
}

// lookupInstance returns the current snapshot of the named instance.
func (s *Service) lookupInstance(name string) (*instanceSnapshot, bool) {
	s.instMu.RLock()
	e := s.instances[name]
	s.instMu.RUnlock()
	if e == nil {
		return nil, false
	}
	snap := e.data.Load()
	if snap == nil {
		return nil, false
	}
	return snap, true
}

// lookupEntry returns the registry entry (for counter updates).
func (s *Service) lookupEntry(name string) *instanceEntry {
	s.instMu.RLock()
	defer s.instMu.RUnlock()
	return s.instances[name]
}

// Instances returns the summaries of every registered instance, sorted
// by name.
func (s *Service) Instances() []InstanceSummary {
	s.instMu.RLock()
	out := make([]InstanceSummary, 0, len(s.instances))
	for _, e := range s.instances {
		if snap := e.data.Load(); snap != nil {
			out = append(out, snap.summary)
		}
	}
	s.instMu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// InstanceCountersFor returns the cumulative executed-query counters of
// the named instance; ok is false when the name is not registered.
func (s *Service) InstanceCountersFor(name string) (InstanceCounters, bool) {
	e := s.lookupEntry(name)
	if e == nil {
		return InstanceCounters{}, false
	}
	return e.counters(), true
}

// instanceRegistry is the Service-side state; embedded here rather than
// in service.go to keep the registry self-contained.
type instanceRegistry struct {
	instMu    sync.RWMutex
	instances map[string]*instanceEntry
}
