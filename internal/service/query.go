package service

import (
	"context"
	"errors"
	"fmt"
	"time"

	"cnb/internal/engine"
	"cnb/internal/eval"
	"cnb/internal/instance"
)

// DefaultMaxResultRows is the result row cap applied when
// QueryRequest.MaxRows is zero. Execution always runs to completion —
// Measure counters and the truncation decision need the full
// deduplicated result — only the encoded row slice is capped.
const DefaultMaxResultRows = 1000

// ErrUnknownInstance is returned (wrapped) by Query when the named
// instance is not registered; HTTP frontends map it to 404.
var ErrUnknownInstance = errors.New("unknown instance")

// ErrNoExecutablePlan is returned (wrapped) by Query when every ranked
// candidate fails with a failing lookup on the target instance — the
// plan pool exists but none of it can run against this data. HTTP
// frontends map it to 422.
var ErrNoExecutablePlan = errors.New("no executable plan")

// QueryRequest asks for one query to be optimized and executed against a
// registered instance.
type QueryRequest struct {
	// Request is the optimization request (query, deps, physical names);
	// it hits the plan cache and singleflight exactly like Optimize.
	Request
	// Instance names the registered instance to execute against.
	Instance string
	// MaxRows caps the rows returned in QueryResponse.Rows
	// (0 = DefaultMaxResultRows, < 0 = unlimited). Truncated reports
	// whether the cap bit.
	MaxRows int
	// Explain skips execution: the response carries the streaming
	// operator tree (StreamPlan.Explain) and the estimated cost of the
	// delivered plan instead of rows.
	Explain bool
}

// QueryResponse is the outcome of one executed (or explained) query.
type QueryResponse struct {
	// Optimize is the planning outcome (cache hit, coalescing, full
	// optimizer result).
	Optimize *Response
	// Plan is the delivered plan — the cheapest candidate that executed
	// (or, in explain mode, the cheapest compilable candidate).
	Plan string
	// EstCost is the cost model's estimate for the delivered plan.
	EstCost float64
	// Skipped counts ranked candidates passed over because they failed
	// with a failing lookup on this instance (E18's delivery rule).
	Skipped int
	// Rows is the deduplicated result, sorted by canonical key and
	// capped at MaxRows. Nil in explain mode.
	Rows []instance.Value
	// ResultRows is the full result cardinality before the cap.
	ResultRows int
	// Truncated reports that Rows was capped.
	Truncated bool
	// Explain is the streaming operator tree (explain mode only).
	Explain string
	// Measure is the executed plan's work profile (zero in explain mode).
	Measure engine.Measure
	// PlanDur and ExecDur split the request wall time into the Optimize
	// call and the execution (compile + run + encode) phases.
	PlanDur time.Duration
	ExecDur time.Duration
}

// Query optimizes the request through the shared plan cache/singleflight
// and executes the delivered plan against the named instance on the
// streaming batch engine. The ranked candidate pool is walked cheapest
// first, skipping candidates whose unguarded failing lookups error on
// this instance's data — the same delivery rule E18 gates. ctx bounds
// the whole request: cancellation aborts both the optimizer wait and the
// execution between batches, with every operator (including background
// prefetch goroutines) closed before Query returns.
//
// Counter contract: a successful execution adds the plan's Measure
// counters to the instance's cumulative accounting; any execution
// failure — lookup-failed pool exhaustion, cancellation, runtime error —
// increments the instance's ExecErrors instead, so Queries + ExecErrors
// always equals the number of Query calls that reached execution.
func (s *Service) Query(ctx context.Context, req QueryRequest) (*QueryResponse, error) {
	snap, ok := s.lookupInstance(req.Instance)
	if !ok {
		return nil, fmt.Errorf("service: %w: %q", ErrUnknownInstance, req.Instance)
	}
	entry := s.lookupEntry(req.Instance)

	planStart := time.Now()
	opt, err := s.Optimize(ctx, req.Request)
	if err != nil {
		return nil, err
	}
	planDur := time.Since(planStart)
	res := opt.Result
	if res.Best == nil || len(res.Candidates) == 0 {
		entry.execErrors.Add(1)
		return nil, fmt.Errorf("service: %w: optimizer delivered no candidates", ErrNoExecutablePlan)
	}

	qr := &QueryResponse{Optimize: opt, PlanDur: planDur}
	stats := s.stats.Load().stats
	execStart := time.Now()

	if req.Explain {
		// Explain compiles the cheapest candidate without running it:
		// failing lookups only surface at run time, so no skipping here.
		best := res.Candidates[0]
		p, err := engine.CompileStream(best.Query, snap.in, engine.StreamOptions{Stats: stats})
		if err != nil {
			entry.execErrors.Add(1)
			return nil, fmt.Errorf("service: compile: %w", err)
		}
		qr.Plan = best.Query.String()
		qr.EstCost = best.Cost
		qr.Explain = p.Explain()
		qr.ExecDur = time.Since(execStart)
		entry.queries.Add(1)
		s.hists.queryPlan.Record(qr.PlanDur)
		s.hists.queryExec.Record(qr.ExecDur)
		return qr, nil
	}

	var lastErr error
	for _, cand := range res.Candidates {
		p, err := engine.CompileStream(cand.Query, snap.in, engine.StreamOptions{Stats: stats, Buffer: 2})
		if err != nil {
			entry.execErrors.Add(1)
			return nil, fmt.Errorf("service: compile: %w", err)
		}
		out, err := p.Run(ctx)
		if err != nil {
			var lf *eval.ErrLookupFailed
			if errors.As(err, &lf) && ctx.Err() == nil {
				qr.Skipped++
				lastErr = err
				continue
			}
			entry.execErrors.Add(1)
			return nil, fmt.Errorf("service: execute: %w", err)
		}
		qr.Plan = cand.Query.String()
		qr.EstCost = cand.Cost
		qr.Measure = p.Measure()
		qr.ResultRows = out.Len()
		qr.Rows = capRows(out, req.MaxRows)
		qr.Truncated = len(qr.Rows) < qr.ResultRows
		qr.ExecDur = time.Since(execStart)
		entry.queries.Add(1)
		entry.rows.Add(qr.Measure.Rows)
		entry.evals.Add(qr.Measure.Evals)
		s.hists.queryPlan.Record(qr.PlanDur)
		s.hists.queryExec.Record(qr.ExecDur)
		return qr, nil
	}
	entry.execErrors.Add(1)
	return nil, fmt.Errorf("service: %w: all %d candidates failed lookups (%v)",
		ErrNoExecutablePlan, len(res.Candidates), lastErr)
}

// capRows renders the result slice under the row cap: 0 means
// DefaultMaxResultRows, negative means unlimited. Elements come out in
// Set.Elems order (sorted by canonical key), so the retained prefix is
// deterministic.
func capRows(out *instance.Set, maxRows int) []instance.Value {
	if maxRows == 0 {
		maxRows = DefaultMaxResultRows
	}
	elems := out.Elems()
	if maxRows > 0 && len(elems) > maxRows {
		elems = elems[:maxRows]
	}
	return elems
}

// ValueJSON renders a runtime value as a JSON-encodable Go value for the
// HTTP result-set encoding: ints and floats as numbers, strings and
// bools natively, oids as "Type#serial" strings, structs as objects
// (field order is lost to JSON — use the field names), sets as arrays in
// deterministic key order, and dictionaries as arrays of {"key", "value"}
// objects sorted by key.
func ValueJSON(v instance.Value) any {
	switch t := v.(type) {
	case instance.Int:
		return int64(t)
	case instance.Float:
		return float64(t)
	case instance.Str:
		return string(t)
	case instance.Bool:
		return bool(t)
	case instance.OID:
		return t.String()
	case *instance.Struct:
		m := make(map[string]any, len(t.Names()))
		for _, n := range t.Names() {
			f, _ := t.Field(n)
			m[n] = ValueJSON(f)
		}
		return m
	case *instance.Set:
		out := make([]any, 0, t.Len())
		for _, e := range t.Elems() {
			out = append(out, ValueJSON(e))
		}
		return out
	case *instance.Dict:
		out := make([]any, 0, t.Len())
		for _, e := range t.Entries() {
			out = append(out, map[string]any{"key": ValueJSON(e[0]), "value": ValueJSON(e[1])})
		}
		return out
	default:
		return v.String()
	}
}
