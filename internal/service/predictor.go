package service

import (
	"hash/fnv"
	"sync"
	"time"
)

// DefaultPredictorCapacity bounds the latency predictor's side table when
// Options.Predictor is nil and no explicit capacity was given: 16k shape
// families is far beyond any observed working set (the plan cache itself
// defaults to fewer entries), yet small enough that an adversarial stream
// of unique shapes cannot grow service memory without bound.
const DefaultPredictorCapacity = 1 << 14

// predictorShards stripes the side table so concurrent observations of
// unrelated shapes do not contend on one lock. Must be a power of two.
const predictorShards = 16

// predictorAlpha is the EWMA smoothing weight applied to a fresh
// enumeration latency: new observations count as much as all history
// combined, so a shape family converges to a changed regime within a few
// flights while one outlier cannot erase the history on its own.
const predictorAlpha = 0.5

// predEntry is one shape family's learned flight-latency profile.
type predEntry struct {
	// ewma is the exponentially weighted moving average of observed
	// flight latencies — the number predictions are made from.
	ewma time.Duration
	// max is the largest latency ever observed for the family, kept for
	// observability (an operator reading the side table can see the worst
	// case a prediction is papering over).
	max time.Duration
	// samples counts observations folded into the entry.
	samples int64
}

// LatencyPredictor is a bounded, sharded side table mapping shape
// families — flight keys: canonical query signature + dependency set +
// physical restriction + statistics fingerprint — to their observed
// backchase flight latency (EWMA + max). The Service updates it whenever
// a flight lands, including detached flights every caller abandoned, and
// consults it under two-tier serving to decide per shape whether to wait
// synchronously, serve the greedy tier immediately, or fall back to the
// budgeted wait (see Options.MaxPlanLatency).
//
// Because the key includes the statistics fingerprint, a stats hot-swap
// implicitly invalidates every prediction: requests under the new
// snapshot form new families that start unknown and re-learn. Stale
// families age out through the capacity bound (FIFO per shard).
//
// A LatencyPredictor may be shared between Services via
// Options.Predictor — it is keyed by content, not by cache state, so the
// learned budgets survive plan-cache loss (restart, invalidation sweep).
// Safe for concurrent use by any number of goroutines.
type LatencyPredictor struct {
	shards [predictorShards]predShard
	// perShard is the per-shard entry bound (total capacity distributed
	// evenly, rounded up, minimum 1).
	perShard int
}

// predShard is one mutex-striped slice of the side table. order is a
// FIFO insertion queue: when the shard is full the oldest family is
// evicted — a deliberately simple policy, since an evicted family merely
// reverts to the budgeted-wait fallback until re-learned.
type predShard struct {
	mu      sync.Mutex
	entries map[string]*predEntry
	order   []string
}

// NewLatencyPredictor builds a predictor bounded to capacity entries
// (capacity <= 0 selects DefaultPredictorCapacity).
func NewLatencyPredictor(capacity int) *LatencyPredictor {
	if capacity <= 0 {
		capacity = DefaultPredictorCapacity
	}
	per := (capacity + predictorShards - 1) / predictorShards
	if per < 1 {
		per = 1
	}
	return &LatencyPredictor{perShard: per}
}

// Len reports the number of shape families currently tracked.
func (p *LatencyPredictor) Len() int {
	n := 0
	for i := range p.shards {
		s := &p.shards[i]
		s.mu.Lock()
		n += len(s.entries)
		s.mu.Unlock()
	}
	return n
}

// shard picks the stripe for a key.
func (p *LatencyPredictor) shard(key string) *predShard {
	h := fnv.New32a()
	_, _ = h.Write([]byte(key))
	return &p.shards[h.Sum32()&(predictorShards-1)]
}

// observe folds one landed flight's latency into the key's entry. cached
// reports that the flight was served from the plan cache rather than
// enumerating: a cache-hit landing overwrites the EWMA outright instead
// of averaging, because after any landing the plan cache holds the
// entry, so the cache-hit latency — not the enumeration history — is the
// best predictor of the family's next flight.
func (p *LatencyPredictor) observe(key string, d time.Duration, cached bool) {
	s := p.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.entries[key]
	if e == nil {
		if len(s.entries) >= p.perShard {
			oldest := s.order[0]
			s.order = s.order[1:]
			delete(s.entries, oldest)
		}
		if s.entries == nil {
			s.entries = map[string]*predEntry{}
		}
		e = &predEntry{ewma: d}
		s.entries[key] = e
		s.order = append(s.order, key)
	} else if cached {
		e.ewma = d
	} else {
		e.ewma = time.Duration(predictorAlpha*float64(d) + (1-predictorAlpha)*float64(e.ewma))
	}
	if d > e.max {
		e.max = d
	}
	e.samples++
}

// predict returns the key's learned flight-latency EWMA; ok is false for
// an unknown (never landed, or evicted) shape family.
func (p *LatencyPredictor) predict(key string) (ewma time.Duration, ok bool) {
	s := p.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.entries[key]
	if e == nil {
		return 0, false
	}
	return e.ewma, true
}
