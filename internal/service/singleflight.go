package service

import (
	"context"
	"sync"

	"cnb/internal/optimizer"
)

// flight is one in-progress optimization shared by every concurrent
// request for the same flight key.
type flight struct {
	// done is closed by the runner goroutine after res/err are set.
	done chan struct{}
	res  *optimizer.Result
	err  error
	// refs counts the callers currently interested in the outcome
	// (guarded by flightGroup.mu). When the last one abandons the wait,
	// the flight itself is cancelled — nobody would consume the result.
	refs   int
	cancel context.CancelFunc
}

// flightGroup coalesces concurrent optimizations of alpha-equivalent
// queries: K concurrent requests for the same flight key trigger exactly
// one optimizer run, with K-1 callers waiting on the owner's outcome.
//
// Cancellation semantics: each caller waits under its own context. A
// waiter whose context is cancelled detaches immediately — the flight
// keeps running for the remaining callers, so one impatient client can
// neither cancel the owner nor poison the shared outcome. The flight's
// own context is detached from every caller's (context.WithoutCancel of
// the first caller's, so request-scoped values still flow) and is
// cancelled only when the last interested caller has left.
//
// Outcomes are not memoized here: a flight is removed from the group the
// moment it completes. Cross-request memoization is the plan cache's job
// — keyed and invalidated there — so a failed or cancelled flight never
// leaves a poisoned entry behind.
type flightGroup struct {
	mu      sync.Mutex
	flights map[string]*flight
}

// do runs fn once per key among concurrent callers. It returns fn's
// outcome and whether this caller was coalesced onto another caller's
// flight (false for the flight owner). All coalesced callers share the
// owner's *optimizer.Result — read-only by package convention.
func (g *flightGroup) do(ctx context.Context, key string, fn func(context.Context) (*optimizer.Result, error)) (*optimizer.Result, bool, error) {
	g.mu.Lock()
	if g.flights == nil {
		g.flights = map[string]*flight{}
	}
	if f, ok := g.flights[key]; ok {
		f.refs++
		g.mu.Unlock()
		res, err := g.wait(ctx, key, f)
		return res, true, err
	}
	fctx, cancel := context.WithCancel(context.WithoutCancel(ctx))
	f := &flight{done: make(chan struct{}), refs: 1, cancel: cancel}
	g.flights[key] = f
	g.mu.Unlock()

	go func() {
		res, err := fn(fctx)
		g.mu.Lock()
		f.res, f.err = res, err
		// Remove only our own flight: if every caller left and a fresh
		// flight for the same key has already started, it must survive.
		if g.flights[key] == f {
			delete(g.flights, key)
		}
		g.mu.Unlock()
		close(f.done)
		cancel()
	}()
	res, err := g.wait(ctx, key, f)
	return res, false, err
}

// wait blocks until the flight completes or the caller's own context is
// cancelled, whichever comes first.
func (g *flightGroup) wait(ctx context.Context, key string, f *flight) (*optimizer.Result, error) {
	select {
	case <-f.done:
		return f.res, f.err
	case <-ctx.Done():
		g.mu.Lock()
		f.refs--
		if f.refs == 0 {
			select {
			case <-f.done:
				// Completed while we were acquiring the lock; the runner
				// has already cleaned up.
			default:
				f.cancel()
				if g.flights[key] == f {
					delete(g.flights, key)
				}
			}
		}
		g.mu.Unlock()
		return nil, ctx.Err()
	}
}
