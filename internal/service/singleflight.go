package service

import (
	"context"
	"sync"
	"time"

	"cnb/internal/optimizer"
)

// flight is one in-progress optimization shared by every concurrent
// request for the same flight key.
type flight struct {
	// done is closed by the runner goroutine (under flightGroup.mu) after
	// res/err are set.
	done chan struct{}
	res  *optimizer.Result
	err  error
	// refs counts the callers currently interested in the outcome
	// (guarded by flightGroup.mu). When the last one abandons the wait,
	// a non-detached flight is cancelled — nobody would consume the
	// result.
	refs   int
	cancel context.CancelFunc
	// detached marks a flight that must run to completion regardless of
	// callers (the tiered serving path): waiter timeouts and
	// cancellations never cancel it, and its landing upgrades the plan
	// cache for future requests. Guarded by flightGroup.mu.
	detached bool
	// greedyServed records that at least one caller's latency budget
	// expired and it was served the greedy tier instead of this flight's
	// outcome. The runner reads it (under mu, in the same critical
	// section that closes done) to decide whether its completion is an
	// upgrade — the mutex makes "timed out before landing" and "landed
	// first" mutually exclusive, so upgrade counters cannot double- or
	// under-count.
	greedyServed bool
}

// flightGroup coalesces concurrent optimizations of alpha-equivalent
// queries: K concurrent requests for the same flight key trigger exactly
// one optimizer run, with K-1 callers waiting on the owner's outcome.
//
// Cancellation semantics: each caller waits under its own context. A
// waiter whose context is cancelled detaches immediately — the flight
// keeps running for the remaining callers, so one impatient client can
// neither cancel the owner nor poison the shared outcome. The flight's
// own context is detached from every caller's (context.WithoutCancel of
// the first caller's, so request-scoped values still flow) and is
// cancelled only when the last interested caller has left — unless the
// flight is detached (doDetached), in which case it always runs to
// completion so its result can upgrade the plan cache.
//
// Outcomes are not memoized here: a flight is removed from the group the
// moment it completes. Cross-request memoization is the plan cache's job
// — keyed and invalidated there — so a failed or cancelled flight never
// leaves a poisoned entry behind.
type flightGroup struct {
	mu      sync.Mutex
	flights map[string]*flight
	// onUpgrade, when set, is called (outside mu) after a detached
	// flight that served at least one greedy-tier response completes
	// without error — the moment the plan-cache entry for key stops
	// serving the greedy plan and starts serving the backchase-cheapest
	// one.
	onUpgrade func(key string)
}

// do runs fn once per key among concurrent callers. It returns fn's
// outcome and whether this caller was coalesced onto another caller's
// flight (false for the flight owner). All coalesced callers share the
// owner's *optimizer.Result — read-only by package convention.
func (g *flightGroup) do(ctx context.Context, key string, fn func(context.Context) (*optimizer.Result, error)) (*optimizer.Result, bool, error) {
	f, coalesced := g.join(ctx, key, false, fn)
	res, err := g.wait(ctx, key, f)
	return res, coalesced, err
}

// doDetached is do under a latency budget: it waits at most budget for
// the flight to land. On landing in time it behaves exactly like do
// (landed=true). When the budget expires first it returns landed=false
// with no result — the caller serves the greedy tier — while the flight
// continues detached, surviving every caller's departure, and reports
// its eventual landing through onUpgrade. Joining an existing flight
// promotes it to detached: once any caller has been served the greedy
// tier, the flight owes the cache an upgrade.
func (g *flightGroup) doDetached(ctx context.Context, key string, budget time.Duration, fn func(context.Context) (*optimizer.Result, error)) (res *optimizer.Result, coalesced, landed bool, err error) {
	f, coalesced := g.join(ctx, key, true, fn)
	res, landed, err = g.waitBudget(ctx, f, budget)
	return res, coalesced, landed, err
}

// doImmediate is doDetached with a zero budget: the caller never arms a
// timer and never waits. If the flight for key has already been started
// and is still in the air, or is started here, the caller is marked
// greedy-served and leaves immediately (landed=false) while the flight
// continues detached and upgrades the plan cache when it lands. Used for
// shapes the latency predictor expects to miss the budget — for them the
// budgeted wait is pure added latency with no chance of paying off.
// (If the flight happens to land between join and the check below, its
// real outcome is served, exactly like waitBudget's timer branch.)
func (g *flightGroup) doImmediate(ctx context.Context, key string, fn func(context.Context) (*optimizer.Result, error)) (res *optimizer.Result, coalesced, landed bool, err error) {
	f, coalesced := g.join(ctx, key, true, fn)
	g.mu.Lock()
	select {
	case <-f.done:
		g.mu.Unlock()
		return f.res, coalesced, true, f.err
	default:
	}
	f.greedyServed = true
	f.refs--
	g.mu.Unlock()
	return nil, coalesced, false, nil
}

// join returns the live flight for key, starting one (and its runner
// goroutine) if none exists. The second result reports whether the
// caller joined an existing flight.
func (g *flightGroup) join(ctx context.Context, key string, detached bool, fn func(context.Context) (*optimizer.Result, error)) (*flight, bool) {
	g.mu.Lock()
	if g.flights == nil {
		g.flights = map[string]*flight{}
	}
	if f, ok := g.flights[key]; ok {
		f.refs++
		if detached {
			f.detached = true
		}
		g.mu.Unlock()
		return f, true
	}
	fctx, cancel := context.WithCancel(context.WithoutCancel(ctx))
	f := &flight{done: make(chan struct{}), refs: 1, cancel: cancel, detached: detached}
	g.flights[key] = f
	g.mu.Unlock()
	go g.run(key, f, fctx, fn)
	return f, false
}

// run executes the flight and publishes its outcome. Setting res/err,
// removing the flight from the map, closing done and reading
// greedyServed happen in one critical section, so a budgeted waiter
// (waitBudget's timer branch, also under mu) either observes the landing
// and serves it, or marks greedyServed before the landing is visible —
// never both, never neither.
func (g *flightGroup) run(key string, f *flight, fctx context.Context, fn func(context.Context) (*optimizer.Result, error)) {
	res, err := fn(fctx)
	g.mu.Lock()
	f.res, f.err = res, err
	// Remove only our own flight: if every caller left and a fresh
	// flight for the same key has already started, it must survive.
	if g.flights[key] == f {
		delete(g.flights, key)
	}
	upgraded := f.detached && f.greedyServed && err == nil
	close(f.done)
	g.mu.Unlock()
	f.cancel()
	if upgraded && g.onUpgrade != nil {
		g.onUpgrade(key)
	}
}

// wait blocks until the flight completes or the caller's own context is
// cancelled, whichever comes first.
func (g *flightGroup) wait(ctx context.Context, key string, f *flight) (*optimizer.Result, error) {
	select {
	case <-f.done:
		return f.res, f.err
	case <-ctx.Done():
		g.mu.Lock()
		f.refs--
		if f.refs == 0 && !f.detached {
			select {
			case <-f.done:
				// Completed while we were acquiring the lock; the runner
				// has already cleaned up.
			default:
				f.cancel()
				if g.flights[key] == f {
					delete(g.flights, key)
				}
			}
		}
		g.mu.Unlock()
		return nil, ctx.Err()
	}
}

// waitBudget blocks until the flight lands, the budget expires, or the
// caller's context is cancelled. landed reports that the flight's own
// outcome is being returned; on a budget expiry it returns
// (nil, false, nil) after marking the flight greedy-served, and on
// caller cancellation (nil, false, ctx.Err()). The flight itself is
// never cancelled from here — it is detached.
func (g *flightGroup) waitBudget(ctx context.Context, f *flight, budget time.Duration) (*optimizer.Result, bool, error) {
	timer := time.NewTimer(budget)
	defer timer.Stop()
	select {
	case <-f.done:
		return f.res, true, f.err
	case <-ctx.Done():
		g.mu.Lock()
		f.refs--
		g.mu.Unlock()
		return nil, false, ctx.Err()
	case <-timer.C:
		g.mu.Lock()
		select {
		case <-f.done:
			// Landed while the timer fired; serve the real outcome.
			g.mu.Unlock()
			return f.res, true, f.err
		default:
		}
		f.greedyServed = true
		f.refs--
		g.mu.Unlock()
		return nil, false, nil
	}
}
