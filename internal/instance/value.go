// Package instance implements the runtime value model of the complex
// value / dictionary data model and in-memory database instances: finite
// sets, records, dictionaries (finite functions) and base values including
// opaque oids. Queries are executed against instances by the eval and
// engine packages; tests use instances to verify that rewritten plans are
// equivalent to the original queries on real data.
package instance

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Value is a runtime value. Implementations are immutable once built
// (Set and Dict have builder-style Add methods used during construction;
// do not mutate values that have been shared).
type Value interface {
	// Key returns a canonical string encoding, injective on values: two
	// values are equal iff their keys are equal. Used for set membership,
	// dictionary keys and result comparison.
	Key() string
	// String renders the value for humans.
	String() string
}

// Int is an integer value.
type Int int64

// Key implements Value.
func (v Int) Key() string { return "i" + strconv.FormatInt(int64(v), 10) }

// String implements Value.
func (v Int) String() string { return strconv.FormatInt(int64(v), 10) }

// Float is a floating-point value.
type Float float64

// Key implements Value.
func (v Float) Key() string { return "f" + strconv.FormatFloat(float64(v), 'g', -1, 64) }

// String implements Value.
func (v Float) String() string { return strconv.FormatFloat(float64(v), 'g', -1, 64) }

// Str is a string value.
type Str string

// Key implements Value.
func (v Str) Key() string { return "s" + strconv.Quote(string(v)) }

// String implements Value.
func (v Str) String() string { return strconv.Quote(string(v)) }

// Bool is a boolean value.
type Bool bool

// Key implements Value.
func (v Bool) Key() string {
	if v {
		return "bT"
	}
	return "bF"
}

// String implements Value.
func (v Bool) String() string {
	if v {
		return "true"
	}
	return "false"
}

// OID is an opaque object identifier of a named oid type. Two oids are
// equal iff both the type name and the serial agree.
type OID struct {
	TypeName string
	Serial   int
}

// Key implements Value.
func (v OID) Key() string { return "o" + v.TypeName + "#" + strconv.Itoa(v.Serial) }

// String implements Value.
func (v OID) String() string { return v.TypeName + "#" + strconv.Itoa(v.Serial) }

// Struct is a record value with named fields in a fixed order.
type Struct struct {
	names []string
	vals  []Value
	key   string
}

// NewStruct builds a record from field names and values (parallel slices).
func NewStruct(names []string, vals []Value) *Struct {
	if len(names) != len(vals) {
		panic("instance: NewStruct field/value length mismatch")
	}
	s := &Struct{names: names, vals: vals}
	var b strings.Builder
	b.WriteString("r{")
	for i := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(names[i])
		b.WriteByte(':')
		b.WriteString(vals[i].Key())
	}
	b.WriteByte('}')
	s.key = b.String()
	return s
}

// StructOf builds a record from alternating name, value pairs in field
// order: StructOf("A", Int(1), "B", Str("x")).
func StructOf(pairs ...any) *Struct {
	if len(pairs)%2 != 0 {
		panic("instance: StructOf needs name/value pairs")
	}
	names := make([]string, 0, len(pairs)/2)
	vals := make([]Value, 0, len(pairs)/2)
	for i := 0; i < len(pairs); i += 2 {
		names = append(names, pairs[i].(string))
		vals = append(vals, pairs[i+1].(Value))
	}
	return NewStruct(names, vals)
}

// Field returns the value of the named field and whether it exists.
func (s *Struct) Field(name string) (Value, bool) {
	for i, n := range s.names {
		if n == name {
			return s.vals[i], true
		}
	}
	return nil, false
}

// Names returns the field names in order.
func (s *Struct) Names() []string { return append([]string(nil), s.names...) }

// Key implements Value.
func (s *Struct) Key() string { return s.key }

// String implements Value.
func (s *Struct) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i := range s.names {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(s.names[i])
		b.WriteString(": ")
		b.WriteString(s.vals[i].String())
	}
	b.WriteByte('}')
	return b.String()
}

// Set is a finite set of values with set semantics (duplicates collapse).
type Set struct {
	m map[string]Value
}

// NewSet builds a set from the given elements.
func NewSet(elems ...Value) *Set {
	s := &Set{m: make(map[string]Value, len(elems))}
	for _, e := range elems {
		s.Add(e)
	}
	return s
}

// Add inserts a value (idempotent). Returns the set for chaining.
func (s *Set) Add(v Value) *Set {
	s.m[v.Key()] = v
	return s
}

// Contains reports membership.
func (s *Set) Contains(v Value) bool {
	_, ok := s.m[v.Key()]
	return ok
}

// Len returns the cardinality.
func (s *Set) Len() int { return len(s.m) }

// Elems returns the elements sorted by key (deterministic iteration).
func (s *Set) Elems() []Value {
	keys := make([]string, 0, len(s.m))
	for k := range s.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Value, len(keys))
	for i, k := range keys {
		out[i] = s.m[k]
	}
	return out
}

// Equal reports set equality.
func (s *Set) Equal(t *Set) bool {
	if s.Len() != t.Len() {
		return false
	}
	for k := range s.m {
		if _, ok := t.m[k]; !ok {
			return false
		}
	}
	return true
}

// Key implements Value.
func (s *Set) Key() string {
	keys := make([]string, 0, len(s.m))
	for k := range s.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return "S[" + strings.Join(keys, ";") + "]"
}

// String implements Value.
func (s *Set) String() string {
	parts := make([]string, 0, s.Len())
	for _, e := range s.Elems() {
		parts = append(parts, e.String())
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

type dictEntry struct {
	k, v Value
}

// Dict is a dictionary: a finite function from keys to values.
type Dict struct {
	m map[string]dictEntry
}

// NewDict builds an empty dictionary.
func NewDict() *Dict { return &Dict{m: map[string]dictEntry{}} }

// Put binds key to val (overwriting). Returns the dict for chaining.
func (d *Dict) Put(key, val Value) *Dict {
	d.m[key.Key()] = dictEntry{k: key, v: val}
	return d
}

// Get returns the entry for the key and whether it is defined.
func (d *Dict) Get(key Value) (Value, bool) {
	e, ok := d.m[key.Key()]
	if !ok {
		return nil, false
	}
	return e.v, true
}

// Len returns the number of entries.
func (d *Dict) Len() int { return len(d.m) }

// Domain returns dom(d) as a Set.
func (d *Dict) Domain() *Set {
	s := NewSet()
	for _, e := range d.m {
		s.Add(e.k)
	}
	return s
}

// Entries returns the (key, value) pairs sorted by key encoding.
func (d *Dict) Entries() [][2]Value {
	keys := make([]string, 0, len(d.m))
	for k := range d.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([][2]Value, len(keys))
	for i, k := range keys {
		e := d.m[k]
		out[i] = [2]Value{e.k, e.v}
	}
	return out
}

// Key implements Value.
func (d *Dict) Key() string {
	keys := make([]string, 0, len(d.m))
	for k := range d.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString("D[")
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(';')
		}
		e := d.m[k]
		b.WriteString(k)
		b.WriteString("->")
		b.WriteString(e.v.Key())
	}
	b.WriteByte(']')
	return b.String()
}

// String implements Value.
func (d *Dict) String() string {
	parts := make([]string, 0, d.Len())
	for _, e := range d.Entries() {
		parts = append(parts, e[0].String()+" -> "+e[1].String())
	}
	return "dict{" + strings.Join(parts, ", ") + "}"
}

// Instance is a database instance: a binding of schema names to values.
type Instance struct {
	vals map[string]Value
}

// NewInstance creates an empty instance.
func NewInstance() *Instance { return &Instance{vals: map[string]Value{}} }

// Bind assigns a value to a schema name.
func (in *Instance) Bind(name string, v Value) *Instance {
	in.vals[name] = v
	return in
}

// Lookup returns the value of a schema name.
func (in *Instance) Lookup(name string) (Value, bool) {
	v, ok := in.vals[name]
	return v, ok
}

// Names returns the bound names, sorted.
func (in *Instance) Names() []string {
	out := make([]string, 0, len(in.vals))
	for n := range in.vals {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// String summarizes the instance.
func (in *Instance) String() string {
	var b strings.Builder
	for _, n := range in.Names() {
		v := in.vals[n]
		switch t := v.(type) {
		case *Set:
			fmt.Fprintf(&b, "%s: set of %d\n", n, t.Len())
		case *Dict:
			fmt.Fprintf(&b, "%s: dict of %d\n", n, t.Len())
		default:
			fmt.Fprintf(&b, "%s: %s\n", n, v)
		}
	}
	return b.String()
}
