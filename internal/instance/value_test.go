package instance

import (
	"testing"
	"testing/quick"
)

func TestBaseValueKeys(t *testing.T) {
	vals := []Value{
		Int(1), Int(-1), Float(1.5), Str("a"), Str("b"), Bool(true), Bool(false),
		OID{TypeName: "Doid", Serial: 1}, OID{TypeName: "Doid", Serial: 2},
		OID{TypeName: "Eoid", Serial: 1},
	}
	seen := map[string]Value{}
	for _, v := range vals {
		if prev, dup := seen[v.Key()]; dup {
			t.Errorf("key collision: %s vs %s", prev, v)
		}
		seen[v.Key()] = v
	}
}

func TestIntStringKeysDiffer(t *testing.T) {
	// Int(1) and Str("1") must not collide.
	if Int(1).Key() == Str("1").Key() {
		t.Error("int and string keys collide")
	}
}

func TestStructFieldAccess(t *testing.T) {
	s := StructOf("A", Int(1), "B", Str("x"))
	if v, ok := s.Field("A"); !ok || v.Key() != Int(1).Key() {
		t.Error("field A wrong")
	}
	if _, ok := s.Field("Z"); ok {
		t.Error("missing field should report !ok")
	}
	names := s.Names()
	if len(names) != 2 || names[0] != "A" || names[1] != "B" {
		t.Errorf("Names = %v", names)
	}
}

func TestStructKeyEquality(t *testing.T) {
	a := StructOf("A", Int(1), "B", Str("x"))
	b := NewStruct([]string{"A", "B"}, []Value{Int(1), Str("x")})
	if a.Key() != b.Key() {
		t.Error("identical structs must share keys")
	}
	c := StructOf("A", Int(2), "B", Str("x"))
	if a.Key() == c.Key() {
		t.Error("different structs must differ")
	}
}

func TestNewStructPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("length mismatch must panic")
		}
	}()
	NewStruct([]string{"A"}, nil)
}

func TestSetSemantics(t *testing.T) {
	s := NewSet(Int(1), Int(2), Int(1))
	if s.Len() != 2 {
		t.Errorf("set len = %d, want 2 (dedup)", s.Len())
	}
	if !s.Contains(Int(1)) || s.Contains(Int(3)) {
		t.Error("Contains wrong")
	}
	elems := s.Elems()
	if len(elems) != 2 {
		t.Errorf("Elems = %v", elems)
	}
	// Deterministic order.
	s2 := NewSet(Int(2), Int(1))
	for i := range elems {
		if elems[i].Key() != s2.Elems()[i].Key() {
			t.Error("Elems order must be canonical")
		}
	}
}

func TestSetEqual(t *testing.T) {
	a := NewSet(Int(1), Str("x"))
	b := NewSet(Str("x"), Int(1))
	if !a.Equal(b) {
		t.Error("order-insensitive equality")
	}
	c := NewSet(Int(1))
	if a.Equal(c) {
		t.Error("different sets must differ")
	}
	if a.Key() != b.Key() {
		t.Error("equal sets must share keys")
	}
}

func TestSetOfStructsDedup(t *testing.T) {
	s := NewSet(
		StructOf("A", Int(1)),
		StructOf("A", Int(1)),
		StructOf("A", Int(2)),
	)
	if s.Len() != 2 {
		t.Errorf("struct dedup failed: %d", s.Len())
	}
}

func TestDictBasics(t *testing.T) {
	d := NewDict()
	d.Put(Str("k1"), Int(10))
	d.Put(Str("k2"), Int(20))
	if d.Len() != 2 {
		t.Errorf("len = %d", d.Len())
	}
	if v, ok := d.Get(Str("k1")); !ok || v.Key() != Int(10).Key() {
		t.Error("Get k1 wrong")
	}
	if _, ok := d.Get(Str("zz")); ok {
		t.Error("missing key should report !ok")
	}
	dom := d.Domain()
	if dom.Len() != 2 || !dom.Contains(Str("k1")) {
		t.Error("Domain wrong")
	}
	// Overwrite.
	d.Put(Str("k1"), Int(99))
	if v, _ := d.Get(Str("k1")); v.Key() != Int(99).Key() {
		t.Error("Put must overwrite")
	}
	if d.Len() != 2 {
		t.Error("overwrite must not grow dict")
	}
}

func TestDictEntriesDeterministic(t *testing.T) {
	d := NewDict()
	d.Put(Str("b"), Int(2))
	d.Put(Str("a"), Int(1))
	es := d.Entries()
	if len(es) != 2 {
		t.Fatalf("entries = %d", len(es))
	}
	if es[0][0].Key() != Str("a").Key() {
		t.Error("entries must be sorted by key")
	}
}

func TestNestedValueKeys(t *testing.T) {
	inner := NewSet(Str("p1"), Str("p2"))
	d1 := StructOf("DName", Str("d"), "DProjs", inner)
	d2 := StructOf("DName", Str("d"), "DProjs", NewSet(Str("p2"), Str("p1")))
	if d1.Key() != d2.Key() {
		t.Error("nested set order must not affect struct keys")
	}
}

func TestInstance(t *testing.T) {
	in := NewInstance()
	in.Bind("R", NewSet(Int(1)))
	in.Bind("M", NewDict())
	if _, ok := in.Lookup("R"); !ok {
		t.Error("Lookup R failed")
	}
	if _, ok := in.Lookup("zz"); ok {
		t.Error("missing name should report !ok")
	}
	names := in.Names()
	if len(names) != 2 || names[0] != "M" || names[1] != "R" {
		t.Errorf("Names = %v", names)
	}
	if in.String() == "" {
		t.Error("String should describe the instance")
	}
}

// Property: key equality is an equivalence compatible with set membership.
func TestKeyMembershipProperty(t *testing.T) {
	f := func(a, b int64) bool {
		s := NewSet(Int(a))
		if a == b {
			return s.Contains(Int(b))
		}
		return !s.Contains(Int(b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: set union via Add is commutative (same key).
func TestSetAddCommutativeProperty(t *testing.T) {
	f := func(xs []int8) bool {
		a := NewSet()
		b := NewSet()
		for _, x := range xs {
			a.Add(Int(int64(x)))
		}
		for i := len(xs) - 1; i >= 0; i-- {
			b.Add(Int(int64(xs[i])))
		}
		return a.Key() == b.Key() && a.Equal(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
