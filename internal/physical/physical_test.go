package physical

import (
	"strings"
	"testing"

	"cnb/internal/core"
	"cnb/internal/schema"
	"cnb/internal/types"
)

func baseSchema(t *testing.T) *schema.Schema {
	t.Helper()
	s := schema.New("base")
	s.MustAddElement("R", types.SetOf(types.StructOf(
		types.F("A", types.Int()),
		types.F("B", types.Int()),
		types.F("C", types.Int()),
	)), "relation")
	s.MustAddElement("depts", types.SetOf(types.StructOf(
		types.F("DName", types.StringT()),
		types.F("DProjs", types.SetOf(types.StringT())),
	)), "extent")
	return s
}

func TestDirectStorage(t *testing.T) {
	base := baseSchema(t)
	phys, deps, all, err := NewDesign(base).Add(DirectStorage{Name: "R"}).Build()
	if err != nil {
		t.Fatal(err)
	}
	if !phys.Has("R") {
		t.Error("R not in physical schema")
	}
	if len(deps) != 0 {
		t.Error("direct storage needs no constraints")
	}
	if !all.Has("R") || !all.Has("depts") {
		t.Error("combined schema incomplete")
	}
}

func TestDirectStorageUnknownName(t *testing.T) {
	base := baseSchema(t)
	if _, _, _, err := NewDesign(base).Add(DirectStorage{Name: "Nope"}).Build(); err == nil {
		t.Error("unknown element must fail")
	}
}

func TestPrimaryIndexCompile(t *testing.T) {
	base := baseSchema(t)
	phys, deps, all, err := NewDesign(base).
		Add(DirectStorage{Name: "R"}).
		Add(PrimaryIndex{Name: "IA", Relation: "R", Key: "A"}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	e := phys.Element("IA")
	if e == nil {
		t.Fatal("IA missing")
	}
	if e.Type.String() != "dict<int, {A: int, B: int, C: int}>" {
		t.Errorf("IA type = %s", e.Type)
	}
	if len(deps) != 2 {
		t.Fatalf("deps = %d, want 2", len(deps))
	}
	for _, d := range deps {
		if err := all.CheckDependency(d); err != nil {
			t.Errorf("dependency %s ill-typed: %v", d.Name, err)
		}
	}
	// Forward constraint shape: ∀ r ∈ R ∃ i ∈ dom(IA) ...
	fwd := deps[0]
	if fwd.Name != "PhiIA" || len(fwd.Premise) != 1 || len(fwd.Conclusion) != 1 {
		t.Errorf("unexpected forward dep: %s", fwd)
	}
	if !fwd.IsFull() {
		t.Error("primary-index forward constraint should be full (i is determined)")
	}
}

func TestPrimaryIndexErrors(t *testing.T) {
	base := baseSchema(t)
	cases := []PrimaryIndex{
		{Name: "I1", Relation: "Nope", Key: "A"},
		{Name: "I2", Relation: "R", Key: "Nope"},
		{Name: "I3", Relation: "depts", Key: "DProjs"}, // non-base attribute
	}
	for _, c := range cases {
		if _, _, _, err := NewDesign(base).Add(c).Build(); err == nil {
			t.Errorf("index %s should fail", c.Name)
		}
	}
}

func TestSecondaryIndexCompile(t *testing.T) {
	base := baseSchema(t)
	phys, deps, all, err := NewDesign(base).
		Add(DirectStorage{Name: "R"}).
		Add(SecondaryIndex{Name: "SB", Relation: "R", Attribute: "B"}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	e := phys.Element("SB")
	if e.Type.String() != "dict<int, set<{A: int, B: int, C: int}>>" {
		t.Errorf("SB type = %s", e.Type)
	}
	if len(deps) != 3 {
		t.Fatalf("deps = %d, want 3 (fwd, inv, nonempty)", len(deps))
	}
	names := map[string]bool{}
	for _, d := range deps {
		names[d.Name] = true
		if err := all.CheckDependency(d); err != nil {
			t.Errorf("dependency %s ill-typed: %v", d.Name, err)
		}
	}
	for _, want := range []string{"PhiSB", "PhiSBInv", "PhiSBNE"} {
		if !names[want] {
			t.Errorf("missing dependency %s", want)
		}
	}
}

func TestHashTableCompile(t *testing.T) {
	base := baseSchema(t)
	phys, deps, _, err := NewDesign(base).
		Add(DirectStorage{Name: "R"}).
		Add(HashTable{Name: "HB", Relation: "R", Attribute: "B"}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if !phys.Has("HB") {
		t.Error("HB missing")
	}
	if len(deps) != 3 {
		t.Errorf("hash table should compile like a secondary index: %d deps", len(deps))
	}
	if !strings.Contains(phys.Element("HB").Doc, "hash") {
		t.Error("doc should mark the structure as a hash table")
	}
}

func TestClassDictCompile(t *testing.T) {
	base := baseSchema(t)
	phys, deps, all, err := NewDesign(base).
		Add(ClassDict{Name: "Dept", Extent: "depts", OIDType: "Doid"}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	e := phys.Element("Dept")
	if e == nil || e.Type.Kind != types.KindDict || e.Type.Key.OIDName != "Doid" {
		t.Fatalf("Dept dict wrong: %v", e)
	}
	if len(deps) != 2 {
		t.Fatalf("deps = %d, want 2", len(deps))
	}
	for _, d := range deps {
		if err := all.CheckDependency(d); err != nil {
			t.Errorf("dependency %s ill-typed: %v", d.Name, err)
		}
	}
}

func TestClassDictErrors(t *testing.T) {
	base := baseSchema(t)
	if _, _, _, err := NewDesign(base).Add(ClassDict{Name: "X", Extent: "Nope", OIDType: "O"}).Build(); err == nil {
		t.Error("unknown extent must fail")
	}
}

func TestViewCompile(t *testing.T) {
	base := baseSchema(t)
	v := View{
		Name: "VA",
		Def: &core.Query{
			Out:      core.Struct(core.SF("A", core.Prj(core.V("r"), "A"))),
			Bindings: []core.Binding{{Var: "r", Range: core.Name("R")}},
			Conds:    []core.Cond{{L: core.Prj(core.V("r"), "B"), R: core.C(1)}},
		},
	}
	phys, deps, all, err := NewDesign(base).Add(DirectStorage{Name: "R"}).Add(v).Build()
	if err != nil {
		t.Fatal(err)
	}
	if phys.Element("VA").Type.String() != "set<{A: int}>" {
		t.Errorf("VA type = %s", phys.Element("VA").Type)
	}
	if len(deps) != 2 {
		t.Fatalf("deps = %d, want 2", len(deps))
	}
	for _, d := range deps {
		if err := all.CheckDependency(d); err != nil {
			t.Errorf("%s ill-typed: %v", d.Name, err)
		}
	}
	// Forward dep is full (v determined by the output equality).
	if !deps[0].IsFull() {
		t.Error("ΦV must be full")
	}
}

func TestViewOverIndex(t *testing.T) {
	// A view defined over a previously compiled structure (here dom of a
	// class dict) must type-check thanks to the incremental combined
	// schema.
	base := baseSchema(t)
	design := NewDesign(base).
		Add(ClassDict{Name: "Dept", Extent: "depts", OIDType: "Doid"}).
		Add(View{
			Name: "OIDs",
			Def: &core.Query{
				Out:      core.Struct(core.SF("O", core.V("o"))),
				Bindings: []core.Binding{{Var: "o", Range: core.Dom(core.Name("Dept"))}},
			},
		})
	_, _, all, err := design.Build()
	if err != nil {
		t.Fatal(err)
	}
	if !all.Has("OIDs") {
		t.Error("view over dict missing")
	}
}

func TestViewBadDefinition(t *testing.T) {
	base := baseSchema(t)
	v := View{
		Name: "Bad",
		Def: &core.Query{
			Out:      core.Prj(core.V("r"), "Nope"),
			Bindings: []core.Binding{{Var: "r", Range: core.Name("R")}},
		},
	}
	if _, _, _, err := NewDesign(base).Add(v).Build(); err == nil {
		t.Error("ill-typed view definition must fail")
	}
}

func TestJoinIndexCompile(t *testing.T) {
	base := schema.New("rs")
	base.MustAddElement("R", types.SetOf(types.StructOf(
		types.F("K", types.Int()), types.F("B", types.Int()))), "")
	base.MustAddElement("S", types.SetOf(types.StructOf(
		types.F("K", types.Int()), types.F("B", types.Int()))), "")
	ji := JoinIndex{
		View: View{
			Name: "JRS",
			Def: &core.Query{
				Out: core.Struct(
					core.SF("RK", core.Prj(core.V("r"), "K")),
					core.SF("SK", core.Prj(core.V("s"), "K")),
				),
				Bindings: []core.Binding{
					{Var: "r", Range: core.Name("R")},
					{Var: "s", Range: core.Name("S")},
				},
				Conds: []core.Cond{{L: core.Prj(core.V("r"), "B"), R: core.Prj(core.V("s"), "B")}},
			},
		},
		LeftIndex:  &PrimaryIndex{Name: "IRK", Relation: "R", Key: "K"},
		RightIndex: &PrimaryIndex{Name: "ISK", Relation: "S", Key: "K"},
	}
	phys, deps, _, err := NewDesign(base).
		Add(DirectStorage{Name: "R"}).
		Add(DirectStorage{Name: "S"}).
		Add(ji).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []string{"JRS", "IRK", "ISK"} {
		if !phys.Has(n) {
			t.Errorf("join index missing %s", n)
		}
	}
	// 2 view deps + 2 + 2 primary-index deps.
	if len(deps) != 6 {
		t.Errorf("deps = %d, want 6", len(deps))
	}
}

func TestGMapCompile(t *testing.T) {
	base := baseSchema(t)
	g := GMap{
		Name: "GA",
		Bindings: []core.Binding{
			{Var: "r", Range: core.Name("R")},
		},
		Conds:    nil,
		DomOut:   core.Prj(core.V("r"), "A"),
		RangeOut: core.Struct(core.SF("B", core.Prj(core.V("r"), "B")), core.SF("C", core.Prj(core.V("r"), "C"))),
	}
	phys, deps, all, err := NewDesign(base).Add(DirectStorage{Name: "R"}).Add(g).Build()
	if err != nil {
		t.Fatal(err)
	}
	e := phys.Element("GA")
	if e.Type.String() != "dict<int, set<{B: int, C: int}>>" {
		t.Errorf("GA type = %s", e.Type)
	}
	if len(deps) != 2 {
		t.Fatalf("deps = %d, want 2", len(deps))
	}
	for _, d := range deps {
		if err := all.CheckDependency(d); err != nil {
			t.Errorf("%s ill-typed: %v", d.Name, err)
		}
	}
}

func TestDesignDuplicateName(t *testing.T) {
	base := baseSchema(t)
	_, _, _, err := NewDesign(base).
		Add(DirectStorage{Name: "R"}).
		Add(SecondaryIndex{Name: "R", Relation: "R", Attribute: "A"}).
		Build()
	if err == nil {
		t.Error("duplicate physical name must fail")
	}
}
