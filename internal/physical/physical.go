// Package physical models physical access structures and compiles each of
// them into the pair (schema elements, constraints) that captures its
// semantics — §2 of Deutsch, Popa, Tannen (VLDB 1999), "Physical
// Structures as Constraints".
//
// Supported structures and their constraint encodings:
//
//   - DirectStorage   — a logical relation stored as-is (identity mapping)
//   - PrimaryIndex    — I = dict k in π_A(R) : element(σ_{A=k}(R));
//     constraints ΦPI, ΦPI'
//   - SecondaryIndex  — SI = dict k in π_A(R) : σ_{A=k}(R);
//     constraints ΦSI, ΦSI', ΦSI” (non-emptiness)
//   - HashTable       — same constraints as a secondary index, but not
//     materialized (built on the fly by a hash join)
//   - ClassDict       — an OO class extent stored as a dictionary from
//     fresh oids to object records; constraints ΦD, ΦD'
//   - View            — a materialized PC view V = select O from P̄ where B;
//     constraints ΦV, ΦV'
//   - JoinIndex       — the Valduriez triple: a binary materialized view
//     plus primary indexes on the joined relations
//   - GMap            — dict z in Q1 : Q2(z), the generalized gmap of
//     Tsatalos/Solomon/Ioannidis expressed with dictionaries
package physical

import (
	"fmt"

	"cnb/internal/core"
	"cnb/internal/schema"
	"cnb/internal/types"
)

// Structure is a physical access structure that can compile itself into
// schema elements and implementation-mapping constraints. Compile receives
// the combined schema built so far (logical elements plus previously
// compiled structures) and must add its elements to phys and its
// constraints to the returned slice.
type Structure interface {
	// StructName returns the name of the physical schema element(s) this
	// structure introduces.
	StructName() string
	// Compile adds the structure's elements to phys (and the combined
	// typing schema all) and returns its constraints.
	Compile(all, phys *schema.Schema) ([]*core.Dependency, error)
}

// ---------------------------------------------------------------------
// Direct storage

// DirectStorage declares that a logical element is stored physically
// under the same name; the implementation mapping is the identity, so no
// constraints are needed.
type DirectStorage struct {
	Name string
}

// StructName implements Structure.
func (d DirectStorage) StructName() string { return d.Name }

// Compile implements Structure.
func (d DirectStorage) Compile(all, phys *schema.Schema) ([]*core.Dependency, error) {
	e := all.Element(d.Name)
	if e == nil {
		return nil, fmt.Errorf("physical: direct storage of undeclared element %q", d.Name)
	}
	if err := phys.AddElement(e.Name, e.Type, "directly stored "+e.Doc); err != nil {
		return nil, err
	}
	return nil, nil
}

// ---------------------------------------------------------------------
// Primary index

// PrimaryIndex is a dictionary from the key attribute of a relation to its
// unique row: I[k] = the r in R with r.A = k (A must be a key of R for the
// structure to be well-defined; the paper's I on Proj.PName).
type PrimaryIndex struct {
	Name     string // index name, e.g. "I"
	Relation string // indexed relation, e.g. "Proj"
	Key      string // key attribute, e.g. "PName"
}

// StructName implements Structure.
func (p PrimaryIndex) StructName() string { return p.Name }

// Compile implements Structure. The constraints are the paper's ΦPI/ΦPI':
//
//	ΦPI : ∀(r ∈ R) ∃(i ∈ dom(I)) i = r.A and I[i] = r
//	ΦPI': ∀(i ∈ dom(I)) ∃(r ∈ R) i = r.A and I[i] = r
func (p PrimaryIndex) Compile(all, phys *schema.Schema) ([]*core.Dependency, error) {
	rowT, keyT, err := indexedRelation(all, p.Relation, p.Key)
	if err != nil {
		return nil, fmt.Errorf("physical: primary index %s: %w", p.Name, err)
	}
	if err := phys.AddElement(p.Name, types.DictOf(keyT, rowT),
		fmt.Sprintf("primary index on %s.%s", p.Relation, p.Key)); err != nil {
		return nil, err
	}
	fwd := &core.Dependency{
		Name:       "Phi" + p.Name,
		Premise:    []core.Binding{{Var: "r", Range: core.Name(p.Relation)}},
		Conclusion: []core.Binding{{Var: "i", Range: core.Dom(core.Name(p.Name))}},
		ConclusionConds: []core.Cond{
			{L: core.V("i"), R: core.Prj(core.V("r"), p.Key)},
			{L: core.Lk(core.Name(p.Name), core.V("i")), R: core.V("r")},
		},
	}
	inv := &core.Dependency{
		Name:       "Phi" + p.Name + "Inv",
		Premise:    []core.Binding{{Var: "i", Range: core.Dom(core.Name(p.Name))}},
		Conclusion: []core.Binding{{Var: "r", Range: core.Name(p.Relation)}},
		ConclusionConds: []core.Cond{
			{L: core.V("i"), R: core.Prj(core.V("r"), p.Key)},
			{L: core.Lk(core.Name(p.Name), core.V("i")), R: core.V("r")},
		},
	}
	return []*core.Dependency{fwd, inv}, nil
}

// ---------------------------------------------------------------------
// Secondary index

// SecondaryIndex is a dictionary from an attribute value to the set of
// rows carrying it (the paper's SI on Proj.CustName).
type SecondaryIndex struct {
	Name      string
	Relation  string
	Attribute string
}

// StructName implements Structure.
func (s SecondaryIndex) StructName() string { return s.Name }

// Compile implements Structure. The constraints are the paper's
// ΦSI/ΦSI'/ΦSI”:
//
//	ΦSI  : ∀(r ∈ R) ∃(k ∈ dom(SI), t ∈ SI[k]) k = r.A and r = t
//	ΦSI' : ∀(k ∈ dom(SI), t ∈ SI[k]) ∃(r ∈ R) k = r.A and r = t
//	ΦSI'': ∀(k ∈ dom(SI)) ∃(t ∈ SI[k]) true        (non-emptiness)
func (s SecondaryIndex) Compile(all, phys *schema.Schema) ([]*core.Dependency, error) {
	rowT, attrT, err := indexedRelation(all, s.Relation, s.Attribute)
	if err != nil {
		return nil, fmt.Errorf("physical: secondary index %s: %w", s.Name, err)
	}
	if err := phys.AddElement(s.Name, types.DictOf(attrT, types.SetOf(rowT)),
		fmt.Sprintf("secondary index on %s.%s", s.Relation, s.Attribute)); err != nil {
		return nil, err
	}
	return secondaryIndexDeps(s.Name, s.Relation, s.Attribute), nil
}

func secondaryIndexDeps(name, rel, attr string) []*core.Dependency {
	fwd := &core.Dependency{
		Name:    "Phi" + name,
		Premise: []core.Binding{{Var: "r", Range: core.Name(rel)}},
		Conclusion: []core.Binding{
			{Var: "k", Range: core.Dom(core.Name(name))},
			{Var: "t", Range: core.Lk(core.Name(name), core.V("k"))},
		},
		ConclusionConds: []core.Cond{
			{L: core.V("k"), R: core.Prj(core.V("r"), attr)},
			{L: core.V("r"), R: core.V("t")},
		},
	}
	inv := &core.Dependency{
		Name: "Phi" + name + "Inv",
		Premise: []core.Binding{
			{Var: "k", Range: core.Dom(core.Name(name))},
			{Var: "t", Range: core.Lk(core.Name(name), core.V("k"))},
		},
		Conclusion: []core.Binding{{Var: "r", Range: core.Name(rel)}},
		ConclusionConds: []core.Cond{
			{L: core.V("k"), R: core.Prj(core.V("r"), attr)},
			{L: core.V("r"), R: core.V("t")},
		},
	}
	nonEmpty := &core.Dependency{
		Name:       "Phi" + name + "NE",
		Premise:    []core.Binding{{Var: "k", Range: core.Dom(core.Name(name))}},
		Conclusion: []core.Binding{{Var: "t", Range: core.Lk(core.Name(name), core.V("k"))}},
	}
	return []*core.Dependency{fwd, inv, nonEmpty}
}

// ---------------------------------------------------------------------
// Hash table

// HashTable has the same logical description as a secondary index but is
// not materialized: a hash join builds it on the fly. The constraints are
// identical (so the rewriter can produce hash-join plans the same way it
// produces index plans); the cost model charges a build cost.
type HashTable struct {
	Name      string
	Relation  string
	Attribute string
}

// StructName implements Structure.
func (h HashTable) StructName() string { return h.Name }

// Compile implements Structure.
func (h HashTable) Compile(all, phys *schema.Schema) ([]*core.Dependency, error) {
	rowT, attrT, err := indexedRelation(all, h.Relation, h.Attribute)
	if err != nil {
		return nil, fmt.Errorf("physical: hash table %s: %w", h.Name, err)
	}
	if err := phys.AddElement(h.Name, types.DictOf(attrT, types.SetOf(rowT)),
		fmt.Sprintf("transient hash table on %s.%s", h.Relation, h.Attribute)); err != nil {
		return nil, err
	}
	return secondaryIndexDeps(h.Name, h.Relation, h.Attribute), nil
}

// ---------------------------------------------------------------------
// Class extent dictionary

// ClassDict stores an OO class extent as a dictionary from fresh oids to
// object records (the paper's representation of classes: "an OO class has
// an extent and is represented as a dictionary whose keys are the oids").
type ClassDict struct {
	Name    string // dictionary name, e.g. "Dept"
	Extent  string // logical extent name, e.g. "depts"
	OIDType string // fresh oid base type name, e.g. "Doid"
}

// StructName implements Structure.
func (c ClassDict) StructName() string { return c.Name }

// Compile implements Structure. The constraints relate the logical extent
// (a set of object records) to the dictionary:
//
//	ΦD : ∀(d ∈ E) ∃(o ∈ dom(D)) D[o] = d
//	ΦD': ∀(o ∈ dom(D)) ∃(d ∈ E) d = D[o]
func (c ClassDict) Compile(all, phys *schema.Schema) ([]*core.Dependency, error) {
	e := all.Element(c.Extent)
	if e == nil {
		return nil, fmt.Errorf("physical: class dict %s: undeclared extent %q", c.Name, c.Extent)
	}
	if e.Type.Kind != types.KindSet {
		return nil, fmt.Errorf("physical: class dict %s: extent %q is not set-typed", c.Name, c.Extent)
	}
	if err := phys.AddElement(c.Name, types.DictOf(types.OID(c.OIDType), e.Type.Elem),
		fmt.Sprintf("class extent dictionary for %s", c.Extent)); err != nil {
		return nil, err
	}
	fwd := &core.Dependency{
		Name:            "Phi" + c.Name,
		Premise:         []core.Binding{{Var: "d", Range: core.Name(c.Extent)}},
		Conclusion:      []core.Binding{{Var: "o", Range: core.Dom(core.Name(c.Name))}},
		ConclusionConds: []core.Cond{{L: core.Lk(core.Name(c.Name), core.V("o")), R: core.V("d")}},
	}
	inv := &core.Dependency{
		Name:            "Phi" + c.Name + "Inv",
		Premise:         []core.Binding{{Var: "o", Range: core.Dom(core.Name(c.Name))}},
		Conclusion:      []core.Binding{{Var: "d", Range: core.Name(c.Extent)}},
		ConclusionConds: []core.Cond{{L: core.V("d"), R: core.Lk(core.Name(c.Name), core.V("o"))}},
	}
	return []*core.Dependency{fwd, inv}, nil
}

// ---------------------------------------------------------------------
// Materialized views

// View is a materialized path-conjunctive view: V = Def, where Def is a PC
// query over the logical schema (and possibly other physical structures
// compiled before it).
type View struct {
	Name string
	Def  *core.Query
}

// StructName implements Structure.
func (v View) StructName() string { return v.Name }

// Compile implements Structure. The constraints are the paper's ΦV/ΦV'
// (§2, "Materialized views / Source capabilities"):
//
//	ΦV : ∀(x̄ ∈ P̄) B(x̄) → ∃(v ∈ V) O(x̄) = v
//	ΦV': ∀(v ∈ V) ∃(x̄ ∈ P̄) B(x̄) and O(x̄) = v
func (v View) Compile(all, phys *schema.Schema) ([]*core.Dependency, error) {
	outT, err := all.CheckQuery(v.Def)
	if err != nil {
		return nil, fmt.Errorf("physical: view %s: %w", v.Name, err)
	}
	if err := phys.AddElement(v.Name, types.SetOf(outT), "materialized view"); err != nil {
		return nil, err
	}
	// Freshen the view variables so they cannot collide with query vars.
	def := v.Def.RenameVars(func(s string) string { return "v_" + s })
	vVar := "v_self"
	fwd := &core.Dependency{
		Name:            "Phi" + v.Name,
		Premise:         append([]core.Binding(nil), def.Bindings...),
		PremiseConds:    append([]core.Cond(nil), def.Conds...),
		Conclusion:      []core.Binding{{Var: vVar, Range: core.Name(v.Name)}},
		ConclusionConds: []core.Cond{{L: core.V(vVar), R: def.Out}},
	}
	inv := &core.Dependency{
		Name:            "Phi" + v.Name + "Inv",
		Premise:         []core.Binding{{Var: vVar, Range: core.Name(v.Name)}},
		Conclusion:      append([]core.Binding(nil), def.Bindings...),
		ConclusionConds: append(append([]core.Cond(nil), def.Conds...), core.Cond{L: core.V(vVar), R: def.Out}),
	}
	return []*core.Dependency{fwd, inv}, nil
}

// ---------------------------------------------------------------------
// Join index

// JoinIndex is the Valduriez join-index triple (§2): a materialized binary
// view associating the keys (surrogates) of matching tuples, plus primary
// indexes on both relations so the surrogates can be dereferenced. The
// view definition is supplied by the caller (the paper's JI generalizes
// the binary relational case to classes).
type JoinIndex struct {
	View       View
	LeftIndex  *PrimaryIndex // optional: nil if the relation is a class dict
	RightIndex *PrimaryIndex
}

// StructName implements Structure.
func (j JoinIndex) StructName() string { return j.View.Name }

// Compile implements Structure.
func (j JoinIndex) Compile(all, phys *schema.Schema) ([]*core.Dependency, error) {
	deps, err := j.View.Compile(all, phys)
	if err != nil {
		return nil, err
	}
	for _, idx := range []*PrimaryIndex{j.LeftIndex, j.RightIndex} {
		if idx == nil {
			continue
		}
		if phys.Has(idx.Name) {
			continue // shared with another structure
		}
		d, err := idx.Compile(all, phys)
		if err != nil {
			return nil, err
		}
		deps = append(deps, d...)
	}
	return deps, nil
}

// ---------------------------------------------------------------------
// GMaps

// GMap is the generalized gmap (§2): a dictionary whose domain is given by
// one query and whose entries collect the outputs of a second query that
// shares the same from/where clause:
//
//	M = dict z in (select DomOut from P̄ where B) :
//	      (select RangeOut from P̄ where B and DomOut = z)
//
// The paper's generalization drops the gmap-language restriction that the
// two projections come from the same PSJ query; here they share bindings
// and conditions but are otherwise free.
type GMap struct {
	Name     string
	Bindings []core.Binding
	Conds    []core.Cond
	DomOut   *core.Term
	RangeOut *core.Term
}

// StructName implements Structure.
func (g GMap) StructName() string { return g.Name }

// Compile implements Structure. Constraints (analogous to a secondary
// index over the shared query):
//
//	ΦG : ∀(x̄ ∈ P̄) B → ∃(k ∈ dom(M), e ∈ M[k]) k = DomOut and e = RangeOut
//	ΦG': ∀(k ∈ dom(M), e ∈ M[k]) ∃(x̄ ∈ P̄) B and k = DomOut and e = RangeOut
func (g GMap) Compile(all, phys *schema.Schema) ([]*core.Dependency, error) {
	domQ := &core.Query{Out: g.DomOut, Bindings: g.Bindings, Conds: g.Conds}
	domT, err := all.CheckQuery(domQ)
	if err != nil {
		return nil, fmt.Errorf("physical: gmap %s domain: %w", g.Name, err)
	}
	rngQ := &core.Query{Out: g.RangeOut, Bindings: g.Bindings, Conds: g.Conds}
	rngT, err := all.CheckQuery(rngQ)
	if err != nil {
		return nil, fmt.Errorf("physical: gmap %s range: %w", g.Name, err)
	}
	if err := phys.AddElement(g.Name, types.DictOf(domT, types.SetOf(rngT)), "gmap"); err != nil {
		return nil, err
	}
	fresh := func(s string) string { return "g_" + s }
	dq := domQ.RenameVars(fresh)
	rq := rngQ.RenameVars(fresh)
	fwd := &core.Dependency{
		Name:         "Phi" + g.Name,
		Premise:      append([]core.Binding(nil), dq.Bindings...),
		PremiseConds: append([]core.Cond(nil), dq.Conds...),
		Conclusion: []core.Binding{
			{Var: "g_k", Range: core.Dom(core.Name(g.Name))},
			{Var: "g_e", Range: core.Lk(core.Name(g.Name), core.V("g_k"))},
		},
		ConclusionConds: []core.Cond{
			{L: core.V("g_k"), R: dq.Out},
			{L: core.V("g_e"), R: rq.Out},
		},
	}
	inv := &core.Dependency{
		Name: "Phi" + g.Name + "Inv",
		Premise: []core.Binding{
			{Var: "g_k", Range: core.Dom(core.Name(g.Name))},
			{Var: "g_e", Range: core.Lk(core.Name(g.Name), core.V("g_k"))},
		},
		Conclusion: append([]core.Binding(nil), dq.Bindings...),
		ConclusionConds: append(append([]core.Cond(nil), dq.Conds...),
			core.Cond{L: core.V("g_k"), R: dq.Out},
			core.Cond{L: core.V("g_e"), R: rq.Out}),
	}
	return []*core.Dependency{fwd, inv}, nil
}

// ---------------------------------------------------------------------
// Design

// Design is a physical design: a logical (base) schema plus a list of
// physical structures. Build compiles everything into the physical schema
// and the implementation-mapping constraint set D'.
type Design struct {
	Logical    *schema.Schema
	structures []Structure
}

// NewDesign creates an empty design over the logical schema.
func NewDesign(logical *schema.Schema) *Design {
	return &Design{Logical: logical}
}

// Add appends a structure to the design.
func (d *Design) Add(st Structure) *Design {
	d.structures = append(d.structures, st)
	return d
}

// Build compiles the design. It returns the physical schema, the
// implementation-mapping dependencies D', and the combined schema (logical
// ∪ physical) used for typing queries and plans.
func (d *Design) Build() (phys *schema.Schema, deps []*core.Dependency, combined *schema.Schema, err error) {
	phys = schema.New(d.Logical.Name + "_phys")
	all := schema.New(d.Logical.Name + "_all")
	for _, e := range d.Logical.Elements() {
		all.MustAddElement(e.Name, e.Type, e.Doc)
	}
	for _, st := range d.structures {
		stDeps, err := st.Compile(all, phys)
		if err != nil {
			return nil, nil, nil, err
		}
		// Make the new elements visible to later structures (a view can
		// mention an index, a join index reuses primary indexes, ...).
		for _, e := range phys.Elements() {
			if !all.Has(e.Name) {
				all.MustAddElement(e.Name, e.Type, e.Doc)
			}
		}
		for _, dep := range stDeps {
			if err := all.CheckDependency(dep); err != nil {
				return nil, nil, nil, fmt.Errorf("physical: structure %s: %w", st.StructName(), err)
			}
			deps = append(deps, dep)
		}
	}
	return phys, deps, all, nil
}

// indexedRelation resolves the row type of a relation and the type of one
// of its attributes.
func indexedRelation(s *schema.Schema, rel, attr string) (rowT, attrT *types.Type, err error) {
	e := s.Element(rel)
	if e == nil {
		return nil, nil, fmt.Errorf("undeclared relation %q", rel)
	}
	if e.Type.Kind != types.KindSet || e.Type.Elem.Kind != types.KindStruct {
		return nil, nil, fmt.Errorf("%q is not a relation (set of records): %s", rel, e.Type)
	}
	rowT = e.Type.Elem
	attrT = rowT.FieldType(attr)
	if attrT == nil {
		return nil, nil, fmt.Errorf("relation %q has no attribute %q", rel, attr)
	}
	if !attrT.IsBase() {
		return nil, nil, fmt.Errorf("attribute %s.%s is not base-typed (%s)", rel, attr, attrT)
	}
	return rowT, attrT, nil
}
