package workload

import (
	"fmt"
	"math/rand"

	"cnb/internal/core"
	"cnb/internal/instance"
	"cnb/internal/physical"
	"cnb/internal/schema"
	"cnb/internal/types"
)

// Star is the star/snowflake workload family used to exercise the
// cost-bounded backchase (E13): a fact table joined to Dims dimension
// tables, with a configurable set of physical access structures whose
// chase blows the subquery lattice up — exactly the regime where
// exhaustive enumeration drowns and cost-bound pruning pays off.
//
//	Fact(K0..K_{d-1}, M)       large
//	D_i(K, A)                  small, A low-cardinality
//	SUB_i(K, B)                snowflake outrigger of D_i (optional)
//
// Physical structures (per StarConfig):
//
//   - FK_i  — secondary index on Fact.K_i (foreign-key index)
//   - SD0   — secondary index on D0.A (the selection attribute)
//   - V_i   — materialized join view Fact ⋈ D_i carrying every fact
//     foreign key, the dimension attribute and the measure, so a plan can
//     trade the {Fact, D_i} join pair for one V_i scan
//
// The query selects on D0.A and returns the measure with every
// dimension attribute, so the cheapest plan navigates SD0 and the
// foreign-key indexes while the expensive lattice regions — states whose
// only closed-range bindings are the Fact/V_i/D_i scans — are prunable
// once any cheap plan is known.
type Star struct {
	Logical  *schema.Schema
	Physical *schema.Schema
	Combined *schema.Schema
	Deps     []*core.Dependency
	Q        *core.Query
	Cfg      StarConfig
}

// StarConfig sizes the schema family.
type StarConfig struct {
	// Dims is the number of dimension tables (>= 1).
	Dims int
	// Snowflake gives every dimension a SUB_i outrigger joined through
	// D_i.S, turning the star into a snowflake.
	Snowflake bool
	// Views is the number of materialized join views V_i = Fact ⋈ D_i
	// (clamped to Dims).
	Views int
	// FactIndexes is the number of fact foreign keys K_i that get a
	// secondary index FK_i (clamped to Dims).
	FactIndexes int
	// DimKeyIndexes is the number of dimensions D_i whose key column gets
	// a secondary index DK_i (clamped to Dims) — the access path that
	// lets a plan fetch dimension attributes by key instead of scanning.
	DimKeyIndexes int
	// DimIndex adds the secondary index SD0 on D0.A.
	DimIndex bool
	// Select adds the selection D0.A = SelectA to the query; with the
	// zero value the query has no constant selection.
	Select bool
	// SelectA is the selection constant (only read when Select is set).
	SelectA int64
	// ProjectAll makes the query project every dimension attribute (and
	// outrigger attribute), pinning every join in every plan. When false
	// the query projects only the measure and D0.A, so that under
	// FKConstraints the non-selective dimension joins are semantically
	// redundant and the backchase can drop them.
	ProjectAll bool
	// FKConstraints adds the referential inclusion dependencies
	// ∀(f ∈ Fact) ∃(d ∈ D_i) f.K_i = d.K (and D_i.S ⊆ SUB_i.K under
	// Snowflake) as logical constraints, so the backchase can eliminate
	// dimension joins that contribute nothing to the output — the
	// semantic optimization of §2 — and the cheapest plan becomes pure
	// index navigation.
	FKConstraints bool
}

// NewStar builds the scenario. The query joins Fact with every dimension
// (and every outrigger when Snowflake is set) and projects the measure
// plus all dimension attributes.
func NewStar(cfg StarConfig) (*Star, error) {
	if cfg.Dims < 1 {
		return nil, fmt.Errorf("workload: star needs at least 1 dimension")
	}
	if cfg.Views > cfg.Dims {
		cfg.Views = cfg.Dims
	}
	if cfg.FactIndexes > cfg.Dims {
		cfg.FactIndexes = cfg.Dims
	}
	if cfg.DimKeyIndexes > cfg.Dims {
		cfg.DimKeyIndexes = cfg.Dims
	}

	logical := schema.New(fmt.Sprintf("Star%d", cfg.Dims))
	factFields := make([]types.Field, 0, cfg.Dims+1)
	for i := 0; i < cfg.Dims; i++ {
		factFields = append(factFields, types.F(factKey(i), types.Int()))
	}
	factFields = append(factFields, types.F("M", types.Int()))
	if err := logical.AddElement("Fact", types.SetOf(types.StructOf(factFields...)), "fact table"); err != nil {
		return nil, err
	}
	dimFields := []types.Field{types.F("K", types.Int()), types.F("A", types.Int())}
	if cfg.Snowflake {
		dimFields = append(dimFields, types.F("S", types.Int()))
	}
	dimT := types.SetOf(types.StructOf(dimFields...))
	subT := types.SetOf(types.StructOf(types.F("K", types.Int()), types.F("B", types.Int())))
	for i := 0; i < cfg.Dims; i++ {
		if err := logical.AddElement(dim(i), dimT, "dimension table"); err != nil {
			return nil, err
		}
		if cfg.Snowflake {
			if err := logical.AddElement(sub(i), subT, "snowflake outrigger"); err != nil {
				return nil, err
			}
		}
	}

	design := physical.NewDesign(logical)
	design.Add(physical.DirectStorage{Name: "Fact"})
	for i := 0; i < cfg.Dims; i++ {
		design.Add(physical.DirectStorage{Name: dim(i)})
		if cfg.Snowflake {
			design.Add(physical.DirectStorage{Name: sub(i)})
		}
	}
	for i := 0; i < cfg.FactIndexes; i++ {
		design.Add(physical.SecondaryIndex{Name: fkIndex(i), Relation: "Fact", Attribute: factKey(i)})
	}
	if cfg.DimIndex {
		design.Add(physical.SecondaryIndex{Name: "SD0", Relation: dim(0), Attribute: "A"})
	}
	for i := 0; i < cfg.DimKeyIndexes; i++ {
		design.Add(physical.SecondaryIndex{Name: dkIndex(i), Relation: dim(i), Attribute: "K"})
	}
	for i := 0; i < cfg.Views; i++ {
		design.Add(physical.View{Name: view(i), Def: starViewDef(cfg, i)})
	}
	phys, deps, combined, err := design.Build()
	if err != nil {
		return nil, err
	}
	if cfg.FKConstraints {
		for i := 0; i < cfg.Dims; i++ {
			deps = append(deps, &core.Dependency{
				Name:       fmt.Sprintf("RIC_Fact_%s", dim(i)),
				Premise:    []core.Binding{{Var: "f", Range: core.Name("Fact")}},
				Conclusion: []core.Binding{{Var: "d", Range: core.Name(dim(i))}},
				ConclusionConds: []core.Cond{
					{L: core.Prj(core.V("f"), factKey(i)), R: core.Prj(core.V("d"), "K")},
				},
			})
			if cfg.Snowflake {
				deps = append(deps, &core.Dependency{
					Name:       fmt.Sprintf("RIC_%s_%s", dim(i), sub(i)),
					Premise:    []core.Binding{{Var: "d", Range: core.Name(dim(i))}},
					Conclusion: []core.Binding{{Var: "s", Range: core.Name(sub(i))}},
					ConclusionConds: []core.Cond{
						{L: core.Prj(core.V("d"), "S"), R: core.Prj(core.V("s"), "K")},
					},
				})
			}
		}
	}

	q := starQuery(cfg)
	if _, err := combined.CheckQuery(q); err != nil {
		return nil, err
	}
	return &Star{Logical: logical, Physical: phys, Combined: combined, Deps: deps, Q: q, Cfg: cfg}, nil
}

// starViewDef is V_i = select struct(K0..K_{d-1}, A, M) from Fact f, D_i d
// where f.K_i = d.K — wide enough that a plan over V_i can still join the
// remaining dimensions through the fact foreign keys.
func starViewDef(cfg StarConfig, i int) *core.Query {
	f, d := core.V("f"), core.V("d")
	fields := make([]core.StructField, 0, cfg.Dims+2)
	for j := 0; j < cfg.Dims; j++ {
		fields = append(fields, core.SF(factKey(j), core.Prj(f, factKey(j))))
	}
	fields = append(fields,
		core.SF("A", core.Prj(d, "A")),
		core.SF("M", core.Prj(f, "M")),
	)
	return &core.Query{
		Out: core.Struct(fields...),
		Bindings: []core.Binding{
			{Var: "f", Range: core.Name("Fact")},
			{Var: "d", Range: core.Name(dim(i))},
		},
		Conds: []core.Cond{{L: core.Prj(f, factKey(i)), R: core.Prj(d, "K")}},
	}
}

// starQuery joins Fact with every dimension (and outrigger), selects on
// D0.A when configured, and projects the measure plus every dimension
// attribute (and outrigger attribute under Snowflake).
func starQuery(cfg StarConfig) *core.Query {
	q := &core.Query{}
	q.Bindings = append(q.Bindings, core.Binding{Var: "f", Range: core.Name("Fact")})
	fields := []core.StructField{core.SF("M", core.Prj(core.V("f"), "M"))}
	for i := 0; i < cfg.Dims; i++ {
		dv := fmt.Sprintf("d%d", i)
		q.Bindings = append(q.Bindings, core.Binding{Var: dv, Range: core.Name(dim(i))})
		q.Conds = append(q.Conds, core.Cond{
			L: core.Prj(core.V("f"), factKey(i)),
			R: core.Prj(core.V(dv), "K"),
		})
		if cfg.ProjectAll || i == 0 {
			fields = append(fields, core.SF(fmt.Sprintf("A%d", i), core.Prj(core.V(dv), "A")))
		}
		if cfg.Snowflake {
			sv := fmt.Sprintf("s%d", i)
			q.Bindings = append(q.Bindings, core.Binding{Var: sv, Range: core.Name(sub(i))})
			q.Conds = append(q.Conds, core.Cond{
				L: core.Prj(core.V(dv), "S"),
				R: core.Prj(core.V(sv), "K"),
			})
			if cfg.ProjectAll {
				fields = append(fields, core.SF(fmt.Sprintf("B%d", i), core.Prj(core.V(sv), "B")))
			}
		}
	}
	if cfg.Select {
		q.Conds = append(q.Conds, core.Cond{
			L: core.Prj(core.V("d0"), "A"),
			R: core.C(cfg.SelectA),
		})
	}
	q.Out = core.Struct(fields...)
	return q
}

// StarGenOptions sizes a generated star/snowflake instance. Generation
// is fully deterministic for a given options value: the same seed yields
// the same instance at any scale, which is what lets the E18 execution
// gates compare exact row/eval counters across machines.
type StarGenOptions struct {
	NumFact int   // fact rows
	NumDim  int   // rows per dimension
	NumSub  int   // rows per outrigger (snowflake only)
	DomA    int   // distinct values of the dimension attribute A
	Seed    int64 // deterministic source for the foreign-key draws
	// ZipfS, when > 1, draws fact foreign keys from a zipf distribution
	// with parameter s = ZipfS over the dimension keys (key 0 most
	// frequent) instead of uniformly — the skew makes index buckets
	// wildly uneven, which is where pre-sized hash builds and pushed-down
	// selections earn their keep at the 10^5–10^7 row tiers.
	ZipfS float64
}

// Generate produces a consistent instance: every fact foreign key hits a
// dimension row, every dimension outrigger key hits a SUB row, and all
// configured indexes and views are materialized faithfully — so
// cost.FromInstance sees a large Fact/V_i cardinality next to cheap
// index access paths.
func (s *Star) Generate(opts StarGenOptions) *instance.Instance {
	if opts.NumDim <= 0 {
		opts.NumDim = 1
	}
	if opts.NumSub <= 0 {
		opts.NumSub = 1
	}
	if opts.DomA <= 0 {
		opts.DomA = 1
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	in := instance.NewInstance()

	// Dimensions (shared shape): D_i row k has A = k mod DomA and, under
	// Snowflake, S = k mod NumSub. Every dimension, key index, and
	// selection index references the same row value, so each distinct row
	// is built exactly once — at 10^7-row scale the savings from sharing
	// immutable structs across collections dominate generation cost.
	dimRows := make([]*instance.Struct, opts.NumDim)
	for k := range dimRows {
		vals := []any{"K", instance.Int(int64(k)), "A", instance.Int(int64(k % opts.DomA))}
		if s.Cfg.Snowflake {
			vals = append(vals, "S", instance.Int(int64(k%opts.NumSub)))
		}
		dimRows[k] = instance.StructOf(vals...)
	}
	dimRow := func(k int) *instance.Struct { return dimRows[k] }
	for i := 0; i < s.Cfg.Dims; i++ {
		dset := instance.NewSet()
		for k := 0; k < opts.NumDim; k++ {
			dset.Add(dimRow(k))
		}
		in.Bind(dim(i), dset)
		if s.Cfg.Snowflake {
			sset := instance.NewSet()
			for k := 0; k < opts.NumSub; k++ {
				sset.Add(instance.StructOf("K", instance.Int(int64(k)), "B", instance.Int(int64(k))))
			}
			in.Bind(sub(i), sset)
		}
	}

	// Fact rows: foreign keys drawn uniformly, or zipf-skewed when
	// ZipfS > 1. Each row struct is built once and shared between the
	// base Fact set, every FK index bucket, and the factRows bookkeeping.
	var zipf *rand.Zipf
	if opts.ZipfS > 1 && opts.NumDim > 1 {
		zipf = rand.NewZipf(rng, opts.ZipfS, 1, uint64(opts.NumDim-1))
	}
	drawKey := func() int {
		if zipf != nil {
			return int(zipf.Uint64())
		}
		return rng.Intn(opts.NumDim)
	}
	factSet := instance.NewSet()
	type factRow struct {
		keys []int
		row  *instance.Struct
	}
	rows := make([]factRow, opts.NumFact)
	for r := 0; r < opts.NumFact; r++ {
		keys := make([]int, s.Cfg.Dims)
		vals := make([]any, 0, 2*(s.Cfg.Dims+1))
		for i := 0; i < s.Cfg.Dims; i++ {
			keys[i] = drawKey()
			vals = append(vals, factKey(i), instance.Int(int64(keys[i])))
		}
		vals = append(vals, "M", instance.Int(int64(r)))
		row := instance.StructOf(vals...)
		rows[r] = factRow{keys: keys, row: row}
		factSet.Add(row)
	}
	in.Bind("Fact", factSet)

	// Foreign-key indexes FK_i: K_i value -> set of (shared) fact rows.
	for i := 0; i < s.Cfg.FactIndexes; i++ {
		buckets := map[int]*instance.Set{}
		for _, r := range rows {
			k := r.keys[i]
			if buckets[k] == nil {
				buckets[k] = instance.NewSet()
			}
			buckets[k].Add(r.row)
		}
		d := instance.NewDict()
		for k, set := range buckets {
			d.Put(instance.Int(int64(k)), set)
		}
		in.Bind(fkIndex(i), d)
	}

	// Dimension-key indexes DK_i: K value -> singleton set of D_i rows.
	for i := 0; i < s.Cfg.DimKeyIndexes; i++ {
		d := instance.NewDict()
		for k := 0; k < opts.NumDim; k++ {
			set := instance.NewSet()
			set.Add(dimRow(k))
			d.Put(instance.Int(int64(k)), set)
		}
		in.Bind(dkIndex(i), d)
	}

	// Selection-attribute index SD0: A value -> set of D0 rows.
	if s.Cfg.DimIndex {
		buckets := map[int]*instance.Set{}
		for k := 0; k < opts.NumDim; k++ {
			a := k % opts.DomA
			if buckets[a] == nil {
				buckets[a] = instance.NewSet()
			}
			buckets[a].Add(dimRow(k))
		}
		d := instance.NewDict()
		for a, set := range buckets {
			d.Put(instance.Int(int64(a)), set)
		}
		in.Bind("SD0", d)
	}

	// Materialized views V_i = Fact ⋈ D_i (every foreign key is valid by
	// construction, so |V_i| = |Fact|).
	for i := 0; i < s.Cfg.Views; i++ {
		vset := instance.NewSet()
		for m, r := range rows {
			vals := make([]any, 0, 2*(s.Cfg.Dims+2))
			for j, k := range r.keys {
				vals = append(vals, factKey(j), instance.Int(int64(k)))
			}
			vals = append(vals,
				"A", instance.Int(int64(r.keys[i]%opts.DomA)),
				"M", instance.Int(int64(m)))
			vset.Add(instance.StructOf(vals...))
		}
		in.Bind(view(i), vset)
	}
	return in
}

// RandomStar draws a small random member of the star/snowflake family
// plus matching generation options, sized so that exhaustive backchase
// enumeration and plan execution both stay fast — the randomized
// calibration suite runs dozens of cases. The instance is always
// consistent (NumDim >= DomA so every selection constant hits a
// dimension row and every index/view is fully materialized), so measured
// executions of equivalent plans agree.
func RandomStar(r *rand.Rand) (StarConfig, StarGenOptions) {
	cfg := StarConfig{
		Dims:          1,
		Views:         r.Intn(2),
		FactIndexes:   r.Intn(2),
		DimKeyIndexes: r.Intn(2),
		DimIndex:      r.Intn(2) == 0,
		Select:        r.Intn(4) != 0,
		ProjectAll:    r.Intn(2) == 0,
		FKConstraints: r.Intn(2) == 0,
	}
	// A second dimension (occasionally snowflaked) grows the lattice
	// considerably; draw it rarely and strip the extras so the exhaustive
	// reference enumeration stays affordable.
	if r.Intn(4) == 0 {
		cfg.Dims = 2
		cfg.Snowflake = r.Intn(4) == 0
		cfg.Views = 0
		cfg.DimKeyIndexes = 0
	}
	domA := 2 + r.Intn(4)
	cfg.SelectA = int64(r.Intn(domA))
	gen := StarGenOptions{
		NumFact: 20 + r.Intn(40),
		NumDim:  domA + r.Intn(12),
		NumSub:  2 + r.Intn(4),
		DomA:    domA,
		Seed:    r.Int63(),
	}
	return cfg, gen
}

func factKey(i int) string { return fmt.Sprintf("K%d", i) }
func dim(i int) string     { return fmt.Sprintf("D%d", i) }
func sub(i int) string     { return fmt.Sprintf("SUB%d", i) }
func fkIndex(i int) string { return fmt.Sprintf("FK%d", i) }
func dkIndex(i int) string { return fmt.Sprintf("DK%d", i) }
func view(i int) string    { return fmt.Sprintf("V%d", i) }
