package workload

import (
	"math"

	"cnb/internal/cost"
)

// SyntheticStats derives cost statistics analytically from the generator
// parameters, without touching generated data. cost.FromInstance scans
// every collection and builds per-field distinct maps — fine at
// calibration scale, prohibitive at the 10^5–10^7 row tiers E18 runs —
// while the star family's statistics are all closed-form: the generator
// fixes every cardinality, the dimension attributes are residues, and
// the only randomness (fact foreign-key draws) has a standard expected
// distinct-count. Deterministic quantities are exact; the FK-dependent
// ones are expectations, which is all the planner consumes.
//
// Minimum fanouts are set conservatively (1 for randomly filled
// buckets), so admissible lower bounds derived from them stay sound for
// any seed and any zipf skew.
func (s *Star) SyntheticStats(opts StarGenOptions) *cost.Stats {
	if opts.NumDim <= 0 {
		opts.NumDim = 1
	}
	if opts.NumSub <= 0 {
		opts.NumSub = 1
	}
	if opts.DomA <= 0 {
		opts.DomA = 1
	}
	nf := float64(opts.NumFact)
	nd := float64(opts.NumDim)
	ns := float64(opts.NumSub)
	da := math.Min(float64(opts.DomA), nd)

	// Expected number of distinct dimension keys hit by NumFact uniform
	// draws; under zipf skew fewer keys are hit, but the uniform
	// expectation stays a usable upper estimate for ranking plans.
	distinctKeys := nd
	if nf < 1e6*nd { // avoid pow underflow at extreme ratios
		distinctKeys = nd * (1 - math.Pow(1-1/nd, nf))
	}
	if distinctKeys < 1 {
		distinctKeys = 1
	}

	st := cost.NewStats()
	st.Card["Fact"] = nf
	st.Distinct["Fact.M"] = nf
	for i := 0; i < s.Cfg.Dims; i++ {
		st.Distinct["Fact."+factKey(i)] = distinctKeys
		st.Card[dim(i)] = nd
		st.Distinct[dim(i)+".K"] = nd
		st.Distinct[dim(i)+".A"] = da
		if s.Cfg.Snowflake {
			st.Distinct[dim(i)+".S"] = math.Min(ns, nd)
			st.Card[sub(i)] = ns
			st.Distinct[sub(i)+".K"] = ns
			st.Distinct[sub(i)+".B"] = ns
		}
	}
	for i := 0; i < s.Cfg.FactIndexes; i++ {
		st.Card[fkIndex(i)] = distinctKeys
		st.EntryFanout[fkIndex(i)] = nf / distinctKeys
		st.EntryFanoutMin[fkIndex(i)] = 1
	}
	for i := 0; i < s.Cfg.DimKeyIndexes; i++ {
		st.Card[dkIndex(i)] = nd
		st.EntryFanout[dkIndex(i)] = 1
		st.EntryFanoutMin[dkIndex(i)] = 1
	}
	if s.Cfg.DimIndex {
		// SD0 buckets partition the NumDim dimension rows by A = k mod
		// DomA: bucket sizes are exactly floor or ceil of NumDim/DomA.
		st.Card["SD0"] = da
		st.EntryFanout["SD0"] = nd / da
		st.EntryFanoutMin["SD0"] = math.Max(1, math.Floor(nd/da))
	}
	for i := 0; i < s.Cfg.Views; i++ {
		st.Card[view(i)] = nf
		for j := 0; j < s.Cfg.Dims; j++ {
			st.Distinct[view(i)+"."+factKey(j)] = distinctKeys
		}
		st.Distinct[view(i)+".A"] = math.Min(distinctKeys, da)
		st.Distinct[view(i)+".M"] = nf
	}
	return st
}
