package workload

import (
	"fmt"
	"math/rand"

	"cnb/internal/core"
	"cnb/internal/instance"
	"cnb/internal/physical"
	"cnb/internal/schema"
	"cnb/internal/types"
)

// IndexOnly is the first relational scenario of §4: logical schema R(A,B,C)
// with secondary indexes SA on A and SB on B, and the selection query
//
//	select r.C from R r where r.A = 5 and r.B = 9
//
// whose index-only access-path plan interleaves a scan of SA (filtered on
// the key) with non-failing lookups into SB.
type IndexOnly struct {
	Logical  *schema.Schema
	Physical *schema.Schema
	Combined *schema.Schema
	Deps     []*core.Dependency
	Q        *core.Query
}

// NewIndexOnly builds the scenario. aVal and bVal are the two selection
// constants (the paper uses 5 and 9 generically).
func NewIndexOnly(aVal, bVal int64) (*IndexOnly, error) {
	logical := schema.New("RABC")
	rowT := types.StructOf(types.F("A", types.Int()), types.F("B", types.Int()), types.F("C", types.Int()))
	if err := logical.AddElement("R", types.SetOf(rowT), "base relation"); err != nil {
		return nil, err
	}
	design := physical.NewDesign(logical)
	design.Add(physical.DirectStorage{Name: "R"})
	design.Add(physical.SecondaryIndex{Name: "SA", Relation: "R", Attribute: "A"})
	design.Add(physical.SecondaryIndex{Name: "SB", Relation: "R", Attribute: "B"})
	phys, deps, combined, err := design.Build()
	if err != nil {
		return nil, err
	}
	q := &core.Query{
		Out:      core.Prj(core.V("r"), "C"),
		Bindings: []core.Binding{{Var: "r", Range: core.Name("R")}},
		Conds: []core.Cond{
			{L: core.Prj(core.V("r"), "A"), R: core.C(aVal)},
			{L: core.Prj(core.V("r"), "B"), R: core.C(bVal)},
		},
	}
	if _, err := combined.CheckQuery(q); err != nil {
		return nil, err
	}
	return &IndexOnly{Logical: logical, Physical: phys, Combined: combined, Deps: deps, Q: q}, nil
}

// Generate produces an R instance with derived SA/SB indexes. Values of A
// and B are drawn from [0, domainA) and [0, domainB).
func (s *IndexOnly) Generate(n, domainA, domainB int, seed int64) *instance.Instance {
	rng := rand.New(rand.NewSource(seed))
	r := instance.NewSet()
	sa := map[int64]*instance.Set{}
	sb := map[int64]*instance.Set{}
	for i := 0; i < n; i++ {
		a := int64(rng.Intn(domainA))
		b := int64(rng.Intn(domainB))
		row := instance.StructOf("A", instance.Int(a), "B", instance.Int(b), "C", instance.Int(int64(i)))
		r.Add(row)
		if sa[a] == nil {
			sa[a] = instance.NewSet()
		}
		sa[a].Add(row)
		if sb[b] == nil {
			sb[b] = instance.NewSet()
		}
		sb[b].Add(row)
	}
	saDict := instance.NewDict()
	for k, set := range sa {
		saDict.Put(instance.Int(k), set)
	}
	sbDict := instance.NewDict()
	for k, set := range sb {
		sbDict.Put(instance.Int(k), set)
	}
	in := instance.NewInstance()
	in.Bind("R", r)
	in.Bind("SA", saDict)
	in.Bind("SB", sbDict)
	return in
}

// ViewIndex is the second relational scenario of §4: R(A,B) ⋈ S(B,C) with
// a materialized view V = π_A(R ⋈ S) and secondary indexes IR on R.A and
// IS on S.B. The optimal plan scans V and navigates both indexes.
type ViewIndex struct {
	Logical  *schema.Schema
	Physical *schema.Schema
	Combined *schema.Schema
	Deps     []*core.Dependency
	Q        *core.Query
}

// NewViewIndex builds the scenario.
func NewViewIndex() (*ViewIndex, error) {
	logical := schema.New("RS")
	rT := types.StructOf(types.F("A", types.Int()), types.F("B", types.Int()))
	sT := types.StructOf(types.F("B", types.Int()), types.F("C", types.Int()))
	if err := logical.AddElement("R", types.SetOf(rT), "left relation"); err != nil {
		return nil, err
	}
	if err := logical.AddElement("S", types.SetOf(sT), "right relation"); err != nil {
		return nil, err
	}
	design := physical.NewDesign(logical)
	design.Add(physical.DirectStorage{Name: "R"})
	design.Add(physical.DirectStorage{Name: "S"})
	design.Add(physical.SecondaryIndex{Name: "IR", Relation: "R", Attribute: "A"})
	design.Add(physical.SecondaryIndex{Name: "IS", Relation: "S", Attribute: "B"})
	design.Add(physical.View{
		Name: "V",
		Def: &core.Query{
			Out: core.Struct(core.SF("A", core.Prj(core.V("r"), "A"))),
			Bindings: []core.Binding{
				{Var: "r", Range: core.Name("R")},
				{Var: "s", Range: core.Name("S")},
			},
			Conds: []core.Cond{{L: core.Prj(core.V("r"), "B"), R: core.Prj(core.V("s"), "B")}},
		},
	})
	phys, deps, combined, err := design.Build()
	if err != nil {
		return nil, err
	}
	q := &core.Query{
		Out: core.Struct(
			core.SF("A", core.Prj(core.V("r"), "A")),
			core.SF("B", core.Prj(core.V("s"), "B")),
			core.SF("C", core.Prj(core.V("s"), "C")),
		),
		Bindings: []core.Binding{
			{Var: "r", Range: core.Name("R")},
			{Var: "s", Range: core.Name("S")},
		},
		Conds: []core.Cond{{L: core.Prj(core.V("r"), "B"), R: core.Prj(core.V("s"), "B")}},
	}
	if _, err := combined.CheckQuery(q); err != nil {
		return nil, err
	}
	return &ViewIndex{Logical: logical, Physical: phys, Combined: combined, Deps: deps, Q: q}, nil
}

// Generate produces R, S with derived V, IR, IS. joinSelectivity controls
// how many R rows find S partners (share of B values in common).
func (s *ViewIndex) Generate(nR, nS, domainB int, seed int64) *instance.Instance {
	rng := rand.New(rand.NewSource(seed))
	rSet := instance.NewSet()
	sSet := instance.NewSet()
	type rRow struct{ a, b int64 }
	var rRows []rRow
	for i := 0; i < nR; i++ {
		a, b := int64(i), int64(rng.Intn(domainB))
		rRows = append(rRows, rRow{a, b})
		rSet.Add(instance.StructOf("A", instance.Int(a), "B", instance.Int(b)))
	}
	type sRow struct{ b, c int64 }
	var sRows []sRow
	for i := 0; i < nS; i++ {
		b, c := int64(rng.Intn(domainB)), int64(i)
		sRows = append(sRows, sRow{b, c})
		sSet.Add(instance.StructOf("B", instance.Int(b), "C", instance.Int(c)))
	}
	// Derived structures.
	ir := map[int64]*instance.Set{}
	for _, r := range rRows {
		if ir[r.a] == nil {
			ir[r.a] = instance.NewSet()
		}
		ir[r.a].Add(instance.StructOf("A", instance.Int(r.a), "B", instance.Int(r.b)))
	}
	is := map[int64]*instance.Set{}
	for _, s := range sRows {
		if is[s.b] == nil {
			is[s.b] = instance.NewSet()
		}
		is[s.b].Add(instance.StructOf("B", instance.Int(s.b), "C", instance.Int(s.c)))
	}
	vSet := instance.NewSet()
	sByB := map[int64]bool{}
	for _, s := range sRows {
		sByB[s.b] = true
	}
	for _, r := range rRows {
		if sByB[r.b] {
			vSet.Add(instance.StructOf("A", instance.Int(r.a)))
		}
	}
	irDict := instance.NewDict()
	for k, set := range ir {
		irDict.Put(instance.Int(k), set)
	}
	isDict := instance.NewDict()
	for k, set := range is {
		isDict.Put(instance.Int(k), set)
	}
	in := instance.NewInstance()
	in.Bind("R", rSet)
	in.Bind("S", sSet)
	in.Bind("V", vSet)
	in.Bind("IR", irDict)
	in.Bind("IS", isDict)
	return in
}

// Chain builds a chain-join scenario for the scaling experiments (E6/E9):
// relations R0(A,B), R1(A,B), ..., R_{n-1}(A,B) joined on Ri.B = Ri+1.A,
// with a materialized view Vi = Ri ⋈ Ri+1 for every adjacent pair
// (views up to numViews). The query joins the whole chain.
type Chain struct {
	Logical  *schema.Schema
	Physical *schema.Schema
	Combined *schema.Schema
	Deps     []*core.Dependency
	Q        *core.Query
	N        int
}

// NewChain builds a chain of length n with the given number of pairwise
// views (0 <= numViews <= n-1).
func NewChain(n, numViews int) (*Chain, error) {
	if n < 1 {
		return nil, fmt.Errorf("workload: chain length must be >= 1")
	}
	logical := schema.New(fmt.Sprintf("Chain%d", n))
	rowT := types.StructOf(types.F("A", types.Int()), types.F("B", types.Int()))
	for i := 0; i < n; i++ {
		if err := logical.AddElement(rel(i), types.SetOf(rowT), "chain relation"); err != nil {
			return nil, err
		}
	}
	design := physical.NewDesign(logical)
	for i := 0; i < n; i++ {
		design.Add(physical.DirectStorage{Name: rel(i)})
	}
	for i := 0; i < numViews && i < n-1; i++ {
		design.Add(physical.View{
			Name: fmt.Sprintf("V%d", i),
			Def: &core.Query{
				Out: core.Struct(
					core.SF("A", core.Prj(core.V("x"), "A")),
					core.SF("B", core.Prj(core.V("y"), "B")),
				),
				Bindings: []core.Binding{
					{Var: "x", Range: core.Name(rel(i))},
					{Var: "y", Range: core.Name(rel(i + 1))},
				},
				Conds: []core.Cond{{L: core.Prj(core.V("x"), "B"), R: core.Prj(core.V("y"), "A")}},
			},
		})
	}
	phys, deps, combined, err := design.Build()
	if err != nil {
		return nil, err
	}
	q := &core.Query{
		Out: core.Struct(
			core.SF("First", core.Prj(core.V("x0"), "A")),
			core.SF("Last", core.Prj(core.V(xvar(n-1)), "B")),
		),
	}
	for i := 0; i < n; i++ {
		q.Bindings = append(q.Bindings, core.Binding{Var: xvar(i), Range: core.Name(rel(i))})
		if i > 0 {
			q.Conds = append(q.Conds, core.Cond{
				L: core.Prj(core.V(xvar(i-1)), "B"),
				R: core.Prj(core.V(xvar(i)), "A"),
			})
		}
	}
	if _, err := combined.CheckQuery(q); err != nil {
		return nil, err
	}
	return &Chain{Logical: logical, Physical: phys, Combined: combined, Deps: deps, Q: q, N: n}, nil
}

func rel(i int) string  { return fmt.Sprintf("R%d", i) }
func xvar(i int) string { return fmt.Sprintf("x%d", i) }

// Generate produces chain relation instances where each Ri has rows
// (k, k) for k in [0, size): every chain join succeeds, and the derived
// views are consistent.
func (c *Chain) Generate(size int) *instance.Instance {
	in := instance.NewInstance()
	for i := 0; i < c.N; i++ {
		set := instance.NewSet()
		for k := 0; k < size; k++ {
			set.Add(instance.StructOf("A", instance.Int(int64(k)), "B", instance.Int(int64(k))))
		}
		in.Bind(rel(i), set)
	}
	for _, e := range c.Physical.Elements() {
		if len(e.Name) > 1 && e.Name[0] == 'V' {
			set := instance.NewSet()
			for k := 0; k < size; k++ {
				set.Add(instance.StructOf("A", instance.Int(int64(k)), "B", instance.Int(int64(k))))
			}
			in.Bind(e.Name, set)
		}
	}
	return in
}
