// Package workload provides the paper's schemas, queries and physical
// designs as reusable catalogs, plus synthetic data generators that
// produce instances guaranteed to satisfy the constraint sets. Every
// experiment in EXPERIMENTS.md draws its inputs from here.
package workload

import (
	"fmt"
	"math/rand"

	"cnb/internal/core"
	"cnb/internal/instance"
	"cnb/internal/physical"
	"cnb/internal/schema"
	"cnb/internal/types"
)

// ProjDept is the paper's running example (Figures 2 and 3): the logical
// ProjDept schema with its referential-integrity, inverse-relationship and
// key constraints, and the physical design with the Dept class dictionary,
// the directly stored Proj relation, primary index I, secondary index SI
// and the materialized join-index view JI.
type ProjDept struct {
	Logical  *schema.Schema
	Physical *schema.Schema
	Combined *schema.Schema
	// LogicalDeps are the Figure-2 constraints (RICs, INVs, KEYs).
	LogicalDeps []*core.Dependency
	// PhysicalDeps are the implementation-mapping constraints D′ compiled
	// from the physical design (ΦDept, ΦI, ΦSI, ΦJI and inverses).
	PhysicalDeps []*core.Dependency
	// Q is the §1 query: project names with budgets and department names
	// for customer CitiBank.
	Q *core.Query
}

// DeptRecType is the object type of Dept class members.
func DeptRecType() *types.Type {
	return types.StructOf(
		types.F("DName", types.StringT()),
		types.F("DProjs", types.SetOf(types.StringT())),
		types.F("MgrName", types.StringT()),
	)
}

// ProjRowType is the row type of the Proj relation.
func ProjRowType() *types.Type {
	return types.StructOf(
		types.F("PName", types.StringT()),
		types.F("CustName", types.StringT()),
		types.F("PDept", types.StringT()),
		types.F("Budg", types.Int()),
	)
}

// NewProjDept builds the catalog.
func NewProjDept() (*ProjDept, error) {
	logical := schema.New("ProjDept")
	if err := logical.AddElement("Proj", types.SetOf(ProjRowType()), "projects relation"); err != nil {
		return nil, err
	}
	if err := logical.AddElement("depts", types.SetOf(DeptRecType()), "Dept class extent"); err != nil {
		return nil, err
	}

	v, n, prj, dom, lk := core.V, core.Name, core.Prj, core.Dom, core.Lk
	mk := func(name string, prem []core.Binding, premC []core.Cond, conc []core.Binding, concC []core.Cond) *core.Dependency {
		return &core.Dependency{Name: name, Premise: prem, PremiseConds: premC, Conclusion: conc, ConclusionConds: concC}
	}
	logicalDeps := []*core.Dependency{
		// RIC1: every project name in a department is a project.
		mk("RIC1",
			[]core.Binding{{Var: "d", Range: n("depts")}, {Var: "s", Range: prj(v("d"), "DProjs")}}, nil,
			[]core.Binding{{Var: "p", Range: n("Proj")}},
			[]core.Cond{{L: v("s"), R: prj(v("p"), "PName")}}),
		// RIC2: every project's department exists.
		mk("RIC2",
			[]core.Binding{{Var: "p", Range: n("Proj")}}, nil,
			[]core.Binding{{Var: "d", Range: n("depts")}},
			[]core.Cond{{L: prj(v("p"), "PDept"), R: prj(v("d"), "DName")}}),
		// INV1/INV2: DProjs and PDept are inverse relationships.
		mk("INV1",
			[]core.Binding{{Var: "d", Range: n("depts")}, {Var: "s", Range: prj(v("d"), "DProjs")}, {Var: "p", Range: n("Proj")}},
			[]core.Cond{{L: v("s"), R: prj(v("p"), "PName")}},
			nil,
			[]core.Cond{{L: prj(v("p"), "PDept"), R: prj(v("d"), "DName")}}),
		mk("INV2",
			[]core.Binding{{Var: "p", Range: n("Proj")}, {Var: "d", Range: n("depts")}},
			[]core.Cond{{L: prj(v("p"), "PDept"), R: prj(v("d"), "DName")}},
			[]core.Binding{{Var: "s", Range: prj(v("d"), "DProjs")}},
			[]core.Cond{{L: prj(v("p"), "PName"), R: v("s")}}),
		// KEY1/KEY2: DName keys depts, PName keys Proj.
		mk("KEY1",
			[]core.Binding{{Var: "a", Range: n("depts")}, {Var: "b", Range: n("depts")}},
			[]core.Cond{{L: prj(v("a"), "DName"), R: prj(v("b"), "DName")}},
			nil,
			[]core.Cond{{L: v("a"), R: v("b")}}),
		mk("KEY2",
			[]core.Binding{{Var: "a", Range: n("Proj")}, {Var: "b", Range: n("Proj")}},
			[]core.Cond{{L: prj(v("a"), "PName"), R: prj(v("b"), "PName")}},
			nil,
			[]core.Cond{{L: v("a"), R: v("b")}}),
	}
	for _, d := range logicalDeps {
		if err := logical.AddDependency(d); err != nil {
			return nil, err
		}
	}

	// Physical design (Figure 3). The JI view is defined over the Dept
	// dictionary, so the ClassDict must be compiled before it.
	design := physical.NewDesign(logical)
	design.Add(physical.DirectStorage{Name: "Proj"})
	design.Add(physical.ClassDict{Name: "Dept", Extent: "depts", OIDType: "Doid"})
	design.Add(physical.PrimaryIndex{Name: "I", Relation: "Proj", Key: "PName"})
	design.Add(physical.SecondaryIndex{Name: "SI", Relation: "Proj", Attribute: "CustName"})
	design.Add(physical.View{
		Name: "JI",
		Def: &core.Query{
			Out: core.Struct(
				core.SF("DOID", v("dd")),
				core.SF("PN", prj(v("p"), "PName")),
			),
			Bindings: []core.Binding{
				{Var: "dd", Range: dom(n("Dept"))},
				{Var: "s", Range: prj(lk(n("Dept"), v("dd")), "DProjs")},
				{Var: "p", Range: n("Proj")},
			},
			Conds: []core.Cond{{L: v("s"), R: prj(v("p"), "PName")}},
		},
	})
	phys, physDeps, combined, err := design.Build()
	if err != nil {
		return nil, err
	}

	q := &core.Query{
		Out: core.Struct(
			core.SF("PN", v("s")),
			core.SF("PB", prj(v("p"), "Budg")),
			core.SF("DN", prj(v("d"), "DName")),
		),
		Bindings: []core.Binding{
			{Var: "d", Range: n("depts")},
			{Var: "s", Range: prj(v("d"), "DProjs")},
			{Var: "p", Range: n("Proj")},
		},
		Conds: []core.Cond{
			{L: v("s"), R: prj(v("p"), "PName")},
			{L: prj(v("p"), "CustName"), R: core.C("CitiBank")},
		},
	}
	if _, err := combined.CheckQuery(q); err != nil {
		return nil, fmt.Errorf("workload: paper query does not type-check: %w", err)
	}

	return &ProjDept{
		Logical:      logical,
		Physical:     phys,
		Combined:     combined,
		LogicalDeps:  logicalDeps,
		PhysicalDeps: physDeps,
		Q:            q,
	}, nil
}

// AllDeps returns D ∪ D′: the logical constraints plus the implementation
// mapping.
func (p *ProjDept) AllDeps() []*core.Dependency {
	out := append([]*core.Dependency(nil), p.PhysicalDeps...)
	return append(out, p.LogicalDeps...)
}

// GenOptions controls ProjDept data generation.
type GenOptions struct {
	NumDepts        int
	ProjsPerDept    int
	NumCustomers    int     // distinct customer names
	CitiBankShare   float64 // fraction of projects owned by "CitiBank"
	Seed            int64
	SkipJI          bool // leave the JI view out (for staleness tests)
	CorruptInverses bool // deliberately violate INV1/INV2 (negative tests)
}

func (o GenOptions) withDefaults() GenOptions {
	if o.NumDepts == 0 {
		o.NumDepts = 10
	}
	if o.ProjsPerDept == 0 {
		o.ProjsPerDept = 5
	}
	if o.NumCustomers == 0 {
		o.NumCustomers = 5
	}
	if o.CitiBankShare == 0 {
		o.CitiBankShare = 0.2
	}
	return o
}

// Generate produces a ProjDept instance that satisfies all Figure-2
// constraints and in which every physical structure is consistent with
// the base data (indexes and JI are derived, not sampled).
func (p *ProjDept) Generate(o GenOptions) *instance.Instance {
	o = o.withDefaults()
	rng := rand.New(rand.NewSource(o.Seed))

	projSet := instance.NewSet()
	deptsSet := instance.NewSet()
	deptDict := instance.NewDict()
	iDict := instance.NewDict()
	siBuckets := map[string]*instance.Set{}
	siKeys := map[string]instance.Value{}
	jiSet := instance.NewSet()

	custName := func() string {
		if rng.Float64() < o.CitiBankShare {
			return "CitiBank"
		}
		return fmt.Sprintf("Cust%02d", rng.Intn(o.NumCustomers))
	}

	oidSerial := 0
	for di := 0; di < o.NumDepts; di++ {
		dname := fmt.Sprintf("Dept%03d", di)
		dprojs := instance.NewSet()
		var projRows []*instance.Struct
		for pi := 0; pi < o.ProjsPerDept; pi++ {
			pname := fmt.Sprintf("P%03d_%03d", di, pi)
			pdept := dname
			if o.CorruptInverses && pi == 0 && di == 0 {
				pdept = "NoSuchDept"
			}
			row := instance.StructOf(
				"PName", instance.Str(pname),
				"CustName", instance.Str(custName()),
				"PDept", instance.Str(pdept),
				"Budg", instance.Int(int64(10+rng.Intn(990))),
			)
			projRows = append(projRows, row)
			dprojs.Add(instance.Str(pname))
		}
		dept := instance.StructOf(
			"DName", instance.Str(dname),
			"DProjs", dprojs,
			"MgrName", instance.Str(fmt.Sprintf("Mgr%03d", di)),
		)
		deptsSet.Add(dept)
		oid := instance.OID{TypeName: "Doid", Serial: oidSerial}
		oidSerial++
		deptDict.Put(oid, dept)

		for _, row := range projRows {
			projSet.Add(row)
			pn, _ := row.Field("PName")
			cn, _ := row.Field("CustName")
			iDict.Put(pn, row)
			bk := cn.Key()
			if siBuckets[bk] == nil {
				siBuckets[bk] = instance.NewSet()
				siKeys[bk] = cn
			}
			siBuckets[bk].Add(row)
			if !o.SkipJI {
				jiSet.Add(instance.StructOf("DOID", oid, "PN", pn))
			}
		}
	}
	siDict := instance.NewDict()
	for bk, bucket := range siBuckets {
		siDict.Put(siKeys[bk], bucket)
	}

	in := instance.NewInstance()
	in.Bind("Proj", projSet)
	in.Bind("depts", deptsSet)
	in.Bind("Dept", deptDict)
	in.Bind("I", iDict)
	in.Bind("SI", siDict)
	in.Bind("JI", jiSet)
	return in
}
