package workload

import (
	"math/rand"
	"testing"

	"cnb/internal/eval"
)

// TestRandomStarScenariosAreConsistent: every randomly drawn scenario
// must build, generate a dependency-satisfying instance (the calibration
// suite executes plans on it — equivalence only holds on valid
// instances), and keep the selection constant inside the attribute
// domain.
func TestRandomStarScenariosAreConsistent(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 25; i++ {
		cfg, gen := RandomStar(r)
		if cfg.Select && cfg.SelectA >= int64(gen.DomA) {
			t.Fatalf("draw %d: SelectA %d outside DomA %d", i, cfg.SelectA, gen.DomA)
		}
		if gen.NumDim < gen.DomA {
			t.Fatalf("draw %d: NumDim %d < DomA %d leaves selection values unpopulated", i, gen.NumDim, gen.DomA)
		}
		s, err := NewStar(cfg)
		if err != nil {
			t.Fatalf("draw %d: %v", i, err)
		}
		in := s.Generate(gen)
		name, err := eval.SatisfiesAll(s.Deps, in)
		if err != nil {
			t.Fatalf("draw %d: %v", i, err)
		}
		if name != "" {
			t.Errorf("draw %d: instance violates %s (cfg %+v)", i, name, cfg)
		}
	}
}

func e13StarConfig() StarConfig {
	return StarConfig{
		Dims:          2,
		Views:         1,
		FactIndexes:   1,
		DimIndex:      true,
		Select:        true,
		SelectA:       3,
		FKConstraints: true,
	}
}

func TestStarCatalog(t *testing.T) {
	s, err := NewStar(e13StarConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []string{"Fact", "D0", "D1"} {
		if !s.Logical.Has(n) {
			t.Errorf("logical schema missing %s", n)
		}
	}
	for _, n := range []string{"Fact", "D0", "D1", "FK0", "SD0", "V0"} {
		if !s.Physical.Has(n) {
			t.Errorf("physical schema missing %s", n)
		}
	}
	for _, d := range s.Deps {
		if err := s.Combined.CheckDependency(d); err != nil {
			t.Errorf("dependency %s does not type-check: %v", d.Name, err)
		}
	}
	// One view (2 deps), two secondary indexes (3 deps each), two FK
	// inclusion constraints.
	if len(s.Deps) != 2+3+3+2 {
		t.Errorf("deps = %d, want 10", len(s.Deps))
	}
}

func TestStarGenerateSatisfiesConstraints(t *testing.T) {
	for _, snowflake := range []bool{false, true} {
		cfg := e13StarConfig()
		cfg.Snowflake = snowflake
		s, err := NewStar(cfg)
		if err != nil {
			t.Fatal(err)
		}
		in := s.Generate(StarGenOptions{NumFact: 40, NumDim: 10, NumSub: 4, DomA: 5, Seed: 7})
		name, err := eval.SatisfiesAll(s.Deps, in)
		if err != nil {
			t.Fatal(err)
		}
		if name != "" {
			t.Errorf("snowflake=%v: generated instance violates %s", snowflake, name)
		}
	}
}

func TestStarQueryHasResults(t *testing.T) {
	s, err := NewStar(e13StarConfig())
	if err != nil {
		t.Fatal(err)
	}
	// DomA=5 guarantees dimension rows with A = 3 exist, so the selective
	// query has matches.
	in := s.Generate(StarGenOptions{NumFact: 60, NumDim: 10, NumSub: 4, DomA: 5, Seed: 3})
	rows, err := eval.QueryEager(s.Q, in)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() == 0 {
		t.Error("star query returned no rows on generated data")
	}
}

func TestStarSnowflakeProjectAll(t *testing.T) {
	cfg := e13StarConfig()
	cfg.Snowflake = true
	cfg.ProjectAll = true
	s, err := NewStar(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Snowflake with full projection: outriggers are bound and projected.
	vars := s.Q.BoundVars()
	for _, v := range []string{"f", "d0", "d1", "s0", "s1"} {
		if !vars[v] {
			t.Errorf("snowflake query missing binding %s", v)
		}
	}
	in := s.Generate(StarGenOptions{NumFact: 30, NumDim: 8, NumSub: 4, DomA: 4, Seed: 5})
	rows, err := eval.QueryEager(s.Q, in)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() == 0 {
		t.Error("snowflake query returned no rows")
	}
}

func TestStarRejectsZeroDims(t *testing.T) {
	if _, err := NewStar(StarConfig{Dims: 0}); err == nil {
		t.Error("NewStar accepted 0 dimensions")
	}
}
