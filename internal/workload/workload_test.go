package workload

import (
	"testing"

	"cnb/internal/core"
	"cnb/internal/eval"
	"cnb/internal/instance"
)

func TestProjDeptCatalog(t *testing.T) {
	pd, err := NewProjDept()
	if err != nil {
		t.Fatal(err)
	}
	// Logical schema: Proj and depts.
	for _, n := range []string{"Proj", "depts"} {
		if !pd.Logical.Has(n) {
			t.Errorf("logical schema missing %s", n)
		}
	}
	// Physical schema: Figure 3 elements.
	for _, n := range []string{"Proj", "Dept", "I", "SI", "JI"} {
		if !pd.Physical.Has(n) {
			t.Errorf("physical schema missing %s", n)
		}
	}
	if len(pd.LogicalDeps) != 6 {
		t.Errorf("logical constraints = %d, want 6 (2 RIC + 2 INV + 2 KEY)", len(pd.LogicalDeps))
	}
	// Physical constraints: Dept 2, I 2, SI 3, JI 2.
	if len(pd.PhysicalDeps) != 9 {
		t.Errorf("physical constraints = %d, want 9", len(pd.PhysicalDeps))
	}
	// All constraints type-check against the combined schema.
	for _, d := range pd.AllDeps() {
		if err := pd.Combined.CheckDependency(d); err != nil {
			t.Errorf("dependency %s does not type-check: %v", d.Name, err)
		}
	}
	if _, err := pd.Combined.CheckQuery(pd.Q); err != nil {
		t.Errorf("paper query does not type-check: %v", err)
	}
}

func TestProjDeptGenerateSatisfiesConstraints(t *testing.T) {
	pd, err := NewProjDept()
	if err != nil {
		t.Fatal(err)
	}
	in := pd.Generate(GenOptions{NumDepts: 6, ProjsPerDept: 4, Seed: 42})
	name, err := eval.SatisfiesAll(pd.AllDeps(), in)
	if err != nil {
		t.Fatal(err)
	}
	if name != "" {
		t.Errorf("generated instance violates %s", name)
	}
}

func TestProjDeptGenerateDeterministic(t *testing.T) {
	pd, err := NewProjDept()
	if err != nil {
		t.Fatal(err)
	}
	a := pd.Generate(GenOptions{Seed: 7})
	b := pd.Generate(GenOptions{Seed: 7})
	ra, _ := a.Lookup("Proj")
	rb, _ := b.Lookup("Proj")
	if ra.Key() != rb.Key() {
		t.Error("same seed must generate identical data")
	}
	c := pd.Generate(GenOptions{Seed: 8})
	rc, _ := c.Lookup("Proj")
	if ra.Key() == rc.Key() {
		t.Error("different seeds should generate different data")
	}
}

func TestProjDeptQueryHasResults(t *testing.T) {
	pd, err := NewProjDept()
	if err != nil {
		t.Fatal(err)
	}
	in := pd.Generate(GenOptions{NumDepts: 10, ProjsPerDept: 5, CitiBankShare: 0.5, Seed: 1})
	res, err := eval.Query(pd.Q, in)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() == 0 {
		t.Error("paper query should return rows with a 0.5 CitiBank share")
	}
}

func TestProjDeptCorruptInversesViolates(t *testing.T) {
	pd, err := NewProjDept()
	if err != nil {
		t.Fatal(err)
	}
	in := pd.Generate(GenOptions{CorruptInverses: true, Seed: 3})
	name, err := eval.SatisfiesAll(pd.LogicalDeps, in)
	if err != nil {
		t.Fatal(err)
	}
	if name == "" {
		t.Error("corrupted instance should violate a constraint")
	}
}

func TestProjDeptSkipJI(t *testing.T) {
	pd, err := NewProjDept()
	if err != nil {
		t.Fatal(err)
	}
	in := pd.Generate(GenOptions{SkipJI: true, Seed: 3})
	ji, ok := in.Lookup("JI")
	if !ok {
		t.Fatal("JI should still be bound (empty)")
	}
	if ji.(*instance.Set).Len() != 0 {
		t.Error("SkipJI should leave JI empty")
	}
	// An empty JI violates the forward view constraint.
	name, err := eval.SatisfiesAll(pd.PhysicalDeps, in)
	if err != nil {
		t.Fatal(err)
	}
	if name == "" {
		t.Error("stale JI should violate PhiJI")
	}
}

func TestIndexOnlyCatalogAndData(t *testing.T) {
	sc, err := NewIndexOnly(5, 9)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []string{"R", "SA", "SB"} {
		if !sc.Physical.Has(n) {
			t.Errorf("physical schema missing %s", n)
		}
	}
	in := sc.Generate(200, 10, 10, 11)
	name, err := eval.SatisfiesAll(sc.Deps, in)
	if err != nil {
		t.Fatal(err)
	}
	if name != "" {
		t.Errorf("generated instance violates %s", name)
	}
	res, err := eval.Query(sc.Q, in)
	if err != nil {
		t.Fatal(err)
	}
	// Selectivity 1/100 over 200 rows: expect ~2 rows; must not error.
	_ = res
}

func TestViewIndexCatalogAndData(t *testing.T) {
	sc, err := NewViewIndex()
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []string{"R", "S", "V", "IR", "IS"} {
		if !sc.Physical.Has(n) {
			t.Errorf("physical schema missing %s", n)
		}
	}
	in := sc.Generate(50, 50, 20, 5)
	name, err := eval.SatisfiesAll(sc.Deps, in)
	if err != nil {
		t.Fatal(err)
	}
	if name != "" {
		t.Errorf("generated instance violates %s", name)
	}
	res, err := eval.Query(sc.Q, in)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() == 0 {
		t.Error("join should produce rows with domainB=20 over 50x50")
	}
}

func TestChainCatalog(t *testing.T) {
	c, err := NewChain(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Q.Bindings) != 4 || len(c.Q.Conds) != 3 {
		t.Errorf("chain query shape wrong: %s", c.Q)
	}
	if !c.Physical.Has("V0") || !c.Physical.Has("V1") || c.Physical.Has("V2") {
		t.Error("chain views wrong")
	}
	in := c.Generate(5)
	name, err := eval.SatisfiesAll(c.Deps, in)
	if err != nil {
		t.Fatal(err)
	}
	if name != "" {
		t.Errorf("chain instance violates %s", name)
	}
	res, err := eval.Query(c.Q, in)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 5 {
		t.Errorf("chain join = %d rows, want 5", res.Len())
	}
}

func TestChainRejectsZeroLength(t *testing.T) {
	if _, err := NewChain(0, 0); err == nil {
		t.Error("chain of length 0 must be rejected")
	}
}

// TestProjDeptPaperPlansEquivalentOnData executes hand-written versions of
// the paper's P1..P4 against generated instances and checks they agree
// with the logical query Q — the empirical half of the soundness story.
func TestProjDeptPaperPlansEquivalentOnData(t *testing.T) {
	pd, err := NewProjDept()
	if err != nil {
		t.Fatal(err)
	}
	v, n, prj, dom, lk, lknf := core.V, core.Name, core.Prj, core.Dom, core.Lk, core.LkNF

	p1 := &core.Query{
		Out: core.Struct(
			core.SF("PN", v("s")),
			core.SF("PB", prj(v("p"), "Budg")),
			core.SF("DN", prj(lk(n("Dept"), v("d")), "DName")),
		),
		Bindings: []core.Binding{
			{Var: "d", Range: dom(n("Dept"))},
			{Var: "s", Range: prj(lk(n("Dept"), v("d")), "DProjs")},
			{Var: "p", Range: n("Proj")},
		},
		Conds: []core.Cond{
			{L: v("s"), R: prj(v("p"), "PName")},
			{L: prj(v("p"), "CustName"), R: core.C("CitiBank")},
		},
	}
	p2 := &core.Query{
		Out: core.Struct(
			core.SF("PN", prj(v("p"), "PName")),
			core.SF("PB", prj(v("p"), "Budg")),
			core.SF("DN", prj(v("p"), "PDept")),
		),
		Bindings: []core.Binding{{Var: "p", Range: n("Proj")}},
		Conds:    []core.Cond{{L: prj(v("p"), "CustName"), R: core.C("CitiBank")}},
	}
	p3 := &core.Query{
		Out: core.Struct(
			core.SF("PN", prj(v("p"), "PName")),
			core.SF("PB", prj(v("p"), "Budg")),
			core.SF("DN", prj(v("p"), "PDept")),
		),
		Bindings: []core.Binding{{Var: "p", Range: lknf(n("SI"), core.C("CitiBank"))}},
	}
	p4 := &core.Query{
		Out: core.Struct(
			core.SF("PN", prj(v("j"), "PN")),
			core.SF("PB", prj(lk(n("I"), prj(v("j"), "PN")), "Budg")),
			core.SF("DN", prj(lk(n("Dept"), prj(v("j"), "DOID")), "DName")),
		),
		Bindings: []core.Binding{{Var: "j", Range: n("JI")}},
		Conds: []core.Cond{
			{L: prj(lk(n("I"), prj(v("j"), "PN")), "CustName"), R: core.C("CitiBank")},
		},
	}

	for seed := int64(0); seed < 3; seed++ {
		in := pd.Generate(GenOptions{NumDepts: 8, ProjsPerDept: 4, CitiBankShare: 0.3, Seed: seed})
		want, err := eval.Query(pd.Q, in)
		if err != nil {
			t.Fatal(err)
		}
		for i, plan := range []*core.Query{p1, p2, p3, p4} {
			got, err := eval.Query(plan, in)
			if err != nil {
				t.Fatalf("P%d failed: %v", i+1, err)
			}
			if !got.Equal(want) {
				t.Errorf("P%d differs from Q on seed %d:\nQ  = %s\nP%d = %s", i+1, seed, want, i+1, got)
			}
		}
	}
}
