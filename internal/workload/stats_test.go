package workload

import (
	"math"
	"testing"

	"cnb/internal/cost"
	"cnb/internal/eval"
	"cnb/internal/instance"
)

func scaleStar(t *testing.T) *Star {
	t.Helper()
	st, err := NewStar(StarConfig{
		Dims:          2,
		Snowflake:     true,
		Views:         1,
		FactIndexes:   2,
		DimKeyIndexes: 1,
		DimIndex:      true,
		Select:        true,
		SelectA:       1,
		FKConstraints: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestSyntheticStatsMatchesFromInstance checks the analytic statistics
// against the measured ones on an instance small enough to scan:
// deterministic quantities must match exactly, the FK-draw-dependent
// ones within the tolerance of their expectation.
func TestSyntheticStatsMatchesFromInstance(t *testing.T) {
	st := scaleStar(t)
	opts := StarGenOptions{NumFact: 4000, NumDim: 100, NumSub: 10, DomA: 20, Seed: 7}
	in := st.Generate(opts)
	measured := cost.FromInstance(in)
	synth := st.SyntheticStats(opts)

	exactCards := []string{"Fact", "D0", "D1", "SUB0", "SUB1", "DK0", "SD0", "V0"}
	for _, n := range exactCards {
		if synth.Card[n] != measured.Card[n] {
			t.Errorf("Card[%s]: synthetic %v != measured %v", n, synth.Card[n], measured.Card[n])
		}
	}
	for _, n := range []string{"DK0", "SD0"} {
		if synth.EntryFanout[n] != measured.EntryFanout[n] {
			t.Errorf("EntryFanout[%s]: synthetic %v != measured %v", n, synth.EntryFanout[n], measured.EntryFanout[n])
		}
	}
	// Minimum fanouts must never exceed the measured minimum (soundness
	// of admissible bounds built on them).
	for n, min := range synth.EntryFanoutMin {
		if m, ok := measured.EntryFanoutMin[n]; ok && min > m {
			t.Errorf("EntryFanoutMin[%s]: synthetic %v > measured %v", n, min, m)
		}
	}
	// FK index cardinality is an expectation: with 4000 draws over 100
	// keys essentially every key is hit, so the estimate must land close.
	for _, n := range []string{"FK0", "FK1"} {
		rel := math.Abs(synth.Card[n]-measured.Card[n]) / measured.Card[n]
		if rel > 0.05 {
			t.Errorf("Card[%s]: synthetic %v vs measured %v (rel err %v)", n, synth.Card[n], measured.Card[n], rel)
		}
	}
}

// TestGenerateZipfSkew: zipf draws must stay in range, remain
// deterministic per seed, satisfy the declared FK constraints, and
// actually skew mass toward low keys.
func TestGenerateZipfSkew(t *testing.T) {
	// Constraint checking uses the naive evaluator, so keep the instance
	// small and view-free here; scale behavior is covered by E18.
	st, err := NewStar(StarConfig{Dims: 2, FactIndexes: 2, DimIndex: true, FKConstraints: true})
	if err != nil {
		t.Fatal(err)
	}
	opts := StarGenOptions{NumFact: 800, NumDim: 40, DomA: 8, Seed: 21, ZipfS: 1.4}
	in := st.Generate(opts)

	if name, err := eval.SatisfiesAll(st.Deps, in); err != nil || name != "" {
		t.Fatalf("zipf instance violates %q (err %v)", name, err)
	}

	// Key 0's FK bucket must be far above the uniform share.
	fkv, ok := in.Lookup("FK0")
	if !ok {
		t.Fatal("FK0 missing")
	}
	bucket, ok := fkv.(*instance.Dict).Get(instance.Int(0))
	if !ok {
		t.Fatal("zipf skew: key 0 has no facts at all")
	}
	hot := bucket.(*instance.Set).Len()
	if uniform := opts.NumFact / opts.NumDim; hot < 4*uniform {
		t.Errorf("zipf skew too weak: key 0 bucket %d, uniform share %d", hot, uniform)
	}

	// Determinism: same options, same instance.
	again := st.Generate(opts)
	for _, n := range []string{"Fact", "FK0", "FK1", "D0"} {
		a, _ := in.Lookup(n)
		b, _ := again.Lookup(n)
		if a.Key() != b.Key() {
			t.Fatalf("non-deterministic generation for %s", n)
		}
	}
}

// TestGenerateSharedRowStructs: the same dimension row value must be one
// shared struct across the base relation and its indexes (pointer
// equality), not a fresh copy per collection.
func TestGenerateSharedRowStructs(t *testing.T) {
	st := scaleStar(t)
	in := st.Generate(StarGenOptions{NumFact: 100, NumDim: 10, NumSub: 2, DomA: 5, Seed: 3})
	d0v, _ := in.Lookup("D0")
	byKey := map[string]*instance.Struct{}
	for _, e := range d0v.(*instance.Set).Elems() {
		byKey[e.Key()] = e.(*instance.Struct)
	}
	dk0, _ := in.Lookup("DK0")
	shared := 0
	for _, entry := range dk0.(*instance.Dict).Entries() {
		for _, e := range entry[1].(*instance.Set).Elems() {
			if byKey[e.Key()] == e.(*instance.Struct) {
				shared++
			}
		}
	}
	if shared == 0 {
		t.Fatal("DK0 buckets hold copies of dimension rows, not shared structs")
	}
}
