package congruence

import (
	"testing"
	"testing/quick"

	"cnb/internal/core"
)

func TestBasicMergeAndSame(t *testing.T) {
	c := New()
	x, y := core.V("x"), core.V("y")
	if c.Same(x, y) {
		t.Error("fresh variables must not be equal")
	}
	c.Merge(x, y)
	if !c.Same(x, y) {
		t.Error("merged variables must be equal")
	}
	if !c.Same(x, x) {
		t.Error("reflexivity")
	}
}

func TestTransitivity(t *testing.T) {
	c := New()
	c.Merge(core.V("a"), core.V("b"))
	c.Merge(core.V("b"), core.V("c"))
	if !c.Same(core.V("a"), core.V("c")) {
		t.Error("transitivity must hold")
	}
}

func TestCongruenceProjection(t *testing.T) {
	c := New()
	// p = q implies p.A = q.A.
	pa := core.Prj(core.V("p"), "A")
	qa := core.Prj(core.V("q"), "A")
	c.Add(pa)
	c.Add(qa)
	c.Merge(core.V("p"), core.V("q"))
	if !c.Same(pa, qa) {
		t.Error("congruence over projections must propagate")
	}
	// ... but p.A != q.B.
	if c.Same(pa, core.Prj(core.V("q"), "B")) {
		t.Error("different fields must not merge")
	}
}

func TestCongruenceAfterTheFact(t *testing.T) {
	c := New()
	// Merge first, add compound terms later: adding must still detect
	// congruence with existing nodes.
	c.Merge(core.V("p"), core.V("q"))
	pa := core.Prj(core.V("p"), "A")
	qa := core.Prj(core.V("q"), "A")
	c.Add(pa)
	if !c.Same(pa, qa) {
		t.Error("congruence must hold for terms added after the merge")
	}
}

func TestCongruenceLookup(t *testing.T) {
	c := New()
	// k1 = k2 implies M[k1] = M[k2] (functional reading of dicts).
	l1 := core.Lk(core.Name("M"), core.V("k1"))
	l2 := core.Lk(core.Name("M"), core.V("k2"))
	c.Add(l1)
	c.Add(l2)
	if c.Same(l1, l2) {
		t.Error("lookups with unmerged keys should differ")
	}
	c.Merge(core.V("k1"), core.V("k2"))
	if !c.Same(l1, l2) {
		t.Error("equal keys must give equal lookups")
	}
	// Failing and non-failing lookups never merge by congruence.
	nf := core.LkNF(core.Name("M"), core.V("k1"))
	c.Add(nf)
	if c.Same(l1, nf) {
		t.Error("failing vs non-failing lookups are distinct operators")
	}
}

func TestCongruenceDom(t *testing.T) {
	c := New()
	d1 := core.Dom(core.V("m1"))
	d2 := core.Dom(core.V("m2"))
	c.Add(d1)
	c.Add(d2)
	c.Merge(core.V("m1"), core.V("m2"))
	if !c.Same(d1, d2) {
		t.Error("dom must be congruent")
	}
}

func TestNestedCongruence(t *testing.T) {
	c := New()
	// d = j.DOID implies Dept[d].DName = Dept[j.DOID].DName — the exact
	// reasoning used in deriving plan P4 of the paper.
	lhs := core.Prj(core.Lk(core.Name("Dept"), core.V("d")), "DName")
	rhs := core.Prj(core.Lk(core.Name("Dept"), core.Prj(core.V("j"), "DOID")), "DName")
	c.Add(lhs)
	c.Add(rhs)
	c.Merge(core.V("d"), core.Prj(core.V("j"), "DOID"))
	if !c.Same(lhs, rhs) {
		t.Error("nested congruence through lookup+projection must propagate")
	}
}

func TestStructInjectivity(t *testing.T) {
	c := New()
	s1 := core.Struct(core.SF("A", core.V("x")), core.SF("B", core.V("y")))
	s2 := core.Struct(core.SF("A", core.V("u")), core.SF("B", core.V("v")))
	c.Add(s1)
	c.Add(s2)
	c.Merge(s1, s2)
	if !c.Same(core.V("x"), core.V("u")) || !c.Same(core.V("y"), core.V("v")) {
		t.Error("struct injectivity must equate corresponding fields")
	}
}

func TestStructInjectivityDifferentShapes(t *testing.T) {
	c := New()
	s1 := core.Struct(core.SF("A", core.V("x")))
	s2 := core.Struct(core.SF("B", core.V("y")))
	c.Merge(s1, s2) // ill-typed assertion, but must not crash or equate x,y
	if c.Same(core.V("x"), core.V("y")) {
		t.Error("different field names must not trigger injectivity")
	}
}

func TestBetaProjectionOverConstructor(t *testing.T) {
	c := New()
	// v = struct(A: r.A) implies v.A = r.A — needed to reason about view
	// tuples in ΦV' (§2 and the §4 example).
	v := core.V("v")
	ra := core.Prj(core.V("r"), "A")
	s := core.Struct(core.SF("A", ra))
	va := core.Prj(v, "A")
	c.Add(va)
	c.Merge(v, s)
	if !c.Same(va, ra) {
		t.Error("beta: v.A must equal r.A after v = struct(A: r.A)")
	}
}

func TestBetaWhenProjectionAddedLater(t *testing.T) {
	c := New()
	v := core.V("v")
	ra := core.Prj(core.V("r"), "A")
	c.Merge(v, core.Struct(core.SF("A", ra)))
	// Projection interned only now.
	va := core.Prj(v, "A")
	if !c.Same(va, ra) {
		t.Error("beta must fire for projections added after the merge")
	}
}

func TestBetaChainsIntoCongruence(t *testing.T) {
	c := New()
	// v = struct(A: x), x = y  =>  v.A = y
	c.Merge(core.V("v"), core.Struct(core.SF("A", core.V("x"))))
	c.Merge(core.V("x"), core.V("y"))
	if !c.Same(core.Prj(core.V("v"), "A"), core.V("y")) {
		t.Error("beta + transitivity")
	}
}

func TestClassMembersDeterministic(t *testing.T) {
	c := New()
	c.Merge(core.V("b"), core.V("a"))
	c.Merge(core.V("c"), core.V("a"))
	ms := c.ClassMembers(core.V("a"))
	if len(ms) != 3 {
		t.Fatalf("class size = %d, want 3", len(ms))
	}
	// Sorted by HashKey: ?a, ?b, ?c.
	if ms[0].Name != "a" || ms[1].Name != "b" || ms[2].Name != "c" {
		t.Errorf("members not sorted: %v", ms)
	}
}

func TestClasses(t *testing.T) {
	c := New()
	c.Merge(core.V("a"), core.V("b"))
	c.Add(core.V("z"))
	cls := c.Classes()
	if len(cls) != 2 {
		t.Fatalf("classes = %d, want 2", len(cls))
	}
}

func TestContainsAndLen(t *testing.T) {
	c := New()
	tm := core.Prj(core.V("p"), "A")
	if c.Contains(tm) {
		t.Error("not yet interned")
	}
	c.Add(tm)
	if !c.Contains(tm) || !c.Contains(core.V("p")) {
		t.Error("Add must intern term and subterms")
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d, want 2", c.Len())
	}
	if _, ok := c.ID(tm); !ok {
		t.Error("ID should find interned term")
	}
	if _, ok := c.ID(core.V("nope")); ok {
		t.Error("ID should not find missing term")
	}
}

func TestRewriteAvoidsVariable(t *testing.T) {
	c := New()
	// From the P2 derivation: d.DName = p.PDept, so the output field DN
	// can be rewritten from d.DName to p.PDept, avoiding d.
	c.Merge(core.Prj(core.V("d"), "DName"), core.Prj(core.V("p"), "PDept"))
	got, ok := c.Rewrite(core.Prj(core.V("d"), "DName"), map[string]bool{"d": true})
	if !ok {
		t.Fatal("rewrite should succeed")
	}
	if !got.Equal(core.Prj(core.V("p"), "PDept")) {
		t.Errorf("Rewrite = %s, want p.PDept", got)
	}
}

func TestRewriteRecursive(t *testing.T) {
	c := New()
	// d = j.DOID; rewrite Dept[d].DName avoiding d must rebuild via the
	// congruent key even though the full term has no direct class member.
	c.Merge(core.V("d"), core.Prj(core.V("j"), "DOID"))
	in := core.Prj(core.Lk(core.Name("Dept"), core.V("d")), "DName")
	got, ok := c.Rewrite(in, map[string]bool{"d": true})
	if !ok {
		t.Fatal("recursive rewrite should succeed")
	}
	want := core.Prj(core.Lk(core.Name("Dept"), core.Prj(core.V("j"), "DOID")), "DName")
	if !got.Equal(want) {
		t.Errorf("Rewrite = %s, want %s", got, want)
	}
}

func TestRewriteFails(t *testing.T) {
	c := New()
	c.Add(core.V("x"))
	if _, ok := c.Rewrite(core.V("x"), map[string]bool{"x": true}); ok {
		t.Error("rewrite of an isolated avoided variable must fail")
	}
}

func TestRewriteStruct(t *testing.T) {
	c := New()
	c.Merge(core.V("s"), core.Prj(core.V("p"), "PName"))
	in := core.Struct(core.SF("PN", core.V("s")), core.SF("PB", core.Prj(core.V("p"), "Budg")))
	got, ok := c.Rewrite(in, map[string]bool{"s": true})
	if !ok {
		t.Fatal("struct rewrite should succeed")
	}
	want := core.Struct(core.SF("PN", core.Prj(core.V("p"), "PName")), core.SF("PB", core.Prj(core.V("p"), "Budg")))
	if !got.Equal(want) {
		t.Errorf("Rewrite = %s, want %s", got, want)
	}
}

func TestRewriteNoAvoidNeeded(t *testing.T) {
	c := New()
	tm := core.Prj(core.V("p"), "A")
	got, ok := c.Rewrite(tm, map[string]bool{"z": true})
	if !ok || got != tm {
		t.Error("terms free of avoided vars rewrite to themselves")
	}
}

// Property: Same is an equivalence relation on a random merge script.
func TestSameEquivalenceProperty(t *testing.T) {
	vars := []*core.Term{core.V("a"), core.V("b"), core.V("c"), core.V("d"), core.V("e")}
	f := func(script []uint8) bool {
		c := New()
		for _, v := range vars {
			c.Add(v)
		}
		for _, s := range script {
			i := int(s) % len(vars)
			j := int(s/8) % len(vars)
			c.Merge(vars[i], vars[j])
		}
		// Reflexive, symmetric, transitive on all triples.
		for _, x := range vars {
			if !c.Same(x, x) {
				return false
			}
			for _, y := range vars {
				if c.Same(x, y) != c.Same(y, x) {
					return false
				}
				for _, z := range vars {
					if c.Same(x, y) && c.Same(y, z) && !c.Same(x, z) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: congruence always lifts merges through a projection.
func TestCongruenceLiftProperty(t *testing.T) {
	f := func(pairs []uint8) bool {
		c := New()
		vars := []*core.Term{core.V("v0"), core.V("v1"), core.V("v2"), core.V("v3")}
		projs := make([]*core.Term, len(vars))
		for i, v := range vars {
			projs[i] = core.Prj(v, "F")
			c.Add(projs[i])
		}
		for _, p := range pairs {
			i := int(p) % len(vars)
			j := int(p/4) % len(vars)
			c.Merge(vars[i], vars[j])
		}
		for i := range vars {
			for j := range vars {
				if c.Same(vars[i], vars[j]) && !c.Same(projs[i], projs[j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
