// Package congruence implements congruence closure over path terms.
//
// The chase and backchase reason about a query through its canonical
// database: the terms occurring in the query, grouped into congruence
// classes according to the equalities of the where clause (§3 of Deutsch,
// Popa, Tannen, VLDB 1999). This package maintains those classes under
// three axiom schemes:
//
//  1. Congruence: if the children of two nodes with the same operator are
//     pairwise equal, the nodes are equal (covers P.A, dom(P), P[k] —
//     so k = k' implies M[k] = M[k'], the functional reading of
//     dictionaries).
//  2. Constructor injectivity: struct(A: s, B: t) = struct(A: s', B: t')
//     implies s = s' and t = t'.
//  3. Beta: if x = struct(..., A: t, ...) then x.A = t.
//
// The closure is monotone: terms can be added and equalities asserted, but
// never retracted. Build a fresh closure per query.
//
// # Concurrency
//
// A Closure is NOT safe for concurrent use, not even for apparently
// read-only queries: Same, Rep, Contains-then-query sequences and
// ClassMembers intern their argument terms, and find performs path
// compression. Callers that need to consult one closure from several
// goroutines must give each goroutine its own copy via Clone.
// Clone itself performs only reads, so any number of goroutines may
// Clone the same closure concurrently provided no goroutine mutates it
// at the same time — this is the sharing discipline the parallel
// backchase uses for the root canonical database.
package congruence

import (
	"maps"
	"sort"
	"strconv"
	"strings"

	"cnb/internal/core"
)

type node struct {
	term *core.Term
	// op is the operator tag: leaves use the full HashKey; interior nodes
	// use "proj:<field>", "dom", "lk", "lknf", "struct:<f1>,<f2>,...".
	op string
	// args are node ids of children, in order.
	args []int
	// fieldNames holds struct field names (parallel to args) when the
	// node is a struct constructor.
	fieldNames []string
}

// Closure is a congruence closure over a growing set of terms.
type Closure struct {
	nodes  []node
	byKey  map[string]int // term HashKey -> node id
	parent []int
	rank   []int

	sigTable  map[string]int // current signature -> node id
	parentsOf map[int][]int  // class rep -> ids of nodes with a child in the class
	structsIn map[int][]int  // class rep -> struct-constructor nodes in the class
	projsOn   map[int][]int  // class rep -> projection nodes whose base is in the class

	pending [][2]int

	// version counts unions performed. Class representatives are stable
	// between equal versions (path compression never changes them), which
	// is what lets the chase's rep-keyed target index detect staleness.
	version uint64

	// Feature tracking for the incremental chase (nil maps = disabled, the
	// default). feats holds the union of core.Term feature keys over each
	// class; touched accumulates the features of every class changed by a
	// union since the last TakeTouched. See core.FeatureKeys for why these
	// two sets over-approximate "which premise shapes may newly match".
	feats   map[int]map[string]bool // class rep -> feature keys of members
	touched map[string]bool
}

// New returns an empty closure.
func New() *Closure {
	return &Closure{
		byKey:     make(map[string]int),
		sigTable:  make(map[string]int),
		parentsOf: make(map[int][]int),
		structsIn: make(map[int][]int),
		projsOn:   make(map[int][]int),
	}
}

// Clone returns an independent deep copy of the closure: subsequent
// mutations (interning, merges, path compression) of either copy never
// affect the other. Terms themselves are immutable and shared, as are
// the per-node argument lists (never mutated after interning).
//
// Clone only reads the receiver, so concurrent Clones of one closure are
// safe as long as no concurrent mutation runs; see the package comment.
func (c *Closure) Clone() *Closure {
	n := &Closure{
		version:   c.version,
		nodes:     append([]node(nil), c.nodes...),
		byKey:     maps.Clone(c.byKey),
		parent:    append([]int(nil), c.parent...),
		rank:      append([]int(nil), c.rank...),
		sigTable:  maps.Clone(c.sigTable),
		parentsOf: cloneIntSliceMap(c.parentsOf),
		structsIn: cloneIntSliceMap(c.structsIn),
		projsOn:   cloneIntSliceMap(c.projsOn),
		pending:   append([][2]int(nil), c.pending...),
	}
	if c.feats != nil {
		n.feats = make(map[int]map[string]bool, len(c.feats))
		for r, fs := range c.feats {
			n.feats[r] = maps.Clone(fs)
		}
		n.touched = maps.Clone(c.touched)
	}
	return n
}

// TrackFeatures enables union feature logging: from now on every union
// records the feature keys of both merged classes into a touched set that
// TakeTouched drains. Existing nodes are indexed retroactively, so
// enabling on a populated closure is sound. Used by the incremental chase
// to decide which dependencies a chase step may have (re-)enabled.
func (c *Closure) TrackFeatures() {
	if c.feats != nil {
		return
	}
	c.feats = make(map[int]map[string]bool, len(c.nodes))
	c.touched = map[string]bool{}
	for id := range c.nodes {
		c.noteFeatures(id)
	}
}

// TakeTouched returns the feature keys of every class changed by a union
// since the last call and resets the set. Returns nil while feature
// tracking is disabled or when nothing was touched.
func (c *Closure) TakeTouched() map[string]bool {
	if c.feats == nil || len(c.touched) == 0 {
		return nil
	}
	t := c.touched
	c.touched = map[string]bool{}
	return t
}

// ClassFeatures returns the recorded feature keys of the term's whole
// congruence class — the union of core.Term feature keys over every
// interned member. Returns nil when feature tracking is disabled or the
// term has not been interned. The returned map is the live internal set:
// callers must treat it as read-only and must not retain it across
// mutations of the closure.
//
// The incremental chase consults this when a new binding is appended:
// premise membership tests compare ranges up to congruence, so the
// binding can wake up any dependency whose premise shape occurs anywhere
// in the range's class, not only dependencies matching the range's own
// syntactic shape.
func (c *Closure) ClassFeatures(t *core.Term) map[string]bool {
	if c.feats == nil {
		return nil
	}
	id, ok := c.byKey[t.HashKey()]
	if !ok {
		return nil
	}
	return c.feats[c.find(id)]
}

// noteFeatures registers a node's term features with its current class.
func (c *Closure) noteFeatures(id int) {
	r := c.find(id)
	fs := c.feats[r]
	if fs == nil {
		fs = map[string]bool{}
		c.feats[r] = fs
	}
	c.nodes[id].term.CollectFeatureKeys(fs)
}

func cloneIntSliceMap(m map[int][]int) map[int][]int {
	out := make(map[int][]int, len(m))
	for k, v := range m {
		out[k] = append([]int(nil), v...)
	}
	return out
}

// Add interns the term (and all its subterms) and returns its node id.
// Adding an already-present term is cheap and returns the existing id.
func (c *Closure) Add(t *core.Term) int {
	id := c.intern(t)
	c.drain()
	return id
}

func (c *Closure) intern(t *core.Term) int {
	key := t.HashKey()
	if id, ok := c.byKey[key]; ok {
		return id
	}
	var n node
	n.term = t
	switch t.Kind {
	case core.KVar, core.KConst, core.KName:
		n.op = key
	case core.KProj:
		n.op = "proj:" + t.Name
		n.args = []int{c.intern(t.Base)}
	case core.KDom:
		n.op = "dom"
		n.args = []int{c.intern(t.Base)}
	case core.KLookup:
		if t.NonFailing {
			n.op = "lknf"
		} else {
			n.op = "lk"
		}
		n.args = []int{c.intern(t.Base), c.intern(t.Key)}
	case core.KStruct:
		names := make([]string, len(t.Fields))
		args := make([]int, len(t.Fields))
		for i, f := range t.Fields {
			names[i] = f.Name
			args[i] = c.intern(f.Term)
		}
		n.op = "struct:" + strings.Join(names, ",")
		n.args = args
		n.fieldNames = names
	}
	id := len(c.nodes)
	c.nodes = append(c.nodes, n)
	c.parent = append(c.parent, id)
	c.rank = append(c.rank, 0)
	c.byKey[key] = id
	if c.feats != nil {
		c.noteFeatures(id)
	}

	// Register with parents-of lists and the signature table.
	for _, a := range n.args {
		ra := c.find(a)
		c.parentsOf[ra] = append(c.parentsOf[ra], id)
	}
	sig := c.signature(id)
	if other, ok := c.sigTable[sig]; ok && c.find(other) != id {
		c.pending = append(c.pending, [2]int{id, other})
	} else {
		c.sigTable[sig] = id
	}

	// Axiom bookkeeping.
	if t.Kind == core.KStruct {
		r := c.find(id)
		c.structsIn[r] = append(c.structsIn[r], id)
		c.fireBeta(r)
	}
	if t.Kind == core.KProj {
		rb := c.find(n.args[0])
		c.projsOn[rb] = append(c.projsOn[rb], id)
		c.fireBeta(rb)
	}
	return id
}

// signature computes the current congruence signature of a node.
func (c *Closure) signature(id int) string {
	n := &c.nodes[id]
	if len(n.args) == 0 {
		return n.op
	}
	var b strings.Builder
	b.WriteString(n.op)
	b.WriteByte('(')
	for i, a := range n.args {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(c.find(a)))
	}
	b.WriteByte(')')
	return b.String()
}

func (c *Closure) find(x int) int {
	for c.parent[x] != x {
		c.parent[x] = c.parent[c.parent[x]]
		x = c.parent[x]
	}
	return x
}

// fireBeta merges x.A with t whenever the class r contains both a struct
// constructor struct(..., A: t, ...) and is the base class of a projection
// x.A.
func (c *Closure) fireBeta(r int) {
	projs := c.projsOn[r]
	structs := c.structsIn[r]
	if len(projs) == 0 || len(structs) == 0 {
		return
	}
	for _, p := range projs {
		field := strings.TrimPrefix(c.nodes[p].op, "proj:")
		for _, s := range structs {
			sn := &c.nodes[s]
			for i, fn := range sn.fieldNames {
				if fn == field {
					c.pending = append(c.pending, [2]int{p, sn.args[i]})
				}
			}
		}
	}
}

// union merges the classes of two node ids and enqueues consequences.
func (c *Closure) union(a, b int) {
	ra, rb := c.find(a), c.find(b)
	if ra == rb {
		return
	}
	if c.rank[ra] < c.rank[rb] {
		ra, rb = rb, ra
	}
	// rb is absorbed into ra.
	c.parent[rb] = ra
	if c.rank[ra] == c.rank[rb] {
		c.rank[ra]++
	}
	c.version++
	if c.feats != nil {
		dst := c.feats[ra]
		if dst == nil {
			dst = map[string]bool{}
			c.feats[ra] = dst
		}
		for f := range dst {
			c.touched[f] = true
		}
		for f := range c.feats[rb] {
			dst[f] = true
			c.touched[f] = true
		}
		delete(c.feats, rb)
	}

	// Recompute signatures of nodes that used a member of rb as a child.
	moved := c.parentsOf[rb]
	delete(c.parentsOf, rb)
	for _, p := range moved {
		sig := c.signature(p)
		if other, ok := c.sigTable[sig]; ok && c.find(other) != c.find(p) {
			c.pending = append(c.pending, [2]int{p, other})
		} else {
			c.sigTable[sig] = p
		}
	}
	c.parentsOf[ra] = append(c.parentsOf[ra], moved...)

	// Constructor injectivity across the merged class.
	sA := c.structsIn[ra]
	sB := c.structsIn[rb]
	delete(c.structsIn, rb)
	for _, x := range sA {
		for _, y := range sB {
			nx, ny := &c.nodes[x], &c.nodes[y]
			if nx.op == ny.op { // same field-name list
				for i := range nx.args {
					c.pending = append(c.pending, [2]int{nx.args[i], ny.args[i]})
				}
			}
		}
	}
	c.structsIn[ra] = append(sA, sB...)

	// Beta across the merged class.
	pB := c.projsOn[rb]
	delete(c.projsOn, rb)
	c.projsOn[ra] = append(c.projsOn[ra], pB...)
	c.fireBeta(ra)
}

func (c *Closure) drain() {
	for len(c.pending) > 0 {
		p := c.pending[len(c.pending)-1]
		c.pending = c.pending[:len(c.pending)-1]
		c.union(p[0], p[1])
	}
}

// Merge asserts the equality of two terms (interning them if needed) and
// propagates all consequences.
func (c *Closure) Merge(a, b *core.Term) {
	ia := c.intern(a)
	ib := c.intern(b)
	c.pending = append(c.pending, [2]int{ia, ib})
	c.drain()
}

// Same reports whether two terms are in the same congruence class. Both
// terms are interned if not yet present (which cannot change existing
// classes, only extend them with derived consequences of the axioms).
func (c *Closure) Same(a, b *core.Term) bool {
	ia := c.intern(a)
	ib := c.intern(b)
	c.drain()
	return c.find(ia) == c.find(ib)
}

// Contains reports whether the term has already been interned.
func (c *Closure) Contains(t *core.Term) bool {
	_, ok := c.byKey[t.HashKey()]
	return ok
}

// ID returns the node id of an interned term and whether it is present.
func (c *Closure) ID(t *core.Term) (int, bool) {
	id, ok := c.byKey[t.HashKey()]
	return id, ok
}

// Rep returns the class representative id for the term, interning it if
// necessary.
func (c *Closure) Rep(t *core.Term) int {
	id := c.intern(t)
	c.drain()
	return c.find(id)
}

// ClassMembers returns every interned term in the same class as t, sorted
// by HashKey for determinism. t itself is included.
func (c *Closure) ClassMembers(t *core.Term) []*core.Term {
	r := c.Rep(t)
	var out []*core.Term
	for id := range c.nodes {
		if c.find(id) == r {
			out = append(out, c.nodes[id].term)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].HashKey() < out[j].HashKey() })
	return out
}

// Terms returns all interned terms in insertion order.
func (c *Closure) Terms() []*core.Term {
	out := make([]*core.Term, len(c.nodes))
	for i := range c.nodes {
		out[i] = c.nodes[i].term
	}
	return out
}

// Len returns the number of interned terms.
func (c *Closure) Len() int { return len(c.nodes) }

// Version returns the union counter. Two equal Versions guarantee every
// class representative is unchanged in between; any union (asserted or
// derived) increments it.
func (c *Closure) Version() uint64 { return c.version }

// Classes returns the congruence classes as slices of terms, each sorted
// by HashKey, the classes sorted by their first member. Useful for
// diagnostics and deterministic output.
func (c *Closure) Classes() [][]*core.Term {
	groups := make(map[int][]*core.Term)
	for id := range c.nodes {
		r := c.find(id)
		groups[r] = append(groups[r], c.nodes[id].term)
	}
	out := make([][]*core.Term, 0, len(groups))
	for _, g := range groups {
		sort.Slice(g, func(i, j int) bool { return g[i].HashKey() < g[j].HashKey() })
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0].HashKey() < out[j][0].HashKey() })
	return out
}

// RewriteVariants returns distinct terms congruent to t that avoid the
// given variables: every interned class member free of them, plus the
// structural rebuild of t with rewritten children (which can produce terms
// outside the interned universe, e.g. I[i].CustName from p.CustName when
// p = I[i]). The variants are deduplicated and sorted by HashKey. An empty
// result means t cannot be re-expressed.
//
// The backchase needs these derived terms: the paper's plan P4 carries the
// condition I[j.PN].CustName = "CitiBank", whose left side never occurs
// syntactically in the universal plan.
func (c *Closure) RewriteVariants(t *core.Term, avoid map[string]bool) []*core.Term {
	seen := map[string]bool{}
	var out []*core.Term
	add := func(u *core.Term) {
		k := u.HashKey()
		if !seen[k] {
			seen[k] = true
			out = append(out, u)
		}
	}
	if !t.MentionsAnyVar(avoid) {
		add(t)
	}
	if c.Contains(t) {
		for _, m := range c.ClassMembers(t) {
			if !m.MentionsAnyVar(avoid) {
				add(m)
			}
		}
	}
	if r, ok := c.Rewrite(t, avoid); ok {
		add(r)
	}
	// The structural rebuild must be offered even when an interned class
	// member exists: p.CustName with p = I[i] yields I[i].CustName, which
	// typically has no interned equivalent.
	if r, ok := c.rewriteStructural(t, avoid); ok {
		add(r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].HashKey() < out[j].HashKey() })
	return out
}

// rewriteStructural rebuilds t bottom-up, rewriting each child, without
// first consulting t's own congruence class.
func (c *Closure) rewriteStructural(t *core.Term, avoid map[string]bool) (*core.Term, bool) {
	return c.rebuildChildren(t, avoid, map[string]bool{t.HashKey(): true})
}

// ConstantClash returns a pair of distinct constants that have been forced
// into the same congruence class, if any. A clash means no instance
// satisfies the asserted equalities (the chase reports the query as
// unsatisfiable / empty).
func (c *Closure) ConstantClash() (a, b *core.Term, clash bool) {
	reps := make(map[int]*core.Term)
	for id := range c.nodes {
		t := c.nodes[id].term
		if t.Kind != core.KConst {
			continue
		}
		r := c.find(id)
		if prev, ok := reps[r]; ok {
			if !prev.Equal(t) {
				return prev, t, true
			}
			continue
		}
		reps[r] = t
	}
	return nil, nil, false
}

// Rewrite attempts to produce a term congruent to t that mentions none of
// the variables in avoid. It prefers an interned class member free of the
// avoided variables; otherwise it rebuilds t (or a class member of t)
// recursively with rewritten children. Returns (term, true) on success.
//
// This is the procedure of the backchase step: re-express the output and
// the conditions of the query without the eliminated binding (§3,
// conditions (1) and (2)). The member-rebuild case matters for chains like
// d = Dept[dd], dd = j.DOID: rewriting the bare variable d away from
// {d, dd} yields Dept[j.DOID].
func (c *Closure) Rewrite(t *core.Term, avoid map[string]bool) (*core.Term, bool) {
	return c.rewrite(t, avoid, map[string]bool{})
}

// rewrite is Rewrite with a cycle guard: busy holds the HashKeys of terms
// currently being rewritten higher up the recursion, so mutually congruent
// compound terms cannot recurse forever.
func (c *Closure) rewrite(t *core.Term, avoid, busy map[string]bool) (*core.Term, bool) {
	if !t.MentionsAnyVar(avoid) {
		return t, true
	}
	key := t.HashKey()
	if busy[key] {
		return nil, false
	}
	busy[key] = true
	defer delete(busy, key)

	if c.Contains(t) {
		for _, m := range c.ClassMembers(t) {
			if !m.MentionsAnyVar(avoid) {
				return m, true
			}
		}
	}
	if r, ok := c.rebuildChildren(t, avoid, busy); ok {
		return r, true
	}
	if c.Contains(t) {
		for _, m := range c.ClassMembers(t) {
			if m.HashKey() == key {
				continue
			}
			if r, ok := c.rebuildChildren(m, avoid, busy); ok {
				return r, true
			}
		}
	}
	// Inverse beta: if some struct constructor struct(..., F: u, ...) with
	// u ≡ t has a congruent non-constructor member X expressible without
	// the avoided variables, then t ≡ X.F. This is how gmap and view
	// entries re-express base-row fields: from e = struct(B: r.B, C: r.C),
	// rewriting r.B away from r yields e.B.
	if tid, ok := c.byKey[key]; ok {
		tr := c.find(tid)
		for id := 0; id < len(c.nodes); id++ {
			n := &c.nodes[id]
			if n.term.Kind != core.KStruct {
				continue
			}
			for i, fname := range n.fieldNames {
				if c.find(n.args[i]) != tr {
					continue
				}
				for _, m := range c.ClassMembers(n.term) {
					if m.Kind == core.KStruct {
						continue
					}
					if r, ok := c.rewrite(m, avoid, busy); ok {
						return core.Prj(r, fname), true
					}
				}
			}
		}
	}
	return nil, false
}

// rebuildChildren reconstructs t with every child rewritten to avoid the
// given variables. Leaves that still mention avoided variables fail.
func (c *Closure) rebuildChildren(t *core.Term, avoid, busy map[string]bool) (*core.Term, bool) {
	switch t.Kind {
	case core.KVar:
		if avoid[t.Name] {
			return nil, false
		}
		return t, true
	case core.KConst, core.KName:
		return t, true
	case core.KProj:
		b, ok := c.rewrite(t.Base, avoid, busy)
		if !ok {
			return nil, false
		}
		return core.Prj(b, t.Name), true
	case core.KDom:
		b, ok := c.rewrite(t.Base, avoid, busy)
		if !ok {
			return nil, false
		}
		return core.Dom(b), true
	case core.KLookup:
		b, ok := c.rewrite(t.Base, avoid, busy)
		if !ok {
			return nil, false
		}
		k, ok := c.rewrite(t.Key, avoid, busy)
		if !ok {
			return nil, false
		}
		nt := &core.Term{Kind: core.KLookup, Base: b, Key: k, NonFailing: t.NonFailing}
		return nt, true
	case core.KStruct:
		fs := make([]core.StructField, len(t.Fields))
		for i, f := range t.Fields {
			ft, ok := c.rewrite(f.Term, avoid, busy)
			if !ok {
				return nil, false
			}
			fs[i] = core.StructField{Name: f.Name, Term: ft}
		}
		return core.Struct(fs...), true
	}
	return nil, false
}
