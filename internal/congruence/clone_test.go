package congruence

import (
	"fmt"
	"sync"
	"testing"

	"cnb/internal/core"
)

// TestCloneIndependence asserts that mutations of a clone never leak into
// the original (and vice versa), including through the internal
// parents-of / structs-in bookkeeping slices that union mutates in place.
func TestCloneIndependence(t *testing.T) {
	c := New()
	x, y := core.V("x"), core.V("y")
	c.Add(core.Prj(x, "A"))
	c.Add(core.Prj(y, "A"))
	c.Merge(core.Prj(x, "B"), core.C(1))

	cl := c.Clone()
	if !cl.Same(core.Prj(x, "B"), core.C(1)) {
		t.Fatal("clone must carry the original's equalities")
	}
	if cl.Same(x, y) || c.Same(x, y) {
		t.Fatal("x and y must start separate")
	}

	// Merge in the clone only: x = y implies x.A = y.A by congruence.
	cl.Merge(x, y)
	if !cl.Same(core.Prj(x, "A"), core.Prj(y, "A")) {
		t.Error("clone must derive x.A = y.A after merging x = y")
	}
	if c.Same(x, y) || c.Same(core.Prj(x, "A"), core.Prj(y, "A")) {
		t.Error("merge in clone leaked into the original")
	}

	// Merge in the original only; the clone must not see it.
	c.Merge(core.Prj(y, "B"), core.C(2))
	if cl.Same(core.Prj(y, "B"), core.C(2)) {
		t.Error("merge in original leaked into the clone")
	}
}

// TestConcurrentCloneAndUse exercises the documented contract under the
// race detector: concurrent Clones of one unmutated closure are safe, and
// each goroutine may mutate its own clone freely.
func TestConcurrentCloneAndUse(t *testing.T) {
	shared := New()
	for i := 0; i < 20; i++ {
		v := core.V(fmt.Sprintf("v%d", i))
		shared.Add(core.Prj(v, "A"))
		if i > 0 {
			shared.Merge(core.Prj(v, "A"), core.Prj(core.V(fmt.Sprintf("v%d", i-1)), "A"))
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				cl := shared.Clone()
				a := core.V(fmt.Sprintf("w%d_%d", id, i))
				cl.Merge(a, core.V("v0"))
				if !cl.Same(core.Prj(a, "A"), core.Prj(core.V("v19"), "A")) {
					t.Errorf("worker %d: clone lost the shared equalities", id)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}
