// Admissible lower bounds for the cost-bounded backchase.
//
// The backchase prunes a lattice state when a lower bound on the cost of
// every plan reachable from it exceeds the cost of a complete plan
// already in hand. Two bounds live here:
//
//   - ScanFloor is the PR-2 bound: the cheapest bare-scan binding of the
//     state, with every lookup or dependent range floored at 0. It prunes
//     only the scan-only region of the lattice (~20-30% of states on the
//     star family), because any state retaining a lookup binding floors
//     at 0.
//   - LowerBound is the dictionary-aware bound: it floors lookup chains
//     by their mandatory probe work and, crucially, restricts the
//     "cheapest first binding" argument to bindings that can actually be
//     *grounded* — rewritten into a closed range using only equalities the
//     state's conditions imply. A state that has lost its cheap index
//     anchors floors at the cardinality of its cheapest groundable scan,
//     not at 0, which is what lets the search prune the expensive lattice
//     regions wholesale.
//
// Both bounds are admissible with respect to the engine's plan metric
// (EstimateQuick over planrewrite.SimplifyLookups); the argument for
// LowerBound is spelled out on the function.
package cost

import (
	"math"

	"cnb/internal/congruence"
	"cnb/internal/core"
)

// ScanFloor is the PR-2 admissible bound, kept for A/B comparison (E14,
// BenchmarkBackchasePrunedTight) and selectable through
// backchase.Options.ScanOnlyBound: the minimum over the state's bindings
// of the bare-scan floor, where a binding whose range is a KName (or
// dom(KName)) floors at its cardinality and every other range floors
// at 0. See LowerBound for the strictly tighter replacement.
func (s *Stats) ScanFloor(q *core.Query) float64 {
	lb := math.Inf(1)
	for _, b := range q.Bindings {
		f := 0.0
		switch {
		case b.Range.Kind == core.KName:
			f = s.card(b.Range.Name)
		case b.Range.Kind == core.KDom && b.Range.Base.Kind == core.KName:
			f = s.card(b.Range.Base.Name)
		}
		if f < lb {
			lb = f
		}
	}
	if math.IsInf(lb, 1) {
		return 0
	}
	return lb
}

// LowerBound returns an admissible lower bound on the estimated cost of
// every executable plan reachable from the given backchase state —
// including after congruent range rewriting in Subquery, substitution and
// dom-loop elimination in planrewrite.SimplifyLookups, condition pruning
// in Normalize, and any binding reorder.
//
// The argument extends PR 2's first-binding floor. Every term of Estimate
// is non-negative and the first binding of any plan is charged at
// multiplicity 1, so
//
//	Estimate(plan, any order) >= rangeCost(plan's first binding).
//
// A plan's first binding must have a *closed* range (one mentioning no
// variables — binding order is topological), and every binding of a
// reachable plan maps back to a binding of this state whose range was
// rewritten using only equalities implied by the state's conditions
// (rewrites re-route access paths; they never invent equalities). Hence:
//
//  1. Only groundable bindings — those whose range can be rewritten into
//     a closed term under the state's congruence closure — can supply the
//     first binding of any reachable plan. The rest are excluded from the
//     minimum, which is what raises the floor of states that lost their
//     constant-keyed index anchors.
//  2. A groundable binding floors at the cheapest cost the estimator can
//     charge any congruent form of its range: its cardinality for bare
//     scans (ground ranges are returned verbatim by every rewrite), a
//     probe floor of LookupCost + EntryFanoutMin[M] for lookups into M
//     (every congruent lookup form keeps its dictionary root, pays one
//     probe, and iterates a bucket no smaller than the smallest one in
//     the instance — min fanouts survive every rewrite because rewrites
//     only re-route access paths, never shrink the answer), and
//     FieldFanoutMin for dependent field ranges. Because a variable-free
//     range can also be replaced wholesale by any congruent class member
//     (or re-expressed as a field of a congruent struct), the floor takes
//     the minimum over those shapes too.
//  3. A lookup into a dictionary with no statistics at all floors at
//     LookupFloor (>= one probe), not 0 — the estimator charges unknown
//     dictionaries LookupCost plus a default fanout of 1, so any
//     LookupFloor <= LookupCost+1 is admissible (enforced by clamping).
//
// Therefore min over groundable bindings of that floor under-estimates
// every reachable plan, and pruning a state whose LowerBound exceeds the
// cost of an already-known complete plan never discards a cheaper plan.
// LowerBound >= ScanFloor always: bare-scan bindings are groundable with
// the same floor, and no other binding can drag the minimum to 0 anymore.
func (s *Stats) LowerBound(q *core.Query) float64 {
	if len(q.Bindings) == 0 {
		return 0
	}
	g := newGrounder(q)
	lb := math.Inf(1)
	for _, b := range q.Bindings {
		if !g.groundable(b.Range) {
			continue
		}
		f := s.rangeFloor(b.Range)
		if !b.Range.IsGround() {
			// Variable-bearing ranges can be replaced by any congruent
			// class member or re-expressed as a field of a congruent
			// struct constructor; ground ranges survive verbatim.
			for _, m := range g.cc.ClassMembers(b.Range) {
				if fm := s.rangeFloor(m); fm < f {
					f = fm
				}
			}
			for _, field := range g.congruentStructFields(b.Range) {
				if fm := s.fieldFanoutMin(field); fm < f {
					f = fm
				}
			}
		}
		if f < lb {
			lb = f
		}
	}
	if math.IsInf(lb, 1) {
		// No groundable binding (ill-scoped state); claim nothing.
		return 0
	}
	return lb
}

// rangeFloor is the cheapest cost the estimator can charge a range of
// this shape, independent of where the binding lands in the plan.
func (s *Stats) rangeFloor(t *core.Term) float64 {
	switch t.Kind {
	case core.KName:
		return s.card(t.Name)
	case core.KDom:
		if t.Base.Kind == core.KName {
			return s.card(t.Base.Name)
		}
		return 0
	case core.KLookup:
		if root := t.Base.Root(); root.Kind == core.KName {
			return s.probeFloor(root.Name)
		}
		// The dictionary itself is variable-rooted: it could rewrite into
		// any known dictionary, so take the cheapest probe floor.
		return s.anyProbeFloor()
	case core.KProj:
		return s.fieldFanoutMin(t.Name)
	}
	return 0
}

// probeFloor is the minimum the estimator charges for one lookup into the
// named dictionary: the probe itself plus the smallest bucket it can
// return. A dictionary with no statistics at all floors at the documented
// conservative LookupFloor constant (>= one probe), clamped to
// LookupCost+1 so it can never exceed the estimator's own charge for an
// unknown dictionary.
func (s *Stats) probeFloor(name string) float64 {
	if min, ok := s.EntryFanoutMin[name]; ok {
		return s.LookupCost + min
	}
	if _, ok := s.EntryFanout[name]; ok {
		// Average known, minimum not learned: the probe alone is still
		// mandatory.
		return s.LookupCost
	}
	if _, ok := s.Card[name]; ok {
		return s.LookupCost
	}
	return math.Min(math.Max(s.LookupCost, s.LookupFloor), s.LookupCost+1)
}

// anyProbeFloor is the cheapest probeFloor over every known dictionary —
// the floor of a lookup whose dictionary could rewrite into any of them.
func (s *Stats) anyProbeFloor() float64 {
	f := math.Min(math.Max(s.LookupCost, s.LookupFloor), s.LookupCost+1)
	for name := range s.EntryFanoutMin {
		if p := s.probeFloor(name); p < f {
			f = p
		}
	}
	return f
}

// fieldFanoutMin is the floor of a dependent range over a set-valued
// field: the smallest observed cardinality, or 0 when the field was never
// observed (a dependent range over an unknown field claims nothing).
func (s *Stats) fieldFanoutMin(field string) float64 {
	if f, ok := s.FieldFanoutMin[field]; ok {
		return f
	}
	return 0
}

// grounder decides which bindings of a state can be rewritten into a
// closed (variable-free) range using only the equalities the state's
// conditions imply. It mirrors the congruence closure Subquery rewrites
// with — same term universe (AllTerms), same merges (Conds) — and marks a
// congruence class ground when any member is groundable: ground directly
// (no variables), through its class, or structurally (every child
// groundable), iterated to a fixpoint so lifted equalities like
// k ≡ c  ⇒  M[k] ≡ M[c] are honored.
//
// Over-approximation is the safe direction here: deeming a binding
// groundable when no rewrite actually grounds it only lowers the bound.
type grounder struct {
	cc     *congruence.Closure
	ground map[int]bool // class representative -> contains a ground form
}

func newGrounder(q *core.Query) *grounder {
	cc := planClosure(q, -1)
	g := &grounder{cc: cc, ground: map[int]bool{}}
	terms := cc.Terms()
	for changed := true; changed; {
		changed = false
		for _, t := range terms {
			rep := cc.Rep(t)
			if !g.ground[rep] && g.groundable(t) {
				g.ground[rep] = true
				changed = true
			}
		}
	}
	return g
}

// groundable reports whether the term can be rewritten into a closed
// form: it is ground already, its congruence class holds a ground form,
// or every variable-bearing child is itself groundable.
func (g *grounder) groundable(t *core.Term) bool {
	if t.IsGround() {
		return true
	}
	if _, ok := g.cc.ID(t); ok && g.ground[g.cc.Rep(t)] {
		return true
	}
	switch t.Kind {
	case core.KProj, core.KDom:
		return g.groundable(t.Base)
	case core.KLookup:
		return g.groundable(t.Base) && g.groundable(t.Key)
	case core.KStruct:
		for _, f := range t.Fields {
			if !g.groundable(f.Term) {
				return false
			}
		}
		return true
	}
	return false
}

// congruentStructFields returns the field names under which t appears in
// a congruent struct constructor: if struct(..., F: u, ...) with u ≡ t is
// interned, rewriting can re-express t as X.F for any X congruent to the
// constructor (the closure's inverse-beta rule), so the bound must also
// consider the dependent-field floor of F.
func (g *grounder) congruentStructFields(t *core.Term) []string {
	if !g.cc.Contains(t) {
		return nil
	}
	rep := g.cc.Rep(t)
	var fields []string
	for _, u := range g.cc.Terms() {
		if u.Kind != core.KStruct {
			continue
		}
		for _, f := range u.Fields {
			if g.cc.Contains(f.Term) && g.cc.Rep(f.Term) == rep {
				fields = append(fields, f.Name)
			}
		}
	}
	return fields
}
