// Package cost implements the cost model used by step 3 of the paper's
// Algorithm 1: after the chase and backchase produce the minimal plans,
// conventional cost-based optimization picks the cheapest.
//
// The model is a textbook left-deep nested-loop estimator over the
// binding order of a PC plan: scans cost the cardinality of the scanned
// collection, dictionary lookups cost O(1) plus the entry size, dependent
// ranges multiply by their fanout, and equality conditions reduce
// downstream multiplicity by a selectivity factor. It deliberately
// reflects only the physical distinctions the paper relies on — a lookup
// is unit-cost, a scan is linear — and is calibrated against the engine
// package's measured executions in the E8 experiment.
package cost

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"cnb/internal/congruence"
	"cnb/internal/core"
	"cnb/internal/instance"
)

// Stats holds the statistics consulted by the estimator.
//
// Concurrency: a Stats value is treated as immutable once constructed
// (by NewStats/FromInstance or by filling the maps before first use) —
// every method only reads it, so one snapshot may be shared by any
// number of goroutines. To change statistics at runtime, build a new
// snapshot and swap the pointer (see service.Service.SetStats); never
// mutate a published one.
type Stats struct {
	// Card maps a schema name to its cardinality: number of elements for
	// sets, number of keys for dictionaries.
	Card map[string]float64
	// EntryFanout maps a dictionary name to the average size of its
	// set-valued entries (1 for primary indexes and class dictionaries).
	EntryFanout map[string]float64
	// EntryFanoutMin maps a dictionary name to the smallest size of any of
	// its entries. Unlike the average, the minimum survives every plan
	// rewrite — no access path can make a bucket smaller than its smallest
	// instance — so LowerBound may use it as a sound per-probe floor.
	EntryFanoutMin map[string]float64
	// FieldFanout maps "field name" to the average cardinality of
	// set-valued record fields reached by projection (e.g. DProjs -> 5).
	FieldFanout map[string]float64
	// FieldFanoutMin maps "field name" to the smallest observed
	// cardinality of that set-valued field, the dependent-range analogue
	// of EntryFanoutMin.
	FieldFanoutMin map[string]float64
	// Distinct maps "name.field" to the number of distinct values of that
	// field, used for equality selectivities.
	Distinct map[string]float64
	// DefaultSelectivity applies when no Distinct entry matches.
	DefaultSelectivity float64
	// LookupCost is the unit cost of one dictionary lookup.
	LookupCost float64
	// LookupFloor is the conservative per-probe floor LowerBound charges
	// for a lookup into a dictionary with no statistics entry at all: even
	// an unknown dictionary must be probed at least once, so the floor is
	// not 0. It must stay at most LookupCost+1 (the estimator charges
	// LookupCost plus a default fanout of 1 for unknown dictionaries) for
	// the bound to remain admissible; the default is 1.
	LookupFloor float64
	// HashBuildNames lists transient structures (hash tables) whose
	// construction must be charged once per plan that uses them: cost
	// Card[name] * EntryFanout[name].
	HashBuildNames map[string]bool
}

// NewStats returns empty statistics with sensible defaults.
func NewStats() *Stats {
	return &Stats{
		Card:               map[string]float64{},
		EntryFanout:        map[string]float64{},
		EntryFanoutMin:     map[string]float64{},
		FieldFanout:        map[string]float64{},
		FieldFanoutMin:     map[string]float64{},
		Distinct:           map[string]float64{},
		DefaultSelectivity: 0.1,
		LookupCost:         1,
		LookupFloor:        1,
		HashBuildNames:     map[string]bool{},
	}
}

// FromInstance derives statistics from actual data: cardinalities of all
// bound sets and dictionaries, average entry fanouts, per-field distinct
// counts of relations, and average set-valued field fanouts.
func FromInstance(in *instance.Instance) *Stats {
	s := NewStats()
	fieldTotals := map[string]float64{}
	fieldCounts := map[string]float64{}
	fieldMins := map[string]float64{}
	noteField := func(f string, n float64) {
		fieldTotals[f] += n
		fieldCounts[f]++
		if min, ok := fieldMins[f]; !ok || n < min {
			fieldMins[f] = n
		}
	}
	for _, name := range in.Names() {
		v, _ := in.Lookup(name)
		switch t := v.(type) {
		case *instance.Set:
			s.Card[name] = float64(t.Len())
			distinct := map[string]map[string]bool{}
			for _, e := range t.Elems() {
				st, ok := e.(*instance.Struct)
				if !ok {
					continue
				}
				for _, f := range st.Names() {
					fv, _ := st.Field(f)
					if set, isSet := fv.(*instance.Set); isSet {
						noteField(f, float64(set.Len()))
						continue
					}
					if distinct[f] == nil {
						distinct[f] = map[string]bool{}
					}
					distinct[f][fv.Key()] = true
				}
			}
			for f, vals := range distinct {
				s.Distinct[name+"."+f] = float64(len(vals))
			}
		case *instance.Dict:
			s.Card[name] = float64(t.Len())
			total, cnt := 0.0, 0.0
			min := math.Inf(1)
			for _, e := range t.Entries() {
				if set, ok := e[1].(*instance.Set); ok {
					n := float64(set.Len())
					total += n
					cnt++
					if n < min {
						min = n
					}
					continue
				}
				// Record entries: fanout 1; also collect set fields.
				if st, ok := e[1].(*instance.Struct); ok {
					for _, f := range st.Names() {
						fv, _ := st.Field(f)
						if set, isSet := fv.(*instance.Set); isSet {
							noteField(f, float64(set.Len()))
						}
					}
				}
				total++
				cnt++
				if 1 < min {
					min = 1
				}
			}
			if cnt > 0 {
				s.EntryFanout[name] = total / cnt
				s.EntryFanoutMin[name] = min
			}
		}
	}
	for f, total := range fieldTotals {
		if fieldCounts[f] > 0 {
			s.FieldFanout[f] = total / fieldCounts[f]
			s.FieldFanoutMin[f] = fieldMins[f]
		}
	}
	return s
}

func (s *Stats) card(name string) float64 {
	if c, ok := s.Card[name]; ok {
		return c
	}
	return 1000 // default assumption for unknown collections
}

func (s *Stats) entryFanout(name string) float64 {
	if f, ok := s.EntryFanout[name]; ok {
		return f
	}
	return 1
}

func (s *Stats) fieldFanout(field string) float64 {
	if f, ok := s.FieldFanout[field]; ok {
		return f
	}
	return 2
}

// Estimate computes the estimated cost and output cardinality of a plan,
// evaluating its bindings in the order given (the plan's join order).
func (s *Stats) Estimate(q *core.Query) (costTotal, outCard float64) {
	return s.estimate(q, s.condSelectivities(q))
}

// estimate is Estimate with precomputed per-condition selectivities:
// selectivities are independent of binding order, so reorder searches
// compute them once per plan instead of once per permutation.
func (s *Stats) estimate(q *core.Query, sels []float64) (costTotal, outCard float64) {
	mult := 1.0 // running multiplicity of the loop nest
	total := 0.0

	// Charge hash-table builds once per structure used.
	for n := range q.Names() {
		if s.HashBuildNames[n] {
			total += s.card(n) * s.entryFanout(n)
		}
	}

	// Condition bookkeeping: a condition filters at the first binding
	// index where all its variables are bound.
	pos := map[string]int{}
	for i, b := range q.Bindings {
		pos[b.Var] = i
	}
	readyAt := make([]int, len(q.Conds))
	for ci, c := range q.Conds {
		last := -1
		for v := range c.L.Vars() {
			if p, ok := pos[v]; ok && p > last {
				last = p
			}
		}
		for v := range c.R.Vars() {
			if p, ok := pos[v]; ok && p > last {
				last = p
			}
		}
		readyAt[ci] = last
	}

	for i, b := range q.Bindings {
		scanCost, count := s.rangeCost(b.Range)
		total += mult * scanCost
		mult *= count
		for ci, c := range q.Conds {
			if readyAt[ci] == i {
				total += mult * s.condEvalCost(c)
				mult *= sels[ci]
			}
		}
		if mult < 1e-9 {
			mult = 1e-9
		}
	}
	// Producing each output row costs one unit plus its lookups.
	total += mult * (1 + s.lookupCount(q.Out)*s.LookupCost)
	return total, mult
}

// rangeCost returns (cost of producing the range once, expected number of
// elements iterated).
func (s *Stats) rangeCost(r *core.Term) (costOnce, count float64) {
	switch r.Kind {
	case core.KName:
		c := s.card(r.Name)
		return c, c
	case core.KDom:
		if r.Base.Kind == core.KName {
			c := s.card(r.Base.Name)
			return c, c
		}
		return 100, 100
	case core.KLookup:
		// Iterating a (set-valued) dictionary entry: one lookup plus the
		// bucket scan.
		name := r.Base.Root()
		fan := 1.0
		if name.Kind == core.KName {
			fan = s.entryFanout(name.Name)
		}
		inner := s.lookupCount(r.Key) * s.LookupCost
		return s.LookupCost + inner + fan, fan
	case core.KProj:
		// Dependent range over a set-valued field (e.g. d.DProjs).
		fan := s.fieldFanout(r.Name)
		inner := s.lookupCount(r.Base) * s.LookupCost
		return inner + fan, fan
	default:
		return 1, 1
	}
}

// condEvalCost charges the dictionary lookups embedded in a condition.
func (s *Stats) condEvalCost(c core.Cond) float64 {
	return 0.1 + (s.lookupCount(c.L)+s.lookupCount(c.R))*s.LookupCost
}

// lookupCount counts lookup operations in a term.
func (s *Stats) lookupCount(t *core.Term) float64 {
	if t == nil {
		return 0
	}
	switch t.Kind {
	case core.KLookup:
		return 1 + s.lookupCount(t.Base) + s.lookupCount(t.Key)
	case core.KProj, core.KDom:
		return s.lookupCount(t.Base)
	case core.KStruct:
		n := 0.0
		for _, f := range t.Fields {
			n += s.lookupCount(f.Term)
		}
		return n
	}
	return 0
}

// condSelectivities computes the selectivity of every condition of the
// plan, in condition order. Selectivities depend only on the condition
// and the binding ranges — never on the binding order — so one pass
// serves Estimate and every reorder trial. Row equalities the plan's own
// congruence closure proves non-filtering get selectivity 1 (see
// unitRowEquality); everything else falls back to the distinct-count
// heuristics of selectivity.
func (s *Stats) condSelectivities(q *core.Query) []float64 {
	sels := make([]float64, len(q.Conds))
	// The full plan closure (every condition merged) over-approximates
	// every per-condition exclusion closure: exclusion only removes
	// congruences, shrinking the candidate classes unitRowEquality
	// consults. So the full closure, built lazily once and shared across
	// the plan's conditions, is a sound pre-filter — a condition it
	// rejects can never pass under its own exclusion closure — and the
	// per-condition closure is only built for conditions that pass it.
	var full *congruence.Closure
	fullCC := func() *congruence.Closure {
		if full == nil {
			full = planClosure(q, -1)
		}
		return full
	}
	// Exclusion closures are memoized per distinct condition (orientation-
	// insensitive): duplicate copies of one equality exclude the same set
	// of conditions and hence share one closure.
	var excls map[string]*congruence.Closure
	for i, c := range q.Conds {
		if s.unitRowEquality(q, c, fullCC) {
			key := condKey(c)
			exclCC := func() *congruence.Closure {
				if excls == nil {
					excls = map[string]*congruence.Closure{}
				}
				if excls[key] == nil {
					excls[key] = planClosure(q, i)
				}
				return excls[key]
			}
			if s.unitRowEquality(q, c, exclCC) {
				sels[i] = 1
				continue
			}
		}
		sels[i] = s.selectivity(q, c)
	}
	return sels
}

// condKey is an orientation-insensitive cache key for a condition.
func condKey(c core.Cond) string {
	l, r := c.L.HashKey(), c.R.HashKey()
	if r < l {
		l, r = r, l
	}
	return l + "=" + r
}

// planClosure builds the congruence closure over the plan's terms and
// conditions. With skip >= 0 it leaves out every condition syntactically
// equal, in either orientation, to q.Conds[skip] — not just the one
// index: excluding only the index would let a duplicate or flipped copy
// of the priced equality smuggle it back into its own proof. skip -1
// merges all conditions.
func planClosure(q *core.Query, skip int) *congruence.Closure {
	cc := congruence.New()
	for _, t := range q.AllTerms() {
		cc.Add(t)
	}
	for _, cd := range q.Conds {
		if skip >= 0 && sameCond(cd, q.Conds[skip]) {
			continue
		}
		cc.Merge(cd.L, cd.R)
	}
	return cc
}

// sameCond reports orientation-insensitive syntactic equality of two
// conditions.
func sameCond(a, b core.Cond) bool {
	return (a.L.Equal(b.L) && a.R.Equal(b.R)) || (a.L.Equal(b.R) && a.R.Equal(b.L))
}

// unitRowEquality reports whether the var=var condition x = y is a
// selectivity-1 index-membership guard: y is bound to a range that the
// plan's congruence closure proves congruent to a lookup M{κ} (or M[κ])
// whose key κ is congruent to a term over x alone, and M's buckets hold
// at most one entry (EntryFanout <= 1, the estimator's default for
// unknown dictionaries). Then the bucket y iterates is keyed by x's own
// attribute and, being a unit bucket of an index the chase proved to
// contain x's row, consists of exactly the row equated with x — the
// equality is chase residue that filters nothing, so DefaultSelectivity
// would understate the multiplicity tenfold and misrank near-ties (the
// PR 3 calibration finding, e.g. d0 = t_1 with t_1 in DK0{d0.K}).
//
// The decisive closure must merge every plan condition EXCEPT copies of
// the one being priced: the equality must not participate in its own
// proof. Merging x = y makes every term over x congruent to its y
// counterpart, so a bucket actually keyed by an unrelated variable would
// pass the keyed-by-x test and a genuinely filtering equality would be
// priced at selectivity 1. condSelectivities supplies the closure
// (planClosure with the priced condition skipped), first pre-filtering
// with the shared full closure, whose acceptances are a superset.
func (s *Stats) unitRowEquality(q *core.Query, c core.Cond, closure func() *congruence.Closure) bool {
	if c.L.Kind != core.KVar || c.R.Kind != core.KVar || c.L.Name == c.R.Name {
		return false
	}
	rangeOf := func(v string) *core.Term {
		for _, b := range q.Bindings {
			if b.Var == v {
				return b.Range
			}
		}
		return nil
	}
	keyedByX := func(key *core.Term, x string) bool {
		cands := []*core.Term{key}
		if cc := closure(); cc.Contains(key) {
			cands = cc.ClassMembers(key)
		}
		for _, k := range cands {
			vars := k.Vars()
			if len(vars) == 1 && vars[x] {
				return true
			}
		}
		return false
	}
	check := func(x, y string) bool {
		rng := rangeOf(y)
		if rng == nil {
			return false
		}
		cands := []*core.Term{rng}
		if cc := closure(); cc.Contains(rng) {
			cands = cc.ClassMembers(rng)
		}
		for _, m := range cands {
			if m.Kind != core.KLookup {
				continue
			}
			root := m.Base.Root()
			if root.Kind != core.KName || s.entryFanout(root.Name) > 1 {
				continue
			}
			if keyedByX(m.Key, x) {
				return true
			}
		}
		return false
	}
	return check(c.L.Name, c.R.Name) || check(c.R.Name, c.L.Name)
}

// selectivity estimates the filtering power of an equality condition.
func (s *Stats) selectivity(q *core.Query, c core.Cond) float64 {
	sel := func(t *core.Term) (float64, bool) {
		// name.field distinct count when t is r.F with r bound to a scan
		// of a named relation.
		if t.Kind == core.KProj && t.Base.Kind == core.KVar {
			for _, b := range q.Bindings {
				if b.Var == t.Base.Name && b.Range.Kind == core.KName {
					if d, ok := s.Distinct[b.Range.Name+"."+t.Name]; ok && d > 0 {
						return 1 / d, true
					}
				}
			}
		}
		return 0, false
	}
	if c.L.Kind == core.KConst || c.R.Kind == core.KConst {
		other := c.L
		if c.L.Kind == core.KConst {
			other = c.R
		}
		if f, ok := sel(other); ok {
			return f
		}
		return s.DefaultSelectivity
	}
	// Join condition: 1/max(distinct sides) when known.
	fl, okL := sel(c.L)
	fr, okR := sel(c.R)
	switch {
	case okL && okR:
		return math.Min(fl, fr)
	case okL:
		return fl
	case okR:
		return fr
	}
	return s.DefaultSelectivity
}

// Reorder returns a copy of the plan with its bindings reordered to
// minimize estimated cost — the paper's "conventional optimization"
// join-reordering step applied to plans. Plans with at most
// exhaustiveReorderLimit bindings are ordered by exhaustive search over
// all valid permutations (backchase output plans are small); larger plans
// fall back to a greedy heuristic.
func (s *Stats) Reorder(q *core.Query) *core.Query {
	n := len(q.Bindings)
	if n <= 1 {
		return q.Clone()
	}
	if n <= exhaustiveReorderLimit {
		if best := s.reorderExhaustive(q); best != nil {
			return best
		}
	}
	return s.reorderGreedy(q)
}

const exhaustiveReorderLimit = 6

// reorderExhaustive tries every scope-valid binding permutation and keeps
// the cheapest. Returns nil if no valid order exists (cyclic scoping).
func (s *Stats) reorderExhaustive(q *core.Query) *core.Query {
	n := len(q.Bindings)
	used := make([]bool, n)
	bound := map[string]bool{}
	order := make([]core.Binding, 0, n)
	var best *core.Query
	bestCost := math.Inf(1)
	// Selectivities are order-independent; share them across permutations.
	sels := s.condSelectivities(q)
	var rec func()
	rec = func() {
		if len(order) == n {
			cand := q.Clone()
			cand.Bindings = append([]core.Binding(nil), order...)
			c, _ := s.estimate(cand, sels)
			if c < bestCost {
				bestCost = c
				best = cand
			}
			return
		}
		for i, b := range q.Bindings {
			if used[i] {
				continue
			}
			ok := true
			for v := range b.Range.Vars() {
				if !bound[v] {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			used[i] = true
			bound[b.Var] = true
			order = append(order, b)
			rec()
			order = order[:len(order)-1]
			delete(bound, b.Var)
			used[i] = false
		}
	}
	rec()
	return best
}

// reorderGreedy picks, at each step, the valid next binding with the
// smallest filtered iteration count.
func (s *Stats) reorderGreedy(q *core.Query) *core.Query {
	return s.reorderGreedySels(q, s.condSelectivities(q))
}

// reorderGreedySels is reorderGreedy with precomputed selectivities, so
// EstimateQuick shares one computation between the reorder and the final
// estimate (the cost-bounded backchase calls it per enqueued state).
func (s *Stats) reorderGreedySels(q *core.Query, sels []float64) *core.Query {
	n := len(q.Bindings)
	used := make([]bool, n)
	bound := map[string]bool{}
	var order []core.Binding
	for len(order) < n {
		best := -1
		bestCost := math.Inf(1)
		for i, b := range q.Bindings {
			if used[i] {
				continue
			}
			ready := true
			for v := range b.Range.Vars() {
				if !bound[v] {
					ready = false
					break
				}
			}
			if !ready {
				continue
			}
			// Score: iterate count discounted by conditions that become
			// checkable once this binding is added.
			_, count := s.rangeCost(b.Range)
			score := count
			trialBound := map[string]bool{b.Var: true}
			for v := range bound {
				trialBound[v] = true
			}
			for ci, c := range q.Conds {
				if condReady(c, trialBound) && !condReady(c, bound) {
					score *= sels[ci]
				}
			}
			if score < bestCost {
				bestCost = score
				best = i
			}
		}
		if best == -1 {
			return q.Clone() // scoping problem; bail out unchanged
		}
		used[best] = true
		bound[q.Bindings[best].Var] = true
		order = append(order, q.Bindings[best])
	}
	out := q.Clone()
	out.Bindings = order
	return out
}

func condReady(c core.Cond, bound map[string]bool) bool {
	for v := range c.L.Vars() {
		if !bound[v] {
			return false
		}
	}
	for v := range c.R.Vars() {
		if !bound[v] {
			return false
		}
	}
	return true
}

// EstimateBest reorders the plan's bindings and returns the estimated
// cost of the best order found — the cost the optimizer would attribute
// to the plan.
func (s *Stats) EstimateBest(q *core.Query) float64 {
	c, _ := s.Estimate(s.Reorder(q))
	return c
}

// EstimateQuick estimates the plan's cost under the greedy binding order
// only, skipping the exhaustive small-plan permutation search of Reorder.
// It is the metric of the cost-bounded backchase, which estimates every
// enqueued lattice state: the greedy order is an achievable execution
// order, so the value is a true (achievable) plan cost and a sound
// pruning bound — just not always the cheapest order the final
// conventional-optimization phase will find.
func (s *Stats) EstimateQuick(q *core.Query) float64 {
	sels := s.condSelectivities(q)
	if len(q.Bindings) <= 1 {
		c, _ := s.estimate(q, sels)
		return c
	}
	c, _ := s.estimate(s.reorderGreedySels(q, sels), sels)
	return c
}

// Fingerprint renders the statistics deterministically (sorted keys), so
// they can participate in cache keys: two Stats with equal fingerprints
// produce identical estimates.
func (s *Stats) Fingerprint() string {
	var b strings.Builder
	writeMap := func(label string, m map[string]float64) {
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		b.WriteString(label)
		for _, k := range keys {
			fmt.Fprintf(&b, "%s=%g;", k, m[k])
		}
		b.WriteByte('\n')
	}
	writeMap("card:", s.Card)
	writeMap("entry:", s.EntryFanout)
	writeMap("entrymin:", s.EntryFanoutMin)
	writeMap("field:", s.FieldFanout)
	writeMap("fieldmin:", s.FieldFanoutMin)
	writeMap("distinct:", s.Distinct)
	hb := make([]string, 0, len(s.HashBuildNames))
	for k := range s.HashBuildNames {
		hb = append(hb, k)
	}
	sort.Strings(hb)
	fmt.Fprintf(&b, "hash:%s\nsel=%g lookup=%g floor=%g\n", strings.Join(hb, ";"), s.DefaultSelectivity, s.LookupCost, s.LookupFloor)
	return b.String()
}

// RankedPlan is one entry of a cost-ranked candidate pool: a plan with
// its bindings already reordered by Reorder, together with its
// estimated cost and output cardinality.
type RankedPlan struct {
	Query *core.Query
	Cost  float64
	Card  float64
}

// Rank reorders and costs every plan, returning them sorted by cost.
func (s *Stats) Rank(plans []*core.Query) []RankedPlan {
	out := make([]RankedPlan, 0, len(plans))
	for _, p := range plans {
		r := s.Reorder(p)
		c, card := s.Estimate(r)
		out = append(out, RankedPlan{Query: r, Cost: c, Card: card})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Cost < out[j].Cost })
	return out
}
