package cost

import (
	"testing"

	"cnb/internal/core"
)

func TestBuildSizeHint(t *testing.T) {
	s := NewStats()
	s.Card["R"] = 500
	s.Card["M"] = 100
	s.EntryFanout["M"] = 4

	cases := []struct {
		name string
		term *core.Term
		want int
	}{
		{"relation", core.Name("R"), 500},
		{"dict domain", core.Dom(core.Name("M")), 100},
		{"ground lookup uses fanout", core.Lk(core.Name("M"), core.C(int64(7))), 4},
		{"unknown name", core.Name("ZZ"), 0},
		{"variable-dependent", core.Lk(core.Name("M"), core.Prj(core.V("x"), "K")), 0},
		{"nil", nil, 0},
	}
	for _, c := range cases {
		if got := s.BuildSizeHint(c.term); got != c.want {
			t.Errorf("%s: BuildSizeHint = %d, want %d", c.name, got, c.want)
		}
	}

	// The hint must stay bounded however large the stats claim.
	s.Card["huge"] = 1e18
	if got := s.BuildSizeHint(core.Name("huge")); got != buildHintCap {
		t.Errorf("cap: got %d, want %d", got, buildHintCap)
	}
}
