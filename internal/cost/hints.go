package cost

import "cnb/internal/core"

// buildHintCap bounds how many map slots a pre-size hint may request, so
// a stale or wildly wrong cardinality cannot make the executor allocate
// unbounded memory up front. 4M entries is far above every gated workload
// tier while keeping the worst-case speculative allocation modest.
const buildHintCap = 1 << 22

// BuildSizeHint estimates how many rows a hash-join build over the given
// range term will index, so the executor can pre-size the build table
// and skip rehash-and-copy growth cycles on large builds. It returns 0
// when the statistics have nothing to say (variable-dependent range,
// unknown root name), in which case callers should size from the data.
//
// The hint is advisory and correctness-neutral: it only ever feeds a map
// capacity, never a row count, so a stale value can cost memory or a
// rehash but cannot change results. It reads only immutable fields of
// the receiver and is safe for concurrent use, matching the service
// layer's atomic stats-swap contract.
func (s *Stats) BuildSizeHint(t *core.Term) int {
	if t == nil || len(t.Vars()) > 0 {
		return 0
	}
	root := t.Root()
	if root == nil || root.Kind != core.KName {
		return 0
	}
	card, ok := s.Card[root.Name]
	if !ok || card <= 0 {
		return 0
	}
	n := card
	if t.Kind == core.KLookup {
		// M[k] with a ground key: one bucket, sized by the entry fanout.
		n = s.entryFanout(root.Name)
	}
	if n > buildHintCap {
		n = buildHintCap
	}
	if n < 1 {
		return 0
	}
	return int(n)
}
