package cost

import (
	"testing"

	"cnb/internal/core"
)

// unitSelStats returns statistics resembling a star instance with a
// unit-bucket dimension-key index DK0 and a multi-entry secondary index
// SD0 (the PR 3 calibration scenario).
func unitSelStats() *Stats {
	s := NewStats()
	s.Card["D0"] = 100
	s.Card["DK0"] = 100
	s.Card["SD0"] = 10
	s.EntryFanout["DK0"] = 1
	s.EntryFanoutMin["DK0"] = 1
	s.EntryFanout["SD0"] = 10
	s.EntryFanoutMin["SD0"] = 8
	return s
}

// keyIndexSelfJoin is the misranked shape from the PR 3 calibration
// finding: d0 scans the dimension, t iterates the unit bucket of the key
// index at d0's own key, and the chase-derived guard d0 = t filters
// nothing.
func keyIndexSelfJoin() *core.Query {
	v, n, prj := core.V, core.Name, core.Prj
	return &core.Query{
		Out: prj(v("d0"), "A"),
		Bindings: []core.Binding{
			{Var: "d0", Range: n("D0")},
			{Var: "t", Range: core.LkNF(n("DK0"), prj(v("d0"), "K"))},
		},
		Conds: []core.Cond{{L: v("d0"), R: v("t")}},
	}
}

func TestUnitRowEqualityKeyIndex(t *testing.T) {
	s := unitSelStats()
	q := keyIndexSelfJoin()
	_, card := s.Estimate(q)
	// 100 dimension rows x unit bucket x selectivity 1: the guard must
	// not shrink the multiplicity (DefaultSelectivity would report 10).
	if card != 100 {
		t.Errorf("output cardinality = %g, want 100 (selectivity-1 guard)", card)
	}
}

func TestUnitRowEqualitySymmetric(t *testing.T) {
	s := unitSelStats()
	q := keyIndexSelfJoin()
	// The congruence argument is orientation-independent.
	q.Conds[0].L, q.Conds[0].R = q.Conds[0].R, q.Conds[0].L
	if _, card := s.Estimate(q); card != 100 {
		t.Errorf("flipped orientation: output cardinality = %g, want 100", card)
	}
}

// TestUnitRowEqualityThroughClosure covers the unsimplified plan shape:
// the lookup key is a separate dom-bound variable k with k = d0.K among
// the conditions, so only the congruence closure connects the bucket to
// d0.
func TestUnitRowEqualityThroughClosure(t *testing.T) {
	v, n, prj := core.V, core.Name, core.Prj
	q := &core.Query{
		Out: prj(v("d0"), "A"),
		Bindings: []core.Binding{
			{Var: "d0", Range: n("D0")},
			{Var: "k", Range: core.Dom(n("DK0"))},
			{Var: "t", Range: core.Lk(n("DK0"), v("k"))},
		},
		Conds: []core.Cond{
			{L: v("k"), R: prj(v("d0"), "K")},
			{L: v("d0"), R: v("t")},
		},
	}
	s := unitSelStats()
	sels := s.condSelectivities(q)
	if sels[1] != 1 {
		t.Errorf("selectivity(d0 = t) = %g, want 1 via the congruence closure", sels[1])
	}
	if sels[0] == 1 {
		t.Errorf("selectivity(k = d0.K) must keep the heuristic estimate, got 1")
	}
}

// TestUnitRowEqualityRequiresUnitFanout pins the guard: an index with
// multi-entry buckets (SD0) proves nothing about a row equality, and a
// constant-keyed bucket is unrelated to the other side.
func TestUnitRowEqualityRequiresUnitFanout(t *testing.T) {
	v, n, prj := core.V, core.Name, core.Prj
	s := unitSelStats()

	multi := &core.Query{
		Out: prj(v("d0"), "A"),
		Bindings: []core.Binding{
			{Var: "d0", Range: n("D0")},
			{Var: "t", Range: core.LkNF(n("SD0"), prj(v("d0"), "A"))},
		},
		Conds: []core.Cond{{L: v("d0"), R: v("t")}},
	}
	if sels := s.condSelectivities(multi); sels[0] != s.DefaultSelectivity {
		t.Errorf("multi-entry bucket: selectivity = %g, want DefaultSelectivity %g",
			sels[0], s.DefaultSelectivity)
	}

	constKey := &core.Query{
		Out: prj(v("d0"), "A"),
		Bindings: []core.Binding{
			{Var: "d0", Range: n("D0")},
			{Var: "t", Range: core.LkNF(n("DK0"), core.C(int64(3)))},
		},
		Conds: []core.Cond{{L: v("d0"), R: v("t")}},
	}
	if sels := s.condSelectivities(constKey); sels[0] != s.DefaultSelectivity {
		t.Errorf("constant-keyed bucket: selectivity = %g, want DefaultSelectivity %g",
			sels[0], s.DefaultSelectivity)
	}
}

// TestUnitRowEqualityNotSelfProving pins the review finding: the
// equality being priced must not participate in its own congruence
// proof. Here x = y is a genuinely filtering join of the independent
// scan x against the bucket entry y, but merging x = y into the closure
// puts x into the class of the bucket key z (via the separate guard
// z = y), so the keyed-by-x test would accept a bucket actually keyed by
// z and price the filter at selectivity 1.
func TestUnitRowEqualityNotSelfProving(t *testing.T) {
	v, n := core.V, core.Name
	q := &core.Query{
		Out: v("x"),
		Bindings: []core.Binding{
			{Var: "z", Range: n("S")},
			{Var: "x", Range: n("R")},
			{Var: "y", Range: core.LkNF(n("M"), v("z"))},
		},
		Conds: []core.Cond{
			{L: v("x"), R: v("y")},
			{L: v("z"), R: v("y")},
		},
	}
	s := unitSelStats()
	sels := s.condSelectivities(q)
	if sels[0] != s.DefaultSelectivity {
		t.Errorf("selectivity(x = y) = %g, want DefaultSelectivity %g: the priced equality proved itself",
			sels[0], s.DefaultSelectivity)
	}
	// The guard z = y stays a unit-bucket membership (key z is directly
	// over z, no closure needed).
	if sels[1] != 1 {
		t.Errorf("selectivity(z = y) = %g, want 1", sels[1])
	}

	// A flipped copy of the priced equality must not smuggle it back into
	// its own proof: the exclusion is by syntactic condition, in either
	// orientation, not by index.
	q.Conds = []core.Cond{
		{L: v("x"), R: v("y")},
		{L: v("y"), R: v("x")},
		{L: v("z"), R: v("y")},
	}
	sels = s.condSelectivities(q)
	for _, i := range []int{0, 1} {
		if sels[i] != s.DefaultSelectivity {
			t.Errorf("duplicated x = y: selectivity[%d] = %g, want DefaultSelectivity %g",
				i, sels[i], s.DefaultSelectivity)
		}
	}
}

// TestUnitRowEqualityRanking is the misranking regression itself: with
// the guard priced at selectivity 1, the estimator must rank the plan
// that adds a redundant unit-bucket probe above (costlier than) the plan
// without it, instead of letting DefaultSelectivity make the extra probe
// look ten times cheaper downstream.
func TestUnitRowEqualityRanking(t *testing.T) {
	v, n, prj := core.V, core.Name, core.Prj
	s := unitSelStats()
	bare := &core.Query{
		Out:      prj(v("d0"), "A"),
		Bindings: []core.Binding{{Var: "d0", Range: n("D0")}},
	}
	withProbe := keyIndexSelfJoin()
	cBare, cardBare := s.Estimate(bare)
	cProbe, cardProbe := s.Estimate(withProbe)
	if cardBare != cardProbe {
		t.Errorf("equivalent plans disagree on cardinality: %g vs %g", cardBare, cardProbe)
	}
	if cProbe <= cBare {
		t.Errorf("redundant probe estimated cheaper: with=%g without=%g", cProbe, cBare)
	}
}
