package cost

import (
	"math"
	"testing"

	"cnb/internal/core"
)

func boundStats() *Stats {
	s := NewStats()
	s.Card["Fact"] = 6000
	s.Card["D"] = 3000
	s.Card["SI"] = 100
	return s
}

// TestLowerBoundScanFloors: bare scans floor at their cardinality, dom
// scans at the dictionary cardinality, and the bound takes the minimum.
func TestLowerBoundScanFloors(t *testing.T) {
	s := boundStats()
	q := &core.Query{
		Out: core.V("f"),
		Bindings: []core.Binding{
			{Var: "f", Range: core.Name("Fact")},
			{Var: "d", Range: core.Name("D")},
		},
	}
	if lb := s.LowerBound(q); lb != 3000 {
		t.Errorf("LowerBound = %v, want 3000 (the cheaper scan)", lb)
	}
	q.Bindings = append(q.Bindings, core.Binding{Var: "k", Range: core.Dom(core.Name("SI"))})
	if lb := s.LowerBound(q); lb != 100 {
		t.Errorf("LowerBound with dom scan = %v, want 100", lb)
	}
}

// TestLowerBoundLookupIsZero: a lookup binding can be substituted into
// an arbitrarily cheap form downstream, so it contributes no floor.
func TestLowerBoundLookupIsZero(t *testing.T) {
	s := boundStats()
	q := &core.Query{
		Out: core.V("x"),
		Bindings: []core.Binding{
			{Var: "f", Range: core.Name("Fact")},
			{Var: "k", Range: core.Dom(core.Name("SI"))},
			{Var: "x", Range: core.Lk(core.Name("SI"), core.V("k"))},
		},
	}
	if lb := s.LowerBound(q); lb != 0 {
		t.Errorf("LowerBound with a lookup binding = %v, want 0", lb)
	}
}

// TestLowerBoundAdmissibleForEstimates: the floor must under-estimate
// both the quick and the full estimate of the query itself — the
// first-binding argument applied to the identity rewrite.
func TestLowerBoundAdmissibleForEstimates(t *testing.T) {
	s := boundStats()
	q := &core.Query{
		Out: core.Prj(core.V("f"), "M"),
		Bindings: []core.Binding{
			{Var: "f", Range: core.Name("Fact")},
			{Var: "d", Range: core.Name("D")},
		},
		Conds: []core.Cond{{L: core.Prj(core.V("f"), "K"), R: core.Prj(core.V("d"), "K")}},
	}
	lb := s.LowerBound(q)
	if quick := s.EstimateQuick(q); quick < lb {
		t.Errorf("EstimateQuick %v below LowerBound %v", quick, lb)
	}
	if best := s.EstimateBest(q); best < lb {
		t.Errorf("EstimateBest %v below LowerBound %v", best, lb)
	}
}

// TestLowerBoundEmptyQuery: no bindings means no claim.
func TestLowerBoundEmptyQuery(t *testing.T) {
	if lb := boundStats().LowerBound(&core.Query{Out: core.C("x")}); lb != 0 {
		t.Errorf("LowerBound of empty query = %v, want 0", lb)
	}
}

// TestEstimateQuickMatchesGreedyOrder: quick estimation equals the plain
// estimate of the greedily reordered plan and never beats EstimateBest.
func TestEstimateQuickMatchesGreedyOrder(t *testing.T) {
	s := boundStats()
	s.Distinct["Fact.K"] = 3000
	s.Distinct["D.K"] = 3000
	q := &core.Query{
		Out: core.Prj(core.V("f"), "M"),
		Bindings: []core.Binding{
			{Var: "f", Range: core.Name("Fact")},
			{Var: "d", Range: core.Name("D")},
		},
		Conds: []core.Cond{{L: core.Prj(core.V("f"), "K"), R: core.Prj(core.V("d"), "K")}},
	}
	quick := s.EstimateQuick(q)
	best := s.EstimateBest(q)
	if best > quick {
		t.Errorf("EstimateBest %v worse than EstimateQuick %v", best, quick)
	}
	if math.IsNaN(quick) || math.IsInf(quick, 0) {
		t.Errorf("EstimateQuick = %v", quick)
	}
}

// TestFingerprintDeterministicAndSensitive: equal stats produce equal
// fingerprints regardless of map iteration order; any changed number
// changes the fingerprint.
func TestFingerprintDeterministicAndSensitive(t *testing.T) {
	a := boundStats()
	b := boundStats()
	a.Distinct["Fact.K"] = 10
	b.Distinct["Fact.K"] = 10
	a.HashBuildNames["H"] = true
	b.HashBuildNames["H"] = true
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("identical stats fingerprint differently")
	}
	b.Card["Fact"] = 6001
	if a.Fingerprint() == b.Fingerprint() {
		t.Error("changed cardinality did not change the fingerprint")
	}
}
