package cost

import (
	"math"
	"testing"

	"cnb/internal/core"
)

func boundStats() *Stats {
	s := NewStats()
	s.Card["Fact"] = 6000
	s.Card["D"] = 3000
	s.Card["SI"] = 100
	return s
}

// TestLowerBoundScanFloors: bare scans floor at their cardinality, dom
// scans at the dictionary cardinality, and the bound takes the minimum.
func TestLowerBoundScanFloors(t *testing.T) {
	s := boundStats()
	q := &core.Query{
		Out: core.V("f"),
		Bindings: []core.Binding{
			{Var: "f", Range: core.Name("Fact")},
			{Var: "d", Range: core.Name("D")},
		},
	}
	if lb := s.LowerBound(q); lb != 3000 {
		t.Errorf("LowerBound = %v, want 3000 (the cheaper scan)", lb)
	}
	q.Bindings = append(q.Bindings, core.Binding{Var: "k", Range: core.Dom(core.Name("SI"))})
	if lb := s.LowerBound(q); lb != 100 {
		t.Errorf("LowerBound with dom scan = %v, want 100", lb)
	}
}

// TestScanFloorLookupIsZero pins the PR-2 bound kept for A/B comparison:
// under ScanFloor a lookup binding floors at 0, dragging the whole state
// to 0 — exactly the weakness LowerBound fixes.
func TestScanFloorLookupIsZero(t *testing.T) {
	s := boundStats()
	q := &core.Query{
		Out: core.V("x"),
		Bindings: []core.Binding{
			{Var: "x", Range: core.Lk(core.Name("SI"), core.C("c"))},
		},
	}
	if lb := s.ScanFloor(q); lb != 0 {
		t.Errorf("ScanFloor with a lookup binding = %v, want 0", lb)
	}
	q.Bindings = append(q.Bindings, core.Binding{Var: "f", Range: core.Name("Fact")})
	if lb := s.ScanFloor(q); lb != 0 {
		t.Errorf("ScanFloor = %v, want 0 (lookup floors at 0)", lb)
	}
}

// TestLowerBoundUngroundedLookupExcluded: a lookup whose key is bound by
// another binding and never equated to a constant cannot be the first
// binding of any reachable plan, so it no longer drags the floor to 0 —
// the state floors at its cheapest groundable access (dom(SI) here).
func TestLowerBoundUngroundedLookupExcluded(t *testing.T) {
	s := boundStats()
	q := &core.Query{
		Out: core.V("x"),
		Bindings: []core.Binding{
			{Var: "f", Range: core.Name("Fact")},
			{Var: "k", Range: core.Dom(core.Name("SI"))},
			{Var: "x", Range: core.Lk(core.Name("SI"), core.V("k"))},
		},
	}
	if lb := s.LowerBound(q); lb != 100 {
		t.Errorf("LowerBound = %v, want 100 (cheapest groundable access)", lb)
	}
}

// TestLowerBoundGroundedLookupProbeFloor: once the key is equated to a
// constant the lookup is groundable and floors at the probe cost plus the
// dictionary's minimum entry fanout — small, but no longer 0.
func TestLowerBoundGroundedLookupProbeFloor(t *testing.T) {
	s := boundStats()
	s.EntryFanoutMin["SI"] = 3
	q := &core.Query{
		Out: core.V("x"),
		Bindings: []core.Binding{
			{Var: "f", Range: core.Name("Fact")},
			{Var: "k", Range: core.Dom(core.Name("SI"))},
			{Var: "x", Range: core.Lk(core.Name("SI"), core.V("k"))},
		},
		Conds: []core.Cond{{L: core.V("k"), R: core.C("CitiBank")}},
	}
	want := s.LookupCost + 3
	if lb := s.LowerBound(q); lb != want {
		t.Errorf("LowerBound = %v, want %v (probe + min fanout)", lb, want)
	}
	// A state whose only groundable accesses are scans floors at the scan,
	// strictly above the ScanFloor bound of the same state.
	if sf := s.ScanFloor(q); sf != 0 {
		t.Errorf("ScanFloor = %v, want 0", sf)
	}
}

// TestLowerBoundUnknownDictionaryFloor: a lookup into a dictionary with
// no statistics entry at all falls back to the documented conservative
// LookupFloor (>= one probe), not 0 — the PR-3 regression fix for the
// zero-floor fallback.
func TestLowerBoundUnknownDictionaryFloor(t *testing.T) {
	s := NewStats() // nothing known
	q := &core.Query{
		Out: core.V("x"),
		Bindings: []core.Binding{
			{Var: "x", Range: core.Lk(core.Name("Mystery"), core.C("k"))},
		},
	}
	if lb := s.LowerBound(q); lb != 1 {
		t.Errorf("LowerBound over unknown dictionary = %v, want 1 (LookupFloor)", lb)
	}
	// The floor is clamped so it can never exceed the estimator's own
	// charge for an unknown dictionary (LookupCost + default fanout 1).
	s.LookupFloor = 50
	if lb := s.LowerBound(q); lb != s.LookupCost+1 {
		t.Errorf("clamped LowerBound = %v, want %v", lb, s.LookupCost+1)
	}
	if quick := s.EstimateQuick(q); quick < s.LowerBound(q) {
		t.Errorf("EstimateQuick %v below LowerBound %v", quick, s.LowerBound(q))
	}
}

// TestLowerBoundNeverBelowScanFloor: the dictionary-aware bound dominates
// the PR-2 bound on a spread of shapes (both are admissible; LowerBound
// is the tighter of the two by construction).
func TestLowerBoundNeverBelowScanFloor(t *testing.T) {
	s := boundStats()
	s.EntryFanoutMin["SI"] = 2
	queries := []*core.Query{
		{Out: core.V("f"), Bindings: []core.Binding{{Var: "f", Range: core.Name("Fact")}}},
		{Out: core.V("x"), Bindings: []core.Binding{
			{Var: "x", Range: core.LkNF(core.Name("SI"), core.C("c"))},
		}},
		{Out: core.V("x"), Bindings: []core.Binding{
			{Var: "f", Range: core.Name("Fact")},
			{Var: "x", Range: core.Lk(core.Name("SI"), core.Prj(core.V("f"), "K"))},
		}},
	}
	for i, q := range queries {
		if lb, sf := s.LowerBound(q), s.ScanFloor(q); lb < sf {
			t.Errorf("query %d: LowerBound %v below ScanFloor %v", i, lb, sf)
		}
	}
}

// TestLowerBoundGroundsThroughConditionChains: groundability must follow
// equality chains (k = f.K, f = I[c]) and congruence lifting, not only
// direct constant equalities.
func TestLowerBoundGroundsThroughConditionChains(t *testing.T) {
	s := boundStats()
	s.Card["M"] = 50
	s.EntryFanoutMin["M"] = 1
	q := &core.Query{
		Out: core.V("x"),
		Bindings: []core.Binding{
			{Var: "f", Range: core.Name("Fact")},
			{Var: "x", Range: core.Lk(core.Name("M"), core.Prj(core.V("f"), "K"))},
		},
		Conds: []core.Cond{
			// f is keyed by a ground lookup, so f.K — and with it the M
			// lookup — is groundable.
			{L: core.V("f"), R: core.Lk(core.Name("I"), core.C("k1"))},
		},
	}
	want := s.LookupCost + 1
	if lb := s.LowerBound(q); lb != want {
		t.Errorf("LowerBound = %v, want %v (lookup groundable through the chain)", lb, want)
	}
}

// TestLowerBoundAdmissibleForEstimates: the floor must under-estimate
// both the quick and the full estimate of the query itself — the
// first-binding argument applied to the identity rewrite.
func TestLowerBoundAdmissibleForEstimates(t *testing.T) {
	s := boundStats()
	q := &core.Query{
		Out: core.Prj(core.V("f"), "M"),
		Bindings: []core.Binding{
			{Var: "f", Range: core.Name("Fact")},
			{Var: "d", Range: core.Name("D")},
		},
		Conds: []core.Cond{{L: core.Prj(core.V("f"), "K"), R: core.Prj(core.V("d"), "K")}},
	}
	lb := s.LowerBound(q)
	if quick := s.EstimateQuick(q); quick < lb {
		t.Errorf("EstimateQuick %v below LowerBound %v", quick, lb)
	}
	if best := s.EstimateBest(q); best < lb {
		t.Errorf("EstimateBest %v below LowerBound %v", best, lb)
	}
}

// TestLowerBoundEmptyQuery: no bindings means no claim.
func TestLowerBoundEmptyQuery(t *testing.T) {
	if lb := boundStats().LowerBound(&core.Query{Out: core.C("x")}); lb != 0 {
		t.Errorf("LowerBound of empty query = %v, want 0", lb)
	}
}

// TestEstimateQuickMatchesGreedyOrder: quick estimation equals the plain
// estimate of the greedily reordered plan and never beats EstimateBest.
func TestEstimateQuickMatchesGreedyOrder(t *testing.T) {
	s := boundStats()
	s.Distinct["Fact.K"] = 3000
	s.Distinct["D.K"] = 3000
	q := &core.Query{
		Out: core.Prj(core.V("f"), "M"),
		Bindings: []core.Binding{
			{Var: "f", Range: core.Name("Fact")},
			{Var: "d", Range: core.Name("D")},
		},
		Conds: []core.Cond{{L: core.Prj(core.V("f"), "K"), R: core.Prj(core.V("d"), "K")}},
	}
	quick := s.EstimateQuick(q)
	best := s.EstimateBest(q)
	if best > quick {
		t.Errorf("EstimateBest %v worse than EstimateQuick %v", best, quick)
	}
	if math.IsNaN(quick) || math.IsInf(quick, 0) {
		t.Errorf("EstimateQuick = %v", quick)
	}
}

// TestFingerprintDeterministicAndSensitive: equal stats produce equal
// fingerprints regardless of map iteration order; any changed number
// changes the fingerprint.
func TestFingerprintDeterministicAndSensitive(t *testing.T) {
	a := boundStats()
	b := boundStats()
	a.Distinct["Fact.K"] = 10
	b.Distinct["Fact.K"] = 10
	a.HashBuildNames["H"] = true
	b.HashBuildNames["H"] = true
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("identical stats fingerprint differently")
	}
	b.Card["Fact"] = 6001
	if a.Fingerprint() == b.Fingerprint() {
		t.Error("changed cardinality did not change the fingerprint")
	}
}
