// An external test package: it exercises only the exported API, and
// keeping it external lets it import internal/workload (which itself
// imports cost for SyntheticStats) without a cycle.
package cost_test

import (
	"testing"

	"cnb/internal/core"
	"cnb/internal/cost"
	"cnb/internal/workload"
)

func projDeptStats(t *testing.T) *cost.Stats {
	t.Helper()
	pd, err := workload.NewProjDept()
	if err != nil {
		t.Fatal(err)
	}
	in := pd.Generate(workload.GenOptions{NumDepts: 100, ProjsPerDept: 10, CitiBankShare: 0.01, Seed: 1})
	return cost.FromInstance(in)
}

func TestFromInstanceCardinalities(t *testing.T) {
	s := projDeptStats(t)
	if s.Card["Proj"] != 1000 {
		t.Errorf("|Proj| = %v, want 1000", s.Card["Proj"])
	}
	if s.Card["depts"] != 100 {
		t.Errorf("|depts| = %v, want 100", s.Card["depts"])
	}
	if s.Card["I"] != 1000 {
		t.Errorf("|I| = %v, want 1000", s.Card["I"])
	}
	// DProjs fanout: 10 projects per dept.
	if f := s.FieldFanout["DProjs"]; f < 9.5 || f > 10.5 {
		t.Errorf("DProjs fanout = %v, want ~10", f)
	}
	// Primary index fanout 1.
	if f := s.EntryFanout["I"]; f != 1 {
		t.Errorf("I fanout = %v, want 1", f)
	}
	// CustName distinct counts recorded.
	if s.Distinct["Proj.CustName"] == 0 {
		t.Error("distinct Proj.CustName missing")
	}
}

func TestEstimateScanVsLookup(t *testing.T) {
	s := projDeptStats(t)
	scan := &core.Query{
		Out:      core.Prj(core.V("p"), "PName"),
		Bindings: []core.Binding{{Var: "p", Range: core.Name("Proj")}},
		Conds:    []core.Cond{{L: core.Prj(core.V("p"), "CustName"), R: core.C("CitiBank")}},
	}
	idx := &core.Query{
		Out:      core.Prj(core.V("p"), "PName"),
		Bindings: []core.Binding{{Var: "p", Range: core.LkNF(core.Name("SI"), core.C("CitiBank"))}},
	}
	scanCost, _ := s.Estimate(scan)
	idxCost, _ := s.Estimate(idx)
	if idxCost >= scanCost {
		t.Errorf("index lookup (%.1f) must be cheaper than scan (%.1f) at 1%% selectivity", idxCost, scanCost)
	}
}

func TestEstimateCardinality(t *testing.T) {
	s := projDeptStats(t)
	scan := &core.Query{
		Out:      core.Prj(core.V("p"), "PName"),
		Bindings: []core.Binding{{Var: "p", Range: core.Name("Proj")}},
		Conds:    []core.Cond{{L: core.Prj(core.V("p"), "CustName"), R: core.C("CitiBank")}},
	}
	_, card := s.Estimate(scan)
	// ~1000 rows / ~#distinct customers; must be far below 1000.
	if card >= 500 {
		t.Errorf("selection cardinality = %v, want << 1000", card)
	}
}

func TestEstimateJoinOrderSensitivity(t *testing.T) {
	s := projDeptStats(t)
	// Filter-first order must cost less than filter-last.
	filterFirst := &core.Query{
		Out: core.C(true),
		Bindings: []core.Binding{
			{Var: "p", Range: core.Name("Proj")},
			{Var: "d", Range: core.Name("depts")},
		},
		Conds: []core.Cond{
			{L: core.Prj(core.V("p"), "CustName"), R: core.C("CitiBank")},
			{L: core.Prj(core.V("p"), "PDept"), R: core.Prj(core.V("d"), "DName")},
		},
	}
	filterLast := filterFirst.Clone()
	filterLast.Bindings = []core.Binding{filterFirst.Bindings[1], filterFirst.Bindings[0]}
	cFirst, _ := s.Estimate(filterFirst)
	cLast, _ := s.Estimate(filterLast)
	if cFirst >= cLast {
		t.Errorf("selective-first order (%.1f) should beat selective-last (%.1f)", cFirst, cLast)
	}
}

func TestReorderPicksSelectiveFirst(t *testing.T) {
	s := projDeptStats(t)
	q := &core.Query{
		Out: core.C(true),
		Bindings: []core.Binding{
			{Var: "d", Range: core.Name("depts")},
			{Var: "p", Range: core.Name("Proj")},
		},
		Conds: []core.Cond{
			{L: core.Prj(core.V("p"), "CustName"), R: core.C("CitiBank")},
			{L: core.Prj(core.V("p"), "PDept"), R: core.Prj(core.V("d"), "DName")},
		},
	}
	r := s.Reorder(q)
	if r.Bindings[0].Var != "p" {
		t.Errorf("reorder should scan Proj (with its filter) first:\n%s", r)
	}
	if err := r.Validate(); err != nil {
		t.Errorf("reordered plan invalid: %v", err)
	}
}

func TestReorderRespectsDependencies(t *testing.T) {
	s := projDeptStats(t)
	q := &core.Query{
		Out: core.C(true),
		Bindings: []core.Binding{
			{Var: "d", Range: core.Name("depts")},
			{Var: "s", Range: core.Prj(core.V("d"), "DProjs")},
		},
	}
	r := s.Reorder(q)
	if err := r.Validate(); err != nil {
		t.Fatalf("dependent binding moved before its variable: %v\n%s", err, r)
	}
	if r.Bindings[0].Var != "d" {
		t.Error("d must stay before s")
	}
}

func TestRankOrdersPlans(t *testing.T) {
	s := projDeptStats(t)
	scan := &core.Query{
		Out:      core.Prj(core.V("p"), "PName"),
		Bindings: []core.Binding{{Var: "p", Range: core.Name("Proj")}},
		Conds:    []core.Cond{{L: core.Prj(core.V("p"), "CustName"), R: core.C("CitiBank")}},
	}
	idx := &core.Query{
		Out:      core.Prj(core.V("p"), "PName"),
		Bindings: []core.Binding{{Var: "p", Range: core.LkNF(core.Name("SI"), core.C("CitiBank"))}},
	}
	ranked := s.Rank([]*core.Query{scan, idx})
	if len(ranked) != 2 {
		t.Fatal("rank lost plans")
	}
	if ranked[0].Cost > ranked[1].Cost {
		t.Error("rank must sort ascending")
	}
	if !ranked[0].Query.Bindings[0].Range.NonFailing {
		t.Error("index plan should rank first")
	}
}

func TestHashBuildCharge(t *testing.T) {
	s := projDeptStats(t)
	q := &core.Query{
		Out:      core.Prj(core.V("t"), "PName"),
		Bindings: []core.Binding{{Var: "t", Range: core.LkNF(core.Name("HT"), core.C("x"))}},
	}
	s.Card["HT"] = 500
	s.EntryFanout["HT"] = 2
	without, _ := s.Estimate(q)
	s.HashBuildNames["HT"] = true
	with, _ := s.Estimate(q)
	if with <= without {
		t.Errorf("hash build must be charged: %v vs %v", with, without)
	}
	if with-without != 1000 {
		t.Errorf("build charge = %v, want 1000", with-without)
	}
}

func TestDefaultStats(t *testing.T) {
	s := cost.NewStats()
	q := &core.Query{
		Out:      core.C(true),
		Bindings: []core.Binding{{Var: "r", Range: core.Name("Unknown")}},
	}
	c, card := s.Estimate(q)
	if c <= 0 || card <= 0 {
		t.Error("defaults must produce positive estimates")
	}
}

func TestEstimateDomScan(t *testing.T) {
	s := projDeptStats(t)
	q := &core.Query{
		Out:      core.V("i"),
		Bindings: []core.Binding{{Var: "i", Range: core.Dom(core.Name("I"))}},
	}
	c, card := s.Estimate(q)
	if card != 1000 {
		t.Errorf("dom(I) cardinality = %v, want 1000", card)
	}
	if c < 1000 {
		t.Errorf("dom scan cost = %v, want >= 1000", c)
	}
}
