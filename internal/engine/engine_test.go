package engine

import (
	"strings"
	"testing"

	"cnb/internal/core"
	"cnb/internal/eval"
	"cnb/internal/instance"
	"cnb/internal/workload"
)

func TestExecuteMatchesEvalOnProjDept(t *testing.T) {
	pd, err := workload.NewProjDept()
	if err != nil {
		t.Fatal(err)
	}
	in := pd.Generate(workload.GenOptions{NumDepts: 8, ProjsPerDept: 4, CitiBankShare: 0.3, Seed: 9})

	queries := []*core.Query{pd.Q}
	// P2 and P3 shapes.
	queries = append(queries, &core.Query{
		Out: core.Struct(
			core.SF("PN", core.Prj(core.V("p"), "PName")),
			core.SF("PB", core.Prj(core.V("p"), "Budg")),
			core.SF("DN", core.Prj(core.V("p"), "PDept")),
		),
		Bindings: []core.Binding{{Var: "p", Range: core.Name("Proj")}},
		Conds:    []core.Cond{{L: core.Prj(core.V("p"), "CustName"), R: core.C("CitiBank")}},
	}, &core.Query{
		Out: core.Struct(
			core.SF("PN", core.Prj(core.V("p"), "PName")),
			core.SF("PB", core.Prj(core.V("p"), "Budg")),
			core.SF("DN", core.Prj(core.V("p"), "PDept")),
		),
		Bindings: []core.Binding{{Var: "p", Range: core.LkNF(core.Name("SI"), core.C("CitiBank"))}},
	})
	for _, q := range queries {
		want, err := eval.Query(q, in)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Execute(q, in)
		if err != nil {
			t.Fatalf("engine failed: %v\n%s", err, q)
		}
		if !got.Equal(want) {
			t.Errorf("engine result differs from eval:\n%s", q)
		}
	}
}

func TestExecuteP4JoinIndexPlan(t *testing.T) {
	pd, err := workload.NewProjDept()
	if err != nil {
		t.Fatal(err)
	}
	in := pd.Generate(workload.GenOptions{NumDepts: 5, ProjsPerDept: 3, CitiBankShare: 0.4, Seed: 4})
	p4 := &core.Query{
		Out: core.Struct(
			core.SF("PN", core.Prj(core.V("j"), "PN")),
			core.SF("PB", core.Prj(core.Lk(core.Name("I"), core.Prj(core.V("j"), "PN")), "Budg")),
			core.SF("DN", core.Prj(core.Lk(core.Name("Dept"), core.Prj(core.V("j"), "DOID")), "DName")),
		),
		Bindings: []core.Binding{{Var: "j", Range: core.Name("JI")}},
		Conds: []core.Cond{
			{L: core.Prj(core.Lk(core.Name("I"), core.Prj(core.V("j"), "PN")), "CustName"), R: core.C("CitiBank")},
		},
	}
	want, err := eval.Query(pd.Q, in)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Execute(p4, in)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Error("P4 execution differs from Q")
	}
}

func TestCompileRejectsBadPlans(t *testing.T) {
	in := instance.NewInstance()
	if _, err := Compile(&core.Query{Out: core.C(1)}, in); err == nil {
		t.Error("plan with no bindings must be rejected")
	}
	bad := &core.Query{
		Out:      core.V("x"),
		Bindings: []core.Binding{{Var: "x", Range: core.Prj(core.V("y"), "F")}},
	}
	if _, err := Compile(bad, in); err == nil {
		t.Error("ill-scoped plan must be rejected")
	}
}

func TestRunErrorsOnMissingName(t *testing.T) {
	in := instance.NewInstance()
	q := &core.Query{
		Out:      core.C(1),
		Bindings: []core.Binding{{Var: "r", Range: core.Name("R")}},
	}
	if _, err := Execute(q, in); err == nil {
		t.Error("missing schema name must error at run time")
	}
}

func TestExplain(t *testing.T) {
	pd, err := workload.NewProjDept()
	if err != nil {
		t.Fatal(err)
	}
	in := pd.Generate(workload.GenOptions{Seed: 1})
	p, err := Compile(pd.Q, in)
	if err != nil {
		t.Fatal(err)
	}
	ex := p.Explain()
	for _, frag := range []string{"Project", "Scan", "Filter"} {
		if !strings.Contains(ex, frag) {
			t.Errorf("Explain missing %q:\n%s", frag, ex)
		}
	}
}

func TestExplainShowsLookupKinds(t *testing.T) {
	pd, err := workload.NewProjDept()
	if err != nil {
		t.Fatal(err)
	}
	in := pd.Generate(workload.GenOptions{Seed: 1})
	p3 := &core.Query{
		Out:      core.Prj(core.V("p"), "PName"),
		Bindings: []core.Binding{{Var: "p", Range: core.LkNF(core.Name("SI"), core.C("CitiBank"))}},
	}
	p, err := Compile(p3, in)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(p.Explain(), "non-failing") {
		t.Errorf("Explain should mark non-failing lookups:\n%s", p.Explain())
	}
}

func TestConstantFalseCondition(t *testing.T) {
	pd, err := workload.NewProjDept()
	if err != nil {
		t.Fatal(err)
	}
	in := pd.Generate(workload.GenOptions{Seed: 1})
	q := &core.Query{
		Out:      core.Prj(core.V("p"), "PName"),
		Bindings: []core.Binding{{Var: "p", Range: core.Name("Proj")}},
		Conds:    []core.Cond{{L: core.C(1), R: core.C(2)}},
	}
	got, err := Execute(q, in)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 {
		t.Error("false constant condition must produce empty result")
	}
}

// TestEngineAgreesWithEvalProperty compares engine and eval on randomized
// index-only workloads.
func TestEngineAgreesWithEvalProperty(t *testing.T) {
	sc, err := workload.NewIndexOnly(5, 9)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 5; seed++ {
		in := sc.Generate(100, 10, 10, seed)
		want, err := eval.Query(sc.Q, in)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Execute(sc.Q, in)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Errorf("seed %d: engine differs from eval", seed)
		}
	}
}
