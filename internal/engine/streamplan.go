package engine

import (
	"context"
	"fmt"

	"cnb/internal/core"
	"cnb/internal/cost"
	"cnb/internal/instance"
)

// StreamOptions configures the streaming compiler.
type StreamOptions struct {
	// BatchSize is the row capacity of the batches exchanged between
	// operators; DefaultBatchSize when zero or negative.
	BatchSize int
	// Buffer, when positive, decouples the operator pipeline from the
	// projection/dedup sink behind a bounded prefetch of that many
	// batches, produced by a background goroutine. Zero runs the whole
	// plan on the caller's goroutine.
	Buffer int
	// Stats, when non-nil, supplies build-side pre-sizing hints for hash
	// joins (cost.Stats.BuildSizeHint). Purely advisory: results and
	// counters are identical with or without it.
	Stats *cost.Stats
	// NoHashJoin disables the hash-join rewrite, compiling every binding
	// as a nested batch scan. Used by differential tests to compare the
	// two physical strategies on identical plans.
	NoHashJoin bool
}

// StreamPlan is a compiled streaming query plan. A plan is single-
// consumer — Run, Measure, and Explain must not be called concurrently —
// but independent plans compiled from the same query and instance may
// run in parallel.
type StreamPlan struct {
	root       StreamOperator
	ops        []StreamOperator // counter-owning operators (excludes buffers)
	out        *core.Term
	in         *instance.Instance
	query      *core.Query
	constConds []core.Cond

	constEvals int64
	outRows    int64
}

// CompileStream builds a streaming operator tree for the plan's binding
// order. Like the row engine's Compile it places each condition at the
// earliest binding where its variables are bound, but instead of
// materializing a Filter operator the conditions are pushed down:
//
//   - conditions mentioning only the new variable (or constants) filter
//     inside the scan, before the row is materialized;
//   - equality conditions linking the new variable to earlier ones turn
//     an input-independent range into a hash join, with the new-variable
//     side as the build key and the earlier-variable side as the probe
//     key (all such conditions form one composite key);
//   - anything else — a single term mixing new and old variables —
//     remains a residual batch filter above the operator.
//
// Variable-free conditions are checked once per Run. The binding order
// is taken as given: join *ordering* stays the optimizer's job
// (cost.Stats.Reorder), this compiler only picks the physical strategy
// per binding.
func CompileStream(q *core.Query, in *instance.Instance, opts StreamOptions) (*StreamPlan, error) {
	if err := q.Validate(); err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	if len(q.Bindings) == 0 {
		return nil, fmt.Errorf("engine: plan with no bindings")
	}
	batch := opts.BatchSize
	if batch <= 0 {
		batch = DefaultBatchSize
	}
	pos := map[string]int{}
	for i, b := range q.Bindings {
		pos[b.Var] = i
	}
	condAt := make([][]core.Cond, len(q.Bindings)+1)
	for _, c := range q.Conds {
		last := -1
		for v := range c.L.Vars() {
			if p, ok := pos[v]; ok && p > last {
				last = p
			}
		}
		for v := range c.R.Vars() {
			if p, ok := pos[v]; ok && p > last {
				last = p
			}
		}
		condAt[last+1] = append(condAt[last+1], c)
	}

	var root StreamOperator
	var ops []StreamOperator
	sch := newBatchSchema(nil)
	for i, b := range q.Bindings {
		sch = sch.extend(b.Var)
		conds := condAt[i+1]

		// Partition this level's conditions by which side of the join
		// they can drive.
		onlyNew := func(vs map[string]bool) bool {
			for v := range vs {
				if v != b.Var {
					return false
				}
			}
			return true
		}
		var scanPreds, residual []core.Cond
		var buildTerms, probeTerms []*core.Term
		for _, c := range conds {
			lv, rv := c.L.Vars(), c.R.Vars()
			switch {
			case onlyNew(lv) && onlyNew(rv):
				scanPreds = append(scanPreds, c)
			case onlyNew(lv) && len(lv) > 0 && len(rv) > 0 && !rv[b.Var]:
				buildTerms = append(buildTerms, c.L)
				probeTerms = append(probeTerms, c.R)
			case onlyNew(rv) && len(rv) > 0 && len(lv) > 0 && !lv[b.Var]:
				buildTerms = append(buildTerms, c.R)
				probeTerms = append(probeTerms, c.L)
			default:
				residual = append(residual, c)
			}
		}

		if i > 0 && !opts.NoHashJoin && len(buildTerms) > 0 && len(b.Range.Vars()) == 0 {
			presize := 0
			if opts.Stats != nil {
				presize = opts.Stats.BuildSizeHint(b.Range)
			}
			hj := &hashJoin{
				in:         in,
				child:      root,
				v:          b.Var,
				rng:        b.Range,
				buildTerms: buildTerms,
				probeTerms: probeTerms,
				buildPreds: scanPreds,
				sch:        sch,
				batch:      batch,
				presize:    presize,
			}
			root = hj
			ops = append(ops, hj)
		} else {
			// No hash opportunity: scan the range per input row with every
			// ready condition pushed down as a scan predicate.
			sc := &batchScan{
				in:    in,
				child: root,
				v:     b.Var,
				rng:   b.Range,
				preds: conds,
				sch:   sch,
				batch: batch,
			}
			root = sc
			ops = append(ops, sc)
			residual = nil
		}
		if len(residual) > 0 {
			f := &batchFilter{in: in, child: root, conds: residual}
			root = f
			ops = append(ops, f)
		}
	}
	if opts.Buffer > 0 {
		// Not appended to ops: a buffer owns no counters of its own
		// (Counters delegates to its child, which is already listed).
		root = &buffered{child: root, depth: opts.Buffer}
	}
	return &StreamPlan{
		root:       root,
		ops:        ops,
		out:        q.Out,
		in:         in,
		query:      q,
		constConds: condAt[0],
	}, nil
}

// Run executes the plan under ctx and returns its deduplicated result
// set. Cancelling ctx aborts the run between rows with ctx.Err(); all
// operators — including any background prefetch goroutine — are closed
// before Run returns, whatever the outcome. Counters reset at each Run,
// so Measure reflects the latest Run only.
func (p *StreamPlan) Run(ctx context.Context) (*instance.Set, error) {
	p.outRows = 0
	p.constEvals = 0
	out := instance.NewSet()
	// Variable-free conditions decide the whole run once, matching the
	// row engine's level-0 filter.
	empty := &Batch{schema: newBatchSchema(nil)}
	for _, c := range p.constConds {
		p.constEvals++
		l, err := batchEval(c.L, empty, 0, p.in)
		if err != nil {
			return nil, err
		}
		r, err := batchEval(c.R, empty, 0, p.in)
		if err != nil {
			return nil, err
		}
		if l.Key() != r.Key() {
			return out, nil
		}
	}
	if err := p.root.Open(ctx); err != nil {
		return nil, err
	}
	defer p.root.Close()
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		b, err := p.root.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			return out, nil
		}
		for i := 0; i < b.Len(); i++ {
			v, err := batchEval(p.out, b, i, p.in)
			if err != nil {
				return nil, err
			}
			p.outRows++
			out.Add(v)
		}
	}
}

// Measure returns the work profile accumulated by the last Run, in the
// same units as the row engine's (*Plan).Measure — Evals + Rows +
// OutRows is directly comparable across the two engines and is what the
// E18 execution gates record.
func (p *StreamPlan) Measure() Measure {
	var m Measure
	for _, op := range p.ops {
		m.add(op.Counters())
	}
	m.Evals += p.constEvals
	m.OutRows = p.outRows
	return m
}

// Explain renders the streaming operator tree.
func (p *StreamPlan) Explain() string {
	return fmt.Sprintf("Project %s\n%s", p.out, p.root.Describe("  "))
}

// StreamExecute compiles and runs a streaming plan in one call.
func StreamExecute(ctx context.Context, q *core.Query, in *instance.Instance, opts StreamOptions) (*instance.Set, error) {
	p, err := CompileStream(q, in, opts)
	if err != nil {
		return nil, err
	}
	return p.Run(ctx)
}
