package engine

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"sync"

	"cnb/internal/core"
	"cnb/internal/instance"
)

// StreamOperator is a pull-based batch iterator. The protocol is
// Open(ctx) → Next()* → Close():
//
//   - Open prepares the operator (and its inputs) and resets counters.
//     The context governs the whole run; operators observe its
//     cancellation between and within batches and abort with ctx.Err().
//   - Next returns the next non-empty batch, or (nil, nil) at end of
//     stream. The returned batch is owned by the caller until its next
//     call to Next on the same operator.
//   - Close releases resources. It must be safe to call after an error
//     and must stop any background producer goroutines (buffered
//     operators block until theirs have exited, so a Close that returns
//     leaves no goroutine behind).
//
// A StreamOperator is single-consumer: Open/Next/Close must not be
// called concurrently. Distinct plans compiled from the same query are
// independent and may run concurrently against the same instance.
type StreamOperator interface {
	// Open prepares the operator for a run under ctx and resets counters.
	Open(ctx context.Context) error
	// Next returns the next batch, or nil at end of stream.
	Next() (*Batch, error)
	// Close releases resources, including any producer goroutines.
	Close() error
	// Describe renders the operator subtree, for EXPLAIN-style output.
	Describe(indent string) string
	// Counters returns the work counters accumulated since the last Open.
	Counters() Counters
	// schema is the batch schema this operator emits.
	schema() *batchSchema
}

// appendKey renders a value's canonical key into a composite hash key.
// Keys are length-prefixed before concatenation so composite keys cannot
// collide across field boundaries.
func appendKey(sb *strings.Builder, v instance.Value) {
	k := v.Key()
	sb.WriteString(strconv.Itoa(len(k)))
	sb.WriteByte(':')
	sb.WriteString(k)
}

// --- batch scan over a binding range ------------------------------------

// batchScan is the streaming counterpart of bindScan with predicate
// pushdown: for every input row it evaluates the range term (relation
// scan, dom scan, entry scan, or dictionary lookup), and filters each
// candidate element against the pushed-down predicates before the row is
// ever materialized into the output batch. Counter semantics match the
// row engine's scan+filter pair — one Eval per range evaluation, one Eval
// per candidate row checked against predicates — except that rows
// rejected by a pushed predicate are never counted as moved (Rows counts
// only survivors), which is exactly the work pushdown saves.
type batchScan struct {
	in    *instance.Instance
	child StreamOperator
	v     string
	rng   *core.Term
	preds []core.Cond

	sch   *batchSchema
	ctx   context.Context
	batch int

	cur   *Batch // input batch being expanded
	row   int    // next input row to expand
	elems []instance.Value
	pos   int
	done  bool
	ctrs  Counters
}

func (b *batchScan) schema() *batchSchema { return b.sch }

func (b *batchScan) Open(ctx context.Context) error {
	b.ctx = ctx
	b.cur = nil
	b.row = 0
	b.elems = nil
	b.pos = 0
	b.done = false
	b.ctrs = Counters{}
	if b.child != nil {
		return b.child.Open(ctx)
	}
	return nil
}

func (b *batchScan) Close() error {
	if b.child != nil {
		return b.child.Close()
	}
	return nil
}

func (b *batchScan) Counters() Counters { return b.ctrs }

// passes evaluates the pushed-down predicates against the candidate
// output row (out's last appended row).
func (b *batchScan) passes(out *Batch, i int) (bool, error) {
	for _, c := range b.preds {
		l, err := batchEval(c.L, out, i, b.in)
		if err != nil {
			return false, err
		}
		r, err := batchEval(c.R, out, i, b.in)
		if err != nil {
			return false, err
		}
		if l.Key() != r.Key() {
			return false, nil
		}
	}
	return true, nil
}

func (b *batchScan) Next() (*Batch, error) {
	out := newBatch(b.sch, b.batch)
	for {
		if err := b.ctx.Err(); err != nil {
			return nil, err
		}
		// Refill the element list from the next input row.
		if b.pos >= len(b.elems) {
			if b.cur == nil || b.row >= b.cur.Len() {
				if b.child == nil {
					if b.done {
						break
					}
					// The leaf scan has one virtual, empty input row.
					b.done = true
					b.cur = newBatch(newBatchSchema(nil), 0)
					b.row = 0
				} else {
					nb, err := b.child.Next()
					if err != nil {
						return nil, err
					}
					if nb == nil {
						break
					}
					b.cur = nb
					b.row = 0
					continue
				}
			}
			b.ctrs.Evals++
			val, err := batchEval(b.rng, b.cur, b.row, b.in)
			if err != nil {
				return nil, err
			}
			set, ok := val.(*instance.Set)
			if !ok {
				return nil, fmt.Errorf("engine: range %s is not a set", b.rng)
			}
			b.elems = set.Elems()
			b.pos = 0
			b.row++
			continue
		}
		elem := b.elems[b.pos]
		b.pos++
		// Materialize the candidate row, then test pushed predicates;
		// reject by truncating the appended row.
		out.appendRow(b.cur, b.row-1, elem)
		if len(b.preds) > 0 {
			b.ctrs.Evals++
			ok, err := b.passes(out, out.Len()-1)
			if err != nil {
				return nil, err
			}
			if !ok {
				for j := range out.cols {
					out.cols[j] = out.cols[j][:len(out.cols[j])-1]
				}
				continue
			}
		}
		b.ctrs.Rows++
		if out.Len() >= b.batch {
			return out, nil
		}
	}
	if out.Len() == 0 {
		return nil, nil
	}
	return out, nil
}

func (b *batchScan) Describe(indent string) string {
	kind := "BatchScan"
	switch b.rng.Kind {
	case core.KDom:
		kind = "BatchDomScan"
	case core.KLookup:
		if b.rng.NonFailing {
			kind = "BatchLookupScan(non-failing)"
		} else {
			kind = "BatchLookupScan"
		}
	case core.KProj:
		kind = "BatchPathScan"
	}
	s := fmt.Sprintf("%s%s %s as %s", indent, kind, b.rng, b.v)
	if len(b.preds) > 0 {
		s += fmt.Sprintf(" pushdown=%v", b.preds)
	}
	s += "\n"
	if b.child != nil {
		s += b.child.Describe(indent + "  ")
	}
	return s
}

// --- residual filter ----------------------------------------------------

// batchFilter applies conditions that could not be pushed into a scan or
// turned into a hash-join key (for example an equality whose single term
// mixes the new variable with earlier ones). Counter semantics match the
// row engine's filter: one Eval per input row, one Row per survivor.
type batchFilter struct {
	in    *instance.Instance
	child StreamOperator
	conds []core.Cond
	ctrs  Counters
}

func (f *batchFilter) schema() *batchSchema { return f.child.schema() }

func (f *batchFilter) Open(ctx context.Context) error {
	f.ctrs = Counters{}
	return f.child.Open(ctx)
}

func (f *batchFilter) Close() error       { return f.child.Close() }
func (f *batchFilter) Counters() Counters { return f.ctrs }

func (f *batchFilter) Next() (*Batch, error) {
	for {
		in, err := f.child.Next()
		if err != nil || in == nil {
			return nil, err
		}
		out := newBatch(in.schema, in.Len())
		for i := 0; i < in.Len(); i++ {
			f.ctrs.Evals++
			ok := true
			for _, c := range f.conds {
				l, err := batchEval(c.L, in, i, f.in)
				if err != nil {
					return nil, err
				}
				r, err := batchEval(c.R, in, i, f.in)
				if err != nil {
					return nil, err
				}
				if l.Key() != r.Key() {
					ok = false
					break
				}
			}
			if ok {
				f.ctrs.Rows++
				out.copyRow(in, i)
			}
		}
		if out.Len() > 0 {
			return out, nil
		}
	}
}

func (f *batchFilter) Describe(indent string) string {
	return fmt.Sprintf("%sBatchFilter %v\n", indent, f.conds) + f.child.Describe(indent+"  ")
}

// --- hash join ----------------------------------------------------------

// hashJoin binds a variable ranging over an input-independent collection
// (a base relation or a dictionary domain) by hashing instead of
// rescanning: at Open it evaluates the range once, filters build rows
// against build-side pushed predicates, and indexes them by the
// composite key of the build-side join terms — pre-sizing the table from
// cost.Stats cardinalities when available. Each probe row then extends
// by exactly its matching build rows.
//
// Counter semantics: the build pass costs one Eval for the range
// evaluation plus one Eval per build row keyed (hash insert work, the
// analogue of scanning the collection once); probing costs one Eval per
// probe row and one Row per emitted match. Compared to the nested
// batchScan it replaces, the per-probe rescan of the whole collection
// disappears — which is the measured speedup E18 gates.
type hashJoin struct {
	in    *instance.Instance
	child StreamOperator
	v     string
	rng   *core.Term
	// joinConds: build side (terms over only v) and probe side (terms
	// over only earlier variables), index-aligned.
	buildTerms []*core.Term
	probeTerms []*core.Term
	// buildPreds are single-variable predicates pushed into the build pass.
	buildPreds []core.Cond

	sch      *batchSchema
	ctx      context.Context
	batch    int
	presize  int // hint from cost.Stats; 0 = unknown
	table    map[string][]instance.Value
	built    bool
	cur      *Batch
	row      int
	matches  []instance.Value
	matchPos int
	ctrs     Counters
}

func (h *hashJoin) schema() *batchSchema { return h.sch }

func (h *hashJoin) Open(ctx context.Context) error {
	h.ctx = ctx
	h.table = nil
	h.built = false
	h.cur = nil
	h.row = 0
	h.matches = nil
	h.matchPos = 0
	h.ctrs = Counters{}
	return h.child.Open(ctx)
}

func (h *hashJoin) Close() error       { return h.child.Close() }
func (h *hashJoin) Counters() Counters { return h.ctrs }

// build evaluates the range once and indexes it by the build-key terms.
func (h *hashJoin) build() error {
	empty := &Batch{schema: newBatchSchema(nil)}
	h.ctrs.Evals++
	val, err := batchEval(h.rng, empty, 0, h.in)
	if err != nil {
		return err
	}
	set, ok := val.(*instance.Set)
	if !ok {
		return fmt.Errorf("engine: range %s is not a set", h.rng)
	}
	elems := set.Elems()
	size := len(elems)
	if h.presize > 0 && h.presize < size {
		size = h.presize
	}
	h.table = make(map[string][]instance.Value, size)
	one := newBatch(newBatchSchema([]string{h.v}), 1)
	var sb strings.Builder
	for _, elem := range elems {
		if err := h.ctx.Err(); err != nil {
			return err
		}
		one.cols[0] = one.cols[0][:0]
		one.cols[0] = append(one.cols[0], elem)
		h.ctrs.Evals++
		keep := true
		for _, c := range h.buildPreds {
			l, err := batchEval(c.L, one, 0, h.in)
			if err != nil {
				return err
			}
			r, err := batchEval(c.R, one, 0, h.in)
			if err != nil {
				return err
			}
			if l.Key() != r.Key() {
				keep = false
				break
			}
		}
		if !keep {
			continue
		}
		sb.Reset()
		for _, bt := range h.buildTerms {
			v, err := batchEval(bt, one, 0, h.in)
			if err != nil {
				return err
			}
			appendKey(&sb, v)
		}
		k := sb.String()
		h.table[k] = append(h.table[k], elem)
	}
	h.built = true
	return nil
}

func (h *hashJoin) Next() (*Batch, error) {
	if !h.built {
		if err := h.build(); err != nil {
			return nil, err
		}
	}
	out := newBatch(h.sch, h.batch)
	var sb strings.Builder
	for {
		if err := h.ctx.Err(); err != nil {
			return nil, err
		}
		if h.matchPos >= len(h.matches) {
			if h.cur == nil || h.row >= h.cur.Len() {
				nb, err := h.child.Next()
				if err != nil {
					return nil, err
				}
				if nb == nil {
					break
				}
				h.cur = nb
				h.row = 0
				continue
			}
			h.ctrs.Evals++
			sb.Reset()
			for _, pt := range h.probeTerms {
				v, err := batchEval(pt, h.cur, h.row, h.in)
				if err != nil {
					return nil, err
				}
				appendKey(&sb, v)
			}
			h.matches = h.table[sb.String()]
			h.matchPos = 0
			h.row++
			continue
		}
		out.appendRow(h.cur, h.row-1, h.matches[h.matchPos])
		h.matchPos++
		h.ctrs.Rows++
		if out.Len() >= h.batch {
			return out, nil
		}
	}
	if out.Len() == 0 {
		return nil, nil
	}
	return out, nil
}

func (h *hashJoin) Describe(indent string) string {
	s := fmt.Sprintf("%sHashJoin %s as %s build=%v probe=%v", indent, h.rng, h.v, h.buildTerms, h.probeTerms)
	if len(h.buildPreds) > 0 {
		s += fmt.Sprintf(" pushdown=%v", h.buildPreds)
	}
	if h.presize > 0 {
		s += fmt.Sprintf(" presize=%d", h.presize)
	}
	s += "\n"
	return s + h.child.Describe(indent+"  ")
}

// --- buffered pipelining ------------------------------------------------

// buffered decouples its child behind a bounded channel: a producer
// goroutine pulls batches ahead of the consumer, so an expensive child
// (a scan evaluating lookups) overlaps with downstream work. Cancelling
// the run's context, exhausting the stream, or calling Close all
// terminate the producer; Close blocks until it has exited, so a closed
// plan never leaks a goroutine.
type buffered struct {
	child StreamOperator
	depth int

	ctx    context.Context
	cancel context.CancelFunc
	ch     chan *Batch
	errCh  chan error
	wg     sync.WaitGroup
	err    error
}

func (o *buffered) schema() *batchSchema { return o.child.schema() }

func (o *buffered) Open(ctx context.Context) error {
	if err := o.child.Open(ctx); err != nil {
		return err
	}
	o.ctx, o.cancel = context.WithCancel(ctx)
	o.ch = make(chan *Batch, o.depth)
	o.errCh = make(chan error, 1)
	o.err = nil
	o.wg.Add(1)
	go func() {
		defer o.wg.Done()
		defer close(o.ch)
		for {
			b, err := o.child.Next()
			if err != nil {
				o.errCh <- err
				return
			}
			if b == nil {
				return
			}
			select {
			case o.ch <- b:
			case <-o.ctx.Done():
				return
			}
		}
	}()
	return nil
}

func (o *buffered) Next() (*Batch, error) {
	if o.err != nil {
		return nil, o.err
	}
	select {
	case b, ok := <-o.ch:
		if !ok {
			// Producer finished: surface its error, if any.
			select {
			case err := <-o.errCh:
				o.err = err
				return nil, err
			default:
				return nil, nil
			}
		}
		return b, nil
	case err := <-o.errCh:
		o.err = err
		return nil, err
	case <-o.ctx.Done():
		return nil, o.ctx.Err()
	}
}

func (o *buffered) Close() error {
	if o.cancel != nil {
		o.cancel()
		// Drain so a producer blocked on send observes cancellation.
		for range o.ch {
		}
		o.wg.Wait()
		o.cancel = nil
	}
	return o.child.Close()
}

func (o *buffered) Counters() Counters { return o.child.Counters() }

func (o *buffered) Describe(indent string) string {
	return fmt.Sprintf("%sBuffer depth=%d\n", indent, o.depth) + o.child.Describe(indent+"  ")
}
