package engine

import (
	"fmt"

	"cnb/internal/core"
	"cnb/internal/eval"
	"cnb/internal/instance"
)

// DefaultBatchSize is the row capacity of the batches the streaming
// operators exchange when StreamOptions.BatchSize is zero. 1024 rows keeps
// a batch of interface values within a few cache-friendly kilobytes per
// column while amortizing the per-batch bookkeeping over enough rows that
// the iterator protocol vanishes from profiles.
const DefaultBatchSize = 1024

// Batch is a columnar slice of intermediate rows flowing between
// streaming operators: one column per bound query variable, all columns
// the same length. Operators append whole columns instead of cloning
// per-row environment maps, which is what makes the streaming engine
// cheaper than the row-at-a-time reference operators on large inputs.
//
// A Batch is owned by the operator that produced it: consumers must not
// retain it (or any column slice) across calls to Next, because producers
// recycle batch storage. Copy values out before the next pull.
type Batch struct {
	schema *batchSchema
	cols   [][]instance.Value
}

// batchSchema maps variable names to column positions. One schema is
// shared by every batch an operator emits, so per-batch allocation is
// two slices, not a map.
type batchSchema struct {
	vars []string
	idx  map[string]int
}

func newBatchSchema(vars []string) *batchSchema {
	idx := make(map[string]int, len(vars))
	for i, v := range vars {
		idx[v] = i
	}
	return &batchSchema{vars: vars, idx: idx}
}

// extend returns a schema with one more trailing variable.
func (s *batchSchema) extend(v string) *batchSchema {
	vars := make([]string, 0, len(s.vars)+1)
	vars = append(vars, s.vars...)
	return newBatchSchema(append(vars, v))
}

// newBatch allocates an empty batch with capacity rows per column.
func newBatch(schema *batchSchema, capacity int) *Batch {
	cols := make([][]instance.Value, len(schema.vars))
	for i := range cols {
		cols[i] = make([]instance.Value, 0, capacity)
	}
	return &Batch{schema: schema, cols: cols}
}

// Len returns the number of rows in the batch.
func (b *Batch) Len() int {
	if len(b.cols) == 0 {
		return 0
	}
	return len(b.cols[0])
}

// Vars returns the variable names bound by the batch, in binding order.
// The slice is shared; callers must not mutate it.
func (b *Batch) Vars() []string { return b.schema.vars }

// Col returns the column of the named variable, or nil when the variable
// is not part of the batch schema.
func (b *Batch) Col(v string) []instance.Value {
	i, ok := b.schema.idx[v]
	if !ok {
		return nil
	}
	return b.cols[i]
}

// reset truncates every column to zero rows, keeping capacity.
func (b *Batch) reset() {
	for i := range b.cols {
		b.cols[i] = b.cols[i][:0]
	}
}

// appendRow copies row i of src (which must have a schema prefix of b's)
// and appends val as the trailing column.
func (b *Batch) appendRow(src *Batch, i int, val instance.Value) {
	for j := range src.cols {
		b.cols[j] = append(b.cols[j], src.cols[j][i])
	}
	b.cols[len(b.cols)-1] = append(b.cols[len(b.cols)-1], val)
}

// copyRow copies row i of src, whose schema must equal b's.
func (b *Batch) copyRow(src *Batch, i int) {
	for j := range src.cols {
		b.cols[j] = append(b.cols[j], src.cols[j][i])
	}
}

// env materializes row i as an evaluation environment — only needed on
// the row-at-a-time interop paths (error messages, debugging); the hot
// paths evaluate terms directly against the columns via batchEval.
func (b *Batch) env(i int) eval.Env {
	env := make(eval.Env, len(b.schema.vars))
	for j, v := range b.schema.vars {
		env[v] = b.cols[j][i]
	}
	return env
}

// batchEval evaluates a path term against row i of the batch without
// materializing an environment map: variables resolve to column entries,
// everything else mirrors eval.Term exactly — including returning
// *eval.ErrLookupFailed for a failing lookup on an absent key, so callers
// (and the calibration harness) can classify execution errors the same
// way for both engines.
func batchEval(t *core.Term, b *Batch, i int, in *instance.Instance) (instance.Value, error) {
	switch t.Kind {
	case core.KVar:
		j, ok := b.schema.idx[t.Name]
		if !ok {
			return nil, fmt.Errorf("engine: unbound variable %q", t.Name)
		}
		return b.cols[j][i], nil
	case core.KConst:
		switch c := t.Val.(type) {
		case int64:
			return instance.Int(c), nil
		case float64:
			return instance.Float(c), nil
		case string:
			return instance.Str(c), nil
		case bool:
			return instance.Bool(c), nil
		}
		return nil, fmt.Errorf("engine: bad constant %v", t.Val)
	case core.KName:
		v, ok := in.Lookup(t.Name)
		if !ok {
			return nil, fmt.Errorf("engine: schema name %q unbound in instance", t.Name)
		}
		return v, nil
	case core.KProj:
		base, err := batchEval(t.Base, b, i, in)
		if err != nil {
			return nil, err
		}
		st, ok := base.(*instance.Struct)
		if !ok {
			return nil, fmt.Errorf("engine: projection %s on non-record %s", t, base)
		}
		f, ok := st.Field(t.Name)
		if !ok {
			return nil, fmt.Errorf("engine: record %s has no field %q", st, t.Name)
		}
		return f, nil
	case core.KDom:
		base, err := batchEval(t.Base, b, i, in)
		if err != nil {
			return nil, err
		}
		d, ok := base.(*instance.Dict)
		if !ok {
			return nil, fmt.Errorf("engine: dom of non-dictionary %s", base)
		}
		return d.Domain(), nil
	case core.KLookup:
		base, err := batchEval(t.Base, b, i, in)
		if err != nil {
			return nil, err
		}
		d, ok := base.(*instance.Dict)
		if !ok {
			return nil, fmt.Errorf("engine: lookup into non-dictionary %s", base)
		}
		key, err := batchEval(t.Key, b, i, in)
		if err != nil {
			return nil, err
		}
		v, ok := d.Get(key)
		if !ok {
			if t.NonFailing {
				return instance.NewSet(), nil
			}
			return nil, &eval.ErrLookupFailed{Term: t, Key: key}
		}
		return v, nil
	case core.KStruct:
		names := make([]string, len(t.Fields))
		vals := make([]instance.Value, len(t.Fields))
		for fi, f := range t.Fields {
			v, err := batchEval(f.Term, b, i, in)
			if err != nil {
				return nil, err
			}
			names[fi] = f.Name
			vals[fi] = v
		}
		return instance.NewStruct(names, vals), nil
	}
	return nil, fmt.Errorf("engine: cannot evaluate term %s", t)
}
