package engine

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"strings"
	"testing"
	"time"

	"cnb/internal/core"
	"cnb/internal/eval"
	"cnb/internal/instance"
	"cnb/internal/workload"
)

// streamVariants is the option matrix the semantic tests sweep: hash and
// nested strategies, degenerate and straddling batch sizes, with and
// without a prefetch buffer.
func streamVariants() []StreamOptions {
	return []StreamOptions{
		{},
		{BatchSize: 1},
		{BatchSize: 2, Buffer: 2},
		{BatchSize: 3},
		{NoHashJoin: true},
		{NoHashJoin: true, BatchSize: 1},
		{Buffer: 1, BatchSize: 7},
	}
}

func TestStreamMatchesRowEngineOnChain(t *testing.T) {
	in := chainInstance()
	queries := []*core.Query{
		{ // non-failing lookup chain with holes
			Out: core.Prj(core.V("h"), "B"),
			Bindings: []core.Binding{
				{Var: "r", Range: core.LkNF(core.Name("IDX"), core.C("hit"))},
				{Var: "h", Range: core.LkNF(core.Name("HOP"), core.Prj(core.V("r"), "K"))},
			},
		},
		{ // pushdown predicate on the scanned variable
			Out: core.Prj(core.V("r"), "K"),
			Bindings: []core.Binding{
				{Var: "r", Range: core.LkNF(core.Name("IDX"), core.C("hit"))},
			},
			Conds: []core.Cond{{L: core.Prj(core.V("r"), "A"), R: core.C(int64(20))}},
		},
		{ // constant condition deciding the whole run
			Out: core.Prj(core.V("r"), "K"),
			Bindings: []core.Binding{
				{Var: "r", Range: core.LkNF(core.Name("IDX"), core.C("hit"))},
			},
			Conds: []core.Cond{{L: core.C(int64(1)), R: core.C(int64(2))}},
		},
	}
	for qi, q := range queries {
		want, err := Execute(q, in)
		if err != nil {
			t.Fatalf("q%d row engine: %v", qi, err)
		}
		for vi, opts := range streamVariants() {
			got, err := StreamExecute(context.Background(), q, in, opts)
			if err != nil {
				t.Fatalf("q%d variant %d: %v", qi, vi, err)
			}
			if !got.Equal(want) {
				t.Fatalf("q%d variant %d: stream %s != row %s", qi, vi, got, want)
			}
		}
	}
}

// TestStreamScanPushdownCounters pins the exact counter semantics of a
// leaf scan with a pushed-down predicate: one Eval for the range
// evaluation, one Eval per candidate row checked, and Rows counting only
// survivors. These numbers are what the E18 gates record, so they must
// be stable across runs and batch sizes.
func TestStreamScanPushdownCounters(t *testing.T) {
	in := chainInstance()
	q := &core.Query{
		Out: core.Prj(core.V("r"), "K"),
		Bindings: []core.Binding{
			{Var: "r", Range: core.LkNF(core.Name("IDX"), core.C("hit"))},
		},
		Conds: []core.Cond{{L: core.Prj(core.V("r"), "A"), R: core.C(int64(20))}},
	}
	for _, bs := range []int{0, 1, 2} {
		p, err := CompileStream(q, in, StreamOptions{BatchSize: bs})
		if err != nil {
			t.Fatal(err)
		}
		for run := 0; run < 2; run++ {
			out, err := p.Run(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if out.Len() != 1 {
				t.Fatalf("batch=%d: got %d rows, want 1", bs, out.Len())
			}
			m := p.Measure()
			// 1 range eval + 3 candidate checks; 1 surviving row; 1 projected.
			if m.Evals != 4 || m.Rows != 1 || m.OutRows != 1 {
				t.Fatalf("batch=%d run=%d: Measure = %+v, want Evals=4 Rows=1 OutRows=1", bs, run, m)
			}
		}
	}
}

// TestHashJoinStraddle drives a hash join whose probe matches straddle
// batch boundaries: with BatchSize=2 and fanout-2 build buckets, output
// batches fill mid-probe-row and the operator must resume from a
// partially consumed match list.
func TestHashJoinStraddle(t *testing.T) {
	in := instance.NewInstance()
	in.Bind("R", instance.NewSet(
		instance.StructOf("K", instance.Int(1)),
		instance.StructOf("K", instance.Int(2)),
		instance.StructOf("K", instance.Int(3)),
	))
	in.Bind("S", instance.NewSet(
		instance.StructOf("K", instance.Int(1), "B", instance.Int(10)),
		instance.StructOf("K", instance.Int(1), "B", instance.Int(11)),
		instance.StructOf("K", instance.Int(2), "B", instance.Int(20)),
		instance.StructOf("K", instance.Int(2), "B", instance.Int(21)),
	))
	q := &core.Query{
		Out: core.Struct(
			core.SF("K", core.Prj(core.V("f"), "K")),
			core.SF("B", core.Prj(core.V("s"), "B")),
		),
		Bindings: []core.Binding{
			{Var: "f", Range: core.Name("R")},
			{Var: "s", Range: core.Name("S")},
		},
		Conds: []core.Cond{{L: core.Prj(core.V("s"), "K"), R: core.Prj(core.V("f"), "K")}},
	}
	want, err := Execute(q, in)
	if err != nil {
		t.Fatal(err)
	}
	hash, err := CompileStream(q, in, StreamOptions{BatchSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(hash.Explain(), "HashJoin") {
		t.Fatalf("expected a hash join:\n%s", hash.Explain())
	}
	got, err := hash.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatalf("hash join: %s != %s", got, want)
	}
	// The hash strategy must do measurably less work than rescanning S
	// per probe row.
	nested, err := CompileStream(q, in, StreamOptions{BatchSize: 2, NoHashJoin: true})
	if err != nil {
		t.Fatal(err)
	}
	ngot, err := nested.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !ngot.Equal(want) {
		t.Fatalf("nested: %s != %s", ngot, want)
	}
	if hc, nc := hash.Measure().Cost(), nested.Measure().Cost(); hc >= nc {
		t.Fatalf("hash join cost %v not below nested scan cost %v", hc, nc)
	}
}

// TestStreamEmptyInputs exercises the degenerate shapes: empty base
// collections (operators must emit no batches, not empty batches) and a
// predicate rejecting every row.
func TestStreamEmptyInputs(t *testing.T) {
	in := instance.NewInstance()
	in.Bind("R", instance.NewSet())
	in.Bind("S", instance.NewSet(instance.StructOf("K", instance.Int(1))))
	queries := []*core.Query{
		{
			Out:      core.Prj(core.V("r"), "K"),
			Bindings: []core.Binding{{Var: "r", Range: core.Name("R")}},
		},
		{
			Out: core.Prj(core.V("s"), "K"),
			Bindings: []core.Binding{
				{Var: "r", Range: core.Name("R")},
				{Var: "s", Range: core.Name("S")},
			},
			Conds: []core.Cond{{L: core.Prj(core.V("s"), "K"), R: core.Prj(core.V("r"), "K")}},
		},
		{
			Out:      core.Prj(core.V("s"), "K"),
			Bindings: []core.Binding{{Var: "s", Range: core.Name("S")}},
			Conds:    []core.Cond{{L: core.Prj(core.V("s"), "K"), R: core.C(int64(99))}},
		},
	}
	for qi, q := range queries {
		for vi, opts := range streamVariants() {
			got, err := StreamExecute(context.Background(), q, in, opts)
			if err != nil {
				t.Fatalf("q%d variant %d: %v", qi, vi, err)
			}
			if got.Len() != 0 {
				t.Fatalf("q%d variant %d: want empty result, got %s", qi, vi, got)
			}
		}
	}
}

// TestStreamFailingLookup: a failing lookup on an absent key must surface
// *eval.ErrLookupFailed exactly like the row engine, so calibration's
// skip classification works unchanged on the streaming path.
func TestStreamFailingLookup(t *testing.T) {
	in := chainInstance()
	q := &core.Query{
		Out: core.Prj(core.V("h"), "B"),
		Bindings: []core.Binding{
			{Var: "r", Range: core.LkNF(core.Name("IDX"), core.C("hit"))},
			{Var: "h", Range: core.Lk(core.Name("HOP"), core.Prj(core.V("r"), "K"))},
		},
	}
	if _, err := Execute(q, in); err == nil {
		t.Fatal("row engine should fail on missing HOP key")
	}
	for vi, opts := range streamVariants() {
		_, err := StreamExecute(context.Background(), q, in, opts)
		var lf *eval.ErrLookupFailed
		if !errors.As(err, &lf) {
			t.Fatalf("variant %d: want ErrLookupFailed, got %v", vi, err)
		}
	}
}

// TestStreamEarlyTermination cancels a buffered run mid-stream and
// verifies (a) the pending Next observes the cancellation, (b) Close
// reaps the prefetch goroutine — the goroutine count returns to its
// pre-run baseline.
func TestStreamEarlyTermination(t *testing.T) {
	st, err := workload.NewStar(workload.StarConfig{Dims: 2, FactIndexes: 1, DimIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	in := st.Generate(workload.StarGenOptions{NumFact: 2000, NumDim: 50, DomA: 10, Seed: 5})

	before := runtime.NumGoroutine()
	p, err := CompileStream(st.Q, in, StreamOptions{BatchSize: 8, Buffer: 2})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	if err := p.root.Open(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := p.root.Next(); err != nil {
		t.Fatal(err)
	}
	cancel()
	// The producer may deliver batches it had already buffered, but must
	// quickly surface the cancellation.
	deadline := time.Now().Add(5 * time.Second)
	for {
		b, err := p.root.Next()
		if err != nil {
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("want context.Canceled, got %v", err)
			}
			break
		}
		if b == nil || time.Now().After(deadline) {
			t.Fatal("cancelled run drained to completion without surfacing ctx.Err")
		}
	}
	if err := p.root.Close(); err != nil {
		t.Fatal(err)
	}
	for i := 0; ; i++ {
		if runtime.NumGoroutine() <= before {
			break
		}
		if i > 100 {
			t.Fatalf("goroutine leak: %d before run, %d after Close", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Run itself must also propagate pre-cancelled contexts.
	done, cancelled := context.WithCancel(context.Background())
	cancelled()
	if _, err := p.Run(done); !errors.Is(err, context.Canceled) {
		t.Fatalf("Run on cancelled ctx: want context.Canceled, got %v", err)
	}
}

// TestStreamDifferentialRandom is the randomized semantic gate: on 100
// random star/snowflake instances the streaming engine (both physical
// strategies, varying batch sizes and buffering) must produce exactly
// the row engine's result set.
func TestStreamDifferentialRandom(t *testing.T) {
	r := rand.New(rand.NewSource(18))
	batches := []int{1, 2, 7, 64, 0}
	for i := 0; i < 100; i++ {
		cfg, gen := workload.RandomStar(r)
		st, err := workload.NewStar(cfg)
		if err != nil {
			t.Fatal(err)
		}
		in := st.Generate(gen)
		want, err := Execute(st.Q, in)
		if err != nil {
			t.Fatalf("case %d: row engine: %v", i, err)
		}
		for _, noHash := range []bool{false, true} {
			opts := StreamOptions{
				BatchSize:  batches[i%len(batches)],
				Buffer:     i % 3,
				NoHashJoin: noHash,
			}
			got, err := StreamExecute(context.Background(), st.Q, in, opts)
			if err != nil {
				t.Fatalf("case %d (noHash=%v): %v", i, noHash, err)
			}
			if !got.Equal(want) {
				t.Fatalf("case %d (noHash=%v, cfg=%+v): stream %s != row %s", i, noHash, cfg, got, want)
			}
		}
	}
}

// TestStreamMeasureDeterministic: identical runs must produce identical
// counters — the E18 gates compare them exactly across machines.
func TestStreamMeasureDeterministic(t *testing.T) {
	st, err := workload.NewStar(workload.StarConfig{Dims: 2, FactIndexes: 1, DimIndex: true, Select: true, SelectA: 2})
	if err != nil {
		t.Fatal(err)
	}
	in := st.Generate(workload.StarGenOptions{NumFact: 500, NumDim: 40, DomA: 8, Seed: 11})
	var first Measure
	for run := 0; run < 3; run++ {
		p, err := CompileStream(st.Q, in, StreamOptions{BatchSize: 32, Buffer: 2})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		m := p.Measure()
		if run == 0 {
			first = m
			if m.Cost() <= 0 {
				t.Fatal("zero-cost run")
			}
			continue
		}
		if m != first {
			t.Fatalf("run %d: Measure %+v != first %+v", run, m, first)
		}
	}
}
