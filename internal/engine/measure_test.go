package engine

import (
	"testing"

	"cnb/internal/core"
	"cnb/internal/instance"
)

// chainInstance builds a two-level dictionary chain: IDX maps a constant
// to a set of rows, HOP maps row keys onward — with deliberate holes so a
// non-failing lookup mid-chain can come up empty.
func chainInstance() *instance.Instance {
	in := instance.NewInstance()
	rows := instance.NewSet(
		instance.StructOf("K", instance.Int(1), "A", instance.Int(10)),
		instance.StructOf("K", instance.Int(2), "A", instance.Int(20)),
		instance.StructOf("K", instance.Int(3), "A", instance.Int(30)),
	)
	idx := instance.NewDict()
	idx.Put(instance.Str("hit"), rows)
	idx.Put(instance.Str("empty"), instance.NewSet())
	in.Bind("IDX", idx)

	hop := instance.NewDict()
	// Key 2 is missing, key 3 maps to an empty bucket.
	hop.Put(instance.Int(1), instance.NewSet(
		instance.StructOf("B", instance.Int(100)),
		instance.StructOf("B", instance.Int(101)),
	))
	hop.Put(instance.Int(3), instance.NewSet())
	in.Bind("HOP", hop)
	return in
}

// TestEmptyLookupMidChain: a non-failing lookup in the middle of a chain
// that returns no rows (missing key or empty bucket) must simply produce
// nothing for that outer row and let the scan continue with the next one.
func TestEmptyLookupMidChain(t *testing.T) {
	in := chainInstance()
	q := &core.Query{
		Out: core.Prj(core.V("h"), "B"),
		Bindings: []core.Binding{
			{Var: "r", Range: core.LkNF(core.Name("IDX"), core.C("hit"))},
			{Var: "h", Range: core.LkNF(core.Name("HOP"), core.Prj(core.V("r"), "K"))},
		},
	}
	got, err := Execute(q, in)
	if err != nil {
		t.Fatal(err)
	}
	// Only r.K=1 reaches a non-empty HOP bucket: rows 100 and 101.
	if got.Len() != 2 {
		t.Fatalf("got %d rows, want 2: %s", got.Len(), got)
	}
	for _, want := range []int64{100, 101} {
		if !got.Contains(instance.Int(want)) {
			t.Errorf("missing output %d in %s", want, got)
		}
	}
}

// TestEmptyLookupAtChainHead: a non-failing lookup over an empty bucket
// as the outermost binding terminates immediately with an empty result.
func TestEmptyLookupAtChainHead(t *testing.T) {
	in := chainInstance()
	for _, key := range []string{"empty", "absent"} {
		q := &core.Query{
			Out: core.Prj(core.V("r"), "A"),
			Bindings: []core.Binding{
				{Var: "r", Range: core.LkNF(core.Name("IDX"), core.C(key))},
			},
		}
		got, err := Execute(q, in)
		if err != nil {
			t.Fatalf("key %q: %v", key, err)
		}
		if got.Len() != 0 {
			t.Errorf("key %q: got %d rows, want 0", key, got.Len())
		}
	}
}

// TestFailingLookupMidChainErrors: the failing form M[k] must surface
// ErrLookupFailed when an outer row's key is absent, rather than skipping
// the row (the guarded dom-loop is the only sound way to iterate it).
func TestFailingLookupMidChainErrors(t *testing.T) {
	in := chainInstance()
	q := &core.Query{
		Out: core.Prj(core.V("h"), "B"),
		Bindings: []core.Binding{
			{Var: "r", Range: core.LkNF(core.Name("IDX"), core.C("hit"))},
			{Var: "h", Range: core.Lk(core.Name("HOP"), core.Prj(core.V("r"), "K"))},
		},
	}
	if _, err := Execute(q, in); err == nil {
		t.Fatal("failing lookup over a missing key must error")
	}
}

// TestRunRepeatsAfterReOpen: Run re-Opens the operator tree, so a second
// Run of the same Plan yields an equal (deduplicated) result and a fresh
// Measure — no state leaks across executions.
func TestRunRepeatsAfterReOpen(t *testing.T) {
	in := chainInstance()
	// The projection collapses rows 100 and 101 onto their duplicate
	// bucket membership — plus a self-join that produces duplicate output
	// rows to exercise set deduplication.
	q := &core.Query{
		Out: core.Prj(core.V("a"), "A"),
		Bindings: []core.Binding{
			{Var: "a", Range: core.LkNF(core.Name("IDX"), core.C("hit"))},
			{Var: "b", Range: core.LkNF(core.Name("IDX"), core.C("hit"))},
		},
	}
	p, err := Compile(q, in)
	if err != nil {
		t.Fatal(err)
	}
	first, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	m1 := p.Measure()
	second, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	m2 := p.Measure()
	if !first.Equal(second) {
		t.Errorf("re-Open changed the result: %s vs %s", first, second)
	}
	// 3x3 join rows dedup to 3 distinct outputs.
	if first.Len() != 3 {
		t.Errorf("got %d distinct rows, want 3", first.Len())
	}
	if m1 != m2 {
		t.Errorf("re-Open did not reset counters: %+v vs %+v", m1, m2)
	}
	if m1.OutRows != 9 {
		t.Errorf("OutRows = %d, want 9 pre-dedup join rows", m1.OutRows)
	}
}

// TestMeasureCountsProbesAndRows pins the counter semantics the E14
// calibration relies on: one Eval per range evaluation (a probe for
// lookups), one Row per emitted binding row.
func TestMeasureCountsProbesAndRows(t *testing.T) {
	in := chainInstance()
	q := &core.Query{
		Out: core.Prj(core.V("h"), "B"),
		Bindings: []core.Binding{
			{Var: "r", Range: core.LkNF(core.Name("IDX"), core.C("hit"))},
			{Var: "h", Range: core.LkNF(core.Name("HOP"), core.Prj(core.V("r"), "K"))},
		},
	}
	p, err := Compile(q, in)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(); err != nil {
		t.Fatal(err)
	}
	m := p.Measure()
	// IDX probed once (3 rows emitted), HOP probed once per outer row
	// (3 probes, 2 rows emitted).
	if m.Evals != 4 {
		t.Errorf("Evals = %d, want 4 (1 IDX probe + 3 HOP probes)", m.Evals)
	}
	if m.Rows != 5 {
		t.Errorf("Rows = %d, want 5 (3 IDX rows + 2 HOP rows)", m.Rows)
	}
	if m.OutRows != 2 {
		t.Errorf("OutRows = %d, want 2", m.OutRows)
	}
	if m.Cost() != float64(4+5+2) {
		t.Errorf("Cost = %v, want 11", m.Cost())
	}
}

// TestDescribeGolden pins the exact EXPLAIN rendering of each operator
// kind: plans are first-class CI-tested artifacts, so their printed form
// must not drift silently.
func TestDescribeGolden(t *testing.T) {
	in := chainInstance()
	cases := []struct {
		name string
		q    *core.Query
		want string
	}{
		{
			name: "scan+filter",
			q: &core.Query{
				Out: core.Prj(core.V("r"), "A"),
				Bindings: []core.Binding{
					{Var: "r", Range: core.Name("R")},
				},
				Conds: []core.Cond{{L: core.Prj(core.V("r"), "A"), R: core.C(int64(10))}},
			},
			want: "Project r.A\n" +
				"  Filter [r.A = 10]\n" +
				"    Scan R as r\n",
		},
		{
			name: "lookup chain",
			q: &core.Query{
				Out: core.Prj(core.V("h"), "B"),
				Bindings: []core.Binding{
					{Var: "r", Range: core.LkNF(core.Name("IDX"), core.C("hit"))},
					{Var: "h", Range: core.Lk(core.Name("HOP"), core.Prj(core.V("r"), "K"))},
				},
			},
			want: "Project h.B\n" +
				"  LookupScan HOP[r.K] as h\n" +
				"    LookupScan(non-failing) IDX{\"hit\"} as r\n",
		},
		{
			name: "dom and path scans",
			q: &core.Query{
				Out: core.Prj(core.V("x"), "B"),
				Bindings: []core.Binding{
					{Var: "k", Range: core.Dom(core.Name("HOP"))},
					{Var: "x", Range: core.Lk(core.Name("HOP"), core.V("k"))},
					{Var: "p", Range: core.Prj(core.V("x"), "Subs")},
				},
			},
			want: "Project x.B\n" +
				"  PathScan x.Subs as p\n" +
				"    LookupScan HOP[k] as x\n" +
				"      DomScan dom(HOP) as k\n",
		},
	}
	for _, tc := range cases {
		p, err := Compile(tc.q, in)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if got := p.Explain(); got != tc.want {
			t.Errorf("%s: Explain drifted\ngot:\n%s\nwant:\n%s", tc.name, got, tc.want)
		}
	}
}
