// Package engine is the physical execution engine: it compiles a PC plan
// into a tree of pull-based operators (scans, dictionary lookups, filters,
// projections, deduplication) and runs it against an instance.
//
// Unlike the reference evaluator (package eval), the engine exploits the
// physical distinctions that motivate the paper: a dictionary lookup is a
// hash probe, not a scan, so plans like P3 (secondary-index lookup) and P4
// (join-index navigation) run in time proportional to their result, not to
// the base data. The E8 experiment measures exactly this difference.
//
// Two executors share the package: the row-at-a-time engine
// (Compile/Execute, this file) is the measured-cost reference, and the
// streaming batch engine (CompileStream/StreamExecute) processes
// columnar batches with predicate pushdown, hash joins and buffered
// pipelining at data scale. Both report the same Counters/Measure
// currency, so the E14 calibration and the E18 gates consume either
// engine unchanged.
//
// Concurrency: compiled plans and their operators are single-consumer —
// neither a Plan nor a StreamPlan may be driven by more than one
// goroutine at a time (buffered streaming stages spawn internal
// producer goroutines, but the Open/Next/Close surface remains
// single-threaded). Plans are cheap to compile; build one per
// goroutine. Instances are read-only during execution.
package engine

import (
	"fmt"

	"cnb/internal/core"
	"cnb/internal/eval"
	"cnb/internal/instance"
)

// Operator is a pull-based iterator producing environment rows.
type Operator interface {
	// Open resets the operator; it must be called before Next.
	Open() error
	// Next returns the next row, or nil at end of stream.
	Next() (eval.Env, error)
	// Describe renders the operator subtree, for EXPLAIN-style output.
	Describe(indent string) string
	// Counters returns the work counters accumulated since the last Open.
	Counters() Counters
}

// Counters is the work profile of one operator since its last Open:
// Evals counts range/condition evaluations (for a lookup scan, one Eval
// is one dictionary probe; for a relation scan, one pass over the
// collection), Rows counts rows the operator emitted. The sum over a plan
// tree is the measured-cost counterpart of cost.Stats.Estimate — the E14
// calibration experiment correlates the two.
type Counters struct {
	Evals int64
	Rows  int64
}

func (c *Counters) add(o Counters) {
	c.Evals += o.Evals
	c.Rows += o.Rows
}

// --- scan over a binding range ------------------------------------------

// bindScan iterates one from-clause binding: for every input row, evaluate
// the range term (a set: relation scan, dom scan, entry scan or
// non-failing lookup) and emit the row extended with the binding variable.
type bindScan struct {
	in    *instance.Instance
	child Operator
	v     string
	rng   *core.Term

	cur   eval.Env
	elems []instance.Value
	pos   int
	done  bool
	ctrs  Counters
}

func (b *bindScan) Open() error {
	b.cur = nil
	b.elems = nil
	b.pos = 0
	b.done = false
	b.ctrs = Counters{}
	if b.child != nil {
		return b.child.Open()
	}
	return nil
}

func (b *bindScan) Counters() Counters { return b.ctrs }

func (b *bindScan) Next() (eval.Env, error) {
	for {
		if b.cur == nil {
			if b.child == nil {
				if b.done {
					return nil, nil
				}
				b.done = true
				b.cur = eval.Env{}
			} else {
				row, err := b.child.Next()
				if err != nil {
					return nil, err
				}
				if row == nil {
					return nil, nil
				}
				b.cur = row
			}
			b.ctrs.Evals++
			val, err := eval.Term(b.rng, b.cur, b.in)
			if err != nil {
				return nil, err
			}
			set, ok := val.(*instance.Set)
			if !ok {
				return nil, fmt.Errorf("engine: range %s is not a set", b.rng)
			}
			b.elems = set.Elems()
			b.pos = 0
		}
		if b.pos < len(b.elems) {
			row := b.cur.Clone()
			row[b.v] = b.elems[b.pos]
			b.pos++
			b.ctrs.Rows++
			return row, nil
		}
		b.cur = nil
	}
}

func (b *bindScan) Describe(indent string) string {
	kind := "Scan"
	switch b.rng.Kind {
	case core.KDom:
		kind = "DomScan"
	case core.KLookup:
		if b.rng.NonFailing {
			kind = "LookupScan(non-failing)"
		} else {
			kind = "LookupScan"
		}
	case core.KProj:
		kind = "PathScan"
	}
	s := fmt.Sprintf("%s%s %s as %s\n", indent, kind, b.rng, b.v)
	if b.child != nil {
		s += b.child.Describe(indent + "  ")
	}
	return s
}

// --- filter ----------------------------------------------------------------

type filter struct {
	in    *instance.Instance
	child Operator
	conds []core.Cond
	ctrs  Counters
}

func (f *filter) Open() error {
	f.ctrs = Counters{}
	return f.child.Open()
}

func (f *filter) Counters() Counters { return f.ctrs }

func (f *filter) Next() (eval.Env, error) {
	for {
		row, err := f.child.Next()
		if err != nil || row == nil {
			return nil, err
		}
		f.ctrs.Evals++
		ok := true
		for _, c := range f.conds {
			l, err := eval.Term(c.L, row, f.in)
			if err != nil {
				return nil, err
			}
			r, err := eval.Term(c.R, row, f.in)
			if err != nil {
				return nil, err
			}
			if l.Key() != r.Key() {
				ok = false
				break
			}
		}
		if ok {
			f.ctrs.Rows++
			return row, nil
		}
	}
}

func (f *filter) Describe(indent string) string {
	s := fmt.Sprintf("%sFilter %v\n", indent, f.conds)
	return s + f.child.Describe(indent+"  ")
}

// --- plan --------------------------------------------------------------

// Plan is a compiled, executable query plan.
type Plan struct {
	root    Operator
	ops     []Operator // every operator of the tree, for Measure
	out     *core.Term
	in      *instance.Instance
	query   *core.Query
	outRows int64 // rows reaching the projection in the last Run (pre-dedup)
}

// Compile builds an operator tree for the plan's binding order: a chain of
// binding scans with filters placed at the earliest position where their
// variables are bound (selection pushdown).
func Compile(q *core.Query, in *instance.Instance) (*Plan, error) {
	if err := q.Validate(); err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	pos := map[string]int{}
	for i, b := range q.Bindings {
		pos[b.Var] = i
	}
	condAt := make([][]core.Cond, len(q.Bindings)+1)
	for _, c := range q.Conds {
		last := -1
		for v := range c.L.Vars() {
			if p, ok := pos[v]; ok && p > last {
				last = p
			}
		}
		for v := range c.R.Vars() {
			if p, ok := pos[v]; ok && p > last {
				last = p
			}
		}
		condAt[last+1] = append(condAt[last+1], c)
	}
	var root Operator
	var ops []Operator
	push := func(op Operator) {
		root = op
		ops = append(ops, op)
	}
	// Constant conditions (no variables) become a level-0 filter below.
	for i, b := range q.Bindings {
		push(&bindScan{in: in, child: root, v: b.Var, rng: b.Range})
		if len(condAt[i+1]) > 0 {
			push(&filter{in: in, child: root, conds: condAt[i+1]})
		}
	}
	if root == nil {
		return nil, fmt.Errorf("engine: plan with no bindings")
	}
	if len(condAt[0]) > 0 {
		push(&filter{in: in, child: root, conds: condAt[0]})
	}
	return &Plan{root: root, ops: ops, out: q.Out, in: in, query: q}, nil
}

// Run executes the plan and returns its result set. Counters are reset by
// the Open, so Measure reflects the latest Run only; re-running the same
// Plan re-Opens every operator and produces the same (deduplicated)
// result set.
func (p *Plan) Run() (*instance.Set, error) {
	if err := p.root.Open(); err != nil {
		return nil, err
	}
	p.outRows = 0
	out := instance.NewSet()
	for {
		row, err := p.root.Next()
		if err != nil {
			return nil, err
		}
		if row == nil {
			return out, nil
		}
		v, err := eval.Term(p.out, row, p.in)
		if err != nil {
			return nil, err
		}
		p.outRows++
		out.Add(v)
	}
}

// Measure is the work profile of the last Run: the summed operator
// counters plus the number of rows that reached the projection (before
// set deduplication). Cost is the scalar proxy the calibration harness
// compares against cost.Stats estimates: every range evaluation (probe or
// scan start) plus every row moved through the pipeline or projected.
type Measure struct {
	Counters
	OutRows int64
}

// Cost collapses the profile into one machine-independent work number.
func (m Measure) Cost() float64 {
	return float64(m.Evals + m.Rows + m.OutRows)
}

// Measure returns the work profile accumulated by the last Run.
func (p *Plan) Measure() Measure {
	var m Measure
	for _, op := range p.ops {
		m.add(op.Counters())
	}
	m.OutRows = p.outRows
	return m
}

// Explain renders the operator tree.
func (p *Plan) Explain() string {
	return fmt.Sprintf("Project %s\n%s", p.out, p.root.Describe("  "))
}

// Execute compiles and runs a plan in one call.
func Execute(q *core.Query, in *instance.Instance) (*instance.Set, error) {
	p, err := Compile(q, in)
	if err != nil {
		return nil, err
	}
	return p.Run()
}
