// Package planrewrite holds plan-level rewrites that are shared between
// the optimizer's conventional-optimization phase and the cost-bounded
// backchase: both need to see a candidate in its executable form —
// guarded dictionary-domain loops collapsed into non-failing lookups —
// before costing it, and the backchase cannot import the optimizer
// (which sits above it), so the rewrite lives in this leaf package.
package planrewrite

import (
	"cnb/internal/core"
)

// SimplifyLookups rewrites guarded dictionary-domain loops into
// non-failing lookups — the final transformation of the paper's §4
// example: a binding pair
//
//	dom(M) k, M[k] x   with   k = t   (t not mentioning k)
//
// becomes the single binding  M{t} x, replacing k by t everywhere. The
// guard condition is consumed by the non-failing lookup: when t ∉ dom(M)
// the loop is empty in both forms. Other occurrences of M[k] become M[t],
// which can only be evaluated when M{t} is non-empty, i.e. when the
// failing lookup is defined.
func SimplifyLookups(q *core.Query) *core.Query {
	cur := q.Clone()
	for changed := true; changed; {
		changed = false
		for i, b := range cur.Bindings {
			if b.Range.Kind != core.KDom {
				continue
			}
			k := b.Var
			dict := b.Range.Base
			if !dependentsAreDirectLookups(cur, i, k, dict) {
				continue
			}
			// Try every key candidate: the first may be circular (e.g.
			// k = t1.A where t1 is the dependent lookup itself).
			var next *core.Query
			for _, cand := range keyEqualities(cur, k) {
				next = applyLookupSimplification(cur, i, cand.condIdx, k, dict, cand.t)
				if next != nil {
					break
				}
			}
			if next != nil {
				cur = next
				changed = true
				break
			}
		}
	}
	return cur
}

// keyCandidate is a term the conditions force equal to the key variable,
// plus the index of the condition consumed by the rewrite (-1 when the
// equality was extracted from a struct condition that must be kept).
type keyCandidate struct {
	t       *core.Term
	condIdx int
}

// keyEqualities finds every term t, free of k, that the conditions force
// equal to k. Direct equalities k = t consume their condition; struct
// equalities other = struct(..., F: k, ...) yield other.F via constructor
// injectivity and keep the condition (its remaining fields may carry
// information).
func keyEqualities(q *core.Query, k string) []keyCandidate {
	kv := core.V(k)
	var out []keyCandidate
	for i, c := range q.Conds {
		if c.L.Equal(kv) && !c.R.MentionsVar(k) {
			out = append(out, keyCandidate{c.R, i})
		}
		if c.R.Equal(kv) && !c.L.MentionsVar(k) {
			out = append(out, keyCandidate{c.L, i})
		}
	}
	for _, c := range q.Conds {
		for _, pair := range [][2]*core.Term{{c.L, c.R}, {c.R, c.L}} {
			st, other := pair[0], pair[1]
			if st.Kind != core.KStruct || other.MentionsVar(k) {
				continue
			}
			for _, f := range st.Fields {
				if f.Term.Equal(kv) {
					out = append(out, keyCandidate{core.Prj(other, f.Name), -1})
				}
			}
		}
	}
	return out
}

// dependentsAreDirectLookups checks that at least one later binding ranges
// exactly over dict[k], and every binding range mentioning k is exactly
// dict[k] (so the non-failing rewrite covers all of them).
func dependentsAreDirectLookups(q *core.Query, domIdx int, k string, dict *core.Term) bool {
	direct := core.Lk(dict, core.V(k))
	found := false
	for j, b := range q.Bindings {
		if j == domIdx {
			continue
		}
		if !b.Range.MentionsVar(k) {
			continue
		}
		if !b.Range.Equal(direct) {
			return false
		}
		found = true
	}
	return found
}

func applyLookupSimplification(q *core.Query, domIdx, condIdx int, k string, dict, t *core.Term) *core.Query {
	direct := core.Lk(dict, core.V(k))
	sub := map[string]*core.Term{k: t}
	next := &core.Query{}
	for j, b := range q.Bindings {
		if j == domIdx {
			continue
		}
		if b.Range.Equal(direct) {
			next.Bindings = append(next.Bindings, core.Binding{
				Var:   b.Var,
				Range: core.LkNF(dict.Subst(sub), t),
			})
			continue
		}
		next.Bindings = append(next.Bindings, core.Binding{Var: b.Var, Range: b.Range.Subst(sub)})
	}
	for j, c := range q.Conds {
		if j == condIdx {
			continue
		}
		nc := core.Cond{L: c.L.Subst(sub), R: c.R.Subst(sub)}
		if nc.L.Equal(nc.R) {
			continue
		}
		next.Conds = append(next.Conds, nc)
	}
	next.Out = q.Out.Subst(sub)
	// The replacement key may reference a variable bound later in the
	// original order (e.g. the view row of ΦV); restore scoping.
	if sorted, ok := topoSortBindings(next.Bindings); ok {
		next.Bindings = sorted
	}
	if err := next.Validate(); err != nil {
		return nil
	}
	return next
}

// topoSortBindings orders bindings so every range mentions only earlier
// variables, keeping the given order among independent bindings.
func topoSortBindings(bs []core.Binding) ([]core.Binding, bool) {
	n := len(bs)
	used := make([]bool, n)
	introduced := map[string]bool{}
	out := make([]core.Binding, 0, n)
	for len(out) < n {
		progress := false
		for i, b := range bs {
			if used[i] {
				continue
			}
			ready := true
			for v := range b.Range.Vars() {
				if !introduced[v] {
					ready = false
					break
				}
			}
			if !ready {
				continue
			}
			used[i] = true
			introduced[b.Var] = true
			out = append(out, b)
			progress = true
		}
		if !progress {
			return nil, false
		}
	}
	return out, true
}
