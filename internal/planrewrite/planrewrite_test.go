package planrewrite

import (
	"testing"

	"cnb/internal/core"
)

// TestSimplifyGuardedDomLoop: the §4 shape — dom(M) k, M[k] x with k = t
// — collapses to the single non-failing lookup M{t} x.
func TestSimplifyGuardedDomLoop(t *testing.T) {
	q := &core.Query{
		Out: core.Prj(core.V("x"), "Budg"),
		Bindings: []core.Binding{
			{Var: "k", Range: core.Dom(core.Name("SI"))},
			{Var: "x", Range: core.Lk(core.Name("SI"), core.V("k"))},
		},
		Conds: []core.Cond{{L: core.V("k"), R: core.C("CitiBank")}},
	}
	s := SimplifyLookups(q)
	if len(s.Bindings) != 1 {
		t.Fatalf("bindings = %d, want 1:\n%s", len(s.Bindings), s)
	}
	r := s.Bindings[0].Range
	if r.Kind != core.KLookup || !r.NonFailing {
		t.Errorf("range = %s, want non-failing lookup", r)
	}
	if len(s.Conds) != 0 {
		t.Errorf("guard condition not consumed:\n%s", s)
	}
}

// TestSimplifyLeavesUnguardedLoops: a dom loop without a key equality is
// a genuine scan and must be preserved.
func TestSimplifyLeavesUnguardedLoops(t *testing.T) {
	q := &core.Query{
		Out: core.V("k"),
		Bindings: []core.Binding{
			{Var: "k", Range: core.Dom(core.Name("SI"))},
			{Var: "x", Range: core.Lk(core.Name("SI"), core.V("k"))},
		},
	}
	s := SimplifyLookups(q)
	if len(s.Bindings) != 2 {
		t.Errorf("unguarded dom loop was rewritten:\n%s", s)
	}
}

// TestSimplifyRefusesIndirectKeyUse: when the key variable is used in a
// range other than the direct lookup, the rewrite does not apply.
func TestSimplifyRefusesIndirectKeyUse(t *testing.T) {
	q := &core.Query{
		Out: core.Prj(core.V("x"), "A"),
		Bindings: []core.Binding{
			{Var: "k", Range: core.Dom(core.Name("M"))},
			{Var: "x", Range: core.Lk(core.Name("M"), core.Prj(core.V("k"), "F"))},
		},
		Conds: []core.Cond{{L: core.V("k"), R: core.C("c")}},
	}
	s := SimplifyLookups(q)
	if len(s.Bindings) != 2 {
		t.Errorf("indirect key use was rewritten:\n%s", s)
	}
}
