package chase

import (
	"context"
	"errors"
	"testing"

	"cnb/internal/core"
)

// TestChaseContextCancelled asserts a cancelled context interrupts the
// chase before it applies any step.
func TestChaseContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	q := &core.Query{
		Out:      core.Prj(core.V("r"), "A"),
		Bindings: []core.Binding{{Var: "r", Range: core.Name("R")}},
	}
	ind := &core.Dependency{
		Name:            "IND",
		Premise:         []core.Binding{{Var: "r", Range: core.Name("R")}},
		Conclusion:      []core.Binding{{Var: "s", Range: core.Name("S")}},
		ConclusionConds: []core.Cond{{L: core.Prj(core.V("r"), "A"), R: core.Prj(core.V("s"), "A")}},
	}
	_, err := ChaseContext(ctx, q, []*core.Dependency{ind}, Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestChaseContextBackground pins that the plain Chase entry point is
// unaffected by the context plumbing.
func TestChaseContextBackground(t *testing.T) {
	q := &core.Query{
		Out:      core.Prj(core.V("r"), "A"),
		Bindings: []core.Binding{{Var: "r", Range: core.Name("R")}},
	}
	res, err := Chase(q, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Query.Bindings) != 1 {
		t.Fatalf("no-dependency chase must be the identity, got %d bindings", len(res.Query.Bindings))
	}
}
