// Delta-driven incremental chase engine.
//
// The naive chase fixpoint rescans every dependency at every step and
// restarts premise-homomorphism search from scratch over the whole
// canonical database. This file replaces that inner loop with the
// semi-naive delta discipline of Datalog engines, adapted to the chase:
//
//   - A DepIndex maps premise feature keys (schema names plus var-rooted
//     shape keys, see core.FeatureKeys) to the dependencies whose premise
//     mentions them. It is a pure function of the dependency set, built
//     once and shared read-only across every chase of one backchase run.
//
//   - Each fixpoint iteration maintains per-dependency dirtiness. A
//     dependency whose premise search came up empty is marked clean and
//     skipped until the canonical database changes in a way that could
//     give it a new premise homomorphism: a congruence union touching a
//     class whose features intersect the premise's (reported by the
//     closure's feature log), or a newly added binding whose range
//     features intersect it.
//
//   - A dependency dirtied only by appended bindings gets a homomorphism
//     search seeded at the delta: only assignments using at least one of
//     the new target bindings are enumerated (visitHoms with deltaStart).
//     Dependencies dirtied by a union — or the dependency that just fired
//     — are re-searched in full.
//
// Why the result is byte-identical to the naive fixpoint, step for step:
//
//  1. Conclusion satisfaction is monotone. ExtendsToConclusion only ever
//     flips from false to true as the canonical database grows, so a
//     premise homomorphism that was once found satisfied can never make
//     its dependency applicable again.
//  2. Premise homomorphisms appear only through relevant changes. A
//     membership or premise-condition test flips from false to true only
//     when a union joins the classes of the two tested terms — and the
//     transported premise term carries a subset of the dependency's own
//     premise features (homomorphisms substitute variables for
//     variables, preserving shape; a repeated premise variable's var≡var
//     witness test is covered by indexing the dependency under FeatVar,
//     see core.PremiseFeatureKeys), so that union's feature log
//     intersects the dependency's features — or when a new binding
//     supplies a previously nonexistent target. The membership test
//     compares the new range to the transported premise range up to
//     congruence, so the range is matched against the index through the
//     feature keys of its whole congruence class (which contain the
//     features of every interned term it can stand in for), not just its
//     own term features; bare-variable or featureless ranges
//     conservatively dirty everything.
//  3. Hence a clean dependency has no applicable homomorphism, and a
//     binding-delta-dirty dependency has applicable homomorphisms only
//     among those using a delta binding; scanning dependencies in the
//     naive order (EGDs before TGDs, slice order, visitHoms order) finds
//     exactly the naive engine's next step.
//
// Derived congruences materialize lazily (interning a term can trigger
// signature-collision unions), but they are consequences of equalities
// already asserted: any search that needs one triggers it while testing,
// so laziness never changes a test's outcome — it only adds conservative
// entries to the feature log, which cost a spurious re-search at most.
package chase

import (
	"context"

	"cnb/internal/congruence"
	"cnb/internal/core"
)

// DepIndex is the premise feature index over a fixed dependency set: for
// every dependency, the feature keys of its premise, inverted into a
// feature -> dependencies map. Immutable (and safe for concurrent use)
// after construction; per-run dirtiness lives in the chase run itself, so
// one index serves every lattice state of a backchase and every
// equivalence chase of an Optimize call.
type DepIndex struct {
	deps []*core.Dependency
	// egds and tgds list dependency positions in original slice order,
	// preserving the naive engine's EGD-before-TGD scan discipline.
	egds, tgds []int
	// feats[i] is the premise feature set of deps[i].
	feats []map[string]bool
	// byFeat inverts feats: feature key -> positions of dependencies whose
	// premise carries it.
	byFeat map[string][]int
}

// NewDepIndex builds the premise index for the dependency set. The slice
// is captured, not copied; callers must not mutate it afterwards.
func NewDepIndex(deps []*core.Dependency) *DepIndex {
	ix := &DepIndex{
		deps:   deps,
		feats:  make([]map[string]bool, len(deps)),
		byFeat: map[string][]int{},
	}
	for i, d := range deps {
		if d.IsEGD() {
			ix.egds = append(ix.egds, i)
		} else {
			ix.tgds = append(ix.tgds, i)
		}
		fs := d.PremiseFeatureKeys()
		ix.feats[i] = fs
		for f := range fs {
			ix.byFeat[f] = append(ix.byFeat[f], i)
		}
	}
	return ix
}

// Deps returns the indexed dependency slice (read-only).
func (ix *DepIndex) Deps() []*core.Dependency { return ix.deps }

// Len returns the number of indexed dependencies.
func (ix *DepIndex) Len() int { return len(ix.deps) }

// DepsForFeature returns the positions of the dependencies indexed under
// the feature key, in dependency order. Exposed for the index-correctness
// tests; the result must be treated as read-only.
func (ix *DepIndex) DepsForFeature(feat string) []int { return ix.byFeat[feat] }

// depState is the per-run dirtiness of one dependency.
type depState struct {
	// dirty marks the dependency as needing a premise search; clean
	// dependencies are provably inapplicable (see the file comment).
	dirty bool
	// deltaStart, when >= 0, restricts the search to homomorphisms using
	// at least one target binding of index >= deltaStart (the dependency
	// was dirtied only by appended bindings since its last exhausted
	// search). -1 means a full search is required.
	deltaStart int
}

// markUnion dirties, for a full re-search, every dependency whose premise
// features intersect the touched-feature set of this step's congruence
// unions.
func (ix *DepIndex) markUnion(st []depState, touched map[string]bool) {
	for f := range touched {
		for _, di := range ix.byFeat[f] {
			st[di] = depState{dirty: true, deltaStart: -1}
		}
	}
}

// markNewBinding dirties dependencies that may match the newly appended
// binding range, seeding their next search at the delta (binding index
// from). Premise membership tests compare ranges up to congruence, so the
// range's term features are unioned with the feature keys of its whole
// congruence class (the range must already be interned in cc): a binding
// with range d.A can satisfy a premise atom v in d.B when d.A ≡ d.B, and
// only the class features carry ".B". When the class contains a bare
// variable the union includes FeatVar, waking dependencies with
// bare-variable premise shapes. Ranges with no features, or bare-variable
// ranges, conservatively dirty every dependency. Union-dirty (full)
// states are never downgraded, and an older (smaller) delta seed is kept.
func (ix *DepIndex) markNewBinding(st []depState, cc *congruence.Closure, rng *core.Term, from int) {
	fs := rng.FeatureKeys()
	// The conservative fallback is decided on the range's own term
	// features, BEFORE the class union: a range that is featureless on
	// its own terms can stand in for any premise shape, and a featured
	// class must not talk it out of dirtying everything.
	if len(fs) == 0 || rng.Kind == core.KVar {
		for i := range st {
			st[i] = depState{dirty: true, deltaStart: -1}
		}
		return
	}
	for f := range cc.ClassFeatures(rng) {
		fs[f] = true
	}
	for f := range fs {
		for _, di := range ix.byFeat[f] {
			s := &st[di]
			if !s.dirty {
				*s = depState{dirty: true, deltaStart: from}
			}
			// Already dirty: a full (-1) search subsumes the delta, and an
			// existing delta seed is from an earlier step, hence <= from.
		}
	}
}

// findApplicable scans the given dependency positions in order, skipping
// clean ones, and returns the first dependency with a premise
// homomorphism that does not extend to its conclusion. Dependencies
// searched without success are marked clean. Mirrors the naive
// findApplicable exactly on the dirty set.
func (ix *DepIndex) findApplicable(cn *Canon, order []int, st []depState) (*core.Dependency, int, Hom) {
	for _, di := range order {
		s := &st[di]
		if !s.dirty {
			continue
		}
		d := ix.deps[di]
		if cn.Metrics != nil {
			cn.Metrics.DepSearches.Add(1)
		}
		var found Hom
		cn.visitHoms(d.Premise, d.PremiseConds, nil, s.deltaStart, func(h Hom) bool {
			if !cn.ExtendsToConclusion(d, h) {
				found = h.Clone()
				return true
			}
			return false
		})
		if found != nil {
			return d, di, found
		}
		*s = depState{}
	}
	return nil, -1, nil
}

// ChaseIndexed is ChaseContext over a prebuilt dependency index. Results
// and step sequences are byte-identical to the naive fixpoint; only the
// amount of homomorphism-search work differs (Options.Metrics measures
// it). Options.Naive selects the naive engine for differential testing.
func ChaseIndexed(ctx context.Context, q *core.Query, ix *DepIndex, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	if opts.Metrics != nil {
		opts.Metrics.Runs.Add(1)
	}
	if opts.Naive {
		return chaseNaive(ctx, q, ix, opts)
	}
	return chaseIncremental(ctx, q, ix, opts)
}

// chaseIncremental runs the delta-driven fixpoint.
func chaseIncremental(ctx context.Context, q *core.Query, ix *DepIndex, opts Options) (*Result, error) {
	cur := q.Clone()
	res := &Result{}
	cn := NewCanon(cur)
	cn.Metrics = opts.Metrics
	cn.CC.TrackFeatures()
	// The input query's own facts are the initial delta: everything is
	// dirty for a full search, and the feature log starts drained.
	cn.CC.TakeTouched()
	st := make([]depState, len(ix.deps))
	for i := range st {
		st[i] = depState{dirty: true, deltaStart: -1}
	}
	lastDep := ""
	for steps := 0; ; steps++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if steps >= opts.MaxSteps {
			return nil, &ErrBudget{Steps: steps, Bindings: len(cur.Bindings), Dep: lastDep}
		}
		if len(cur.Bindings) > opts.MaxBindings {
			return nil, &ErrBudget{Steps: steps, Bindings: len(cur.Bindings), Dep: lastDep}
		}
		if _, _, clash := cn.CC.ConstantClash(); clash {
			res.Query = cur
			res.Inconsistent = true
			return res, nil
		}
		dep, di, hom := ix.findApplicable(cn, ix.egds, st)
		if dep == nil {
			dep, di, hom = ix.findApplicable(cn, ix.tgds, st)
		}
		if dep == nil {
			res.Query = cur
			return res, nil
		}
		next := applyStep(cur, dep, hom)
		oldBindings := len(cur.Bindings)
		// Extend the canonical database with the new facts only.
		for _, b := range next.Bindings[oldBindings:] {
			cn.CC.Add(b.Range)
			cn.CC.Add(core.V(b.Var))
		}
		for _, c := range next.Conds[len(cur.Conds):] {
			cn.CC.Merge(c.L, c.R)
		}
		cur = next
		cn.Q = cur
		res.Steps = append(res.Steps, Step{Dep: dep.Name, Hom: hom})
		lastDep = dep.Name
		if opts.Metrics != nil {
			opts.Metrics.ChaseSteps.Add(1)
		}
		// Delta bookkeeping. The feature log covers every union since the
		// last take — the step's merges plus any derived unions triggered
		// while searching (conservative, see the file comment) — and the
		// appended bindings are matched against the index directly. The
		// fired dependency itself was left mid-enumeration, so it needs a
		// full re-search regardless of features.
		if touched := cn.CC.TakeTouched(); touched != nil {
			ix.markUnion(st, touched)
		}
		for _, b := range cur.Bindings[oldBindings:] {
			ix.markNewBinding(st, cn.CC, b.Range, oldBindings)
		}
		st[di] = depState{dirty: true, deltaStart: -1}
	}
}

// chaseNaive is the textbook fixpoint (every dependency rescanned, full
// homomorphism search each step), kept as the differential reference and
// the baseline E15 measures against.
func chaseNaive(ctx context.Context, q *core.Query, ix *DepIndex, opts Options) (*Result, error) {
	cur := q.Clone()
	res := &Result{}
	egds, tgds := splitEGDs(ix.deps)
	cn := NewCanon(cur)
	cn.Metrics = opts.Metrics
	cn.LinearScan = true // measure the full backtracking cost
	lastDep := ""
	for steps := 0; ; steps++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if steps >= opts.MaxSteps {
			return nil, &ErrBudget{Steps: steps, Bindings: len(cur.Bindings), Dep: lastDep}
		}
		if len(cur.Bindings) > opts.MaxBindings {
			return nil, &ErrBudget{Steps: steps, Bindings: len(cur.Bindings), Dep: lastDep}
		}
		if _, _, clash := cn.CC.ConstantClash(); clash {
			res.Query = cur
			res.Inconsistent = true
			return res, nil
		}
		dep, hom := findApplicableMetered(cn, egds)
		if dep == nil {
			dep, hom = findApplicableMetered(cn, tgds)
		}
		if dep == nil {
			res.Query = cur
			return res, nil
		}
		next := applyStep(cur, dep, hom)
		// Extend the canonical database with the new facts only.
		for _, b := range next.Bindings[len(cur.Bindings):] {
			cn.CC.Add(b.Range)
			cn.CC.Add(core.V(b.Var))
		}
		for _, c := range next.Conds[len(cur.Conds):] {
			cn.CC.Merge(c.L, c.R)
		}
		cur = next
		cn.Q = cur
		res.Steps = append(res.Steps, Step{Dep: dep.Name, Hom: hom})
		lastDep = dep.Name
		if opts.Metrics != nil {
			opts.Metrics.ChaseSteps.Add(1)
		}
	}
}

// findApplicableMetered is findApplicable with per-dependency search
// counting, so naive-vs-incremental comparisons measure the same events.
func findApplicableMetered(cn *Canon, deps []*core.Dependency) (*core.Dependency, Hom) {
	for _, d := range deps {
		if cn.Metrics != nil {
			cn.Metrics.DepSearches.Add(1)
		}
		var found Hom
		cn.VisitHoms(d.Premise, d.PremiseConds, nil, func(h Hom) bool {
			if !cn.ExtendsToConclusion(d, h) {
				found = h.Clone()
				return true
			}
			return false
		})
		if found != nil {
			return d, found
		}
	}
	return nil, nil
}
