package chase

import (
	"strings"
	"testing"

	"cnb/internal/core"
)

// --- Fixtures: the paper's ProjDept running example (§1–§3) ------------
//
// Logical schema: class extent depts (set of Dept records), relation Proj.
// Physical schema: dictionary Dept (class storage), Proj (direct), primary
// index I on Proj.PName, secondary index SI on Proj.CustName, materialized
// join-index view JI.

func q() *core.Query {
	// select struct(PN: s, PB: p.Budg, DN: d.DName)
	// from depts d, d.DProjs s, Proj p
	// where s = p.PName and p.CustName = "CitiBank"
	return &core.Query{
		Out: core.Struct(
			core.SF("PN", core.V("s")),
			core.SF("PB", core.Prj(core.V("p"), "Budg")),
			core.SF("DN", core.Prj(core.V("d"), "DName")),
		),
		Bindings: []core.Binding{
			{Var: "d", Range: core.Name("depts")},
			{Var: "s", Range: core.Prj(core.V("d"), "DProjs")},
			{Var: "p", Range: core.Name("Proj")},
		},
		Conds: []core.Cond{
			{L: core.V("s"), R: core.Prj(core.V("p"), "PName")},
			{L: core.Prj(core.V("p"), "CustName"), R: core.C("CitiBank")},
		},
	}
}

// phiDept: every logical Dept object is stored in the Dept dictionary.
func phiDept() *core.Dependency {
	return &core.Dependency{
		Name:            "PhiDept",
		Premise:         []core.Binding{{Var: "d", Range: core.Name("depts")}},
		Conclusion:      []core.Binding{{Var: "dd", Range: core.Dom(core.Name("Dept"))}},
		ConclusionConds: []core.Cond{{L: core.Lk(core.Name("Dept"), core.V("dd")), R: core.V("d")}},
	}
}

// phiDeptInv: every Dept dictionary entry is a logical Dept object.
func phiDeptInv() *core.Dependency {
	return &core.Dependency{
		Name:            "PhiDeptInv",
		Premise:         []core.Binding{{Var: "dd", Range: core.Dom(core.Name("Dept"))}},
		Conclusion:      []core.Binding{{Var: "d", Range: core.Name("depts")}},
		ConclusionConds: []core.Cond{{L: core.V("d"), R: core.Lk(core.Name("Dept"), core.V("dd"))}},
	}
}

// phiPI / phiPIInv: primary index I on Proj.PName (the paper's ΦPI, ΦPI').
func phiPI() *core.Dependency {
	return &core.Dependency{
		Name:       "PhiPI",
		Premise:    []core.Binding{{Var: "p", Range: core.Name("Proj")}},
		Conclusion: []core.Binding{{Var: "i", Range: core.Dom(core.Name("I"))}},
		ConclusionConds: []core.Cond{
			{L: core.V("i"), R: core.Prj(core.V("p"), "PName")},
			{L: core.Lk(core.Name("I"), core.V("i")), R: core.V("p")},
		},
	}
}

func phiPIInv() *core.Dependency {
	return &core.Dependency{
		Name:       "PhiPIInv",
		Premise:    []core.Binding{{Var: "i", Range: core.Dom(core.Name("I"))}},
		Conclusion: []core.Binding{{Var: "p", Range: core.Name("Proj")}},
		ConclusionConds: []core.Cond{
			{L: core.V("i"), R: core.Prj(core.V("p"), "PName")},
			{L: core.Lk(core.Name("I"), core.V("i")), R: core.V("p")},
		},
	}
}

// phiSI / phiSIInv: secondary index SI on Proj.CustName (ΦSI, ΦSI').
func phiSI() *core.Dependency {
	return &core.Dependency{
		Name:    "PhiSI",
		Premise: []core.Binding{{Var: "p", Range: core.Name("Proj")}},
		Conclusion: []core.Binding{
			{Var: "k", Range: core.Dom(core.Name("SI"))},
			{Var: "t", Range: core.Lk(core.Name("SI"), core.V("k"))},
		},
		ConclusionConds: []core.Cond{
			{L: core.V("k"), R: core.Prj(core.V("p"), "CustName")},
			{L: core.V("p"), R: core.V("t")},
		},
	}
}

func phiSIInv() *core.Dependency {
	return &core.Dependency{
		Name: "PhiSIInv",
		Premise: []core.Binding{
			{Var: "k", Range: core.Dom(core.Name("SI"))},
			{Var: "t", Range: core.Lk(core.Name("SI"), core.V("k"))},
		},
		Conclusion: []core.Binding{{Var: "p", Range: core.Name("Proj")}},
		ConclusionConds: []core.Cond{
			{L: core.V("k"), R: core.Prj(core.V("p"), "CustName")},
			{L: core.V("p"), R: core.V("t")},
		},
	}
}

// phiJI / phiJIInv: the materialized view JI (ΦJI, ΦJI' of §2), adapted to
// the record model of class extents: JI pairs Dept oids with project names.
func phiJI() *core.Dependency {
	return &core.Dependency{
		Name: "PhiJI",
		Premise: []core.Binding{
			{Var: "dd", Range: core.Dom(core.Name("Dept"))},
			{Var: "s", Range: core.Prj(core.Lk(core.Name("Dept"), core.V("dd")), "DProjs")},
			{Var: "p", Range: core.Name("Proj")},
		},
		PremiseConds: []core.Cond{{L: core.V("s"), R: core.Prj(core.V("p"), "PName")}},
		Conclusion:   []core.Binding{{Var: "j", Range: core.Name("JI")}},
		ConclusionConds: []core.Cond{
			{L: core.Prj(core.V("j"), "DOID"), R: core.V("dd")},
			{L: core.Prj(core.V("j"), "PN"), R: core.Prj(core.V("p"), "PName")},
		},
	}
}

func phiJIInv() *core.Dependency {
	return &core.Dependency{
		Name:    "PhiJIInv",
		Premise: []core.Binding{{Var: "j", Range: core.Name("JI")}},
		Conclusion: []core.Binding{
			{Var: "dd", Range: core.Dom(core.Name("Dept"))},
			{Var: "s", Range: core.Prj(core.Lk(core.Name("Dept"), core.V("dd")), "DProjs")},
			{Var: "p", Range: core.Name("Proj")},
		},
		ConclusionConds: []core.Cond{
			{L: core.V("s"), R: core.Prj(core.V("p"), "PName")},
			{L: core.Prj(core.V("j"), "DOID"), R: core.V("dd")},
			{L: core.Prj(core.V("j"), "PN"), R: core.Prj(core.V("p"), "PName")},
		},
	}
}

// Logical constraints of Figure 2.
func ric1() *core.Dependency {
	return &core.Dependency{
		Name: "RIC1",
		Premise: []core.Binding{
			{Var: "d", Range: core.Name("depts")},
			{Var: "s", Range: core.Prj(core.V("d"), "DProjs")},
		},
		Conclusion:      []core.Binding{{Var: "p", Range: core.Name("Proj")}},
		ConclusionConds: []core.Cond{{L: core.V("s"), R: core.Prj(core.V("p"), "PName")}},
	}
}

func ric2() *core.Dependency {
	return &core.Dependency{
		Name:            "RIC2",
		Premise:         []core.Binding{{Var: "p", Range: core.Name("Proj")}},
		Conclusion:      []core.Binding{{Var: "d", Range: core.Name("depts")}},
		ConclusionConds: []core.Cond{{L: core.Prj(core.V("p"), "PDept"), R: core.Prj(core.V("d"), "DName")}},
	}
}

func inv1() *core.Dependency {
	return &core.Dependency{
		Name: "INV1",
		Premise: []core.Binding{
			{Var: "d", Range: core.Name("depts")},
			{Var: "s", Range: core.Prj(core.V("d"), "DProjs")},
			{Var: "p", Range: core.Name("Proj")},
		},
		PremiseConds:    []core.Cond{{L: core.V("s"), R: core.Prj(core.V("p"), "PName")}},
		ConclusionConds: []core.Cond{{L: core.Prj(core.V("p"), "PDept"), R: core.Prj(core.V("d"), "DName")}},
	}
}

func inv2() *core.Dependency {
	return &core.Dependency{
		Name: "INV2",
		Premise: []core.Binding{
			{Var: "p", Range: core.Name("Proj")},
			{Var: "d", Range: core.Name("depts")},
		},
		PremiseConds:    []core.Cond{{L: core.Prj(core.V("p"), "PDept"), R: core.Prj(core.V("d"), "DName")}},
		Conclusion:      []core.Binding{{Var: "s", Range: core.Prj(core.V("d"), "DProjs")}},
		ConclusionConds: []core.Cond{{L: core.Prj(core.V("p"), "PName"), R: core.V("s")}},
	}
}

func allDeps() []*core.Dependency {
	return []*core.Dependency{
		phiJI(), phiDept(), inv1(), phiSI(), phiPI(),
		phiJIInv(), phiDeptInv(), phiSIInv(), phiPIInv(),
		ric1(), ric2(), inv2(),
	}
}

// --- Canon / homomorphism tests ----------------------------------------

func TestCanonBasics(t *testing.T) {
	cn := NewCanon(q())
	if !cn.CC.Same(core.V("s"), core.Prj(core.V("p"), "PName")) {
		t.Error("canonical database must equate s and p.PName")
	}
	if !cn.CC.Same(core.Prj(core.V("p"), "CustName"), core.C("CitiBank")) {
		t.Error("canonical database must equate p.CustName and the constant")
	}
	if cn.CC.Same(core.V("s"), core.V("d")) {
		t.Error("unrelated terms must stay separate")
	}
}

func TestFindHomsIdentity(t *testing.T) {
	query := q()
	cn := NewCanon(query)
	homs := cn.FindHoms(query.Bindings, query.Conds, nil, 0)
	if len(homs) == 0 {
		t.Fatal("identity homomorphism must exist")
	}
	found := false
	for _, h := range homs {
		if h["d"].Equal(core.V("d")) && h["s"].Equal(core.V("s")) && h["p"].Equal(core.V("p")) {
			found = true
		}
	}
	if !found {
		t.Error("identity homomorphism not found")
	}
}

func TestFindHomsRespectsConds(t *testing.T) {
	// Target: R r with r.A = 1. Source: R x with x.A = 2 has no hom.
	target := &core.Query{
		Out:      core.C(true),
		Bindings: []core.Binding{{Var: "r", Range: core.Name("R")}},
		Conds:    []core.Cond{{L: core.Prj(core.V("r"), "A"), R: core.C(1)}},
	}
	cn := NewCanon(target)
	src := []core.Binding{{Var: "x", Range: core.Name("R")}}
	bad := []core.Cond{{L: core.Prj(core.V("x"), "A"), R: core.C(2)}}
	if hs := cn.FindHoms(src, bad, nil, 0); len(hs) != 0 {
		t.Error("hom should fail: condition x.A=2 not implied")
	}
	good := []core.Cond{{L: core.Prj(core.V("x"), "A"), R: core.C(1)}}
	if hs := cn.FindHoms(src, good, nil, 0); len(hs) != 1 {
		t.Errorf("hom count = %d, want 1", len(hs))
	}
}

func TestFindHomsMultiple(t *testing.T) {
	// Target has two R bindings; source one — two homomorphisms.
	target := &core.Query{
		Out: core.C(true),
		Bindings: []core.Binding{
			{Var: "r1", Range: core.Name("R")},
			{Var: "r2", Range: core.Name("R")},
		},
	}
	cn := NewCanon(target)
	src := []core.Binding{{Var: "x", Range: core.Name("R")}}
	if hs := cn.FindHoms(src, nil, nil, 0); len(hs) != 2 {
		t.Errorf("hom count = %d, want 2", len(hs))
	}
	if hs := cn.FindHoms(src, nil, nil, 1); len(hs) != 1 {
		t.Error("limit must cap enumeration")
	}
}

func TestFindHomsDependentRange(t *testing.T) {
	// Source binding over a dependent range d.DProjs must map to the
	// target binding with congruent range.
	query := q()
	cn := NewCanon(query)
	src := []core.Binding{
		{Var: "a", Range: core.Name("depts")},
		{Var: "b", Range: core.Prj(core.V("a"), "DProjs")},
	}
	hs := cn.FindHoms(src, nil, nil, 0)
	if len(hs) != 1 {
		t.Fatalf("hom count = %d, want 1", len(hs))
	}
	if !hs[0]["a"].Equal(core.V("d")) || !hs[0]["b"].Equal(core.V("s")) {
		t.Errorf("unexpected hom: %v", hs[0])
	}
}

func TestExtendsToConclusionEGD(t *testing.T) {
	query := q()
	cn := NewCanon(query)
	// EGD whose conclusion already holds: s = p.PName.
	d := &core.Dependency{
		Premise: []core.Binding{
			{Var: "x", Range: core.Name("depts")},
		},
		ConclusionConds: []core.Cond{{L: core.V("s"), R: core.Prj(core.V("p"), "PName")}},
	}
	// Free vars s, p in conclusion refer to query vars here (init hom).
	h := Hom{"x": core.V("d"), "s": core.V("s"), "p": core.V("p")}
	if !cn.ExtendsToConclusion(d, h) {
		t.Error("EGD conclusion that already holds must extend")
	}
}

// --- Chase tests --------------------------------------------------------

func TestChaseSingleStepJI(t *testing.T) {
	// §3 example: chasing Q with ΦJI adds the JI binding and conditions.
	// In the record model, ΦJI's premise needs the Dept dictionary, so
	// chase with {ΦDept, ΦJI}.
	res, err := Chase(q(), []*core.Dependency{phiDept(), phiJI()}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	u := res.Query
	// Expect: original 3 bindings + dom(Dept) dd + JI j.
	if len(u.Bindings) != 5 {
		t.Fatalf("bindings = %d, want 5:\n%s", len(u.Bindings), u)
	}
	names := u.Names()
	if !names["JI"] || !names["Dept"] {
		t.Errorf("universal plan must mention JI and Dept: %v", names)
	}
	// The chase must not be applicable anymore.
	if Applicable(u, []*core.Dependency{phiDept(), phiJI()}) {
		t.Error("chase fixpoint must not be applicable")
	}
	if res.Inconsistent {
		t.Error("consistent chase flagged inconsistent")
	}
}

func TestChaseIdempotentOnFixpoint(t *testing.T) {
	deps := []*core.Dependency{phiDept(), phiJI()}
	res, err := Chase(q(), deps, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res2, err := Chase(res.Query, deps, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Steps) != 0 {
		t.Errorf("chase of a fixpoint applied %d steps, want 0", len(res2.Steps))
	}
	if res2.Query.Signature() != res.Query.Signature() {
		t.Error("chase of fixpoint must be identity")
	}
}

func TestChaseFullExample(t *testing.T) {
	// Full chase with all constraints: the universal plan U of §3.
	res, err := Chase(q(), allDeps(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	u := res.Query
	// U must mention every physical structure.
	names := u.Names()
	for _, n := range []string{"depts", "Proj", "Dept", "I", "SI", "JI"} {
		if !names[n] {
			t.Errorf("universal plan missing %s", n)
		}
	}
	// Check the expected binding ranges are present (paper's U):
	// depts d; d.DProjs s; Proj p; JI j; dom(Dept) dd; dom(SI) k;
	// SI[k] t; dom(I) i. (The record model does not need the s' binding.)
	kinds := map[string]int{}
	for _, b := range u.Bindings {
		switch {
		case b.Range.Equal(core.Name("depts")):
			kinds["depts"]++
		case b.Range.Equal(core.Name("Proj")):
			kinds["Proj"]++
		case b.Range.Equal(core.Name("JI")):
			kinds["JI"]++
		case b.Range.Equal(core.Dom(core.Name("Dept"))):
			kinds["domDept"]++
		case b.Range.Equal(core.Dom(core.Name("SI"))):
			kinds["domSI"]++
		case b.Range.Equal(core.Dom(core.Name("I"))):
			kinds["domI"]++
		case b.Range.Kind == core.KLookup:
			kinds["lookup"]++
		case b.Range.Kind == core.KProj:
			kinds["proj"]++
		}
	}
	for _, want := range []string{"depts", "Proj", "JI", "domDept", "domSI", "domI", "lookup", "proj"} {
		if kinds[want] == 0 {
			t.Errorf("universal plan missing a %s binding; got %v\n%s", want, kinds, u)
		}
	}
	// INV1 must have derived d.DName = p.PDept.
	cn := NewCanon(u)
	if !cn.CC.Same(core.Prj(core.V("d"), "DName"), core.Prj(core.V("p"), "PDept")) {
		t.Error("INV1 equality d.DName = p.PDept missing from universal plan")
	}
	// The universal plan is a fixpoint.
	if Applicable(u, allDeps()) {
		t.Error("universal plan must be a chase fixpoint")
	}
	// The output is unchanged by chasing.
	if !u.Out.Equal(q().Out) {
		t.Error("chase must not alter the output")
	}
	if err := u.Validate(); err != nil {
		t.Errorf("universal plan invalid: %v", err)
	}
}

func TestChaseStepTrace(t *testing.T) {
	res, err := Chase(q(), allDeps(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Steps) == 0 {
		t.Fatal("expected chase steps")
	}
	seen := map[string]bool{}
	for _, s := range res.Steps {
		seen[s.Dep] = true
	}
	for _, want := range []string{"PhiJI", "PhiDept", "INV1", "PhiSI", "PhiPI"} {
		if !seen[want] {
			t.Errorf("chase trace missing %s; applied: %v", want, seen)
		}
	}
}

func TestChaseEGDInconsistent(t *testing.T) {
	// R r with r.A = 1 and r.A = 2 under FD "A determines nothing" won't
	// fire; instead use an EGD that directly equates 1 = 2.
	query := &core.Query{
		Out:      core.C(true),
		Bindings: []core.Binding{{Var: "r", Range: core.Name("R")}},
		Conds: []core.Cond{
			{L: core.Prj(core.V("r"), "A"), R: core.C(1)},
			{L: core.Prj(core.V("r"), "B"), R: core.C(2)},
		},
	}
	// EGD: forall r in R: r.A = r.B. Chasing equates 1 = 2: inconsistent.
	egd := &core.Dependency{
		Name:            "AB",
		Premise:         []core.Binding{{Var: "r", Range: core.Name("R")}},
		ConclusionConds: []core.Cond{{L: core.Prj(core.V("r"), "A"), R: core.Prj(core.V("r"), "B")}},
	}
	res, err := Chase(query, []*core.Dependency{egd}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Inconsistent {
		t.Error("chase must flag constant clash as inconsistent")
	}
}

func TestChaseEGDKeyMergesVariables(t *testing.T) {
	// Two Proj bindings with equal PName collapse under the key EGD:
	// after chasing, p1 = p2 is derived.
	query := &core.Query{
		Out: core.C(true),
		Bindings: []core.Binding{
			{Var: "p1", Range: core.Name("Proj")},
			{Var: "p2", Range: core.Name("Proj")},
		},
		Conds: []core.Cond{
			{L: core.Prj(core.V("p1"), "PName"), R: core.Prj(core.V("p2"), "PName")},
		},
	}
	key := &core.Dependency{
		Name: "KEY2",
		Premise: []core.Binding{
			{Var: "a", Range: core.Name("Proj")},
			{Var: "b", Range: core.Name("Proj")},
		},
		PremiseConds:    []core.Cond{{L: core.Prj(core.V("a"), "PName"), R: core.Prj(core.V("b"), "PName")}},
		ConclusionConds: []core.Cond{{L: core.V("a"), R: core.V("b")}},
	}
	res, err := Chase(query, []*core.Dependency{key}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cn := NewCanon(res.Query)
	if !cn.CC.Same(core.V("p1"), core.V("p2")) {
		t.Error("key EGD must equate p1 and p2")
	}
}

func TestChaseBudgetExceeded(t *testing.T) {
	// Non-terminating dependency: forall (x in R) exists (y in R) y.Next = x.
	inf := &core.Dependency{
		Name:            "inf",
		Premise:         []core.Binding{{Var: "x", Range: core.Name("R")}},
		Conclusion:      []core.Binding{{Var: "y", Range: core.Name("R")}},
		ConclusionConds: []core.Cond{{L: core.Prj(core.V("y"), "Next"), R: core.V("x")}},
	}
	query := &core.Query{
		Out:      core.C(true),
		Bindings: []core.Binding{{Var: "r", Range: core.Name("R")}},
	}
	_, err := Chase(query, []*core.Dependency{inf}, Options{MaxSteps: 25})
	if err == nil {
		t.Fatal("non-terminating chase must exhaust its budget")
	}
	if _, ok := err.(*ErrBudget); !ok {
		t.Errorf("error type = %T, want *ErrBudget", err)
	}
	if !strings.Contains(err.Error(), "budget") {
		t.Errorf("error message should mention budget: %v", err)
	}
}

func TestChaseDoesNotMutateInput(t *testing.T) {
	orig := q()
	sig := orig.Signature()
	if _, err := Chase(orig, allDeps(), Options{}); err != nil {
		t.Fatal(err)
	}
	if orig.Signature() != sig {
		t.Error("Chase must not mutate its input query")
	}
}

// --- Implication tests ---------------------------------------------------

func TestImpliesTrivialConstraint(t *testing.T) {
	// The §3 trivial constraint justifying tableau minimization:
	// forall (p in R, q in R) p.B = q.A ->
	//   exists (r in R) p.B = q.A and q.B = r.B
	// (take r = q).
	triv := &core.Dependency{
		Premise: []core.Binding{
			{Var: "p", Range: core.Name("R")},
			{Var: "q", Range: core.Name("R")},
		},
		PremiseConds: []core.Cond{{L: core.Prj(core.V("p"), "B"), R: core.Prj(core.V("q"), "A")}},
		Conclusion:   []core.Binding{{Var: "r", Range: core.Name("R")}},
		ConclusionConds: []core.Cond{
			{L: core.Prj(core.V("p"), "B"), R: core.Prj(core.V("q"), "A")},
			{L: core.Prj(core.V("q"), "B"), R: core.Prj(core.V("r"), "B")},
		},
	}
	ok, err := Trivial(triv, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("the paper's §3 constraint must be trivial")
	}
}

func TestImpliesNonTrivial(t *testing.T) {
	// forall (p in R) exists (s in S) p.A = s.A is NOT trivial.
	d := &core.Dependency{
		Premise:         []core.Binding{{Var: "p", Range: core.Name("R")}},
		Conclusion:      []core.Binding{{Var: "s", Range: core.Name("S")}},
		ConclusionConds: []core.Cond{{L: core.Prj(core.V("p"), "A"), R: core.Prj(core.V("s"), "A")}},
	}
	ok, err := Trivial(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("R ⊆ S style constraint must not be trivial")
	}
}

func TestImpliesFromDependencies(t *testing.T) {
	// RIC2 implies: forall (p in Proj) exists (d in depts) true.
	weak := &core.Dependency{
		Premise:    []core.Binding{{Var: "p", Range: core.Name("Proj")}},
		Conclusion: []core.Binding{{Var: "d", Range: core.Name("depts")}},
	}
	ok, err := Implies([]*core.Dependency{ric2()}, weak, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("RIC2 must imply the weaker existence constraint")
	}
	// ... but not the converse direction.
	conv := &core.Dependency{
		Premise:    []core.Binding{{Var: "d", Range: core.Name("depts")}},
		Conclusion: []core.Binding{{Var: "p", Range: core.Name("Proj")}},
	}
	ok, err = Implies([]*core.Dependency{ric2()}, conv, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("RIC2 must not imply the converse")
	}
}

func TestImpliesViewInclusion(t *testing.T) {
	// From ΦV (V ⊇ select of R) alone, the inclusion
	// forall (r in R) exists (v in V) v.A = r.A must follow, where
	// V = select struct(A: r.A) from R r.
	phiV := &core.Dependency{
		Name:            "PhiV",
		Premise:         []core.Binding{{Var: "r", Range: core.Name("R")}},
		Conclusion:      []core.Binding{{Var: "v", Range: core.Name("V")}},
		ConclusionConds: []core.Cond{{L: core.V("v"), R: core.Struct(core.SF("A", core.Prj(core.V("r"), "A")))}},
	}
	want := &core.Dependency{
		Premise:         []core.Binding{{Var: "r", Range: core.Name("R")}},
		Conclusion:      []core.Binding{{Var: "v", Range: core.Name("V")}},
		ConclusionConds: []core.Cond{{L: core.Prj(core.V("v"), "A"), R: core.Prj(core.V("r"), "A")}},
	}
	ok, err := Implies([]*core.Dependency{phiV}, want, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("ΦV must imply the projected inclusion (needs the beta axiom)")
	}
}

func TestHomsOfQueryInto(t *testing.T) {
	// Q maps into its own chase with an output match.
	res, err := Chase(q(), allDeps(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	cn := NewCanon(res.Query)
	homs := cn.HomsOfQueryInto(q(), res.Query.Out, 0)
	if len(homs) == 0 {
		t.Error("Q must map into chase(Q) with output match")
	}
}

func TestHomKeyDeterministic(t *testing.T) {
	h := Hom{"a": core.V("x"), "b": core.V("y")}
	if h.Key() != h.Clone().Key() {
		t.Error("hom key must be stable under clone")
	}
	h2 := Hom{"a": core.V("x"), "b": core.V("z")}
	if h.Key() == h2.Key() {
		t.Error("different homs must have different keys")
	}
}
