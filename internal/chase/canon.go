// Package chase implements the chase of path-conjunctive queries with
// embedded path-conjunctive dependencies (EPCDs), the first phase of the
// chase & backchase optimization method of Deutsch, Popa, Tannen
// (VLDB 1999).
//
// The chase views a query through its canonical database: the terms of the
// query grouped into congruence classes by the where-clause equalities,
// plus one membership fact per from-clause binding. A dependency applies
// when its premise maps homomorphically into the canonical database but
// the conclusion does not extend the map; applying it adds the conclusion
// (bindings and conditions) under the homomorphism. The fixpoint is the
// universal plan.
package chase

import (
	"sort"

	"cnb/internal/congruence"
	"cnb/internal/core"
)

// Canon is the canonical database of a query: its congruence closure plus
// the membership facts contributed by the from clause.
//
// A Canon is not safe for concurrent use: homomorphism search interns the
// transported source terms into CC, mutating it (see the congruence
// package comment). Concurrent consumers — e.g. the workers of the
// parallel backchase — must each operate on their own Clone.
type Canon struct {
	Q  *core.Query
	CC *congruence.Closure
}

// Clone returns an independent copy of the canonical database. The query
// is shared (Canon never mutates it); the congruence closure is deep
// copied. Concurrent Clones of one Canon are safe provided no goroutine
// mutates it at the same time.
func (cn *Canon) Clone() *Canon {
	return &Canon{Q: cn.Q, CC: cn.CC.Clone()}
}

// NewCanon builds the canonical database of a query.
func NewCanon(q *core.Query) *Canon {
	cc := congruence.New()
	for _, t := range q.AllTerms() {
		cc.Add(t)
	}
	for _, c := range q.Conds {
		cc.Merge(c.L, c.R)
	}
	return &Canon{Q: q, CC: cc}
}

// Hom is a homomorphism: a mapping from source variables to target terms
// (in practice target binding variables) such that memberships and
// conditions of the source hold in the target's canonical database.
type Hom map[string]*core.Term

// Clone copies the homomorphism.
func (h Hom) Clone() Hom {
	n := make(Hom, len(h))
	for k, v := range h {
		n[k] = v
	}
	return n
}

// subst converts the homomorphism into a term substitution.
func (h Hom) subst() map[string]*core.Term { return h }

// Apply applies the homomorphism to a term.
func (h Hom) Apply(t *core.Term) *core.Term { return t.Subst(h.subst()) }

// Key returns a canonical string for deduplicating homomorphisms.
func (h Hom) Key() string {
	keys := make([]string, 0, len(h))
	for k := range h {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	s := ""
	for _, k := range keys {
		s += k + "->" + h[k].HashKey() + ";"
	}
	return s
}

// Holds reports whether the condition, transported along h, is implied by
// the canonical database.
func (cn *Canon) Holds(h Hom, c core.Cond) bool {
	return cn.CC.Same(h.Apply(c.L), h.Apply(c.R))
}

// FindHoms enumerates homomorphisms of the given source bindings and
// conditions into the canonical database, starting from the partial
// assignment init (which may be nil). Each source binding variable is
// mapped to some target binding variable whose range is congruent to the
// (transported) source range. At most limit homomorphisms are returned
// (limit <= 0 means no limit).
func (cn *Canon) FindHoms(srcBindings []core.Binding, srcConds []core.Cond, init Hom, limit int) []Hom {
	var out []Hom
	cn.VisitHoms(srcBindings, srcConds, init, func(h Hom) bool {
		out = append(out, h.Clone())
		return limit > 0 && len(out) >= limit
	})
	return out
}

// VisitHoms streams homomorphisms to the visitor, stopping when the
// visitor returns true. It avoids materializing the full (possibly
// exponential) homomorphism set when the caller needs only the first
// match — the chase's applicability test is the hot path.
func (cn *Canon) VisitHoms(srcBindings []core.Binding, srcConds []core.Cond, init Hom, visit func(Hom) bool) {
	h := Hom{}
	for k, v := range init {
		h[k] = v
	}
	var rec func(i int) bool // returns true to stop early
	rec = func(i int) bool {
		if i == len(srcBindings) {
			for _, c := range srcConds {
				if !cn.Holds(h, c) {
					return false
				}
			}
			return visit(h)
		}
		sb := srcBindings[i]
		if _, pre := h[sb.Var]; pre {
			// Variable pre-assigned by init: verify membership — some
			// target binding must have a congruent range and a congruent
			// variable.
			want := h.Apply(sb.Range)
			ok := false
			got := h[sb.Var]
			for _, tb := range cn.Q.Bindings {
				if cn.CC.Same(tb.Range, want) && cn.CC.Same(core.V(tb.Var), got) {
					ok = true
					break
				}
			}
			if !ok {
				return false
			}
			return rec(i + 1)
		}
		// Substitute the source range once; deeper recursion levels can
		// trigger congruence merges, so representatives are re-resolved
		// per candidate (cheap: the term is already interned).
		want := h.Apply(sb.Range)
		for _, tb := range cn.Q.Bindings {
			if cn.CC.Rep(tb.Range) != cn.CC.Rep(want) {
				continue
			}
			h[sb.Var] = core.V(tb.Var)
			// Early condition pruning: check conditions all of whose
			// variables are assigned.
			if cn.condsOK(h, srcConds) {
				if rec(i + 1) {
					return true
				}
			}
			delete(h, sb.Var)
		}
		return false
	}
	rec(0)
}

// condsOK checks the conditions whose variables are fully assigned by h.
func (cn *Canon) condsOK(h Hom, conds []core.Cond) bool {
	for _, c := range conds {
		if !assigned(h, c.L) || !assigned(h, c.R) {
			continue
		}
		if !cn.Holds(h, c) {
			return false
		}
	}
	return true
}

func assigned(h Hom, t *core.Term) bool {
	for v := range t.Vars() {
		if _, ok := h[v]; !ok {
			return false
		}
	}
	return true
}

// ExtendsToConclusion reports whether the homomorphism of a dependency's
// premise extends to its conclusion inside the canonical database: there
// is an assignment of the conclusion variables to target bindings making
// all conclusion conditions hold.
func (cn *Canon) ExtendsToConclusion(d *core.Dependency, h Hom) bool {
	if d.IsEGD() {
		for _, c := range d.ConclusionConds {
			if !cn.Holds(h, c) {
				return false
			}
		}
		return true
	}
	ext := cn.FindHoms(d.Conclusion, d.ConclusionConds, h, 1)
	return len(ext) > 0
}

// HomsOfQueryInto enumerates containment mappings from query src into this
// canonical database: homomorphisms of src's bindings and conditions whose
// transported output is congruent to out. Used for containment checks.
func (cn *Canon) HomsOfQueryInto(src *core.Query, out *core.Term, limit int) []Hom {
	homs := cn.FindHoms(src.Bindings, src.Conds, nil, 0)
	var ok []Hom
	for _, h := range homs {
		if cn.CC.Same(h.Apply(src.Out), out) {
			ok = append(ok, h)
			if limit > 0 && len(ok) >= limit {
				break
			}
		}
	}
	return ok
}
