// Package chase implements the chase of path-conjunctive queries with
// embedded path-conjunctive dependencies (EPCDs), the first phase of the
// chase & backchase optimization method of Deutsch, Popa, Tannen
// (VLDB 1999).
//
// The chase views a query through its canonical database: the terms of the
// query grouped into congruence classes by the where-clause equalities,
// plus one membership fact per from-clause binding. A dependency applies
// when its premise maps homomorphically into the canonical database but
// the conclusion does not extend the map; applying it adds the conclusion
// (bindings and conditions) under the homomorphism. The fixpoint is the
// universal plan.
package chase

import (
	"sort"
	"sync/atomic"

	"cnb/internal/congruence"
	"cnb/internal/core"
)

// Metrics accumulates work counters across chase runs and homomorphism
// searches. All fields are atomic so one Metrics may be shared by the
// concurrent equivalence checks of the parallel backchase; attach it via
// Options.Metrics (chase runs) or Canon.Metrics (direct hom searches).
type Metrics struct {
	// HomTests counts candidate membership tests during homomorphism
	// search: each comparison of a target binding against a transported
	// source range (the inner loop of VisitHoms). This is the backtracking
	// work the delta discipline exists to avoid.
	HomTests atomic.Int64
	// DepSearches counts premise searches: one per dependency actually
	// searched per fixpoint iteration (skipped clean dependencies are the
	// difference between the naive and incremental engines).
	DepSearches atomic.Int64
	// ChaseSteps counts applied chase steps. Identical for the naive and
	// incremental engines on the same input — the differential suite
	// asserts it.
	ChaseSteps atomic.Int64
	// Runs counts chase fixpoints started.
	Runs atomic.Int64
}

// Canon is the canonical database of a query: its congruence closure plus
// the membership facts contributed by the from clause.
//
// A Canon is not safe for concurrent use: homomorphism search interns the
// transported source terms into CC, mutating it (see the congruence
// package comment). Concurrent consumers — e.g. the workers of the
// parallel backchase — must each operate on their own Clone.
type Canon struct {
	Q  *core.Query
	CC *congruence.Closure
	// Metrics, when non-nil, accumulates homomorphism-search counters.
	// Shared (not deep-copied) by Clone; safe because all fields are
	// atomic.
	Metrics *Metrics
	// LinearScan disables the rep-keyed target index: every homomorphism
	// search level scans all target bindings, re-resolving representatives
	// per candidate (the textbook behavior). Enabled only by the naive
	// chase engine so that naive-vs-incremental measurements compare the
	// full backtracking cost against the seeded search; results are
	// identical either way.
	LinearScan bool
	// tix caches target bindings grouped by the congruence representative
	// of their range; rebuilt lazily whenever the closure version or the
	// binding list moves on. Never shared by Clone (clones diverge).
	tix *targetIndex
}

// targetIndex groups target binding positions by the representative of
// their range, valid for one (closure version, binding count) snapshot.
type targetIndex struct {
	version uint64
	n       int
	byRep   map[int][]int
}

// Clone returns an independent copy of the canonical database. The query
// is shared (Canon never mutates it); the congruence closure is deep
// copied. Concurrent Clones of one Canon are safe provided no goroutine
// mutates it at the same time.
func (cn *Canon) Clone() *Canon {
	return &Canon{Q: cn.Q, CC: cn.CC.Clone(), Metrics: cn.Metrics, LinearScan: cn.LinearScan}
}

// targetCandidates returns the positions of the target bindings whose
// range is congruent to want, in ascending binding order, as of the
// current closure version. The index is rebuilt lazily; the rebuild cost
// is charged to Metrics.HomTests like any other membership work. Callers
// must stop trusting the slice once the closure version changes (a merge
// can add candidates) — visitHoms falls back to the linear scan then.
func (cn *Canon) targetCandidates(want *core.Term) ([]int, int64) {
	rw := cn.CC.Rep(want) // may trigger derived unions; bump handled below
	tested := int64(0)
	if cn.tix == nil || cn.tix.version != cn.CC.Version() || cn.tix.n != len(cn.Q.Bindings) {
		byRep := make(map[int][]int, len(cn.Q.Bindings))
		for i, tb := range cn.Q.Bindings {
			r := cn.CC.Rep(tb.Range) // interned already: no union possible
			byRep[r] = append(byRep[r], i)
		}
		tested += int64(len(cn.Q.Bindings))
		cn.tix = &targetIndex{version: cn.CC.Version(), n: len(cn.Q.Bindings), byRep: byRep}
	}
	return cn.tix.byRep[rw], tested
}

// NewCanon builds the canonical database of a query, configured from the
// chase options: work done in it counts toward opts.Metrics, and the
// naive flag selects the linear (unseeded) homomorphism scan so that
// naive-vs-incremental measurements stay comparable. Use this for any
// canon whose searches belong to a chase pipeline; the bare NewCanon is
// for standalone use.
func (o Options) NewCanon(q *core.Query) *Canon {
	cn := NewCanon(q)
	cn.Metrics = o.Metrics
	cn.LinearScan = o.Naive
	return cn
}

// NewCanon builds the canonical database of a query.
func NewCanon(q *core.Query) *Canon {
	cc := congruence.New()
	for _, t := range q.AllTerms() {
		cc.Add(t)
	}
	for _, c := range q.Conds {
		cc.Merge(c.L, c.R)
	}
	return &Canon{Q: q, CC: cc}
}

// Hom is a homomorphism: a mapping from source variables to target terms
// (in practice target binding variables) such that memberships and
// conditions of the source hold in the target's canonical database.
type Hom map[string]*core.Term

// Clone copies the homomorphism.
func (h Hom) Clone() Hom {
	n := make(Hom, len(h))
	for k, v := range h {
		n[k] = v
	}
	return n
}

// subst converts the homomorphism into a term substitution.
func (h Hom) subst() map[string]*core.Term { return h }

// Apply applies the homomorphism to a term.
func (h Hom) Apply(t *core.Term) *core.Term { return t.Subst(h.subst()) }

// Key returns a canonical string for deduplicating homomorphisms.
func (h Hom) Key() string {
	keys := make([]string, 0, len(h))
	for k := range h {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	s := ""
	for _, k := range keys {
		s += k + "->" + h[k].HashKey() + ";"
	}
	return s
}

// Holds reports whether the condition, transported along h, is implied by
// the canonical database.
func (cn *Canon) Holds(h Hom, c core.Cond) bool {
	return cn.CC.Same(h.Apply(c.L), h.Apply(c.R))
}

// FindHoms enumerates homomorphisms of the given source bindings and
// conditions into the canonical database, starting from the partial
// assignment init (which may be nil). Each source binding variable is
// mapped to some target binding variable whose range is congruent to the
// (transported) source range. At most limit homomorphisms are returned
// (limit <= 0 means no limit).
func (cn *Canon) FindHoms(srcBindings []core.Binding, srcConds []core.Cond, init Hom, limit int) []Hom {
	var out []Hom
	cn.VisitHoms(srcBindings, srcConds, init, func(h Hom) bool {
		out = append(out, h.Clone())
		return limit > 0 && len(out) >= limit
	})
	return out
}

// VisitHoms streams homomorphisms to the visitor, stopping when the
// visitor returns true. It avoids materializing the full (possibly
// exponential) homomorphism set when the caller needs only the first
// match — the chase's applicability test is the hot path.
func (cn *Canon) VisitHoms(srcBindings []core.Binding, srcConds []core.Cond, init Hom, visit func(Hom) bool) {
	cn.visitHoms(srcBindings, srcConds, init, -1, visit)
}

// visitHoms is VisitHoms with an optional semi-naive delta restriction:
// with deltaStart >= 0, only homomorphisms that assign at least one source
// variable to a target binding of index >= deltaStart are visited, in the
// same lexicographic backtracking order as the full enumeration (the
// visited sequence is a subsequence of the full one). The incremental
// chase uses this for dependencies whose only relevant change since their
// last exhausted search is a batch of appended bindings: every older
// homomorphism has already been searched and found conclusion-satisfied,
// a state that is monotone under chase extension, so skipping it is
// sound. deltaStart must only be combined with a nil init (the premise
// search); pre-assigned variables do not pick a target index.
func (cn *Canon) visitHoms(srcBindings []core.Binding, srcConds []core.Cond, init Hom, deltaStart int, visit func(Hom) bool) {
	h := Hom{}
	for k, v := range init {
		h[k] = v
	}
	tested := int64(0)
	var rec func(i int, usedDelta bool) bool // returns true to stop early
	rec = func(i int, usedDelta bool) bool {
		if i == len(srcBindings) {
			if deltaStart >= 0 && !usedDelta {
				return false
			}
			for _, c := range srcConds {
				if !cn.Holds(h, c) {
					return false
				}
			}
			return visit(h)
		}
		sb := srcBindings[i]
		if _, pre := h[sb.Var]; pre {
			// Variable pre-assigned by init (or by an earlier level when a
			// premise repeats a variable): verify membership — some target
			// binding must have a congruent range and a congruent variable.
			// A witness at a delta index counts as delta use: if the first
			// witness is old, the homomorphism existed at the last
			// exhausted search and skipping it stays sound; if only a delta
			// binding witnesses the membership, the homomorphism is new.
			want := h.Apply(sb.Range)
			witness := -1
			got := h[sb.Var]
			for ti, tb := range cn.Q.Bindings {
				tested++
				if cn.CC.Same(tb.Range, want) && cn.CC.Same(core.V(tb.Var), got) {
					witness = ti
					break
				}
			}
			if witness < 0 {
				return false
			}
			return rec(i+1, usedDelta || (deltaStart >= 0 && witness >= deltaStart))
		}
		// On the last level of a delta-restricted search a homomorphism
		// that has not yet used a delta binding can only complete through
		// one, so older targets are skipped wholesale.
		first := 0
		if deltaStart >= 0 && !usedDelta && i == len(srcBindings)-1 {
			first = deltaStart
		}
		want := h.Apply(sb.Range)
		// tryTarget assigns the candidate, applies early condition pruning
		// (conditions all of whose variables are assigned), and descends.
		tryTarget := func(ti int) bool {
			tb := cn.Q.Bindings[ti]
			h[sb.Var] = core.V(tb.Var)
			if cn.condsOK(h, srcConds) {
				if rec(i+1, usedDelta || (deltaStart >= 0 && ti >= deltaStart)) {
					return true
				}
			}
			delete(h, sb.Var)
			return false
		}
		// Seeded scan: only the targets whose range representative matches
		// want's, looked up in the rep-keyed index, instead of backtracking
		// over the whole canonical database. Descending into a candidate
		// can merge classes (condition checks and deeper levels intern
		// transported terms), which may make further targets congruent to
		// want — exactly what the naive re-resolving scan would observe —
		// so a version bump mid-level falls back to the linear scan for
		// the remaining positions.
		linearFrom := 0
		if !cn.LinearScan {
			cands, rebuildCost := cn.targetCandidates(want)
			tested += rebuildCost
			ver := cn.CC.Version()
			linearFrom = len(cn.Q.Bindings)
			for _, ti := range cands {
				if ti < first {
					continue
				}
				tested++
				if tryTarget(ti) {
					return true
				}
				if cn.CC.Version() != ver {
					linearFrom = ti + 1
					break
				}
			}
		}
		for ti := linearFrom; ti < len(cn.Q.Bindings); ti++ {
			if ti < first {
				continue
			}
			tested++
			if cn.CC.Rep(cn.Q.Bindings[ti].Range) != cn.CC.Rep(want) {
				continue
			}
			if tryTarget(ti) {
				return true
			}
		}
		return false
	}
	rec(0, false)
	if cn.Metrics != nil && tested > 0 {
		cn.Metrics.HomTests.Add(tested)
	}
}

// condsOK checks the conditions whose variables are fully assigned by h.
func (cn *Canon) condsOK(h Hom, conds []core.Cond) bool {
	for _, c := range conds {
		if !assigned(h, c.L) || !assigned(h, c.R) {
			continue
		}
		if !cn.Holds(h, c) {
			return false
		}
	}
	return true
}

func assigned(h Hom, t *core.Term) bool {
	for v := range t.Vars() {
		if _, ok := h[v]; !ok {
			return false
		}
	}
	return true
}

// ExtendsToConclusion reports whether the homomorphism of a dependency's
// premise extends to its conclusion inside the canonical database: there
// is an assignment of the conclusion variables to target bindings making
// all conclusion conditions hold.
func (cn *Canon) ExtendsToConclusion(d *core.Dependency, h Hom) bool {
	if d.IsEGD() {
		for _, c := range d.ConclusionConds {
			if !cn.Holds(h, c) {
				return false
			}
		}
		return true
	}
	ext := cn.FindHoms(d.Conclusion, d.ConclusionConds, h, 1)
	return len(ext) > 0
}

// HomsOfQueryInto enumerates containment mappings from query src into this
// canonical database: homomorphisms of src's bindings and conditions whose
// transported output is congruent to out. Used for containment checks.
func (cn *Canon) HomsOfQueryInto(src *core.Query, out *core.Term, limit int) []Hom {
	homs := cn.FindHoms(src.Bindings, src.Conds, nil, 0)
	var ok []Hom
	for _, h := range homs {
		if cn.CC.Same(h.Apply(src.Out), out) {
			ok = append(ok, h)
			if limit > 0 && len(ok) >= limit {
				break
			}
		}
	}
	return ok
}
