package chase

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"cnb/internal/core"
	"cnb/internal/workload"
)

// assertSameChase runs the naive and the incremental engine on the same
// input and requires byte-identical outcomes: same error class, same
// inconsistency flag, same chased query rendering, and the same step
// sequence (dependency names and homomorphism keys) — the strongest form
// of the differential oracle, which also pins the step counts the metrics
// report.
func assertSameChase(t *testing.T, label string, q *core.Query, deps []*core.Dependency, opts Options) {
	t.Helper()
	naiveOpts := opts
	naiveOpts.Naive = true
	naiveOpts.Metrics = &Metrics{}
	incOpts := opts
	incOpts.Naive = false
	incOpts.Metrics = &Metrics{}
	rn, errN := Chase(q, deps, naiveOpts)
	ri, errI := Chase(q, deps, incOpts)
	if (errN == nil) != (errI == nil) {
		t.Fatalf("%s: error mismatch: naive=%v incremental=%v", label, errN, errI)
	}
	if errN != nil {
		bn, okN := errN.(*ErrBudget)
		bi, okI := errI.(*ErrBudget)
		if okN != okI {
			t.Fatalf("%s: error type mismatch: naive=%T incremental=%T", label, errN, errI)
		}
		if okN && (bn.Steps != bi.Steps || bn.Dep != bi.Dep) {
			t.Fatalf("%s: budget mismatch: naive=%+v incremental=%+v", label, bn, bi)
		}
		return
	}
	if rn.Inconsistent != ri.Inconsistent {
		t.Fatalf("%s: inconsistency mismatch: naive=%v incremental=%v", label, rn.Inconsistent, ri.Inconsistent)
	}
	if got, want := ri.Query.String(), rn.Query.String(); got != want {
		t.Fatalf("%s: chased query differs:\nnaive:       %s\nincremental: %s", label, want, got)
	}
	if len(rn.Steps) != len(ri.Steps) {
		t.Fatalf("%s: step count differs: naive=%d incremental=%d", label, len(rn.Steps), len(ri.Steps))
	}
	for i := range rn.Steps {
		if rn.Steps[i].Dep != ri.Steps[i].Dep || rn.Steps[i].Hom.Key() != ri.Steps[i].Hom.Key() {
			t.Fatalf("%s: step %d differs: naive=%s/%s incremental=%s/%s", label, i,
				rn.Steps[i].Dep, rn.Steps[i].Hom.Key(), ri.Steps[i].Dep, ri.Steps[i].Hom.Key())
		}
	}
	if ns, is := naiveOpts.Metrics.ChaseSteps.Load(), incOpts.Metrics.ChaseSteps.Load(); ns != is {
		t.Fatalf("%s: metrics step count differs: naive=%d incremental=%d", label, ns, is)
	}
}

// mutateQuery derives a chase input from a workload query: occasionally
// drop a condition (the chase re-derives structure differently) or equate
// two row variables (exercises EGD-heavy merge cascades in the delta
// bookkeeping).
func mutateQuery(r *rand.Rand, q *core.Query) *core.Query {
	m := q.Clone()
	if len(m.Conds) > 0 && r.Intn(3) == 0 {
		i := r.Intn(len(m.Conds))
		m.Conds = append(m.Conds[:i:i], m.Conds[i+1:]...)
	}
	if len(m.Bindings) >= 2 && r.Intn(3) == 0 {
		a := m.Bindings[r.Intn(len(m.Bindings))].Var
		b := m.Bindings[r.Intn(len(m.Bindings))].Var
		if a != b {
			m.Conds = append(m.Conds, core.Cond{L: core.V(a), R: core.V(b)})
		}
	}
	if m.Validate() != nil {
		return q.Clone()
	}
	return m
}

// TestIncrementalChaseDifferentialRandomized is the naive-vs-incremental
// gate over the chain/star/snowflake dependency families: >= 100
// randomized cases, each requiring byte-identical chase results and step
// sequences. Covers terminating chases, EGD merge cascades (mutated
// queries), and budget-tripping runs.
func TestIncrementalChaseDifferentialRandomized(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	cases := 0

	// Chain family: n-way joins with adjacent-pair views.
	for n := 2; n <= 8; n++ {
		for views := 1; views < n && views <= 4; views++ {
			c, err := workload.NewChain(n, views)
			if err != nil {
				t.Fatal(err)
			}
			label := fmt.Sprintf("chain n=%d v=%d", n, views)
			opts := Options{MaxSteps: 2048, MaxBindings: 2048}
			assertSameChase(t, label, c.Q, c.Deps, opts)
			assertSameChase(t, label+" mutated", mutateQuery(r, c.Q), c.Deps, opts)
			cases += 2
		}
	}

	// Star/snowflake family: random configurations (indexes, views,
	// outriggers, FK constraints) via the calibration-suite generator.
	for i := 0; i < 70; i++ {
		cfg, _ := workload.RandomStar(r)
		s, err := workload.NewStar(cfg)
		if err != nil {
			t.Fatal(err)
		}
		label := fmt.Sprintf("star case %d (%+v)", i, cfg)
		assertSameChase(t, label, s.Q, s.Deps, Options{})
		assertSameChase(t, label+" mutated", mutateQuery(r, s.Q), s.Deps, Options{})
		cases += 2
	}

	// Budget-tripping runs: both engines must trip at the same step with
	// the same firing dependency.
	inf := &core.Dependency{
		Name:            "inf",
		Premise:         []core.Binding{{Var: "x", Range: core.Name("R")}},
		Conclusion:      []core.Binding{{Var: "y", Range: core.Name("R")}},
		ConclusionConds: []core.Cond{{L: core.Prj(core.V("y"), "Next"), R: core.V("x")}},
	}
	divergent := &core.Query{
		Out:      core.C(true),
		Bindings: []core.Binding{{Var: "r", Range: core.Name("R")}},
	}
	assertSameChase(t, "budget", divergent, []*core.Dependency{inf}, Options{MaxSteps: 20})
	cases++

	if cases < 100 {
		t.Fatalf("differential suite ran only %d cases, want >= 100", cases)
	}
}

// TestDepIndexPremiseUnderMultipleNames pins the index shape: a
// dependency whose premise mentions several schema names (a materialized
// view over a join) must be reachable from every one of them, and a
// dependency whose premise atoms are dictionary-shaped must be indexed
// under both the dictionary name and the var-rooted shape keys of its
// condition sides.
func TestDepIndexPremiseUnderMultipleNames(t *testing.T) {
	v, n, prj := core.V, core.Name, core.Prj
	viewFwd := &core.Dependency{
		Name: "PhiV",
		Premise: []core.Binding{
			{Var: "f", Range: n("Fact")},
			{Var: "d", Range: n("D0")},
		},
		PremiseConds: []core.Cond{{L: prj(v("f"), "K0"), R: prj(v("d"), "K")}},
		Conclusion:   []core.Binding{{Var: "w", Range: n("V0")}},
		ConclusionConds: []core.Cond{
			{L: v("w"), R: core.Struct(core.SF("M", prj(v("f"), "M")))},
		},
	}
	idxInv := &core.Dependency{
		Name: "PhiSIInv",
		Premise: []core.Binding{
			{Var: "k", Range: core.Dom(n("SI"))},
			{Var: "s", Range: core.Lk(n("SI"), v("k"))},
		},
		Conclusion:      []core.Binding{{Var: "r", Range: n("Fact")}},
		ConclusionConds: []core.Cond{{L: v("k"), R: prj(v("r"), "K0")}, {L: v("r"), R: v("s")}},
	}
	ix := NewDepIndex([]*core.Dependency{viewFwd, idxInv})

	has := func(feat string, dep int) bool {
		for _, di := range ix.DepsForFeature(feat) {
			if di == dep {
				return true
			}
		}
		return false
	}
	// The view premise is reachable from both joined relations and from
	// the var-rooted projection shapes of its join condition.
	for _, feat := range []string{"!Fact", "!D0", ".K0", ".K"} {
		if !has(feat, 0) {
			t.Errorf("view dependency not indexed under %q", feat)
		}
	}
	// Conclusion-only names must NOT index the premise: the view output
	// V0 cannot enable a premise match.
	if has("!V0", 0) {
		t.Error("view dependency indexed under its conclusion name V0")
	}
	// The index-inverse premise mentions SI twice (dom(SI) and SI[k]):
	// indexed under the name exactly once.
	if got := ix.DepsForFeature("!SI"); len(got) != 1 || got[0] != 1 {
		t.Errorf("DepsForFeature(!SI) = %v, want exactly [1]", got)
	}
	for _, di := range ix.DepsForFeature("!Fact") {
		if di == 1 {
			t.Error("index-inverse dependency indexed under conclusion name Fact")
		}
	}
}

// TestDepIndexDirtyOnEveryPremiseName asserts the semantics the index
// exists for: a chase step touching ANY name of a multi-name premise
// re-enables the dependency. The view can only fire after both Fact and
// D0 facts exist; deriving the D0 fact last (through an FK constraint)
// must still wake the view dependency up.
func TestDepIndexDirtyOnEveryPremiseName(t *testing.T) {
	v, n, prj := core.V, core.Name, core.Prj
	ric := &core.Dependency{
		Name:            "RIC",
		Premise:         []core.Binding{{Var: "f", Range: n("Fact")}},
		Conclusion:      []core.Binding{{Var: "d", Range: n("D0")}},
		ConclusionConds: []core.Cond{{L: prj(v("f"), "K0"), R: prj(v("d"), "K")}},
	}
	viewFwd := &core.Dependency{
		Name: "PhiV",
		Premise: []core.Binding{
			{Var: "f", Range: n("Fact")},
			{Var: "d", Range: n("D0")},
		},
		PremiseConds: []core.Cond{{L: prj(v("f"), "K0"), R: prj(v("d"), "K")}},
		Conclusion:   []core.Binding{{Var: "w", Range: n("V0")}},
		ConclusionConds: []core.Cond{
			{L: v("w"), R: core.Struct(core.SF("M", prj(v("f"), "M")))},
		},
	}
	q := &core.Query{
		Out:      core.C(true),
		Bindings: []core.Binding{{Var: "f", Range: n("Fact")}},
	}
	deps := []*core.Dependency{viewFwd, ric}
	res, err := Chase(q, deps, Options{})
	if err != nil {
		t.Fatal(err)
	}
	fired := map[string]bool{}
	for _, s := range res.Steps {
		fired[s.Dep] = true
	}
	// The view dependency is scanned first (no D0 fact yet: clean), RIC
	// fires adding the D0 binding, and the delta must re-dirty the view
	// through the !D0 feature so it fires next.
	if !fired["RIC"] || !fired["PhiV"] {
		t.Fatalf("expected RIC then PhiV to fire, got steps %v", res.Steps)
	}
	if res.Steps[0].Dep != "RIC" || res.Steps[1].Dep != "PhiV" {
		t.Fatalf("step order = %v, want RIC before PhiV", res.Steps)
	}
	assertSameChase(t, "view wakeup", q, deps, Options{})
}

// TestDeltaDirtyUpToCongruence is the regression for the premature
// fixpoint found in review: a new binding's range can satisfy a premise
// membership test through a term that is congruent but structurally
// different (here d0.A ≡ d0.B via the query condition), so the delta
// must be matched against the feature keys of the range's whole
// congruence class, not just the range term itself. With term-level
// features only, R (indexed under ".B") is never re-dirtied by the
// binding u_1 in d0.A that P adds, and the incremental engine stops
// after 1 step while the naive engine takes 2.
func TestDeltaDirtyUpToCongruence(t *testing.T) {
	v, n, prj := core.V, core.Name, core.Prj
	q := &core.Query{
		Out:      core.C(true),
		Bindings: []core.Binding{{Var: "d", Range: n("Depts")}},
		Conds:    []core.Cond{{L: prj(v("d"), "A"), R: prj(v("d"), "B")}},
	}
	depR := &core.Dependency{
		Name: "R",
		Premise: []core.Binding{
			{Var: "d", Range: n("Depts")},
			{Var: "v", Range: prj(v("d"), "B")},
		},
		Conclusion: []core.Binding{{Var: "w", Range: prj(v("v"), "C")}},
	}
	depP := &core.Dependency{
		Name:       "P",
		Premise:    []core.Binding{{Var: "d", Range: n("Depts")}},
		Conclusion: []core.Binding{{Var: "u", Range: prj(v("d"), "A")}},
	}
	deps := []*core.Dependency{depR, depP}
	res, err := Chase(q, deps, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Steps) != 2 || res.Steps[0].Dep != "P" || res.Steps[1].Dep != "R" {
		t.Fatalf("steps = %v, want P then R (R re-enabled through the congruence class of d0.A)", res.Steps)
	}
	assertSameChase(t, "congruent delta", q, deps, Options{})
}

// TestDeltaDirtyRepeatedPremiseVar covers the other congruence-level
// test a premise can pose: a repeated premise variable adds a var≡var
// witness check, which an EGD can flip by merging two binding-variable
// classes — a union whose feature log contains only the variable key.
// The dependency must therefore be indexed under core.FeatVar. Here S is
// searched and marked clean before T's step enables the EGD E; E merges
// x and y, and only the "?" feature connects that union back to S.
// (core.Dependency.Validate rejects duplicate premise vars, but the
// chase engines accept unvalidated dependencies and enumerate the
// witness test for them — both engines must keep agreeing on the shape.)
func TestDeltaDirtyRepeatedPremiseVar(t *testing.T) {
	v, n, prj := core.V, core.Name, core.Prj
	q := &core.Query{
		Out: core.C(true),
		Bindings: []core.Binding{
			{Var: "d", Range: n("Depts")},
			{Var: "x", Range: prj(v("d"), "B")},
			{Var: "y", Range: prj(v("d"), "C")},
		},
	}
	depS := &core.Dependency{
		Name: "S",
		Premise: []core.Binding{
			{Var: "d", Range: n("Depts")},
			{Var: "v", Range: prj(v("d"), "B")},
			{Var: "v", Range: prj(v("d"), "C")},
		},
		Conclusion: []core.Binding{{Var: "w", Range: prj(v("v"), "C2")}},
	}
	depT := &core.Dependency{
		Name:       "T",
		Premise:    []core.Binding{{Var: "d", Range: n("Depts")}},
		Conclusion: []core.Binding{{Var: "z", Range: prj(v("d"), "D")}},
	}
	depE := &core.Dependency{
		Name: "E",
		Premise: []core.Binding{
			{Var: "d", Range: n("Depts")},
			{Var: "z", Range: prj(v("d"), "D")},
			{Var: "x", Range: prj(v("d"), "B")},
			{Var: "y", Range: prj(v("d"), "C")},
		},
		ConclusionConds: []core.Cond{{L: v("x"), R: v("y")}},
	}
	deps := []*core.Dependency{depS, depT, depE}
	res, err := Chase(q, deps, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Steps) != 3 || res.Steps[0].Dep != "T" || res.Steps[1].Dep != "E" || res.Steps[2].Dep != "S" {
		t.Fatalf("steps = %v, want T, E, S (S re-enabled by the x≡y union through FeatVar)", res.Steps)
	}
	assertSameChase(t, "repeated premise var", q, deps, Options{})
}

// TestDeltaDirtyConstantPremise covers the constant feature key: a
// premise atom over a bare constant ("v in x") contributes no name or
// var-rooted shape key, so without a key for the constant itself the
// dependency is unreachable from any delta. All three wake-up paths are
// exercised: a new binding whose range IS the constant, a new binding
// whose range is congruent to it, and an EGD union joining the
// constant's class with a projection class.
func TestDeltaDirtyConstantPremise(t *testing.T) {
	v, n, prj := core.V, core.Name, core.Prj
	x := core.C("x")
	depR := &core.Dependency{
		Name: "R",
		Premise: []core.Binding{
			{Var: "d", Range: n("Depts")},
			{Var: "v", Range: x},
		},
		Conclusion: []core.Binding{{Var: "w", Range: prj(v("v"), "C")}},
	}

	// Path 1: P adds a binding ranging over the constant itself.
	q := &core.Query{
		Out:      core.C(true),
		Bindings: []core.Binding{{Var: "d", Range: n("Depts")}},
		Conds:    []core.Cond{{L: prj(v("d"), "A"), R: x}},
	}
	constP := &core.Dependency{
		Name:       "P",
		Premise:    []core.Binding{{Var: "d", Range: n("Depts")}},
		Conclusion: []core.Binding{{Var: "u", Range: x}},
	}
	deps := []*core.Dependency{depR, constP}
	res, err := Chase(q, deps, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Steps) != 2 || res.Steps[1].Dep != "R" {
		t.Fatalf("constant range: steps = %v, want P then R", res.Steps)
	}
	assertSameChase(t, "constant range delta", q, deps, Options{})

	// Path 2: P adds a binding over d.A, congruent to the constant via
	// the query condition d.A = "x".
	projP := &core.Dependency{
		Name:       "P",
		Premise:    []core.Binding{{Var: "d", Range: n("Depts")}},
		Conclusion: []core.Binding{{Var: "u", Range: prj(v("d"), "A")}},
	}
	deps = []*core.Dependency{depR, projP}
	res, err = Chase(q, deps, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Steps) != 2 || res.Steps[1].Dep != "R" {
		t.Fatalf("congruent-to-constant range: steps = %v, want P then R", res.Steps)
	}
	assertSameChase(t, "congruent constant delta", q, deps, Options{})

	// Path 3: the congruence to the constant arrives by EGD union after R
	// was searched and marked clean — the union's feature log must carry
	// the constant's key, since the projection class alone logs only ".A".
	qe := &core.Query{
		Out: core.C(true),
		Bindings: []core.Binding{
			{Var: "d", Range: n("Depts")},
			{Var: "u", Range: prj(v("d"), "A")},
		},
	}
	depT := &core.Dependency{
		Name:       "T",
		Premise:    []core.Binding{{Var: "d", Range: n("Depts")}},
		Conclusion: []core.Binding{{Var: "z", Range: prj(v("d"), "D")}},
	}
	depE := &core.Dependency{
		Name: "E",
		Premise: []core.Binding{
			{Var: "d", Range: n("Depts")},
			{Var: "z", Range: prj(v("d"), "D")},
		},
		ConclusionConds: []core.Cond{{L: prj(v("d"), "A"), R: x}},
	}
	deps = []*core.Dependency{depR, depT, depE}
	res, err = Chase(qe, deps, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Steps) != 3 || res.Steps[0].Dep != "T" || res.Steps[1].Dep != "E" || res.Steps[2].Dep != "R" {
		t.Fatalf("EGD union with constant: steps = %v, want T, E, R", res.Steps)
	}
	assertSameChase(t, "constant union", qe, deps, Options{})
}

// TestDeltaDirtyStructPremise covers the struct shape key: a premise
// atom v in struct(A: w) over premise vars has no name, constant, or
// var-rooted key — only the constructor's field list can connect it to a
// delta. P appends a binding ranging over struct(A: "x"), which matches
// the atom under w -> u precisely because u ≡ "x"; without the
// "struct:A" key on both sides R is unreachable and the incremental
// engine stops a step early.
func TestDeltaDirtyStructPremise(t *testing.T) {
	v, n, prj := core.V, core.Name, core.Prj
	x := core.C("x")
	q := &core.Query{
		Out: core.C(true),
		Bindings: []core.Binding{
			{Var: "d", Range: n("Depts")},
			{Var: "u", Range: prj(v("d"), "K")},
		},
		Conds: []core.Cond{{L: v("u"), R: x}},
	}
	depR := &core.Dependency{
		Name: "R",
		Premise: []core.Binding{
			{Var: "d", Range: n("Depts")},
			{Var: "w", Range: prj(v("d"), "K")},
			{Var: "v", Range: core.Struct(core.SF("A", v("w")))},
		},
		Conclusion: []core.Binding{{Var: "z", Range: prj(v("v"), "C")}},
	}
	depP := &core.Dependency{
		Name:       "P",
		Premise:    []core.Binding{{Var: "d", Range: n("Depts")}},
		Conclusion: []core.Binding{{Var: "s", Range: core.Struct(core.SF("A", x))}},
	}
	deps := []*core.Dependency{depR, depP}
	res, err := Chase(q, deps, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Steps) != 2 || res.Steps[1].Dep != "R" {
		t.Fatalf("struct premise: steps = %v, want P then R", res.Steps)
	}
	assertSameChase(t, "struct premise delta", q, deps, Options{})
}

// TestErrBudgetReportsFiringDep asserts the diagnosable-budget satellite:
// a non-terminating dependency set names the runaway dependency in both
// the typed error and its message.
func TestErrBudgetReportsFiringDep(t *testing.T) {
	inf := &core.Dependency{
		Name:            "runaway_dep",
		Premise:         []core.Binding{{Var: "x", Range: core.Name("R")}},
		Conclusion:      []core.Binding{{Var: "y", Range: core.Name("R")}},
		ConclusionConds: []core.Cond{{L: core.Prj(core.V("y"), "Next"), R: core.V("x")}},
	}
	q := &core.Query{
		Out:      core.C(true),
		Bindings: []core.Binding{{Var: "r", Range: core.Name("R")}},
	}
	for _, naive := range []bool{false, true} {
		_, err := Chase(q, []*core.Dependency{inf}, Options{MaxSteps: 10, Naive: naive})
		be, ok := err.(*ErrBudget)
		if !ok {
			t.Fatalf("naive=%v: error = %v, want *ErrBudget", naive, err)
		}
		if be.Dep != "runaway_dep" {
			t.Errorf("naive=%v: ErrBudget.Dep = %q, want runaway_dep", naive, be.Dep)
		}
		if !strings.Contains(err.Error(), "runaway_dep") {
			t.Errorf("naive=%v: message %q does not name the firing dependency", naive, err)
		}
	}
	// Budget exhausted before any step: no dependency to blame.
	_, err := Chase(q, nil, Options{MaxBindings: -1})
	if be, ok := err.(*ErrBudget); !ok || be.Dep != "" {
		t.Errorf("stepless budget trip: err = %v, want ErrBudget with empty Dep", err)
	}
}
