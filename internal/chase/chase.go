package chase

import (
	"context"
	"fmt"

	"cnb/internal/core"
)

// Options tunes the chase fixpoint.
type Options struct {
	// MaxSteps bounds the number of applied chase steps. The paper shows
	// the chase with full dependencies applies only polynomially many
	// steps; the bound is a safety net for non-full sets. Zero means the
	// default (256).
	MaxSteps int
	// MaxBindings aborts if the chased query grows beyond this many
	// bindings (runaway non-terminating chase). Zero means default (512).
	MaxBindings int
}

func (o Options) withDefaults() Options {
	if o.MaxSteps == 0 {
		o.MaxSteps = 256
	}
	if o.MaxBindings == 0 {
		o.MaxBindings = 512
	}
	return o
}

// Step records one applied chase step for diagnostics.
type Step struct {
	Dep string // dependency name
	Hom Hom    // premise homomorphism it fired under
}

// Result is the outcome of a chase run.
type Result struct {
	Query *core.Query
	Steps []Step
	// Inconsistent is set when an EGD attempted to equate two distinct
	// constants: no database satisfies the dependencies and the query
	// facts simultaneously, so the query is empty on all valid instances.
	Inconsistent bool
}

// ErrBudget is returned when the chase exceeds its step or size budget
// without reaching a fixpoint.
type ErrBudget struct {
	Steps    int
	Bindings int
}

func (e *ErrBudget) Error() string {
	return fmt.Sprintf("chase: budget exhausted after %d steps (%d bindings); dependency set may not terminate", e.Steps, e.Bindings)
}

// Chase runs the standard chase of q with the dependencies to fixpoint:
// while some dependency has a premise homomorphism into the canonical
// database of the current query that does not extend to its conclusion,
// apply it. Returns the chased query (the universal plan when the
// dependency set captures the physical schema).
//
// EGDs are applied with priority over TGDs (the standard chase
// discipline): deriving equalities first keeps existential conclusions
// satisfiable by existing bindings and so keeps the universal plan small.
//
// The canonical database is grown incrementally: chase steps only add
// bindings and conditions, and the congruence closure is monotone, so it
// is never rebuilt.
//
// The input query is not modified.
func Chase(q *core.Query, deps []*core.Dependency, opts Options) (*Result, error) {
	return ChaseContext(context.Background(), q, deps, opts)
}

// ChaseContext is Chase with cancellation: the context is consulted
// before every chase step, so a cancelled context interrupts even
// long-running fixpoints promptly. It returns ctx.Err() on cancellation.
func ChaseContext(ctx context.Context, q *core.Query, deps []*core.Dependency, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	cur := q.Clone()
	res := &Result{}
	egds, tgds := splitEGDs(deps)
	cn := NewCanon(cur)
	for steps := 0; ; steps++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if steps >= opts.MaxSteps {
			return nil, &ErrBudget{Steps: steps, Bindings: len(cur.Bindings)}
		}
		if len(cur.Bindings) > opts.MaxBindings {
			return nil, &ErrBudget{Steps: steps, Bindings: len(cur.Bindings)}
		}
		if _, _, clash := cn.CC.ConstantClash(); clash {
			res.Query = cur
			res.Inconsistent = true
			return res, nil
		}
		dep, hom := findApplicable(cn, egds)
		if dep == nil {
			dep, hom = findApplicable(cn, tgds)
		}
		if dep == nil {
			res.Query = cur
			return res, nil
		}
		next := applyStep(cur, dep, hom)
		// Extend the canonical database with the new facts only.
		for _, b := range next.Bindings[len(cur.Bindings):] {
			cn.CC.Add(b.Range)
			cn.CC.Add(core.V(b.Var))
		}
		for _, c := range next.Conds[len(cur.Conds):] {
			cn.CC.Merge(c.L, c.R)
		}
		cur = next
		cn.Q = cur
		res.Steps = append(res.Steps, Step{Dep: dep.Name, Hom: hom})
	}
}

func splitEGDs(deps []*core.Dependency) (egds, tgds []*core.Dependency) {
	for _, d := range deps {
		if d.IsEGD() {
			egds = append(egds, d)
		} else {
			tgds = append(tgds, d)
		}
	}
	return egds, tgds
}

// findApplicable returns the first dependency (in order) with a premise
// homomorphism that does not extend to its conclusion, together with that
// homomorphism. Determinism: dependencies are scanned in slice order and
// homomorphisms in the backtracking order of VisitHoms. The search streams
// homomorphisms and stops at the first applicable one.
func findApplicable(cn *Canon, deps []*core.Dependency) (*core.Dependency, Hom) {
	for _, d := range deps {
		var found Hom
		cn.VisitHoms(d.Premise, d.PremiseConds, nil, func(h Hom) bool {
			if !cn.ExtendsToConclusion(d, h) {
				found = h.Clone()
				return true
			}
			return false
		})
		if found != nil {
			return d, found
		}
	}
	return nil, nil
}

// applyStep applies one chase step, returning the extended query. For a
// TGD it adds the conclusion bindings (with fresh variables) and
// conditions; for an EGD it adds the equalities. Constant clashes caused
// by EGDs are detected by the caller on the next iteration's canonical
// database.
func applyStep(q *core.Query, d *core.Dependency, h Hom) *core.Query {
	next := q.Clone()
	if d.IsEGD() {
		for _, c := range d.ConclusionConds {
			next.Conds = append(next.Conds, core.Cond{L: h.Apply(c.L), R: h.Apply(c.R)})
		}
		return next
	}
	// Freshen the conclusion variables against the query's bound vars.
	avoid := q.BoundVars()
	for v := range h {
		avoid[v] = true
	}
	fresh := core.FreshRenaming("", avoid)
	sub := h.Clone()
	for _, b := range d.Conclusion {
		nv := fresh(b.Var)
		next.Bindings = append(next.Bindings, core.Binding{
			Var:   nv,
			Range: b.Range.Subst(sub),
		})
		sub[b.Var] = core.V(nv)
	}
	for _, c := range d.ConclusionConds {
		next.Conds = append(next.Conds, core.Cond{L: c.L.Subst(sub), R: c.R.Subst(sub)})
	}
	return next
}

// Applicable reports whether any dependency is applicable to the query —
// i.e. whether the query is not yet a chase fixpoint.
func Applicable(q *core.Query, deps []*core.Dependency) bool {
	cn := NewCanon(q)
	d, _ := findApplicable(cn, deps)
	return d != nil
}

// Implies decides whether the dependency d is implied by the set deps,
// using the chase: view d's premise as a boolean query, chase it with
// deps, and test whether d's conclusion holds in the result (§3: "trying
// to see whether the constraint is implied by the existing ones can be
// done with the chase when constraints are viewed as boolean-valued
// queries"). Sound always; complete when the chase terminates.
func Implies(deps []*core.Dependency, d *core.Dependency, opts Options) (bool, error) {
	pq := d.PremiseQuery()
	res, err := Chase(pq, deps, opts)
	if err != nil {
		return false, err
	}
	if res.Inconsistent {
		// Premise unsatisfiable: implication holds vacuously.
		return true, nil
	}
	cn := NewCanon(res.Query)
	// Identity on the premise variables.
	id := Hom{}
	for _, b := range d.Premise {
		id[b.Var] = core.V(b.Var)
	}
	return cn.ExtendsToConclusion(d, id), nil
}

// Trivial reports whether the dependency holds in all instances (is
// implied by the empty set of dependencies). Backchasing by virtue of
// trivial constraints is exactly tableau minimization (§3).
func Trivial(d *core.Dependency, opts Options) (bool, error) {
	return Implies(nil, d, opts)
}
