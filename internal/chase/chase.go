package chase

import (
	"context"
	"fmt"

	"cnb/internal/core"
)

// Options tunes the chase fixpoint.
type Options struct {
	// MaxSteps bounds the number of applied chase steps. The paper shows
	// the chase with full dependencies applies only polynomially many
	// steps; the bound is a safety net for non-full sets. Zero means the
	// default (256).
	MaxSteps int
	// MaxBindings aborts if the chased query grows beyond this many
	// bindings (runaway non-terminating chase). Zero means default (512).
	MaxBindings int
	// Metrics, when non-nil, accumulates work counters (hom tests, chase
	// steps) across runs. Safe to share between concurrent chases; has no
	// effect on results, so it does not participate in cache keys.
	Metrics *Metrics
	// Naive forces the textbook fixpoint that rescans every dependency
	// and restarts homomorphism search from scratch at each step, instead
	// of the delta-driven incremental engine. The two produce byte-
	// identical results and step sequences (the naive-vs-incremental
	// differential suite gates this); the flag exists for that suite and
	// for A/B work measurements (E15). It does not participate in cache
	// keys.
	Naive bool
}

func (o Options) withDefaults() Options {
	if o.MaxSteps == 0 {
		o.MaxSteps = 256
	}
	if o.MaxBindings == 0 {
		o.MaxBindings = 512
	}
	return o
}

// Step records one applied chase step for diagnostics.
type Step struct {
	Dep string // dependency name
	Hom Hom    // premise homomorphism it fired under
}

// Result is the outcome of a chase run.
type Result struct {
	Query *core.Query
	Steps []Step
	// Inconsistent is set when an EGD attempted to equate two distinct
	// constants: no database satisfies the dependencies and the query
	// facts simultaneously, so the query is empty on all valid instances.
	Inconsistent bool
}

// ErrBudget is returned when the chase exceeds its step or size budget
// without reaching a fixpoint.
type ErrBudget struct {
	Steps    int
	Bindings int
	// Dep names the dependency that fired the last applied step — for a
	// non-terminating dependency set, the one driving the runaway loop.
	// Empty only if the budget was exhausted before any step applied
	// (MaxBindings smaller than the input query).
	Dep string
}

func (e *ErrBudget) Error() string {
	msg := fmt.Sprintf("chase: budget exhausted after %d steps (%d bindings)", e.Steps, e.Bindings)
	if e.Dep != "" {
		msg += fmt.Sprintf(", last firing dependency %s", e.Dep)
	}
	return msg + "; dependency set may not terminate"
}

// Chase runs the standard chase of q with the dependencies to fixpoint:
// while some dependency has a premise homomorphism into the canonical
// database of the current query that does not extend to its conclusion,
// apply it. Returns the chased query (the universal plan when the
// dependency set captures the physical schema).
//
// EGDs are applied with priority over TGDs (the standard chase
// discipline): deriving equalities first keeps existential conclusions
// satisfiable by existing bindings and so keeps the universal plan small.
//
// The canonical database is grown incrementally: chase steps only add
// bindings and conditions, and the congruence closure is monotone, so it
// is never rebuilt.
//
// The input query is not modified.
func Chase(q *core.Query, deps []*core.Dependency, opts Options) (*Result, error) {
	return ChaseContext(context.Background(), q, deps, opts)
}

// ChaseContext is Chase with cancellation: the context is consulted
// before every chase step, so a cancelled context interrupts even
// long-running fixpoints promptly. It returns ctx.Err() on cancellation.
//
// Each call builds a fresh dependency index; callers chasing many queries
// against one fixed dependency set (the backchase, the optimizer) should
// build the index once with NewDepIndex and use ChaseIndexed.
func ChaseContext(ctx context.Context, q *core.Query, deps []*core.Dependency, opts Options) (*Result, error) {
	return ChaseIndexed(ctx, q, NewDepIndex(deps), opts)
}

func splitEGDs(deps []*core.Dependency) (egds, tgds []*core.Dependency) {
	for _, d := range deps {
		if d.IsEGD() {
			egds = append(egds, d)
		} else {
			tgds = append(tgds, d)
		}
	}
	return egds, tgds
}

// findApplicable returns the first dependency (in order) with a premise
// homomorphism that does not extend to its conclusion, together with that
// homomorphism. Determinism: dependencies are scanned in slice order and
// homomorphisms in the backtracking order of VisitHoms. The search streams
// homomorphisms and stops at the first applicable one.
func findApplicable(cn *Canon, deps []*core.Dependency) (*core.Dependency, Hom) {
	for _, d := range deps {
		var found Hom
		cn.VisitHoms(d.Premise, d.PremiseConds, nil, func(h Hom) bool {
			if !cn.ExtendsToConclusion(d, h) {
				found = h.Clone()
				return true
			}
			return false
		})
		if found != nil {
			return d, found
		}
	}
	return nil, nil
}

// applyStep applies one chase step, returning the extended query. For a
// TGD it adds the conclusion bindings (with fresh variables) and
// conditions; for an EGD it adds the equalities. Constant clashes caused
// by EGDs are detected by the caller on the next iteration's canonical
// database.
func applyStep(q *core.Query, d *core.Dependency, h Hom) *core.Query {
	next := q.Clone()
	if d.IsEGD() {
		for _, c := range d.ConclusionConds {
			next.Conds = append(next.Conds, core.Cond{L: h.Apply(c.L), R: h.Apply(c.R)})
		}
		return next
	}
	// Freshen the conclusion variables against the query's bound vars.
	avoid := q.BoundVars()
	for v := range h {
		avoid[v] = true
	}
	fresh := core.FreshRenaming("", avoid)
	sub := h.Clone()
	for _, b := range d.Conclusion {
		nv := fresh(b.Var)
		next.Bindings = append(next.Bindings, core.Binding{
			Var:   nv,
			Range: b.Range.Subst(sub),
		})
		sub[b.Var] = core.V(nv)
	}
	for _, c := range d.ConclusionConds {
		next.Conds = append(next.Conds, core.Cond{L: c.L.Subst(sub), R: c.R.Subst(sub)})
	}
	return next
}

// Applicable reports whether any dependency is applicable to the query —
// i.e. whether the query is not yet a chase fixpoint.
func Applicable(q *core.Query, deps []*core.Dependency) bool {
	cn := NewCanon(q)
	d, _ := findApplicable(cn, deps)
	return d != nil
}

// Implies decides whether the dependency d is implied by the set deps,
// using the chase: view d's premise as a boolean query, chase it with
// deps, and test whether d's conclusion holds in the result (§3: "trying
// to see whether the constraint is implied by the existing ones can be
// done with the chase when constraints are viewed as boolean-valued
// queries"). Sound always; complete when the chase terminates.
func Implies(deps []*core.Dependency, d *core.Dependency, opts Options) (bool, error) {
	pq := d.PremiseQuery()
	res, err := Chase(pq, deps, opts)
	if err != nil {
		return false, err
	}
	if res.Inconsistent {
		// Premise unsatisfiable: implication holds vacuously.
		return true, nil
	}
	cn := NewCanon(res.Query)
	// Identity on the premise variables.
	id := Hom{}
	for _, b := range d.Premise {
		id[b.Var] = core.V(b.Var)
	}
	return cn.ExtendsToConclusion(d, id), nil
}

// Trivial reports whether the dependency holds in all instances (is
// implied by the empty set of dependencies). Backchasing by virtue of
// trivial constraints is exactly tableau minimization (§3).
func Trivial(d *core.Dependency, opts Options) (bool, error) {
	return Implies(nil, d, opts)
}
