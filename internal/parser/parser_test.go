package parser

import (
	"strings"
	"testing"

	"cnb/internal/chase"
	"cnb/internal/core"
	"cnb/internal/eval"
	"cnb/internal/optimizer"
	"cnb/internal/workload"
)

// projDeptSource is the paper's running example in the surface syntax.
const projDeptSource = `
-- Figure 2: the logical ProjDept schema.
schema Logical {
  Proj  : set<{PName: string, CustName: string, PDept: string, Budg: int}>;
  depts : set<{DName: string, DProjs: set<string>, MgrName: string}>;

  constraint RIC1:
    forall (d in depts, s in d.DProjs) exists (p in Proj) s = p.PName;
  constraint RIC2:
    forall (p in Proj) exists (d in depts) p.PDept = d.DName;
  constraint INV1:
    forall (d in depts, s in d.DProjs, p in Proj) s = p.PName -> p.PDept = d.DName;
  constraint INV2:
    forall (p in Proj, d in depts) p.PDept = d.DName -> exists (s in d.DProjs) p.PName = s;
  constraint KEY1:
    forall (a in depts, b in depts) a.DName = b.DName -> a = b;
  constraint KEY2:
    forall (a in Proj, b in Proj) a.PName = b.PName -> a = b;
}

-- Figure 3: the physical design.
design Phys over Logical {
  store Proj;
  classdict Dept for depts oid Doid;
  primary index I on Proj(PName);
  secondary index SI on Proj(CustName);
  view JI: select struct(DOID: dd, PN: p.PName)
           from dom(Dept) dd, Dept[dd].DProjs s, Proj p
           where s = p.PName;
}

query Q:
  select struct(PN: s, PB: p.Budg, DN: d.DName)
  from depts d, d.DProjs s, Proj p
  where s = p.PName and p.CustName = "CitiBank";
`

func TestParseProjDept(t *testing.T) {
	doc, err := Parse(projDeptSource)
	if err != nil {
		t.Fatal(err)
	}
	logical := doc.Schemas["Logical"]
	if logical == nil {
		t.Fatal("Logical schema missing")
	}
	if len(logical.Dependencies()) != 6 {
		t.Errorf("constraints = %d, want 6", len(logical.Dependencies()))
	}
	design := doc.Designs["Phys"]
	if design == nil {
		t.Fatal("Phys design missing")
	}
	for _, n := range []string{"Proj", "Dept", "I", "SI", "JI"} {
		if !design.Physical.Has(n) {
			t.Errorf("physical schema missing %s", n)
		}
	}
	if len(design.Deps) != 9 {
		t.Errorf("design deps = %d, want 9", len(design.Deps))
	}
	q := doc.Queries["Q"]
	if q == nil {
		t.Fatal("query Q missing")
	}
	if len(q.Bindings) != 3 || len(q.Conds) != 2 {
		t.Errorf("query shape wrong:\n%s", q)
	}
}

// TestParsedCatalogMatchesProgrammatic checks that the parsed catalog is
// exactly the programmatic workload catalog: same constraints (up to
// renaming) and the same universal plan for Q.
func TestParsedCatalogMatchesProgrammatic(t *testing.T) {
	doc, err := Parse(projDeptSource)
	if err != nil {
		t.Fatal(err)
	}
	pd, err := workload.NewProjDept()
	if err != nil {
		t.Fatal(err)
	}
	deps := append(doc.Designs["Phys"].Deps, doc.Schemas["Logical"].Dependencies()...)
	parsedU, err := chase.Chase(doc.Queries["Q"], deps, chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	progU, err := chase.Chase(pd.Q, pd.AllDeps(), chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(parsedU.Query.Bindings) != len(progU.Query.Bindings) {
		t.Errorf("universal plans differ: %d vs %d bindings",
			len(parsedU.Query.Bindings), len(progU.Query.Bindings))
	}
}

// TestParsedPipelineEndToEnd runs the full optimizer on the parsed input
// and validates the best plan on generated data.
func TestParsedPipelineEndToEnd(t *testing.T) {
	doc, err := Parse(projDeptSource)
	if err != nil {
		t.Fatal(err)
	}
	design := doc.Designs["Phys"]
	deps := append(design.Deps, doc.Schemas["Logical"].Dependencies()...)
	res, err := optimizer.Optimize(doc.Queries["Q"], optimizer.Options{
		Deps:          deps,
		PhysicalNames: design.Physical.NameSet(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best == nil {
		t.Fatal("no plan")
	}
	pd, err := workload.NewProjDept()
	if err != nil {
		t.Fatal(err)
	}
	in := pd.Generate(workload.GenOptions{Seed: 5})
	want, err := eval.Query(doc.Queries["Q"], in)
	if err != nil {
		t.Fatal(err)
	}
	got, err := eval.Query(res.Best.Query, in)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Error("parsed best plan differs from Q on data")
	}
}

func TestParseTypes(t *testing.T) {
	doc, err := Parse(`
schema S {
  A : int;
  B : set<float>;
  C : dict<string, set<{X: int, Y: bool}>>;
  D : set<Doid>;
}`)
	if err != nil {
		t.Fatal(err)
	}
	s := doc.Schemas["S"]
	cases := map[string]string{
		"A": "int",
		"B": "set<float>",
		"C": "dict<string, set<{X: int, Y: bool}>>",
		"D": "set<Doid>",
	}
	for n, want := range cases {
		if got := s.Element(n).Type.String(); got != want {
			t.Errorf("%s: %s, want %s", n, got, want)
		}
	}
}

func TestParseTermForms(t *testing.T) {
	doc, err := Parse(`
schema S {
  M : dict<string, set<{A: int}>>;
  R : set<{A: int, B: string}>;
}
query Q1: select struct(K: k, E: t.A) from dom(M) k, M[k] t;
query Q2: select t.A from M{"key"} t;
query Q3: select r.A from R r where r.B = "x" and r.A = 3;
`)
	if err != nil {
		t.Fatal(err)
	}
	q1 := doc.Queries["Q1"]
	if q1.Bindings[1].Range.Kind != core.KLookup || q1.Bindings[1].Range.NonFailing {
		t.Errorf("Q1 failing lookup wrong: %s", q1)
	}
	q2 := doc.Queries["Q2"]
	if !q2.Bindings[0].Range.NonFailing {
		t.Errorf("Q2 non-failing lookup wrong: %s", q2)
	}
	q3 := doc.Queries["Q3"]
	if len(q3.Conds) != 2 {
		t.Errorf("Q3 conds wrong: %s", q3)
	}
	if !q3.Conds[1].R.Equal(core.C(3)) {
		t.Errorf("integer constant wrong: %s", q3.Conds[1])
	}
}

func TestParseConstraintForms(t *testing.T) {
	doc, err := Parse(`
schema S {
  R : set<{A: int, B: int}>;
  T : set<{A: int}>;
  constraint Inc: forall (r in R) exists (t in T) t.A = r.A;
  constraint FD: forall (x in R, y in R) x.A = y.A -> x = y;
  constraint NoCond: forall (r in R) exists (t in T);
  constraint PlainEGD: forall (r in R) r.A = r.B;
}`)
	if err != nil {
		t.Fatal(err)
	}
	deps := doc.Schemas["S"].Dependencies()
	if len(deps) != 4 {
		t.Fatalf("deps = %d, want 4", len(deps))
	}
	byName := map[string]*core.Dependency{}
	for _, d := range deps {
		byName[d.Name] = d
	}
	if byName["Inc"].IsEGD() {
		t.Error("Inc is a TGD")
	}
	if !byName["FD"].IsEGD() {
		t.Error("FD is an EGD")
	}
	if len(byName["FD"].PremiseConds) != 1 {
		t.Error("FD premise conds wrong")
	}
	if len(byName["NoCond"].Conclusion) != 1 || len(byName["NoCond"].ConclusionConds) != 0 {
		t.Error("NoCond shape wrong")
	}
	if !byName["PlainEGD"].IsEGD() || len(byName["PlainEGD"].ConclusionConds) != 1 {
		t.Error("PlainEGD shape wrong")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src  string
		frag string
	}{
		{"schema S { A : int }", `expected ";"`},
		{"schema S { A : int; } schema S { B : int; }", "duplicate schema"},
		{"query Q: select x from R r;", "unknown identifier"},
		{"schema S { R : set<{A: int}>; } query Q: select r.Nope from R r;", "no field"},
		{"schema S { R : set<{A: int}>; } query Q: select r.A from R r where r.A = \"x\";", "compares"},
		{"bogus", "expected schema"},
		{"schema S { R: set<{A:int}>; } design D over Missing { store R; }", "unknown base schema"},
		{"schema S { R: set<{A:int}>; } design D over S { primary index I on R(Nope); }", "no attribute"},
		{`schema S { R: set<{A:int}>; } query Q: select r.A from R r where r.A = 1e5;`, `expected ";"`},
		{`schema S { R: set<{A:int}>; } query Q: select r.A from R r where r.A = @;`, "unexpected character"},
		{`query`, "expected identifier"},
		{`schema S { R: set<{A:int}>; } query Q: select r.A from R r where;`, "expected a path"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil {
			t.Errorf("Parse(%q) should fail", c.src)
			continue
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("Parse(%q) error %q, want fragment %q", c.src, err, c.frag)
		}
	}
}

func TestParseErrorPositions(t *testing.T) {
	_, err := Parse("schema S {\n  A : bogus<;\n}")
	if err == nil {
		t.Fatal("expected error")
	}
	pe, ok := err.(*Error)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if pe.Line != 2 {
		t.Errorf("error line = %d, want 2", pe.Line)
	}
}

func TestParseComments(t *testing.T) {
	doc, err := Parse(`
-- a line comment
// another comment style
schema S {
  R : set<{A: int}>; -- trailing comment
}
query Q: select r.A from R r;
`)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Queries["Q"] == nil {
		t.Error("query missing")
	}
}

func TestParseStringEscapes(t *testing.T) {
	doc, err := Parse(`
schema S { R : set<{A: string}>; }
query Q: select r.A from R r where r.A = "a\"b\n";
`)
	if err != nil {
		t.Fatal(err)
	}
	c := doc.Queries["Q"].Conds[0]
	if c.R.Val.(string) != "a\"b\n" {
		t.Errorf("escape handling wrong: %q", c.R.Val)
	}
}

func TestParseHashtableAndGmapDesigns(t *testing.T) {
	doc, err := Parse(`
schema S { R : set<{A: int, B: int}>; }
design D over S {
  store R;
  hashtable H on R(B);
}`)
	if err != nil {
		t.Fatal(err)
	}
	d := doc.Designs["D"]
	if !d.Physical.Has("H") {
		t.Error("hashtable missing")
	}
	if len(d.Deps) != 3 {
		t.Errorf("hashtable deps = %d, want 3", len(d.Deps))
	}
}

func TestQueryOrderPreserved(t *testing.T) {
	doc, err := Parse(`
schema S { R : set<{A: int}>; }
query Q2: select r.A from R r;
query Q1: select r.A from R r;
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.QueryOrder) != 2 || doc.QueryOrder[0] != "Q2" || doc.QueryOrder[1] != "Q1" {
		t.Errorf("QueryOrder = %v", doc.QueryOrder)
	}
}
