package parser

import (
	"fmt"

	"cnb/internal/core"
	"cnb/internal/physical"
	"cnb/internal/schema"
	"cnb/internal/types"
)

// Document is the result of parsing a source file: named schemas, physical
// designs and queries.
type Document struct {
	// Schemas maps schema names to catalogs (elements + constraints).
	Schemas map[string]*schema.Schema
	// Designs maps design names to built physical designs.
	Designs map[string]*DesignResult
	// Queries maps query names to type-checked queries. Each query is
	// checked against the union of all schemas declared before it.
	Queries map[string]*core.Query
	// Order preserves declaration order of queries.
	QueryOrder []string
}

// DesignResult is a compiled "design ... over ..." block.
type DesignResult struct {
	Name     string
	Base     *schema.Schema
	Physical *schema.Schema
	Combined *schema.Schema
	Deps     []*core.Dependency
}

type parser struct {
	toks []token
	pos  int

	doc *Document
	// all is the running union of declared schemas and designs, used to
	// type-check top-level queries.
	all *schema.Schema
	// known holds every declared name, including physical structures of
	// the design block currently being parsed (whose types are only
	// computed when the block is built). Used to resolve identifiers.
	known map[string]bool
}

// Parse parses a source file.
func Parse(src string) (*Document, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{
		toks: toks,
		doc: &Document{
			Schemas: map[string]*schema.Schema{},
			Designs: map[string]*DesignResult{},
			Queries: map[string]*core.Query{},
		},
		all:   schema.New("document"),
		known: map[string]bool{},
	}
	if err := p.parseDocument(); err != nil {
		return nil, err
	}
	return p.doc, nil
}

func (p *parser) cur() token { return p.toks[p.pos] }
func (p *parser) at(text string) bool {
	t := p.cur()
	return (t.kind == tokPunct || t.kind == tokIdent) && t.text == text
}

func (p *parser) advance() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) accept(text string) bool {
	if p.at(text) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expect(text string) error {
	if p.accept(text) {
		return nil
	}
	t := p.cur()
	return &Error{Line: t.line, Col: t.col, Msg: fmt.Sprintf("expected %q, found %s", text, t)}
}

func (p *parser) ident() (string, error) {
	t := p.cur()
	if t.kind != tokIdent {
		return "", &Error{Line: t.line, Col: t.col, Msg: fmt.Sprintf("expected identifier, found %s", t)}
	}
	p.advance()
	return t.text, nil
}

func (p *parser) errHere(format string, args ...any) error {
	t := p.cur()
	return &Error{Line: t.line, Col: t.col, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) parseDocument() error {
	for {
		t := p.cur()
		if t.kind == tokEOF {
			return nil
		}
		switch {
		case p.at("schema"):
			if err := p.parseSchema(); err != nil {
				return err
			}
		case p.at("design"):
			if err := p.parseDesign(); err != nil {
				return err
			}
		case p.at("query"):
			if err := p.parseQuery(); err != nil {
				return err
			}
		default:
			return p.errHere("expected schema, design or query, found %s", t)
		}
	}
}

// --- schemas ------------------------------------------------------------

func (p *parser) parseSchema() error {
	p.advance() // schema
	name, err := p.ident()
	if err != nil {
		return err
	}
	if _, dup := p.doc.Schemas[name]; dup {
		return p.errHere("duplicate schema %q", name)
	}
	s := schema.New(name)
	if err := p.expect("{"); err != nil {
		return err
	}
	for !p.accept("}") {
		if p.at("constraint") {
			if err := p.parseConstraint(s); err != nil {
				return err
			}
			continue
		}
		// element: IDENT ':' type ';'
		ename, err := p.ident()
		if err != nil {
			return err
		}
		if err := p.expect(":"); err != nil {
			return err
		}
		ty, err := p.parseType()
		if err != nil {
			return err
		}
		if err := p.expect(";"); err != nil {
			return err
		}
		if err := s.AddElement(ename, ty, ""); err != nil {
			return p.errHere("%v", err)
		}
		if err := p.all.AddElement(ename, ty, ""); err != nil {
			return p.errHere("%v", err)
		}
		p.known[ename] = true
	}
	p.doc.Schemas[name] = s
	return nil
}

func (p *parser) parseType() (*types.Type, error) {
	t := p.cur()
	switch {
	case p.accept("int"):
		return types.Int(), nil
	case p.accept("float"):
		return types.Float(), nil
	case p.accept("string"):
		return types.StringT(), nil
	case p.accept("bool"):
		return types.Bool(), nil
	case p.accept("set"):
		if err := p.expect("<"); err != nil {
			return nil, err
		}
		elem, err := p.parseType()
		if err != nil {
			return nil, err
		}
		if err := p.expect(">"); err != nil {
			return nil, err
		}
		return types.SetOf(elem), nil
	case p.accept("dict"):
		if err := p.expect("<"); err != nil {
			return nil, err
		}
		key, err := p.parseType()
		if err != nil {
			return nil, err
		}
		if err := p.expect(","); err != nil {
			return nil, err
		}
		val, err := p.parseType()
		if err != nil {
			return nil, err
		}
		if err := p.expect(">"); err != nil {
			return nil, err
		}
		return types.DictOf(key, val), nil
	case p.accept("{"):
		var fields []types.Field
		seen := map[string]bool{}
		for !p.accept("}") {
			if len(fields) > 0 {
				if err := p.expect(","); err != nil {
					return nil, err
				}
			}
			fname, err := p.ident()
			if err != nil {
				return nil, err
			}
			if seen[fname] {
				return nil, p.errHere("duplicate field %q", fname)
			}
			seen[fname] = true
			if err := p.expect(":"); err != nil {
				return nil, err
			}
			fty, err := p.parseType()
			if err != nil {
				return nil, err
			}
			fields = append(fields, types.F(fname, fty))
		}
		return types.StructOf(fields...), nil
	case t.kind == tokIdent:
		// Named oid type.
		p.advance()
		return types.OID(t.text), nil
	default:
		return nil, p.errHere("expected type, found %s", t)
	}
}

// --- constraints ----------------------------------------------------------

// parseConstraint parses:
//
//	constraint NAME: forall (x in P, ...) [B ->] [exists (y in P', ...)] B' ;
func (p *parser) parseConstraint(s *schema.Schema) error {
	p.advance() // constraint
	name, err := p.ident()
	if err != nil {
		return err
	}
	if err := p.expect(":"); err != nil {
		return err
	}
	if err := p.expect("forall"); err != nil {
		return err
	}
	scope := map[string]bool{}
	prem, err := p.parseBindingList(scope)
	if err != nil {
		return err
	}
	d := &core.Dependency{Name: name, Premise: prem}

	// Optional premise conditions followed by ->, or directly exists/conds.
	if !p.at("exists") && !p.at("->") {
		conds, err := p.parseCondList(scope)
		if err != nil {
			return err
		}
		if p.accept("->") {
			d.PremiseConds = conds
		} else {
			// No arrow: the conditions are the conclusion of an
			// unconditional EGD-style constraint.
			d.ConclusionConds = conds
			if err := p.expect(";"); err != nil {
				return err
			}
			return p.finishConstraint(s, d)
		}
	} else {
		p.accept("->")
	}

	if p.accept("exists") {
		conc, err := p.parseBindingList(scope)
		if err != nil {
			return err
		}
		d.Conclusion = conc
	}
	if !p.at(";") {
		conds, err := p.parseCondList(scope)
		if err != nil {
			return err
		}
		d.ConclusionConds = conds
	}
	if err := p.expect(";"); err != nil {
		return err
	}
	return p.finishConstraint(s, d)
}

func (p *parser) finishConstraint(s *schema.Schema, d *core.Dependency) error {
	if err := s.AddDependency(d); err != nil {
		return p.errHere("%v", err)
	}
	return nil
}

// parseBindingList parses "(x in P, y in Q, ...)", adding variables to
// scope as they are introduced.
func (p *parser) parseBindingList(scope map[string]bool) ([]core.Binding, error) {
	if err := p.expect("("); err != nil {
		return nil, err
	}
	var out []core.Binding
	for {
		v, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expect("in"); err != nil {
			return nil, err
		}
		rng, err := p.parseTerm(scope)
		if err != nil {
			return nil, err
		}
		out = append(out, core.Binding{Var: v, Range: rng})
		scope[v] = true
		if p.accept(")") {
			return out, nil
		}
		if err := p.expect(","); err != nil {
			return nil, err
		}
	}
}

// parseCondList parses "t1 = t2 and t3 = t4 and ...".
func (p *parser) parseCondList(scope map[string]bool) ([]core.Cond, error) {
	var out []core.Cond
	for {
		l, err := p.parseTerm(scope)
		if err != nil {
			return nil, err
		}
		if err := p.expect("="); err != nil {
			return nil, err
		}
		r, err := p.parseTerm(scope)
		if err != nil {
			return nil, err
		}
		out = append(out, core.Cond{L: l, R: r})
		if !p.accept("and") {
			return out, nil
		}
	}
}

// --- terms -----------------------------------------------------------------

// parseTerm parses a path: primary followed by .field, [key] and {key}
// suffixes. Identifiers in scope become variables; known schema names
// become name terms; anything else is an error.
func (p *parser) parseTerm(scope map[string]bool) (*core.Term, error) {
	t, err := p.parsePrimary(scope)
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept("."):
			f, err := p.ident()
			if err != nil {
				return nil, err
			}
			t = core.Prj(t, f)
		case p.accept("["):
			k, err := p.parseTerm(scope)
			if err != nil {
				return nil, err
			}
			if err := p.expect("]"); err != nil {
				return nil, err
			}
			t = core.Lk(t, k)
		case p.at("{"):
			// Only a lookup when it follows a term directly; struct
			// types/constructors never appear in suffix position.
			p.advance()
			k, err := p.parseTerm(scope)
			if err != nil {
				return nil, err
			}
			if err := p.expect("}"); err != nil {
				return nil, err
			}
			t = core.LkNF(t, k)
		default:
			return t, nil
		}
	}
}

func (p *parser) parsePrimary(scope map[string]bool) (*core.Term, error) {
	t := p.cur()
	switch {
	case p.accept("dom"):
		if err := p.expect("("); err != nil {
			return nil, err
		}
		inner, err := p.parseTerm(scope)
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return core.Dom(inner), nil
	case p.accept("struct"):
		if err := p.expect("("); err != nil {
			return nil, err
		}
		var fields []core.StructField
		for !p.accept(")") {
			if len(fields) > 0 {
				if err := p.expect(","); err != nil {
					return nil, err
				}
			}
			fname, err := p.ident()
			if err != nil {
				return nil, err
			}
			if err := p.expect(":"); err != nil {
				return nil, err
			}
			ft, err := p.parseTerm(scope)
			if err != nil {
				return nil, err
			}
			fields = append(fields, core.SF(fname, ft))
		}
		return core.Struct(fields...), nil
	case p.accept("true"):
		return core.C(true), nil
	case p.accept("false"):
		return core.C(false), nil
	case t.kind == tokInt:
		p.advance()
		return core.C(t.i), nil
	case t.kind == tokFloat:
		p.advance()
		return core.C(t.f), nil
	case t.kind == tokString:
		p.advance()
		return core.C(t.s), nil
	case p.accept("("):
		inner, err := p.parseTerm(scope)
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return inner, nil
	case t.kind == tokIdent:
		p.advance()
		if scope[t.text] {
			return core.V(t.text), nil
		}
		if p.known[t.text] {
			return core.Name(t.text), nil
		}
		return nil, &Error{Line: t.line, Col: t.col,
			Msg: fmt.Sprintf("unknown identifier %q (neither a bound variable nor a declared schema name)", t.text)}
	default:
		return nil, p.errHere("expected a path, found %s", t)
	}
}

// --- queries ----------------------------------------------------------------

// parseQuery parses "query NAME: select ... from ... [where ...];".
func (p *parser) parseQuery() error {
	p.advance() // query
	name, err := p.ident()
	if err != nil {
		return err
	}
	if _, dup := p.doc.Queries[name]; dup {
		return p.errHere("duplicate query %q", name)
	}
	if err := p.expect(":"); err != nil {
		return err
	}
	q, err := p.parseSelect()
	if err != nil {
		return err
	}
	if err := p.expect(";"); err != nil {
		return err
	}
	if _, err := p.all.CheckQuery(q); err != nil {
		return p.errHere("query %s: %v", name, err)
	}
	p.doc.Queries[name] = q
	p.doc.QueryOrder = append(p.doc.QueryOrder, name)
	return nil
}

// parseSelect parses "select OUT from BINDINGS [where CONDS]". The from
// clause introduces variables left to right, so output terms are parsed
// after the bindings and re-ordered here.
func (p *parser) parseSelect() (*core.Query, error) {
	if err := p.expect("select"); err != nil {
		return nil, err
	}
	// The output may reference from-clause variables, so remember the
	// token position, skip ahead to parse bindings first, then come back.
	outStart := p.pos
	if err := p.skipToKeyword("from"); err != nil {
		return nil, err
	}
	if err := p.expect("from"); err != nil {
		return nil, err
	}
	scope := map[string]bool{}
	var bindings []core.Binding
	for {
		rng, err := p.parseTerm(scope)
		if err != nil {
			return nil, err
		}
		v, err := p.ident()
		if err != nil {
			return nil, err
		}
		bindings = append(bindings, core.Binding{Var: v, Range: rng})
		scope[v] = true
		if !p.accept(",") {
			break
		}
	}
	var conds []core.Cond
	if p.accept("where") {
		var err error
		conds, err = p.parseCondList(scope)
		if err != nil {
			return nil, err
		}
	}
	endPos := p.pos

	// Re-parse the output with the scope in place.
	p.pos = outStart
	out, err := p.parseTerm(scope)
	if err != nil {
		return nil, err
	}
	if !p.at("from") {
		return nil, p.errHere("expected \"from\" after select output")
	}
	p.pos = endPos
	return &core.Query{Out: out, Bindings: bindings, Conds: conds}, nil
}

// skipToKeyword advances until the given keyword at nesting depth zero.
func (p *parser) skipToKeyword(kw string) error {
	depth := 0
	for {
		t := p.cur()
		if t.kind == tokEOF {
			return p.errHere("expected %q before end of input", kw)
		}
		if t.kind == tokPunct {
			switch t.text {
			case "(", "[", "{":
				depth++
			case ")", "]", "}":
				depth--
			}
		}
		if depth == 0 && t.kind == tokIdent && t.text == kw {
			return nil
		}
		p.advance()
	}
}

// --- designs -----------------------------------------------------------------

// parseDesign parses:
//
//	design NAME over SCHEMA {
//	  store R;
//	  classdict D for extent oid OidName;
//	  primary index I on R(attr);
//	  secondary index SI on R(attr);
//	  hashtable H on R(attr);
//	  view V: select ...;
//	  gmap G from (x in P, ...) [where B] key T entry T';
//	}
func (p *parser) parseDesign() error {
	p.advance() // design
	name, err := p.ident()
	if err != nil {
		return err
	}
	if err := p.expect("over"); err != nil {
		return err
	}
	baseName, err := p.ident()
	if err != nil {
		return err
	}
	base, ok := p.doc.Schemas[baseName]
	if !ok {
		return p.errHere("unknown base schema %q", baseName)
	}
	design := physical.NewDesign(base)
	if err := p.expect("{"); err != nil {
		return err
	}
	for !p.accept("}") {
		switch {
		case p.accept("store"):
			n, err := p.ident()
			if err != nil {
				return err
			}
			design.Add(physical.DirectStorage{Name: n})
			p.known[n] = true
			if err := p.expect(";"); err != nil {
				return err
			}
		case p.accept("classdict"):
			n, err := p.ident()
			if err != nil {
				return err
			}
			if err := p.expect("for"); err != nil {
				return err
			}
			extent, err := p.ident()
			if err != nil {
				return err
			}
			if err := p.expect("oid"); err != nil {
				return err
			}
			oid, err := p.ident()
			if err != nil {
				return err
			}
			design.Add(physical.ClassDict{Name: n, Extent: extent, OIDType: oid})
			p.known[n] = true
			if err := p.expect(";"); err != nil {
				return err
			}
		case p.accept("primary"):
			st, err := p.parseIndexDecl()
			if err != nil {
				return err
			}
			design.Add(physical.PrimaryIndex{Name: st.name, Relation: st.rel, Key: st.attr})
			p.known[st.name] = true
		case p.accept("secondary"):
			st, err := p.parseIndexDecl()
			if err != nil {
				return err
			}
			design.Add(physical.SecondaryIndex{Name: st.name, Relation: st.rel, Attribute: st.attr})
			p.known[st.name] = true
		case p.accept("hashtable"):
			n, err := p.ident()
			if err != nil {
				return err
			}
			if err := p.expect("on"); err != nil {
				return err
			}
			rel, attr, err := p.parseRelAttr()
			if err != nil {
				return err
			}
			design.Add(physical.HashTable{Name: n, Relation: rel, Attribute: attr})
			p.known[n] = true
			if err := p.expect(";"); err != nil {
				return err
			}
		case p.accept("view"):
			n, err := p.ident()
			if err != nil {
				return err
			}
			if err := p.expect(":"); err != nil {
				return err
			}
			def, err := p.parseSelect()
			if err != nil {
				return err
			}
			if err := p.expect(";"); err != nil {
				return err
			}
			design.Add(physical.View{Name: n, Def: def})
			p.known[n] = true
		default:
			return p.errHere("expected a design declaration, found %s", p.cur())
		}
	}

	phys, deps, combined, err := design.Build()
	if err != nil {
		return p.errHere("design %s: %v", name, err)
	}
	// Make the physical elements visible to subsequent queries.
	for _, e := range phys.Elements() {
		if !p.all.Has(e.Name) {
			if err := p.all.AddElement(e.Name, e.Type, e.Doc); err != nil {
				return p.errHere("%v", err)
			}
		}
	}
	p.doc.Designs[name] = &DesignResult{
		Name: name, Base: base, Physical: phys, Combined: combined, Deps: deps,
	}
	return nil
}

type indexDecl struct {
	name, rel, attr string
}

func (p *parser) parseIndexDecl() (indexDecl, error) {
	var d indexDecl
	if err := p.expect("index"); err != nil {
		return d, err
	}
	n, err := p.ident()
	if err != nil {
		return d, err
	}
	if err := p.expect("on"); err != nil {
		return d, err
	}
	rel, attr, err := p.parseRelAttr()
	if err != nil {
		return d, err
	}
	if err := p.expect(";"); err != nil {
		return d, err
	}
	d.name, d.rel, d.attr = n, rel, attr
	return d, nil
}

func (p *parser) parseRelAttr() (string, string, error) {
	rel, err := p.ident()
	if err != nil {
		return "", "", err
	}
	if err := p.expect("("); err != nil {
		return "", "", err
	}
	attr, err := p.ident()
	if err != nil {
		return "", "", err
	}
	if err := p.expect(")"); err != nil {
		return "", "", err
	}
	return rel, attr, nil
}
