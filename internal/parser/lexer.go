// Package parser implements the surface language of the system: an
// ODL/OQL-flavoured syntax for schemas, constraints, physical designs and
// path-conjunctive queries, as used throughout Deutsch, Popa, Tannen
// (VLDB 1999). Example:
//
//	schema Logical {
//	  Proj  : set<{PName: string, CustName: string, PDept: string, Budg: int}>;
//	  depts : set<{DName: string, DProjs: set<string>, MgrName: string}>;
//
//	  constraint RIC1:
//	    forall (d in depts, s in d.DProjs) exists (p in Proj) s = p.PName;
//	}
//
//	design Phys over Logical {
//	  store Proj;
//	  classdict Dept for depts oid Doid;
//	  primary index I on Proj(PName);
//	  secondary index SI on Proj(CustName);
//	  view JI: select struct(DOID: dd, PN: p.PName)
//	           from dom(Dept) dd, Dept[dd].DProjs s, Proj p
//	           where s = p.PName;
//	}
//
//	query Q:
//	  select struct(PN: s, PB: p.Budg, DN: d.DName)
//	  from depts d, d.DProjs s, Proj p
//	  where s = p.PName and p.CustName = "CitiBank";
package parser

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// tokKind discriminates token kinds.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokInt
	tokFloat
	tokString
	tokPunct // single characters and two-char punctuation like -> and <=
)

type token struct {
	kind tokKind
	text string
	// literal values
	i int64
	f float64
	s string

	line, col int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	case tokString:
		return fmt.Sprintf("string %q", t.s)
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

// Error is a parse error with position information.
type Error struct {
	Line, Col int
	Msg       string
}

func (e *Error) Error() string {
	return fmt.Sprintf("parse error at %d:%d: %s", e.Line, e.Col, e.Msg)
}

type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1, col: 1}
}

func (lx *lexer) errf(format string, args ...any) *Error {
	return &Error{Line: lx.line, Col: lx.col, Msg: fmt.Sprintf(format, args...)}
}

func (lx *lexer) peekByte() (byte, bool) {
	if lx.pos >= len(lx.src) {
		return 0, false
	}
	return lx.src[lx.pos], true
}

func (lx *lexer) advance() byte {
	c := lx.src[lx.pos]
	lx.pos++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func (lx *lexer) skipSpaceAndComments() error {
	for {
		c, ok := lx.peekByte()
		if !ok {
			return nil
		}
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			lx.advance()
		case c == '-' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '-':
			// -- line comment
			for {
				c, ok := lx.peekByte()
				if !ok || c == '\n' {
					break
				}
				lx.advance()
			}
		case c == '/' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '/':
			for {
				c, ok := lx.peekByte()
				if !ok || c == '\n' {
					break
				}
				lx.advance()
			}
		default:
			return nil
		}
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentPart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}

// next returns the next token.
func (lx *lexer) next() (token, error) {
	if err := lx.skipSpaceAndComments(); err != nil {
		return token{}, err
	}
	startLine, startCol := lx.line, lx.col
	c, ok := lx.peekByte()
	if !ok {
		return token{kind: tokEOF, line: startLine, col: startCol}, nil
	}
	switch {
	case isIdentStart(c):
		var b strings.Builder
		for {
			c, ok := lx.peekByte()
			if !ok || !isIdentPart(c) {
				break
			}
			b.WriteByte(lx.advance())
		}
		return token{kind: tokIdent, text: b.String(), line: startLine, col: startCol}, nil
	case unicode.IsDigit(rune(c)):
		var b strings.Builder
		isFloat := false
		for {
			c, ok := lx.peekByte()
			if !ok {
				break
			}
			if c == '.' && lx.pos+1 < len(lx.src) && unicode.IsDigit(rune(lx.src[lx.pos+1])) && !isFloat {
				isFloat = true
				b.WriteByte(lx.advance())
				continue
			}
			if !unicode.IsDigit(rune(c)) {
				break
			}
			b.WriteByte(lx.advance())
		}
		text := b.String()
		if isFloat {
			f, err := strconv.ParseFloat(text, 64)
			if err != nil {
				return token{}, lx.errf("bad float literal %q", text)
			}
			return token{kind: tokFloat, text: text, f: f, line: startLine, col: startCol}, nil
		}
		i, err := strconv.ParseInt(text, 10, 64)
		if err != nil {
			return token{}, lx.errf("bad integer literal %q", text)
		}
		return token{kind: tokInt, text: text, i: i, line: startLine, col: startCol}, nil
	case c == '"':
		lx.advance()
		var b strings.Builder
		for {
			c, ok := lx.peekByte()
			if !ok {
				return token{}, lx.errf("unterminated string literal")
			}
			if c == '"' {
				lx.advance()
				return token{kind: tokString, text: b.String(), s: b.String(), line: startLine, col: startCol}, nil
			}
			if c == '\\' {
				lx.advance()
				e, ok := lx.peekByte()
				if !ok {
					return token{}, lx.errf("unterminated escape")
				}
				switch e {
				case 'n':
					b.WriteByte('\n')
				case 't':
					b.WriteByte('\t')
				case '"':
					b.WriteByte('"')
				case '\\':
					b.WriteByte('\\')
				default:
					return token{}, lx.errf("unknown escape \\%c", e)
				}
				lx.advance()
				continue
			}
			b.WriteByte(lx.advance())
		}
	default:
		// Two-character punctuation.
		if c == '-' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '>' {
			lx.advance()
			lx.advance()
			return token{kind: tokPunct, text: "->", line: startLine, col: startCol}, nil
		}
		switch c {
		case '(', ')', '{', '}', '<', '>', '[', ']', ',', ':', ';', '=', '.':
			lx.advance()
			return token{kind: tokPunct, text: string(c), line: startLine, col: startCol}, nil
		}
		return token{}, lx.errf("unexpected character %q", string(c))
	}
}

// lexAll tokenizes the whole input (including the trailing EOF token).
func lexAll(src string) ([]token, error) {
	lx := newLexer(src)
	var out []token
	for {
		t, err := lx.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.kind == tokEOF {
			return out, nil
		}
	}
}
