package optimizer

import (
	"context"
	"errors"
	"testing"

	"cnb/internal/workload"
)

// TestOptimizeParallelismDeterministic asserts that the Parallelism
// option plumbed into the backchase phase changes only wall-clock, never
// the optimization outcome: candidates, minimal plans and the chosen best
// plan are identical across worker counts.
func TestOptimizeParallelismDeterministic(t *testing.T) {
	pd, err := workload.NewProjDept()
	if err != nil {
		t.Fatal(err)
	}
	var refBest string
	var refMinimal, refCandidates int
	for _, par := range []int{1, 2, 8} {
		res, err := Optimize(pd.Q, Options{
			Deps:          pd.AllDeps(),
			PhysicalNames: pd.Physical.NameSet(),
			Parallelism:   par,
		})
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		best := res.Best.Query.String()
		if refBest == "" {
			refBest, refMinimal, refCandidates = best, len(res.Minimal), len(res.Candidates)
			continue
		}
		if best != refBest {
			t.Errorf("parallelism %d: best plan differs\ngot:\n%s\nwant:\n%s", par, best, refBest)
		}
		if len(res.Minimal) != refMinimal || len(res.Candidates) != refCandidates {
			t.Errorf("parallelism %d: %d minimal / %d candidates, want %d / %d",
				par, len(res.Minimal), len(res.Candidates), refMinimal, refCandidates)
		}
	}
}

// TestOptimizeContextCancelled pins cancellation propagation through both
// optimizer phases.
func TestOptimizeContextCancelled(t *testing.T) {
	pd, err := workload.NewProjDept()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = OptimizeContext(ctx, pd.Q, Options{Deps: pd.AllDeps()})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
