// Package optimizer implements Algorithm 1 of Deutsch, Popa, Tannen
// (VLDB 1999) end to end:
//
//  1. chase the query with D ∪ D′ into the universal plan U,
//  2. backchase U, enumerating the minimal plans,
//  3. apply conventional cost-based optimization (binding reorder,
//     non-failing-lookup simplification) to each plan,
//  4. return the cheapest plan.
//
// The optimizer can be restricted to emit only plans over the physical
// schema ("the obvious strategy is to attempt to remove whatever is in
// the logical schema but not in the physical schema", §3).
package optimizer

import (
	"context"
	"fmt"

	"cnb/internal/backchase"
	"cnb/internal/chase"
	"cnb/internal/core"
	"cnb/internal/cost"
)

// Options configures an optimization run.
type Options struct {
	// Deps is D ∪ D′: logical constraints plus the implementation mapping.
	Deps []*core.Dependency
	// PhysicalNames restricts final plans to the given schema names when
	// non-nil; plans mentioning other names are discarded (unless no plan
	// qualifies, in which case all plans are kept and Result.Fallback is
	// set — soundness never depends on the restriction).
	PhysicalNames map[string]bool
	// Stats drives cost estimation; when nil, uniform defaults are used.
	Stats *cost.Stats
	// Chase and Backchase tune the two phases.
	Chase     chase.Options
	Backchase backchase.Options
	// Parallelism is the worker count for the backchase phase
	// (0 = all cores). It is copied into Backchase.Parallelism unless
	// that is already set explicitly.
	Parallelism int
	// MinimalOnly restricts the candidate plans to backchase normal forms.
	// By default every explored backchase state (each of which is an
	// equivalent plan — "we can stop this rewriting anytime") is also
	// costed: the paper's §4 view+index plan keeps the derivable view V
	// for its small size even though V is removable, so it is an
	// intermediate state rather than a minimal plan.
	MinimalOnly bool
}

// Result reports everything Algorithm 1 produced.
type Result struct {
	// Universal is the universal plan chase(Q).
	Universal *core.Query
	// ChaseSteps traces the constraints applied during the chase phase.
	ChaseSteps []chase.Step
	// Minimal are the raw minimal plans from the backchase (normalized).
	Minimal []*core.Query
	// Explored are all distinct backchase states (each an equivalent
	// plan); included in the candidate pool unless MinimalOnly is set.
	Explored []*core.Query
	// Candidates are the cost-ranked executable plans after lookup
	// simplification and binding reorder, cheapest first.
	Candidates []cost.RankedPlan
	// Best is the cheapest candidate (nil only if Minimal is empty, which
	// cannot happen for well-formed inputs).
	Best *cost.RankedPlan
	// States is the number of subqueries the backchase explored.
	States int
	// Fallback reports that the physical-only restriction was lifted
	// because no minimal plan satisfied it.
	Fallback bool
	// Inconsistent reports that the chase proved the query empty under
	// the constraints (an EGD equated distinct constants).
	Inconsistent bool
}

// Optimize runs Algorithm 1 on the query.
func Optimize(q *core.Query, opts Options) (*Result, error) {
	return OptimizeContext(context.Background(), q, opts)
}

// OptimizeContext is Optimize with cancellation, propagated through both
// the chase and the (parallel) backchase phase.
func OptimizeContext(ctx context.Context, q *core.Query, opts Options) (*Result, error) {
	if err := q.Validate(); err != nil {
		return nil, fmt.Errorf("optimizer: %w", err)
	}
	// Phase 1: chase.
	chased, err := chase.ChaseContext(ctx, q, opts.Deps, opts.Chase)
	if err != nil {
		return nil, fmt.Errorf("optimizer: chase: %w", err)
	}
	res := &Result{Universal: chased.Query, ChaseSteps: chased.Steps}
	if chased.Inconsistent {
		res.Inconsistent = true
		empty := q.Clone()
		res.Minimal = []*core.Query{empty}
		stats := opts.Stats
		if stats == nil {
			stats = cost.NewStats()
		}
		res.Candidates = stats.Rank(res.Minimal)
		res.Best = &res.Candidates[0]
		return res, nil
	}

	// Phase 2: backchase.
	bopts := opts.Backchase
	bopts.Chase = opts.Chase
	if bopts.Parallelism == 0 {
		bopts.Parallelism = opts.Parallelism
	}
	enum, err := backchase.EnumerateContext(ctx, chased.Query, opts.Deps, bopts)
	if err != nil {
		return nil, fmt.Errorf("optimizer: backchase: %w", err)
	}
	res.States = enum.States
	res.Minimal = enum.Plans
	res.Explored = enum.Explored

	// Candidate pool: the minimal plans plus (by default) every explored
	// backchase state — all are equivalent to Q, and a non-minimal state
	// can be the cheapest executable plan (§4's view+index navigation).
	pool := append([]*core.Query(nil), enum.Plans...)
	if !opts.MinimalOnly {
		pool = append(pool, enum.Explored...)
	}

	// Physical-only restriction.
	isPhysical := func(p *core.Query) bool {
		if opts.PhysicalNames == nil {
			return true
		}
		for n := range p.Names() {
			if !opts.PhysicalNames[n] {
				return false
			}
		}
		return true
	}
	var plans []*core.Query
	for _, p := range pool {
		if isPhysical(p) {
			plans = append(plans, p)
		}
	}
	if len(plans) == 0 {
		plans = pool
		res.Fallback = opts.PhysicalNames != nil
	}

	// Phase 3: conventional optimization per plan, deduplicating the
	// simplified forms.
	var executable []*core.Query
	seen := map[string]bool{}
	for _, p := range plans {
		s := SimplifyLookups(p)
		sig := s.NormalizeBindingOrder().Signature()
		if !seen[sig] {
			seen[sig] = true
			executable = append(executable, s)
		}
	}
	stats := opts.Stats
	if stats == nil {
		stats = cost.NewStats()
	}
	res.Candidates = stats.Rank(executable)
	if len(res.Candidates) > 0 {
		res.Best = &res.Candidates[0]
	}
	return res, nil
}

// SimplifyLookups rewrites guarded dictionary-domain loops into
// non-failing lookups — the final transformation of the paper's §4
// example: a binding pair
//
//	dom(M) k, M[k] x   with   k = t   (t not mentioning k)
//
// becomes the single binding  M{t} x, replacing k by t everywhere. The
// guard condition is consumed by the non-failing lookup: when t ∉ dom(M)
// the loop is empty in both forms. Other occurrences of M[k] become M[t],
// which can only be evaluated when M{t} is non-empty, i.e. when the
// failing lookup is defined.
func SimplifyLookups(q *core.Query) *core.Query {
	cur := q.Clone()
	for changed := true; changed; {
		changed = false
		for i, b := range cur.Bindings {
			if b.Range.Kind != core.KDom {
				continue
			}
			k := b.Var
			dict := b.Range.Base
			if !dependentsAreDirectLookups(cur, i, k, dict) {
				continue
			}
			// Try every key candidate: the first may be circular (e.g.
			// k = t1.A where t1 is the dependent lookup itself).
			var next *core.Query
			for _, cand := range keyEqualities(cur, k) {
				next = applyLookupSimplification(cur, i, cand.condIdx, k, dict, cand.t)
				if next != nil {
					break
				}
			}
			if next != nil {
				cur = next
				changed = true
				break
			}
		}
	}
	return cur
}

// keyCandidate is a term the conditions force equal to the key variable,
// plus the index of the condition consumed by the rewrite (-1 when the
// equality was extracted from a struct condition that must be kept).
type keyCandidate struct {
	t       *core.Term
	condIdx int
}

// keyEqualities finds every term t, free of k, that the conditions force
// equal to k. Direct equalities k = t consume their condition; struct
// equalities other = struct(..., F: k, ...) yield other.F via constructor
// injectivity and keep the condition (its remaining fields may carry
// information).
func keyEqualities(q *core.Query, k string) []keyCandidate {
	kv := core.V(k)
	var out []keyCandidate
	for i, c := range q.Conds {
		if c.L.Equal(kv) && !c.R.MentionsVar(k) {
			out = append(out, keyCandidate{c.R, i})
		}
		if c.R.Equal(kv) && !c.L.MentionsVar(k) {
			out = append(out, keyCandidate{c.L, i})
		}
	}
	for _, c := range q.Conds {
		for _, pair := range [][2]*core.Term{{c.L, c.R}, {c.R, c.L}} {
			st, other := pair[0], pair[1]
			if st.Kind != core.KStruct || other.MentionsVar(k) {
				continue
			}
			for _, f := range st.Fields {
				if f.Term.Equal(kv) {
					out = append(out, keyCandidate{core.Prj(other, f.Name), -1})
				}
			}
		}
	}
	return out
}

// dependentsAreDirectLookups checks that at least one later binding ranges
// exactly over dict[k], and every binding range mentioning k is exactly
// dict[k] (so the non-failing rewrite covers all of them).
func dependentsAreDirectLookups(q *core.Query, domIdx int, k string, dict *core.Term) bool {
	direct := core.Lk(dict, core.V(k))
	found := false
	for j, b := range q.Bindings {
		if j == domIdx {
			continue
		}
		if !b.Range.MentionsVar(k) {
			continue
		}
		if !b.Range.Equal(direct) {
			return false
		}
		found = true
	}
	return found
}

func applyLookupSimplification(q *core.Query, domIdx, condIdx int, k string, dict, t *core.Term) *core.Query {
	direct := core.Lk(dict, core.V(k))
	sub := map[string]*core.Term{k: t}
	next := &core.Query{}
	for j, b := range q.Bindings {
		if j == domIdx {
			continue
		}
		if b.Range.Equal(direct) {
			next.Bindings = append(next.Bindings, core.Binding{
				Var:   b.Var,
				Range: core.LkNF(dict.Subst(sub), t),
			})
			continue
		}
		next.Bindings = append(next.Bindings, core.Binding{Var: b.Var, Range: b.Range.Subst(sub)})
	}
	for j, c := range q.Conds {
		if j == condIdx {
			continue
		}
		nc := core.Cond{L: c.L.Subst(sub), R: c.R.Subst(sub)}
		if nc.L.Equal(nc.R) {
			continue
		}
		next.Conds = append(next.Conds, nc)
	}
	next.Out = q.Out.Subst(sub)
	// The replacement key may reference a variable bound later in the
	// original order (e.g. the view row of ΦV); restore scoping.
	if sorted, ok := topoSortBindings(next.Bindings); ok {
		next.Bindings = sorted
	}
	if err := next.Validate(); err != nil {
		return nil
	}
	return next
}

// topoSortBindings orders bindings so every range mentions only earlier
// variables, keeping the given order among independent bindings.
func topoSortBindings(bs []core.Binding) ([]core.Binding, bool) {
	n := len(bs)
	used := make([]bool, n)
	introduced := map[string]bool{}
	out := make([]core.Binding, 0, n)
	for len(out) < n {
		progress := false
		for i, b := range bs {
			if used[i] {
				continue
			}
			ready := true
			for v := range b.Range.Vars() {
				if !introduced[v] {
					ready = false
					break
				}
			}
			if !ready {
				continue
			}
			used[i] = true
			introduced[b.Var] = true
			out = append(out, b)
			progress = true
		}
		if !progress {
			return nil, false
		}
	}
	return out, true
}
