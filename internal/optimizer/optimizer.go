// Package optimizer implements Algorithm 1 of Deutsch, Popa, Tannen
// (VLDB 1999) end to end:
//
//  1. chase the query with D ∪ D′ into the universal plan U,
//  2. backchase U, enumerating the minimal plans,
//  3. apply conventional cost-based optimization (binding reorder,
//     non-failing-lookup simplification) to each plan,
//  4. return the cheapest plan.
//
// The optimizer can be restricted to emit only plans over the physical
// schema ("the obvious strategy is to attempt to remove whatever is in
// the logical schema but not in the physical schema", §3).
package optimizer

import (
	"context"
	"fmt"

	"cnb/internal/backchase"
	"cnb/internal/chase"
	"cnb/internal/core"
	"cnb/internal/cost"
	"cnb/internal/planrewrite"
)

// Options configures an optimization run.
type Options struct {
	// Deps is D ∪ D′: logical constraints plus the implementation mapping.
	Deps []*core.Dependency
	// PhysicalNames restricts final plans to the given schema names when
	// non-nil; plans mentioning other names are discarded (unless no plan
	// qualifies, in which case all plans are kept and Result.Fallback is
	// set — soundness never depends on the restriction).
	PhysicalNames map[string]bool
	// Stats drives cost estimation; when nil, uniform defaults are used.
	Stats *cost.Stats
	// CostBounded switches the backchase phase to cost-bounded best-first
	// search driven by Stats: lattice states whose admissible cost lower
	// bound exceeds the cheapest complete plan found so far are pruned
	// without being chased. The cheapest plan keeps the same estimated
	// cost as exhaustive search, but Result.Minimal/Explored become
	// subsets of the exhaustive sets (cost-bounded search trades complete
	// enumeration for speed). No-op when Stats is nil. Opt-in so that the
	// default pipeline keeps the fully deterministic exhaustive order.
	CostBounded bool
	// Chase and Backchase tune the two phases. Backchase.Stats,
	// Backchase.TopK, Backchase.CostBudget and Backchase.Cache pass
	// through to the engine; CostBounded fills Backchase.Stats from Stats
	// when it is unset.
	Chase     chase.Options
	Backchase backchase.Options
	// Parallelism is the worker count for the backchase phase
	// (0 = all cores). It is copied into Backchase.Parallelism unless
	// that is already set explicitly.
	Parallelism int
	// MinimalOnly restricts the candidate plans to backchase normal forms.
	// By default every explored backchase state (each of which is an
	// equivalent plan — "we can stop this rewriting anytime") is also
	// costed: the paper's §4 view+index plan keeps the derivable view V
	// for its small size even though V is removable, so it is an
	// intermediate state rather than a minimal plan.
	MinimalOnly bool
}

// Result reports everything Algorithm 1 produced.
type Result struct {
	// Universal is the universal plan chase(Q).
	Universal *core.Query
	// ChaseSteps traces the constraints applied during the chase phase.
	ChaseSteps []chase.Step
	// Minimal are the raw minimal plans from the backchase (normalized).
	Minimal []*core.Query
	// Explored are all distinct backchase states (each an equivalent
	// plan); included in the candidate pool unless MinimalOnly is set.
	Explored []*core.Query
	// Candidates are the cost-ranked executable plans after lookup
	// simplification and binding reorder, cheapest first.
	Candidates []cost.RankedPlan
	// Best is the cheapest candidate. It is nil only when the candidate
	// pool is empty, which cannot happen for well-formed inputs UNLESS
	// Backchase.CostBudget pruned every state (a budget below the
	// cheapest plan's cost empties Minimal and Explored) — callers using
	// CostBudget must nil-check.
	Best *cost.RankedPlan
	// States is the number of subqueries the backchase explored.
	States int
	// Pruned is the number of backchase states skipped by cost-bound
	// pruning (0 unless Options.CostBounded or Backchase.Stats is set).
	Pruned int
	// BackchaseCached reports that the backchase phase was served from
	// Options.Backchase.Cache instead of being re-run.
	BackchaseCached bool
	// Fallback reports that the physical-only restriction was lifted
	// because no minimal plan satisfied it.
	Fallback bool
	// Inconsistent reports that the chase proved the query empty under
	// the constraints (an EGD equated distinct constants).
	Inconsistent bool
}

// Optimize runs Algorithm 1 on the query.
func Optimize(q *core.Query, opts Options) (*Result, error) {
	return OptimizeContext(context.Background(), q, opts)
}

// OptimizeContext is Optimize with cancellation, propagated through both
// the chase and the (parallel) backchase phase.
func OptimizeContext(ctx context.Context, q *core.Query, opts Options) (*Result, error) {
	if err := q.Validate(); err != nil {
		return nil, fmt.Errorf("optimizer: %w", err)
	}
	// Phase 1: chase. The premise index is a pure function of the
	// dependency set, so one index serves the chase phase and — via
	// Backchase.Index — every equivalence chase of the backchase lattice.
	depIndex := opts.Backchase.Index
	if depIndex == nil {
		depIndex = chase.NewDepIndex(opts.Deps)
	}
	chased, err := chase.ChaseIndexed(ctx, q, depIndex, opts.Chase)
	if err != nil {
		return nil, fmt.Errorf("optimizer: chase: %w", err)
	}
	res := &Result{Universal: chased.Query, ChaseSteps: chased.Steps}
	if chased.Inconsistent {
		res.Inconsistent = true
		empty := q.Clone()
		res.Minimal = []*core.Query{empty}
		stats := opts.Stats
		if stats == nil {
			stats = cost.NewStats()
		}
		res.Candidates = stats.Rank(res.Minimal)
		res.Best = &res.Candidates[0]
		return res, nil
	}

	// Phase 2: backchase.
	bopts := opts.Backchase
	bopts.Chase = opts.Chase
	bopts.Index = depIndex
	if bopts.Parallelism == 0 {
		bopts.Parallelism = opts.Parallelism
	}
	if opts.CostBounded && bopts.Stats == nil {
		bopts.Stats = opts.Stats
	}
	enum, err := backchase.EnumerateContext(ctx, chased.Query, opts.Deps, bopts)
	if err != nil {
		return nil, fmt.Errorf("optimizer: backchase: %w", err)
	}
	res.States = enum.States
	res.Pruned = enum.Pruned
	res.BackchaseCached = enum.FromCache
	res.Minimal = enum.Plans
	res.Explored = enum.Explored

	// Candidate pool: the minimal plans plus (by default) every explored
	// backchase state — all are equivalent to Q, and a non-minimal state
	// can be the cheapest executable plan (§4's view+index navigation).
	pool := append([]*core.Query(nil), enum.Plans...)
	if !opts.MinimalOnly {
		pool = append(pool, enum.Explored...)
	}

	// Physical-only restriction.
	isPhysical := func(p *core.Query) bool {
		if opts.PhysicalNames == nil {
			return true
		}
		for n := range p.Names() {
			if !opts.PhysicalNames[n] {
				return false
			}
		}
		return true
	}
	var plans []*core.Query
	for _, p := range pool {
		if isPhysical(p) {
			plans = append(plans, p)
		}
	}
	if len(plans) == 0 {
		plans = pool
		res.Fallback = opts.PhysicalNames != nil
	}

	// Phase 3: conventional optimization per plan, deduplicating the
	// simplified forms.
	var executable []*core.Query
	seen := map[string]bool{}
	for _, p := range plans {
		s := SimplifyLookups(p)
		sig := s.CanonicalSignature()
		if !seen[sig] {
			seen[sig] = true
			executable = append(executable, s)
		}
	}
	stats := opts.Stats
	if stats == nil {
		stats = cost.NewStats()
	}
	res.Candidates = stats.Rank(executable)
	if len(res.Candidates) > 0 {
		res.Best = &res.Candidates[0]
	}
	return res, nil
}

// SimplifyLookups rewrites guarded dictionary-domain loops into
// non-failing lookups; it lives in internal/planrewrite so the
// cost-bounded backchase can apply the same rewrite before costing a
// candidate. Kept here as an alias for the optimizer's public surface.
func SimplifyLookups(q *core.Query) *core.Query {
	return planrewrite.SimplifyLookups(q)
}
