package optimizer

import (
	"testing"

	"cnb/internal/core"
	"cnb/internal/cost"
	"cnb/internal/engine"
	"cnb/internal/eval"
	"cnb/internal/workload"
)

func TestSimplifyLookupsP3(t *testing.T) {
	// dom(SI) k, SI[k] t where k = "CitiBank"  →  SI{"CitiBank"} t
	q := &core.Query{
		Out: core.Prj(core.V("t"), "PName"),
		Bindings: []core.Binding{
			{Var: "k", Range: core.Dom(core.Name("SI"))},
			{Var: "t", Range: core.Lk(core.Name("SI"), core.V("k"))},
		},
		Conds: []core.Cond{{L: core.V("k"), R: core.C("CitiBank")}},
	}
	s := SimplifyLookups(q)
	if len(s.Bindings) != 1 {
		t.Fatalf("bindings = %d, want 1:\n%s", len(s.Bindings), s)
	}
	want := core.LkNF(core.Name("SI"), core.C("CitiBank"))
	if !s.Bindings[0].Range.Equal(want) {
		t.Errorf("range = %s, want %s", s.Bindings[0].Range, want)
	}
	if len(s.Conds) != 0 {
		t.Errorf("guard condition should be consumed: %s", s)
	}
}

func TestSimplifyLookupsSubstitutesEverywhere(t *testing.T) {
	// The §4 final step: dom(IS) p, IS[p] s' where p = r'.B becomes
	// IS{r'.B} s'.
	q := &core.Query{
		Out: core.Struct(
			core.SF("B", core.Prj(core.V("s2"), "B")),
			core.SF("K", core.V("p")),
		),
		Bindings: []core.Binding{
			{Var: "r2", Range: core.Name("Rx")},
			{Var: "p", Range: core.Dom(core.Name("IS"))},
			{Var: "s2", Range: core.Lk(core.Name("IS"), core.V("p"))},
		},
		Conds: []core.Cond{{L: core.V("p"), R: core.Prj(core.V("r2"), "B")}},
	}
	s := SimplifyLookups(q)
	if len(s.Bindings) != 2 {
		t.Fatalf("bindings = %d, want 2:\n%s", len(s.Bindings), s)
	}
	// Output K must be rewritten to r2.B.
	if !s.Out.Fields[1].Term.Equal(core.Prj(core.V("r2"), "B")) {
		t.Errorf("output not substituted: %s", s.Out)
	}
}

func TestSimplifyLookupsRefusesIndirectUse(t *testing.T) {
	// k used inside a deeper range (projection over the lookup): no
	// simplification (a failing lookup would be left unguarded).
	q := &core.Query{
		Out: core.V("s"),
		Bindings: []core.Binding{
			{Var: "k", Range: core.Dom(core.Name("Dept"))},
			{Var: "s", Range: core.Prj(core.Lk(core.Name("Dept"), core.V("k")), "DProjs")},
		},
		Conds: []core.Cond{{L: core.V("k"), R: core.C("X")}},
	}
	s := SimplifyLookups(q)
	if len(s.Bindings) != 2 {
		t.Errorf("indirect lookup must not be simplified:\n%s", s)
	}
}

func TestSimplifyLookupsNoGuardNoChange(t *testing.T) {
	// Without a key equality the dom loop must stay.
	q := &core.Query{
		Out: core.V("t"),
		Bindings: []core.Binding{
			{Var: "k", Range: core.Dom(core.Name("SI"))},
			{Var: "t", Range: core.Lk(core.Name("SI"), core.V("k"))},
		},
	}
	s := SimplifyLookups(q)
	if len(s.Bindings) != 2 {
		t.Errorf("unguarded dom loop must stay:\n%s", s)
	}
}

func TestOptimizeProjDeptEndToEnd(t *testing.T) {
	pd, err := workload.NewProjDept()
	if err != nil {
		t.Fatal(err)
	}
	in := pd.Generate(workload.GenOptions{NumDepts: 10, ProjsPerDept: 5, CitiBankShare: 0.2, Seed: 1})
	stats := cost.FromInstance(in)

	res, err := Optimize(pd.Q, Options{
		Deps:          pd.AllDeps(),
		PhysicalNames: pd.Physical.NameSet(),
		Stats:         stats,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best == nil {
		t.Fatal("no best plan")
	}
	if res.Fallback {
		t.Error("physical-only restriction should be satisfiable")
	}
	t.Logf("universal plan: %d bindings; %d minimal plans; %d states; %d candidates",
		len(res.Universal.Bindings), len(res.Minimal), res.States, len(res.Candidates))
	for i, c := range res.Candidates {
		if i < 8 {
			t.Logf("cost %.1f:\n%s", c.Cost, c.Query)
		}
	}

	// The cheapest candidates must execute (via the engine, which pushes
	// filters down) and agree with Q on the data.
	want, err := eval.Query(pd.Q, in)
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for _, c := range res.Candidates {
		if checked >= 25 {
			break
		}
		checked++
		got, err := engine.Execute(c.Query, in)
		if err != nil {
			t.Errorf("candidate failed to execute: %v\n%s", err, c.Query)
			continue
		}
		if !got.Equal(want) {
			t.Errorf("candidate differs from Q:\n%s", c.Query)
		}
	}

	// The best plan must be an index plan, not the naive triple loop:
	// with 20%% CitiBank share and 50 projects, the SI or JI plan wins.
	bestNames := res.Best.Query.Names()
	if bestNames["depts"] {
		t.Errorf("best plan still scans the logical extent:\n%s", res.Best.Query)
	}
}

func TestOptimizePhysicalOnlyRestriction(t *testing.T) {
	pd, err := workload.NewProjDept()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Optimize(pd.Q, Options{
		Deps:          pd.AllDeps(),
		PhysicalNames: pd.Physical.NameSet(),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Candidates {
		for n := range c.Query.Names() {
			if !pd.Physical.NameSet()[n] {
				t.Errorf("candidate mentions non-physical name %s:\n%s", n, c.Query)
			}
		}
	}
}

func TestOptimizeSelectsIndexUnderHighSelectivity(t *testing.T) {
	pd, err := workload.NewProjDept()
	if err != nil {
		t.Fatal(err)
	}
	// Big instance, tiny CitiBank share: the secondary-index plan (P3,
	// simplified to a non-failing lookup) must beat the Proj scan (P2).
	in := pd.Generate(workload.GenOptions{NumDepts: 100, ProjsPerDept: 10, CitiBankShare: 0.01, Seed: 2})
	stats := cost.FromInstance(in)
	res, err := Optimize(pd.Q, Options{
		Deps:          pd.AllDeps(),
		PhysicalNames: pd.Physical.NameSet(),
		Stats:         stats,
	})
	if err != nil {
		t.Fatal(err)
	}
	best := res.Best.Query
	if !best.Names()["SI"] {
		t.Errorf("best plan should use the secondary index at 1%% selectivity:\n%s\ncost %.1f", best, res.Best.Cost)
		for _, c := range res.Candidates {
			t.Logf("cost %8.1f: %v", c.Cost, c.Query.SortedNames())
		}
	}
	// And it must be the simplified non-failing-lookup form.
	found := false
	for _, b := range best.Bindings {
		if b.Range.Kind == core.KLookup && b.Range.NonFailing {
			found = true
		}
	}
	if !found {
		t.Errorf("best plan should use the non-failing lookup SI{...}:\n%s", best)
	}
}

func TestOptimizeInconsistentQuery(t *testing.T) {
	// A query whose conditions clash under an EGD: the chase flags it.
	q := &core.Query{
		Out:      core.C(true),
		Bindings: []core.Binding{{Var: "r", Range: core.Name("R")}},
		Conds: []core.Cond{
			{L: core.Prj(core.V("r"), "A"), R: core.C(1)},
			{L: core.Prj(core.V("r"), "B"), R: core.C(2)},
		},
	}
	egd := &core.Dependency{
		Name:            "AeqB",
		Premise:         []core.Binding{{Var: "r", Range: core.Name("R")}},
		ConclusionConds: []core.Cond{{L: core.Prj(core.V("r"), "A"), R: core.Prj(core.V("r"), "B")}},
	}
	res, err := Optimize(q, Options{Deps: []*core.Dependency{egd}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Inconsistent {
		t.Error("optimizer must flag the query as empty under constraints")
	}
}

func TestOptimizeInvalidQuery(t *testing.T) {
	q := &core.Query{Out: core.V("zz")}
	if _, err := Optimize(q, Options{}); err == nil {
		t.Error("invalid query must be rejected")
	}
}

func TestOptimizeNoDeps(t *testing.T) {
	// Pure minimization: no constraints at all.
	q := &core.Query{
		Out: core.Prj(core.V("p"), "A"),
		Bindings: []core.Binding{
			{Var: "p", Range: core.Name("R")},
			{Var: "q", Range: core.Name("R")},
		},
		Conds: []core.Cond{{L: core.V("p"), R: core.V("q")}},
	}
	res, err := Optimize(q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Best.Query.Bindings) != 1 {
		t.Errorf("minimization failed:\n%s", res.Best.Query)
	}
}
