package optimizer

import (
	"testing"

	"cnb/internal/core"
	"cnb/internal/eval"
	"cnb/internal/instance"
	"cnb/internal/physical"
	"cnb/internal/schema"
	"cnb/internal/types"
)

// TestGMapEndToEnd exercises the generalized gmap of §2: a dictionary from
// R.A values to {B, C} projections. The optimizer must rewrite a selection
// on A into a gmap lookup.
func TestGMapEndToEnd(t *testing.T) {
	logical := schema.New("g")
	logical.MustAddElement("R", types.SetOf(types.StructOf(
		types.F("A", types.Int()),
		types.F("B", types.Int()),
		types.F("C", types.Int()),
	)), "")
	design := physical.NewDesign(logical).
		Add(physical.DirectStorage{Name: "R"}).
		Add(physical.GMap{
			Name:     "G",
			Bindings: []core.Binding{{Var: "r", Range: core.Name("R")}},
			DomOut:   core.Prj(core.V("r"), "A"),
			RangeOut: core.Struct(
				core.SF("B", core.Prj(core.V("r"), "B")),
				core.SF("C", core.Prj(core.V("r"), "C")),
			),
		})
	_, deps, _, err := design.Build()
	if err != nil {
		t.Fatal(err)
	}

	q := &core.Query{
		Out:      core.Prj(core.V("r"), "B"),
		Bindings: []core.Binding{{Var: "r", Range: core.Name("R")}},
		Conds:    []core.Cond{{L: core.Prj(core.V("r"), "A"), R: core.C(7)}},
	}
	res, err := Optimize(q, Options{Deps: deps})
	if err != nil {
		t.Fatal(err)
	}
	// Some candidate must be a gmap-only plan (single non-failing lookup
	// after simplification).
	var gmapPlan *core.Query
	for _, c := range res.Candidates {
		ns := c.Query.Names()
		if ns["G"] && !ns["R"] {
			gmapPlan = c.Query
			break
		}
	}
	if gmapPlan == nil {
		for _, c := range res.Candidates {
			t.Logf("candidate: %v", c.Query.SortedNames())
		}
		t.Fatal("gmap plan not found")
	}

	// Execute both on data and compare.
	rSet := instance.NewSet()
	buckets := map[int64]*instance.Set{}
	for i := int64(0); i < 30; i++ {
		a := i % 5
		row := instance.StructOf("A", instance.Int(a), "B", instance.Int(i), "C", instance.Int(i*2))
		rSet.Add(row)
		if buckets[a] == nil {
			buckets[a] = instance.NewSet()
		}
		buckets[a].Add(instance.StructOf("B", instance.Int(i), "C", instance.Int(i*2)))
	}
	g := instance.NewDict()
	for a, b := range buckets {
		g.Put(instance.Int(a), b)
	}
	in := instance.NewInstance()
	in.Bind("R", rSet)
	in.Bind("G", g)
	// The generated gmap satisfies its constraints.
	if name, err := eval.SatisfiesAll(deps, in); err != nil || name != "" {
		t.Fatalf("instance violates %s (%v)", name, err)
	}
	want, err := eval.Query(q, in)
	if err != nil {
		t.Fatal(err)
	}
	got, err := eval.Query(gmapPlan, in)
	if err != nil {
		t.Fatal(err)
	}
	// A=7 does not occur: both must be empty (non-failing lookup).
	if !got.Equal(want) {
		t.Errorf("gmap plan differs:\nwant %s\ngot  %s\nplan:\n%s", want, got, gmapPlan)
	}
	if want.Len() != 0 {
		t.Error("fixture expects an empty result for A=7")
	}

	// And a hit: A=3.
	q3 := q.Clone()
	q3.Conds = []core.Cond{{L: core.Prj(core.V("r"), "A"), R: core.C(3)}}
	res3, err := Optimize(q3, Options{Deps: deps})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res3.Candidates {
		got, err := eval.Query(c.Query, in)
		if err != nil {
			t.Fatalf("candidate failed: %v\n%s", err, c.Query)
		}
		want, _ := eval.Query(q3, in)
		if !got.Equal(want) {
			t.Errorf("candidate differs on A=3:\n%s", c.Query)
		}
	}
}

// TestHashTableEnablesHashJoinPlan exercises the §2 hash-table discussion:
// with a (transient) hash table on S.B, the join R ⋈ S rewrites into a
// plan probing the table, and the cost model charges the build.
func TestHashTableEnablesHashJoinPlan(t *testing.T) {
	logical := schema.New("h")
	logical.MustAddElement("R", types.SetOf(types.StructOf(
		types.F("A", types.Int()), types.F("B", types.Int()))), "")
	logical.MustAddElement("S", types.SetOf(types.StructOf(
		types.F("B", types.Int()), types.F("C", types.Int()))), "")
	design := physical.NewDesign(logical).
		Add(physical.DirectStorage{Name: "R"}).
		Add(physical.DirectStorage{Name: "S"}).
		Add(physical.HashTable{Name: "HS", Relation: "S", Attribute: "B"})
	_, deps, _, err := design.Build()
	if err != nil {
		t.Fatal(err)
	}
	q := &core.Query{
		Out: core.Struct(
			core.SF("A", core.Prj(core.V("r"), "A")),
			core.SF("C", core.Prj(core.V("s"), "C")),
		),
		Bindings: []core.Binding{
			{Var: "r", Range: core.Name("R")},
			{Var: "s", Range: core.Name("S")},
		},
		Conds: []core.Cond{{L: core.Prj(core.V("r"), "B"), R: core.Prj(core.V("s"), "B")}},
	}
	res, err := Optimize(q, Options{Deps: deps})
	if err != nil {
		t.Fatal(err)
	}
	// A hash-join-shaped plan: scan R, probe HS{r.B}.
	found := false
	for _, c := range res.Candidates {
		ns := c.Query.Names()
		if !ns["HS"] || ns["S"] {
			continue
		}
		for _, b := range c.Query.Bindings {
			if b.Range.Kind == core.KLookup && b.Range.NonFailing &&
				b.Range.Base.Equal(core.Name("HS")) {
				found = true
			}
		}
	}
	if !found {
		for _, c := range res.Candidates {
			t.Logf("candidate: %v\n%s", c.Query.SortedNames(), c.Query)
		}
		t.Error("hash-probe plan (R scan + HS{r.B} probe) not found")
	}
}
