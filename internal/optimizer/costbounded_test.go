package optimizer

import (
	"testing"

	"cnb/internal/backchase"
	"cnb/internal/cost"
	"cnb/internal/workload"
)

// TestCostBoundedOptimizeMatchesExhaustive: with CostBounded set the
// backchase explores (at most) a subset of the lattice, but the chosen
// plan's cost must match the exhaustive optimizer's — a pruned state is
// always costlier than some state the pruned run kept, under both the
// engine's quick metric and the optimizer's full ranking metric.
func TestCostBoundedOptimizeMatchesExhaustive(t *testing.T) {
	pd, err := workload.NewProjDept()
	if err != nil {
		t.Fatal(err)
	}
	in := pd.Generate(workload.GenOptions{NumDepts: 100, ProjsPerDept: 10, CitiBankShare: 0.01, Seed: 2})
	stats := cost.FromInstance(in)

	exhaustive, err := Optimize(pd.Q, Options{Deps: pd.AllDeps(), Stats: stats})
	if err != nil {
		t.Fatal(err)
	}
	bounded, err := Optimize(pd.Q, Options{Deps: pd.AllDeps(), Stats: stats, CostBounded: true})
	if err != nil {
		t.Fatal(err)
	}
	if bounded.States > exhaustive.States {
		t.Errorf("cost-bounded explored %d states, exhaustive %d", bounded.States, exhaustive.States)
	}
	if exhaustive.Pruned != 0 {
		t.Errorf("exhaustive run reports %d pruned states", exhaustive.Pruned)
	}
	if bounded.Best == nil || exhaustive.Best == nil {
		t.Fatal("missing best plan")
	}
	if bounded.Best.Cost != exhaustive.Best.Cost {
		t.Errorf("cost-bounded best %.3f != exhaustive best %.3f",
			bounded.Best.Cost, exhaustive.Best.Cost)
	}
}

// TestCostBoundedNoopWithoutStats: CostBounded without Stats keeps the
// fully deterministic exhaustive search.
func TestCostBoundedNoopWithoutStats(t *testing.T) {
	pd, err := workload.NewProjDept()
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Optimize(pd.Q, Options{Deps: pd.AllDeps()})
	if err != nil {
		t.Fatal(err)
	}
	bounded, err := Optimize(pd.Q, Options{Deps: pd.AllDeps(), CostBounded: true})
	if err != nil {
		t.Fatal(err)
	}
	if bounded.States != plain.States || bounded.Pruned != 0 {
		t.Errorf("CostBounded without Stats changed the search: states %d vs %d, pruned %d",
			bounded.States, plain.States, bounded.Pruned)
	}
}

// TestOptimizePlanCacheReuse: a shared PlanCache makes the second
// Optimize call on an equivalent query skip the backchase phase.
func TestOptimizePlanCacheReuse(t *testing.T) {
	pd, err := workload.NewProjDept()
	if err != nil {
		t.Fatal(err)
	}
	cache := backchase.NewPlanCache()
	opts := Options{Deps: pd.AllDeps(), Backchase: backchase.Options{Cache: cache}}

	first, err := Optimize(pd.Q, opts)
	if err != nil {
		t.Fatal(err)
	}
	if first.BackchaseCached {
		t.Error("first optimization must not be cached")
	}
	// An alpha-renamed query is equivalent and chases to a universal plan
	// with the same canonical signature.
	renamed := pd.Q.RenameVars(func(s string) string { return "q2_" + s })
	second, err := Optimize(renamed, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !second.BackchaseCached {
		t.Error("second optimization must reuse the cached backchase")
	}
	if second.Best == nil || first.Best == nil || second.Best.Cost != first.Best.Cost {
		t.Error("cached optimization chose a different best plan cost")
	}
	if c := cache.Counters(); c.Hits != 1 {
		t.Errorf("cache hits = %d, want 1", c.Hits)
	}
}
