package backchase

import (
	"fmt"
	"math/rand"
	"testing"

	"cnb/internal/chase"
	"cnb/internal/core"
	"cnb/internal/workload"
)

// TestIncrementalBackchaseDifferential gates the tentpole at the layer
// that consumes it: for randomized workloads, the full backchase lattice
// exploration must be identical whether the per-state equivalence chases
// run naive or delta-driven, at Parallelism 1, 2 and 8 — and the
// incremental engine must never do more chase steps than the naive one
// (the step sequences are equal per chase, so the totals must agree).
func TestIncrementalBackchaseDifferential(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	type scenario struct {
		label string
		q     *core.Query
		deps  []*core.Dependency
	}
	var scenarios []scenario

	for _, n := range []int{3, 4, 5} {
		c, err := workload.NewChain(n, n-1)
		if err != nil {
			t.Fatal(err)
		}
		scenarios = append(scenarios, scenario{fmt.Sprintf("chain n=%d", n), c.Q, c.Deps})
	}
	pd, err := workload.NewProjDept()
	if err != nil {
		t.Fatal(err)
	}
	scenarios = append(scenarios, scenario{"ProjDept", pd.Q, pd.AllDeps()})
	for i := 0; i < 6; i++ {
		cfg, _ := workload.RandomStar(r)
		s, err := workload.NewStar(cfg)
		if err != nil {
			t.Fatal(err)
		}
		scenarios = append(scenarios, scenario{fmt.Sprintf("star %d", i), s.Q, s.Deps})
	}

	for _, sc := range scenarios {
		chased, err := chase.Chase(sc.q, sc.deps, chase.Options{})
		if err != nil {
			t.Fatalf("%s: %v", sc.label, err)
		}
		var want string
		var wantSteps int64
		naiveMetrics := &chase.Metrics{}
		ref, err := Enumerate(chased.Query, sc.deps, Options{
			Parallelism: 1,
			Chase:       chase.Options{Naive: true, Metrics: naiveMetrics},
		})
		if err != nil {
			t.Fatalf("%s naive: %v", sc.label, err)
		}
		want = resultFingerprint(ref)
		wantSteps = naiveMetrics.ChaseSteps.Load()

		for _, par := range []int{1, 2, 8} {
			m := &chase.Metrics{}
			res, err := Enumerate(chased.Query, sc.deps, Options{
				Parallelism: par,
				Chase:       chase.Options{Metrics: m},
			})
			if err != nil {
				t.Fatalf("%s incremental p=%d: %v", sc.label, par, err)
			}
			if got := resultFingerprint(res); got != want {
				t.Errorf("%s p=%d: incremental result differs from naive reference:\nnaive:\n%s\nincremental:\n%s",
					sc.label, par, want, got)
			}
			// The single-flight cache makes total chase work identical for
			// every worker count, and the per-chase step sequences are
			// byte-identical across engines, so the totals must match.
			if got := m.ChaseSteps.Load(); got != wantSteps {
				t.Errorf("%s p=%d: chase steps = %d, naive reference = %d", sc.label, par, got, wantSteps)
			}
		}
	}
}

// TestIncrementalReducesHomTests pins the direction of the tentpole's
// win on a workload of the star family: the delta-driven engine must
// perform strictly fewer homomorphism tests than the naive engine for
// the same backchase (the E15 experiment quantifies the ratio).
func TestIncrementalReducesHomTests(t *testing.T) {
	s, err := workload.NewStar(workload.StarConfig{
		Dims: 2, Views: 1, FactIndexes: 1, DimIndex: true,
		Select: true, SelectA: 3, FKConstraints: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	chased, err := chase.Chase(s.Q, s.Deps, chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	naive, inc := &chase.Metrics{}, &chase.Metrics{}
	if _, err := Enumerate(chased.Query, s.Deps, Options{Parallelism: 1, Chase: chase.Options{Naive: true, Metrics: naive}}); err != nil {
		t.Fatal(err)
	}
	if _, err := Enumerate(chased.Query, s.Deps, Options{Parallelism: 1, Chase: chase.Options{Metrics: inc}}); err != nil {
		t.Fatal(err)
	}
	n, i := naive.HomTests.Load(), inc.HomTests.Load()
	if i >= n {
		t.Errorf("incremental hom tests %d not below naive %d", i, n)
	}
	if ratio := float64(n) / float64(i); ratio < 2 {
		t.Errorf("hom-test reduction %.2fx below the 2x the tentpole promises", ratio)
	}
}
