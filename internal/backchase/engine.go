// Parallel memoized backchase engine.
//
// The subquery lattice explored by the backchase is a DAG of states, each
// state a removal set of the root's binding variables (canonicalized by
// stateKey). Exploration order does not affect which states are reachable
// or which of them are normal forms — soundness of a removal is
// "equivalence of the induced subquery to the root", a property of the
// state alone — so the search parallelizes: a pool of workers pops states
// from a shared unbounded work queue, claims successors in a sharded
// visited set, and memoizes the expensive chase-based equivalence checks
// in a sharded single-flight cache so no canonically identical subquery
// is ever re-chased, even when two workers race to the same state.
//
// Determinism: results are reported in a canonical order (plans sorted by
// size then renaming-invariant signature, explored states by removal-set
// key), so for runs that complete without truncation or cancellation the
// Result is identical for every Parallelism value and across repeated
// runs. Under a MaxStates/MaxPlans cap or cancellation, *which* states
// get explored depends on scheduling; only then can results differ.
//
// Each equivalence check works on a pristine Clone of the root's
// canonical database (congruence closures mutate even on reads — see the
// congruence package comment), which both makes concurrent checks safe
// and keeps every check independent of what other checks interned before
// it.
package backchase

import (
	"context"
	"errors"
	"hash/maphash"
	"math"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"cnb/internal/chase"
	"cnb/internal/core"
	"cnb/internal/planrewrite"
)

const numShards = 32

// stateItem is one unit of work: a claimed state of the subquery lattice.
type stateItem struct {
	key     string          // canonical stateKey of removed
	removed map[string]bool // removed binding variables of the root
	q       *core.Query     // Subquery(root, removed)
	prio    float64         // estimated cost (best-first mode only)
	lb      float64         // admissible lower bound, fixed per state (best-first mode only)
}

// workQueue is an unbounded work pool with done-tracking: pending counts
// items enqueued but not yet fully processed, so workers can distinguish
// "queue momentarily empty" from "exploration finished". In FIFO mode
// (exhaustive search) items come out in insertion order; in ordered mode
// (cost-bounded best-first search) they come out cheapest-priority first,
// ties broken by state key so serial runs stay deterministic.
type workQueue struct {
	mu      sync.Mutex
	cond    *sync.Cond
	ordered bool
	items   []stateItem // FIFO backlog, or a binary min-heap when ordered
	head    int         // FIFO read position (unused when ordered)
	pending int
	stopped bool
}

func newWorkQueue(ordered bool) *workQueue {
	wq := &workQueue{ordered: ordered}
	wq.cond = sync.NewCond(&wq.mu)
	return wq
}

func (wq *workQueue) less(i, j int) bool {
	a, b := wq.items[i], wq.items[j]
	if a.prio != b.prio {
		return a.prio < b.prio
	}
	return a.key < b.key
}

func (wq *workQueue) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !wq.less(i, parent) {
			return
		}
		wq.items[i], wq.items[parent] = wq.items[parent], wq.items[i]
		i = parent
	}
}

func (wq *workQueue) down(i int) {
	n := len(wq.items)
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && wq.less(l, min) {
			min = l
		}
		if r < n && wq.less(r, min) {
			min = r
		}
		if min == i {
			return
		}
		wq.items[i], wq.items[min] = wq.items[min], wq.items[i]
		i = min
	}
}

func (wq *workQueue) push(it stateItem) {
	wq.mu.Lock()
	defer wq.mu.Unlock()
	if wq.stopped {
		return
	}
	wq.items = append(wq.items, it)
	if wq.ordered {
		wq.up(len(wq.items) - 1)
	}
	wq.pending++
	wq.cond.Signal()
}

// pop blocks until an item is available or the exploration is over
// (stopped, or no items left and none in flight).
func (wq *workQueue) pop() (stateItem, bool) {
	wq.mu.Lock()
	defer wq.mu.Unlock()
	for {
		if wq.stopped {
			return stateItem{}, false
		}
		if wq.ordered && len(wq.items) > 0 {
			it := wq.items[0]
			last := len(wq.items) - 1
			wq.items[0] = wq.items[last]
			wq.items[last] = stateItem{} // release for GC
			wq.items = wq.items[:last]
			wq.down(0)
			return it, true
		}
		if !wq.ordered && wq.head < len(wq.items) {
			it := wq.items[wq.head]
			wq.items[wq.head] = stateItem{} // release for GC
			wq.head++
			return it, true
		}
		if wq.pending == 0 {
			return stateItem{}, false
		}
		wq.cond.Wait()
	}
}

// taskDone marks one popped item fully processed (its successors pushed).
func (wq *workQueue) taskDone() {
	wq.mu.Lock()
	defer wq.mu.Unlock()
	wq.pending--
	if wq.pending == 0 {
		wq.cond.Broadcast()
	}
}

// stop aborts the exploration: blocked workers wake and exit.
func (wq *workQueue) stop() {
	wq.mu.Lock()
	defer wq.mu.Unlock()
	wq.stopped = true
	wq.cond.Broadcast()
}

// eqEntry is a single-flight slot of the equivalence cache: the first
// worker to claim a state computes, everyone else waits on done.
type eqEntry struct {
	done chan struct{}
	eq   bool
}

// subEntry caches a Subquery construction (sub == nil: construction
// failed or cascaded to the empty query).
type subEntry struct {
	sub *core.Query
}

// shard is one stripe of the engine's shared state, guarded by its own
// mutex to keep contention off the hot path.
type shard struct {
	mu   sync.Mutex
	seen map[string]bool
	eq   map[string]*eqEntry
	sub  map[string]*subEntry
	lb   map[string]float64
}

// planEntry is a registered normal form with its estimated cost (NaN when
// the engine runs without Stats).
type planEntry struct {
	q    *core.Query
	cost float64
}

// engine is the shared state of one parallel backchase run.
type engine struct {
	root      *core.Query
	deps      []*core.Dependency
	depIndex  *chase.DepIndex // premise index shared by every chase of the run
	opts      Options
	rootCanon *chase.Canon // pristine; cloned per equivalence check
	queue     *workQueue

	shards [numShards]shard
	seed   maphash.Seed

	states    atomic.Int64 // claimed states (visited-set size)
	pruned    atomic.Int64 // claimed states skipped by the cost bound
	truncated atomic.Bool

	// bound is the float64 bits of the pruning bound: the cheapest
	// complete-plan cost found so far, primed by Options.CostBudget.
	// It only ever decreases. Unused (+Inf) without Stats.
	bound atomic.Uint64
	// best is the float64 bits of the cheapest cost achieved by an
	// explored state or by any variant of a registered normal form's
	// isomorphism class (variants of one plan can quick-estimate
	// slightly differently), NOT primed by CostBudget — it is what
	// Result.BestCost reports.
	best atomic.Uint64

	plansMu sync.Mutex
	plans   map[string]planEntry // normalized signature -> plan

	errMu sync.Mutex
	err   error // first hard error; aborts the run
}

func newEngine(ctx context.Context, q *core.Query, deps []*core.Dependency, opts Options) (*engine, error) {
	// The dependency set is fixed for the whole run, so one premise index
	// serves the root chase and every lattice state's equivalence chases
	// (Options.Index lets the optimizer share its own chase phase's index).
	ix := opts.Index
	if ix == nil {
		ix = chase.NewDepIndex(deps)
	}
	res, err := chase.ChaseIndexed(ctx, q, ix, opts.Chase)
	if err != nil {
		return nil, err
	}
	e := &engine{
		root:      q,
		deps:      deps,
		depIndex:  ix,
		opts:      opts,
		rootCanon: opts.Chase.NewCanon(res.Query),
		queue:     newWorkQueue(opts.Stats != nil),
		seed:      maphash.MakeSeed(),
		plans:     map[string]planEntry{},
	}
	initialBound := math.Inf(1)
	if opts.Stats != nil && opts.CostBudget > 0 {
		initialBound = opts.CostBudget
	}
	e.bound.Store(math.Float64bits(initialBound))
	e.best.Store(math.Float64bits(math.Inf(1)))
	for i := range e.shards {
		e.shards[i].seen = map[string]bool{}
		e.shards[i].eq = map[string]*eqEntry{}
		e.shards[i].sub = map[string]*subEntry{}
		e.shards[i].lb = map[string]float64{}
	}
	return e, nil
}

// costPlan estimates the executable cost of a state or plan the way the
// optimizer's conventional phase will see it: guarded dom-loops collapsed
// into non-failing lookups, then a greedy binding reorder (the quick
// estimate — this runs for every enqueued lattice state, so the
// exhaustive small-plan permutation search would dominate the search
// itself). Pruning bound, queue priorities and Result.BestCost all use
// this one metric so they are mutually comparable.
func (e *engine) costPlan(q *core.Query) float64 {
	return e.opts.Stats.EstimateQuick(planrewrite.SimplifyLookups(q))
}

// lowerBound is the admissible floor used by push/pop pruning: the
// dictionary-aware cost.Stats.LowerBound by default, or the PR-2
// scan-only cost.Stats.ScanFloor when Options.ScanOnlyBound asks for the
// A/B comparison. The admissibility argument lives on LowerBound: min
// fanouts and groundability survive every rewrite the backchase performs,
// because rewrites only re-route access paths along equalities the state
// already implies — they never shrink the answer or invent equalities.
func (e *engine) lowerBound(q *core.Query) float64 {
	if e.opts.ScanOnlyBound {
		return e.opts.Stats.ScanFloor(q)
	}
	return e.opts.Stats.LowerBound(q)
}

// cachedLowerBound memoizes lowerBound per canonical state key: the
// dictionary-aware bound builds a congruence closure per call, and every
// parent of an already-generated candidate would otherwise recompute it
// on the search hot path (the bound is a pure function of the state, so
// the first stored value wins).
func (e *engine) cachedLowerBound(key string, q *core.Query) float64 {
	sh := e.shard(key)
	sh.mu.Lock()
	if v, ok := sh.lb[key]; ok {
		sh.mu.Unlock()
		return v
	}
	sh.mu.Unlock()
	v := e.lowerBound(q)
	sh.mu.Lock()
	if prev, ok := sh.lb[key]; ok {
		v = prev
	} else {
		sh.lb[key] = v
	}
	sh.mu.Unlock()
	return v
}

// boundValue reads the current pruning bound.
func (e *engine) boundValue() float64 {
	return math.Float64frombits(e.bound.Load())
}

// noteCandidate lowers the pruning bound to the cost of a verified
// equivalent plan that has been enqueued but not yet explored. The cost
// is genuinely achievable, so it may prune — but it must not yet count
// as Result.BestCost: under a CostBudget the state itself can still be
// pruned before exploration, and BestCost only reports what the Result
// actually contains.
func (e *engine) noteCandidate(c float64) {
	shrinkAtomicMin(&e.bound, c)
}

// noteAchieved lowers both the pruning bound and the best-seen cost: the
// plan with this cost is part of the Result (an explored state or a
// registered normal form).
func (e *engine) noteAchieved(c float64) {
	shrinkAtomicMin(&e.bound, c)
	shrinkAtomicMin(&e.best, c)
}

func shrinkAtomicMin(a *atomic.Uint64, c float64) {
	for {
		old := a.Load()
		if math.Float64frombits(old) <= c {
			return
		}
		if a.CompareAndSwap(old, math.Float64bits(c)) {
			return
		}
	}
}

func (e *engine) shard(key string) *shard {
	return &e.shards[maphash.String(e.seed, key)%numShards]
}

// stateKey canonicalizes a removal set against the root's binding order.
func (e *engine) stateKey(removed map[string]bool) string {
	var sb strings.Builder
	for _, b := range e.root.Bindings {
		if removed[b.Var] {
			sb.WriteString(b.Var)
			sb.WriteByte(';')
		}
	}
	return sb.String()
}

// claim marks the state visited, honoring the MaxStates cap. It returns
// true exactly once per state; the caller then owns enqueueing it. The
// budget slot is reserved with a compare-and-swap so concurrent claims
// on different shards can never overshoot MaxStates.
func (e *engine) claim(key string) bool {
	sh := e.shard(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.seen[key] {
		return false
	}
	for {
		n := e.states.Load()
		if n >= int64(e.opts.MaxStates) {
			e.truncated.Store(true)
			return false
		}
		if e.states.CompareAndSwap(n, n+1) {
			break
		}
	}
	sh.seen[key] = true
	return true
}

// markPruned marks a cost-pruned candidate state visited WITHOUT
// consuming the MaxStates budget: the state is never explored (no chase,
// no successors), so charging it against the exploration budget would
// make the engine report truncation while the explored count is far
// below MaxStates. Returns true exactly once per state, like claim.
func (e *engine) markPruned(key string) bool {
	sh := e.shard(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.seen[key] {
		return false
	}
	sh.seen[key] = true
	return true
}

// fail records the first hard error and aborts the run.
func (e *engine) fail(err error) {
	e.errMu.Lock()
	if e.err == nil {
		e.err = err
	}
	e.errMu.Unlock()
	e.queue.stop()
}

func (e *engine) firstErr() error {
	e.errMu.Lock()
	defer e.errMu.Unlock()
	return e.err
}

// plansFull reports whether the MaxPlans cap has been reached.
func (e *engine) plansFull() bool {
	if e.opts.MaxPlans <= 0 {
		return false
	}
	e.plansMu.Lock()
	defer e.plansMu.Unlock()
	return len(e.plans) >= e.opts.MaxPlans
}

// addPlan normalizes and registers a normal form, deduplicating by
// renaming-invariant signature and honoring the MaxPlans cap. Two
// distinct states can normalize to isomorphic plans with the same
// signature but different variable names (symmetric self-joins); the
// representative kept is the one with the lexicographically smallest
// canonical rendering, not whichever worker arrived first, so the
// reported plan set is independent of scheduling.
func (e *engine) addPlan(cur *core.Query) {
	plan := normalizeIndexed(context.Background(), cur, e.depIndex, e.opts.Chase)
	cost := math.NaN()
	if e.opts.Stats != nil {
		cost = e.costPlan(plan)
		// The cost is achieved by the search whether or not the plan
		// lands in the (possibly MaxPlans-capped) result, so it may
		// tighten the pruning bound — but BestCost only reports plans
		// whose isomorphism class the Result actually contains, so
		// noteAchieved waits until the plan is registered below.
		e.noteCandidate(cost)
	}
	psig := plan.CanonicalSignature()
	e.plansMu.Lock()
	prev, dup := e.plans[psig]
	full := e.opts.MaxPlans > 0 && len(e.plans) >= e.opts.MaxPlans
	switch {
	case dup:
		// Isomorphic variants of one plan carry different variable
		// names (their canonical orders agree up to renaming); the
		// entry keeps the representative with the lexicographically
		// smallest normalized rendering but the cheapest cost seen for
		// the class, so the plan ordering and BestCost stay
		// schedule-independent.
		ent := prev
		if plan.NormalizeBindingOrder().String() < prev.q.NormalizeBindingOrder().String() {
			ent.q = plan
		}
		if e.opts.Stats != nil && cost < ent.cost {
			ent.cost = cost
		}
		e.plans[psig] = ent
	case !full:
		e.plans[psig] = planEntry{q: plan, cost: cost}
	}
	e.plansMu.Unlock()
	if e.opts.Stats != nil && (dup || !full) {
		e.noteAchieved(cost)
	}
	if !dup && full {
		e.truncated.Store(true)
		e.queue.stop()
	}
}

// cachedSubquery memoizes Subquery(root, grown) per canonical key. Two
// workers may race to compute the same construction; the first stored
// value wins (both compute identical results — Subquery is
// deterministic).
func (e *engine) cachedSubquery(key string, grown map[string]bool) *core.Query {
	sh := e.shard(key)
	sh.mu.Lock()
	if ent, ok := sh.sub[key]; ok {
		sh.mu.Unlock()
		return ent.sub
	}
	sh.mu.Unlock()
	sub, ok := Subquery(e.root, grown)
	if !ok {
		sub = nil
	}
	sh.mu.Lock()
	if ent, prev := sh.sub[key]; prev {
		sub = ent.sub
	} else {
		sh.sub[key] = &subEntry{sub: sub}
	}
	sh.mu.Unlock()
	return sub
}

// equivalence memoizes "is Subquery(root, removed-set-of-fullKey)
// equivalent to the root", single-flighted so a canonically identical
// subquery is never re-chased: the first worker to claim the key runs
// the chase-based check, concurrent workers for the same key block until
// it lands. Budget exhaustion on a candidate means the removal cannot be
// verified and is treated as unsound (matching the serial engine).
func (e *engine) equivalence(ctx context.Context, fullKey string, sub *core.Query) (bool, error) {
	sh := e.shard(fullKey)
	sh.mu.Lock()
	if ent, ok := sh.eq[fullKey]; ok {
		sh.mu.Unlock()
		select {
		case <-ent.done:
			return ent.eq, nil
		case <-ctx.Done():
			return false, ctx.Err()
		}
	}
	ent := &eqEntry{done: make(chan struct{})}
	sh.eq[fullKey] = ent
	sh.mu.Unlock()
	defer close(ent.done)

	eq, err := e.equivalentToRoot(ctx, sub)
	if err != nil {
		if _, budget := err.(*chase.ErrBudget); budget {
			ent.eq = false
			return false, nil
		}
		ent.eq = false
		return false, err
	}
	ent.eq = eq
	return eq, nil
}

// equivalentToRoot checks sub ≡ root under the dependencies.
// Direction root ⊑ sub: containment mapping from sub into a pristine
// clone of the precomputed chase(root) — cloning keeps the shared canon
// immutable and the check independent of concurrent checks.
// Direction sub ⊑ root: chase(sub), then map root into it.
func (e *engine) equivalentToRoot(ctx context.Context, sub *core.Query) (bool, error) {
	cn := e.rootCanon.Clone()
	avoid := cn.Q.BoundVars()
	subF := sub.RenameVars(core.FreshRenaming("h_", avoid))
	if len(cn.HomsOfQueryInto(subF, cn.Q.Out, 1)) == 0 {
		return false, nil
	}
	return containedIndexed(ctx, sub, e.root, e.depIndex, e.opts.Chase)
}

// buildCandidate constructs the candidate state for removing the named
// binding on top of the already-removed set, cascading to dependent
// bindings that cannot be re-expressed. Returns the grown (canonicalized)
// removal set, its state key and the subquery, or nils if the
// construction is impossible. No equivalence check happens here.
func (e *engine) buildCandidate(removed map[string]bool, v string) (map[string]bool, string, *core.Query) {
	grown := make(map[string]bool, len(removed)+1)
	for r := range removed {
		grown[r] = true
	}
	grown[v] = true

	sub := e.cachedSubquery(e.stateKey(grown), grown)
	if sub == nil || len(sub.Bindings) == 0 {
		return nil, "", nil
	}
	// The cascade may have removed more variables; canonicalize the set.
	surviving := sub.BoundVars()
	full := map[string]bool{}
	for _, b := range e.root.Bindings {
		if !surviving[b.Var] {
			full[b.Var] = true
		}
	}
	return full, e.stateKey(full), sub
}

// tryRemove attempts a backchase step eliminating the named binding:
// buildCandidate plus the chase-based equivalence check. Returns the
// grown removal set and the resulting subquery, or nils if the step is
// unsound or impossible.
func (e *engine) tryRemove(ctx context.Context, removed map[string]bool, v string) (map[string]bool, *core.Query, error) {
	full, fullKey, sub := e.buildCandidate(removed, v)
	if sub == nil {
		return nil, nil, nil
	}
	eq, err := e.equivalence(ctx, fullKey, sub)
	if err != nil || !eq {
		return nil, nil, err
	}
	return full, sub, nil
}

// process explores one claimed state: record it, try every single-binding
// removal, enqueue unseen sound successors, and register the state as a
// normal form if no removal applies.
//
// In cost-bounded mode the state is first re-checked against the pruning
// bound (it may have shrunk since the state was enqueued): every plan
// reachable below it costs at least it.lb, the admissible floor computed
// once when the state was claimed (removals only shrink the binding set
// and monotonically shrink the congruence the floor is derived from — see
// the admissibility argument on cost.Stats.LowerBound) — so when that
// exceeds the cheapest complete plan already known the whole subtree is
// skipped without a single chase. Candidate
// successors get the same treatment before their equivalence check: a
// candidate whose lower bound beats the bound is claimed, counted as
// pruned and never chased. The bound itself shrinks from two sources:
// every verified state is a complete equivalent plan (the backchase is an
// anytime rewriting, §4), so both enqueued states and registered normal
// forms lower it. The bound only ever shrinks, so a state pruned now
// would also be pruned later — pruning is never retried.
//
// Cost-skipping an unverified candidate means its parent can no longer
// tell whether that removal was sound, so the parent may register itself
// as a "normal form" conservatively; under Stats, Result.Plans is
// therefore "cheapest plans found" rather than "all minimal plans" (the
// skipped candidate costs more than the bound, so the cheapest plan is
// unaffected).
func (e *engine) process(ctx context.Context, w *worker, it stateItem) error {
	costed := e.opts.Stats != nil
	if costed && it.lb > e.boundValue() {
		e.pruned.Add(1)
		return nil
	}
	w.explored = append(w.explored, it)
	if costed {
		e.noteAchieved(it.prio)
	}
	normal := true
	for _, b := range it.q.Bindings {
		if err := ctx.Err(); err != nil {
			return err
		}
		if e.plansFull() {
			e.truncated.Store(true)
			return nil
		}
		full, fullKey, sub := e.buildCandidate(it.removed, b.Var)
		if sub == nil {
			continue
		}
		var subLB float64
		if costed {
			subLB = e.cachedLowerBound(fullKey, sub)
			if subLB > e.boundValue() {
				// Too expensive to ever matter: mark it visited so no other
				// parent re-considers it, skip the chase-based equivalence
				// check, and leave the MaxStates budget untouched.
				if e.markPruned(fullKey) {
					e.pruned.Add(1)
				}
				continue
			}
		}
		eq, err := e.equivalence(ctx, fullKey, sub)
		if err != nil {
			return err
		}
		if !eq {
			continue
		}
		normal = false
		if e.claim(fullKey) {
			next := stateItem{key: fullKey, removed: full, q: sub, lb: subLB}
			if costed {
				next.prio = e.costPlan(sub)
				e.noteCandidate(next.prio)
			}
			e.queue.push(next)
		}
	}
	if normal {
		e.addPlan(it.q)
	}
	return nil
}

// worker holds per-goroutine state: the explored-state log, merged after
// the pool drains (avoids a global lock on the exploration hot path).
type worker struct {
	explored []stateItem
}

// run is the worker loop: pop, process, mark done, until the queue drains
// or the run aborts.
func (e *engine) run(ctx context.Context, w *worker) {
	for {
		it, ok := e.queue.pop()
		if !ok {
			return
		}
		err := e.process(ctx, w, it)
		e.queue.taskDone()
		if err != nil {
			e.fail(err)
			return
		}
	}
}

// enumerate drives the full parallel exploration from the root and
// assembles the deterministic Result.
func (e *engine) enumerate(ctx context.Context, parallelism int) (*Result, error) {
	rootItem := stateItem{key: "", removed: map[string]bool{}, q: e.root}
	if e.opts.Stats != nil {
		// The root (the universal plan) is itself a complete equivalent
		// plan; its cost seeds the pruning bound.
		rootItem.prio = e.costPlan(e.root)
		rootItem.lb = e.lowerBound(e.root)
		e.noteCandidate(rootItem.prio)
	}
	e.claim(rootItem.key)
	e.queue.push(rootItem)

	workers := make([]*worker, parallelism)
	var wg sync.WaitGroup
	for i := range workers {
		workers[i] = &worker{}
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			e.run(ctx, w)
		}(workers[i])
	}
	wg.Wait()

	var all []stateItem
	for _, w := range workers {
		all = append(all, w.explored...)
	}
	sortStates(all)

	res := &Result{
		States:    len(all),
		Pruned:    int(e.pruned.Load()),
		Truncated: e.truncated.Load(),
	}
	for _, it := range all {
		res.Explored = append(res.Explored, it.q)
	}
	res.Plans = e.sortedPlans()
	if e.opts.Stats != nil {
		res.BestCost = math.Float64frombits(e.best.Load())
		if e.opts.TopK > 0 && len(res.Plans) > e.opts.TopK {
			res.Plans = res.Plans[:e.opts.TopK]
		}
	}

	err := e.firstErr()
	switch {
	case err == nil:
		return res, nil
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		// Cancellation: hand back what was completed along with the
		// cause, so callers can use the partial result.
		return res, err
	default:
		// A hard error must never be masked by a context that was also
		// cancelled before the pool drained.
		return nil, err
	}
}

// sortedPlans returns the collected normal forms in canonical order.
// Without Stats the order is ascending size then renaming-invariant
// signature (a pure function of the plan set, stable across worker
// interleavings); with Stats plans come cheapest first (ties by size
// then signature).
func (e *engine) sortedPlans() []*core.Query {
	e.plansMu.Lock()
	defer e.plansMu.Unlock()
	type entry struct {
		sig string
		p   planEntry
	}
	entries := make([]entry, 0, len(e.plans))
	for sig, p := range e.plans {
		entries = append(entries, entry{sig, p})
	}
	costed := e.opts.Stats != nil
	sort.Slice(entries, func(i, j int) bool {
		a, b := entries[i], entries[j]
		if costed && a.p.cost != b.p.cost {
			return a.p.cost < b.p.cost
		}
		if len(a.p.q.Bindings) != len(b.p.q.Bindings) {
			return len(a.p.q.Bindings) < len(b.p.q.Bindings)
		}
		return a.sig < b.sig
	})
	out := make([]*core.Query, len(entries))
	for i, en := range entries {
		out[i] = en.p.q
	}
	return out
}

// sortStates orders explored states canonically: fewer removed variables
// first (the root leads), then by removal-set key.
func sortStates(items []stateItem) {
	sort.Slice(items, func(i, j int) bool {
		a, b := items[i], items[j]
		ra, rb := strings.Count(a.key, ";"), strings.Count(b.key, ";")
		if ra != rb {
			return ra < rb
		}
		return a.key < b.key
	})
}

// firstRemoval finds the first (in binding order) sound removal from the
// current state. With one worker it short-circuits sequentially like the
// serial engine; with more it evaluates all candidates concurrently and
// keeps the lowest index that succeeds — the same removal either way, so
// MinimizeOne stays deterministic.
func (e *engine) firstRemoval(ctx context.Context, parallelism int, removed map[string]bool, cur *core.Query) (map[string]bool, *core.Query, error) {
	if parallelism <= 1 || len(cur.Bindings) == 1 {
		for _, b := range cur.Bindings {
			next, nextQ, err := e.tryRemove(ctx, removed, b.Var)
			if err != nil {
				return nil, nil, err
			}
			if next != nil {
				return next, nextQ, nil
			}
		}
		return nil, nil, nil
	}

	type outcome struct {
		next map[string]bool
		q    *core.Query
		err  error
	}
	results := make([]outcome, len(cur.Bindings))
	var idx atomic.Int64
	// best tracks the lowest index with a sound removal so far: workers
	// skip candidates that can no longer win, keeping the total chase
	// work close to the serial short-circuit (skipped high-index results
	// would be useless next round anyway — the removal set changes).
	var best atomic.Int64
	best.Store(int64(len(cur.Bindings)))
	var wg sync.WaitGroup
	n := parallelism
	if n > len(cur.Bindings) {
		n = len(cur.Bindings)
	}
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(idx.Add(1)) - 1
				if i >= len(cur.Bindings) {
					return
				}
				if int64(i) > best.Load() {
					continue
				}
				next, q, err := e.tryRemove(ctx, removed, cur.Bindings[i].Var)
				results[i] = outcome{next, q, err}
				if err == nil && next != nil {
					for {
						b := best.Load()
						if int64(i) >= b || best.CompareAndSwap(b, int64(i)) {
							break
						}
					}
				}
			}
		}()
	}
	wg.Wait()
	// Scan in binding order: at the first index with an outcome (success
	// or error), behave exactly like the serial loop would have there.
	// Unevaluated slots above a success are zero-valued and ignored.
	for _, r := range results {
		if r.err != nil {
			return nil, nil, r.err
		}
		if r.next != nil {
			return r.next, r.q, nil
		}
	}
	return nil, nil, nil
}

// parallelismOrDefault resolves Options.Parallelism (0 = all cores).
func (o Options) parallelismOrDefault() int {
	if o.Parallelism > 0 {
		return o.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}
