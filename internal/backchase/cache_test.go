package backchase

import (
	"fmt"
	"sync"
	"testing"

	"cnb/internal/chase"
	"cnb/internal/core"
	"cnb/internal/cost"
)

// TestPlanCacheHitOnRepeat: the second enumeration of the same root is
// served from the cache — identical result, FromCache set, one hit.
func TestPlanCacheHitOnRepeat(t *testing.T) {
	deps := projDeptDeps()
	chased, err := chase.Chase(projDeptQuery(), deps, chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cache := NewPlanCache()
	opts := Options{Parallelism: 2, Cache: cache}

	first, err := Enumerate(chased.Query, deps, opts)
	if err != nil {
		t.Fatal(err)
	}
	if first.FromCache {
		t.Error("first run must not be FromCache")
	}
	second, err := Enumerate(chased.Query, deps, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !second.FromCache {
		t.Error("second run must be served from the cache")
	}
	// Identical payload (FromCache aside).
	cp := *second
	cp.FromCache = false
	if resultFingerprint(&cp) != resultFingerprint(first) {
		t.Error("cached result differs from the computed one")
	}
	if c := cache.Counters(); c.Hits != 1 || c.Misses != 1 {
		t.Errorf("counters = (%d hits, %d misses), want (1, 1)", c.Hits, c.Misses)
	}
	if cache.Len() != 1 {
		t.Errorf("cache holds %d entries, want 1", cache.Len())
	}
}

// TestPlanCacheHitAcrossRenaming: the key is the renaming-invariant
// canonical signature, so an alpha-renamed root — a different Query
// value describing the same plan — hits the same entry.
func TestPlanCacheHitAcrossRenaming(t *testing.T) {
	deps := projDeptDeps()
	chased, err := chase.Chase(projDeptQuery(), deps, chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cache := NewPlanCache()
	opts := Options{Parallelism: 2, Cache: cache}
	if _, err := Enumerate(chased.Query, deps, opts); err != nil {
		t.Fatal(err)
	}
	renamed := chased.Query.RenameVars(func(s string) string { return "zz_" + s })
	res, err := Enumerate(renamed, deps, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.FromCache {
		t.Error("alpha-renamed root must hit the cache")
	}
}

// TestPlanCacheKeySensitivity: result-affecting options and the
// dependency set are part of the key.
func TestPlanCacheKeySensitivity(t *testing.T) {
	q := redundantTriple()
	cache := NewPlanCache()
	if _, err := Enumerate(q, nil, Options{Cache: cache}); err != nil {
		t.Fatal(err)
	}
	// Different MaxPlans: must recompute.
	res, err := Enumerate(q, nil, Options{Cache: cache, MaxPlans: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.FromCache {
		t.Error("different MaxPlans must miss the cache")
	}
	// Different dependency set: must recompute.
	dep := &core.Dependency{
		Name:            "KEY_R",
		Premise:         []core.Binding{{Var: "a", Range: core.Name("R")}, {Var: "b", Range: core.Name("R")}},
		PremiseConds:    []core.Cond{{L: core.Prj(core.V("a"), "A"), R: core.Prj(core.V("b"), "A")}},
		ConclusionConds: []core.Cond{{L: core.V("a"), R: core.V("b")}},
	}
	res, err = Enumerate(q, []*core.Dependency{dep}, Options{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if res.FromCache {
		t.Error("different dependency set must miss the cache")
	}
	// Different stats: must recompute.
	stats := cost.NewStats()
	stats.Card["R"] = 42
	res, err = Enumerate(q, nil, Options{Cache: cache, Stats: stats})
	if err != nil {
		t.Fatal(err)
	}
	if res.FromCache {
		t.Error("different stats must miss the cache")
	}
	// Parallelism is excluded from the key on purpose.
	res, err = Enumerate(q, nil, Options{Cache: cache, Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !res.FromCache {
		t.Error("parallelism must not be part of the cache key")
	}
}

// TestPlanCacheEvictsWhenFull: the entry cap evicts rather than grows.
// Pinned to a single shard so the bound (and the eviction count) is
// globally exact instead of per-stripe.
func TestPlanCacheEvictsWhenFull(t *testing.T) {
	cache := NewPlanCacheSharded(2, 1)
	stats := []*cost.Stats{cost.NewStats(), cost.NewStats(), cost.NewStats()}
	for i, s := range stats {
		s.Card["R"] = float64(10 * (i + 1)) // three distinct cache keys
		if _, err := Enumerate(redundantTriple(), nil, Options{Cache: cache, Stats: s}); err != nil {
			t.Fatal(err)
		}
	}
	if cache.Len() != 2 {
		t.Errorf("cache holds %d entries, cap is 2", cache.Len())
	}
	if c := cache.Counters(); c.Evictions != 1 {
		t.Errorf("evictions = %d, want exactly 1", c.Evictions)
	}
}

// TestPlanCacheLRUSingleShard pins the exact LRU and counter semantics on
// a deterministic single-shard cache: a get refreshes recency, a full
// shard evicts its least-recently-used entry (not a random victim), and
// the hit/miss/eviction counters are exact — the property the E16 gated
// counter metrics rely on.
func TestPlanCacheLRUSingleShard(t *testing.T) {
	cache := NewPlanCacheSharded(2, 1)
	resA, resB, resC := &Result{States: 1}, &Result{States: 2}, &Result{States: 3}
	cache.put("a", "", resA)
	cache.put("b", "", resB)
	if _, ok := cache.get("a"); !ok { // refreshes a: LRU order is now b, a
		t.Fatal("a must be cached")
	}
	cache.put("c", "", resC) // evicts b, the least recently used
	if _, ok := cache.get("b"); ok {
		t.Error("b must have been evicted as the LRU entry")
	}
	got, ok := cache.get("a")
	if !ok {
		t.Error("a must survive the eviction (it was refreshed)")
	} else if got.States != resA.States {
		t.Errorf("a returned States=%d, want %d", got.States, resA.States)
	}
	if !got.FromCache {
		t.Error("cached result must be marked FromCache")
	}
	if resA.FromCache {
		t.Error("FromCache leaked into the stored entry")
	}
	if _, ok := cache.get("c"); !ok {
		t.Error("c must be cached")
	}
	if c := cache.Counters(); c != (CacheCounters{Hits: 3, Misses: 1, Evictions: 1}) {
		t.Errorf("counters = %+v, want exactly {Hits:3 Misses:1 Evictions:1}", c)
	}
	if cache.Len() != 2 {
		t.Errorf("cache holds %d entries, want 2", cache.Len())
	}
	// Re-putting an existing key is a no-op (first writer wins), not a
	// second entry or an eviction.
	cache.put("a", "", resB)
	if got, _ := cache.get("a"); got == nil || got.States != resA.States {
		t.Error("re-put must not overwrite the first writer's entry")
	}
}

// TestPlanCacheSmallSizeSingleShard: a small bounded cache collapses to
// one shard so the bound stays global — any keys fit up to the cap, no
// matter how they would have hashed across stripes.
func TestPlanCacheSmallSizeSingleShard(t *testing.T) {
	cache := NewPlanCacheWithSize(4)
	for _, k := range []string{"a", "b", "c", "d"} {
		cache.put(k, "", &Result{})
	}
	if cache.Len() != 4 {
		t.Errorf("cache holds %d entries, want all 4 within the global bound", cache.Len())
	}
	if c := cache.Counters(); c.Evictions != 0 {
		t.Errorf("evictions = %d, want 0 below the bound", c.Evictions)
	}
	cache.put("e", "", &Result{})
	if cache.Len() != 4 {
		t.Errorf("cache holds %d entries past its 4-entry bound", cache.Len())
	}
	if _, ok := cache.get("a"); ok {
		t.Error("global LRU must have evicted the oldest entry, a")
	}
}

// TestPlanCacheInvalidateStats: only entries computed under a differing
// statistics fingerprint are dropped; stats-free entries and entries
// matching the new snapshot survive.
func TestPlanCacheInvalidateStats(t *testing.T) {
	cache := NewPlanCacheSharded(8, 4)
	cache.put("free", "", &Result{})
	cache.put("old", "fp-old", &Result{})
	cache.put("new", "fp-new", &Result{})
	if n := cache.InvalidateStats("fp-new"); n != 1 {
		t.Errorf("InvalidateStats dropped %d entries, want 1", n)
	}
	if _, ok := cache.get("old"); ok {
		t.Error("entry under the old fingerprint must be invalidated")
	}
	if _, ok := cache.get("free"); !ok {
		t.Error("stats-independent entry must survive the swap")
	}
	if _, ok := cache.get("new"); !ok {
		t.Error("entry under the current fingerprint must survive the swap")
	}
	if c := cache.Counters(); c.Invalidated != 1 {
		t.Errorf("invalidated = %d, want 1", c.Invalidated)
	}
}

// TestPlanCacheConcurrentAccess hammers get/put/InvalidateStats across
// shards under the race detector.
func TestPlanCacheConcurrentAccess(t *testing.T) {
	cache := NewPlanCacheWithSize(64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", i%96)
				if _, ok := cache.get(key); !ok {
					cache.put(key, fmt.Sprintf("fp%d", i%3), &Result{States: i})
				}
				if i%50 == 0 {
					cache.InvalidateStats("fp0")
				}
			}
		}(w)
	}
	wg.Wait()
	if n := cache.Len(); n > 64 {
		t.Errorf("cache grew to %d entries past its 64-entry bound", n)
	}
	c := cache.Counters()
	if c.Hits+c.Misses != 8*200 {
		t.Errorf("hits+misses = %d, want %d", c.Hits+c.Misses, 8*200)
	}
}

// TestPlanCacheSkipsTruncatedRuns: a truncated (incomplete) result must
// not poison the cache.
func TestPlanCacheSkipsTruncatedRuns(t *testing.T) {
	deps := projDeptDeps()
	chased, err := chase.Chase(projDeptQuery(), deps, chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cache := NewPlanCache()
	res, err := Enumerate(chased.Query, deps, Options{Cache: cache, MaxStates: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated {
		t.Fatal("MaxStates=3 must truncate")
	}
	if cache.Len() != 0 {
		t.Errorf("truncated result was cached (%d entries)", cache.Len())
	}
}
