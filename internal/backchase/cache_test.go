package backchase

import (
	"testing"

	"cnb/internal/chase"
	"cnb/internal/core"
	"cnb/internal/cost"
)

// TestPlanCacheHitOnRepeat: the second enumeration of the same root is
// served from the cache — identical result, FromCache set, one hit.
func TestPlanCacheHitOnRepeat(t *testing.T) {
	deps := projDeptDeps()
	chased, err := chase.Chase(projDeptQuery(), deps, chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cache := NewPlanCache()
	opts := Options{Parallelism: 2, Cache: cache}

	first, err := Enumerate(chased.Query, deps, opts)
	if err != nil {
		t.Fatal(err)
	}
	if first.FromCache {
		t.Error("first run must not be FromCache")
	}
	second, err := Enumerate(chased.Query, deps, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !second.FromCache {
		t.Error("second run must be served from the cache")
	}
	// Identical payload (FromCache aside).
	cp := *second
	cp.FromCache = false
	if resultFingerprint(&cp) != resultFingerprint(first) {
		t.Error("cached result differs from the computed one")
	}
	if hits, misses := cache.Counters(); hits != 1 || misses != 1 {
		t.Errorf("counters = (%d hits, %d misses), want (1, 1)", hits, misses)
	}
	if cache.Len() != 1 {
		t.Errorf("cache holds %d entries, want 1", cache.Len())
	}
}

// TestPlanCacheHitAcrossRenaming: the key is the renaming-invariant
// canonical signature, so an alpha-renamed root — a different Query
// value describing the same plan — hits the same entry.
func TestPlanCacheHitAcrossRenaming(t *testing.T) {
	deps := projDeptDeps()
	chased, err := chase.Chase(projDeptQuery(), deps, chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cache := NewPlanCache()
	opts := Options{Parallelism: 2, Cache: cache}
	if _, err := Enumerate(chased.Query, deps, opts); err != nil {
		t.Fatal(err)
	}
	renamed := chased.Query.RenameVars(func(s string) string { return "zz_" + s })
	res, err := Enumerate(renamed, deps, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.FromCache {
		t.Error("alpha-renamed root must hit the cache")
	}
}

// TestPlanCacheKeySensitivity: result-affecting options and the
// dependency set are part of the key.
func TestPlanCacheKeySensitivity(t *testing.T) {
	q := redundantTriple()
	cache := NewPlanCache()
	if _, err := Enumerate(q, nil, Options{Cache: cache}); err != nil {
		t.Fatal(err)
	}
	// Different MaxPlans: must recompute.
	res, err := Enumerate(q, nil, Options{Cache: cache, MaxPlans: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.FromCache {
		t.Error("different MaxPlans must miss the cache")
	}
	// Different dependency set: must recompute.
	dep := &core.Dependency{
		Name:            "KEY_R",
		Premise:         []core.Binding{{Var: "a", Range: core.Name("R")}, {Var: "b", Range: core.Name("R")}},
		PremiseConds:    []core.Cond{{L: core.Prj(core.V("a"), "A"), R: core.Prj(core.V("b"), "A")}},
		ConclusionConds: []core.Cond{{L: core.V("a"), R: core.V("b")}},
	}
	res, err = Enumerate(q, []*core.Dependency{dep}, Options{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if res.FromCache {
		t.Error("different dependency set must miss the cache")
	}
	// Different stats: must recompute.
	stats := cost.NewStats()
	stats.Card["R"] = 42
	res, err = Enumerate(q, nil, Options{Cache: cache, Stats: stats})
	if err != nil {
		t.Fatal(err)
	}
	if res.FromCache {
		t.Error("different stats must miss the cache")
	}
	// Parallelism is excluded from the key on purpose.
	res, err = Enumerate(q, nil, Options{Cache: cache, Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !res.FromCache {
		t.Error("parallelism must not be part of the cache key")
	}
}

// TestPlanCacheEvictsWhenFull: the entry cap evicts rather than grows.
func TestPlanCacheEvictsWhenFull(t *testing.T) {
	cache := NewPlanCacheWithSize(2)
	stats := []*cost.Stats{cost.NewStats(), cost.NewStats(), cost.NewStats()}
	for i, s := range stats {
		s.Card["R"] = float64(10 * (i + 1)) // three distinct cache keys
		if _, err := Enumerate(redundantTriple(), nil, Options{Cache: cache, Stats: s}); err != nil {
			t.Fatal(err)
		}
	}
	if cache.Len() != 2 {
		t.Errorf("cache holds %d entries, cap is 2", cache.Len())
	}
}

// TestPlanCacheSkipsTruncatedRuns: a truncated (incomplete) result must
// not poison the cache.
func TestPlanCacheSkipsTruncatedRuns(t *testing.T) {
	deps := projDeptDeps()
	chased, err := chase.Chase(projDeptQuery(), deps, chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cache := NewPlanCache()
	res, err := Enumerate(chased.Query, deps, Options{Cache: cache, MaxStates: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated {
		t.Fatal("MaxStates=3 must truncate")
	}
	if cache.Len() != 0 {
		t.Errorf("truncated result was cached (%d entries)", cache.Len())
	}
}
