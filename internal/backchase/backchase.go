// Package backchase implements the second phase of the chase & backchase
// method (§3 of Deutsch, Popa, Tannen, VLDB 1999): starting from the
// universal plan, repeatedly eliminate bindings whose removal preserves
// equivalence under the dependencies, producing the minimal plans.
//
// A backchase step removing binding "R y" from query Q must satisfy
// (paper's conditions):
//
//  1. the remaining conditions C' are implied by C,
//  2. the output O' is congruent to O and avoids y,
//  3. the constraint ∀(survivors) C' → ∃ y∈R. C is implied by the
//     dependencies — equivalently, the reduced query is equivalent to Q
//     under the dependencies, which we verify with a chase-based
//     containment check in both directions.
//
// Theorem 2 (Complete Backchase): the minimal equivalent subqueries of Q
// are exactly the normal forms of backchasing Q. Enumerate explores every
// backchase sequence and returns all normal forms.
package backchase

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"cnb/internal/chase"
	"cnb/internal/congruence"
	"cnb/internal/core"
	"cnb/internal/cost"
)

// Options tunes the backchase.
type Options struct {
	// Chase configures the embedded chase runs used by equivalence checks.
	Chase chase.Options
	// MaxPlans caps the number of distinct normal forms collected
	// (0 = no cap).
	MaxPlans int
	// MaxStates caps the number of distinct intermediate subqueries
	// explored (0 = default 100000), a safety valve for adversarial
	// inputs — the search space is exponential in the number of
	// redundant bindings (§5). Under Stats, candidates pruned before
	// their equivalence check do not count against the cap; a state
	// pruned after being enqueued does (it was claimed while still
	// eligible for exploration).
	MaxStates int
	// Parallelism is the number of workers exploring the subquery
	// lattice concurrently (0 = runtime.GOMAXPROCS(0), 1 = serial).
	// For runs that finish without truncation the result is identical
	// for every value.
	Parallelism int
	// Stats switches Enumerate to cost-bounded best-first search: lattice
	// states are popped cheapest-estimated-first, a shared bound tracks
	// the cheapest complete plan found so far, and states whose admissible
	// lower bound (cost.Stats.LowerBound) exceeds the bound are pruned
	// without being chased. The returned cheapest plan always has the same
	// estimated cost as exhaustive enumeration's cheapest (the bound is
	// admissible), but more expensive plans and lattice regions may be
	// skipped, so Plans/Explored are generally subsets of the exhaustive
	// result and can vary across schedules. Nil (the default) keeps the
	// exhaustive, fully deterministic order.
	Stats *cost.Stats
	// ScanOnlyBound reverts pruning to the PR-2 scan-only floor
	// (cost.Stats.ScanFloor) instead of the dictionary-aware
	// cost.Stats.LowerBound. Both bounds are admissible, so the cheapest
	// plan is identical either way; the scan-only bound explores more
	// states. Kept for A/B measurement (E14, BenchmarkBackchasePrunedTight)
	// — production callers should leave it false. Only meaningful with
	// Stats.
	ScanOnlyBound bool
	// TopK keeps only the K cheapest plans in the Result (0 = keep all).
	// Only meaningful with Stats; it does not cut the search short — the
	// cheapest-plan guarantee is unaffected.
	TopK int
	// CostBudget primes the pruning bound: states whose lower bound
	// exceeds the budget are pruned even before any complete plan is
	// found (0 = no budget). Only meaningful with Stats. A budget below
	// the cheapest plan's cost can prune every plan.
	CostBudget float64
	// Cache, when non-nil, memoizes complete enumeration Results across
	// calls, keyed by the canonical root signature, the dependency set
	// and the options fingerprint. Repeated Enumerate calls on
	// canonically identical inputs return the cached Result in O(lookup)
	// without spawning workers. Cached Results are shared — treat them as
	// read-only.
	Cache *PlanCache
	// Index is a prebuilt chase dependency index over the same dependency
	// set passed to Enumerate (chase.NewDepIndex(deps)); the optimizer
	// shares the index of its chase phase this way. Nil means the engine
	// builds its own. The index is a pure function of the dependency set
	// and never changes results, so it does not participate in cache
	// keys.
	Index *chase.DepIndex
}

func (o Options) withDefaults() Options {
	if o.MaxStates == 0 {
		o.MaxStates = 100000
	}
	return o
}

// Result holds the outcome of a backchase enumeration. Plans and
// Explored are reported in canonical order (plans by size then
// signature, states by removal-set key), so complete runs produce
// byte-identical results regardless of Options.Parallelism or worker
// scheduling.
type Result struct {
	// Plans are the distinct normal forms (minimal equivalent subqueries),
	// deduplicated by renaming-invariant signature.
	Plans []*core.Query
	// Explored are all distinct subqueries visited by the enumeration
	// (every state of every backchase sequence), including the normal
	// forms. The paper presents intermediate states such as P1 that are
	// further reducible under rich constraint sets; Explored lets callers
	// inspect them.
	Explored []*core.Query
	// States is the number of distinct subqueries explored.
	States int
	// Pruned is the number of claimed states skipped by cost-bound
	// pruning (always 0 without Options.Stats).
	Pruned int
	// BestCost is the estimated executable cost (lookup-simplified, best
	// binding order) of the cheapest equivalent plan encountered — state
	// or normal form — when Options.Stats is set. It matches the
	// exhaustive search's cheapest: pruning only discards states whose
	// admissible lower bound exceeds a cost already achieved. +Inf if
	// nothing was found (CostBudget below every plan), 0 without Stats.
	BestCost float64
	// Truncated reports whether a cap stopped the enumeration early.
	Truncated bool
	// FromCache reports that the Result was served from Options.Cache.
	FromCache bool
}

// Enumerate explores all backchase sequences from q under deps and returns
// every normal form. The input query is typically the universal plan
// chase(Q); per Theorem 1 its subqueries contain all minimal plans.
//
// States are canonicalized as removal sets against the root: every state
// is Subquery(q, removed) for some set of removed binding variables, which
// is deterministic, so the search memoizes on the surviving-variable set.
// Computing subqueries from the root's congruence closure (the richest
// one) makes the search at least as complete as chaining single steps
// through intermediate states.
func Enumerate(q *core.Query, deps []*core.Dependency, opts Options) (*Result, error) {
	return EnumerateContext(context.Background(), q, deps, opts)
}

// EnumerateContext is Enumerate with cancellation: workers observe the
// context between candidate checks and inside every embedded chase run,
// so cancellation terminates the pool promptly. On cancellation it
// returns the partial Result collected so far together with ctx.Err().
func EnumerateContext(ctx context.Context, q *core.Query, deps []*core.Dependency, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	var key string
	if opts.Cache != nil {
		key = cacheKey(q, deps, opts)
		if res, ok := opts.Cache.get(key); ok {
			return res, nil
		}
	}
	e, err := newEngine(ctx, q, deps, opts)
	if err != nil {
		return nil, err
	}
	res, err := e.enumerate(ctx, opts.parallelismOrDefault())
	if opts.Cache != nil && err == nil && !res.Truncated {
		opts.Cache.put(key, opts.statsFingerprint(), res)
	}
	return res, err
}

// MinimizeOne performs a greedy backchase: repeatedly apply the first
// sound removal until none applies, returning a single (normalized)
// minimal plan. Deterministic regardless of parallelism: bindings are
// tried in order and the first sound removal (lowest binding index) is
// always the one taken.
func MinimizeOne(q *core.Query, deps []*core.Dependency, opts Options) (*core.Query, error) {
	return MinimizeOneContext(context.Background(), q, deps, opts)
}

// MinimizeOneContext is MinimizeOne with cancellation. With
// Parallelism > 1 the candidate removals of each greedy round are
// verified concurrently (sharing the engine's memoized chase-result
// cache across rounds).
func MinimizeOneContext(ctx context.Context, q *core.Query, deps []*core.Dependency, opts Options) (*core.Query, error) {
	opts = opts.withDefaults()
	e, err := newEngine(ctx, q, deps, opts)
	if err != nil {
		return nil, err
	}
	par := opts.parallelismOrDefault()
	removed := map[string]bool{}
	cur := q.Clone()
	for {
		next, nextQ, err := e.firstRemoval(ctx, par, removed, cur)
		if err != nil {
			return nil, err
		}
		if next == nil {
			return Normalize(cur, deps, opts.Chase), nil
		}
		removed, cur = next, nextQ
	}
}

// IsMinimal reports whether no backchase step applies to q under deps.
func IsMinimal(q *core.Query, deps []*core.Dependency, opts Options) (bool, error) {
	return IsMinimalContext(context.Background(), q, deps, opts)
}

// IsMinimalContext is IsMinimal with cancellation.
func IsMinimalContext(ctx context.Context, q *core.Query, deps []*core.Dependency, opts Options) (bool, error) {
	opts = opts.withDefaults()
	e, err := newEngine(ctx, q, deps, opts)
	if err != nil {
		return false, err
	}
	next, _, err := e.firstRemoval(ctx, opts.parallelismOrDefault(), map[string]bool{}, q)
	if err != nil {
		return false, err
	}
	return next == nil, nil
}

// Subquery computes the induced subquery of q after removing the bindings
// of the given variables (cascading removal to bindings whose ranges
// cannot be rewritten to avoid them). It returns the subquery and whether
// the construction succeeded: it fails when the output cannot be
// re-expressed without the removed variables.
//
// The construction follows §3: group the query's terms into congruence
// classes by its conditions; the new conditions are a maximal set of
// implied equalities over surviving terms; the new output is a congruent
// rewriting of the old.
func Subquery(q *core.Query, removedVars map[string]bool) (*core.Query, bool) {
	removed := make(map[string]bool, len(removedVars))
	for v := range removedVars {
		removed[v] = true
	}

	cc := congruence.New()
	for _, t := range q.AllTerms() {
		cc.Add(t)
	}
	for _, c := range q.Conds {
		cc.Merge(c.L, c.R)
	}

	// Cascade: a surviving binding whose range cannot avoid the removed
	// variables is removed as well (paper's footnote 6 alternative).
	type rebound struct {
		v     string
		rng   *core.Term
		order int
	}
	var survivors []rebound
	for {
		survivors = survivors[:0]
		grown := false
		for idx, b := range q.Bindings {
			if removed[b.Var] {
				continue
			}
			rng, ok := cc.Rewrite(b.Range, removed)
			if !ok {
				removed[b.Var] = true
				grown = true
				break
			}
			survivors = append(survivors, rebound{v: b.Var, rng: rng, order: idx})
		}
		if !grown {
			break
		}
	}
	if len(survivors) == 0 {
		return nil, false
	}

	// Output must be re-expressible.
	out, ok := cc.Rewrite(q.Out, removed)
	if !ok {
		return nil, false
	}

	// Maximal implied conditions over surviving terms: for every
	// congruence class, equate the distinct rewritten representatives.
	var conds []core.Cond
	condSeen := map[string]bool{}
	addCond := func(l, r *core.Term) {
		if l.Equal(r) {
			return
		}
		k1, k2 := l.HashKey(), r.HashKey()
		if k1 > k2 {
			k1, k2 = k2, k1
		}
		key := k1 + "=" + k2
		if condSeen[key] {
			return
		}
		condSeen[key] = true
		conds = append(conds, core.Cond{L: l, R: r})
	}
	for _, class := range cc.Classes() {
		var reps []*core.Term
		repSeen := map[string]bool{}
		for _, m := range class {
			// Include rebuilt variants, not only interned members: plans
			// like the paper's P4 need derived conditions such as
			// I[j.PN].CustName = "CitiBank".
			for _, r := range cc.RewriteVariants(m, removed) {
				k := r.HashKey()
				if !repSeen[k] {
					repSeen[k] = true
					reps = append(reps, r)
				}
			}
		}
		for k := 1; k < len(reps); k++ {
			addCond(reps[0], reps[k])
		}
	}

	// Keep only conditions over surviving variables (rewriting can in
	// principle still produce removed vars through class members that
	// mention them — filter defensively).
	surviving := make(map[string]bool, len(survivors))
	for _, s := range survivors {
		surviving[s.v] = true
	}
	okVars := func(t *core.Term) bool {
		for v := range t.Vars() {
			if !surviving[v] {
				return false
			}
		}
		return true
	}
	kept := conds[:0]
	for _, c := range conds {
		if okVars(c.L) && okVars(c.R) {
			kept = append(kept, c)
		}
	}
	conds = kept
	if !okVars(out) {
		return nil, false
	}

	// Assemble and re-establish binding scope by topological order.
	sub := &core.Query{Out: out}
	for _, s := range survivors {
		sub.Bindings = append(sub.Bindings, core.Binding{Var: s.v, Range: s.rng})
	}
	sub.Conds = conds
	sorted, ok := topoSortBindings(sub.Bindings)
	if !ok {
		return nil, false
	}
	sub.Bindings = sorted
	if err := sub.Validate(); err != nil {
		return nil, false
	}
	return sub, true
}

// Normalize cleans a plan for presentation and costing without changing
// its meaning under the dependencies:
//
//  1. prune conditions that are implied by the dependencies together with
//     the remaining conditions (checked with the chase), and
//  2. rewrite each output field to the smallest congruent term over the
//     plan's own variables.
//
// The maximal condition sets built by Subquery are needed during the
// enumeration (they carry the information later removals rely on), but the
// paper's displayed plans — e.g. P2 without the primary-index equality
// I[p.PName] = p — correspond to the pruned form.
func Normalize(q *core.Query, deps []*core.Dependency, opts chase.Options) *core.Query {
	return normalizeIndexed(context.Background(), q, chase.NewDepIndex(deps), opts)
}

// normalizeIndexed is Normalize over a prebuilt dependency index, so the
// engine's per-plan normalizations reuse one index across the whole
// lattice.
func normalizeIndexed(ctx context.Context, q *core.Query, ix *chase.DepIndex, opts chase.Options) *core.Query {
	cur := q.Clone()
	for changed := true; changed; {
		changed = false
		// Try pruning the largest conditions first so that small key
		// equalities (e.g. k = "CitiBank", which later enables the
		// non-failing-lookup simplification of P3) are the ones kept when
		// two conditions imply each other.
		order := make([]int, len(cur.Conds))
		for i := range order {
			order[i] = i
		}
		sort.SliceStable(order, func(a, b int) bool {
			ca, cb := cur.Conds[order[a]], cur.Conds[order[b]]
			return ca.L.Size()+ca.R.Size() > cb.L.Size()+cb.R.Size()
		})
		for _, i := range order {
			cand := cur.Clone()
			cond := cand.Conds[i]
			cand.Conds = append(cand.Conds[:i:i], cand.Conds[i+1:]...)
			res, err := chase.ChaseIndexed(ctx, cand, ix, opts)
			if err != nil || res.Inconsistent {
				continue
			}
			cn := opts.NewCanon(res.Query)
			if cn.CC.Same(cond.L, cond.R) {
				cur = cand
				changed = true
				break
			}
		}
	}
	// Output normalization against the chased plan's congruence classes.
	res, err := chase.ChaseIndexed(ctx, cur, ix, opts)
	if err == nil && !res.Inconsistent {
		cn := opts.NewCanon(res.Query)
		own := cur.BoundVars()
		cur.Out = normalizeTerm(cur.Out, cn, own)
	}
	return cur
}

// normalizeTerm picks the smallest congruent representative of t (by term
// size, then HashKey) among rewritings of the canon's class members into
// the plan's own variables. Considering rebuilt forms — not only interned
// members — lets two plans that express the same value through different
// access paths (Dept[j.DOID].DName vs I[j.PN].PDept) converge to one
// canonical output. Struct constructors are normalized field-wise.
func normalizeTerm(t *core.Term, cn *chase.Canon, own map[string]bool) *core.Term {
	if t.Kind == core.KStruct {
		fs := make([]core.StructField, len(t.Fields))
		for i, f := range t.Fields {
			fs[i] = core.StructField{Name: f.Name, Term: normalizeTerm(f.Term, cn, own)}
		}
		return core.Struct(fs...)
	}
	if !cn.CC.Contains(t) {
		return t
	}
	// Variables to avoid: everything bound by the chased query that is not
	// the plan's own.
	avoid := map[string]bool{}
	for v := range cn.Q.BoundVars() {
		if !own[v] {
			avoid[v] = true
		}
	}
	best := t
	consider := func(m *core.Term) {
		for v := range m.Vars() {
			if !own[v] {
				return
			}
		}
		if m.Size() < best.Size() || (m.Size() == best.Size() && m.HashKey() < best.HashKey()) {
			best = m
		}
	}
	for _, m := range cn.CC.ClassMembers(t) {
		for _, r := range cn.CC.RewriteVariants(m, avoid) {
			consider(r)
		}
	}
	return best
}

// topoSortBindings orders bindings so that every range mentions only
// earlier variables, preserving the given order among independent
// bindings. Returns ok=false on cyclic dependencies.
func topoSortBindings(bs []core.Binding) ([]core.Binding, bool) {
	n := len(bs)
	used := make([]bool, n)
	introduced := map[string]bool{}
	out := make([]core.Binding, 0, n)
	for len(out) < n {
		progress := false
		for i, b := range bs {
			if used[i] {
				continue
			}
			ready := true
			for v := range b.Range.Vars() {
				if !introduced[v] {
					ready = false
					break
				}
			}
			if !ready {
				continue
			}
			used[i] = true
			introduced[b.Var] = true
			out = append(out, b)
			progress = true
		}
		if !progress {
			return nil, false
		}
	}
	return out, true
}

// equivalentContext decides Q1 ≡ Q2 under deps with chase-based
// containment in both directions: Qi ⊑ Qj iff there is a containment
// mapping (homomorphism with output match) from Qj into chase(Qi).
func equivalentContext(ctx context.Context, q1, q2 *core.Query, deps []*core.Dependency, opts chase.Options) (bool, error) {
	return equivalentIndexed(ctx, q1, q2, chase.NewDepIndex(deps), opts)
}

// equivalentIndexed is equivalentContext over a prebuilt dependency index.
func equivalentIndexed(ctx context.Context, q1, q2 *core.Query, ix *chase.DepIndex, opts chase.Options) (bool, error) {
	c1, err := containedIndexed(ctx, q1, q2, ix, opts)
	if err != nil || !c1 {
		return false, err
	}
	return containedIndexed(ctx, q2, q1, ix, opts)
}

// containedContext decides Q1 ⊑ Q2 under deps (every answer of Q1 is an
// answer of Q2 on instances satisfying deps).
func containedContext(ctx context.Context, q1, q2 *core.Query, deps []*core.Dependency, opts chase.Options) (bool, error) {
	return containedIndexed(ctx, q1, q2, chase.NewDepIndex(deps), opts)
}

// containedIndexed is containedContext over a prebuilt dependency index.
func containedIndexed(ctx context.Context, q1, q2 *core.Query, ix *chase.DepIndex, opts chase.Options) (bool, error) {
	res, err := chase.ChaseIndexed(ctx, q1, ix, opts)
	if err != nil {
		return false, err
	}
	if res.Inconsistent {
		return true, nil // Q1 empty on all valid instances
	}
	// Freshen q2 apart from the chased q1 to avoid variable capture.
	avoid := res.Query.BoundVars()
	q2f := q2.RenameVars(core.FreshRenaming("h_", avoid))
	cn := opts.NewCanon(res.Query)
	homs := cn.HomsOfQueryInto(q2f, res.Query.Out, 1)
	return len(homs) > 0, nil
}

// Equivalent is the exported chase-based equivalence test under
// dependencies.
func Equivalent(q1, q2 *core.Query, deps []*core.Dependency, opts chase.Options) (bool, error) {
	return equivalentContext(context.Background(), q1, q2, deps, opts)
}

// Contained is the exported chase-based containment test under
// dependencies: Q1 ⊑ Q2.
func Contained(q1, q2 *core.Query, deps []*core.Dependency, opts chase.Options) (bool, error) {
	return containedContext(context.Background(), q1, q2, deps, opts)
}

// BruteForceMinimal enumerates all subsets of q's bindings directly
// (exponential!) and returns the minimal equivalent subqueries. It is the
// reference implementation used to validate Theorem 2 in tests and the E7
// experiment; use Enumerate in production.
func BruteForceMinimal(q *core.Query, deps []*core.Dependency, opts Options) ([]*core.Query, error) {
	return BruteForceMinimalContext(context.Background(), q, deps, opts)
}

// BruteForceMinimalContext is BruteForceMinimal with cancellation. The
// 2^n subset checks are independent, so they are fanned out across
// Options.Parallelism workers; candidates are collected indexed by mask,
// keeping the result deterministic.
func BruteForceMinimalContext(ctx context.Context, q *core.Query, deps []*core.Dependency, opts Options) ([]*core.Query, error) {
	opts = opts.withDefaults()
	n := len(q.Bindings)
	if n > 20 {
		return nil, fmt.Errorf("backchase: brute force limited to 20 bindings, got %d", n)
	}
	type cand struct {
		q    *core.Query
		size int
	}
	// One premise index serves every subset's equivalence chases; the
	// index is immutable, so the worker fan-out below shares it freely.
	ix := opts.Index
	if ix == nil {
		ix = chase.NewDepIndex(deps)
	}
	checkMask := func(mask int) (*cand, error) {
		removed := map[string]bool{}
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				removed[q.Bindings[i].Var] = true
			}
		}
		if len(removed) == n {
			return nil, nil
		}
		sub, ok := Subquery(q, removed)
		if !ok {
			return nil, nil
		}
		// The cascade may have removed more than the mask requested; skip
		// duplicates via signature dedup below.
		eq, err := equivalentIndexed(ctx, sub, q, ix, opts.Chase)
		if err != nil {
			if _, budget := err.(*chase.ErrBudget); budget {
				return nil, nil
			}
			return nil, err
		}
		if !eq {
			return nil, nil
		}
		return &cand{q: sub, size: len(sub.Bindings)}, nil
	}

	total := 1 << n
	byMask := make([]*cand, total)
	par := opts.parallelismOrDefault()
	if par > total {
		par = total
	}
	// A hard error on any mask cancels the sweep: without it the other
	// workers would chase every remaining subset before the error could
	// be returned.
	ctx, cancelSweep := context.WithCancel(ctx)
	defer cancelSweep()
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
	)
	recordErr := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
		cancelSweep()
	}
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mask := int(next.Add(1)) - 1
				if mask >= total {
					return
				}
				if err := ctx.Err(); err != nil {
					recordErr(err)
					return
				}
				c, err := checkMask(mask)
				if err != nil {
					recordErr(err)
					return
				}
				byMask[mask] = c
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	var equivalents []cand
	for _, c := range byMask {
		if c != nil {
			equivalents = append(equivalents, *c)
		}
	}
	// Keep the minimal ones: no strictly smaller equivalent subquery of
	// them exists in the set. Minimality per the paper: a query is minimal
	// if no strict subquery (fewer bindings) of it is equivalent. Here all
	// candidates are equivalent subqueries of q; a candidate is minimal if
	// no other candidate is a strict subquery of it.
	var minimal []*core.Query
	seen := map[string]bool{}
	for _, c := range equivalents {
		isMin := true
		for _, d := range equivalents {
			if d.size < c.size && isSubquerySet(d.q, c.q) {
				isMin = false
				break
			}
		}
		if !isMin {
			continue
		}
		sig := c.q.CanonicalSignature()
		if !seen[sig] {
			seen[sig] = true
			minimal = append(minimal, c.q)
		}
	}
	return minimal, nil
}

// isSubquerySet reports whether small's bindings embed into big's bindings
// by variable name (both derive from the same original query, so shared
// variables identify bindings).
func isSubquerySet(small, big *core.Query) bool {
	bigVars := big.BoundVars()
	for _, b := range small.Bindings {
		if !bigVars[b.Var] {
			return false
		}
	}
	return true
}
