package backchase

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"cnb/internal/chase"
	"cnb/internal/core"
)

// ---- random case generation for differential testing ---------------------
//
// Small path-conjunctive queries over flat relations R, S, T plus a random
// subset of a fixed, weakly acyclic dependency pool (inclusion
// dependencies out of R, key EGDs), so every chase terminates within the
// default budgets and the brute-force oracle stays tractable.

var diffFields = []string{"A", "B", "C"}

func randomDeps(r *rand.Rand) []*core.Dependency {
	v, n, prj := core.V, core.Name, core.Prj
	var deps []*core.Dependency
	if r.Intn(2) == 0 {
		deps = append(deps, &core.Dependency{
			Name:            "IND_RS",
			Premise:         []core.Binding{{Var: "r", Range: n("R")}},
			Conclusion:      []core.Binding{{Var: "s", Range: n("S")}},
			ConclusionConds: []core.Cond{{L: prj(v("r"), "A"), R: prj(v("s"), "A")}},
		})
	}
	if r.Intn(3) == 0 {
		deps = append(deps, &core.Dependency{
			Name:            "IND_RT",
			Premise:         []core.Binding{{Var: "r", Range: n("R")}},
			Conclusion:      []core.Binding{{Var: "t", Range: n("T")}},
			ConclusionConds: []core.Cond{{L: prj(v("r"), "B"), R: prj(v("t"), "B")}},
		})
	}
	if r.Intn(3) == 0 {
		deps = append(deps, &core.Dependency{
			Name:            "KEY_R",
			Premise:         []core.Binding{{Var: "a", Range: n("R")}, {Var: "b", Range: n("R")}},
			PremiseConds:    []core.Cond{{L: prj(v("a"), "A"), R: prj(v("b"), "A")}},
			ConclusionConds: []core.Cond{{L: v("a"), R: v("b")}},
		})
	}
	if r.Intn(4) == 0 {
		deps = append(deps, &core.Dependency{
			Name:            "KEY_S",
			Premise:         []core.Binding{{Var: "a", Range: n("S")}, {Var: "b", Range: n("S")}},
			PremiseConds:    []core.Cond{{L: prj(v("a"), "A"), R: prj(v("b"), "A")}},
			ConclusionConds: []core.Cond{{L: v("a"), R: v("b")}},
		})
	}
	return deps
}

func randomQuery(r *rand.Rand) *core.Query {
	rels := []string{"R", "R", "S", "T"} // bias toward self-joins on R
	n := 2 + r.Intn(3)
	q := &core.Query{}
	for i := 0; i < n; i++ {
		q.Bindings = append(q.Bindings, core.Binding{
			Var:   fmt.Sprintf("x%d", i),
			Range: core.Name(rels[r.Intn(len(rels))]),
		})
	}
	pickVar := func() *core.Term { return core.V(fmt.Sprintf("x%d", r.Intn(n))) }
	pickField := func() string { return diffFields[r.Intn(len(diffFields))] }
	m := r.Intn(n + 1)
	for i := 0; i < m; i++ {
		switch r.Intn(5) {
		case 0:
			// Row equality between two bindings (often makes one redundant).
			q.Conds = append(q.Conds, core.Cond{L: pickVar(), R: pickVar()})
		case 1:
			// Constant selection.
			q.Conds = append(q.Conds, core.Cond{
				L: core.Prj(pickVar(), pickField()),
				R: core.C("c1"),
			})
		default:
			// Join condition; same-field joins (the redundant-chain shape)
			// half the time.
			f1 := pickField()
			f2 := f1
			if r.Intn(2) == 0 {
				f2 = pickField()
			}
			q.Conds = append(q.Conds, core.Cond{
				L: core.Prj(pickVar(), f1),
				R: core.Prj(pickVar(), f2),
			})
		}
	}
	out := []core.StructField{{Name: "O1", Term: core.Prj(pickVar(), pickField())}}
	if r.Intn(2) == 0 {
		out = append(out, core.StructField{Name: "O2", Term: core.Prj(pickVar(), pickField())})
	}
	q.Out = core.Struct(out...)
	if q.Validate() != nil {
		// Conditions only mention bound variables by construction; Validate
		// can still reject pathological duplicates — regenerate.
		return randomQuery(r)
	}
	return q
}

func planSigs(qs []*core.Query) map[string]bool {
	m := map[string]bool{}
	for _, q := range qs {
		m[q.CanonicalSignature()] = true
	}
	return m
}

func sameSets(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// matchUpToEquivalence checks that two plan sets coincide up to
// chase-equivalence under the dependencies: every plan of each side has a
// counterpart of the same size (binding count — the minimality measure)
// on the other side that is provably equivalent. A renaming-invariant
// signature match is used as a fast path; the chase decides the rest.
// Syntactic signatures alone are too strict: the two engines can render
// one plan with different (equivalent) spanning trees of the same
// congruence classes in the where clause.
func matchUpToEquivalence(t *testing.T, label string, a, b []*core.Query, deps []*core.Dependency) {
	t.Helper()
	bSigs := planSigs(b)
	for _, p := range a {
		if bSigs[p.CanonicalSignature()] {
			continue
		}
		found := false
		for _, q := range b {
			if len(q.Bindings) != len(p.Bindings) {
				continue
			}
			eq, err := Equivalent(p, q, deps, chase.Options{})
			if err != nil {
				t.Fatalf("%s: equivalence check: %v", label, err)
			}
			if eq {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: plan has no equivalent counterpart:\n%s", label, p)
		}
	}
}

// TestDifferentialEnumerateVsBruteForce validates Theorem 2 end to end on
// randomly generated inputs: the parallel Enumerate must return exactly
// the minimal equivalent subqueries that the exponential brute-force
// oracle finds (as sets of plans up to equivalence). The two
// implementations share only Subquery and the chase-based containment
// primitive, and search the lattice in entirely different ways, so
// agreement is a strong differential oracle (Ba & Rigger's
// independent-implementations principle).
func TestDifferentialEnumerateVsBruteForce(t *testing.T) {
	const cases = 120
	r := rand.New(rand.NewSource(42))
	for i := 0; i < cases; i++ {
		q := randomQuery(r)
		deps := randomDeps(r)
		opts := Options{Parallelism: 4}

		en, err := Enumerate(q, deps, opts)
		if err != nil {
			t.Fatalf("case %d: Enumerate: %v\nquery:\n%s", i, err, q)
		}
		if en.Truncated {
			t.Fatalf("case %d: unexpected truncation (generator must stay small)", i)
		}
		bf, err := BruteForceMinimal(q, deps, opts)
		if err != nil {
			t.Fatalf("case %d: BruteForceMinimal: %v\nquery:\n%s", i, err, q)
		}
		bfNorm := make([]*core.Query, len(bf))
		for j, p := range bf {
			bfNorm[j] = Normalize(p, deps, chase.Options{})
		}
		label := fmt.Sprintf("case %d (query:\n%s\n)", i, q)
		matchUpToEquivalence(t, label+" enumerate⊆bruteforce", en.Plans, bfNorm, deps)
		matchUpToEquivalence(t, label+" bruteforce⊆enumerate", bfNorm, en.Plans, deps)
	}
}

// resultFingerprint flattens a Result into a comparable string: plan and
// explored-state renderings in their reported (canonical) order plus the
// counters. Byte equality of fingerprints means byte-identical results.
func resultFingerprint(res *Result) string {
	s := fmt.Sprintf("states=%d truncated=%v\n", res.States, res.Truncated)
	for _, p := range res.Plans {
		s += "plan:" + p.String() + "\n"
	}
	for _, e := range res.Explored {
		s += "explored:" + e.CanonicalSignature() + "\n"
	}
	return s
}

// TestDeterminismAcrossParallelism asserts the headline guarantee of the
// parallel engine: for complete runs the Result — plans, explored states,
// counters, and their order — is identical for every worker count and
// across repeated runs.
func TestDeterminismAcrossParallelism(t *testing.T) {
	deps := projDeptDeps()
	chased, err := chase.Chase(projDeptQuery(), deps, chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	u := chased.Query

	var reference string
	for _, par := range []int{1, 2, 8} {
		for run := 0; run < 2; run++ {
			res, err := Enumerate(u, deps, Options{Parallelism: par})
			if err != nil {
				t.Fatalf("parallelism %d run %d: %v", par, run, err)
			}
			fp := resultFingerprint(res)
			if reference == "" {
				reference = fp
				continue
			}
			if fp != reference {
				t.Errorf("parallelism %d run %d: result differs from reference\ngot:\n%s\nwant:\n%s",
					par, run, fp, reference)
			}
		}
	}

	// The random differential cases must also be run-to-run and
	// cross-parallelism deterministic, not just ProjDept.
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 25; i++ {
		q := randomQuery(r)
		qdeps := randomDeps(r)
		var ref string
		for _, par := range []int{1, 2, 8} {
			res, err := Enumerate(q, qdeps, Options{Parallelism: par})
			if err != nil {
				t.Fatalf("case %d parallelism %d: %v", i, par, err)
			}
			fp := resultFingerprint(res)
			if ref == "" {
				ref = fp
			} else if fp != ref {
				t.Errorf("case %d: parallelism %d differs\nquery:\n%s", i, par, q)
			}
		}
	}
}

// scramble returns an alpha-renamed, binding-shuffled variant of q whose
// new variable names sort in a random order relative to the binding
// positions. randomQuery ranges are flat relation names, so every
// binding permutation is dependency-valid.
func scramble(q *core.Query, r *rand.Rand) *core.Query {
	perm := r.Perm(len(q.Bindings))
	names := map[string]string{}
	for i, b := range q.Bindings {
		names[b.Var] = fmt.Sprintf("y%03d", perm[i])
	}
	s := q.RenameVars(func(v string) string { return names[v] })
	r.Shuffle(len(s.Bindings), func(i, j int) {
		s.Bindings[i], s.Bindings[j] = s.Bindings[j], s.Bindings[i]
	})
	r.Shuffle(len(s.Conds), func(i, j int) { s.Conds[i], s.Conds[j] = s.Conds[j], s.Conds[i] })
	return s
}

// TestDeterminismRenamedInputsAcrossParallelism extends the determinism
// guarantee to alpha-renamed inputs: a scrambled variant of a query must
// itself enumerate deterministically at every worker count, and its plan
// set must coincide with the original's under the renaming-invariant
// canonical signature — the invariant the plan cache and singleflight
// keys rely on.
func TestDeterminismRenamedInputsAcrossParallelism(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 15; i++ {
		q := randomQuery(r)
		s := scramble(q, r)
		qdeps := randomDeps(r)

		var refQ, refS string
		var qPlans, sPlans []*core.Query
		for _, par := range []int{1, 2, 8} {
			resQ, err := Enumerate(q, qdeps, Options{Parallelism: par})
			if err != nil {
				t.Fatalf("case %d parallelism %d: %v", i, par, err)
			}
			resS, err := Enumerate(s, qdeps, Options{Parallelism: par})
			if err != nil {
				t.Fatalf("case %d parallelism %d (scrambled): %v", i, par, err)
			}
			if fp := resultFingerprint(resQ); refQ == "" {
				refQ, qPlans = fp, resQ.Plans
			} else if fp != refQ {
				t.Errorf("case %d: original query nondeterministic at parallelism %d\nquery:\n%s", i, par, q)
			}
			if fp := resultFingerprint(resS); refS == "" {
				refS, sPlans = fp, resS.Plans
			} else if fp != refS {
				t.Errorf("case %d: scrambled query nondeterministic at parallelism %d\nquery:\n%s", i, par, s)
			}
		}
		if !sameSets(planSigs(qPlans), planSigs(sPlans)) {
			t.Errorf("case %d: canonical plan-signature sets differ between original and scrambled input\noriginal:\n%s\nscrambled:\n%s", i, q, s)
		}
	}
}

// TestDeterminismSymmetricPlans pins the plan-representative choice on a
// workload built to race: a symmetric self-join where removing x0 and
// removing x1 yield isomorphic normal forms with the same
// renaming-invariant signature but different variable names. The engine
// must keep the canonical representative (smallest rendering), not
// whichever worker reached the dedup map first.
func TestDeterminismSymmetricPlans(t *testing.T) {
	q := &core.Query{
		Out: core.Prj(core.V("x0"), "A"),
		Bindings: []core.Binding{
			{Var: "x0", Range: core.Name("R")},
			{Var: "x1", Range: core.Name("R")},
		},
		Conds: []core.Cond{{L: core.V("x0"), R: core.V("x1")}},
	}
	var ref string
	for run := 0; run < 8; run++ {
		res, err := Enumerate(q, nil, Options{Parallelism: 8})
		if err != nil {
			t.Fatal(err)
		}
		fp := resultFingerprint(res)
		if ref == "" {
			ref = fp
		} else if fp != ref {
			t.Fatalf("run %d: symmetric-plan representative varies\ngot:\n%s\nwant:\n%s", run, fp, ref)
		}
	}
	serial, err := Enumerate(q, nil, Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if fp := resultFingerprint(serial); fp != ref {
		t.Fatalf("serial differs from parallel on symmetric plans\ngot:\n%s\nwant:\n%s", fp, ref)
	}
}

// TestSharedCanonCloneStress exercises the documented sharing discipline
// under the race detector: many goroutines concurrently Clone one
// chase.Canon / congruence closure and hammer homomorphism searches and
// congruence queries on their clones, while the shared original is never
// mutated.
func TestSharedCanonCloneStress(t *testing.T) {
	deps := projDeptDeps()
	chased, err := chase.Chase(projDeptQuery(), deps, chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	shared := chase.NewCanon(chased.Query)
	sub, ok := Subquery(chased.Query, map[string]bool{chased.Query.Bindings[0].Var: true})
	if !ok {
		// Fall back to the root itself; the stress only needs some query.
		sub = chased.Query
	}

	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				cn := shared.Clone()
				avoid := cn.Q.BoundVars()
				subF := sub.RenameVars(core.FreshRenaming("h_", avoid))
				cn.HomsOfQueryInto(subF, cn.Q.Out, 1)
				for _, b := range cn.Q.Bindings {
					cn.CC.Same(core.V(b.Var), b.Range)
				}
			}
		}(int64(w))
	}
	wg.Wait()

	// The full engine at high parallelism shares the root canon the same
	// way (clone per equivalence check); run it through for good measure.
	if _, err := Enumerate(chased.Query, deps, Options{Parallelism: workers}); err != nil {
		t.Fatal(err)
	}
}

// waitForGoroutines polls until the goroutine count drops back to the
// baseline (with slack for runtime helpers), failing the test otherwise.
func waitForGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines leaked: %d now vs %d before", runtime.NumGoroutine(), baseline)
}

// TestCancellationTerminatesWorkers cancels a large enumeration mid-run:
// EnumerateContext must return promptly with the context error and the
// partial results collected so far, leaking no worker goroutines.
func TestCancellationTerminatesWorkers(t *testing.T) {
	deps := projDeptDeps()
	chased, err := chase.Chase(projDeptQuery(), deps, chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	baseline := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	res, err := EnumerateContext(ctx, chased.Query, deps, Options{Parallelism: 8})
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil {
		t.Fatal("cancellation must return the partial result")
	}
	// The full run takes hundreds of milliseconds; cancellation at 20ms
	// must cut that short (generous bound for slow CI).
	if elapsed > 2*time.Second {
		t.Errorf("cancellation took %v, want prompt termination", elapsed)
	}
	waitForGoroutines(t, baseline)
}

// TestCancelledBeforeStart covers the degenerate case: a context that is
// already cancelled fails fast (in the root chase) without spawning
// workers.
func TestCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	baseline := runtime.NumGoroutine()
	_, err := EnumerateContext(ctx, redundantTriple(), nil, Options{Parallelism: 4})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	waitForGoroutines(t, baseline)
}

// TestMaxStatesTruncationParallel asserts the state budget stops the
// worker pool without hanging or leaking, reporting truncation.
func TestMaxStatesTruncationParallel(t *testing.T) {
	deps := projDeptDeps()
	chased, err := chase.Chase(projDeptQuery(), deps, chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	baseline := runtime.NumGoroutine()
	res, err := Enumerate(chased.Query, deps, Options{MaxStates: 3, Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated {
		t.Error("MaxStates=3 must truncate the ProjDept lattice")
	}
	if res.States > 3 {
		t.Errorf("explored %d states, budget was 3", res.States)
	}
	waitForGoroutines(t, baseline)
}

// TestChaseBudgetSkipsCandidates asserts that per-candidate chase budget
// exhaustion is contained (the removal is treated as unverifiable), while
// budget exhaustion on the root chase surfaces as ErrBudget — both
// without hanging the pool.
func TestChaseBudgetSkipsCandidates(t *testing.T) {
	deps := projDeptDeps()
	q := projDeptQuery()
	// Root chase needs dozens of steps; a budget of 1 must fail fast.
	_, err := Enumerate(q, deps, Options{Chase: chase.Options{MaxSteps: 1}, Parallelism: 4})
	var budget *chase.ErrBudget
	if !errors.As(err, &budget) {
		t.Fatalf("err = %v, want *chase.ErrBudget", err)
	}
}

// TestMinimizeOneParallelMatchesSerial pins the greedy minimizer's
// determinism: the same (first-in-binding-order) removal sequence is
// taken regardless of how many workers verify candidates.
func TestMinimizeOneParallelMatchesSerial(t *testing.T) {
	deps := projDeptDeps()
	chased, err := chase.Chase(projDeptQuery(), deps, chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	serial, err := MinimizeOne(chased.Query, deps, Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{2, 8} {
		got, err := MinimizeOne(chased.Query, deps, Options{Parallelism: par})
		if err != nil {
			t.Fatal(err)
		}
		if got.String() != serial.String() {
			t.Errorf("parallelism %d: minimized plan differs\ngot:\n%s\nwant:\n%s", par, got, serial)
		}
	}

	// IsMinimal must agree as well.
	for _, par := range []int{1, 8} {
		min, err := IsMinimal(chased.Query, deps, Options{Parallelism: par})
		if err != nil {
			t.Fatal(err)
		}
		if min {
			t.Errorf("parallelism %d: universal plan reported minimal", par)
		}
	}
}

// TestBruteForceParallelMatchesSerial pins the parallel mask fan-out of
// the oracle itself.
func TestBruteForceParallelMatchesSerial(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for i := 0; i < 10; i++ {
		q := randomQuery(r)
		deps := randomDeps(r)
		serial, err := BruteForceMinimal(q, deps, Options{Parallelism: 1})
		if err != nil {
			t.Fatal(err)
		}
		par, err := BruteForceMinimal(q, deps, Options{Parallelism: 8})
		if err != nil {
			t.Fatal(err)
		}
		if !sameSets(planSigs(serial), planSigs(par)) {
			t.Errorf("case %d: brute force differs across parallelism\nquery:\n%s", i, q)
		}
	}
}
