// Cross-call plan cache.
//
// The backchase is the expensive phase of Algorithm 1 — exponential in
// the number of redundant bindings — while its input, the universal plan,
// is canonical: chase-equivalent queries over the same dependency set
// chase to universal plans with equal renaming-invariant signatures in
// all the paper's scenarios. Keying a cache by that signature (plus the
// dependency set and every option that can change the result) makes
// repeated Optimize calls on equivalent queries O(lookup) after the first
// — the first step toward serving query traffic, where the same handful
// of query shapes arrives over and over.
package backchase

import (
	"fmt"
	"strings"
	"sync"

	"cnb/internal/core"
)

// DefaultPlanCacheSize bounds NewPlanCache: a serving process seeing a
// stream of never-repeating query shapes must not accumulate Results
// (which hold every explored subquery) without limit.
const DefaultPlanCacheSize = 1024

// PlanCache memoizes complete enumeration Results across Enumerate calls.
// It is safe for concurrent use by multiple goroutines; a Result stored in
// the cache is shared by every caller that hits it, so callers must treat
// cached Results (and the Queries they reference) as read-only — which is
// the package-wide convention anyway (every mutation path Clones first).
//
// The cache holds at most maxEntries Results; when full, an arbitrary
// entry is evicted (random replacement — simple, and for the repeated
// query shapes the cache targets, any victim is equally likely to be
// cold).
type PlanCache struct {
	mu         sync.Mutex
	m          map[string]*Result
	maxEntries int
	hits       int64
	misses     int64
}

// NewPlanCache returns an empty cache bounded to DefaultPlanCacheSize
// entries.
func NewPlanCache() *PlanCache {
	return NewPlanCacheWithSize(DefaultPlanCacheSize)
}

// NewPlanCacheWithSize returns an empty cache bounded to n entries
// (n <= 0 means unbounded).
func NewPlanCacheWithSize(n int) *PlanCache {
	return &PlanCache{m: map[string]*Result{}, maxEntries: n}
}

// get returns the cached Result for the key, marking it as served from
// the cache. The returned struct is a shallow copy so the FromCache flag
// never leaks into the stored entry.
func (c *PlanCache) get(key string) (*Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	res, ok := c.m[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	cp := *res
	cp.FromCache = true
	return &cp, true
}

// put stores a complete Result. First writer wins: two racing Enumerate
// calls compute identical Results for the same key (or equally valid ones
// under cost-bound pruning), so overwriting would only churn. A full
// cache evicts an arbitrary entry first.
func (c *PlanCache) put(key string, res *Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.m[key]; ok {
		return
	}
	if c.maxEntries > 0 && len(c.m) >= c.maxEntries {
		for victim := range c.m {
			delete(c.m, victim)
			break
		}
	}
	c.m[key] = res
}

// Len returns the number of cached entries.
func (c *PlanCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Counters returns the lifetime hit and miss counts.
func (c *PlanCache) Counters() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// cacheKey builds the lookup key: the canonical (binding-order-normalized,
// renaming-invariant) root signature, the dependency set in order, and a
// fingerprint of every option that can change the Result. In exhaustive
// mode Parallelism is excluded — complete runs are byte-identical for
// every worker count. In cost-bounded mode (Stats set) the explored
// subset is schedule-dependent, so Parallelism joins the key: a serial
// caller must not receive a parallel run's schedule-dependent Result.
func cacheKey(q *core.Query, deps []*core.Dependency, opts Options) string {
	var b strings.Builder
	b.WriteString(q.NormalizeBindingOrder().Signature())
	b.WriteString("\x00deps\x00")
	for _, d := range deps {
		b.WriteString(d.String())
		b.WriteByte('\x00')
	}
	b.WriteString(opts.fingerprint())
	return b.String()
}

// fingerprint renders the result-affecting options deterministically.
func (o Options) fingerprint() string {
	var b strings.Builder
	writeInts(&b, o.MaxPlans, o.MaxStates, o.TopK, o.Chase.MaxSteps, o.Chase.MaxBindings)
	writeFloat(&b, o.CostBudget)
	if o.Stats != nil {
		b.WriteString("\x00stats\x00")
		writeInts(&b, o.Parallelism)
		if o.ScanOnlyBound {
			b.WriteString("scanbound;")
		}
		b.WriteString(o.Stats.Fingerprint())
	}
	return b.String()
}

func writeInts(b *strings.Builder, vals ...int) {
	for _, v := range vals {
		fmt.Fprintf(b, "%d;", v)
	}
}

func writeFloat(b *strings.Builder, v float64) {
	fmt.Fprintf(b, "%g;", v)
}
