// Cross-call plan cache.
//
// The backchase is the expensive phase of Algorithm 1 — exponential in
// the number of redundant bindings — while its input, the universal plan,
// is canonical: chase-equivalent queries over the same dependency set
// chase to universal plans with equal renaming-invariant signatures in
// all the paper's scenarios. Keying a cache by that signature (plus the
// dependency set and every option that can change the result) makes
// repeated Optimize calls on equivalent queries O(lookup) after the first
// — the heart of serving query traffic, where the same handful of query
// shapes arrives over and over.
//
// The cache is built to be hammered by many concurrent clients (the
// internal/service layer): it is split into mutex-striped shards keyed by
// a hash of the lookup key, each shard maintaining true LRU recency, so
// concurrent Optimize calls on different query shapes proceed without
// contending on one lock, and a churn of never-repeating shapes evicts
// the coldest entry instead of a random victim.
package backchase

import (
	"container/list"
	"fmt"
	"hash/maphash"
	"strings"
	"sync"
	"sync/atomic"

	"cnb/internal/core"
)

// DefaultPlanCacheSize bounds NewPlanCache: a serving process seeing a
// stream of never-repeating query shapes must not accumulate Results
// (which hold every explored subquery) without limit.
const DefaultPlanCacheSize = 1024

// DefaultPlanCacheShards is the stripe count of NewPlanCache. Sixteen
// shards keep lock hold times per shard short under the 16-worker load
// profiles the serving layer is gated on, while every shard still holds
// enough entries (64 at the default size) for per-shard LRU to
// approximate global LRU closely.
const DefaultPlanCacheShards = 16

// CacheCounters is an aggregated snapshot of the cache's lifetime
// counters. Each counter is maintained per shard with atomics, so a hit
// or eviction is counted exactly once even under concurrent access; the
// snapshot sums the shards without stopping them, so it is only
// point-in-time consistent per counter.
type CacheCounters struct {
	// Hits counts get calls served from the cache.
	Hits int64
	// Misses counts get calls that found nothing.
	Misses int64
	// Evictions counts entries dropped because a shard reached its
	// capacity (LRU victims). Invalidated entries are not evictions.
	Evictions int64
	// Invalidated counts entries dropped by InvalidateStats because their
	// statistics fingerprint no longer matched the serving snapshot.
	Invalidated int64
}

// cacheEntry is one stored Result plus the metadata eviction and
// invalidation need.
type cacheEntry struct {
	key string
	// statsFP is the fingerprint of the cost.Stats the Result was
	// computed under ("" when the enumeration ran without statistics and
	// is therefore statistics-independent). InvalidateStats drops entries
	// whose fingerprint differs from the new snapshot's.
	statsFP string
	res     *Result
}

// cacheShard is one mutex-striped slice of the cache: a map for lookup
// plus an intrusive recency list (front = most recently used).
type cacheShard struct {
	mu         sync.Mutex
	m          map[string]*list.Element // value: *cacheEntry
	ll         *list.List
	maxEntries int // <= 0 means unbounded

	hits        atomic.Int64
	misses      atomic.Int64
	evictions   atomic.Int64
	invalidated atomic.Int64
}

// PlanCache memoizes complete enumeration Results across Enumerate calls.
// It is safe for concurrent use by multiple goroutines; a Result stored in
// the cache is shared by every caller that hits it, so callers must treat
// cached Results (and the Queries they reference) as read-only — which is
// the package-wide convention anyway (every mutation path Clones first).
//
// The cache holds at most its configured entry budget, split across the
// shards; when a shard is full its least-recently-used entry is evicted.
type PlanCache struct {
	shards []*cacheShard
	seed   maphash.Seed
}

// NewPlanCache returns an empty cache bounded to DefaultPlanCacheSize
// entries across DefaultPlanCacheShards shards.
func NewPlanCache() *PlanCache {
	return NewPlanCacheSharded(DefaultPlanCacheSize, DefaultPlanCacheShards)
}

// NewPlanCacheWithSize returns an empty cache bounded to n entries
// (n <= 0 means unbounded) across DefaultPlanCacheShards shards.
func NewPlanCacheWithSize(n int) *PlanCache {
	return NewPlanCacheSharded(n, DefaultPlanCacheShards)
}

// minShardCapacity is the smallest per-shard entry budget striping is
// allowed to produce: the bound is global in spirit, and splitting a
// small cache into many one-entry shards would let two hot keys that
// hash together evict each other while other shards sit empty. Small
// caches therefore collapse toward fewer (ultimately one) shard, where
// eviction order is globally exact.
const minShardCapacity = 8

// NewPlanCacheSharded returns an empty cache bounded to n entries
// (n <= 0 means unbounded) split across the given number of shards
// (values < 1 mean 1). With a bounded size the shard count is clamped so
// every shard holds at least minShardCapacity entries (a small cache
// becomes a single shard with a globally exact bound); n is distributed
// so the shard capacities sum to exactly n. A single shard makes
// recency, eviction order and the counters globally exact — the
// configuration the deterministic cache gates run under.
func NewPlanCacheSharded(n, shards int) *PlanCache {
	if shards < 1 {
		shards = 1
	}
	if n > 0 && shards > n/minShardCapacity {
		shards = n / minShardCapacity
		if shards < 1 {
			shards = 1
		}
	}
	c := &PlanCache{
		shards: make([]*cacheShard, shards),
		seed:   maphash.MakeSeed(),
	}
	for i := range c.shards {
		capacity := 0
		if n > 0 {
			capacity = n / shards
			if i < n%shards {
				capacity++
			}
		}
		c.shards[i] = &cacheShard{
			m:          map[string]*list.Element{},
			ll:         list.New(),
			maxEntries: capacity,
		}
	}
	return c
}

// shard picks the stripe for a key.
func (c *PlanCache) shard(key string) *cacheShard {
	if len(c.shards) == 1 {
		return c.shards[0]
	}
	h := maphash.String(c.seed, key)
	return c.shards[h%uint64(len(c.shards))]
}

// get returns the cached Result for the key, marking it as served from
// the cache and refreshing its recency. The returned struct is a shallow
// copy so the FromCache flag never leaks into the stored entry.
func (c *PlanCache) get(key string) (*Result, bool) {
	s := c.shard(key)
	s.mu.Lock()
	el, ok := s.m[key]
	if !ok {
		s.mu.Unlock()
		s.misses.Add(1)
		return nil, false
	}
	s.ll.MoveToFront(el)
	res := el.Value.(*cacheEntry).res
	s.mu.Unlock()
	s.hits.Add(1)
	cp := *res
	cp.FromCache = true
	return &cp, true
}

// put stores a complete Result computed under the statistics snapshot
// with the given fingerprint ("" for statistics-free runs). First writer
// wins: two racing Enumerate calls compute identical Results for the same
// key (or equally valid ones under cost-bound pruning), so overwriting
// would only churn. A full shard evicts its least-recently-used entry
// first.
func (c *PlanCache) put(key, statsFP string, res *Result) {
	s := c.shard(key)
	s.mu.Lock()
	if _, ok := s.m[key]; ok {
		s.mu.Unlock()
		return
	}
	var evicted bool
	if s.maxEntries > 0 && s.ll.Len() >= s.maxEntries {
		if back := s.ll.Back(); back != nil {
			s.ll.Remove(back)
			delete(s.m, back.Value.(*cacheEntry).key)
			evicted = true
		}
	}
	s.m[key] = s.ll.PushFront(&cacheEntry{key: key, statsFP: statsFP, res: res})
	s.mu.Unlock()
	if evicted {
		s.evictions.Add(1)
	}
}

// InvalidateStats drops every entry computed under a statistics snapshot
// whose fingerprint differs from fp, returning the number dropped.
// Statistics-independent entries (stored with an empty fingerprint, i.e.
// enumerated without Stats) are kept: their Results do not change when
// the serving snapshot does. The service layer calls this on stats
// hot-swap so serving continues with only the stale entries gone.
func (c *PlanCache) InvalidateStats(fp string) int {
	total := 0
	for _, s := range c.shards {
		s.mu.Lock()
		var next *list.Element
		for el := s.ll.Front(); el != nil; el = next {
			next = el.Next()
			e := el.Value.(*cacheEntry)
			if e.statsFP == "" || e.statsFP == fp {
				continue
			}
			s.ll.Remove(el)
			delete(s.m, e.key)
			total++
			s.invalidated.Add(1)
		}
		s.mu.Unlock()
	}
	return total
}

// Len returns the number of cached entries.
func (c *PlanCache) Len() int {
	n := 0
	for _, s := range c.shards {
		s.mu.Lock()
		n += len(s.m)
		s.mu.Unlock()
	}
	return n
}

// Counters returns an aggregated snapshot of the lifetime counters.
func (c *PlanCache) Counters() CacheCounters {
	var out CacheCounters
	for _, s := range c.shards {
		out.Hits += s.hits.Load()
		out.Misses += s.misses.Load()
		out.Evictions += s.evictions.Load()
		out.Invalidated += s.invalidated.Load()
	}
	return out
}

// cacheKey builds the lookup key: the canonical root signature (invariant
// under arbitrary alpha-renaming and binding/condition reorder — see
// core.CanonicalSignature), the dependency set in order, and a
// fingerprint of every option that can change the Result. In exhaustive
// mode Parallelism is excluded — complete runs are byte-identical for
// every worker count. In cost-bounded mode (Stats set) the explored
// subset is schedule-dependent, so Parallelism joins the key: a serial
// caller must not receive a parallel run's schedule-dependent Result.
func cacheKey(q *core.Query, deps []*core.Dependency, opts Options) string {
	var b strings.Builder
	b.WriteString(q.CanonicalSignature())
	b.WriteString("\x00deps\x00")
	for _, d := range deps {
		b.WriteString(d.String())
		b.WriteByte('\x00')
	}
	b.WriteString(opts.fingerprint())
	return b.String()
}

// statsFingerprint is the per-entry invalidation tag: the fingerprint of
// the statistics the enumeration ran under, or "" for stats-free runs.
func (o Options) statsFingerprint() string {
	if o.Stats == nil {
		return ""
	}
	return o.Stats.Fingerprint()
}

// fingerprint renders the result-affecting options deterministically.
func (o Options) fingerprint() string {
	var b strings.Builder
	writeInts(&b, o.MaxPlans, o.MaxStates, o.TopK, o.Chase.MaxSteps, o.Chase.MaxBindings)
	writeFloat(&b, o.CostBudget)
	if o.Stats != nil {
		b.WriteString("\x00stats\x00")
		writeInts(&b, o.Parallelism)
		if o.ScanOnlyBound {
			b.WriteString("scanbound;")
		}
		b.WriteString(o.Stats.Fingerprint())
	}
	return b.String()
}

func writeInts(b *strings.Builder, vals ...int) {
	for _, v := range vals {
		fmt.Fprintf(b, "%d;", v)
	}
}

func writeFloat(b *strings.Builder, v float64) {
	fmt.Fprintf(b, "%g;", v)
}
