package backchase

import (
	"math"
	"math/rand"
	"testing"

	"cnb/internal/chase"
	"cnb/internal/core"
	"cnb/internal/cost"
	"cnb/internal/planrewrite"
)

// randomStats draws a random but internally consistent statistics catalog
// for the flat R/S/T relations of the differential generator, so the
// pruning bound and priorities vary wildly across cases.
func randomStats(r *rand.Rand) *cost.Stats {
	s := cost.NewStats()
	for _, n := range []string{"R", "S", "T"} {
		card := 1 + r.Intn(10000)
		s.Card[n] = float64(card)
		for _, f := range diffFields {
			s.Distinct[n+"."+f] = float64(1 + r.Intn(card))
		}
	}
	return s
}

// cheapestEncountered reproduces the engine's BestCost metric from the
// outside: the cheapest quick-estimated executable cost over every
// explored state (raw) and registered plan (normalized), together with
// the query achieving it.
func cheapestEncountered(stats *cost.Stats, res *Result) (float64, *core.Query) {
	best := math.Inf(1)
	var bq *core.Query
	consider := func(q *core.Query) {
		c := stats.EstimateQuick(planrewrite.SimplifyLookups(q))
		if c < best {
			best = c
			bq = q
		}
	}
	for _, p := range res.Plans {
		consider(p)
	}
	for _, p := range res.Explored {
		consider(p)
	}
	return best, bq
}

// TestPruningSoundnessRandomized is the cost-bound analogue of the
// Enumerate-vs-brute-force differential suite: on randomized
// query/dependency/statistics triples, best-first search with pruning
// must (a) never claim more states than the exhaustive search, (b) reach
// a cheapest plan at least as cheap as the exhaustive cheapest under the
// engine's own metric, and (c) produce a cheapest plan chase-equivalent
// to the exhaustive cheapest — all across Parallelism 1/2/8.
func TestPruningSoundnessRandomized(t *testing.T) {
	const cases = 60
	r := rand.New(rand.NewSource(1234))
	for i := 0; i < cases; i++ {
		q := randomQuery(r)
		deps := randomDeps(r)
		stats := randomStats(r)

		ex, err := Enumerate(q, deps, Options{Parallelism: 2})
		if err != nil {
			t.Fatalf("case %d: exhaustive: %v\nquery:\n%s", i, err, q)
		}
		if ex.Truncated {
			t.Fatalf("case %d: unexpected truncation", i)
		}
		exBest, exPlan := cheapestEncountered(stats, ex)

		for _, par := range []int{1, 2, 8} {
			pr, err := Enumerate(q, deps, Options{Parallelism: par, Stats: stats})
			if err != nil {
				t.Fatalf("case %d par %d: pruned: %v\nquery:\n%s", i, par, err, q)
			}
			if pr.Truncated {
				t.Fatalf("case %d par %d: unexpected truncation", i, par)
			}
			// Explored states are verified-equivalent and reached through
			// verified parents, so they are a subset of the exhaustive
			// reachable set. (States + Pruned can legitimately exceed
			// ex.States: pruning also skips candidates whose equivalence
			// was never verified and which the exhaustive search rejects.)
			if pr.States > ex.States {
				t.Errorf("case %d par %d: pruned run explored %d states, exhaustive %d\nquery:\n%s",
					i, par, pr.States, ex.States, q)
			}
			prBest, prPlan := cheapestEncountered(stats, pr)
			// Soundness: pruning must never lose the cheapest plan. (It may
			// find a cheaper normalized rendering of a state the exhaustive
			// search left un-normalized, hence <=, not ==.)
			const eps = 1e-6
			if prBest > exBest*(1+eps)+eps {
				t.Errorf("case %d par %d: pruned cheapest %.6f worse than exhaustive %.6f\nquery:\n%s",
					i, par, prBest, exBest, q)
			}
			// BestCost is the minimum over every achieved cost, including
			// discarded isomorphic plan variants whose quick estimate can
			// undercut the stored rendering's — so it lower-bounds the
			// recomputation but never exceeds it.
			if pr.BestCost > prBest*(1+eps)+eps {
				t.Errorf("case %d par %d: Result.BestCost %.6f exceeds recomputed %.6f",
					i, par, pr.BestCost, prBest)
			}
			if prPlan == nil || exPlan == nil {
				t.Fatalf("case %d par %d: missing cheapest plan (pruned %v exhaustive %v)",
					i, par, prPlan != nil, exPlan != nil)
			}
			eq, err := Equivalent(prPlan, exPlan, deps, chase.Options{})
			if err != nil {
				t.Fatalf("case %d par %d: equivalence: %v", i, par, err)
			}
			if !eq {
				t.Errorf("case %d par %d: cheapest plans not chase-equivalent\npruned:\n%s\nexhaustive:\n%s",
					i, par, prPlan, exPlan)
			}
		}
	}
}

// TestPrunedSerialDeterminism pins the serial cost-bounded search: with
// one worker the priority queue (ties broken by state key), the bound
// evolution and therefore the whole Result are deterministic across runs.
func TestPrunedSerialDeterminism(t *testing.T) {
	deps := projDeptDeps()
	chased, err := chase.Chase(projDeptQuery(), deps, chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	stats := cost.NewStats()
	stats.Card["Proj"] = 5000
	stats.Card["depts"] = 500
	stats.Card["SI"] = 40
	stats.Card["I"] = 5000
	stats.Card["Dept"] = 500
	stats.Card["JI"] = 5000
	stats.EntryFanout["SI"] = 125
	var ref string
	for run := 0; run < 3; run++ {
		res, err := Enumerate(chased.Query, deps, Options{Parallelism: 1, Stats: stats})
		if err != nil {
			t.Fatal(err)
		}
		fp := resultFingerprint(res)
		if ref == "" {
			ref = fp
		} else if fp != ref {
			t.Fatalf("run %d: serial pruned result differs\ngot:\n%s\nwant:\n%s", run, fp, ref)
		}
	}
}

// TestCostBudgetPrunesEverything pins the CostBudget semantics: a budget
// below every reachable plan's lower bound prunes the root itself, so the
// run finishes with no plans and an infinite BestCost.
func TestCostBudgetPrunesEverything(t *testing.T) {
	q := &core.Query{
		Out: core.Prj(core.V("x0"), "A"),
		Bindings: []core.Binding{
			{Var: "x0", Range: core.Name("R")},
			{Var: "x1", Range: core.Name("R")},
		},
		Conds: []core.Cond{{L: core.V("x0"), R: core.V("x1")}},
	}
	stats := cost.NewStats()
	stats.Card["R"] = 1000
	res, err := Enumerate(q, nil, Options{Stats: stats, CostBudget: 0.5, Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Pruned == 0 {
		t.Error("budget below every lower bound must prune")
	}
	if res.States != 0 || len(res.Plans) != 0 {
		t.Errorf("states = %d, plans = %d; want 0, 0 under an impossible budget",
			res.States, len(res.Plans))
	}
	if !math.IsInf(res.BestCost, 1) {
		t.Errorf("BestCost = %v, want +Inf", res.BestCost)
	}
}

// TestCostBudgetGenerousKeepsCheapest: a budget far above the cheapest
// plan changes nothing about the cheapest plan found.
func TestCostBudgetGenerousKeepsCheapest(t *testing.T) {
	q := redundantTriple()
	stats := cost.NewStats()
	stats.Card["R"] = 100
	free, err := Enumerate(q, nil, Options{Stats: stats, Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	budgeted, err := Enumerate(q, nil, Options{Stats: stats, CostBudget: 1e9, Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	if free.BestCost != budgeted.BestCost {
		t.Errorf("BestCost %v with budget vs %v without", budgeted.BestCost, free.BestCost)
	}
}

// TestTopKLimitsPlans: TopK returns only the K cheapest plans without
// affecting BestCost.
func TestTopKLimitsPlans(t *testing.T) {
	deps := projDeptDeps()
	chased, err := chase.Chase(projDeptQuery(), deps, chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	stats := cost.NewStats()
	stats.Card["Proj"] = 5000
	all, err := Enumerate(chased.Query, deps, Options{Stats: stats})
	if err != nil {
		t.Fatal(err)
	}
	if len(all.Plans) < 2 {
		t.Skipf("need >= 2 plans to exercise TopK, got %d", len(all.Plans))
	}
	top, err := Enumerate(chased.Query, deps, Options{Stats: stats, TopK: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(top.Plans) != 1 {
		t.Errorf("TopK=1 returned %d plans", len(top.Plans))
	}
	if top.BestCost != all.BestCost {
		t.Errorf("TopK changed BestCost: %v vs %v", top.BestCost, all.BestCost)
	}
}
