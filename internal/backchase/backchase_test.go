package backchase

import (
	"strings"
	"testing"

	"cnb/internal/chase"
	"cnb/internal/core"
)

// ---- shared fixtures (ProjDept running example, duplicated from the
// chase tests to keep packages independent) ------------------------------

func projDeptQuery() *core.Query {
	return &core.Query{
		Out: core.Struct(
			core.SF("PN", core.V("s")),
			core.SF("PB", core.Prj(core.V("p"), "Budg")),
			core.SF("DN", core.Prj(core.V("d"), "DName")),
		),
		Bindings: []core.Binding{
			{Var: "d", Range: core.Name("depts")},
			{Var: "s", Range: core.Prj(core.V("d"), "DProjs")},
			{Var: "p", Range: core.Name("Proj")},
		},
		Conds: []core.Cond{
			{L: core.V("s"), R: core.Prj(core.V("p"), "PName")},
			{L: core.Prj(core.V("p"), "CustName"), R: core.C("CitiBank")},
		},
	}
}

func projDeptDeps() []*core.Dependency {
	mk := func(name string, prem []core.Binding, premC []core.Cond, conc []core.Binding, concC []core.Cond) *core.Dependency {
		return &core.Dependency{Name: name, Premise: prem, PremiseConds: premC, Conclusion: conc, ConclusionConds: concC}
	}
	v, n, prj, dom, lk := core.V, core.Name, core.Prj, core.Dom, core.Lk
	return []*core.Dependency{
		mk("PhiJI",
			[]core.Binding{{Var: "dd", Range: dom(n("Dept"))}, {Var: "s", Range: prj(lk(n("Dept"), v("dd")), "DProjs")}, {Var: "p", Range: n("Proj")}},
			[]core.Cond{{L: v("s"), R: prj(v("p"), "PName")}},
			[]core.Binding{{Var: "j", Range: n("JI")}},
			[]core.Cond{{L: prj(v("j"), "DOID"), R: v("dd")}, {L: prj(v("j"), "PN"), R: prj(v("p"), "PName")}}),
		mk("PhiDept",
			[]core.Binding{{Var: "d", Range: n("depts")}}, nil,
			[]core.Binding{{Var: "dd", Range: dom(n("Dept"))}},
			[]core.Cond{{L: lk(n("Dept"), v("dd")), R: v("d")}}),
		mk("INV1",
			[]core.Binding{{Var: "d", Range: n("depts")}, {Var: "s", Range: prj(v("d"), "DProjs")}, {Var: "p", Range: n("Proj")}},
			[]core.Cond{{L: v("s"), R: prj(v("p"), "PName")}},
			nil,
			[]core.Cond{{L: prj(v("p"), "PDept"), R: prj(v("d"), "DName")}}),
		mk("PhiSI",
			[]core.Binding{{Var: "p", Range: n("Proj")}}, nil,
			[]core.Binding{{Var: "k", Range: dom(n("SI"))}, {Var: "t", Range: lk(n("SI"), v("k"))}},
			[]core.Cond{{L: v("k"), R: prj(v("p"), "CustName")}, {L: v("p"), R: v("t")}}),
		mk("PhiPI",
			[]core.Binding{{Var: "p", Range: n("Proj")}}, nil,
			[]core.Binding{{Var: "i", Range: dom(n("I"))}},
			[]core.Cond{{L: v("i"), R: prj(v("p"), "PName")}, {L: lk(n("I"), v("i")), R: v("p")}}),
		mk("PhiJIInv",
			[]core.Binding{{Var: "j", Range: n("JI")}}, nil,
			[]core.Binding{{Var: "dd", Range: dom(n("Dept"))}, {Var: "s", Range: prj(lk(n("Dept"), v("dd")), "DProjs")}, {Var: "p", Range: n("Proj")}},
			[]core.Cond{{L: v("s"), R: prj(v("p"), "PName")}, {L: prj(v("j"), "DOID"), R: v("dd")}, {L: prj(v("j"), "PN"), R: prj(v("p"), "PName")}}),
		mk("PhiDeptInv",
			[]core.Binding{{Var: "dd", Range: dom(n("Dept"))}}, nil,
			[]core.Binding{{Var: "d", Range: n("depts")}},
			[]core.Cond{{L: v("d"), R: lk(n("Dept"), v("dd"))}}),
		mk("PhiSIInv",
			[]core.Binding{{Var: "k", Range: dom(n("SI"))}, {Var: "t", Range: lk(n("SI"), v("k"))}}, nil,
			[]core.Binding{{Var: "p", Range: n("Proj")}},
			[]core.Cond{{L: v("k"), R: prj(v("p"), "CustName")}, {L: v("p"), R: v("t")}}),
		mk("PhiPIInv",
			[]core.Binding{{Var: "i", Range: dom(n("I"))}}, nil,
			[]core.Binding{{Var: "p", Range: n("Proj")}},
			[]core.Cond{{L: v("i"), R: prj(v("p"), "PName")}, {L: lk(n("I"), v("i")), R: v("p")}}),
		mk("RIC1",
			[]core.Binding{{Var: "d", Range: n("depts")}, {Var: "s", Range: prj(v("d"), "DProjs")}}, nil,
			[]core.Binding{{Var: "p", Range: n("Proj")}},
			[]core.Cond{{L: v("s"), R: prj(v("p"), "PName")}}),
		mk("RIC2",
			[]core.Binding{{Var: "p", Range: n("Proj")}}, nil,
			[]core.Binding{{Var: "d", Range: n("depts")}},
			[]core.Cond{{L: prj(v("p"), "PDept"), R: prj(v("d"), "DName")}}),
		mk("INV2",
			[]core.Binding{{Var: "p", Range: n("Proj")}, {Var: "d", Range: n("depts")}},
			[]core.Cond{{L: prj(v("p"), "PDept"), R: prj(v("d"), "DName")}},
			[]core.Binding{{Var: "s", Range: prj(v("d"), "DProjs")}},
			[]core.Cond{{L: prj(v("p"), "PName"), R: v("s")}}),
		mk("KEY1",
			[]core.Binding{{Var: "a", Range: n("depts")}, {Var: "b", Range: n("depts")}},
			[]core.Cond{{L: prj(v("a"), "DName"), R: prj(v("b"), "DName")}},
			nil,
			[]core.Cond{{L: v("a"), R: v("b")}}),
		mk("KEY2",
			[]core.Binding{{Var: "a", Range: n("Proj")}, {Var: "b", Range: n("Proj")}},
			[]core.Cond{{L: prj(v("a"), "PName"), R: prj(v("b"), "PName")}},
			nil,
			[]core.Cond{{L: v("a"), R: v("b")}}),
	}
}

// ---- tableau minimization (the paper's §3 example) ----------------------

// redundantTriple is the §3 example:
//
//	select struct(A: p.A, B: r.B) from R p, R q, R r
//	where p.B = q.A and q.B = r.B
//
// which minimizes to
//
//	select struct(A: p.A, B: q.B) from R p, R q where p.B = q.A
func redundantTriple() *core.Query {
	return &core.Query{
		Out: core.Struct(
			core.SF("A", core.Prj(core.V("p"), "A")),
			core.SF("B", core.Prj(core.V("r"), "B")),
		),
		Bindings: []core.Binding{
			{Var: "p", Range: core.Name("R")},
			{Var: "q", Range: core.Name("R")},
			{Var: "r", Range: core.Name("R")},
		},
		Conds: []core.Cond{
			{L: core.Prj(core.V("p"), "B"), R: core.Prj(core.V("q"), "A")},
			{L: core.Prj(core.V("q"), "B"), R: core.Prj(core.V("r"), "B")},
		},
	}
}

func TestTableauMinimization(t *testing.T) {
	// No constraints at all: backchase = tableau minimization.
	min, err := MinimizeOne(redundantTriple(), nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(min.Bindings) != 2 {
		t.Fatalf("minimized to %d bindings, want 2:\n%s", len(min.Bindings), min)
	}
	// Output B must have been rewritten from r.B to q.B.
	outB := min.Out.Fields[1].Term
	if outB.MentionsVar("r") {
		t.Errorf("output still mentions removed variable r: %s", min.Out)
	}
}

func TestTableauMinimizationEnumerate(t *testing.T) {
	res, err := Enumerate(redundantTriple(), nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Plans) != 1 {
		t.Fatalf("plans = %d, want exactly 1 minimal form", len(res.Plans))
	}
	if len(res.Plans[0].Bindings) != 2 {
		t.Errorf("minimal plan has %d bindings, want 2", len(res.Plans[0].Bindings))
	}
}

func TestMinimalQueryIsFixpoint(t *testing.T) {
	q := &core.Query{
		Out: core.Prj(core.V("p"), "A"),
		Bindings: []core.Binding{
			{Var: "p", Range: core.Name("R")},
			{Var: "s", Range: core.Name("S")},
		},
		Conds: []core.Cond{{L: core.Prj(core.V("p"), "A"), R: core.Prj(core.V("s"), "B")}},
	}
	// Both bindings are needed (s constrains p through the join).
	ok, err := IsMinimal(q, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("query with a meaningful join must be minimal")
	}
}

func TestRemoveDuplicateBinding(t *testing.T) {
	// select p.A from R p, R q where p = q — q is redundant.
	q := &core.Query{
		Out: core.Prj(core.V("p"), "A"),
		Bindings: []core.Binding{
			{Var: "p", Range: core.Name("R")},
			{Var: "q", Range: core.Name("R")},
		},
		Conds: []core.Cond{{L: core.V("p"), R: core.V("q")}},
	}
	min, err := MinimizeOne(q, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(min.Bindings) != 1 {
		t.Errorf("duplicate binding not removed:\n%s", min)
	}
}

// ---- Subquery construction ----------------------------------------------

func TestSubqueryBasic(t *testing.T) {
	q := redundantTriple()
	sub, ok := Subquery(q, map[string]bool{"r": true})
	if !ok {
		t.Fatal("subquery removing r should exist")
	}
	if len(sub.Bindings) != 2 {
		t.Fatalf("bindings = %d, want 2", len(sub.Bindings))
	}
	// Conditions must keep p.B = q.A and drop/re-express q.B = r.B.
	found := false
	for _, c := range sub.Conds {
		if c.Equal(core.Cond{L: core.Prj(core.V("p"), "B"), R: core.Prj(core.V("q"), "A")}) {
			found = true
		}
		if c.L.MentionsVar("r") || c.R.MentionsVar("r") {
			t.Errorf("condition mentions removed var: %s", c)
		}
	}
	if !found {
		t.Error("surviving condition p.B = q.A missing")
	}
	if err := sub.Validate(); err != nil {
		t.Errorf("subquery invalid: %v", err)
	}
}

func TestSubqueryOutputBlocksRemoval(t *testing.T) {
	// Removing p is impossible: output p.A cannot be re-expressed.
	q := &core.Query{
		Out:      core.Prj(core.V("p"), "A"),
		Bindings: []core.Binding{{Var: "p", Range: core.Name("R")}, {Var: "s", Range: core.Name("S")}},
	}
	if _, ok := Subquery(q, map[string]bool{"p": true}); ok {
		t.Error("removal of output-essential binding must fail")
	}
	// Removing s is fine structurally.
	if _, ok := Subquery(q, map[string]bool{"s": true}); !ok {
		t.Error("removal of s should construct a subquery")
	}
}

func TestSubqueryCascade(t *testing.T) {
	// s ranges over d.DProjs: removing d cascades to s unless s's range
	// can be re-expressed. Here it cannot, so both go.
	q := &core.Query{
		Out: core.C(true),
		Bindings: []core.Binding{
			{Var: "d", Range: core.Name("depts")},
			{Var: "s", Range: core.Prj(core.V("d"), "DProjs")},
			{Var: "p", Range: core.Name("Proj")},
		},
	}
	sub, ok := Subquery(q, map[string]bool{"d": true})
	if !ok {
		t.Fatal("cascading removal should succeed")
	}
	if len(sub.Bindings) != 1 || sub.Bindings[0].Var != "p" {
		t.Errorf("cascade should leave only p: %s", sub)
	}
}

func TestSubqueryRangeRewriteInsteadOfCascade(t *testing.T) {
	// With the equality d = Dept[dd], removing d can rewrite s's range to
	// Dept[dd].DProjs instead of cascading (footnote 6 of the paper).
	q := &core.Query{
		Out: core.C(true),
		Bindings: []core.Binding{
			{Var: "d", Range: core.Name("depts")},
			{Var: "dd", Range: core.Dom(core.Name("Dept"))},
			{Var: "s", Range: core.Prj(core.V("d"), "DProjs")},
		},
		Conds: []core.Cond{{L: core.Lk(core.Name("Dept"), core.V("dd")), R: core.V("d")}},
	}
	sub, ok := Subquery(q, map[string]bool{"d": true})
	if !ok {
		t.Fatal("removal with range rewrite should succeed")
	}
	if len(sub.Bindings) != 2 {
		t.Fatalf("bindings = %d, want 2 (dd and s):\n%s", len(sub.Bindings), sub)
	}
	want := core.Prj(core.Lk(core.Name("Dept"), core.V("dd")), "DProjs")
	var sRange *core.Term
	for _, b := range sub.Bindings {
		if b.Var == "s" {
			sRange = b.Range
		}
	}
	if sRange == nil || !sRange.Equal(want) {
		t.Errorf("s range = %s, want %s", sRange, want)
	}
}

func TestSubqueryTopoReorder(t *testing.T) {
	// After rewriting, a range may depend on a variable bound later in
	// the original order; the subquery must reorder bindings.
	q := &core.Query{
		Out: core.C(true),
		Bindings: []core.Binding{
			{Var: "a", Range: core.Name("R")},
			{Var: "b", Range: core.Prj(core.V("a"), "F")},
			{Var: "c", Range: core.Name("S")},
		},
		Conds: []core.Cond{{L: core.V("a"), R: core.Prj(core.V("c"), "G")}},
	}
	sub, ok := Subquery(q, map[string]bool{"a": true})
	if !ok {
		t.Fatal("removal should succeed via rewrite a -> c.G")
	}
	if err := sub.Validate(); err != nil {
		t.Fatalf("subquery must be properly scoped: %v\n%s", err, sub)
	}
}

// ---- containment / equivalence ------------------------------------------

func TestContainmentClassical(t *testing.T) {
	// Q1: select r.A from R r where r.B = 1   ⊑   Q2: select r.A from R r.
	q1 := &core.Query{
		Out:      core.Prj(core.V("r"), "A"),
		Bindings: []core.Binding{{Var: "r", Range: core.Name("R")}},
		Conds:    []core.Cond{{L: core.Prj(core.V("r"), "B"), R: core.C(1)}},
	}
	q2 := &core.Query{
		Out:      core.Prj(core.V("r"), "A"),
		Bindings: []core.Binding{{Var: "r", Range: core.Name("R")}},
	}
	ok, err := Contained(q1, q2, nil, chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("selection must be contained in full scan")
	}
	ok, err = Contained(q2, q1, nil, chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("full scan must not be contained in selection")
	}
}

func TestEquivalenceUnderConstraints(t *testing.T) {
	// Under RIC2 (every Proj has a matching dept), the join with depts on
	// the RIC condition is redundant for outputs that don't use d:
	// Q1: select p.PName from Proj p, depts d where p.PDept = d.DName
	// Q2: select p.PName from Proj p
	q1 := &core.Query{
		Out: core.Prj(core.V("p"), "PName"),
		Bindings: []core.Binding{
			{Var: "p", Range: core.Name("Proj")},
			{Var: "d", Range: core.Name("depts")},
		},
		Conds: []core.Cond{{L: core.Prj(core.V("p"), "PDept"), R: core.Prj(core.V("d"), "DName")}},
	}
	q2 := &core.Query{
		Out:      core.Prj(core.V("p"), "PName"),
		Bindings: []core.Binding{{Var: "p", Range: core.Name("Proj")}},
	}
	ric2 := &core.Dependency{
		Name:            "RIC2",
		Premise:         []core.Binding{{Var: "p", Range: core.Name("Proj")}},
		Conclusion:      []core.Binding{{Var: "d", Range: core.Name("depts")}},
		ConclusionConds: []core.Cond{{L: core.Prj(core.V("p"), "PDept"), R: core.Prj(core.V("d"), "DName")}},
	}
	eq, err := Equivalent(q1, q2, []*core.Dependency{ric2}, chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Error("RIC must make the dependent join redundant")
	}
	// Without the constraint they are not equivalent.
	eq, err = Equivalent(q1, q2, nil, chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if eq {
		t.Error("without RIC the queries must differ")
	}
}

func TestSemanticJoinElimination(t *testing.T) {
	// Same scenario driven through the backchase directly.
	q1 := &core.Query{
		Out: core.Prj(core.V("p"), "PName"),
		Bindings: []core.Binding{
			{Var: "p", Range: core.Name("Proj")},
			{Var: "d", Range: core.Name("depts")},
		},
		Conds: []core.Cond{{L: core.Prj(core.V("p"), "PDept"), R: core.Prj(core.V("d"), "DName")}},
	}
	ric2 := &core.Dependency{
		Name:            "RIC2",
		Premise:         []core.Binding{{Var: "p", Range: core.Name("Proj")}},
		Conclusion:      []core.Binding{{Var: "d", Range: core.Name("depts")}},
		ConclusionConds: []core.Cond{{L: core.Prj(core.V("p"), "PDept"), R: core.Prj(core.V("d"), "DName")}},
	}
	min, err := MinimizeOne(q1, []*core.Dependency{ric2}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(min.Bindings) != 1 || min.Bindings[0].Var != "p" {
		t.Errorf("semantic optimization should drop the depts join:\n%s", min)
	}
}

// ---- the headline result: P1..P4 from the universal plan ----------------

// isP1 recognizes the paper's P1 shape by its bindings: a dom(Dept) scan,
// a dependent Dept[..].DProjs scan, and a Proj scan. Intermediate backchase
// states may carry extra implied conditions mentioning other structures,
// so only the from clause is inspected.
func isP1(p *core.Query) bool {
	if len(p.Bindings) != 3 {
		return false
	}
	var domDept, dprojs, proj bool
	for _, b := range p.Bindings {
		switch {
		case b.Range.Equal(core.Dom(core.Name("Dept"))):
			domDept = true
		case b.Range.Kind == core.KProj && b.Range.Name == "DProjs" &&
			b.Range.Base.Kind == core.KLookup && b.Range.Base.Base.Equal(core.Name("Dept")):
			dprojs = true
		case b.Range.Equal(core.Name("Proj")):
			proj = true
		}
	}
	return domDept && dprojs && proj
}

func TestProjDeptEnumerateFindsAllFourPlans(t *testing.T) {
	// Full Figure-2 constraint set (RICs, INVs, KEYs) plus the physical
	// structure constraints: the paper's scenario. P2, P3 and P4 must be
	// normal forms; P1 must be produced by some backchase sequence (it is
	// an explored state). Under the full constraint set P1 itself admits
	// one further reduction — via INV2 the s loop collapses, then RIC2 the
	// dictionary scan — which the paper does not apply; we assert it as an
	// explored state and document the extra reduction in EXPERIMENTS.md.
	deps := projDeptDeps()
	q := projDeptQuery()
	chased, err := chase.Chase(q, deps, chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	u := chased.Query
	t.Logf("universal plan (%d bindings):\n%s", len(u.Bindings), u)

	res, err := Enumerate(u, deps, Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("explored %d states, found %d minimal plans", res.States, len(res.Plans))
	for i, p := range res.Plans {
		t.Logf("plan %d:\n%s", i+1, p)
	}

	// Classify the normal forms by the shapes of the paper's P2..P4.
	var p2, p3, p4 int
	for _, p := range res.Plans {
		ns := p.Names()
		switch {
		case ns["Proj"] && len(ns) == 1:
			p2++
		case ns["SI"] && !ns["Proj"] && !ns["JI"] && !ns["I"] && !ns["Dept"]:
			p3++
		case ns["JI"] && ns["I"] && ns["Dept"] && !ns["Proj"] && !ns["SI"]:
			p4++
		}
	}
	if p2 == 0 {
		t.Error("missing P2 (Proj-only scan plan)")
	}
	if p3 == 0 {
		t.Error("missing P3 (secondary index plan)")
	}
	if p4 == 0 {
		t.Error("missing P4 (join index plan)")
	}

	// P1 must appear as a backchase state.
	foundP1 := false
	for _, p := range res.Explored {
		if isP1(p) {
			foundP1 = true
			break
		}
	}
	if !foundP1 {
		t.Error("P1 (dictionary + Proj scan) not reached by any backchase sequence")
	}

	// Sanity: every normal form is no larger than the universal plan.
	for _, p := range res.Plans {
		if len(p.Bindings) > len(u.Bindings) {
			t.Errorf("minimal plan larger than universal plan:\n%s", p)
		}
	}
}

func TestProjDeptP4Shape(t *testing.T) {
	// The join-index plan must have exactly the paper's P4 pieces: a JI
	// scan plus the primary-index guard, with the derived condition
	// I[..].CustName = "CitiBank" and the dictionary dereference in the
	// output.
	deps := projDeptDeps()
	chased, err := chase.Chase(projDeptQuery(), deps, chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Enumerate(chased.Query, deps, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Plans {
		ns := p.Names()
		if ns["JI"] && ns["I"] && ns["Dept"] && !ns["Proj"] && !ns["SI"] {
			// The paper's P4: select struct(PN: j.PN, PB: I[j.PN].Budg,
			// DN: Dept[j.DOID].DName) from JI j
			// where I[j.PN].CustName = "CitiBank".
			if len(p.Bindings) != 1 {
				t.Errorf("P4 should be a single JI scan:\n%s", p)
				continue
			}
			if !p.Bindings[0].Range.Equal(core.Name("JI")) {
				t.Errorf("P4 binding should range over JI:\n%s", p)
			}
			s := p.String()
			if !strings.Contains(s, `.CustName = "CitiBank"`) && !strings.Contains(s, `"CitiBank" = I[`) {
				t.Errorf("P4 must carry the derived CustName filter:\n%s", p)
			}
			if !strings.Contains(s, "Dept[") {
				t.Errorf("P4 output must dereference the Dept dictionary:\n%s", p)
			}
			return
		}
	}
	t.Error("P4 not found")
}

func TestProjDeptP2Shape(t *testing.T) {
	// The Proj-only minimal plan must be the paper's P2:
	// select struct(PN: p.PName, PB: p.Budg, DN: p.PDept)
	// from Proj p where p.CustName = "CitiBank"
	deps := projDeptDeps()
	q := projDeptQuery()
	chased, err := chase.Chase(q, deps, chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Enumerate(chased.Query, deps, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Plans {
		ns := p.Names()
		if ns["Proj"] && len(ns) == 1 {
			if len(p.Bindings) != 1 {
				t.Errorf("P2 must have a single binding:\n%s", p)
			}
			v := p.Bindings[0].Var
			wantOut := core.Struct(
				core.SF("PN", core.Prj(core.V(v), "PName")),
				core.SF("PB", core.Prj(core.V(v), "Budg")),
				core.SF("DN", core.Prj(core.V(v), "PDept")),
			)
			if !p.Out.Equal(wantOut) {
				t.Errorf("P2 output = %s, want %s", p.Out, wantOut)
			}
			return
		}
	}
	t.Error("P2 not found")
}

func TestEnumerateStateCapTruncates(t *testing.T) {
	deps := projDeptDeps()
	q := projDeptQuery()
	chased, err := chase.Chase(q, deps, chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Enumerate(chased.Query, deps, Options{MaxStates: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated {
		t.Error("tiny state cap must truncate")
	}
}

// ---- brute force cross-check (Theorem 2 validation) ----------------------

func TestBruteForceAgreesOnTableauMinimization(t *testing.T) {
	q := redundantTriple()
	bf, err := BruteForceMinimal(q, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	en, err := Enumerate(q, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sigs := func(qs []*core.Query) map[string]bool {
		m := map[string]bool{}
		for _, x := range qs {
			m[x.CanonicalSignature()] = true
		}
		return m
	}
	sb, se := sigs(bf), sigs(en.Plans)
	if len(sb) != len(se) {
		t.Fatalf("brute force found %d minimal forms, enumerate %d", len(sb), len(se))
	}
	for s := range se {
		if !sb[s] {
			t.Errorf("enumerated plan not confirmed by brute force")
		}
	}
}

func TestBruteForceRejectsTooManyBindings(t *testing.T) {
	q := &core.Query{Out: core.C(true)}
	for i := 0; i < 21; i++ {
		q.Bindings = append(q.Bindings, core.Binding{Var: string(rune('a' + i)), Range: core.Name("R")})
	}
	if _, err := BruteForceMinimal(q, nil, Options{}); err == nil {
		t.Error("brute force must reject > 20 bindings")
	} else if !strings.Contains(err.Error(), "brute force") {
		t.Errorf("unexpected error: %v", err)
	}
}
