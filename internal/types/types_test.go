package types

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestBaseTypeSingletons(t *testing.T) {
	if Int() != Int() {
		t.Error("Int() should return a singleton")
	}
	if Float() != Float() {
		t.Error("Float() should return a singleton")
	}
	if StringT() != StringT() {
		t.Error("StringT() should return a singleton")
	}
	if Bool() != Bool() {
		t.Error("Bool() should return a singleton")
	}
}

func TestOIDEquality(t *testing.T) {
	if !OID("Doid").Equal(OID("Doid")) {
		t.Error("same-named OID types must be equal")
	}
	if OID("Doid").Equal(OID("Eoid")) {
		t.Error("differently-named OID types must differ")
	}
	if OID("Doid").Equal(Int()) {
		t.Error("oid must not equal int")
	}
}

func TestStructEquality(t *testing.T) {
	a := StructOf(F("A", Int()), F("B", StringT()))
	b := StructOf(F("A", Int()), F("B", StringT()))
	c := StructOf(F("B", StringT()), F("A", Int()))
	if !a.Equal(b) {
		t.Error("identical structs must be equal")
	}
	if a.Equal(c) {
		t.Error("field order is significant")
	}
	d := StructOf(F("A", Int()))
	if a.Equal(d) {
		t.Error("different arity structs must differ")
	}
}

func TestSetAndDictEquality(t *testing.T) {
	s1 := SetOf(Int())
	s2 := SetOf(Int())
	if !s1.Equal(s2) {
		t.Error("set<int> == set<int>")
	}
	if s1.Equal(SetOf(StringT())) {
		t.Error("set<int> != set<string>")
	}
	d1 := DictOf(StringT(), SetOf(Int()))
	d2 := DictOf(StringT(), SetOf(Int()))
	if !d1.Equal(d2) {
		t.Error("identical dicts must be equal")
	}
	if d1.Equal(DictOf(Int(), SetOf(Int()))) {
		t.Error("dict key type is significant")
	}
	if d1.Equal(s1) {
		t.Error("dict != set")
	}
}

func TestNilEquality(t *testing.T) {
	var n *Type
	if n.Equal(Int()) {
		t.Error("nil must not equal int")
	}
	if Int().Equal(nil) {
		t.Error("int must not equal nil")
	}
}

func TestFieldType(t *testing.T) {
	s := StructOf(F("PName", StringT()), F("Budg", Int()))
	if got := s.FieldType("PName"); !got.Equal(StringT()) {
		t.Errorf("FieldType(PName) = %v, want string", got)
	}
	if got := s.FieldType("Budg"); !got.Equal(Int()) {
		t.Errorf("FieldType(Budg) = %v, want int", got)
	}
	if got := s.FieldType("Nope"); got != nil {
		t.Errorf("FieldType(Nope) = %v, want nil", got)
	}
	if got := Int().FieldType("A"); got != nil {
		t.Errorf("FieldType on int = %v, want nil", got)
	}
}

func TestString(t *testing.T) {
	cases := []struct {
		t    *Type
		want string
	}{
		{Int(), "int"},
		{StringT(), "string"},
		{Bool(), "bool"},
		{Float(), "float"},
		{OID("Doid"), "Doid"},
		{SetOf(Int()), "set<int>"},
		{DictOf(StringT(), Int()), "dict<string, int>"},
		{StructOf(F("A", Int()), F("B", SetOf(StringT()))), "{A: int, B: set<string>}"},
		{DictOf(OID("Doid"), StructOf(F("DName", StringT()))), "dict<Doid, {DName: string}>"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestValidate(t *testing.T) {
	good := []*Type{
		Int(),
		SetOf(StructOf(F("A", Int()))),
		DictOf(StringT(), SetOf(Int())),
		DictOf(StructOf(F("K", Int()), F("L", StringT())), Int()),
		OID("X"),
	}
	for _, g := range good {
		if err := g.Validate(); err != nil {
			t.Errorf("Validate(%s) = %v, want nil", g, err)
		}
	}
	bad := []*Type{
		DictOf(SetOf(Int()), Int()),                      // set-typed key
		DictOf(StructOf(F("K", SetOf(Int()))), Int()),    // nested collection in key
		DictOf(DictOf(StringT(), Int()), Int()),          // dict-typed key
		{Kind: KindOID},                                  // nameless oid
		{Kind: KindStruct, Fields: []Field{{"", Int()}}}, // empty field name
	}
	for _, b := range bad {
		if err := b.Validate(); err == nil {
			t.Errorf("Validate(%s) = nil, want error", b)
		}
	}
}

func TestValidateDuplicateField(t *testing.T) {
	tt := &Type{Kind: KindStruct, Fields: []Field{{"A", Int()}, {"A", Int()}}}
	if err := tt.Validate(); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("Validate dup field = %v, want duplicate error", err)
	}
}

func TestStructOfPanicsOnDuplicate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("StructOf with duplicate fields should panic")
		}
	}()
	StructOf(F("A", Int()), F("A", StringT()))
}

func TestContainsCollection(t *testing.T) {
	if Int().ContainsCollection() {
		t.Error("int contains no collection")
	}
	if !SetOf(Int()).ContainsCollection() {
		t.Error("set<int> contains a collection")
	}
	if !StructOf(F("A", StructOf(F("B", DictOf(StringT(), Int()))))).ContainsCollection() {
		t.Error("nested dict must be detected")
	}
	if StructOf(F("A", Int()), F("B", OID("X"))).ContainsCollection() {
		t.Error("flat struct of base types contains no collection")
	}
}

func TestIsBase(t *testing.T) {
	for _, b := range []*Type{Int(), Float(), StringT(), Bool(), OID("Z")} {
		if !b.IsBase() {
			t.Errorf("%s should be base", b)
		}
	}
	for _, nb := range []*Type{SetOf(Int()), DictOf(Int(), Int()), StructOf()} {
		if nb.IsBase() {
			t.Errorf("%s should not be base", nb)
		}
	}
}

func TestFieldNames(t *testing.T) {
	s := StructOf(F("Z", Int()), F("A", Int()), F("M", Int()))
	got := s.FieldNames()
	want := []string{"A", "M", "Z"}
	if len(got) != len(want) {
		t.Fatalf("FieldNames = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("FieldNames = %v, want %v", got, want)
		}
	}
	if Int().FieldNames() != nil {
		t.Error("FieldNames on non-struct should be nil")
	}
}

// TestEqualReflexiveSymmetric exercises Equal with quick-generated shapes
// built from a small constructor alphabet.
func TestEqualReflexiveSymmetric(t *testing.T) {
	gen := func(seed int64) *Type {
		// Deterministic small type from a seed.
		if seed < 0 {
			seed = -(seed + 1) // avoid MinInt64 overflow
		}
		bases := []*Type{Int(), Float(), StringT(), Bool(), OID("A"), OID("B")}
		b := bases[seed%int64(len(bases))]
		switch (seed / 7) % 4 {
		case 0:
			return b
		case 1:
			return SetOf(b)
		case 2:
			return DictOf(StringT(), b)
		default:
			return StructOf(F("X", b), F("Y", Int()))
		}
	}
	f := func(s1, s2 int64) bool {
		a, b := gen(s1), gen(s2)
		if !a.Equal(a) || !b.Equal(b) {
			return false
		}
		return a.Equal(b) == b.Equal(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
