// Package types implements the type system of the path-conjunctive data
// model used by the chase & backchase optimizer: base types (including
// opaque OID types invented for class extents), finite sets, records
// (structs) and dictionaries (finite functions).
//
// The model follows §1–§2 of Deutsch, Popa, Tannen (VLDB 1999): a schema is
// a set of names, each with a type built from this grammar:
//
//	T ::= int | float | string | bool | oid(Name)
//	    | Set<T>
//	    | Struct{A1: T1, ..., An: Tn}
//	    | Dict<Tkey, Tval>
package types

import (
	"fmt"
	"sort"
	"strings"
)

// Kind discriminates the variants of Type.
type Kind int

// The kinds of types in the model.
const (
	KindInt Kind = iota
	KindFloat
	KindString
	KindBool
	KindOID // an opaque base type invented for a class of objects
	KindSet
	KindStruct
	KindDict
)

func (k Kind) String() string {
	switch k {
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	case KindBool:
		return "bool"
	case KindOID:
		return "oid"
	case KindSet:
		return "set"
	case KindStruct:
		return "struct"
	case KindDict:
		return "dict"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Field is a named component of a struct type.
type Field struct {
	Name string
	Type *Type
}

// Type is an immutable description of a value shape. Construct types with
// the constructor functions (Int, SetOf, StructOf, ...); do not mutate a
// Type after construction.
type Type struct {
	Kind Kind

	// OIDName names the opaque base type when Kind == KindOID
	// (e.g. "Doid" for the Dept class of the paper's Figure 3).
	OIDName string

	// Elem is the element type for sets and the value type for dicts.
	Elem *Type

	// Key is the key type for dicts.
	Key *Type

	// Fields are the components of a struct, in declaration order.
	Fields []Field
}

var (
	intType    = &Type{Kind: KindInt}
	floatType  = &Type{Kind: KindFloat}
	stringType = &Type{Kind: KindString}
	boolType   = &Type{Kind: KindBool}
)

// Int returns the int base type.
func Int() *Type { return intType }

// Float returns the float base type.
func Float() *Type { return floatType }

// String returns the string base type.
func StringT() *Type { return stringType }

// Bool returns the bool base type.
func Bool() *Type { return boolType }

// OID returns the opaque base type with the given name. Two OID types are
// equal iff their names are equal.
func OID(name string) *Type { return &Type{Kind: KindOID, OIDName: name} }

// SetOf returns the type of finite sets with the given element type.
func SetOf(elem *Type) *Type { return &Type{Kind: KindSet, Elem: elem} }

// DictOf returns the type of dictionaries (finite functions) from key to
// val.
func DictOf(key, val *Type) *Type {
	return &Type{Kind: KindDict, Key: key, Elem: val}
}

// StructOf returns a record type with the given fields, kept in the order
// given. Field names must be distinct; StructOf panics otherwise since a
// duplicated field is a programming error in schema construction.
func StructOf(fields ...Field) *Type {
	seen := make(map[string]bool, len(fields))
	for _, f := range fields {
		if seen[f.Name] {
			panic(fmt.Sprintf("types: duplicate struct field %q", f.Name))
		}
		seen[f.Name] = true
	}
	return &Type{Kind: KindStruct, Fields: fields}
}

// F is shorthand for constructing a Field.
func F(name string, t *Type) Field { return Field{Name: name, Type: t} }

// IsBase reports whether t is a base type (int, float, string, bool, oid).
func (t *Type) IsBase() bool {
	switch t.Kind {
	case KindInt, KindFloat, KindString, KindBool, KindOID:
		return true
	}
	return false
}

// FieldType returns the type of the named field of a struct type, or nil
// if t is not a struct or has no such field.
func (t *Type) FieldType(name string) *Type {
	if t == nil || t.Kind != KindStruct {
		return nil
	}
	for _, f := range t.Fields {
		if f.Name == name {
			return f.Type
		}
	}
	return nil
}

// Equal reports structural equality of types. OID types compare by name.
func (t *Type) Equal(u *Type) bool {
	if t == u {
		return true
	}
	if t == nil || u == nil || t.Kind != u.Kind {
		return false
	}
	switch t.Kind {
	case KindInt, KindFloat, KindString, KindBool:
		return true
	case KindOID:
		return t.OIDName == u.OIDName
	case KindSet:
		return t.Elem.Equal(u.Elem)
	case KindDict:
		return t.Key.Equal(u.Key) && t.Elem.Equal(u.Elem)
	case KindStruct:
		if len(t.Fields) != len(u.Fields) {
			return false
		}
		for i := range t.Fields {
			if t.Fields[i].Name != u.Fields[i].Name ||
				!t.Fields[i].Type.Equal(u.Fields[i].Type) {
				return false
			}
		}
		return true
	}
	return false
}

// String renders the type in the DDL surface syntax, e.g.
// "dict<Doid, {DName: string, DProjs: set<string>}>".
func (t *Type) String() string {
	if t == nil {
		return "<nil>"
	}
	switch t.Kind {
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	case KindBool:
		return "bool"
	case KindOID:
		return t.OIDName
	case KindSet:
		return "set<" + t.Elem.String() + ">"
	case KindDict:
		return "dict<" + t.Key.String() + ", " + t.Elem.String() + ">"
	case KindStruct:
		var b strings.Builder
		b.WriteString("{")
		for i, f := range t.Fields {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(f.Name)
			b.WriteString(": ")
			b.WriteString(f.Type.String())
		}
		b.WriteString("}")
		return b.String()
	default:
		return fmt.Sprintf("<bad kind %d>", int(t.Kind))
	}
}

// Validate checks that the type is well-formed: no nil components,
// dictionary keys are base-typed or flat records of base types (the PC
// restriction of §5: keys must not contain set or dictionary types), and
// struct field names are unique.
func (t *Type) Validate() error {
	if t == nil {
		return fmt.Errorf("types: nil type")
	}
	switch t.Kind {
	case KindInt, KindFloat, KindString, KindBool:
		return nil
	case KindOID:
		if t.OIDName == "" {
			return fmt.Errorf("types: oid type with empty name")
		}
		return nil
	case KindSet:
		return t.Elem.Validate()
	case KindDict:
		if err := t.Key.Validate(); err != nil {
			return err
		}
		if t.Key.ContainsCollection() {
			return fmt.Errorf("types: dictionary key type %s contains a set or dictionary (violates PC restriction)", t.Key)
		}
		return t.Elem.Validate()
	case KindStruct:
		seen := make(map[string]bool, len(t.Fields))
		for _, f := range t.Fields {
			if f.Name == "" {
				return fmt.Errorf("types: struct field with empty name")
			}
			if seen[f.Name] {
				return fmt.Errorf("types: duplicate struct field %q", f.Name)
			}
			seen[f.Name] = true
			if err := f.Type.Validate(); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("types: unknown kind %d", int(t.Kind))
	}
}

// ContainsCollection reports whether the type mentions a set or dictionary
// anywhere. Dictionary keys, where-clause equalities and select outputs of
// PC queries must not (restriction 1 of §5).
func (t *Type) ContainsCollection() bool {
	if t == nil {
		return false
	}
	switch t.Kind {
	case KindSet, KindDict:
		return true
	case KindStruct:
		for _, f := range t.Fields {
			if f.Type.ContainsCollection() {
				return true
			}
		}
	}
	return false
}

// FieldNames returns the sorted field names of a struct type, or nil for
// other kinds. Useful for deterministic iteration in diagnostics.
func (t *Type) FieldNames() []string {
	if t == nil || t.Kind != KindStruct {
		return nil
	}
	names := make([]string, len(t.Fields))
	for i, f := range t.Fields {
		names[i] = f.Name
	}
	sort.Strings(names)
	return names
}
