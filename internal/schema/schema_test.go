package schema

import (
	"strings"
	"testing"

	"cnb/internal/core"
	"cnb/internal/types"
)

func testSchema(t *testing.T) *Schema {
	t.Helper()
	s := New("test")
	s.MustAddElement("Proj", types.SetOf(types.StructOf(
		types.F("PName", types.StringT()),
		types.F("CustName", types.StringT()),
		types.F("Budg", types.Int()),
	)), "projects")
	s.MustAddElement("I", types.DictOf(types.StringT(), types.StructOf(
		types.F("PName", types.StringT()),
		types.F("CustName", types.StringT()),
		types.F("Budg", types.Int()),
	)), "primary index")
	s.MustAddElement("SI", types.DictOf(types.StringT(), types.SetOf(types.StructOf(
		types.F("PName", types.StringT()),
		types.F("CustName", types.StringT()),
		types.F("Budg", types.Int()),
	))), "secondary index")
	return s
}

func TestAddElementErrors(t *testing.T) {
	s := New("x")
	if err := s.AddElement("", types.Int(), ""); err == nil {
		t.Error("empty name must fail")
	}
	if err := s.AddElement("A", types.Int(), ""); err != nil {
		t.Fatal(err)
	}
	if err := s.AddElement("A", types.Int(), ""); err == nil {
		t.Error("duplicate must fail")
	}
	if err := s.AddElement("B", types.DictOf(types.SetOf(types.Int()), types.Int()), ""); err == nil {
		t.Error("invalid type must fail")
	}
}

func TestElementAccessors(t *testing.T) {
	s := testSchema(t)
	if !s.Has("Proj") || s.Has("Nope") {
		t.Error("Has wrong")
	}
	if s.Element("I") == nil {
		t.Error("Element lookup failed")
	}
	names := s.Names()
	if len(names) != 3 || names[0] != "Proj" {
		t.Errorf("Names = %v (declaration order expected)", names)
	}
	if len(s.Elements()) != 3 {
		t.Error("Elements wrong")
	}
	set := s.NameSet()
	if !set["SI"] || len(set) != 3 {
		t.Errorf("NameSet = %v", set)
	}
}

func TestTypeOfTerm(t *testing.T) {
	s := testSchema(t)
	env := map[string]*types.Type{}
	cases := []struct {
		term *core.Term
		want string
	}{
		{core.Name("Proj"), "set<{PName: string, CustName: string, Budg: int}>"},
		{core.Dom(core.Name("I")), "set<string>"},
		{core.Lk(core.Name("I"), core.C("x")), "{PName: string, CustName: string, Budg: int}"},
		{core.Prj(core.Lk(core.Name("I"), core.C("x")), "Budg"), "int"},
		{core.C(1), "int"},
		{core.C("s"), "string"},
		{core.C(true), "bool"},
		{core.C(1.5), "float"},
		{core.Struct(core.SF("A", core.C(1))), "{A: int}"},
	}
	for _, c := range cases {
		got, err := s.TypeOfTerm(c.term, env)
		if err != nil {
			t.Errorf("TypeOfTerm(%s): %v", c.term, err)
			continue
		}
		if got.String() != c.want {
			t.Errorf("TypeOfTerm(%s) = %s, want %s", c.term, got, c.want)
		}
	}
}

func TestTypeOfTermErrors(t *testing.T) {
	s := testSchema(t)
	env := map[string]*types.Type{"p": types.StructOf(types.F("A", types.Int()))}
	bad := []*core.Term{
		core.V("unbound"),
		core.Name("NoSuch"),
		core.Prj(core.V("p"), "Z"),
		core.Dom(core.Name("Proj")),
		core.Lk(core.Name("Proj"), core.C(1)),
		core.Lk(core.Name("I"), core.C(1)),     // key type mismatch (int vs string)
		core.LkNF(core.Name("I"), core.C("x")), // non-failing needs set entries
	}
	for _, b := range bad {
		if _, err := s.TypeOfTerm(b, env); err == nil {
			t.Errorf("TypeOfTerm(%s) should fail", b)
		}
	}
}

func TestCheckQuery(t *testing.T) {
	s := testSchema(t)
	q := &core.Query{
		Out: core.Struct(core.SF("N", core.Prj(core.V("p"), "PName"))),
		Bindings: []core.Binding{
			{Var: "p", Range: core.Name("Proj")},
		},
		Conds: []core.Cond{{L: core.Prj(core.V("p"), "CustName"), R: core.C("c")}},
	}
	ot, err := s.CheckQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	if ot.String() != "{N: string}" {
		t.Errorf("output type = %s", ot)
	}
}

func TestCheckQueryErrors(t *testing.T) {
	s := testSchema(t)
	// Range over a non-set (dictionary must be iterated via dom).
	q1 := &core.Query{
		Out:      core.C(true),
		Bindings: []core.Binding{{Var: "x", Range: core.Name("I")}},
	}
	if _, err := s.CheckQuery(q1); err == nil {
		t.Error("iterating a dictionary directly must fail")
	}
	// Condition comparing different types.
	q2 := &core.Query{
		Out:      core.C(true),
		Bindings: []core.Binding{{Var: "p", Range: core.Name("Proj")}},
		Conds:    []core.Cond{{L: core.Prj(core.V("p"), "Budg"), R: core.C("x")}},
	}
	if _, err := s.CheckQuery(q2); err == nil {
		t.Error("type-mismatched condition must fail")
	}
	// Output of collection type violates the PC restriction.
	q3 := &core.Query{
		Out:      core.Name("Proj"),
		Bindings: []core.Binding{{Var: "p", Range: core.Name("Proj")}},
	}
	if _, err := s.CheckQuery(q3); err == nil {
		t.Error("collection-typed output must fail")
	}
	// Condition comparing collections.
	q4 := &core.Query{
		Out:      core.C(true),
		Bindings: []core.Binding{{Var: "p", Range: core.Name("Proj")}},
		Conds:    []core.Cond{{L: core.Name("Proj"), R: core.Name("Proj")}},
	}
	if _, err := s.CheckQuery(q4); err == nil {
		t.Error("collection comparison must fail")
	}
}

func TestCheckDependency(t *testing.T) {
	s := testSchema(t)
	good := &core.Dependency{
		Name:       "PhiI",
		Premise:    []core.Binding{{Var: "r", Range: core.Name("Proj")}},
		Conclusion: []core.Binding{{Var: "i", Range: core.Dom(core.Name("I"))}},
		ConclusionConds: []core.Cond{
			{L: core.V("i"), R: core.Prj(core.V("r"), "PName")},
		},
	}
	if err := s.CheckDependency(good); err != nil {
		t.Errorf("good dependency rejected: %v", err)
	}
	bad := &core.Dependency{
		Name:            "bad",
		Premise:         []core.Binding{{Var: "r", Range: core.Name("Proj")}},
		ConclusionConds: []core.Cond{{L: core.Prj(core.V("r"), "Budg"), R: core.C("str")}},
	}
	if err := s.CheckDependency(bad); err == nil {
		t.Error("type-mismatched dependency accepted")
	}
}

func TestAddDependencyChecksNames(t *testing.T) {
	s := testSchema(t)
	d := &core.Dependency{
		Name:    "d",
		Premise: []core.Binding{{Var: "x", Range: core.Name("Mystery")}},
	}
	if err := s.AddDependency(d); err == nil {
		t.Error("dependency over undeclared name must fail")
	}
	ok := &core.Dependency{
		Name:    "ok",
		Premise: []core.Binding{{Var: "x", Range: core.Name("Proj")}},
	}
	if err := s.AddDependency(ok); err != nil {
		t.Fatal(err)
	}
	if len(s.Dependencies()) != 1 {
		t.Error("dependency not recorded")
	}
}

func TestMerge(t *testing.T) {
	a := New("a")
	a.MustAddElement("R", types.SetOf(types.StructOf(types.F("A", types.Int()))), "")
	b := New("b")
	b.MustAddElement("R", types.SetOf(types.StructOf(types.F("A", types.Int()))), "")
	b.MustAddElement("S", types.SetOf(types.StructOf(types.F("B", types.Int()))), "")
	m, err := Merge("m", a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Has("R") || !m.Has("S") {
		t.Error("merge lost elements")
	}

	c := New("c")
	c.MustAddElement("R", types.SetOf(types.Int()), "")
	if _, err := Merge("x", a, c); err == nil {
		t.Error("conflicting types must fail to merge")
	}
}

func TestSchemaString(t *testing.T) {
	s := testSchema(t)
	str := s.String()
	for _, frag := range []string{"schema test", "Proj", "dict<string"} {
		if !strings.Contains(str, frag) {
			t.Errorf("String missing %q", frag)
		}
	}
}
