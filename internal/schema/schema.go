// Package schema defines catalogs: named, typed schema elements plus the
// constraints (EPCDs) that hold on them. The optimizer works with two
// catalogs — a logical schema Λ and a physical schema Φ — related by
// constraints that capture the implementation mapping (Figure 1 of
// Deutsch, Popa, Tannen, VLDB 1999). The two need not be disjoint: in the
// running example the relation Proj belongs to both.
package schema

import (
	"fmt"
	"sort"

	"cnb/internal/core"
	"cnb/internal/types"
)

// Element is a named schema member: a relation (set type), a dictionary,
// or any other named value.
type Element struct {
	Name string
	Type *types.Type
	// Doc is an optional human-readable description.
	Doc string
}

// Schema is a catalog of elements and the constraints over them.
type Schema struct {
	Name     string
	elements map[string]*Element
	order    []string
	deps     []*core.Dependency
}

// New creates an empty schema with the given name.
func New(name string) *Schema {
	return &Schema{Name: name, elements: map[string]*Element{}}
}

// AddElement declares a named element. It returns an error on duplicate
// names or ill-formed types.
func (s *Schema) AddElement(name string, t *types.Type, doc string) error {
	if name == "" {
		return fmt.Errorf("schema %s: empty element name", s.Name)
	}
	if _, dup := s.elements[name]; dup {
		return fmt.Errorf("schema %s: duplicate element %q", s.Name, name)
	}
	if err := t.Validate(); err != nil {
		return fmt.Errorf("schema %s: element %q: %w", s.Name, name, err)
	}
	s.elements[name] = &Element{Name: name, Type: t, Doc: doc}
	s.order = append(s.order, name)
	return nil
}

// MustAddElement is AddElement that panics on error; intended for
// programmatic catalog construction in tests and examples.
func (s *Schema) MustAddElement(name string, t *types.Type, doc string) {
	if err := s.AddElement(name, t, doc); err != nil {
		panic(err)
	}
}

// Element returns the named element, or nil.
func (s *Schema) Element(name string) *Element { return s.elements[name] }

// Has reports whether the schema declares the name.
func (s *Schema) Has(name string) bool { return s.elements[name] != nil }

// Elements returns all elements in declaration order.
func (s *Schema) Elements() []*Element {
	out := make([]*Element, 0, len(s.order))
	for _, n := range s.order {
		out = append(out, s.elements[n])
	}
	return out
}

// Names returns the declared names in declaration order.
func (s *Schema) Names() []string {
	return append([]string(nil), s.order...)
}

// NameSet returns the declared names as a set.
func (s *Schema) NameSet() map[string]bool {
	m := make(map[string]bool, len(s.order))
	for _, n := range s.order {
		m[n] = true
	}
	return m
}

// AddDependency attaches a constraint to the schema after validating it
// and checking that every schema name it mentions is declared.
func (s *Schema) AddDependency(d *core.Dependency) error {
	if err := d.Validate(); err != nil {
		return err
	}
	for n := range d.Names() {
		if !s.Has(n) {
			return fmt.Errorf("schema %s: dependency %s mentions undeclared name %q", s.Name, d.Name, n)
		}
	}
	s.deps = append(s.deps, d)
	return nil
}

// MustAddDependency is AddDependency that panics on error.
func (s *Schema) MustAddDependency(d *core.Dependency) {
	if err := s.AddDependency(d); err != nil {
		panic(err)
	}
}

// Dependencies returns the schema's constraints in declaration order.
func (s *Schema) Dependencies() []*core.Dependency {
	return append([]*core.Dependency(nil), s.deps...)
}

// TypeOfTerm infers the type of a ground-rooted term under the schema and
// an environment assigning types to variables. It returns an error for
// untypable terms — the static check the parser and validators rely on.
func (s *Schema) TypeOfTerm(t *core.Term, env map[string]*types.Type) (*types.Type, error) {
	switch t.Kind {
	case core.KVar:
		if ty, ok := env[t.Name]; ok {
			return ty, nil
		}
		return nil, fmt.Errorf("schema %s: unbound variable %q", s.Name, t.Name)
	case core.KConst:
		switch t.Val.(type) {
		case int64:
			return types.Int(), nil
		case float64:
			return types.Float(), nil
		case string:
			return types.StringT(), nil
		case bool:
			return types.Bool(), nil
		}
		return nil, fmt.Errorf("schema %s: unknown constant type %T", s.Name, t.Val)
	case core.KName:
		e := s.Element(t.Name)
		if e == nil {
			return nil, fmt.Errorf("schema %s: undeclared name %q", s.Name, t.Name)
		}
		return e.Type, nil
	case core.KProj:
		bt, err := s.TypeOfTerm(t.Base, env)
		if err != nil {
			return nil, err
		}
		ft := bt.FieldType(t.Name)
		if ft == nil {
			return nil, fmt.Errorf("schema %s: type %s has no field %q", s.Name, bt, t.Name)
		}
		return ft, nil
	case core.KDom:
		bt, err := s.TypeOfTerm(t.Base, env)
		if err != nil {
			return nil, err
		}
		if bt.Kind != types.KindDict {
			return nil, fmt.Errorf("schema %s: dom of non-dictionary type %s", s.Name, bt)
		}
		return types.SetOf(bt.Key), nil
	case core.KLookup:
		bt, err := s.TypeOfTerm(t.Base, env)
		if err != nil {
			return nil, err
		}
		if bt.Kind != types.KindDict {
			return nil, fmt.Errorf("schema %s: lookup into non-dictionary type %s", s.Name, bt)
		}
		kt, err := s.TypeOfTerm(t.Key, env)
		if err != nil {
			return nil, err
		}
		if !kt.Equal(bt.Key) {
			return nil, fmt.Errorf("schema %s: lookup key type %s, dictionary expects %s", s.Name, kt, bt.Key)
		}
		if t.NonFailing {
			if bt.Elem.Kind != types.KindSet {
				return nil, fmt.Errorf("schema %s: non-failing lookup needs set-valued entries, got %s", s.Name, bt.Elem)
			}
		}
		return bt.Elem, nil
	case core.KStruct:
		fs := make([]types.Field, len(t.Fields))
		for i, f := range t.Fields {
			ft, err := s.TypeOfTerm(f.Term, env)
			if err != nil {
				return nil, err
			}
			fs[i] = types.F(f.Name, ft)
		}
		return types.StructOf(fs...), nil
	}
	return nil, fmt.Errorf("schema %s: cannot type term %s", s.Name, t)
}

// elemType returns the element type when iterating over a range of the
// given type: sets iterate their elements.
func elemType(t *types.Type) (*types.Type, error) {
	if t.Kind == types.KindSet {
		return t.Elem, nil
	}
	return nil, fmt.Errorf("schema: range of non-set type %s", t)
}

// CheckQuery type-checks a PC query against the schema: every range must
// be set-typed (dictionaries are iterated via dom), conditions must
// compare equal base (or flat-record) types, and the output must be
// typable. It returns the output type.
func (s *Schema) CheckQuery(q *core.Query) (*types.Type, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	env := map[string]*types.Type{}
	for _, b := range q.Bindings {
		rt, err := s.TypeOfTerm(b.Range, env)
		if err != nil {
			return nil, err
		}
		et, err := elemType(rt)
		if err != nil {
			return nil, fmt.Errorf("binding %s: %w", b.Var, err)
		}
		env[b.Var] = et
	}
	for _, c := range q.Conds {
		lt, err := s.TypeOfTerm(c.L, env)
		if err != nil {
			return nil, err
		}
		rt, err := s.TypeOfTerm(c.R, env)
		if err != nil {
			return nil, err
		}
		if !lt.Equal(rt) {
			return nil, fmt.Errorf("condition %s compares %s with %s", c, lt, rt)
		}
		if lt.ContainsCollection() {
			return nil, fmt.Errorf("condition %s compares collection-typed values (violates PC restriction)", c)
		}
	}
	ot, err := s.TypeOfTerm(q.Out, env)
	if err != nil {
		return nil, err
	}
	if ot.ContainsCollection() {
		return nil, fmt.Errorf("output type %s contains a collection (violates PC restriction)", ot)
	}
	return ot, nil
}

// CheckDependency type-checks an EPCD against the schema.
func (s *Schema) CheckDependency(d *core.Dependency) error {
	if err := d.Validate(); err != nil {
		return err
	}
	env := map[string]*types.Type{}
	bindSeq := func(bs []core.Binding) error {
		for _, b := range bs {
			rt, err := s.TypeOfTerm(b.Range, env)
			if err != nil {
				return err
			}
			et, err := elemType(rt)
			if err != nil {
				return fmt.Errorf("dependency %s, binding %s: %w", d.Name, b.Var, err)
			}
			env[b.Var] = et
		}
		return nil
	}
	condSeq := func(cs []core.Cond) error {
		for _, c := range cs {
			lt, err := s.TypeOfTerm(c.L, env)
			if err != nil {
				return err
			}
			rt, err := s.TypeOfTerm(c.R, env)
			if err != nil {
				return err
			}
			if !lt.Equal(rt) {
				return fmt.Errorf("dependency %s: condition %s compares %s with %s", d.Name, c, lt, rt)
			}
		}
		return nil
	}
	if err := bindSeq(d.Premise); err != nil {
		return err
	}
	if err := condSeq(d.PremiseConds); err != nil {
		return err
	}
	if err := bindSeq(d.Conclusion); err != nil {
		return err
	}
	return condSeq(d.ConclusionConds)
}

// Merge returns a new schema containing the elements and dependencies of
// both schemas. Shared element names must agree on their types (the
// logical and physical schema overlap on directly-stored relations).
func Merge(name string, a, b *Schema) (*Schema, error) {
	m := New(name)
	for _, e := range a.Elements() {
		m.MustAddElement(e.Name, e.Type, e.Doc)
	}
	for _, e := range b.Elements() {
		if prev := m.Element(e.Name); prev != nil {
			if !prev.Type.Equal(e.Type) {
				return nil, fmt.Errorf("schema merge: %q has type %s in %s but %s in %s",
					e.Name, prev.Type, a.Name, e.Type, b.Name)
			}
			continue
		}
		m.MustAddElement(e.Name, e.Type, e.Doc)
	}
	seen := map[string]bool{}
	for _, d := range append(a.Dependencies(), b.Dependencies()...) {
		key := d.String()
		if seen[key] {
			continue
		}
		seen[key] = true
		if err := m.AddDependency(d); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// String lists the schema's elements and constraints.
func (s *Schema) String() string {
	out := fmt.Sprintf("schema %s {\n", s.Name)
	for _, e := range s.Elements() {
		out += fmt.Sprintf("  %s : %s\n", e.Name, e.Type)
	}
	names := make([]string, 0, len(s.deps))
	for _, d := range s.deps {
		names = append(names, "  constraint "+d.String())
	}
	sort.Strings(names)
	for _, n := range names {
		out += n + "\n"
	}
	return out + "}"
}
