module cnb

go 1.24
