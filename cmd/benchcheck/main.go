// Command benchcheck is the CI bench-regression gate: it compares a
// fresh chasebench JSON report against the committed baseline
// (BENCH_BASELINE.json) and fails when the search regresses.
//
// Rules, per experiment present in the baseline:
//
//   - every metric whose name ends in "_states" (except pruned counters,
//     which grow when the bound improves) may grow by at most
//     -state-tolerance (default 10%) — more lattice states explored for
//     the same workload is a search regression;
//   - every metric whose name ends in "_hom_tests" may grow by at most
//     the same tolerance — more homomorphism-search work for the same
//     workload is a chase regression, gated exactly like state counts;
//   - every metric whose name starts with "cheapest_cost" must not
//     change beyond float noise (relative 1e-6) — the admissible bound
//     guarantees the cheapest plan cost is schedule- and
//     pruning-independent, so any drift means a soundness or cost-model
//     change that must be reviewed (and the baseline regenerated
//     deliberately);
//   - the "chase_steps" metric is held exactly: chase step counts are
//     deterministic, and both chase engines are pinned to the same step
//     sequence, so any drift means the chase itself changed behavior;
//   - the serving-layer counters "cache_hits", "cache_misses",
//     "backchase_runs" and "hit_rate" (the workers=1 passes of E16's
//     order-preserving replay, E17's order-shuffling alpha-rename
//     replay, and E19's end-to-end query replay) are held exactly: the
//     request schedules are seeded and the single-worker service is
//     serial, so these counts are deterministic, and any drift means
//     the plan cache keying, query canonicalization, eviction or
//     singleflight accounting changed — in particular, E17's
//     backchase_runs equals the distinct-shape count only while the
//     canonical signature stays invariant under order-shuffling
//     renames;
//   - every metric whose name ends in "_evals" or "_rows" (E18's
//     measured work counters for the baseline and optimized plans, and
//     E19's executed-work totals for the workers=1 serving replay —
//     query_evals, query_rows, query_out_rows, result_rows) and every
//     metric whose name ends in "_exec_skipped" (how many ranked
//     candidates the delivery walk had to skip as non-executable
//     before finding one that runs) are held exactly: at a fixed seed
//     and row tier both plans and their work profiles are pure
//     functions of the code, so any drift means the streaming engine's
//     operator accounting, the optimizer's candidate ranking, or the
//     generated instance changed;
//   - the "calibration_skipped" metric (E14's count of candidates whose
//     measured execution was skipped as non-executable) is held exactly
//     for the same reason — silent growth would mean calibration quietly
//     profiles fewer plans than the search produced;
//   - the two-tier serving counters "greedy_served" and
//     "upgraded_flights" (E20's cold replay: one greedy-tier response
//     per cold shape, one detached-flight upgrade per shape) are held
//     exactly — drift means the latency-budget tiering, flight
//     detachment or upgrade accounting changed;
//   - the adaptive tier-promotion counters (E21's replay:
//     "train_budgeted_waits", "train_greedy_served",
//     "train_upgraded_flights" for the cold training pass;
//     "budgeted_waits", "predicted_fast", "predicted_slow",
//     "prediction_miss" for the trained serve pass; and the per-tier
//     histogram totals "hist_greedy_total", "hist_backchase_sync_total",
//     "hist_backchase_upgraded_total") are held exactly: the replay's
//     routing is deterministic by construction — in particular
//     budgeted_waits and prediction_miss are held at zero, the proof
//     that a trained predictor routes every shape without a timed wait
//     — so any drift means the predictor's learning or consultation,
//     the upgraded-shape override, or the histogram recording changed
//     (the per-bucket hist_*_le_*us metrics are machine-dependent and
//     never gated; the gated totals are their exact sums);
//   - experiments and gated metrics present in the baseline must still
//     exist in the current report.
//
// Wall-clock metrics (*_ms), speedup ratios and correlation metrics are
// informational and never gated: they depend on the machine. Run both
// reports with -parallelism 1 so state counts are deterministic.
//
// Usage:
//
//	benchcheck -baseline BENCH_BASELINE.json -current BENCH_PR3.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
)

// experimentRecord mirrors the chasebench JSON schema (only the fields
// the gate reads).
type experimentRecord struct {
	ID     string             `json:"id"`
	Metric map[string]float64 `json:"metrics,omitempty"`
}

type report struct {
	Experiments []experimentRecord `json:"experiments"`
}

func load(path string) (*report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

func (r *report) byID() map[string]map[string]float64 {
	out := map[string]map[string]float64{}
	for _, e := range r.Experiments {
		out[e.ID] = e.Metric
	}
	return out
}

const costTolerance = 1e-6 // relative; covers float summation noise only

// exactCounters are deterministic count metrics held exactly (within
// costTolerance, which only absorbs float encoding noise): chase step
// counts, the serving layer's single-worker cache/flight counters and
// hit rate, E14's calibration skip count, E20's two-tier serving
// counters, and E21's adaptive tier-promotion counters and histogram
// totals.
var exactCounters = map[string]bool{
	"chase_steps":                   true,
	"cache_hits":                    true,
	"cache_misses":                  true,
	"backchase_runs":                true,
	"hit_rate":                      true,
	"calibration_skipped":           true,
	"greedy_served":                 true,
	"upgraded_flights":              true,
	"train_budgeted_waits":          true,
	"train_greedy_served":           true,
	"train_upgraded_flights":        true,
	"budgeted_waits":                true,
	"predicted_fast":                true,
	"predicted_slow":                true,
	"prediction_miss":               true,
	"hist_greedy_total":             true,
	"hist_backchase_sync_total":     true,
	"hist_backchase_upgraded_total": true,
}

// exactSuffix reports whether a metric name carries one of the
// exactly-gated suffixes: E18's per-plan work counters ("_evals",
// "_rows") and its non-executable-candidate skip count
// ("_exec_skipped") are pure functions of (seed, tier, code), so any
// drift is a behavior change to review.
func exactSuffix(name string) bool {
	for _, s := range []string{"_evals", "_rows", "_exec_skipped"} {
		if strings.HasSuffix(name, s) {
			return true
		}
	}
	return false
}

func main() {
	var (
		baselinePath = flag.String("baseline", "BENCH_BASELINE.json", "committed baseline report")
		currentPath  = flag.String("current", "BENCH_PR3.json", "freshly generated report")
		stateTol     = flag.Float64("state-tolerance", 0.10, "allowed relative growth of *_states metrics")
	)
	flag.Parse()

	baseline, err := load(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
		os.Exit(2)
	}
	current, err := load(*currentPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
		os.Exit(2)
	}
	cur := current.byID()

	var failures []string
	fail := func(format string, args ...any) {
		failures = append(failures, fmt.Sprintf(format, args...))
	}
	checked := 0
	for _, exp := range baseline.Experiments {
		curMetrics, ok := cur[exp.ID]
		if !ok {
			fail("%s: experiment missing from current report", exp.ID)
			continue
		}
		for name, base := range exp.Metric {
			// Pruned counters grow when the bound improves; they are not
			// exploration work and are never gated.
			gatedStates := strings.HasSuffix(name, "_states") && !strings.Contains(name, "pruned")
			gatedWork := strings.HasSuffix(name, "_hom_tests")
			gatedCost := strings.HasPrefix(name, "cheapest_cost") || exactCounters[name] || exactSuffix(name)
			if !gatedStates && !gatedWork && !gatedCost {
				continue
			}
			now, ok := curMetrics[name]
			if !ok {
				fail("%s/%s: gated metric missing from current report", exp.ID, name)
				continue
			}
			checked++
			switch {
			case gatedStates || gatedWork:
				if now > base*(1+*stateTol) {
					fail("%s/%s: %g vs baseline %g (> %.0f%% regression)",
						exp.ID, name, now, base, *stateTol*100)
				} else {
					fmt.Printf("ok %s/%s: %g vs baseline %g\n", exp.ID, name, now, base)
				}
			case gatedCost:
				if diff := now - base; diff > base*costTolerance || -diff > base*costTolerance {
					fail("%s/%s: %g vs baseline %g — any change must be reviewed",
						exp.ID, name, now, base)
				} else {
					fmt.Printf("ok %s/%s: %g vs baseline %g\n", exp.ID, name, now, base)
				}
			}
		}
	}
	if checked == 0 {
		fail("no gated metrics found in %s — baseline corrupt?", *baselinePath)
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintf(os.Stderr, "FAIL %s\n", f)
		}
		os.Exit(1)
	}
	fmt.Printf("benchcheck: %d gated metrics within tolerance\n", checked)
}
