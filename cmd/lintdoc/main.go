// Command lintdoc is the godoc gate: a dependency-free equivalent of
// revive's "exported" rule (the toolchain gate cannot install
// third-party linters). It parses the package directories given as
// arguments and fails when an exported declaration is missing a doc
// comment or when the comment does not start with the declared name —
// the convention godoc renders and every IDE hover relies on.
//
// Checked per directory (non-recursive, _test.go files excluded):
//
//   - the package itself must carry a package comment in at least one
//     file;
//   - exported functions, types, and methods on exported receivers must
//     have a doc comment whose first word is the declared name (a
//     leading "A", "An" or "The" article is accepted, as is a comment
//     starting with "Deprecated:");
//   - exported consts and vars must be documented either individually
//     or by a comment on their enclosing const/var block.
//
// Usage:
//
//	lintdoc ./internal/engine ./internal/cost ...
//
// Exit status 1 when any violation is found, 2 on usage/parse errors.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"sort"
	"strings"
)

// violation is one finding, carrying the position godoc-style tooling
// (and CI log readers) expect: file:line: message.
type violation struct {
	pos token.Position
	msg string
}

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: lintdoc <package-dir> [<package-dir>...]")
		os.Exit(2)
	}
	var all []violation
	for _, dir := range os.Args[1:] {
		vs, err := lintDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lintdoc: %v\n", err)
			os.Exit(2)
		}
		all = append(all, vs...)
	}
	if len(all) > 0 {
		sort.Slice(all, func(i, j int) bool {
			if all[i].pos.Filename != all[j].pos.Filename {
				return all[i].pos.Filename < all[j].pos.Filename
			}
			return all[i].pos.Line < all[j].pos.Line
		})
		for _, v := range all {
			fmt.Fprintf(os.Stderr, "%s:%d: %s\n", v.pos.Filename, v.pos.Line, v.msg)
		}
		fmt.Fprintf(os.Stderr, "lintdoc: %d undocumented exported declarations\n", len(all))
		os.Exit(1)
	}
}

// lintDir checks every non-test file of the single package in dir.
func lintDir(dir string) ([]violation, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var out []violation
	for _, pkg := range pkgs {
		hasPkgDoc := false
		// Exported type names, so methods on unexported receivers can be
		// skipped without resolving types.
		exportedTypes := map[string]bool{}
		for _, f := range pkg.Files {
			if f.Doc != nil {
				hasPkgDoc = true
			}
			for _, d := range f.Decls {
				if gd, ok := d.(*ast.GenDecl); ok && gd.Tok == token.TYPE {
					for _, spec := range gd.Specs {
						ts := spec.(*ast.TypeSpec)
						if ts.Name.IsExported() {
							exportedTypes[ts.Name.Name] = true
						}
					}
				}
			}
		}
		if !hasPkgDoc {
			// Anchor the finding to some file of the package.
			for _, f := range pkg.Files {
				out = append(out, violation{fset.Position(f.Package),
					fmt.Sprintf("package %s has no package comment", pkg.Name)})
				break
			}
		}
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				out = append(out, lintDecl(fset, d, exportedTypes)...)
			}
		}
	}
	return out, nil
}

// lintDecl checks one top-level declaration.
func lintDecl(fset *token.FileSet, d ast.Decl, exportedTypes map[string]bool) []violation {
	var out []violation
	switch d := d.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() {
			return nil
		}
		if d.Recv != nil && !exportedTypes[receiverTypeName(d.Recv)] {
			return nil
		}
		if d.Doc == nil {
			out = append(out, violation{fset.Position(d.Pos()),
				fmt.Sprintf("exported %s %s has no doc comment", funcKind(d), d.Name.Name)})
		} else if !startsWithName(d.Doc.Text(), d.Name.Name) {
			out = append(out, violation{fset.Position(d.Pos()),
				fmt.Sprintf("doc comment of exported %s %s does not start with its name", funcKind(d), d.Name.Name)})
		}
	case *ast.GenDecl:
		switch d.Tok {
		case token.TYPE:
			for _, spec := range d.Specs {
				ts := spec.(*ast.TypeSpec)
				if !ts.Name.IsExported() {
					continue
				}
				doc := ts.Doc
				if doc == nil && len(d.Specs) == 1 {
					doc = d.Doc
				}
				if doc == nil {
					out = append(out, violation{fset.Position(ts.Pos()),
						fmt.Sprintf("exported type %s has no doc comment", ts.Name.Name)})
				} else if !startsWithName(doc.Text(), ts.Name.Name) {
					out = append(out, violation{fset.Position(ts.Pos()),
						fmt.Sprintf("doc comment of exported type %s does not start with its name", ts.Name.Name)})
				}
			}
		case token.CONST, token.VAR:
			for _, spec := range d.Specs {
				vs := spec.(*ast.ValueSpec)
				for _, name := range vs.Names {
					if !name.IsExported() {
						continue
					}
					// A block comment documents the whole group; the
					// first-word rule is only enforced on per-spec docs,
					// where one name is unambiguous.
					if d.Doc == nil && vs.Doc == nil && vs.Comment == nil {
						out = append(out, violation{fset.Position(name.Pos()),
							fmt.Sprintf("exported %s %s has no doc comment (directly or on its block)", d.Tok, name.Name)})
					}
				}
			}
		}
	}
	return out
}

// receiverTypeName unwraps *T / generic instantiations to the bare
// receiver type name.
func receiverTypeName(recv *ast.FieldList) string {
	if len(recv.List) == 0 {
		return ""
	}
	t := recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr:
			t = x.X
		case *ast.IndexListExpr:
			t = x.X
		case *ast.Ident:
			return x.Name
		default:
			return ""
		}
	}
}

// funcKind distinguishes "function" from "method" in messages.
func funcKind(d *ast.FuncDecl) string {
	if d.Recv != nil {
		return "method"
	}
	return "function"
}

// startsWithName reports whether a doc comment opens with the declared
// name, optionally after an article, or is an explicit deprecation.
func startsWithName(text, name string) bool {
	fields := strings.Fields(text)
	if len(fields) == 0 {
		return false
	}
	first := strings.TrimRight(fields[0], ":.,")
	if first == name || strings.HasPrefix(fields[0], "Deprecated:") {
		return true
	}
	switch first {
	case "A", "An", "The":
		if len(fields) > 1 && strings.TrimRight(fields[1], ":.,") == name {
			return true
		}
	}
	return false
}
