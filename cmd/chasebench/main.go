// Command chasebench runs the reproduction experiments (E1–E11 of
// EXPERIMENTS.md) and prints their tables.
//
// Usage:
//
//	chasebench            # run everything
//	chasebench -exp E1    # run one experiment
//	chasebench -list      # list experiments
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"cnb/internal/bench"
)

func main() {
	var (
		exp         = flag.String("exp", "", "run a single experiment (e.g. E1)")
		list        = flag.Bool("list", false, "list experiments and exit")
		parallelism = flag.Int("parallelism", 0, "backchase worker count (0 = all cores, 1 = serial)")
	)
	flag.Parse()
	bench.Parallelism = *parallelism

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}
	for _, e := range bench.All() {
		if *exp != "" && !strings.EqualFold(*exp, e.ID) {
			continue
		}
		tb, err := e.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Println(tb)
	}
}
